// Shared SOCPOWER_* environment-variable parsing.
//
// Every example and bench used to hand-roll getenv + strtol with slightly
// different error behaviour; these helpers give one policy: unset variables
// yield the fallback silently, malformed values yield the fallback with a
// one-line diagnostic on stderr (never a crash — env knobs are operator
// conveniences, not program inputs).
#pragma once

#include <optional>
#include <string>

namespace socpower::util {

/// Integer knob (e.g. SOCPOWER_THREADS=4). Accepts decimal with optional
/// sign; trailing garbage is malformed.
[[nodiscard]] long env_int(const char* name, long fallback);

/// Boolean knob. 1/true/yes/on => true, 0/false/no/off => false
/// (case-insensitive); anything else is malformed.
[[nodiscard]] bool env_bool(const char* name, bool fallback);

/// String knob; set-but-empty counts as unset.
[[nodiscard]] std::string env_str(const char* name, const std::string& fallback);

/// Raw accessor: nullopt when unset or empty. The typed helpers above are
/// preferred; this exists for "presence means enabled" knobs like
/// SOCPOWER_TRACE=<path>.
[[nodiscard]] std::optional<std::string> env_opt(const char* name);

}  // namespace socpower::util
