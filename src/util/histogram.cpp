#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace socpower {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(bins > 0 && hi > lo);
}

void Histogram::add(double x) {
  auto bin = static_cast<long>((x - lo_) / width_);
  bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  assert(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::size_t Histogram::mode_bin() const {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return static_cast<std::size_t>(it - counts_.begin());
}

double Histogram::concentration(std::size_t k) const {
  if (total_ == 0) return 0.0;
  const std::size_t m = mode_bin();
  const std::size_t lo = m > k ? m - k : 0;
  const std::size_t hi = std::min(m + k, counts_.size() - 1);
  std::size_t inside = 0;
  for (std::size_t b = lo; b <= hi; ++b) inside += counts_[b];
  return static_cast<double>(inside) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t max_bar_width) const {
  const std::size_t peak =
      total_ ? counts_[mode_bin()] : std::size_t{1};
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak ? counts_[b] * max_bar_width / peak : std::size_t{0};
    std::snprintf(line, sizeof line, "[%9.3g, %9.3g) %6zu ", bin_low(b),
                  bin_high(b), counts_[b]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace socpower
