// Fixed-size worker pool for the parallel co-estimation paths.
//
// Design-space exploration re-runs the whole co-estimation per design point
// (paper Section 6 / Figure 7), and the offline hardware batch flush replays
// one gate-level trace per ASIC — both are lists of fully independent,
// coarse-grained jobs. ThreadPool covers exactly that shape: a handful of
// long-lived workers and a blocking `parallel_for` whose callers store
// results by index and reduce deterministically afterwards. No futures, no
// work stealing, no task graph — determinism of the *merged* result is the
// contract, so the pool only needs to guarantee every index runs exactly
// once.
//
// Nested use: a `parallel_for` issued from inside a pool task runs its loop
// inline on the calling worker (no new tasks are queued), so composed
// parallel code cannot deadlock on pool capacity.
//
// Exceptions: if any iteration throws, the loop still visits every index,
// then rethrows the exception of the *lowest* failing index on the calling
// thread — deterministic regardless of scheduling.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace socpower {

/// Maps a user-facing thread-count knob to an actual worker count:
/// 0 = one per hardware thread (at least 1), otherwise the value itself.
[[nodiscard]] unsigned resolve_thread_count(unsigned requested);

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = one per hardware thread).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const;

  /// Runs fn(0) .. fn(n-1), each exactly once, and blocks until all have
  /// finished. Iterations execute on the workers (the calling thread only
  /// waits); call-order across indices is unspecified. Safe to call from
  /// inside a pool task (runs inline) and with n == 0 (no-op).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Enqueues one independent job and returns immediately; some worker runs
  /// it eventually (the destructor drains queued jobs before joining). The
  /// session server multiplexes concurrent estimation requests through this.
  /// From a pool worker (or an empty pool) the job runs inline — the same
  /// no-deadlock rule as nested parallel_for.
  void submit(std::function<void()> job);

  /// True when the current thread is one of this process's pool workers.
  [[nodiscard]] static bool on_worker_thread();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace socpower
