#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace socpower {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

std::string TextTable::fixed(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace socpower
