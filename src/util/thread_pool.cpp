#include "util/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/registry.hpp"

namespace socpower {

namespace {
thread_local bool t_on_worker = false;
}  // namespace

unsigned resolve_thread_count(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

struct ThreadPool::Impl {
  /// State of one parallel_for invocation, shared by all participants.
  struct Loop {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};      // next unclaimed index
    std::atomic<std::size_t> finished{0};  // indices fully executed
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  };

  std::vector<std::thread> workers;
  std::deque<std::function<void()>> queue;
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  bool stopping = false;

  void worker_main() {
    t_on_worker = true;
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lk(queue_mu);
        queue_cv.wait(lk, [&] { return stopping || !queue.empty(); });
        if (stopping && queue.empty()) return;
        job = std::move(queue.front());
        queue.pop_front();
      }
      job();
    }
  }

  static void drain(const std::shared_ptr<Loop>& loop) {
    static telemetry::Counter& tasks =
        telemetry::registry().counter("pool.tasks");
    static telemetry::HistogramStat& task_us =
        telemetry::registry().histogram("pool.task_us", 0.0, 1e6, 32);
    for (;;) {
      const std::size_t i = loop->next.fetch_add(1);
      if (i >= loop->n) return;
      const bool telem = telemetry::enabled();
      const auto t0 = telem ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
      try {
        (*loop->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(loop->mu);
        if (i < loop->error_index) {
          loop->error_index = i;
          loop->error = std::current_exception();
        }
      }
      if (telem) {
        tasks.add();
        task_us.observe(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
      }
      if (loop->finished.fetch_add(1) + 1 == loop->n) {
        // Take the lock so the notification cannot slip between the
        // waiter's predicate check and its wait.
        std::lock_guard<std::mutex> lk(loop->mu);
        loop->done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(unsigned threads) : impl_(std::make_unique<Impl>()) {
  const unsigned count = resolve_thread_count(threads);
  impl_->workers.reserve(count);
  for (unsigned t = 0; t < count; ++t)
    impl_->workers.emplace_back([this] { impl_->worker_main(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->queue_mu);
    impl_->stopping = true;
  }
  impl_->queue_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
}

unsigned ThreadPool::size() const {
  return static_cast<unsigned>(impl_->workers.size());
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::submit(std::function<void()> job) {
  if (!job) return;
  if (on_worker_thread() || impl_->workers.empty()) {
    job();
    return;
  }
  {
    static telemetry::Gauge& depth =
        telemetry::registry().gauge("pool.queue_depth");
    std::lock_guard<std::mutex> lk(impl_->queue_mu);
    if (impl_->stopping) return;  // racing the destructor: drop, don't crash
    impl_->queue.emplace_back(std::move(job));
    depth.set(static_cast<std::int64_t>(impl_->queue.size()));
  }
  impl_->queue_cv.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (on_worker_thread() || impl_->workers.empty()) {
    // Nested (or degenerate) invocation: run inline. Serial semantics —
    // the first exception aborts the remaining iterations.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto loop = std::make_shared<Impl::Loop>();
  loop->n = n;
  loop->fn = &fn;

  const std::size_t participants = std::min<std::size_t>(impl_->workers.size(), n);
  {
    static telemetry::Gauge& depth =
        telemetry::registry().gauge("pool.queue_depth");
    std::lock_guard<std::mutex> lk(impl_->queue_mu);
    for (std::size_t p = 0; p < participants; ++p)
      impl_->queue.emplace_back([loop] { Impl::drain(loop); });
    depth.set(static_cast<std::int64_t>(impl_->queue.size()));
  }
  impl_->queue_cv.notify_all();

  std::unique_lock<std::mutex> lk(loop->mu);
  loop->done_cv.wait(lk, [&] { return loop->finished.load() == n; });
  if (loop->error) std::rethrow_exception(loop->error);
}

}  // namespace socpower
