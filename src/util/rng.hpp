// Deterministic pseudo-random source for workload generation (packet
// payloads, environment event jitter). A fixed algorithm (splitmix64 +
// xoshiro256**) keeps traces reproducible across platforms and standard
// library versions, which std::mt19937 distributions do not guarantee.
//
// Seeding contract for parallel execution (the "DeterministicRng" rules the
// threaded explore()/flush paths rely on):
//   * Rng is NOT thread-safe and must never be shared across threads or
//     across concurrently-evaluated exploration points.
//   * Each unit of parallel work (one ExplorationPoint thunk, one system
//     instance) owns its own Rng, seeded ONLY from stable identifiers — a
//     base seed plus the point/stream index — never from wall clock, thread
//     ids, or iteration order. Use for_stream() to derive decorrelated
//     per-unit streams from (base_seed, stream_id).
//   * Draw order within one unit must be a function of that unit's inputs
//     alone. Under these rules a parallel run consumes exactly the same
//     random sequences as the serial run, which is what makes parallel
//     co-estimation bit-identical to serial (tested).
#pragma once

#include <cstdint>

namespace socpower {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next();
  /// Uniform in [0, bound) (bound > 0); uses rejection-free Lemire reduction.
  std::uint64_t below(std::uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double uniform();
  /// Bernoulli(p).
  bool chance(double p);

  /// Derives the seed of stream `stream_id` of a `base_seed` family: equal
  /// inputs give the same stream on every platform, distinct stream ids give
  /// decorrelated streams. The per-point Rng of a parallel exploration is
  /// `Rng(Rng::for_stream(base_seed, point_index))`'s moral equivalent:
  /// construct it with this seed.
  static std::uint64_t for_stream(std::uint64_t base_seed,
                                  std::uint64_t stream_id);

 private:
  std::uint64_t s_[4];
};

}  // namespace socpower
