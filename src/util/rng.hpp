// Deterministic pseudo-random source for workload generation (packet
// payloads, environment event jitter). A fixed algorithm (splitmix64 +
// xoshiro256**) keeps traces reproducible across platforms and standard
// library versions, which std::mt19937 distributions do not guarantee.
#pragma once

#include <cstdint>

namespace socpower {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next();
  /// Uniform in [0, bound) (bound > 0); uses rejection-free Lemire reduction.
  std::uint64_t below(std::uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double uniform();
  /// Bernoulli(p).
  bool chance(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace socpower
