// Streaming statistics used by the energy cache (Section 4.2 of the paper):
// the cache stores, per (task, path), the running mean and variance of the
// energy/delay values reported by the lower-level simulator. Welford's
// algorithm gives numerically stable single-pass estimates.
#pragma once

#include <cstddef>
#include <cstdint>

namespace socpower {

/// Single-pass mean / variance accumulator (Welford).
class RunningStats {
 public:
  /// The complete accumulator state, exposed for bit-exact serialization
  /// (serve checkpoints carry each double as its IEEE-754 bit pattern).
  /// Restoring a Raw reproduces every future mean()/variance() — and every
  /// eligibility decision derived from them — bit for bit.
  struct Raw {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
  };

  void add(double x);
  void reset();

  [[nodiscard]] Raw raw() const {
    return Raw{n_, mean_, m2_, min_, max_, sum_};
  }
  [[nodiscard]] static RunningStats from_raw(const Raw& r) {
    RunningStats s;
    s.n_ = static_cast<std::size_t>(r.n);
    s.mean_ = r.mean;
    s.m2_ = r.m2;
    s.min_ = r.min;
    s.max_ = r.max;
    s.sum_ = r.sum;
    return s;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (the paper thresholds "variance" of observed
  /// energies; with n==0 or n==1 this is 0).
  [[nodiscard]] double variance() const;
  /// Sample variance (divides by n-1); 0 for n < 2.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  /// Coefficient of variation stddev/|mean|; 0 when mean is 0.
  [[nodiscard]] double cv() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Relative error |est - ref| / |ref| in percent; 0 when ref == 0 && est == 0.
[[nodiscard]] double percent_error(double estimate, double reference);

/// Pearson correlation of two equally-sized series; used to check the
/// near-linear relation of Figure 6. Returns 0 for degenerate inputs.
[[nodiscard]] double pearson_correlation(const double* x, const double* y,
                                         std::size_t n);

/// Checks whether sorting indices of `x` ascending equals sorting indices of
/// `y` ascending — the paper's "relative accuracy" / ranking-fidelity test.
[[nodiscard]] bool same_ranking(const double* x, const double* y,
                                std::size_t n);

}  // namespace socpower
