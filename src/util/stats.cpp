#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace socpower {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 1) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return stddev() / std::fabs(m);
}

double percent_error(double estimate, double reference) {
  if (reference == 0.0) return estimate == 0.0 ? 0.0 : 100.0;
  return std::fabs(estimate - reference) / std::fabs(reference) * 100.0;
}

double pearson_correlation(const double* x, const double* y, std::size_t n) {
  if (n < 2) return 0.0;
  const double nd = static_cast<double>(n);
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / nd, my = sy / nd;
  double num = 0, dx2 = 0, dy2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    num += dx * dy;
    dx2 += dx * dx;
    dy2 += dy * dy;
  }
  const double den = std::sqrt(dx2 * dy2);
  if (den == 0.0) return 0.0;
  return num / den;
}

bool same_ranking(const double* x, const double* y, std::size_t n) {
  std::vector<std::size_t> ix(n), iy(n);
  std::iota(ix.begin(), ix.end(), std::size_t{0});
  std::iota(iy.begin(), iy.end(), std::size_t{0});
  auto by = [](const double* v) {
    return [v](std::size_t a, std::size_t b) {
      if (v[a] != v[b]) return v[a] < v[b];
      return a < b;  // stable tie-break so equal values cannot flip ranking
    };
  };
  std::sort(ix.begin(), ix.end(), by(x));
  std::sort(iy.begin(), iy.end(), by(y));
  return ix == iy;
}

}  // namespace socpower
