#include "util/units.hpp"

#include <cmath>
#include <cstdio>

namespace socpower {

Joules ElectricalParams::switch_energy(double cap_farads) const {
  return 0.5 * cap_farads * vdd_volts * vdd_volts;
}

double ElectricalParams::seconds(Cycles cycles) const {
  return static_cast<double>(cycles) / clock_hz;
}

double ElectricalParams::average_power_watts(Joules e, Cycles cycles) const {
  if (cycles == 0) return 0.0;
  return e / seconds(cycles);
}

double to_nanojoules(Joules e) { return e * 1e9; }
double to_microjoules(Joules e) { return e * 1e6; }
double to_millijoules(Joules e) { return e * 1e3; }
Joules from_nanojoules(double nj) { return nj * 1e-9; }

std::string format_energy(Joules e) {
  char buf[64];
  const double mag = std::fabs(e);
  if (mag >= 1.0 || mag == 0.0) {
    std::snprintf(buf, sizeof buf, "%.4g J", e);
  } else if (mag >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.4g mJ", e * 1e3);
  } else if (mag >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.4g uJ", e * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g nJ", e * 1e9);
  }
  return buf;
}

}  // namespace socpower
