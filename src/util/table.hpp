// Minimal fixed-width text table printer used by the bench binaries to emit
// the paper's tables (Table 1, Table 2, Figure 1(b), ...) in a readable form.
#pragma once

#include <string>
#include <vector>

namespace socpower {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with %.4g.
  static std::string num(double v);
  static std::string fixed(double v, int decimals);

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace socpower
