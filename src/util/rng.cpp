#include "util/rng.hpp"

namespace socpower {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's multiply-shift; slight modulo bias is irrelevant for workloads.
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next()) * bound;
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::chance(double p) { return uniform() < p; }

std::uint64_t Rng::for_stream(std::uint64_t base_seed,
                              std::uint64_t stream_id) {
  // Two splitmix rounds over a golden-ratio-spread combination: adjacent
  // stream ids land in unrelated regions of the seed space.
  std::uint64_t x = base_seed ^ (0x9e3779b97f4a7c15ull * (stream_id + 1));
  std::uint64_t s = splitmix64(x);
  return splitmix64(x) ^ s;
}

}  // namespace socpower
