// Physical units and electrical parameters used throughout the co-estimation
// framework. Energies are carried as double joules; helpers convert to the
// paper's reporting units (nJ, uJ, mJ). Times are carried as integer clock
// cycles at a component-specific frequency; helpers convert to seconds.
#pragma once

#include <cstdint>
#include <string>

namespace socpower {

using Cycles = std::uint64_t;
using Joules = double;

/// Electrical operating point shared by the power models.
/// Defaults match the paper's exploration experiment (Section 5.3):
/// Vdd = 3.3 V, f = 100 MHz (SPARClite-class embedded clock).
struct ElectricalParams {
  double vdd_volts = 3.3;
  double clock_hz = 100.0e6;

  /// Energy of charging/discharging capacitance `cap_farads` once:
  /// E = 1/2 * C * Vdd^2.
  [[nodiscard]] Joules switch_energy(double cap_farads) const;

  /// Seconds elapsed for `cycles` clock cycles.
  [[nodiscard]] double seconds(Cycles cycles) const;

  /// Average power over `cycles` for total energy `e`.
  [[nodiscard]] double average_power_watts(Joules e, Cycles cycles) const;
};

/// Unit conversions for reporting.
[[nodiscard]] double to_nanojoules(Joules e);
[[nodiscard]] double to_microjoules(Joules e);
[[nodiscard]] double to_millijoules(Joules e);
[[nodiscard]] Joules from_nanojoules(double nj);

/// Render an energy with an auto-selected engineering unit, e.g. "6.97e-05 J",
/// "123.4 nJ". Used by the report printers.
[[nodiscard]] std::string format_energy(Joules e);

}  // namespace socpower
