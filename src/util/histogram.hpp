// Fixed-bin histogram used to reproduce the per-path energy histograms of
// Figure 4(b) and for power-waveform summaries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace socpower {

class Histogram {
 public:
  /// Bins [lo, hi) split evenly into `bins` buckets; values outside the range
  /// are clamped into the first/last bucket so no sample is lost.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;
  /// Index of the fullest bin (first on ties); 0 when empty.
  [[nodiscard]] std::size_t mode_bin() const;
  /// Fraction of samples within +-`k` bins of the mode; the paper's
  /// "clustered around the mean" observation made quantitative.
  [[nodiscard]] double concentration(std::size_t k) const;

  /// ASCII rendering (one row per bin: range, count, bar), for the Fig. 4(b)
  /// reproduction binary.
  [[nodiscard]] std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace socpower
