#include "util/env.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace socpower::util {

namespace {

void warn_malformed(const char* name, const char* value, const char* want) {
  std::fprintf(stderr, "socpower: ignoring %s=\"%s\" (expected %s)\n", name,
               value, want);
}

std::string lower(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

std::optional<std::string> env_opt(const char* name) {
  const char* v = std::getenv(name);
  if (!v || !*v) return std::nullopt;
  return std::string(v);
}

long env_int(const char* name, long fallback) {
  const auto v = env_opt(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    warn_malformed(name, v->c_str(), "an integer");
    return fallback;
  }
  return parsed;
}

bool env_bool(const char* name, bool fallback) {
  const auto v = env_opt(name);
  if (!v) return fallback;
  const std::string s = lower(*v);
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  warn_malformed(name, v->c_str(), "a boolean (1/0/true/false/yes/no/on/off)");
  return fallback;
}

std::string env_str(const char* name, const std::string& fallback) {
  const auto v = env_opt(name);
  return v ? *v : fallback;
}

}  // namespace socpower::util
