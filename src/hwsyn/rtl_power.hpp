// RT-level hardware power estimation.
//
// The paper's HW estimator slot accepts either a gate-level simulator or an
// RT-level one, "depending on the accuracy/efficiency requirements"
// (Section 3). This is the RT-level option: instead of simulating gates, a
// reaction's energy is estimated from the datapath operators its executed
// s-graph path activates, using per-operator macro energies in the style of
// RT-level power macro-modeling [2, 18].
//
// Characterization is structural and exact in gate count: each operator is
// synthesized once through the same RtlBuilder the real synthesis uses, its
// nets' effective capacitances are summed, and the macro energy is
//     E_op = activity * sum_nets(1/2 * Ceff * Vdd^2),
// with `activity` the assumed average toggle fraction. A Hamming-weight term
// on the reaction's input values adds first-order data dependence.
#pragma once

#include <array>
#include <cstdint>

#include "cfsm/cfsm.hpp"
#include "hw/netlist.hpp"
#include "util/units.hpp"

namespace socpower::hwsyn {

struct RtlPowerConfig {
  unsigned width = 32;
  /// Average fraction of an operator's nets that toggle per activation.
  double activity = 0.18;
  /// Additional weight per set bit of the reaction's input values
  /// (first-order data dependence), as a fraction of `activity`.
  double data_weight = 0.35;
  hw::TechParams tech = hw::TechParams::generic_250nm();
  ElectricalParams electrical;
};

class RtlPowerEstimator {
 public:
  explicit RtlPowerEstimator(RtlPowerConfig config = {});

  /// Macro energy of one activation of `op` at the configured width.
  [[nodiscard]] Joules op_energy(cfsm::ExprOp op) const;
  /// Register write (one word latched) and event-output macro energies.
  [[nodiscard]] Joules reg_write_energy() const { return reg_write_energy_; }
  [[nodiscard]] Joules emit_energy() const { return emit_energy_; }

  /// Estimate the energy of one reaction: walks the executed trace, sums the
  /// macro energies of every operator/assign/emit it activates, and scales
  /// by the input-value Hamming weights.
  [[nodiscard]] Joules estimate_reaction(
      const cfsm::Cfsm& cfsm, const std::vector<cfsm::NodeId>& trace,
      const cfsm::ReactionInputs& inputs) const;

  [[nodiscard]] const RtlPowerConfig& config() const { return config_; }

 private:
  [[nodiscard]] Joules expr_energy(const cfsm::ExprArena& arena,
                                   cfsm::ExprId e) const;

  RtlPowerConfig config_;
  std::array<Joules, 32> op_energy_{};  // indexed by ExprOp
  Joules reg_write_energy_ = 0.0;
  Joules emit_energy_ = 0.0;
};

}  // namespace socpower::hwsyn
