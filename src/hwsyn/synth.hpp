// Hardware synthesis: s-graph -> single-cycle FSMD netlist (the POLIS
// "HW synthesis" box of Figure 2(a)).
//
// A hardware-mapped CFSM becomes a fully if-converted datapath: every node
// of the s-graph is instantiated, each guarded by an enable signal derived
// from the Test conditions along the way; variable registers latch the
// mux-merged end-of-path values; output event flags/values are the
// enable-gated merges of the Emit nodes. One reaction == one clock cycle of
// the synthesized netlist, which the gate-level power simulator evaluates
// vector by vector.
//
// Restrictions (documented; the behavioral front end accepts them anyway):
// division/modulo are not synthesizable, and shift amounts must be
// constants. Software-mapped processes have no such limits.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "hw/gatesim.hpp"
#include "hw/netlist.hpp"
#include "hwsyn/rtl.hpp"

namespace socpower::hwsyn {

struct HwImage {
  std::unique_ptr<hw::Netlist> netlist;
  unsigned width = 32;

  std::vector<cfsm::EventId> local_inputs;   // slot order of input flags/values
  std::vector<cfsm::EventId> local_outputs;  // slot order of output flags/values

  // Primary-input layout: flag of local input i at PI index i; value bits of
  // input i at n_inputs + i*width (LSB first).
  std::size_t n_inputs = 0;
  // Output layout: flag of local output j at output index j; value bits of
  // output j at n_outputs + j*width.
  std::size_t n_outputs = 0;

  /// Q-word of each variable register (introspection/tests).
  std::vector<Word> var_regs;

  [[nodiscard]] int local_input_index(cfsm::EventId e) const;
  [[nodiscard]] int local_output_index(cfsm::EventId e) const;
};

/// Synthesizes the CFSM's transition function. `width` is the datapath word
/// width; with the default 32 the netlist computes bit-exactly what the
/// behavioral model computes.
[[nodiscard]] HwImage synthesize_cfsm(const cfsm::Cfsm& cfsm,
                                      unsigned width = 32);

// -- runtime protocol (used by the co-estimation master) ---------------------

/// Drive one reaction's input events onto the netlist's primary inputs.
void stage_hw_reaction(hw::GateSim& sim, const HwImage& img,
                       const cfsm::ReactionInputs& inputs);

/// Stage one reaction's input events onto one LANE of the packed (bit-
/// parallel) staging buffers — the 64-wide counterpart of
/// stage_hw_reaction. Call GateSim::begin_packed_stage() first.
void stage_hw_reaction_lane(hw::GateSim& sim, const HwImage& img,
                            const cfsm::ReactionInputs& inputs, unsigned lane);

/// Read the emission flags/values after a step(). Order follows
/// local_outputs (synthesis order), which matches s-graph emission order for
/// single-emit-per-event reactions.
[[nodiscard]] std::vector<cfsm::EmittedEvent> read_hw_emissions(
    const hw::GateSim& sim, const HwImage& img);

/// Read a variable register's current value (introspection/tests).
[[nodiscard]] std::int32_t read_hw_var(const hw::GateSim& sim,
                                       const HwImage& img, cfsm::VarId var);

/// Force the variable registers to match the behavioral state (no energy is
/// billed). The master calls this before simulating a reaction whose
/// predecessors were served from the energy cache or skipped by sampling.
void sync_hw_vars(hw::GateSim& sim, const HwImage& img,
                  const cfsm::CfsmState& state);

}  // namespace socpower::hwsyn
