#include "hwsyn/synth.hpp"

#include <algorithm>
#include <cassert>

namespace socpower::hwsyn {

namespace {

using cfsm::ExprArena;
using cfsm::ExprId;
using cfsm::ExprNode;
using cfsm::ExprOp;
using cfsm::NodeId;
using cfsm::NodeKind;
using cfsm::SNode;

struct SynthContext {
  RtlBuilder* rtl = nullptr;
  const cfsm::Cfsm* cfsm = nullptr;
  const HwImage* img = nullptr;
  unsigned width = 32;
  std::vector<Word> input_flags1;   // one-bit words (flag nets)
  std::vector<Word> input_values;
};

Word synth_expr(SynthContext& sc, ExprId e, const std::vector<Word>& vars) {
  RtlBuilder& rtl = *sc.rtl;
  const ExprArena& a = sc.cfsm->arena();
  const ExprNode& n = a.at(e);
  const unsigned w = sc.width;
  switch (n.op) {
    case ExprOp::kConst:
      return rtl.constant(static_cast<std::uint32_t>(n.value), w);
    case ExprOp::kVar:
      return vars[static_cast<std::size_t>(n.value)];
    case ExprOp::kEventValue: {
      const int li = sc.img->local_input_index(n.value);
      assert(li >= 0 && "event value read from non-input");
      return sc.input_values[static_cast<std::size_t>(li)];
    }
    case ExprOp::kEventPresent: {
      const int li = sc.img->local_input_index(n.value);
      assert(li >= 0 && "presence test of non-input");
      return rtl.from_bit(sc.input_flags1[static_cast<std::size_t>(li)][0], w);
    }
    default:
      break;
  }
  const Word lhs = synth_expr(sc, n.lhs, vars);
  if (cfsm::expr_arity(n.op) == 1) {
    switch (n.op) {
      case ExprOp::kNeg: return rtl.neg(lhs);
      case ExprOp::kBitNot: return rtl.word_not(lhs);
      case ExprOp::kLogicNot:
        return rtl.from_bit(rtl.bit_not(rtl.reduce_or(lhs)), w);
      default: assert(false);
    }
  }
  // Constant shift amounts are resolved structurally.
  if (n.op == ExprOp::kShl || n.op == ExprOp::kShr) {
    const ExprNode& rn = a.at(n.rhs);
    assert(rn.op == ExprOp::kConst &&
           "hardware synthesis requires constant shift amounts");
    const unsigned k = static_cast<std::uint32_t>(rn.value) & 31u;
    return n.op == ExprOp::kShl ? rtl.shl_const(lhs, k)
                                : rtl.shr_arith_const(lhs, k);
  }
  const Word rhs = synth_expr(sc, n.rhs, vars);
  switch (n.op) {
    case ExprOp::kAdd: return rtl.add(lhs, rhs);
    case ExprOp::kSub: return rtl.sub(lhs, rhs);
    case ExprOp::kMul: return rtl.mul(lhs, rhs);
    case ExprOp::kBitAnd: return rtl.word_and(lhs, rhs);
    case ExprOp::kBitOr: return rtl.word_or(lhs, rhs);
    case ExprOp::kBitXor: return rtl.word_xor(lhs, rhs);
    case ExprOp::kEq: return rtl.from_bit(rtl.eq(lhs, rhs), w);
    case ExprOp::kNe: return rtl.from_bit(rtl.bit_not(rtl.eq(lhs, rhs)), w);
    case ExprOp::kLt: return rtl.from_bit(rtl.lt_signed(lhs, rhs), w);
    case ExprOp::kLe:
      return rtl.from_bit(rtl.bit_not(rtl.lt_signed(rhs, lhs)), w);
    case ExprOp::kGt: return rtl.from_bit(rtl.lt_signed(rhs, lhs), w);
    case ExprOp::kGe:
      return rtl.from_bit(rtl.bit_not(rtl.lt_signed(lhs, rhs)), w);
    case ExprOp::kLogicAnd:
      return rtl.from_bit(
          rtl.bit_and(rtl.reduce_or(lhs), rtl.reduce_or(rhs)), w);
    case ExprOp::kLogicOr:
      return rtl.from_bit(rtl.bit_or(rtl.reduce_or(lhs), rtl.reduce_or(rhs)),
                          w);
    case ExprOp::kDiv:
    case ExprOp::kMod:
      assert(false && "division is not synthesizable to hardware");
      return rtl.constant(0, w);
    default:
      assert(false);
      return rtl.constant(0, w);
  }
}

/// Topological order of reachable s-graph nodes (preds before succs).
std::vector<NodeId> topo_nodes(const cfsm::SGraph& g) {
  std::vector<int> indeg(g.node_count(), -1);  // -1 == unreachable
  // BFS to find reachable set and count in-degrees.
  std::vector<NodeId> work{g.root()};
  indeg[static_cast<std::size_t>(g.root())] = 0;
  auto visit_edge = [&](NodeId to) {
    if (to == cfsm::kNoNode) return;
    auto& d = indeg[static_cast<std::size_t>(to)];
    if (d == -1) {
      d = 1;
      work.push_back(to);
    } else {
      ++d;
    }
  };
  for (std::size_t i = 0; i < work.size(); ++i) {
    const SNode& n = g.node(work[i]);
    if (n.kind == NodeKind::kEnd) continue;
    visit_edge(n.next);
    if (n.kind == NodeKind::kTest) visit_edge(n.next_else);
  }
  std::vector<NodeId> order;
  order.reserve(work.size());
  std::vector<NodeId> ready{g.root()};
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    const SNode& n = g.node(id);
    if (n.kind == NodeKind::kEnd) continue;
    auto relax = [&](NodeId to) {
      if (to == cfsm::kNoNode) return;
      if (--indeg[static_cast<std::size_t>(to)] == 0) ready.push_back(to);
    };
    relax(n.next);
    if (n.kind == NodeKind::kTest) relax(n.next_else);
  }
  assert(order.size() == work.size() && "cycle in s-graph");
  return order;
}

struct Incoming {
  NetId enable = hw::kNoNet;
  std::vector<Word> vars;
};

}  // namespace

int HwImage::local_input_index(cfsm::EventId e) const {
  for (std::size_t i = 0; i < local_inputs.size(); ++i)
    if (local_inputs[i] == e) return static_cast<int>(i);
  return -1;
}

int HwImage::local_output_index(cfsm::EventId e) const {
  for (std::size_t i = 0; i < local_outputs.size(); ++i)
    if (local_outputs[i] == e) return static_cast<int>(i);
  return -1;
}

HwImage synthesize_cfsm(const cfsm::Cfsm& cfsm, unsigned width) {
  assert(cfsm.graph().validate().empty() && "invalid s-graph");
  HwImage img;
  img.width = width;
  img.netlist = std::make_unique<hw::Netlist>();
  RtlBuilder rtl(img.netlist.get());

  img.local_inputs = cfsm.inputs();
  for (cfsm::EventId e : cfsm.sampled_inputs()) img.local_inputs.push_back(e);
  img.local_outputs = cfsm.outputs();
  img.n_inputs = img.local_inputs.size();
  img.n_outputs = img.local_outputs.size();

  SynthContext sc;
  sc.rtl = &rtl;
  sc.cfsm = &cfsm;
  sc.img = &img;
  sc.width = width;

  // Primary inputs: all flags first (PI index == local input index), then
  // the value words.
  std::vector<NetId> flag_nets;
  for (std::size_t i = 0; i < img.n_inputs; ++i)
    flag_nets.push_back(img.netlist->add_primary_input(
        "in_flag" + std::to_string(i)));
  for (std::size_t i = 0; i < img.n_inputs; ++i)
    sc.input_values.push_back(
        rtl.input_word("in_val" + std::to_string(i), width));
  for (const NetId f : flag_nets) sc.input_flags1.push_back(Word{f});

  // Variable registers.
  for (const auto& v : cfsm.vars())
    img.var_regs.push_back(
        rtl.reg_word(static_cast<std::uint32_t>(v.init), width));

  // Symbolic execution over the s-graph in topological order.
  const auto& g = cfsm.graph();
  std::vector<std::vector<Incoming>> incoming(g.node_count());
  incoming[static_cast<std::size_t>(g.root())].push_back(
      {img.netlist->const1(), img.var_regs});

  struct EmitRecord {
    cfsm::EventId event;
    NetId enable;
    Word value;
  };
  std::vector<EmitRecord> emits;
  std::vector<Incoming> finals;  // states reaching End nodes

  for (const NodeId id : topo_nodes(g)) {
    auto& inc = incoming[static_cast<std::size_t>(id)];
    assert(!inc.empty() && "reachable node with no incoming state");
    // Merge incoming states.
    NetId enable = inc[0].enable;
    std::vector<Word> vars = inc[0].vars;
    for (std::size_t k = 1; k < inc.size(); ++k) {
      for (std::size_t v = 0; v < vars.size(); ++v)
        if (inc[k].vars[v] != vars[v])
          vars[v] = rtl.mux(inc[k].enable, inc[k].vars[v], vars[v]);
      enable = rtl.bit_or(enable, inc[k].enable);
    }
    const SNode& n = g.node(id);
    switch (n.kind) {
      case NodeKind::kEnd:
        finals.push_back({enable, vars});
        break;
      case NodeKind::kAssign: {
        const Word rhs = synth_expr(sc, n.expr, vars);
        vars[static_cast<std::size_t>(n.var)] = rhs;
        incoming[static_cast<std::size_t>(n.next)].push_back({enable, vars});
        break;
      }
      case NodeKind::kEmit: {
        const Word val = n.expr == cfsm::kNoExpr
                             ? rtl.constant(0, width)
                             : synth_expr(sc, n.expr, vars);
        emits.push_back({n.event, enable, val});
        incoming[static_cast<std::size_t>(n.next)].push_back({enable, vars});
        break;
      }
      case NodeKind::kTest: {
        const Word cond = synth_expr(sc, n.expr, vars);
        const NetId nz = rtl.reduce_or(cond);
        const NetId then_en = rtl.bit_and(enable, nz);
        const NetId else_en = rtl.bit_and(enable, rtl.bit_not(nz));
        incoming[static_cast<std::size_t>(n.next)].push_back({then_en, vars});
        incoming[static_cast<std::size_t>(n.next_else)].push_back(
            {else_en, vars});
        break;
      }
    }
  }

  // Register next-state: merge final states (exactly one is enabled each
  // reaction, and the enables of the finals partition the constant-1 root
  // enable, so the chain-mux selects the executed path's values).
  assert(!finals.empty());
  std::vector<Word> next_vars = finals[0].vars;
  for (std::size_t k = 1; k < finals.size(); ++k)
    for (std::size_t v = 0; v < next_vars.size(); ++v)
      if (finals[k].vars[v] != next_vars[v])
        next_vars[v] =
            rtl.mux(finals[k].enable, finals[k].vars[v], next_vars[v]);
  for (std::size_t v = 0; v < img.var_regs.size(); ++v)
    rtl.connect_reg(img.var_regs[v], next_vars[v]);

  // Output events: flags first, then value words, in local_outputs order.
  std::vector<NetId> out_flags(img.n_outputs, img.netlist->const0());
  std::vector<Word> out_values(img.n_outputs, rtl.constant(0, width));
  for (const EmitRecord& er : emits) {
    const int j = img.local_output_index(er.event);
    assert(j >= 0 && "emit of an undeclared output event");
    const auto ji = static_cast<std::size_t>(j);
    out_flags[ji] = rtl.bit_or(out_flags[ji], er.enable);
    out_values[ji] = rtl.mux(er.enable, er.value, out_values[ji]);
  }
  for (std::size_t j = 0; j < img.n_outputs; ++j)
    img.netlist->mark_output(out_flags[j], "out_flag" + std::to_string(j));
  for (std::size_t j = 0; j < img.n_outputs; ++j)
    for (unsigned b = 0; b < width; ++b)
      img.netlist->mark_output(out_values[j][b],
                               "out_val" + std::to_string(j) + "[" +
                                   std::to_string(b) + "]");

  assert(img.netlist->validate().empty());
  return img;
}

void stage_hw_reaction(hw::GateSim& sim, const HwImage& img,
                       const cfsm::ReactionInputs& inputs) {
  for (std::size_t i = 0; i < img.n_inputs; ++i) {
    const cfsm::EventId e = img.local_inputs[i];
    const bool present = inputs.present(e);
    sim.set_input(i, present);
    sim.set_input_word(img.n_inputs + i * img.width,
                       present ? static_cast<std::uint32_t>(inputs.value(e))
                               : 0u,
                       img.width);
  }
}

void stage_hw_reaction_lane(hw::GateSim& sim, const HwImage& img,
                            const cfsm::ReactionInputs& inputs,
                            unsigned lane) {
  // Packed counterpart of stage_hw_reaction: same PI layout, one lane of the
  // packed staging buffers. begin_packed_stage() must already have run.
  for (std::size_t i = 0; i < img.n_inputs; ++i) {
    const cfsm::EventId e = img.local_inputs[i];
    const bool present = inputs.present(e);
    sim.stage_packed_input(i, lane, present);
    sim.stage_packed_input_word(
        img.n_inputs + i * img.width,
        present ? static_cast<std::uint32_t>(inputs.value(e)) : 0u, img.width,
        lane);
  }
}

std::vector<cfsm::EmittedEvent> read_hw_emissions(const hw::GateSim& sim,
                                                  const HwImage& img) {
  std::vector<cfsm::EmittedEvent> out;
  const auto& outs = sim.netlist().outputs();
  for (std::size_t j = 0; j < img.n_outputs; ++j) {
    if (!sim.net_value(outs[j].first)) continue;
    const auto raw = static_cast<std::uint32_t>(
        sim.read_word(img.n_outputs + j * img.width, img.width));
    // Sign-extend when the datapath is narrower than 32 bits.
    std::int32_t v = static_cast<std::int32_t>(raw);
    if (img.width < 32) {
      const std::uint32_t sign = 1u << (img.width - 1);
      if (raw & sign) v = static_cast<std::int32_t>(raw | ~((sign << 1) - 1));
    }
    out.push_back({img.local_outputs[j], v});
  }
  return out;
}

void sync_hw_vars(hw::GateSim& sim, const HwImage& img,
                  const cfsm::CfsmState& state) {
  for (std::size_t v = 0; v < state.vars.size(); ++v) {
    const Word& q = img.var_regs[v];
    const auto raw = static_cast<std::uint32_t>(state.vars[v]);
    for (std::size_t b = 0; b < q.size(); ++b)
      sim.force_net(q[b], ((raw >> b) & 1u) != 0);
  }
}

std::int32_t read_hw_var(const hw::GateSim& sim, const HwImage& img,
                         cfsm::VarId var) {
  const Word& q = img.var_regs[static_cast<std::size_t>(var)];
  std::uint32_t raw = 0;
  for (std::size_t b = 0; b < q.size(); ++b)
    if (sim.net_value(q[b])) raw |= 1u << b;
  return static_cast<std::int32_t>(raw);
}

}  // namespace socpower::hwsyn
