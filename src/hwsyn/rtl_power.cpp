#include "hwsyn/rtl_power.hpp"

#include <bit>
#include <cassert>

#include "hwsyn/rtl.hpp"

namespace socpower::hwsyn {

namespace {

using cfsm::ExprOp;

/// Total switched capacitance (at activity 1.0) of every net an operator
/// instance adds to a netlist.
double operator_capacitance(ExprOp op, unsigned width,
                            const hw::TechParams& tech) {
  hw::Netlist nl;
  RtlBuilder rtl(&nl);
  const Word a = rtl.input_word("a", width);
  const Word b = rtl.input_word("b", width);
  const std::size_t nets_before = nl.net_count();
  Word out;
  switch (op) {
    case ExprOp::kAdd: out = rtl.add(a, b); break;
    case ExprOp::kSub: out = rtl.sub(a, b); break;
    case ExprOp::kMul: out = rtl.mul(a, b); break;
    // Division is not synthesizable; estimate it as a multiplier-class
    // sequential datapath (conservative but bounded).
    case ExprOp::kDiv:
    case ExprOp::kMod: out = rtl.mul(a, b); break;
    case ExprOp::kNeg: out = rtl.neg(a); break;
    case ExprOp::kBitAnd: out = rtl.word_and(a, b); break;
    case ExprOp::kBitOr: out = rtl.word_or(a, b); break;
    case ExprOp::kBitXor: out = rtl.word_xor(a, b); break;
    case ExprOp::kBitNot: out = rtl.word_not(a); break;
    case ExprOp::kShl: out = rtl.shl_const(a, 7); break;
    case ExprOp::kShr: out = rtl.shr_arith_const(a, 7); break;
    case ExprOp::kEq: out = Word{rtl.eq(a, b)}; break;
    case ExprOp::kNe: out = Word{rtl.bit_not(rtl.eq(a, b))}; break;
    case ExprOp::kLt:
    case ExprOp::kGe: out = Word{rtl.lt_signed(a, b)}; break;
    case ExprOp::kGt:
    case ExprOp::kLe: out = Word{rtl.lt_signed(b, a)}; break;
    case ExprOp::kLogicAnd:
      out = Word{rtl.bit_and(rtl.reduce_or(a), rtl.reduce_or(b))};
      break;
    case ExprOp::kLogicOr:
      out = Word{rtl.bit_or(rtl.reduce_or(a), rtl.reduce_or(b))};
      break;
    case ExprOp::kLogicNot:
      out = Word{rtl.bit_not(rtl.reduce_or(a))};
      break;
    default:
      return 0.0;  // leaves have no datapath of their own
  }
  double cap = 0.0;
  for (std::size_t n = nets_before; n < nl.net_count(); ++n)
    cap += nl.net_capacitance(static_cast<hw::NetId>(n), tech);
  return cap;
}

}  // namespace

RtlPowerEstimator::RtlPowerEstimator(RtlPowerConfig config)
    : config_(config) {
  for (int i = 0; i <= static_cast<int>(ExprOp::kLogicNot); ++i) {
    const auto op = static_cast<ExprOp>(i);
    const double cap =
        operator_capacitance(op, config_.width, config_.tech);
    op_energy_[static_cast<std::size_t>(i)] =
        config_.activity * config_.electrical.switch_energy(cap);
  }
  // A register write toggles ~half the word's DFFs plus the clock load.
  const double reg_cap =
      static_cast<double>(config_.width) *
      (config_.tech.dff_output_cap_f + config_.tech.clock_cap_per_dff_f);
  reg_write_energy_ = 0.5 * config_.electrical.switch_energy(reg_cap);
  // Driving an output event: flag plus value word leave the block.
  const double out_cap = static_cast<double>(config_.width + 1) *
                         (config_.tech.input_net_cap_f +
                          config_.tech.wire_cap_per_fanout_f);
  emit_energy_ = 0.5 * config_.electrical.switch_energy(out_cap);
}

Joules RtlPowerEstimator::op_energy(cfsm::ExprOp op) const {
  return op_energy_[static_cast<std::size_t>(op)];
}

Joules RtlPowerEstimator::expr_energy(const cfsm::ExprArena& arena,
                                      cfsm::ExprId e) const {
  const cfsm::ExprNode& n = arena.at(e);
  if (cfsm::expr_arity(n.op) == 0) return 0.0;
  Joules sum = op_energy(n.op);
  sum += expr_energy(arena, n.lhs);
  if (cfsm::expr_arity(n.op) == 2) sum += expr_energy(arena, n.rhs);
  return sum;
}

Joules RtlPowerEstimator::estimate_reaction(
    const cfsm::Cfsm& cfsm, const std::vector<cfsm::NodeId>& trace,
    const cfsm::ReactionInputs& inputs) const {
  // First-order data dependence: denser input values switch more datapath
  // bits. Scale around 1.0 at half-full words.
  unsigned set_bits = 0;
  unsigned words = 0;
  for (const auto& [ev, value] : inputs.all()) {
    (void)ev;
    set_bits += static_cast<unsigned>(
        std::popcount(static_cast<std::uint32_t>(value)));
    ++words;
  }
  const double density =
      words == 0 ? 0.5
                 : static_cast<double>(set_bits) /
                       (static_cast<double>(words) * config_.width);
  const double scale = 1.0 + config_.data_weight * (2.0 * density - 1.0);

  Joules e = 0.0;
  const auto& g = cfsm.graph();
  const auto& arena = cfsm.arena();
  for (const cfsm::NodeId id : trace) {
    const cfsm::SNode& n = g.node(id);
    switch (n.kind) {
      case cfsm::NodeKind::kEnd:
        break;
      case cfsm::NodeKind::kAssign:
        e += expr_energy(arena, n.expr) + reg_write_energy_;
        break;
      case cfsm::NodeKind::kEmit:
        if (n.expr != cfsm::kNoExpr) e += expr_energy(arena, n.expr);
        e += emit_energy_;
        break;
      case cfsm::NodeKind::kTest:
        e += expr_energy(arena, n.expr);
        break;
    }
  }
  return e * scale;
}

}  // namespace socpower::hwsyn
