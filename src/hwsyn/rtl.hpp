// Word-level RTL construction over the gate-level netlist.
//
// The hardware synthesizer maps s-graph expressions to datapath operators;
// this builder expands each operator into primitive gates (ripple-carry
// adders, shift-add multipliers, mux trees, reduction networks). Words are
// little-endian vectors of nets (LSB first).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/netlist.hpp"

namespace socpower::hwsyn {

using hw::GateType;
using hw::NetId;
using Word = std::vector<NetId>;

class RtlBuilder {
 public:
  explicit RtlBuilder(hw::Netlist* nl) : nl_(nl) {}

  [[nodiscard]] hw::Netlist& netlist() { return *nl_; }

  // -- word sources ----------------------------------------------------------
  [[nodiscard]] Word input_word(const std::string& name, unsigned width);
  [[nodiscard]] Word constant(std::uint32_t value, unsigned width);
  /// Word of DFFs with the given initial value; connect with connect_reg.
  [[nodiscard]] Word reg_word(std::uint32_t init, unsigned width);
  void connect_reg(const Word& q, const Word& d);

  // -- bit helpers -----------------------------------------------------------
  [[nodiscard]] NetId bit_not(NetId a);
  [[nodiscard]] NetId bit_and(NetId a, NetId b);
  [[nodiscard]] NetId bit_or(NetId a, NetId b);
  [[nodiscard]] NetId bit_xor(NetId a, NetId b);
  /// sel ? a : b.
  [[nodiscard]] NetId bit_mux(NetId sel, NetId a, NetId b);

  // -- arithmetic ------------------------------------------------------------
  [[nodiscard]] Word add(const Word& a, const Word& b);
  [[nodiscard]] Word sub(const Word& a, const Word& b);
  [[nodiscard]] Word neg(const Word& a);
  [[nodiscard]] Word mul(const Word& a, const Word& b);  // low `width` bits

  // -- bitwise ---------------------------------------------------------------
  [[nodiscard]] Word word_and(const Word& a, const Word& b);
  [[nodiscard]] Word word_or(const Word& a, const Word& b);
  [[nodiscard]] Word word_xor(const Word& a, const Word& b);
  [[nodiscard]] Word word_not(const Word& a);
  [[nodiscard]] Word shl_const(const Word& a, unsigned k);
  [[nodiscard]] Word shr_arith_const(const Word& a, unsigned k);

  // -- comparisons (1-bit results) --------------------------------------------
  [[nodiscard]] NetId eq(const Word& a, const Word& b);
  [[nodiscard]] NetId lt_signed(const Word& a, const Word& b);
  [[nodiscard]] NetId lt_unsigned(const Word& a, const Word& b);
  [[nodiscard]] NetId reduce_or(const Word& a);

  // -- selection / widening ----------------------------------------------------
  /// sel ? a : b, word-wise.
  [[nodiscard]] Word mux(NetId sel, const Word& a, const Word& b);
  /// 0/1-extend a single bit to a word.
  [[nodiscard]] Word from_bit(NetId bit, unsigned width);

 private:
  hw::Netlist* nl_;
};

}  // namespace socpower::hwsyn
