#include "hwsyn/rtl.hpp"

#include <cassert>

namespace socpower::hwsyn {

Word RtlBuilder::input_word(const std::string& name, unsigned width) {
  Word w(width);
  for (unsigned b = 0; b < width; ++b)
    w[b] = nl_->add_primary_input(name + "[" + std::to_string(b) + "]");
  return w;
}

Word RtlBuilder::constant(std::uint32_t value, unsigned width) {
  Word w(width);
  for (unsigned b = 0; b < width; ++b)
    w[b] = (value >> b) & 1u ? nl_->const1() : nl_->const0();
  return w;
}

Word RtlBuilder::reg_word(std::uint32_t init, unsigned width) {
  Word w(width);
  for (unsigned b = 0; b < width; ++b)
    w[b] = nl_->add_dff(((init >> b) & 1u) != 0);
  return w;
}

void RtlBuilder::connect_reg(const Word& q, const Word& d) {
  assert(q.size() == d.size());
  for (std::size_t b = 0; b < q.size(); ++b) nl_->connect_dff_d(q[b], d[b]);
}

NetId RtlBuilder::bit_not(NetId a) { return nl_->add_gate(GateType::kInv, a); }
NetId RtlBuilder::bit_and(NetId a, NetId b) {
  return nl_->add_gate(GateType::kAnd2, a, b);
}
NetId RtlBuilder::bit_or(NetId a, NetId b) {
  return nl_->add_gate(GateType::kOr2, a, b);
}
NetId RtlBuilder::bit_xor(NetId a, NetId b) {
  return nl_->add_gate(GateType::kXor2, a, b);
}
NetId RtlBuilder::bit_mux(NetId sel, NetId a, NetId b) {
  // MUX2 cell: in0 selected when sel == 0; want sel ? a : b.
  return nl_->add_gate(GateType::kMux2, b, a, sel);
}

Word RtlBuilder::add(const Word& a, const Word& b) {
  assert(a.size() == b.size());
  Word sum(a.size());
  NetId carry = nl_->const0();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetId axb = bit_xor(a[i], b[i]);
    sum[i] = bit_xor(axb, carry);
    // carry_out = (a & b) | (carry & (a ^ b))
    carry = bit_or(bit_and(a[i], b[i]), bit_and(carry, axb));
  }
  return sum;
}

Word RtlBuilder::sub(const Word& a, const Word& b) {
  // a + ~b + 1 (ripple with carry-in 1).
  assert(a.size() == b.size());
  Word diff(a.size());
  NetId carry = nl_->const1();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetId nb = bit_not(b[i]);
    const NetId axb = bit_xor(a[i], nb);
    diff[i] = bit_xor(axb, carry);
    carry = bit_or(bit_and(a[i], nb), bit_and(carry, axb));
  }
  return diff;
}

Word RtlBuilder::neg(const Word& a) {
  return sub(constant(0, static_cast<unsigned>(a.size())), a);
}

Word RtlBuilder::mul(const Word& a, const Word& b) {
  assert(a.size() == b.size());
  const auto width = static_cast<unsigned>(a.size());
  // Shift-add array: acc += (a << i) & {b[i]...}.
  Word acc = constant(0, width);
  for (unsigned i = 0; i < width; ++i) {
    Word partial(width, nl_->const0());
    for (unsigned j = 0; i + j < width; ++j)
      partial[i + j] = bit_and(a[j], b[i]);
    acc = add(acc, partial);
  }
  return acc;
}

Word RtlBuilder::word_and(const Word& a, const Word& b) {
  assert(a.size() == b.size());
  Word w(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) w[i] = bit_and(a[i], b[i]);
  return w;
}

Word RtlBuilder::word_or(const Word& a, const Word& b) {
  assert(a.size() == b.size());
  Word w(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) w[i] = bit_or(a[i], b[i]);
  return w;
}

Word RtlBuilder::word_xor(const Word& a, const Word& b) {
  assert(a.size() == b.size());
  Word w(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) w[i] = bit_xor(a[i], b[i]);
  return w;
}

Word RtlBuilder::word_not(const Word& a) {
  Word w(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) w[i] = bit_not(a[i]);
  return w;
}

Word RtlBuilder::shl_const(const Word& a, unsigned k) {
  const auto width = a.size();
  Word w(width, nl_->const0());
  for (std::size_t i = 0; i + k < width; ++i) w[i + k] = a[i];
  return w;
}

Word RtlBuilder::shr_arith_const(const Word& a, unsigned k) {
  const auto width = a.size();
  Word w(width);
  const NetId sign = a[width - 1];
  for (std::size_t i = 0; i < width; ++i)
    w[i] = (i + k < width) ? a[i + k] : sign;
  return w;
}

NetId RtlBuilder::eq(const Word& a, const Word& b) {
  assert(a.size() == b.size());
  NetId any_diff = nl_->const0();
  for (std::size_t i = 0; i < a.size(); ++i)
    any_diff = bit_or(any_diff, bit_xor(a[i], b[i]));
  return bit_not(any_diff);
}

NetId RtlBuilder::lt_unsigned(const Word& a, const Word& b) {
  // a < b  <=>  borrow out of a - b.
  assert(a.size() == b.size());
  NetId carry = nl_->const1();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetId nb = bit_not(b[i]);
    const NetId axb = bit_xor(a[i], nb);
    carry = bit_or(bit_and(a[i], nb), bit_and(carry, axb));
  }
  return bit_not(carry);  // no carry-out => borrow => a < b
}

NetId RtlBuilder::lt_signed(const Word& a, const Word& b) {
  // Flip sign bits and compare unsigned.
  Word a2 = a, b2 = b;
  a2.back() = bit_not(a.back());
  b2.back() = bit_not(b.back());
  return lt_unsigned(a2, b2);
}

NetId RtlBuilder::reduce_or(const Word& a) {
  NetId acc = nl_->const0();
  for (const NetId n : a) acc = bit_or(acc, n);
  return acc;
}

Word RtlBuilder::mux(NetId sel, const Word& a, const Word& b) {
  assert(a.size() == b.size());
  Word w(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) w[i] = bit_mux(sel, a[i], b[i]);
  return w;
}

Word RtlBuilder::from_bit(NetId bit, unsigned width) {
  Word w(width, nl_->const0());
  w[0] = bit;
  return w;
}

}  // namespace socpower::hwsyn
