// Transition-level co-simulation tracing.
//
// The paper's master "provides source-level graphical interface and
// debugging capabilities"; this is the headless equivalent: a recorder that
// captures every CFSM transition (task, path, time, cycles, energy, whether
// it was simulated or served by an acceleration technique) and renders the
// trace as text or CSV. Attach with CoEstimator::set_transition_hook.
#pragma once

#include <string>
#include <vector>

#include "core/coestimator.hpp"

namespace socpower::core {

class TransitionTrace {
 public:
  /// Record at most `capacity` transitions (0 = unlimited). Overflowing
  /// records are dropped and counted.
  explicit TransitionTrace(std::size_t capacity = 0)
      : capacity_(capacity) {}

  /// The hook to install: `est.set_transition_hook(trace.hook());`.
  [[nodiscard]] TransitionHook hook() {
    return [this](const TransitionRecord& r) { record(r); };
  }

  void record(const TransitionRecord& r);
  void clear();

  [[nodiscard]] const std::vector<TransitionRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Records of one task, in time order.
  [[nodiscard]] std::vector<TransitionRecord> for_task(
      cfsm::CfsmId task) const;

  /// Text rendering: one line per transition, resolved process names.
  [[nodiscard]] std::string render(const cfsm::Network& network,
                                   std::size_t max_lines = 200) const;
  /// CSV: time,process,path,cycles,energy_nJ,simulated
  [[nodiscard]] std::string to_csv(const cfsm::Network& network) const;

 private:
  std::size_t capacity_;
  std::vector<TransitionRecord> records_;
  std::uint64_t dropped_ = 0;
};

}  // namespace socpower::core
