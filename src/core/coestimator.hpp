// The SOC power co-estimation framework (paper Sections 3 and 4).
//
// CoEstimator is the public facade over the split master/backend
// architecture:
//   * core::CoSimMaster (cosim_master.hpp) plays the PTOLEMY role of
//     Figure 2(b) — it simulates the discrete-event behavioral model of the
//     whole system (the golden CFSM network) and owns scheduling and the
//     acceleration policy;
//   * core::ComponentEstimator backends (estimators/) price the components —
//     software transitions dispatch the compiled SLITE code on the ISS
//     (serialized on the single embedded CPU by the RTOS model), hardware
//     transitions go to the gate-level or RT-level power simulator, the
//     per-path instruction reference stream goes to the fast cache simulator
//     (the ISS assumes 100 % hits), and shared-memory traffic goes through
//     the behavioral bus/arbiter model. Backends are selected by name
//     (CoEstimatorConfig::estimators) from the EstimatorRegistry.
// Cycle and energy statistics are collected per component into a PowerTrace.
//
// The unit of synchronization is a CFSM transition, exactly as in POLIS.
//
// Acceleration (Section 4) is selectable per run:
//   kNone       every transition invokes the lower-level estimator,
//   kCaching    (task, path) energy/delay cache with variance thresholds,
//   kMacroModel software transitions priced by the characterized macro-op
//               library; the ISS is never invoked,
//   kSampling   K-memory dynamic sequence compaction decides which
//               transitions are simulated; the rest extrapolate from
//               per-path running means.
//
// run_separate() reproduces the paper's Section 2 baseline: a behavioral
// (timing-independent) simulation captures per-component input traces, then
// each component estimator runs in isolation on its trace.
#pragma once

#include "core/cosim_master.hpp"

namespace socpower::core {

class CoEstimator {
 public:
  CoEstimator(const cfsm::Network* network, CoEstimatorConfig config = {});
  ~CoEstimator();

  CoEstimator(const CoEstimator&) = delete;
  CoEstimator& operator=(const CoEstimator&) = delete;

  // -- implementation mapping (before prepare) -------------------------------
  void map_sw(cfsm::CfsmId task, int rtos_priority = 0);
  /// Multicore mapping: run `task` as software on CPU `core` (0-based).
  /// Aborts when core >= config.cores.
  void map_sw(cfsm::CfsmId task, unsigned core, int rtos_priority);
  void map_hw(cfsm::CfsmId task,
              HwEstimatorKind kind = HwEstimatorKind::kGateLevel);
  [[nodiscard]] bool is_sw(cfsm::CfsmId task) const;

  void set_traffic_hook(TrafficHook hook);
  void set_transition_hook(TransitionHook hook);
  /// Hooks compose: systems install their IP models (shared memory, ...)
  /// and observers/tests may add more; all are called per occurrence in
  /// installation order.
  void set_environment_hook(EnvironmentHook hook);

  /// Compile SW images, synthesize HW netlists, characterize the macro-op
  /// library, build the simulators. Must be called once before run().
  void prepare();

  // -- runs -------------------------------------------------------------------
  /// Power co-estimation (concurrent, synchronized estimators).
  RunResults run(const sim::Stimulus& stimulus);
  /// The Section 2 baseline: separate per-component estimation driven by
  /// traces captured from a timing-independent behavioral simulation.
  RunResults run_separate(const sim::Stimulus& stimulus);

  // -- introspection ----------------------------------------------------------
  [[nodiscard]] const MacroModelLibrary& macromodel() const;
  /// Replace the characterized macro-op library (e.g. one loaded from a
  /// parameter file produced on another machine — the characterize-once
  /// workflow of Figure 3). Clears the per-path estimate memos.
  void set_macromodel(MacroModelLibrary library);
  [[nodiscard]] const EnergyCache& energy_cache() const;
  [[nodiscard]] cfsm::PathTable& path_table(cfsm::CfsmId task);
  [[nodiscard]] const swsyn::SwImage* sw_image(cfsm::CfsmId task) const;
  /// Behavioral state of a process after the last run (functional checks).
  [[nodiscard]] const cfsm::CfsmState& process_state(cfsm::CfsmId task) const;
  [[nodiscard]] const hwsyn::HwImage* hw_image(cfsm::CfsmId task) const;
  /// Power waveform support (requires keep_power_samples).
  [[nodiscard]] const sim::PowerTrace& power_trace() const;
  [[nodiscard]] const bus::BusScheduler& bus_model() const;
  [[nodiscard]] CoEstimatorConfig& config();
  [[nodiscard]] const CoEstimatorConfig& config() const;

  /// The component-estimator backends behind this facade (available after
  /// prepare()); see CoSimMaster::backends().
  [[nodiscard]] std::vector<const ComponentEstimator*> backends() const;

  // -- checkpoint/restore (see CoSimMaster) ----------------------------------
  [[nodiscard]] CoSimMaster::WarmSnapshot export_warm_state() const;
  [[nodiscard]] bool import_warm_state(const CoSimMaster::WarmSnapshot& snap);
  [[nodiscard]] ComponentEstimator::WarmCacheCounters warm_cache_counters()
      const;

 private:
  CoSimMaster master_;
};

}  // namespace socpower::core
