// The SOC power co-estimation framework (paper Sections 3 and 4).
//
// CoEstimator plays the PTOLEMY role of Figure 2(b): it simulates the
// discrete-event behavioral model of the whole system (the golden CFSM
// network), and at every CFSM transition synchronizes the component power
// estimators —
//   * software transitions dispatch the compiled SLITE code on the ISS
//     (serialized on the single embedded CPU by the RTOS model),
//   * hardware transitions apply an input vector to the synthesized gate
//     netlist and step the gate-level power simulator,
//   * the per-path instruction reference stream goes to the fast cache
//     simulator (the ISS assumes 100 % hits),
//   * shared-memory traffic goes through the behavioral bus/arbiter model.
// Cycle and energy statistics are collected per component into a PowerTrace.
//
// The unit of synchronization is a CFSM transition, exactly as in POLIS.
//
// Acceleration (Section 4) is selectable per run:
//   kNone       every transition invokes the lower-level estimator,
//   kCaching    (task, path) energy/delay cache with variance thresholds,
//   kMacroModel software transitions priced by the characterized macro-op
//               library; the ISS is never invoked,
//   kSampling   K-memory dynamic sequence compaction decides which
//               transitions are simulated; the rest extrapolate from
//               per-path running means.
//
// run_separate() reproduces the paper's Section 2 baseline: a behavioral
// (timing-independent) simulation captures per-component input traces, then
// each component estimator runs in isolation on its trace.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bus/bus_model.hpp"
#include "cache/cache_sim.hpp"
#include "cfsm/cfsm.hpp"
#include "core/compactor.hpp"
#include "core/energy_cache.hpp"
#include "core/macromodel.hpp"
#include "hw/gatesim.hpp"
#include "hwsyn/rtl_power.hpp"
#include "hwsyn/synth.hpp"
#include "iss/iss.hpp"
#include "sim/event_queue.hpp"
#include "sim/power_trace.hpp"
#include "swsyn/codegen.hpp"
#include "swsyn/rtos.hpp"

namespace socpower::core {

enum class Acceleration { kNone, kCaching, kMacroModel, kSampling };

[[nodiscard]] const char* acceleration_name(Acceleration a);

/// Effective per-event final values of an emission list: same-instant
/// duplicates collapse at the receiver with the later emission winning, and
/// the result is sorted by event id. Used by the verify_lowlevel
/// cross-checks; exposed for unit testing.
[[nodiscard]] std::vector<cfsm::EmittedEvent> effective_emissions(
    std::vector<cfsm::EmittedEvent> ems);

/// Hardware power estimator choice per ASIC (paper Section 3: "the hardware
/// netlist may be represented at the RT-level or the gate-level, depending
/// on the accuracy/efficiency requirements").
enum class HwEstimatorKind { kGateLevel, kRtl };

struct CoEstimatorConfig {
  ElectricalParams electrical;
  iss::IssConfig iss;
  /// Data-dependent (DSP-style) term of the instruction power model; the
  /// default 0 models the SPARClite (data-independent, caching is exact).
  double data_nj_per_toggle = 0.0;

  bool enable_icache = true;
  cache::CacheConfig icache;

  bus::BusParams bus;
  swsyn::RtosConfig rtos;
  unsigned hw_reaction_cycles = 1;  // latency of a HW transition, pre-bus
  /// Supply current (mA) the CPU draws while blocked on its shared-memory
  /// transfers (low-power wait state; lower than a pipeline stall).
  double bus_wait_current_ma = 70.0;

  Acceleration accel = Acceleration::kNone;
  EnergyCacheConfig energy_cache;
  CompactionParams sampling;
  /// Apply caching/sampling to hardware transitions too. Off by default:
  /// the paper's Table 1 experiment accelerates the ISS side only, which is
  /// why it reports zero accuracy loss (the gate-level estimator is
  /// data-dependent). Enabling this is the HW-caching ablation.
  bool accelerate_hw = false;
  /// Synthetic synchronization overhead, in spin iterations, charged per
  /// lower-level simulator invocation (ISS run / gate-sim step). The paper's
  /// component estimators are separate processes driven over IPC, and it
  /// identifies that communication/synchronization cost as a dominant part
  /// of co-estimation time; in-process calls have none, so benchmarks can
  /// model it explicitly. 0 disables.
  unsigned sync_spin = 0;
  /// Bookkeeping cost (spin iterations) per transition served from the
  /// energy cache. In the paper's tool the ISS session stays attached under
  /// caching and the master still performs per-transition table management
  /// and delay annotation across the co-simulation backplane — cheaper than
  /// a full ISS round-trip but not free (visible in Table 1 vs Table 2 CPU
  /// times). Macro-modeling pre-annotates the behavioral model and has no
  /// such per-transition cost. 0 disables.
  unsigned cache_hit_spin = 0;
  /// Run the hardware power simulator in batch mode: input vectors are
  /// collected during co-simulation and evaluated in one pass at the end
  /// (possible because a HW transition's latency is constant, so timing
  /// feedback never needs the gate simulator). This is the paper's "run
  /// hardware power analysis in batch-mode on long traces" (Section 5.1).
  /// Forced off when verify_lowlevel or accelerate_hw is set.
  bool hw_batch = true;
  /// Worker threads for the offline hardware batch flush. Each HwUnit owns
  /// its gate simulator and batch vector, so units evaluate concurrently;
  /// per-unit energies/trace records/hook calls are accumulated by the
  /// worker and merged in component order, so reported results are
  /// bit-identical for any value. 1 = serial, 0 = one per hardware thread.
  unsigned hw_flush_threads = 1;

  /// Retain per-sample power waveforms (needed for waveform()/peak reports;
  /// disable for long batch sweeps).
  bool keep_power_samples = false;
  /// Cross-check ISS / gate-sim functional results against the behavioral
  /// model every transition (slow; on in tests).
  bool verify_lowlevel = false;
  /// Runaway guard for misbehaving systems.
  std::uint64_t max_reactions = 20'000'000;
};

/// Hook supplying the shared-memory/bus traffic a reaction performs.
/// Systems attach one to model e.g. "create_pack writes the packet into
/// shared memory" or "checksum reads one DMA block through the arbiter".
/// `pre_state` is the process state before the transition.
using TrafficHook = std::function<std::vector<bus::BusRequest>(
    cfsm::CfsmId, const cfsm::Reaction&, const cfsm::CfsmState& pre_state)>;

/// Observation hook: called once per transition with the measured (or
/// estimated) cost. Drives the Figure 4 histograms and custom reports.
struct TransitionRecord {
  cfsm::CfsmId task = cfsm::kNoCfsm;
  cfsm::PathId path = cfsm::kNoPath;
  sim::SimTime time = 0;
  double cycles = 0.0;
  Joules energy = 0.0;
  bool simulated = true;  // false when served by cache/macromodel/sampling
};
using TransitionHook = std::function<void(const TransitionRecord&)>;

/// Environment/IP-model hook: called for every event occurrence the master
/// pops. Pre-designed IP blocks outside the CFSM network (e.g. the shared
/// memory of the TCP/IP system) observe requests here and may post reply
/// events into the queue. Must be a deterministic function of the observed
/// occurrences.
using EnvironmentHook = std::function<void(const sim::EventOccurrence&,
                                           sim::EventQueue&)>;

struct RunResults {
  Joules total_energy = 0.0;
  /// Energy attributed to each process (indexed by CfsmId).
  std::vector<Joules> process_energy;
  Joules cpu_energy = 0.0;    // all software + RTOS
  Joules hw_energy = 0.0;     // all ASICs
  Joules bus_energy = 0.0;
  Joules cache_energy = 0.0;
  sim::SimTime end_time = 0;

  std::uint64_t reactions = 0;
  std::uint64_t sw_reactions = 0;
  std::uint64_t hw_reactions = 0;
  std::uint64_t iss_invocations = 0;
  std::uint64_t iss_instructions = 0;
  std::uint64_t gate_sim_cycles = 0;
  std::uint64_t cache_hits_served = 0;  // energy-cache hits
  cache::AccessStats icache;
  bus::BusTotals bus_totals;
  double wall_seconds = 0.0;
  bool truncated = false;  // max_reactions guard fired

  [[nodiscard]] std::string summary() const;
};

class CoEstimator {
 public:
  CoEstimator(const cfsm::Network* network, CoEstimatorConfig config = {});
  ~CoEstimator();

  CoEstimator(const CoEstimator&) = delete;
  CoEstimator& operator=(const CoEstimator&) = delete;

  // -- implementation mapping (before prepare) -------------------------------
  void map_sw(cfsm::CfsmId task, int rtos_priority = 0);
  void map_hw(cfsm::CfsmId task,
              HwEstimatorKind kind = HwEstimatorKind::kGateLevel);
  [[nodiscard]] bool is_sw(cfsm::CfsmId task) const;

  void set_traffic_hook(TrafficHook hook) { traffic_hook_ = std::move(hook); }
  void set_transition_hook(TransitionHook hook) {
    transition_hook_ = std::move(hook);
  }
  /// Hooks compose: systems install their IP models (shared memory, ...)
  /// and observers/tests may add more; all are called per occurrence in
  /// installation order.
  void set_environment_hook(EnvironmentHook hook) {
    environment_hooks_.push_back(std::move(hook));
  }

  /// Compile SW images, synthesize HW netlists, characterize the macro-op
  /// library, build the simulators. Must be called once before run().
  void prepare();

  // -- runs -------------------------------------------------------------------
  /// Power co-estimation (concurrent, synchronized estimators).
  RunResults run(const sim::Stimulus& stimulus);
  /// The Section 2 baseline: separate per-component estimation driven by
  /// traces captured from a timing-independent behavioral simulation.
  RunResults run_separate(const sim::Stimulus& stimulus);

  // -- introspection ----------------------------------------------------------
  [[nodiscard]] const MacroModelLibrary& macromodel() const;
  /// Replace the characterized macro-op library (e.g. one loaded from a
  /// parameter file produced on another machine — the characterize-once
  /// workflow of Figure 3). Clears the per-path estimate memos.
  void set_macromodel(MacroModelLibrary library);
  [[nodiscard]] const EnergyCache& energy_cache() const { return ecache_; }
  [[nodiscard]] cfsm::PathTable& path_table(cfsm::CfsmId task);
  [[nodiscard]] const swsyn::SwImage* sw_image(cfsm::CfsmId task) const;
  /// Behavioral state of a process after the last run (functional checks).
  [[nodiscard]] const cfsm::CfsmState& process_state(cfsm::CfsmId task) const {
    return state_.at(static_cast<std::size_t>(task));
  }
  [[nodiscard]] const hwsyn::HwImage* hw_image(cfsm::CfsmId task) const;
  /// Power waveform support (requires keep_power_samples).
  [[nodiscard]] const sim::PowerTrace& power_trace() const { return trace_; }
  [[nodiscard]] const bus::BusScheduler& bus_model() const { return *bus_; }
  [[nodiscard]] CoEstimatorConfig& config() { return config_; }
  [[nodiscard]] const CoEstimatorConfig& config() const { return config_; }

 private:
  struct HwBatchEntry {
    sim::SimTime time = 0;
    cfsm::ReactionInputs inputs;
    cfsm::PathId path = cfsm::kNoPath;  // kNoPath == reset transition
  };
  struct HwUnit {
    hwsyn::HwImage image;
    std::unique_ptr<hw::GateSim> sim;
    HwEstimatorKind kind = HwEstimatorKind::kGateLevel;
    bool registers_dirty = false;  // gate sim skipped; state needs resync
    std::vector<HwBatchEntry> batch;
  };
  struct PendingSw {
    sim::SimTime ready_at = 0;
    cfsm::CfsmId task = cfsm::kNoCfsm;
    cfsm::ReactionInputs trigger_inputs;
  };
  /// A software transition's shared-memory traffic, issued when its compute
  /// phase ends. Kept pending so the bus request enters arbitration in
  /// simulated-time order (causally with hardware traffic); the CPU blocks
  /// (programmed I/O) and its emissions are released at transfer completion.
  struct PendingSwBus {
    bool active = false;
    sim::SimTime issue_at = 0;
    cfsm::CfsmId task = cfsm::kNoCfsm;
    std::vector<bus::BusRequest> requests;
    std::vector<cfsm::EmittedEvent> emissions;
  };
  /// Emissions gated on outstanding bus transfers (a HW reaction's DMA
  /// block reads, or the blocked CPU's writes). Released when the last of
  /// the reaction's jobs completes on the grant-level scheduler.
  struct BusWait {
    cfsm::CfsmId task = cfsm::kNoCfsm;
    bool is_cpu = false;
    std::vector<cfsm::EmittedEvent> emissions;
    std::size_t remaining = 0;
    sim::SimTime earliest_done = 0;  // reaction-latency floor
    sim::SimTime last_end = 0;
    sim::SimTime cpu_issue = 0;      // wait-energy accounting
  };
  struct TransitionCost {
    double cycles = 0.0;
    Joules energy = 0.0;
    bool simulated = true;
  };

  void reset_runtime_state();
  [[nodiscard]] bool hw_online() const {
    return !config_.hw_batch || config_.verify_lowlevel ||
           config_.accelerate_hw;
  }
  void flush_hw_batches(RunResults& res);
  [[nodiscard]] cfsm::ReactionInputs merge_inputs(
      cfsm::CfsmId task, const cfsm::ReactionInputs& trigger) const;
  void latch_occurrence(const sim::EventOccurrence& occ);

  TransitionCost sw_transition_cost(cfsm::CfsmId task,
                                    const cfsm::ReactionInputs& inputs,
                                    const cfsm::CfsmState& pre_state,
                                    const cfsm::Reaction& reaction,
                                    cfsm::PathId path);
  TransitionCost hw_transition_cost(cfsm::CfsmId task,
                                    const cfsm::ReactionInputs& inputs,
                                    const cfsm::Reaction& reaction,
                                    cfsm::PathId path);

  TransitionCost measured_or_accelerated(
      cfsm::CfsmId task, cfsm::PathId path,
      const std::function<TransitionCost()>& simulate,
      const std::vector<swsyn::MacroOp>* macro_stream);

  const cfsm::Network* net_;
  CoEstimatorConfig config_;
  std::vector<std::optional<bool>> impl_is_sw_;  // per CfsmId; nullopt unmapped
  swsyn::RtosModel rtos_;
  TrafficHook traffic_hook_;
  TransitionHook transition_hook_;
  std::vector<EnvironmentHook> environment_hooks_;

  bool prepared_ = false;
  std::unique_ptr<iss::Iss> iss_;
  std::vector<std::unique_ptr<swsyn::SwImage>> sw_images_;  // per CfsmId
  std::vector<std::unique_ptr<HwUnit>> hw_units_;           // per CfsmId
  std::unique_ptr<hwsyn::RtlPowerEstimator> rtl_power_;
  std::vector<HwEstimatorKind> hw_kind_;  // per CfsmId (set before prepare)
  std::unique_ptr<cache::CacheSim> icache_;
  std::unique_ptr<bus::BusScheduler> bus_;
  MacroModelLibrary macromodel_;
  EnergyCache ecache_;
  std::vector<DynamicCompactionStream> sampler_;  // per CfsmId
  std::vector<cfsm::PathTable> path_tables_;      // per CfsmId
  /// Lazily memoized macro-model estimates per (task, path): annotating the
  /// behavioral model once per path makes macro-modeled co-simulation O(1)
  /// per transition, as in POLIS (costs are annotated before simulation).
  std::vector<std::vector<std::optional<PathEstimate>>> mm_memo_;

  std::vector<std::vector<cfsm::CfsmId>> receivers_by_event_;

  // Run-time state (valid during run()).
  sim::PowerTrace trace_;
  std::vector<sim::ComponentId> process_component_;  // per CfsmId
  sim::ComponentId bus_component_ = -1;
  sim::ComponentId cache_component_ = -1;
  std::vector<cfsm::CfsmState> state_;
  std::vector<std::optional<std::int32_t>> latched_;  // last value per event
  sim::EventQueue queue_;
  std::vector<PendingSw> sw_pending_;
  PendingSwBus sw_bus_;
  bool cpu_blocked_ = false;
  sim::SimTime cpu_free_at_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> job_to_wait_;  // job -> slot
  std::vector<BusWait> bus_waits_;
  std::uint64_t iss_invocations_ = 0;
  std::uint64_t iss_instructions_ = 0;
  std::uint64_t gate_cycles_ = 0;
};

}  // namespace socpower::core
