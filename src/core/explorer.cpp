#include "core/explorer.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <numeric>

#include "telemetry/trace.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace socpower::core {

namespace {

/// Runs fn(0..n-1) either inline or on a transient pool. Results must be
/// stored by index by the caller; the reduction happens afterwards in index
/// order either way, which is what makes the threaded outcome bit-identical
/// to the serial one.
void for_each_index(std::size_t n, unsigned threads,
                    const std::function<void(std::size_t)>& fn) {
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(resolve_thread_count(threads), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(workers);
  pool.parallel_for(n, fn);
}

}  // namespace

namespace detail {

ExplorationOutcome two_phase_outcome(
    const std::vector<ExplorationPoint>& points, std::size_t verify_top,
    const std::function<std::vector<PointEval>(
        const std::vector<std::size_t>&, int)>& eval_phase) {
  assert(!points.empty());
  ExplorationOutcome out;
  out.ranked.reserve(points.size());

  telemetry::registry().counter("explore.points").add(points.size());

  // Coarse sweep: evaluate every point, then reduce by point index.
  std::vector<std::size_t> all(points.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  std::vector<PointEval> coarse;
  {
    SOCPOWER_TRACE_SPAN("explore.coarse");
    coarse = eval_phase(all, 0);
  }
  assert(coarse.size() == points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    out.coarse_seconds += coarse[i].wall_seconds;
    out.ranked.push_back(
        {points[i].label, coarse[i].total_energy, std::nullopt, 0});
  }
  // Coarse ranking.
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return out.ranked[a].coarse_energy < out.ranked[b].coarse_energy;
  });
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    out.ranked[order[rank]].coarse_rank = rank;

  // Exact verification of the shortlist (reduced in shortlist order).
  const std::size_t k = std::min(verify_top, points.size());
  telemetry::registry().counter("explore.verified").add(k);
  std::vector<std::size_t> shortlist(order.begin(),
                                     order.begin() + static_cast<long>(k));
  std::vector<PointEval> exact;
  {
    SOCPOWER_TRACE_SPAN("explore.verify");
    exact = eval_phase(shortlist, 1);
  }
  assert(exact.size() == k);
  std::vector<double> coarse_v, exact_v;
  for (std::size_t rank = 0; rank < k; ++rank) {
    if (!exact[rank].has_result) continue;
    const std::size_t idx = order[rank];
    out.exact_seconds += exact[rank].wall_seconds;
    out.ranked[idx].exact_energy = exact[rank].total_energy;
    coarse_v.push_back(out.ranked[idx].coarse_energy);
    exact_v.push_back(exact[rank].total_energy);
  }
  if (coarse_v.size() >= 2)
    out.verification_correlation =
        pearson_correlation(coarse_v.data(), exact_v.data(), coarse_v.size());

  // Final ordering: exact energies where known, else coarse.
  std::sort(out.ranked.begin(), out.ranked.end(),
            [](const ExplorationOutcome::Entry& a,
               const ExplorationOutcome::Entry& b) {
              return a.exact_energy.value_or(a.coarse_energy) <
                     b.exact_energy.value_or(b.coarse_energy);
            });
  out.winner_confirmed = out.ranked.front().coarse_rank == 0;
  return out;
}

ExplorationOutcome funnel_outcome(
    const std::vector<ExplorationPoint>& points, std::size_t verify_top,
    std::size_t prefilter,
    const std::function<std::vector<PointEval>(
        const std::vector<std::size_t>&, int)>& eval_phase) {
  if (prefilter == 0 || prefilter >= points.size())
    return two_phase_outcome(points, verify_top, eval_phase);

  telemetry::registry().counter("explore.analytical_points")
      .add(points.size());
  std::vector<std::size_t> all(points.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  std::vector<PointEval> an;
  {
    SOCPOWER_TRACE_SPAN("explore.analytical");
    an = eval_phase(all, 2);
  }
  assert(an.size() == points.size());
  double an_seconds = 0.0;
  for (const PointEval& e : an) an_seconds += e.wall_seconds;

  // Keep the best `prefilter` candidates. The (energy, index) tiebreak
  // pins the survivor set — and therefore everything downstream — for any
  // evaluation strategy.
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (an[a].total_energy != an[b].total_energy)
      return an[a].total_energy < an[b].total_energy;
    return a < b;
  });
  std::vector<std::size_t> kept(order.begin(),
                                order.begin() + static_cast<long>(prefilter));
  std::sort(kept.begin(), kept.end());  // survivors in original point order

  // Two-phase over the survivors, with the phase-0/1 index stream remapped
  // to the original points — the same thunks a non-prefiltered run would
  // evaluate, which is the whole bit-identity argument.
  std::vector<ExplorationPoint> kept_points;
  kept_points.reserve(kept.size());
  for (const std::size_t i : kept) kept_points.push_back(points[i]);
  ExplorationOutcome out = two_phase_outcome(
      kept_points, verify_top,
      [&](const std::vector<std::size_t>& idxs, int phase) {
        std::vector<std::size_t> orig(idxs.size());
        for (std::size_t j = 0; j < idxs.size(); ++j) orig[j] = kept[idxs[j]];
        return eval_phase(orig, phase);
      });
  out.analytical_seconds = an_seconds;
  out.prefilter_kept = kept.size();
  return out;
}

}  // namespace detail

ExplorationOutcome explore(const std::vector<ExplorationPoint>& points,
                           std::size_t verify_top) {
  return explore(points, verify_top, ExploreOptions{});
}

ExplorationOutcome explore(const std::vector<ExplorationPoint>& points,
                           std::size_t verify_top,
                           const ExploreOptions& options) {
  return detail::funnel_outcome(
      points, verify_top, options.analytical_prefilter,
      [&](const std::vector<std::size_t>& idxs, int phase) {
        std::vector<detail::PointEval> evals(idxs.size());
        for_each_index(idxs.size(), options.threads, [&](std::size_t j) {
          const std::size_t idx = idxs[j];
          SOCPOWER_TRACE_SPAN("explore.point", 0, idx);
          if (phase == 2) {
            const auto& run = points[idx].run_analytical
                                  ? points[idx].run_analytical
                                  : points[idx].run_coarse;
            const RunResults r = run();
            evals[j] = {r.total_energy, r.wall_seconds, true};
          } else if (phase == 0) {
            const RunResults r = points[idx].run_coarse();
            evals[j] = {r.total_energy, r.wall_seconds, true};
          } else if (points[idx].run_exact) {
            const RunResults r = points[idx].run_exact();
            evals[j] = {r.total_energy, r.wall_seconds, true};
          }
        });
        return evals;
      });
}

std::string ExplorationOutcome::render() const {
  TextTable t({"rank", "design point", "coarse", "exact", "coarse rank"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const Entry& e = ranked[i];
    t.add_row({std::to_string(i + 1), e.label,
               format_energy(e.coarse_energy),
               e.exact_energy ? format_energy(*e.exact_energy) : "-",
               std::to_string(e.coarse_rank + 1)});
  }
  char tail[256];
  std::string head;
  if (prefilter_kept > 0) {
    std::snprintf(tail, sizeof tail,
                  "analytical prefilter: %.3fs, kept %zu candidates\n",
                  analytical_seconds, prefilter_kept);
    head = tail;
  }
  std::snprintf(tail, sizeof tail,
                "coarse pass: %.3fs; exact verification: %.3fs; winner %s; "
                "verification correlation %.4f\n",
                coarse_seconds, exact_seconds,
                winner_confirmed ? "confirmed" : "DISPLACED",
                verification_correlation);
  return t.render() + head + tail;
}

}  // namespace socpower::core
