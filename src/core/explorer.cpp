#include "core/explorer.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <numeric>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace socpower::core {

ExplorationOutcome explore(const std::vector<ExplorationPoint>& points,
                           std::size_t verify_top) {
  assert(!points.empty());
  ExplorationOutcome out;
  out.ranked.reserve(points.size());

  for (const auto& p : points) {
    const RunResults r = p.run_coarse();
    out.coarse_seconds += r.wall_seconds;
    out.ranked.push_back({p.label, r.total_energy, std::nullopt, 0});
  }
  // Coarse ranking.
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return out.ranked[a].coarse_energy < out.ranked[b].coarse_energy;
  });
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    out.ranked[order[rank]].coarse_rank = rank;

  // Exact verification of the shortlist.
  std::vector<double> coarse_v, exact_v;
  const std::size_t k = std::min(verify_top, points.size());
  for (std::size_t rank = 0; rank < k; ++rank) {
    const std::size_t idx = order[rank];
    if (!points[idx].run_exact) continue;
    const RunResults r = points[idx].run_exact();
    out.exact_seconds += r.wall_seconds;
    out.ranked[idx].exact_energy = r.total_energy;
    coarse_v.push_back(out.ranked[idx].coarse_energy);
    exact_v.push_back(r.total_energy);
  }
  if (coarse_v.size() >= 2)
    out.verification_correlation =
        pearson_correlation(coarse_v.data(), exact_v.data(), coarse_v.size());

  // Final ordering: exact energies where known, else coarse.
  std::sort(out.ranked.begin(), out.ranked.end(),
            [](const ExplorationOutcome::Entry& a,
               const ExplorationOutcome::Entry& b) {
              return a.exact_energy.value_or(a.coarse_energy) <
                     b.exact_energy.value_or(b.coarse_energy);
            });
  out.winner_confirmed = out.ranked.front().coarse_rank == 0;
  return out;
}

std::string ExplorationOutcome::render() const {
  TextTable t({"rank", "design point", "coarse", "exact", "coarse rank"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const Entry& e = ranked[i];
    t.add_row({std::to_string(i + 1), e.label,
               format_energy(e.coarse_energy),
               e.exact_energy ? format_energy(*e.exact_energy) : "-",
               std::to_string(e.coarse_rank + 1)});
  }
  char tail[160];
  std::snprintf(tail, sizeof tail,
                "coarse pass: %.3fs; exact verification: %.3fs; winner %s; "
                "verification correlation %.4f\n",
                coarse_seconds, exact_seconds,
                winner_confirmed ? "confirmed" : "DISPLACED",
                verification_correlation);
  return t.render() + tail;
}

}  // namespace socpower::core
