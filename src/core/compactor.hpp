// Statistical sampling / sequence compaction (paper Section 4.3).
//
// Problem: given a long sequence I of input vectors (instructions) produced
// by the master during co-simulation, construct I' with length(I') <<
// length(I) whose average power matches I as closely as possible. I' is
// composed of small sub-sequences of I chosen to preserve single-symbol
// statistics (value probabilities) and two-symbol statistics (transition /
// lag-one correlations).
//
// This implements the paper's K-memory *dynamic* compaction: symbols are
// buffered until K are stored, then a deterministic subset of windows is
// selected greedily to minimize the L1 distance between the kept and full
// unigram+bigram distributions. Static (whole-sequence) compaction is the
// same selection applied to the entire trace at once.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace socpower::hw {
class GateSim;
}  // namespace socpower::hw

namespace socpower::core {

struct CompactionParams {
  /// Buffer this many symbols before each selection round (K).
  std::size_t k_memory = 64;
  /// Fraction of each buffer to keep (0 < keep_ratio <= 1).
  double keep_ratio = 0.25;
  /// Length of each kept sub-sequence; adjacent symbols inside a window keep
  /// their pairwise statistics exactly.
  std::size_t window = 4;
  /// Buffers shorter than this are simulated in full (start-up, tails).
  std::size_t min_length = 8;
};

class SequenceCompactor {
 public:
  explicit SequenceCompactor(CompactionParams params = {});

  /// Select positions of `symbols` to keep. Returns sorted, unique indices;
  /// always non-empty for non-empty input, and the whole range when the
  /// input is shorter than min_length or keep_ratio == 1.
  [[nodiscard]] std::vector<std::size_t> select(
      std::span<const std::uint32_t> symbols) const;

  /// L1 distance between the unigram distributions of the full sequence and
  /// of the subset given by `kept` (diagnostic / tests).
  [[nodiscard]] static double unigram_distance(
      std::span<const std::uint32_t> symbols,
      std::span<const std::size_t> kept);
  /// Same for lag-one bigram distributions (pairs within kept windows only).
  [[nodiscard]] static double bigram_distance(
      std::span<const std::uint32_t> symbols,
      std::span<const std::size_t> kept);

  [[nodiscard]] const CompactionParams& params() const { return params_; }

 private:
  CompactionParams params_;
};

/// Streaming adapter implementing the dynamic variant: feed symbols one by
/// one; whenever K have accumulated, the compactor selects the keep pattern
/// for that buffer and `should_simulate` answers for each position.
class DynamicCompactionStream {
 public:
  explicit DynamicCompactionStream(CompactionParams params = {});

  /// Feed the next symbol; returns true when the caller should simulate this
  /// occurrence (selected), false when it should extrapolate. The first
  /// buffer is always fully simulated (the model needs bootstrap data).
  bool feed(std::uint32_t symbol);

  [[nodiscard]] std::uint64_t fed() const { return fed_; }
  [[nodiscard]] std::uint64_t simulated() const { return simulated_; }

  /// Price the K candidate patterns of one selection round on a gate
  /// simulator in packed passes: each pattern is one bit-parallel lane (64
  /// per GateSim::probe_packed pass), all hypothetical next cycles from the
  /// simulator's current state. patterns[k] holds pattern k's primary-input
  /// bits, LSB-first (missing high bits read as the currently staged
  /// values). Returns one energy per pattern, each bit-identical to what a
  /// scalar step() with that stimulus would bill — the per-window energy
  /// weight an energy-aware selection can fold into the L1 statistics.
  /// Purely speculative: the simulator state is untouched.
  [[nodiscard]] std::vector<Joules> price_candidates(
      hw::GateSim& sim,
      std::span<const std::vector<std::uint8_t>> patterns);

  /// Candidate patterns priced by price_candidates() so far.
  [[nodiscard]] std::uint64_t priced() const { return priced_; }

 private:
  SequenceCompactor compactor_;
  CompactionParams params_;
  std::vector<std::uint32_t> buffer_;
  std::vector<bool> keep_pattern_;  // selection computed from last buffer
  std::size_t pattern_pos_ = 0;
  bool bootstrap_ = true;
  std::uint64_t fed_ = 0;
  std::uint64_t simulated_ = 0;
  std::uint64_t priced_ = 0;
};

}  // namespace socpower::core
