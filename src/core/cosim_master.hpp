// The simulation master of the paper's Figure 2(b), generalized to N-core
// SoCs.
//
// CoSimMaster simulates the discrete-event behavioral model of the whole
// system (the golden CFSM network) and owns nothing but scheduling state:
// the event queue and value latches, the per-core RTOS serialization of
// software transitions, the per-core pending-software and bus-wait
// bookkeeping, and the acceleration policy of Section 4 (energy cache,
// macro-op library, sequence-compaction sampling). Component *pricing* is
// delegated to ComponentEstimator backends created by name from the
// EstimatorRegistry (CoEstimatorConfig::estimators): one SwBackend per core
// that runs software, one HwBackend per hardware flavor, a cache backend
// (per-core private icaches, optionally an MSI-coherent data side) and one
// interconnect backend (arbitrated bus or routed mesh):
//
//          ┌───────────────── CoSimMaster ───────────────────┐
//          │ event queue · latches · RTOS · per-core state   │
//          │ energy cache / macro-model / sampling           │
//          └──┬────────┬──────────┬─────────┬─────────┬──────┘
//             ▼        ▼          ▼         ▼         ▼
//          SwBackend×N HwBackend  HwBackend CacheB.  BusBackend
//          (sw.iss)    (hw.gate)  (hw.rtl)  (cache.*)(bus.* / bus.noc)
//
// With cores == 1 (the default) the schedule, floating-point accumulation
// order and backend list are bit-identical to the original single-CPU
// master — the facade goldens pin this down.
//
// The unit of synchronization is a CFSM transition, exactly as in POLIS.
// The public entry point is the CoEstimator facade (coestimator.hpp); this
// class is the implementation and is also usable directly by tools that
// want to own backend selection programmatically.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "core/coestimator_config.hpp"
#include "core/compactor.hpp"
#include "core/energy_cache.hpp"
#include "core/estimators/component_estimator.hpp"
#include "core/macromodel.hpp"
#include "sim/event_queue.hpp"
#include "sim/power_trace.hpp"
#include "swsyn/rtos.hpp"

namespace socpower::core {

class CoSimMaster {
 public:
  CoSimMaster(const cfsm::Network* network, CoEstimatorConfig config);
  ~CoSimMaster();

  CoSimMaster(const CoSimMaster&) = delete;
  CoSimMaster& operator=(const CoSimMaster&) = delete;

  // -- implementation mapping (before prepare) -------------------------------
  void map_sw(cfsm::CfsmId task, int rtos_priority);
  /// Map a task onto a specific CPU core (0-based). Aborts when `core` is
  /// outside [0, config.cores) — a mapping error no run can recover from.
  void map_sw(cfsm::CfsmId task, unsigned core, int rtos_priority);
  void map_hw(cfsm::CfsmId task, HwEstimatorKind kind);
  [[nodiscard]] bool is_sw(cfsm::CfsmId task) const;
  [[nodiscard]] unsigned core_of(cfsm::CfsmId task) const {
    return core_of_.at(static_cast<std::size_t>(task));
  }

  void set_traffic_hook(TrafficHook hook) { traffic_hook_ = std::move(hook); }
  void set_transition_hook(TransitionHook hook) {
    transition_hook_ = std::move(hook);
  }
  void add_environment_hook(EnvironmentHook hook) {
    environment_hooks_.push_back(std::move(hook));
  }

  /// Validate the config, instantiate the selected backends, and have them
  /// compile/synthesize/build their simulators. Must be called once.
  void prepare();

  RunResults run(const sim::Stimulus& stimulus);
  RunResults run_separate(const sim::Stimulus& stimulus);

  // -- introspection ----------------------------------------------------------
  [[nodiscard]] const MacroModelLibrary& macromodel() const;
  void set_macromodel(MacroModelLibrary library);
  [[nodiscard]] const EnergyCache& energy_cache() const { return ecache_; }
  [[nodiscard]] cfsm::PathTable& path_table(cfsm::CfsmId task);
  [[nodiscard]] const swsyn::SwImage* sw_image(cfsm::CfsmId task) const;
  [[nodiscard]] const cfsm::CfsmState& process_state(cfsm::CfsmId task) const {
    return state_.at(static_cast<std::size_t>(task));
  }
  [[nodiscard]] const hwsyn::HwImage* hw_image(cfsm::CfsmId task) const;
  [[nodiscard]] const sim::PowerTrace& power_trace() const { return trace_; }
  [[nodiscard]] const bus::BusScheduler& bus_scheduler() const {
    return bus_->scheduler();
  }
  [[nodiscard]] CoEstimatorConfig& config() { return config_; }
  [[nodiscard]] const CoEstimatorConfig& config() const { return config_; }

  /// The backends serving this master, in role order (sw, hw gate, hw rtl,
  /// cache, bus; roles with no mapped process are absent). For telemetry
  /// and tests.
  [[nodiscard]] std::vector<const ComponentEstimator*> backends() const;

  // -- checkpoint/restore ----------------------------------------------------
  /// Warm, run-independent state of a prepared master: the per-backend
  /// caches (ISS decoded blocks, gate-level reaction tables) plus the energy
  /// cache as the last run left it. This is what serve/ checkpoints; the
  /// structural config and mapping are serialized separately and rebuild the
  /// master itself.
  struct WarmSnapshot {
    std::vector<BackendWarmState> backends;  ///< backends() order
    std::vector<EnergyCache::ExportedEntry> ecache;
    std::uint64_t ecache_hits = 0;
    std::uint64_t ecache_simulations = 0;
  };
  [[nodiscard]] WarmSnapshot export_warm_state() const;
  /// Install a snapshot into a freshly prepared master with the same
  /// structural config and mapping. False (and no state change) when the
  /// master is unprepared or the backend count disagrees — the caller built
  /// a different structure than the snapshot describes.
  [[nodiscard]] bool import_warm_state(const WarmSnapshot& snap);

  /// Sum of the backends' warm-cache hit/fill counters (serve telemetry:
  /// per-request deltas of these are the cold-vs-warm story).
  [[nodiscard]] ComponentEstimator::WarmCacheCounters warm_cache_counters()
      const;

 private:
  struct PendingSw {
    sim::SimTime ready_at = 0;
    cfsm::CfsmId task = cfsm::kNoCfsm;
    cfsm::ReactionInputs trigger_inputs;
  };
  /// A software transition's shared-memory traffic, issued when its compute
  /// phase ends. Kept pending so the bus request enters arbitration in
  /// simulated-time order (causally with hardware traffic); the CPU blocks
  /// (programmed I/O) and its emissions are released at transfer completion.
  struct PendingSwBus {
    bool active = false;
    sim::SimTime issue_at = 0;
    cfsm::CfsmId task = cfsm::kNoCfsm;
    std::vector<bus::BusRequest> requests;
    std::vector<cfsm::EmittedEvent> emissions;
  };
  /// Emissions gated on outstanding bus transfers (a HW reaction's DMA
  /// block reads, or a blocked CPU's writes). Released when the last of
  /// the reaction's jobs completes on the interconnect.
  struct BusWait {
    cfsm::CfsmId task = cfsm::kNoCfsm;
    bool is_cpu = false;
    unsigned core = 0;  // which CPU is blocked (is_cpu only)
    std::vector<cfsm::EmittedEvent> emissions;
    std::size_t remaining = 0;
    sim::SimTime earliest_done = 0;  // reaction-latency floor
    sim::SimTime last_end = 0;
    sim::SimTime cpu_issue = 0;      // wait-energy accounting
  };
  /// Per-core scheduling state: the core's ready queue, its deferred bus
  /// phase, and whether/until when the core is busy.
  struct CoreState {
    std::vector<PendingSw> pending;
    PendingSwBus bus;
    bool blocked = false;  // stalled on an in-flight transfer
    sim::SimTime free_at = 0;
  };

  void check_structural_config() const;
  void reset_runtime_state();
  [[nodiscard]] bool hw_online() const {
    return !config_.hw_batch || config_.verify_lowlevel ||
           config_.accelerate_hw;
  }
  void flush_hw_batches(RunResults& res);
  /// MSI data side of a reaction's shared-memory traffic: run each request
  /// through the coherent model as agent `core` (-1: uncached hardware
  /// master), bill the cache energy at `now`, append the resulting
  /// invalidation/writeback messages to `reqs`, and return the stall
  /// penalty in cycles. No-op (0) when coherence is disabled.
  sim::SimTime coherence_traffic(int core, sim::SimTime now,
                                 std::vector<bus::BusRequest>& reqs,
                                 RunResults& res);
  [[nodiscard]] cfsm::ReactionInputs merge_inputs(
      cfsm::CfsmId task, const cfsm::ReactionInputs& trigger) const;
  void latch_occurrence(const sim::EventOccurrence& occ);

  TransitionCost sw_transition_cost(cfsm::CfsmId task,
                                    const cfsm::ReactionInputs& inputs,
                                    const cfsm::CfsmState& pre_state,
                                    const cfsm::Reaction& reaction,
                                    cfsm::PathId path);
  TransitionCost hw_transition_cost(cfsm::CfsmId task,
                                    const cfsm::ReactionInputs& inputs,
                                    const cfsm::Reaction& reaction,
                                    cfsm::PathId path);

  TransitionCost measured_or_accelerated(
      cfsm::CfsmId task, cfsm::PathId path,
      const std::function<TransitionCost()>& simulate,
      const std::vector<swsyn::MacroOp>* macro_stream);

  const cfsm::Network* net_;
  CoEstimatorConfig config_;
  /// Frozen copy of the [structural] fields, taken at prepare(); see
  /// structural_mismatch().
  CoEstimatorConfig structural_baseline_;
  std::vector<std::optional<bool>> impl_is_sw_;  // per CfsmId; nullopt unmapped
  std::vector<HwEstimatorKind> hw_kind_;         // per CfsmId
  std::vector<unsigned> core_of_;  // per CfsmId (0 unless map_sw says else)
  swsyn::RtosModel rtos_;
  TrafficHook traffic_hook_;
  TransitionHook transition_hook_;
  std::vector<EnvironmentHook> environment_hooks_;

  /// The software backend serving a task's core (nullptr when no software
  /// backend exists at all; a per-backend image lookup of an unmapped task
  /// yields nullptr as before).
  [[nodiscard]] SwBackend* sw_backend_of(cfsm::CfsmId task) const;

  bool prepared_ = false;
  /// Owned backends; the typed pointers below alias into this list.
  std::vector<std::unique_ptr<ComponentEstimator>> owned_backends_;
  std::vector<SwBackend*> sw_backends_;  // creation order (ascending core)
  std::vector<SwBackend*> sw_for_core_;  // per core (nullptr: no SW there)
  HwBackend* hw_gate_ = nullptr;
  HwBackend* hw_rtl_ = nullptr;
  CacheBackend* cache_ = nullptr;
  BusBackend* bus_ = nullptr;
  std::vector<HwBackend*> hw_backend_for_;  // per CfsmId (nullptr for SW)

  MacroModelLibrary macromodel_;
  EnergyCache ecache_;
  std::vector<DynamicCompactionStream> sampler_;  // per CfsmId
  std::vector<cfsm::PathTable> path_tables_;      // per CfsmId
  /// Lazily memoized macro-model estimates per (task, path): annotating the
  /// behavioral model once per path makes macro-modeled co-simulation O(1)
  /// per transition, as in POLIS (costs are annotated before simulation).
  std::vector<std::vector<std::optional<PathEstimate>>> mm_memo_;

  std::vector<std::vector<cfsm::CfsmId>> receivers_by_event_;

  // Run-time state (valid during run()).
  sim::PowerTrace trace_;
  std::vector<sim::ComponentId> process_component_;  // per CfsmId
  sim::ComponentId bus_component_ = -1;
  sim::ComponentId cache_component_ = -1;
  std::vector<cfsm::CfsmState> state_;
  std::vector<std::optional<std::int32_t>> latched_;  // last value per event
  sim::EventQueue queue_;
  std::vector<CoreState> cores_;  // one slot per CPU core
  std::unordered_map<std::uint64_t, std::size_t> job_to_wait_;  // job -> slot
  std::vector<BusWait> bus_waits_;
  /// Gate cycles contributed by the offline batch flush (merged from the
  /// per-unit flush jobs; online cycles are counted by the backends).
  std::uint64_t flush_gate_cycles_ = 0;
};

}  // namespace socpower::core
