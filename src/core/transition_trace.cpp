#include "core/transition_trace.hpp"

#include <algorithm>
#include <cstdio>

namespace socpower::core {

void TransitionTrace::record(const TransitionRecord& r) {
  if (capacity_ != 0 && records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  records_.push_back(r);
}

void TransitionTrace::clear() {
  records_.clear();
  dropped_ = 0;
}

std::vector<TransitionRecord> TransitionTrace::for_task(
    cfsm::CfsmId task) const {
  std::vector<TransitionRecord> out;
  for (const auto& r : records_)
    if (r.task == task) out.push_back(r);
  std::stable_sort(out.begin(), out.end(),
                   [](const TransitionRecord& a, const TransitionRecord& b) {
                     return a.time < b.time;
                   });
  return out;
}

std::string TransitionTrace::render(const cfsm::Network& network,
                                    std::size_t max_lines) const {
  std::string out;
  char line[160];
  std::size_t shown = 0;
  for (const auto& r : records_) {
    if (shown++ >= max_lines) {
      std::snprintf(line, sizeof line, "... (%zu more transitions)\n",
                    records_.size() - max_lines);
      out += line;
      break;
    }
    std::snprintf(line, sizeof line,
                  "@%-10llu %-16s path=%-4d %8.1f cycles  %10.3f nJ  %s\n",
                  static_cast<unsigned long long>(r.time),
                  network.cfsm(r.task).name().c_str(), r.path, r.cycles,
                  to_nanojoules(r.energy),
                  r.simulated ? "simulated" : "estimated");
    out += line;
  }
  if (dropped_ > 0) {
    std::snprintf(line, sizeof line, "(%llu records dropped at capacity)\n",
                  static_cast<unsigned long long>(dropped_));
    out += line;
  }
  return out;
}

std::string TransitionTrace::to_csv(const cfsm::Network& network) const {
  std::string out = "time,process,path,cycles,energy_nJ,simulated\n";
  char line[160];
  for (const auto& r : records_) {
    std::snprintf(line, sizeof line, "%llu,%s,%d,%.6g,%.6g,%d\n",
                  static_cast<unsigned long long>(r.time),
                  network.cfsm(r.task).name().c_str(), r.path, r.cycles,
                  to_nanojoules(r.energy), r.simulated ? 1 : 0);
    out += line;
  }
  return out;
}

}  // namespace socpower::core
