#include "core/energy_cache.hpp"

#include <algorithm>

#include "telemetry/registry.hpp"

namespace socpower::core {

EnergyCache::EnergyCache(EnergyCacheConfig config) : config_(config) {}

bool EnergyCache::eligible(const Entry& e) const {
  if (e.energy.count() < config_.thresh_iss_calls) return false;
  const double cv = e.energy.cv();
  return cv * cv <= config_.thresh_variance;
}

std::optional<CachedCost> EnergyCache::lookup(cfsm::CfsmId task,
                                              cfsm::PathId path) const {
  static telemetry::Counter& hits =
      telemetry::registry().counter("ecache.hits");
  static telemetry::Counter& misses =
      telemetry::registry().counter("ecache.misses");
  const auto it = table_.find({task, path});
  if (it == table_.end() || !eligible(it->second)) {
    misses.add();
    return std::nullopt;
  }
  ++hits_;
  hits.add();
  return CachedCost{it->second.cycles.mean(), it->second.energy.mean()};
}

std::optional<CachedCost> EnergyCache::mean(cfsm::CfsmId task,
                                            cfsm::PathId path) const {
  const auto it = table_.find({task, path});
  if (it == table_.end() || it->second.energy.count() == 0)
    return std::nullopt;
  return CachedCost{it->second.cycles.mean(), it->second.energy.mean()};
}

void EnergyCache::record(cfsm::CfsmId task, cfsm::PathId path, Cycles cycles,
                         Joules energy) {
  static telemetry::Counter& records =
      telemetry::registry().counter("ecache.records");
  records.add();
  Entry& e = table_[{task, path}];
  e.cycles.add(static_cast<double>(cycles));
  e.energy.add(energy);
  ++simulations_;
}

const RunningStats* EnergyCache::energy_stats(cfsm::CfsmId task,
                                              cfsm::PathId path) const {
  const auto it = table_.find({task, path});
  return it == table_.end() ? nullptr : &it->second.energy;
}

void EnergyCache::clear() {
  table_.clear();
  hits_ = 0;
  simulations_ = 0;
}

std::vector<EnergyCache::ExportedEntry> EnergyCache::export_entries() const {
  std::vector<ExportedEntry> out;
  out.reserve(table_.size());
  for (const auto& [key, entry] : table_)
    out.push_back(ExportedEntry{key.task, key.path, entry.cycles.raw(),
                                entry.energy.raw()});
  std::sort(out.begin(), out.end(),
            [](const ExportedEntry& a, const ExportedEntry& b) {
              return a.task != b.task ? a.task < b.task : a.path < b.path;
            });
  return out;
}

void EnergyCache::import_entries(const std::vector<ExportedEntry>& entries,
                                 std::uint64_t hits,
                                 std::uint64_t simulations) {
  table_.clear();
  for (const ExportedEntry& e : entries) {
    Entry& slot = table_[{e.task, e.path}];
    slot.cycles = RunningStats::from_raw(e.cycles);
    slot.energy = RunningStats::from_raw(e.energy);
  }
  hits_ = hits;
  simulations_ = simulations;
}

}  // namespace socpower::core
