#include "core/report.hpp"

#include <algorithm>
#include <cstdio>

#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

namespace socpower::core {

namespace {

sim::SimTime pick_window(sim::SimTime end_time, sim::SimTime requested) {
  if (requested > 0) return requested;
  const sim::SimTime w = end_time / 64;
  return w == 0 ? 1 : w;
}

}  // namespace

std::string render_report(const cfsm::Network& network,
                          const CoEstimator& estimator,
                          const RunResults& results,
                          const ReportOptions& options) {
  std::string out;
  out += "=== power co-estimation report ===\n";
  out += results.summary();
  out += "\n\n";

  // The analytical HW backend splits out the static (leakage) share of each
  // process's energy; the column only appears when it contributed.
  const bool show_static = !results.process_leakage.empty();
  std::vector<std::string> header = {"process", "impl", "energy"};
  if (show_static) header.push_back("static");
  header.push_back("share %");
  header.push_back("avg power");
  TextTable t(header);
  const ElectricalParams& ep = estimator.config().electrical;
  auto add_row = [&](std::string name, std::string impl, Joules e,
                     Joules static_e, bool has_static, bool show_watts) {
    char watts[32];
    std::snprintf(watts, sizeof watts, "%.3g mW",
                  ep.average_power_watts(e, results.end_time) * 1e3);
    std::vector<std::string> row = {std::move(name), std::move(impl),
                                    format_energy(e)};
    if (show_static)
      row.push_back(has_static ? format_energy(static_e) : "-");
    row.push_back(TextTable::fixed(
        results.total_energy > 0 ? 100.0 * e / results.total_energy : 0.0, 1));
    row.push_back(show_watts ? watts : "");
    t.add_row(std::move(row));
  };
  for (std::size_t i = 0; i < network.cfsm_count(); ++i) {
    const auto id = static_cast<cfsm::CfsmId>(i);
    const Joules leak = show_static && i < results.process_leakage.size()
                            ? results.process_leakage[i]
                            : 0.0;
    add_row(network.cfsm(id).name(), estimator.is_sw(id) ? "SW" : "HW",
            results.process_energy[i], leak, leak > 0.0, true);
  }
  add_row("(bus)", "-", results.bus_energy, 0.0, false, false);
  add_row("(icache)", "-", results.cache_energy, 0.0, false, false);
  out += t.render();

  if (telemetry::enabled()) {
    const telemetry::Snapshot snap = telemetry::snapshot();
    // Per-backend breakdown: each component estimator publishes its
    // counters under "estimator.<registry-name>.*", so the report can show
    // how many lower-level invocations each backend actually served
    // (invocations dodged by the acceleration layer simply never arrive).
    // This includes the reaction-cache rows (rcache.*) and the bit-parallel
    // flush rows (packed.steps / packed.lanes / packed.scalar_fallbacks).
    TextTable bt({"backend", "metric", "value"});
    bool any_backend_counters = false;
    for (const ComponentEstimator* b : estimator.backends()) {
      const std::string name(b->name());
      const std::string prefix = "estimator." + name + ".";
      for (const auto& c : snap.counters) {
        if (c.name.compare(0, prefix.size(), prefix) != 0) continue;
        bt.add_row({name, c.name.substr(prefix.size()),
                    std::to_string(c.value)});
        any_backend_counters = true;
      }
    }
    if (any_backend_counters) {
      out += "\n--- estimator backends ---\n";
      out += bt.render();
    }
    if (!snap.empty()) {
      out += "\n--- telemetry counters ---\n";
      out += snap.render_table();
    }
  }

  if (!options.include_waveforms) return out;
  const auto& trace = estimator.power_trace();
  const sim::SimTime window =
      pick_window(results.end_time, options.window_cycles);
  for (std::size_t c = 0; c < trace.component_count(); ++c) {
    const auto comp = static_cast<sim::ComponentId>(c);
    if (trace.total(comp) <= 0.0) continue;
    const auto wf = trace.waveform(comp, window);
    double peak = 0.0;
    for (const auto& w : wf) peak = std::max(peak, w.watts);
    if (peak <= 0.0) continue;
    char head[128];
    std::snprintf(head, sizeof head,
                  "\n%s power waveform (window %llu cycles, peak %.3g mW):\n",
                  trace.component_name(comp).c_str(),
                  static_cast<unsigned long long>(window), peak * 1e3);
    out += head;
    for (const auto& w : wf) {
      const auto bar = static_cast<std::size_t>(
          w.watts / peak * static_cast<double>(options.waveform_width));
      char line[64];
      std::snprintf(line, sizeof line, "  %10llu |",
                    static_cast<unsigned long long>(w.start));
      out += line;
      out.append(bar, '#');
      out += '\n';
    }
    const auto peaks = sim::PowerTrace::peak_windows(wf, options.peaks);
    out += "  peaks at cycles:";
    for (const auto p : peaks) {
      char buf[32];
      std::snprintf(buf, sizeof buf, " %llu",
                    static_cast<unsigned long long>(wf[p].start));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::string waveforms_csv(const CoEstimator& estimator,
                          sim::SimTime window_cycles) {
  const auto& trace = estimator.power_trace();
  const sim::SimTime window =
      pick_window(trace.end_time(), window_cycles);
  std::string out = "start_cycle";
  std::vector<std::vector<sim::PowerWindow>> wfs;
  for (std::size_t c = 0; c < trace.component_count(); ++c) {
    out += "," + trace.component_name(static_cast<sim::ComponentId>(c));
    wfs.push_back(
        trace.waveform(static_cast<sim::ComponentId>(c), window));
  }
  out += '\n';
  std::size_t rows = 0;
  for (const auto& wf : wfs) rows = std::max(rows, wf.size());
  for (std::size_t r = 0; r < rows; ++r) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(
                      static_cast<sim::SimTime>(r) * window));
    out += buf;
    for (const auto& wf : wfs) {
      std::snprintf(buf, sizeof buf, ",%.6g",
                    r < wf.size() ? wf[r].watts : 0.0);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace socpower::core
