#include "core/compactor.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "hw/gatesim.hpp"

namespace socpower::core {

namespace {

using Unigram = std::unordered_map<std::uint32_t, double>;
using Bigram = std::unordered_map<std::uint64_t, double>;

std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

void accumulate(std::span<const std::uint32_t> s, std::size_t begin,
                std::size_t end, Unigram& uni, Bigram& bi) {
  for (std::size_t i = begin; i < end; ++i) {
    uni[s[i]] += 1.0;
    if (i + 1 < end) bi[pair_key(s[i], s[i + 1])] += 1.0;
  }
}

double l1_normalized(const std::unordered_map<std::uint64_t, double>& a,
                     double asum,
                     const std::unordered_map<std::uint64_t, double>& b,
                     double bsum) {
  if (asum == 0 || bsum == 0) return asum == bsum ? 0.0 : 2.0;
  double d = 0;
  for (const auto& [k, v] : a) {
    const auto it = b.find(k);
    d += std::fabs(v / asum - (it == b.end() ? 0.0 : it->second / bsum));
  }
  for (const auto& [k, v] : b)
    if (!a.count(k)) d += v / bsum;
  return d;
}

double l1_normalized32(const Unigram& a, double asum, const Unigram& b,
                       double bsum) {
  if (asum == 0 || bsum == 0) return asum == bsum ? 0.0 : 2.0;
  double d = 0;
  for (const auto& [k, v] : a) {
    const auto it = b.find(k);
    d += std::fabs(v / asum - (it == b.end() ? 0.0 : it->second / bsum));
  }
  for (const auto& [k, v] : b)
    if (!a.count(k)) d += v / bsum;
  return d;
}

}  // namespace

SequenceCompactor::SequenceCompactor(CompactionParams params)
    : params_(params) {
  assert(params_.keep_ratio > 0.0 && params_.keep_ratio <= 1.0);
  assert(params_.window > 0);
}

std::vector<std::size_t> SequenceCompactor::select(
    std::span<const std::uint32_t> symbols) const {
  const std::size_t n = symbols.size();
  std::vector<std::size_t> kept;
  if (n == 0) return kept;
  if (n < params_.min_length || params_.keep_ratio >= 1.0) {
    kept.resize(n);
    for (std::size_t i = 0; i < n; ++i) kept[i] = i;
    return kept;
  }

  // Reference statistics of the full buffer.
  Unigram full_uni;
  Bigram full_bi;
  accumulate(symbols, 0, n, full_uni, full_bi);
  const double full_usum = static_cast<double>(n);
  const double full_bsum = static_cast<double>(n - 1);

  // Candidate windows tile the buffer.
  const std::size_t w = std::min(params_.window, n);
  std::vector<std::size_t> starts;
  for (std::size_t s = 0; s + w <= n; s += w) starts.push_back(s);
  if (starts.empty()) starts.push_back(0);

  const std::size_t target =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::ceil(params_.keep_ratio *
                                             static_cast<double>(n) /
                                             static_cast<double>(w))));

  // Greedy: repeatedly add the window whose inclusion minimizes the combined
  // unigram+bigram L1 distance to the full distribution.
  Unigram sel_uni;
  Bigram sel_bi;
  double sel_usum = 0, sel_bsum = 0;
  std::vector<bool> used(starts.size(), false);
  std::vector<std::size_t> chosen;
  for (std::size_t round = 0; round < target && round < starts.size();
       ++round) {
    double best_score = 1e300;
    std::size_t best = starts.size();
    for (std::size_t ci = 0; ci < starts.size(); ++ci) {
      if (used[ci]) continue;
      Unigram u = sel_uni;
      Bigram b = sel_bi;
      const std::size_t begin = starts[ci];
      const std::size_t end = std::min(begin + w, n);
      accumulate(symbols, begin, end, u, b);
      const double usum = sel_usum + static_cast<double>(end - begin);
      const double bsum =
          sel_bsum + static_cast<double>(end - begin > 0 ? end - begin - 1 : 0);
      const double score = l1_normalized32(full_uni, full_usum, u, usum) +
                           l1_normalized(full_bi, full_bsum, b, bsum);
      if (score < best_score) {
        best_score = score;
        best = ci;
      }
    }
    if (best == starts.size()) break;
    used[best] = true;
    const std::size_t begin = starts[best];
    const std::size_t end = std::min(begin + w, n);
    accumulate(symbols, begin, end, sel_uni, sel_bi);
    sel_usum += static_cast<double>(end - begin);
    sel_bsum += static_cast<double>(end - begin - 1);
    chosen.push_back(best);
  }

  std::sort(chosen.begin(), chosen.end());
  for (const std::size_t ci : chosen) {
    const std::size_t begin = starts[ci];
    const std::size_t end = std::min(begin + w, n);
    for (std::size_t i = begin; i < end; ++i) kept.push_back(i);
  }
  if (kept.empty()) kept.push_back(0);
  return kept;
}

double SequenceCompactor::unigram_distance(
    std::span<const std::uint32_t> symbols,
    std::span<const std::size_t> kept) {
  Unigram full, sel;
  Bigram dummy_full, dummy_sel;
  accumulate(symbols, 0, symbols.size(), full, dummy_full);
  for (const std::size_t i : kept) sel[symbols[i]] += 1.0;
  return l1_normalized32(full, static_cast<double>(symbols.size()), sel,
                         static_cast<double>(kept.size()));
}

double SequenceCompactor::bigram_distance(
    std::span<const std::uint32_t> symbols,
    std::span<const std::size_t> kept) {
  Bigram full, sel;
  double full_sum = symbols.size() > 1
                        ? static_cast<double>(symbols.size() - 1)
                        : 0.0;
  for (std::size_t i = 0; i + 1 < symbols.size(); ++i)
    full[pair_key(symbols[i], symbols[i + 1])] += 1.0;
  double sel_sum = 0;
  for (std::size_t k = 0; k + 1 < kept.size(); ++k) {
    if (kept[k + 1] == kept[k] + 1) {  // adjacent in the original sequence
      sel[pair_key(symbols[kept[k]], symbols[kept[k + 1]])] += 1.0;
      sel_sum += 1.0;
    }
  }
  return l1_normalized(full, full_sum, sel, sel_sum);
}

DynamicCompactionStream::DynamicCompactionStream(CompactionParams params)
    : compactor_(params), params_(params) {}

bool DynamicCompactionStream::feed(std::uint32_t symbol) {
  ++fed_;
  bool simulate;
  if (bootstrap_) {
    simulate = true;  // first K symbols: no statistics yet
  } else {
    simulate = pattern_pos_ < keep_pattern_.size()
                   ? keep_pattern_[pattern_pos_]
                   : true;
  }
  ++pattern_pos_;
  buffer_.push_back(symbol);
  if (buffer_.size() >= params_.k_memory) {
    // Derive the keep pattern for the NEXT buffer from this one (causal,
    // "dynamic" compaction: I' is generated without seeing all of I).
    const auto kept = compactor_.select(buffer_);
    keep_pattern_.assign(buffer_.size(), false);
    for (const std::size_t i : kept)
      if (i < keep_pattern_.size()) keep_pattern_[i] = true;
    buffer_.clear();
    pattern_pos_ = 0;
    bootstrap_ = false;
  }
  if (simulate) ++simulated_;
  return simulate;
}

std::vector<Joules> DynamicCompactionStream::price_candidates(
    hw::GateSim& sim, std::span<const std::vector<std::uint8_t>> patterns) {
  std::vector<Joules> out;
  out.reserve(patterns.size());
  std::array<hw::CycleResult, hw::GateSim::kMaxLanes> per_lane;
  for (std::size_t base = 0; base < patterns.size();
       base += hw::GateSim::kMaxLanes) {
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(hw::GateSim::kMaxLanes, patterns.size() - base));
    sim.begin_packed_stage();
    for (unsigned l = 0; l < n; ++l) {
      const auto& bits = patterns[base + l];
      for (std::size_t i = 0; i < bits.size(); ++i)
        sim.stage_packed_input(i, l, bits[i] != 0);
    }
    sim.probe_packed(n, per_lane.data());
    for (unsigned l = 0; l < n; ++l) out.push_back(per_lane[l].energy);
  }
  priced_ += patterns.size();
  return out;
}

}  // namespace socpower::core
