// Bus/arbiter component estimator: the behavioral shared-bus model of the
// paper's Section 3. The master submits each reaction's shared-memory
// transfers and advances the grant-level scheduler as part of its
// discrete-event timebase; this backend owns the scheduler and books
// interconnect energy from per-line Hamming activity.
#pragma once

#include <memory>

#include "bus/bus_model.hpp"
#include "core/estimators/component_estimator.hpp"

namespace socpower::core {

class BusEstimator final : public BusBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "bus.arbiter"; }

  void prepare(const EstimatorContext& ctx) override;
  void begin_run() override;
  TransitionCost cost(const TransitionRequest&) override;
  void flush(std::vector<FlushJob>&) override {}  // nothing deferred
  void stats(RunResults& res) const override;
  [[nodiscard]] std::vector<cfsm::CfsmId> component_ids() const override {
    return {};  // resource backend: prices transfers, not processes
  }

  bus::BusScheduler::JobId submit(sim::SimTime now,
                                  bus::BusRequest request) override;
  [[nodiscard]] bool has_work() const override;
  [[nodiscard]] sim::SimTime next_boundary() const override;
  std::vector<bus::BusScheduler::Completion> advance(sim::SimTime t) override;
  [[nodiscard]] const bus::BusScheduler& scheduler() const override {
    return *sched_;
  }

 private:
  const CoEstimatorConfig* config_ = nullptr;
  std::unique_ptr<bus::BusScheduler> sched_;
};

}  // namespace socpower::core
