// Software component estimator: the single embedded CPU's ISS, the compiled
// SLITE images of the software processes, and the instruction power model.
//
// This is the "SW power co-simulator" box of the paper's Figure 2(b): the
// master stages a transition's inputs and variables into the process's data
// block, and the backend runs the compiled code to HALT on the cycle-true
// ISS, returning cycles and energy. The ISS's pre-decoded basic-block cache
// (iss::IssConfig::block_cache) makes this the fast path; acceleration
// beyond that (energy cache, macro-model, sampling) is master policy and
// never reaches this backend.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/estimators/component_estimator.hpp"
#include "iss/iss.hpp"
#include "swsyn/codegen.hpp"

namespace socpower::core {

/// The instruction power model a config describes: data-dependent DSP-style
/// when data_nj_per_toggle is set, SPARClite otherwise. Shared between this
/// backend and the master's macro-op library characterization so both price
/// instructions identically.
[[nodiscard]] iss::InstructionPowerModel instruction_power_model(
    const CoEstimatorConfig& config);

class SwIssEstimator final : public SwBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "sw.iss"; }

  void prepare(const EstimatorContext& ctx) override;
  void begin_run() override;
  TransitionCost cost(const TransitionRequest& req) override;
  void flush(std::vector<FlushJob>&) override {}  // nothing deferred
  void stats(RunResults& res) const override;
  [[nodiscard]] std::vector<cfsm::CfsmId> component_ids() const override {
    return components_;
  }

  [[nodiscard]] const swsyn::SwImage* image(cfsm::CfsmId task) const override;
  Joules replay(cfsm::CfsmId task, const cfsm::ReactionInputs& inputs,
                const cfsm::CfsmState& pre_state) override;

  [[nodiscard]] BackendWarmState export_warm_state() const override;
  void import_warm_state(const BackendWarmState& state) override;
  [[nodiscard]] WarmCacheCounters warm_cache_counters() const override;

 private:
  /// One staged ISS invocation: run the task's compiled code to HALT.
  iss::RunResult invoke(cfsm::CfsmId task, const cfsm::ReactionInputs& inputs,
                        const cfsm::CfsmState& pre_state);

  const cfsm::Network* net_ = nullptr;
  const CoEstimatorConfig* config_ = nullptr;
  std::vector<cfsm::CfsmId> components_;
  std::unique_ptr<iss::Iss> iss_;
  std::vector<std::unique_ptr<swsyn::SwImage>> images_;  // per CfsmId
  std::uint64_t invocations_ = 0;
  std::uint64_t instructions_ = 0;
};

}  // namespace socpower::core
