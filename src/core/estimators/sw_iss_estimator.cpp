#include "core/estimators/sw_iss_estimator.hpp"

#include <cassert>

#include "telemetry/registry.hpp"

namespace socpower::core {

iss::InstructionPowerModel instruction_power_model(
    const CoEstimatorConfig& config) {
  return config.data_nj_per_toggle > 0.0
             ? iss::InstructionPowerModel::dsp_like(config.data_nj_per_toggle,
                                                    config.electrical)
             : iss::InstructionPowerModel::sparclite(config.electrical);
}

void SwIssEstimator::prepare(const EstimatorContext& ctx) {
  net_ = ctx.network;
  config_ = ctx.config;
  components_ = ctx.components;

  iss_ = std::make_unique<iss::Iss>(instruction_power_model(*config_),
                                    config_->iss);
  images_.resize(net_->cfsm_count());
  std::uint32_t next_code_word = 16;
  std::uint32_t next_data_base = 0x4000;
  for (const cfsm::CfsmId task : components_) {
    auto img = std::make_unique<swsyn::SwImage>(swsyn::compile_cfsm(
        net_->cfsm(task), next_code_word, next_data_base));
    next_code_word += static_cast<std::uint32_t>(img->code.size()) + 16;
    next_data_base += (img->data_bytes + 15u) & ~15u;
    assert((next_code_word + 1) * iss::kInstrBytes < config_->iss.memory_bytes);
    assert(next_data_base < config_->iss.memory_bytes);
    iss_->load_program(img->code, img->code_base_word);
    images_[static_cast<std::size_t>(task)] = std::move(img);
  }
}

void SwIssEstimator::begin_run() {
  iss_->reset_cpu();
  invocations_ = 0;
  instructions_ = 0;
}

iss::RunResult SwIssEstimator::invoke(cfsm::CfsmId task,
                                      const cfsm::ReactionInputs& inputs,
                                      const cfsm::CfsmState& pre_state) {
  static telemetry::Counter& invocations =
      telemetry::registry().counter("estimator.sw.iss.invocations");
  static telemetry::Counter& instructions =
      telemetry::registry().counter("estimator.sw.iss.instructions");
  const swsyn::SwImage& img = *images_[static_cast<std::size_t>(task)];
  swsyn::stage_reaction(*iss_, img, inputs, pre_state);
  // Reset the CPU's inter-invocation circuit state so a path's cost is a
  // pure function of the path — the property that makes caching exact for
  // data-independent power models (paper Section 5.2).
  iss_->reset_cpu();
  iss_->set_pc(img.code_base_word);
  const iss::RunResult r = iss_->run();
  assert(r.halted && "software transition did not reach HALT");
  ++invocations_;
  instructions_ += r.instructions;
  invocations.add();
  instructions.add(r.instructions);
  return r;
}

TransitionCost SwIssEstimator::cost(const TransitionRequest& req) {
  sync_overhead(config_->sync_spin);
  const iss::RunResult r = invoke(req.task, *req.inputs, *req.pre_state);
  if (config_->verify_lowlevel) {
    const swsyn::SwImage& img = *images_[static_cast<std::size_t>(req.task)];
    const auto iss_em = swsyn::read_emissions(*iss_, img);
    assert(iss_em.size() == req.reaction->emissions.size() &&
           "ISS/behavioral emission mismatch");
    for (std::size_t i = 0; i < iss_em.size(); ++i) {
      assert(iss_em[i].event == req.reaction->emissions[i].event);
      assert(iss_em[i].value == req.reaction->emissions[i].value);
    }
    cfsm::CfsmState iss_vars = *req.pre_state;
    swsyn::read_vars(*iss_, img, iss_vars);
    assert(iss_vars.vars == req.post_state->vars &&
           "ISS/behavioral variable state mismatch");
  }
  return {static_cast<double>(r.cycles), r.energy, true};
}

Joules SwIssEstimator::replay(cfsm::CfsmId task,
                              const cfsm::ReactionInputs& inputs,
                              const cfsm::CfsmState& pre_state) {
  return invoke(task, inputs, pre_state).energy;
}

void SwIssEstimator::stats(RunResults& res) const {
  // Accumulate: with N cores the master owns one ISS backend per core and
  // folds all of them into the same RunResults.
  res.iss_invocations += invocations_;
  res.iss_instructions += instructions_;
}

const swsyn::SwImage* SwIssEstimator::image(cfsm::CfsmId task) const {
  return images_.at(static_cast<std::size_t>(task)).get();
}

BackendWarmState SwIssEstimator::export_warm_state() const {
  BackendWarmState state;
  if (iss_) state.block_entries = iss_->cached_block_entries();
  return state;
}

void SwIssEstimator::import_warm_state(const BackendWarmState& state) {
  if (!iss_) return;
  for (const std::uint32_t entry : state.block_entries)
    iss_->warm_block(entry);
}

ComponentEstimator::WarmCacheCounters SwIssEstimator::warm_cache_counters()
    const {
  WarmCacheCounters c;
  if (iss_) {
    const iss::BlockCacheStats& s = iss_->block_cache_stats();
    c.hits = s.hits;
    c.fills = s.decodes;
  }
  return c;
}

}  // namespace socpower::core
