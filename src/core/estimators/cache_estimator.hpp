// Instruction-cache component estimator: the fast behavioral cache
// simulator of the paper's Section 3. The ISS assumes 100 % hits; the
// master feeds this backend each software path's static address trace and
// charges the returned penalty cycles and access/refill energy — which is
// why acceleration on the ISS side stays exact.
#pragma once

#include <memory>

#include "cache/cache_sim.hpp"
#include "core/estimators/component_estimator.hpp"

namespace socpower::core {

class CacheEstimator final : public CacheBackend {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "cache.icache";
  }

  void prepare(const EstimatorContext& ctx) override;
  void begin_run() override;
  TransitionCost cost(const TransitionRequest&) override;
  void flush(std::vector<FlushJob>&) override {}  // nothing deferred
  void stats(RunResults& res) const override;
  [[nodiscard]] std::vector<cfsm::CfsmId> component_ids() const override {
    return {};  // resource backend: prices references, not processes
  }

  cache::AccessStats access(std::span<const std::uint32_t> addresses) override;

 private:
  const CoEstimatorConfig* config_ = nullptr;
  std::unique_ptr<cache::CacheSim> sim_;
};

}  // namespace socpower::core
