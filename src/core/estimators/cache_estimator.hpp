// Cache component estimator: the fast behavioral cache simulator of the
// paper's Section 3, generalized for multicore.
//
// Instruction side: the ISS assumes 100 % hits; the master feeds this
// backend each software path's static address trace and charges the
// returned penalty cycles and access/refill energy — which is why
// acceleration on the ISS side stays exact. With N cores each core gets a
// private instruction cache (same geometry), accessed via access_core().
//
// Data side (coherence on): shared-data traffic runs through an MSI-coherent
// private-L1/shared-L2 model (cache/coherence.hpp) whose state transitions
// bill invalidation/writeback messages onto the interconnect.
#pragma once

#include <memory>
#include <vector>

#include "cache/cache_sim.hpp"
#include "cache/coherence.hpp"
#include "core/estimators/component_estimator.hpp"

namespace socpower::core {

class CacheEstimator final : public CacheBackend {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "cache.icache";
  }

  void prepare(const EstimatorContext& ctx) override;
  void begin_run() override;
  TransitionCost cost(const TransitionRequest&) override;
  void flush(std::vector<FlushJob>&) override {}  // nothing deferred
  void stats(RunResults& res) const override;
  [[nodiscard]] std::vector<cfsm::CfsmId> component_ids() const override {
    return {};  // resource backend: prices references, not processes
  }

  cache::AccessStats access(std::span<const std::uint32_t> addresses) override;
  cache::AccessStats access_core(
      unsigned core, std::span<const std::uint32_t> addresses) override;
  cache::CoherentAccessResult data_access(int core, bool write,
                                          std::uint32_t addr,
                                          std::uint32_t bytes) override;

  /// The coherent model of the current run (nullptr when coherence is off).
  [[nodiscard]] const cache::CoherentMemoryModel* coherent() const {
    return coherent_.get();
  }

 private:
  const CoEstimatorConfig* config_ = nullptr;
  std::vector<std::unique_ptr<cache::CacheSim>> sims_;  // one icache per core
  std::unique_ptr<cache::CoherentMemoryModel> coherent_;
};

}  // namespace socpower::core
