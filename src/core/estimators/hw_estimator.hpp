// Shared machinery of the hardware component estimators.
//
// Each ASIC mapped to this backend owns a synthesized FSMD netlist, a gate
// simulator over it, and (in batch mode) a buffered vector trace. The
// subclasses differ only in how one applied input vector is priced:
// HwGateEstimator steps the event-driven gate-level simulator,
// HwRtlEstimator walks the executed path's operator activations at RT
// level. Everything else — staging, register resynchronization after
// acceleration skips, batch buffering, and the per-unit offline flush jobs
// the master runs on its worker pool — is common and lives here.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/estimators/component_estimator.hpp"
#include "hw/gatesim.hpp"
#include "hw/reaction_cache.hpp"
#include "hwsyn/synth.hpp"

namespace socpower::core {

class HwEstimatorBase : public HwBackend {
 public:
  void prepare(const EstimatorContext& ctx) override;
  void begin_run() override;
  TransitionCost cost(const TransitionRequest& req) override;
  void flush(std::vector<FlushJob>& jobs) override;
  void stats(RunResults& res) const override;
  [[nodiscard]] std::vector<cfsm::CfsmId> component_ids() const override {
    return components_;
  }

  [[nodiscard]] const hwsyn::HwImage* image(cfsm::CfsmId task) const override;
  void resync_if_dirty(cfsm::CfsmId task,
                       const cfsm::CfsmState& state) override;
  void mark_skipped(cfsm::CfsmId task, bool skipped) override;
  void reset_unit(cfsm::CfsmId task) override;
  void enqueue(cfsm::CfsmId task, sim::SimTime time,
               const cfsm::ReactionInputs& inputs, cfsm::PathId path) override;
  void separate_reset(cfsm::CfsmId task) override;
  Joules separate_step(cfsm::CfsmId task,
                       const cfsm::ReactionInputs& inputs) override;

  /// Reaction-cache statistics summed over this backend's hardware units
  /// (tests and examples; per-unit telemetry lives under
  /// "estimator.<name>.rcache.*").
  [[nodiscard]] hw::ReactionCacheStats reaction_cache_stats() const;

 protected:
  struct BatchEntry {
    sim::SimTime time = 0;
    cfsm::ReactionInputs inputs;
    cfsm::PathId path = cfsm::kNoPath;  // kNoPath == reset transition
  };
  struct Unit {
    hwsyn::HwImage image;
    std::unique_ptr<hw::GateSim> sim;
    /// Reaction memoizer wrapping `sim`. One per unit — the parallel batch
    /// flush dispatches whole units, so no cache is ever shared between
    /// threads.
    std::unique_ptr<hw::ReactionCache> rcache;
    bool registers_dirty = false;  // gate sim skipped; state needs resync
    std::vector<BatchEntry> batch;
  };

  /// Price one online transition (sync overhead already charged).
  virtual Joules measure(Unit& unit, const TransitionRequest& req) = 0;
  /// Price one buffered vector during the offline flush. Runs on a pool
  /// worker: may only touch `unit` and `gate_cycles` (and this backend's
  /// immutable prepare()-time state).
  virtual Joules measure_flush(Unit& unit, cfsm::CfsmId task,
                               const BatchEntry& entry,
                               std::uint64_t* gate_cycles) = 0;

  [[nodiscard]] Unit& unit(cfsm::CfsmId task) {
    return *units_[static_cast<std::size_t>(task)];
  }

  /// Evaluate the staged reaction of `u` — through the reaction cache when
  /// one is attached (every consumer goes through here: online cost(), the
  /// batched flush, and the separate-estimation baseline).
  [[nodiscard]] hw::CycleResult step_unit(Unit& u) {
    return u.rcache ? u.rcache->step() : u.sim->step();
  }

  const cfsm::Network* net_ = nullptr;
  const CoEstimatorConfig* config_ = nullptr;
  const std::vector<cfsm::PathTable>* path_tables_ = nullptr;
  std::vector<cfsm::CfsmId> components_;
  std::vector<std::unique_ptr<Unit>> units_;  // per CfsmId
  /// Gate-simulator cycles evaluated online (flush cycles are returned per
  /// job and merged by the master).
  std::uint64_t gate_cycles_ = 0;

 private:
  [[nodiscard]] FlushResult run_flush(Unit& u, cfsm::CfsmId task);
  [[nodiscard]] hw::ReactionCacheConfig reaction_cache_config() const;
};

}  // namespace socpower::core
