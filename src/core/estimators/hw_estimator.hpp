// Shared machinery of the hardware component estimators.
//
// Each ASIC mapped to this backend owns a synthesized FSMD netlist, a gate
// simulator over it, and (in batch mode) a buffered vector trace. The
// subclasses differ only in how one applied input vector is priced:
// HwGateEstimator steps the event-driven gate-level simulator,
// HwRtlEstimator walks the executed path's operator activations at RT
// level. Everything else — staging, register resynchronization after
// acceleration skips, batch buffering, and the per-unit offline flush jobs
// the master runs on its worker pool — is common and lives here.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/estimators/component_estimator.hpp"
#include "hw/gatesim.hpp"
#include "hw/reaction_cache.hpp"
#include "hwsyn/synth.hpp"

namespace socpower::telemetry {
class Counter;
}  // namespace socpower::telemetry

namespace socpower::core {

class HwEstimatorBase : public HwBackend {
 public:
  void prepare(const EstimatorContext& ctx) override;
  void begin_run() override;
  TransitionCost cost(const TransitionRequest& req) override;
  void flush(std::vector<FlushJob>& jobs) override;
  void stats(RunResults& res) const override;
  [[nodiscard]] std::vector<cfsm::CfsmId> component_ids() const override {
    return components_;
  }

  [[nodiscard]] const hwsyn::HwImage* image(cfsm::CfsmId task) const override;
  void resync_if_dirty(cfsm::CfsmId task,
                       const cfsm::CfsmState& state) override;
  void mark_skipped(cfsm::CfsmId task, bool skipped) override;
  void reset_unit(cfsm::CfsmId task) override;
  void enqueue(cfsm::CfsmId task, sim::SimTime time,
               const cfsm::ReactionInputs& inputs, cfsm::PathId path,
               const cfsm::CfsmState& pre_state) override;
  void separate_reset(cfsm::CfsmId task) override;
  Joules separate_step(cfsm::CfsmId task,
                       const cfsm::ReactionInputs& inputs) override;

  /// Reaction-cache statistics summed over this backend's hardware units
  /// (tests and examples; per-unit telemetry lives under
  /// "estimator.<name>.rcache.*").
  [[nodiscard]] hw::ReactionCacheStats reaction_cache_stats() const;

  [[nodiscard]] BackendWarmState export_warm_state() const override;
  void import_warm_state(const BackendWarmState& state) override;
  [[nodiscard]] WarmCacheCounters warm_cache_counters() const override;

  /// Incrementally price and clear `task`'s currently buffered batch slice.
  /// `first` marks the first slice of a run's batch: it pays the one batch
  /// hand-off sync and resets the gate simulator, exactly like the top of a
  /// whole-batch flush; later slices continue from the registers the
  /// previous slice left behind. Concatenating the slices' entries (and
  /// summing their gate_cycles) is bit-identical to flushing the whole
  /// batch at once — packed-group boundaries can differ across slicings,
  /// but per-lane energies equal the scalar replay's either way. Used by
  /// the dist::Worker to evaluate shipped chunks eagerly, overlapping with
  /// the master's DE loop; serialize calls per unit like flush jobs.
  [[nodiscard]] FlushResult drain_batch(cfsm::CfsmId task, bool first);

 protected:
  struct BatchEntry {
    sim::SimTime time = 0;
    cfsm::ReactionInputs inputs;
    cfsm::PathId path = cfsm::kNoPath;  // kNoPath == reset transition
    /// Behavioral state before the reaction: the bit-parallel flush seeds
    /// packed register lanes from it.
    cfsm::CfsmState pre;
  };
  struct Unit {
    hwsyn::HwImage image;
    std::unique_ptr<hw::GateSim> sim;
    /// Reaction memoizer wrapping `sim`. One per unit — the parallel batch
    /// flush dispatches whole units, so no cache is ever shared between
    /// threads.
    std::unique_ptr<hw::ReactionCache> rcache;
    bool registers_dirty = false;  // gate sim skipped; state needs resync
    std::vector<BatchEntry> batch;
    /// Bit-parallel register seeding table: packed_dff_of[v][b] is the index
    /// into netlist dffs() of variable v's bit-b register. Empty when the
    /// netlist's registers are not exactly the variable registers — then the
    /// behavioral pre-state cannot seed every flip-flop and the unit is not
    /// packed-capable.
    std::vector<std::vector<std::int32_t>> packed_dff_of;
  };

  /// Price one online transition (sync overhead already charged).
  virtual Joules measure(Unit& unit, const TransitionRequest& req) = 0;
  /// Price one buffered vector during the offline flush. Runs on a pool
  /// worker: may only touch `unit` and `gate_cycles` (and this backend's
  /// immutable prepare()-time state).
  virtual Joules measure_flush(Unit& unit, cfsm::CfsmId task,
                               const BatchEntry& entry,
                               std::uint64_t* gate_cycles) = 0;
  /// Price a run of consecutive non-reset buffered vectors in one packed
  /// pass, appending one energy per entry (in entry order, each bit-identical
  /// to what the scalar replay would have produced). Returns false when this
  /// backend or this unit cannot evaluate the group bit-parallel — run_flush
  /// then falls back to the per-entry scalar path. Same worker-thread rules
  /// as measure_flush. The default declines (the RTL backend never steps the
  /// gate simulator during a flush).
  virtual bool measure_flush_packed(Unit& /*unit*/, cfsm::CfsmId /*task*/,
                                    std::span<const BatchEntry> /*entries*/,
                                    std::vector<Joules>* /*energies*/,
                                    std::uint64_t* /*gate_cycles*/) {
    return false;
  }

  [[nodiscard]] Unit& unit(cfsm::CfsmId task) {
    return *units_[static_cast<std::size_t>(task)];
  }

  /// Evaluate the staged reaction of `u` — through the reaction cache when
  /// one is attached (every consumer goes through here: online cost(), the
  /// batched flush, and the separate-estimation baseline).
  [[nodiscard]] hw::CycleResult step_unit(Unit& u) {
    return u.rcache ? u.rcache->step() : u.sim->step();
  }

  const cfsm::Network* net_ = nullptr;
  const CoEstimatorConfig* config_ = nullptr;
  const std::vector<cfsm::PathTable>* path_tables_ = nullptr;
  std::vector<cfsm::CfsmId> components_;
  std::vector<std::unique_ptr<Unit>> units_;  // per CfsmId
  /// Gate-simulator cycles evaluated online (flush cycles are returned per
  /// job and merged by the master).
  std::uint64_t gate_cycles_ = 0;

 private:
  [[nodiscard]] FlushResult run_flush(Unit& u, cfsm::CfsmId task);
  [[nodiscard]] FlushResult drain_into(Unit& u, cfsm::CfsmId task, bool first);
  [[nodiscard]] hw::ReactionCacheConfig reaction_cache_config() const;
  void build_packed_dff_table(Unit& u) const;

  // Bit-parallel flush telemetry ("estimator.<name>.packed.*"), resolved in
  // prepare() because the names depend on the backend name. Counters are
  // atomic; concurrent flush workers add to them directly.
  telemetry::Counter* packed_steps_telem_ = nullptr;
  telemetry::Counter* packed_lanes_telem_ = nullptr;
  telemetry::Counter* packed_fallbacks_telem_ = nullptr;
};

}  // namespace socpower::core
