#include "core/estimators/hw_gate_estimator.hpp"

#include <array>
#include <cassert>

#include "telemetry/registry.hpp"

namespace socpower::core {

Joules HwGateEstimator::measure(Unit& unit, const TransitionRequest& req) {
  static telemetry::Counter& cycles =
      telemetry::registry().counter("estimator.hw.gate.cycles");
  hwsyn::stage_hw_reaction(*unit.sim, unit.image, *req.inputs);
  // A cache hit replays the reaction with the simulator's post-step state
  // restored exactly, so the verify_lowlevel cross-checks below read the
  // same net values they would after a real step().
  const hw::CycleResult r = step_unit(unit);
  ++gate_cycles_;
  cycles.add();
  if (config_->verify_lowlevel) {
    const auto hw_em = effective_emissions(
        hwsyn::read_hw_emissions(*unit.sim, unit.image));
    auto beh_em = effective_emissions(req.reaction->emissions);
    assert(hw_em.size() == beh_em.size() &&
           "gate-sim/behavioral emission mismatch");
    for (std::size_t i = 0; i < hw_em.size(); ++i) {
      assert(hw_em[i].event == beh_em[i].event);
      assert(hw_em[i].value == beh_em[i].value);
    }
    const cfsm::CfsmState& st = *req.post_state;
    for (std::size_t v = 0; v < st.vars.size(); ++v)
      assert(hwsyn::read_hw_var(*unit.sim, unit.image,
                                static_cast<cfsm::VarId>(v)) == st.vars[v]);
  }
  return r.energy;
}

Joules HwGateEstimator::measure_flush(Unit& unit, cfsm::CfsmId,
                                      const BatchEntry& entry,
                                      std::uint64_t* gate_cycles) {
  hwsyn::stage_hw_reaction(*unit.sim, unit.image, entry.inputs);
  const Joules e = step_unit(unit).energy;
  ++*gate_cycles;
  return e;
}

bool HwGateEstimator::measure_flush_packed(Unit& unit, cfsm::CfsmId,
                                           std::span<const BatchEntry> entries,
                                           std::vector<Joules>* energies,
                                           std::uint64_t* gate_cycles) {
  // One lane per consecutive buffered vector: inputs from the recorded
  // reaction, register state from the recorded behavioral pre-state (the
  // same trajectory the scalar replay walks, since behavioral and gate-level
  // next-state agree — and step_packed refuses the pass, mutating nothing,
  // if they ever did not, so the scalar fallback below us recomputes the
  // truth rather than trusting the seeds).
  const unsigned n = static_cast<unsigned>(entries.size());
  if (n < 2 || n > hw::GateSim::kMaxLanes) return false;
  if (unit.packed_dff_of.empty()) return false;
  hw::GateSim& sim = *unit.sim;
  sim.begin_packed_stage();
  for (unsigned l = 0; l < n; ++l) {
    hwsyn::stage_hw_reaction_lane(sim, unit.image, entries[l].inputs, l);
    const auto& vars = entries[l].pre.vars;
    if (vars.size() != unit.packed_dff_of.size()) return false;
    for (std::size_t v = 0; v < vars.size(); ++v) {
      const auto raw = static_cast<std::uint32_t>(vars[v]);
      const auto& bits = unit.packed_dff_of[v];
      if (bits.size() > 32) return false;  // register wider than the var word
      for (std::size_t b = 0; b < bits.size(); ++b)
        sim.seed_packed_dff(static_cast<std::size_t>(bits[b]), l,
                            ((raw >> b) & 1u) != 0);
    }
  }
  std::array<hw::CycleResult, hw::GateSim::kMaxLanes> per_lane;
  if (!sim.step_packed(n, per_lane.data())) return false;
  energies->reserve(n);
  for (unsigned l = 0; l < n; ++l) energies->push_back(per_lane[l].energy);
  *gate_cycles += n;
  return true;
}

}  // namespace socpower::core
