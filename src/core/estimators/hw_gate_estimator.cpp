#include "core/estimators/hw_gate_estimator.hpp"

#include <cassert>

#include "telemetry/registry.hpp"

namespace socpower::core {

Joules HwGateEstimator::measure(Unit& unit, const TransitionRequest& req) {
  static telemetry::Counter& cycles =
      telemetry::registry().counter("estimator.hw.gate.cycles");
  hwsyn::stage_hw_reaction(*unit.sim, unit.image, *req.inputs);
  // A cache hit replays the reaction with the simulator's post-step state
  // restored exactly, so the verify_lowlevel cross-checks below read the
  // same net values they would after a real step().
  const hw::CycleResult r = step_unit(unit);
  ++gate_cycles_;
  cycles.add();
  if (config_->verify_lowlevel) {
    const auto hw_em = effective_emissions(
        hwsyn::read_hw_emissions(*unit.sim, unit.image));
    auto beh_em = effective_emissions(req.reaction->emissions);
    assert(hw_em.size() == beh_em.size() &&
           "gate-sim/behavioral emission mismatch");
    for (std::size_t i = 0; i < hw_em.size(); ++i) {
      assert(hw_em[i].event == beh_em[i].event);
      assert(hw_em[i].value == beh_em[i].value);
    }
    const cfsm::CfsmState& st = *req.post_state;
    for (std::size_t v = 0; v < st.vars.size(); ++v)
      assert(hwsyn::read_hw_var(*unit.sim, unit.image,
                                static_cast<cfsm::VarId>(v)) == st.vars[v]);
  }
  return r.energy;
}

Joules HwGateEstimator::measure_flush(Unit& unit, cfsm::CfsmId,
                                      const BatchEntry& entry,
                                      std::uint64_t* gate_cycles) {
  hwsyn::stage_hw_reaction(*unit.sim, unit.image, entry.inputs);
  const Joules e = step_unit(unit).energy;
  ++*gate_cycles;
  return e;
}

}  // namespace socpower::core
