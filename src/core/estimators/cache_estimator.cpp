#include "core/estimators/cache_estimator.hpp"

#include <cassert>

#include "telemetry/registry.hpp"

namespace socpower::core {

void CacheEstimator::prepare(const EstimatorContext& ctx) {
  config_ = ctx.config;
}

void CacheEstimator::begin_run() {
  const unsigned cores = config_->cores > 0 ? config_->cores : 1;
  sims_.clear();
  for (unsigned c = 0; c < cores; ++c)
    sims_.push_back(std::make_unique<cache::CacheSim>(config_->icache));
  coherent_.reset();
  if (config_->coherence.enabled)
    coherent_ = std::make_unique<cache::CoherentMemoryModel>(
        config_->coherence, cores);
}

TransitionCost CacheEstimator::cost(const TransitionRequest&) {
  assert(false && "the cache backend prices reference streams, not "
                  "transitions — use access()");
  return {};
}

cache::AccessStats CacheEstimator::access(
    std::span<const std::uint32_t> addresses) {
  return access_core(0, addresses);
}

cache::AccessStats CacheEstimator::access_core(
    unsigned core, std::span<const std::uint32_t> addresses) {
  static telemetry::Counter& accesses =
      telemetry::registry().counter("estimator.cache.icache.accesses");
  static telemetry::Counter& misses =
      telemetry::registry().counter("estimator.cache.icache.misses");
  const cache::AccessStats stats =
      sims_.at(core)->access_stream(addresses);
  accesses.add(stats.accesses);
  misses.add(stats.misses);
  return stats;
}

cache::CoherentAccessResult CacheEstimator::data_access(int core, bool write,
                                                        std::uint32_t addr,
                                                        std::uint32_t bytes) {
  if (!coherent_) return {};
  static telemetry::Counter& accesses =
      telemetry::registry().counter("estimator.cache.coherent.accesses");
  static telemetry::Counter& invalidations =
      telemetry::registry().counter("estimator.cache.coherent.invalidations");
  static telemetry::Counter& writebacks =
      telemetry::registry().counter("estimator.cache.coherent.writebacks");
  cache::CoherentAccessResult r = coherent_->access(core, write, addr, bytes);
  accesses.add();
  invalidations.add(r.invalidations);
  writebacks.add(r.writebacks);
  return r;
}

void CacheEstimator::stats(RunResults& res) const {
  // One icache per core; report the merged reference stats (identical to
  // the single simulator's totals when cores == 1).
  cache::AccessStats sum;
  for (const auto& s : sims_) sum += s->totals();
  res.icache = sum;
  if (coherent_) res.coherence = coherent_->totals();
}

}  // namespace socpower::core
