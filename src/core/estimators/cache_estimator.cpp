#include "core/estimators/cache_estimator.hpp"

#include <cassert>

#include "telemetry/registry.hpp"

namespace socpower::core {

void CacheEstimator::prepare(const EstimatorContext& ctx) {
  config_ = ctx.config;
}

void CacheEstimator::begin_run() {
  sim_ = std::make_unique<cache::CacheSim>(config_->icache);
}

TransitionCost CacheEstimator::cost(const TransitionRequest&) {
  assert(false && "the cache backend prices reference streams, not "
                  "transitions — use access()");
  return {};
}

cache::AccessStats CacheEstimator::access(
    std::span<const std::uint32_t> addresses) {
  static telemetry::Counter& accesses =
      telemetry::registry().counter("estimator.cache.icache.accesses");
  static telemetry::Counter& misses =
      telemetry::registry().counter("estimator.cache.icache.misses");
  const cache::AccessStats stats = sim_->access_stream(addresses);
  accesses.add(stats.accesses);
  misses.add(stats.misses);
  return stats;
}

void CacheEstimator::stats(RunResults& res) const {
  res.icache = sim_->totals();
}

}  // namespace socpower::core
