// RT-level hardware power estimator: prices each transition by walking the
// executed path's operator activations in the RT-level power model — no
// gate evaluation, and nothing to functionally verify against. The fast end
// of the paper's Section 3 accuracy/efficiency choice.
#pragma once

#include <memory>

#include "core/estimators/hw_estimator.hpp"
#include "hwsyn/rtl_power.hpp"

namespace socpower::core {

class HwRtlEstimator final : public HwEstimatorBase {
 public:
  [[nodiscard]] std::string_view name() const override { return "hw.rtl"; }

  void prepare(const EstimatorContext& ctx) override;

 protected:
  Joules measure(Unit& unit, const TransitionRequest& req) override;
  Joules measure_flush(Unit& unit, cfsm::CfsmId task, const BatchEntry& entry,
                       std::uint64_t* gate_cycles) override;

 private:
  /// Shared by all units, including across concurrent flush jobs (the
  /// estimator is stateless per call).
  std::unique_ptr<hwsyn::RtlPowerEstimator> rtl_power_;
};

}  // namespace socpower::core
