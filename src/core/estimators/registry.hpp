// Name-keyed factory of ComponentEstimator backends.
//
// Configs select backends by string (CoEstimatorConfig::estimators), so an
// alternate implementation — an emulated hardware estimator, an ISS driven
// over IPC in another process, a table-driven stub for tests — plugs in by
// registering a factory here; the simulation master never changes. Built-in
// backends ("sw.iss", "hw.gate", "hw.rtl", "cache.icache", "bus.arbiter")
// are registered on first access of estimator_registry().
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace socpower::core {

class ComponentEstimator;

class EstimatorRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ComponentEstimator>()>;

  /// Registers `factory` under `name`. Re-registering a name replaces the
  /// factory (tests swap in instrumented backends); registration never
  /// invalidates existing estimator instances.
  void register_backend(std::string name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Creates a fresh backend; returns nullptr for unknown names (the config
  /// validator reports those with the known-name list before prepare()).
  [[nodiscard]] std::unique_ptr<ComponentEstimator> create(
      const std::string& name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  /// names() joined with ", " — for error messages.
  [[nodiscard]] std::string joined_names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

/// The process-wide registry, with the built-in backends pre-registered.
[[nodiscard]] EstimatorRegistry& estimator_registry();

}  // namespace socpower::core
