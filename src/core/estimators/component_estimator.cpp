#include "core/estimators/component_estimator.hpp"

namespace socpower::core {

void sync_overhead(unsigned spins) {
  volatile unsigned sink = 0;
  for (unsigned i = 0; i < spins; ++i) sink = sink + 1;
}

}  // namespace socpower::core
