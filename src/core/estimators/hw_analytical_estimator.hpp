// Analytical hardware power estimator: the cheap end of the HW
// accuracy/efficiency spectrum, one tier below RT level. Each reaction is
// priced from per-unit effective-capacitance × activity terms plus a
// temperature-dependent leakage term (hw/analytical.hpp), with the
// coefficients auto-calibrated against the gate-level simulator: the first
// hw_analytical_calibration_vectors reactions of each unit replay through
// GateSim (reaction cache on) while (activity, exact energy) samples
// accumulate; once the target is reached the unit's model is
// least-squares-fitted and every later reaction costs four multiply-adds.
// The fitted AnalyticalModel is serializable — it rides BackendWarmState
// through the dist wire and the serve checkpoint, so warm sessions (and the
// explorer's analytical prefilter) skip recalibration entirely.
#pragma once

#include "core/estimators/hw_estimator.hpp"
#include "hw/analytical.hpp"

namespace socpower::core {

class HwAnalyticalEstimator final : public HwEstimatorBase {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "hw.analytical";
  }

  void prepare(const EstimatorContext& ctx) override;
  void begin_run() override;
  void stats(RunResults& res) const override;
  [[nodiscard]] BackendWarmState export_warm_state() const override;
  void import_warm_state(const BackendWarmState& state) override;

  /// The calibrated per-unit models fitted so far (units still calibrating
  /// are absent), in canonical task order — exactly what the checkpoint
  /// carries.
  [[nodiscard]] hw::AnalyticalModel model() const;
  /// Install previously calibrated models. Units this backend does not own
  /// are ignored; installed units skip the gate-level calibration phase.
  void set_model(const hw::AnalyticalModel& model);

 protected:
  Joules measure(Unit& unit, const TransitionRequest& req) override;
  Joules measure_flush(Unit& unit, cfsm::CfsmId task, const BatchEntry& entry,
                       std::uint64_t* gate_cycles) override;

 private:
  struct UnitCalib {
    hw::CalibrationAccumulator acc;
    hw::ActivityTracker tracker;
    hw::AnalyticalUnitModel model;
    bool fitted = false;
    double leakage_watts = 0.0;     // from the per-run leakage knobs
    Joules leak_per_reaction = 0.0; // leakage_watts × reaction latency
    Joules run_leakage = 0.0;       // static energy billed this run
  };

  /// Shared pricing path of the online and flush entry points. Flush jobs
  /// run per-unit on pool workers: this touches only `unit`'s own calib
  /// state and atomic telemetry counters, like the base-class contract asks.
  Joules price(Unit& unit, cfsm::CfsmId task,
               const cfsm::ReactionInputs& inputs, const cfsm::CfsmState& pre,
               std::uint64_t* gate_cycles);

  std::vector<UnitCalib> calib_;  // per CfsmId, parallel to units_
  unsigned calib_target_ = 1;

  telemetry::Counter* reactions_telem_ = nullptr;
  telemetry::Counter* calib_telem_ = nullptr;
  telemetry::Counter* leakage_telem_ = nullptr;
};

}  // namespace socpower::core
