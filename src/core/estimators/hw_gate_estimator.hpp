// Gate-level hardware power estimator: prices each applied input vector by
// stepping the event-driven gate simulator over the synthesized netlist
// (data-dependent switching energy). The accurate end of the paper's
// Section 3 accuracy/efficiency choice.
#pragma once

#include "core/estimators/hw_estimator.hpp"

namespace socpower::core {

class HwGateEstimator final : public HwEstimatorBase {
 public:
  [[nodiscard]] std::string_view name() const override { return "hw.gate"; }

 protected:
  Joules measure(Unit& unit, const TransitionRequest& req) override;
  Joules measure_flush(Unit& unit, cfsm::CfsmId task, const BatchEntry& entry,
                       std::uint64_t* gate_cycles) override;
  bool measure_flush_packed(Unit& unit, cfsm::CfsmId task,
                            std::span<const BatchEntry> entries,
                            std::vector<Joules>* energies,
                            std::uint64_t* gate_cycles) override;
};

}  // namespace socpower::core
