#include "core/estimators/hw_estimator.hpp"

#include <cassert>
#include <chrono>

#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace socpower::core {

hw::ReactionCacheConfig HwEstimatorBase::reaction_cache_config() const {
  hw::ReactionCacheConfig rc;
  rc.enabled = config_->hw_reaction_cache;
  rc.max_entries = config_->hw_reaction_cache_max_entries;
  rc.telemetry_prefix = "estimator." + std::string(name()) + ".rcache";
  return rc;
}

void HwEstimatorBase::prepare(const EstimatorContext& ctx) {
  net_ = ctx.network;
  config_ = ctx.config;
  path_tables_ = ctx.path_tables;
  components_ = ctx.components;
  units_.resize(net_->cfsm_count());
  for (const cfsm::CfsmId task : components_) {
    auto u = std::make_unique<Unit>();
    u->image = hwsyn::synthesize_cfsm(net_->cfsm(task));
    u->sim = std::make_unique<hw::GateSim>(u->image.netlist.get(),
                                           hw::TechParams::generic_250nm(),
                                           config_->electrical);
    u->rcache = std::make_unique<hw::ReactionCache>(u->sim.get(),
                                                    reaction_cache_config());
    units_[static_cast<std::size_t>(task)] = std::move(u);
  }
}

void HwEstimatorBase::begin_run() {
  for (const cfsm::CfsmId task : components_) {
    Unit& u = unit(task);
    u.sim->reset();
    // Per-run knobs may have changed between runs; the table itself
    // survives unless they did (warm-start hits across runs are the point).
    u.rcache->configure(reaction_cache_config());
    u.registers_dirty = false;
    u.batch.clear();
  }
  gate_cycles_ = 0;
}

TransitionCost HwEstimatorBase::cost(const TransitionRequest& req) {
  sync_overhead(config_->sync_spin);
  const Joules e = measure(unit(req.task), req);
  return {static_cast<double>(config_->hw_reaction_cycles), e, true};
}

void HwEstimatorBase::flush(std::vector<FlushJob>& jobs) {
  for (const cfsm::CfsmId task : components_) {
    Unit* u = &unit(task);
    if (u->batch.empty()) continue;
    jobs.push_back({task, [this, u, task] { return run_flush(*u, task); }});
  }
}

ComponentEstimator::FlushResult HwEstimatorBase::run_flush(Unit& u,
                                                           cfsm::CfsmId task) {
  static telemetry::HistogramStat& batch_size =
      telemetry::registry().histogram("coest.hw_batch_size", 0.0, 1e6, 32);
  static telemetry::HistogramStat& flush_ms =
      telemetry::registry().histogram("coest.hw_flush_ms", 0.0, 1e4, 32);
  FlushResult out;
  const bool telem = telemetry::enabled();
  const auto flush0 = telem ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
  SOCPOWER_TRACE_SPAN("coest.hw_flush_unit", 0,
                      static_cast<std::uint64_t>(task));
  batch_size.observe(static_cast<double>(u.batch.size()));
  out.entries.reserve(u.batch.size());
  sync_overhead(config_->sync_spin);  // one batch hand-off per component
  u.sim->reset();
  for (const BatchEntry& entry : u.batch) {
    if (entry.path == cfsm::kNoPath) {
      u.sim->reset();
      continue;
    }
    const Joules energy = measure_flush(u, task, entry, &out.gate_cycles);
    out.entries.push_back({entry.time, entry.path, energy});
  }
  u.batch.clear();
  if (telem)
    flush_ms.observe(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - flush0)
                         .count());
  return out;
}

void HwEstimatorBase::stats(RunResults& res) const {
  res.gate_sim_cycles += gate_cycles_;
}

const hwsyn::HwImage* HwEstimatorBase::image(cfsm::CfsmId task) const {
  const auto& u = units_.at(static_cast<std::size_t>(task));
  return u ? &u->image : nullptr;
}

void HwEstimatorBase::resync_if_dirty(cfsm::CfsmId task,
                                      const cfsm::CfsmState& state) {
  Unit& u = unit(task);
  if (!u.registers_dirty) return;
  hwsyn::sync_hw_vars(*u.sim, u.image, state);
  u.registers_dirty = false;
}

void HwEstimatorBase::mark_skipped(cfsm::CfsmId task, bool skipped) {
  unit(task).registers_dirty = skipped;
}

void HwEstimatorBase::reset_unit(cfsm::CfsmId task) { unit(task).sim->reset(); }

void HwEstimatorBase::enqueue(cfsm::CfsmId task, sim::SimTime time,
                              const cfsm::ReactionInputs& inputs,
                              cfsm::PathId path) {
  unit(task).batch.push_back({time, inputs, path});
}

void HwEstimatorBase::separate_reset(cfsm::CfsmId task) {
  unit(task).sim->reset();
}

Joules HwEstimatorBase::separate_step(cfsm::CfsmId task,
                                      const cfsm::ReactionInputs& inputs) {
  // The Section 2 baseline replays the captured trace through the gate
  // simulator for every hardware unit, whatever its co-estimation kind.
  Unit& u = unit(task);
  hwsyn::stage_hw_reaction(*u.sim, u.image, inputs);
  const Joules e = step_unit(u).energy;
  ++gate_cycles_;
  return e;
}

hw::ReactionCacheStats HwEstimatorBase::reaction_cache_stats() const {
  hw::ReactionCacheStats sum;
  for (const cfsm::CfsmId task : components_) {
    const auto& u = units_[static_cast<std::size_t>(task)];
    if (!u || !u->rcache) continue;
    const hw::ReactionCacheStats& s = u->rcache->stats();
    sum.hits += s.hits;
    sum.misses += s.misses;
    sum.bypassed += s.bypassed;
    sum.insertions += s.insertions;
    sum.capacity_clears += s.capacity_clears;
    sum.evicted_entries += s.evicted_entries;
    sum.invalidations += s.invalidations;
    sum.skipped_gate_evals += s.skipped_gate_evals;
  }
  return sum;
}

}  // namespace socpower::core
