#include "core/estimators/hw_estimator.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace socpower::core {

hw::ReactionCacheConfig HwEstimatorBase::reaction_cache_config() const {
  hw::ReactionCacheConfig rc;
  rc.enabled = config_->hw_reaction_cache;
  rc.max_entries = config_->hw_reaction_cache_max_entries;
  rc.telemetry_prefix = "estimator." + std::string(name()) + ".rcache";
  return rc;
}

void HwEstimatorBase::build_packed_dff_table(Unit& u) const {
  // The packed flush seeds every flip-flop lane from the behavioral
  // pre-state, so it needs each (variable, bit) -> dffs() index — and it
  // needs the variable registers to account for EVERY flip-flop, else some
  // register lane would go unseeded. The synthesized FSMDs satisfy this by
  // construction (all state is variable registers); anything else leaves the
  // table empty, which marks the unit not packed-capable.
  const hw::Netlist& nl = *u.image.netlist;
  std::size_t mapped = 0;
  std::vector<std::vector<std::int32_t>> table(u.image.var_regs.size());
  for (std::size_t v = 0; v < u.image.var_regs.size(); ++v) {
    const auto& q_word = u.image.var_regs[v];
    table[v].reserve(q_word.size());
    for (const hw::NetId q : q_word) {
      const int fi = nl.dff_index_of(q);
      if (fi < 0) return;  // var bit not a register output: not capable
      table[v].push_back(fi);
      ++mapped;
    }
  }
  if (mapped != nl.dff_count()) return;  // unmapped registers: not capable
  u.packed_dff_of = std::move(table);
}

void HwEstimatorBase::prepare(const EstimatorContext& ctx) {
  net_ = ctx.network;
  config_ = ctx.config;
  path_tables_ = ctx.path_tables;
  components_ = ctx.components;
  units_.resize(net_->cfsm_count());
  for (const cfsm::CfsmId task : components_) {
    auto u = std::make_unique<Unit>();
    u->image = hwsyn::synthesize_cfsm(net_->cfsm(task));
    u->sim = std::make_unique<hw::GateSim>(u->image.netlist.get(),
                                           hw::TechParams::generic_250nm(),
                                           config_->electrical);
    u->rcache = std::make_unique<hw::ReactionCache>(u->sim.get(),
                                                    reaction_cache_config());
    build_packed_dff_table(*u);
    units_[static_cast<std::size_t>(task)] = std::move(u);
  }
  const std::string prefix = "estimator." + std::string(name()) + ".packed.";
  packed_steps_telem_ = &telemetry::registry().counter(prefix + "steps");
  packed_lanes_telem_ = &telemetry::registry().counter(prefix + "lanes");
  packed_fallbacks_telem_ =
      &telemetry::registry().counter(prefix + "scalar_fallbacks");
}

void HwEstimatorBase::begin_run() {
  for (const cfsm::CfsmId task : components_) {
    Unit& u = unit(task);
    u.sim->reset();
    // Per-run knobs may have changed between runs; the table itself
    // survives unless they did (warm-start hits across runs are the point).
    u.rcache->configure(reaction_cache_config());
    u.registers_dirty = false;
    u.batch.clear();
  }
  gate_cycles_ = 0;
}

TransitionCost HwEstimatorBase::cost(const TransitionRequest& req) {
  sync_overhead(config_->sync_spin);
  const Joules e = measure(unit(req.task), req);
  return {static_cast<double>(config_->hw_reaction_cycles), e, true};
}

void HwEstimatorBase::flush(std::vector<FlushJob>& jobs) {
  for (const cfsm::CfsmId task : components_) {
    Unit* u = &unit(task);
    if (u->batch.empty()) continue;
    jobs.push_back({task, [this, u, task] { return run_flush(*u, task); }});
  }
}

ComponentEstimator::FlushResult HwEstimatorBase::run_flush(Unit& u,
                                                           cfsm::CfsmId task) {
  static telemetry::HistogramStat& batch_size =
      telemetry::registry().histogram("coest.hw_batch_size", 0.0, 1e6, 32);
  static telemetry::HistogramStat& flush_ms =
      telemetry::registry().histogram("coest.hw_flush_ms", 0.0, 1e4, 32);
  FlushResult out;
  const bool telem = telemetry::enabled();
  const auto flush0 = telem ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
  SOCPOWER_TRACE_SPAN("coest.hw_flush_unit", 0,
                      static_cast<std::uint64_t>(task));
  batch_size.observe(static_cast<double>(u.batch.size()));
  out = drain_into(u, task, /*first=*/true);
  if (telem)
    flush_ms.observe(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - flush0)
                         .count());
  return out;
}

ComponentEstimator::FlushResult HwEstimatorBase::drain_batch(cfsm::CfsmId task,
                                                             bool first) {
  return drain_into(unit(task), task, first);
}

ComponentEstimator::FlushResult HwEstimatorBase::drain_into(Unit& u,
                                                            cfsm::CfsmId task,
                                                            bool first) {
  FlushResult out;
  out.entries.reserve(u.batch.size());
  if (first) {
    sync_overhead(config_->sync_spin);  // one batch hand-off per component
    u.sim->reset();
  }
  // Bit-parallel replay prices up to hw_packed_lanes consecutive non-reset
  // vectors per gate-simulator pass. The reaction cache keeps the scalar
  // path (its replayed hits beat packed evaluation, and a packed pass
  // de-anchors it); groups the backend declines — too short, unit not
  // packed-capable, or seed verification failed — fall back to the scalar
  // per-entry loop, counted as estimator.<name>.packed.scalar_fallbacks.
  // Either way each entry's energy lands in out.entries in entry order, so
  // the master's component-order merge (and therefore every downstream
  // summation) is untouched.
  const bool bit_parallel =
      config_->hw_bit_parallel && !(u.rcache && u.rcache->enabled());
  const unsigned lanes =
      std::clamp(config_->hw_packed_lanes, 1u, hw::GateSim::kMaxLanes);
  std::vector<Joules> energies;
  std::size_t i = 0;
  while (i < u.batch.size()) {
    const BatchEntry& entry = u.batch[i];
    if (entry.path == cfsm::kNoPath) {
      u.sim->reset();
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    if (bit_parallel)
      while (j < u.batch.size() && j - i < lanes &&
             u.batch[j].path != cfsm::kNoPath)
        ++j;
    const std::span<const BatchEntry> group(&u.batch[i], j - i);
    energies.clear();
    if (bit_parallel && measure_flush_packed(u, task, group, &energies,
                                             &out.gate_cycles)) {
      assert(energies.size() == group.size());
      packed_steps_telem_->add();
      packed_lanes_telem_->add(group.size());
      for (std::size_t k = 0; k < group.size(); ++k)
        out.entries.push_back({group[k].time, group[k].path, energies[k]});
    } else {
      if (bit_parallel) packed_fallbacks_telem_->add(group.size());
      for (const BatchEntry& e : group) {
        const Joules energy = measure_flush(u, task, e, &out.gate_cycles);
        out.entries.push_back({e.time, e.path, energy});
      }
    }
    i = j;
  }
  u.batch.clear();
  return out;
}

void HwEstimatorBase::stats(RunResults& res) const {
  res.gate_sim_cycles += gate_cycles_;
}

const hwsyn::HwImage* HwEstimatorBase::image(cfsm::CfsmId task) const {
  const auto& u = units_.at(static_cast<std::size_t>(task));
  return u ? &u->image : nullptr;
}

void HwEstimatorBase::resync_if_dirty(cfsm::CfsmId task,
                                      const cfsm::CfsmState& state) {
  Unit& u = unit(task);
  if (!u.registers_dirty) return;
  hwsyn::sync_hw_vars(*u.sim, u.image, state);
  u.registers_dirty = false;
}

void HwEstimatorBase::mark_skipped(cfsm::CfsmId task, bool skipped) {
  unit(task).registers_dirty = skipped;
}

void HwEstimatorBase::reset_unit(cfsm::CfsmId task) { unit(task).sim->reset(); }

void HwEstimatorBase::enqueue(cfsm::CfsmId task, sim::SimTime time,
                              const cfsm::ReactionInputs& inputs,
                              cfsm::PathId path,
                              const cfsm::CfsmState& pre_state) {
  unit(task).batch.push_back({time, inputs, path, pre_state});
}

void HwEstimatorBase::separate_reset(cfsm::CfsmId task) {
  unit(task).sim->reset();
}

Joules HwEstimatorBase::separate_step(cfsm::CfsmId task,
                                      const cfsm::ReactionInputs& inputs) {
  // The Section 2 baseline replays the captured trace through the gate
  // simulator for every hardware unit, whatever its co-estimation kind.
  Unit& u = unit(task);
  hwsyn::stage_hw_reaction(*u.sim, u.image, inputs);
  const Joules e = step_unit(u).energy;
  ++gate_cycles_;
  return e;
}

hw::ReactionCacheStats HwEstimatorBase::reaction_cache_stats() const {
  hw::ReactionCacheStats sum;
  for (const cfsm::CfsmId task : components_) {
    const auto& u = units_[static_cast<std::size_t>(task)];
    if (!u || !u->rcache) continue;
    const hw::ReactionCacheStats& s = u->rcache->stats();
    sum.hits += s.hits;
    sum.misses += s.misses;
    sum.bypassed += s.bypassed;
    sum.insertions += s.insertions;
    sum.capacity_clears += s.capacity_clears;
    sum.evicted_entries += s.evicted_entries;
    sum.invalidations += s.invalidations;
    sum.skipped_gate_evals += s.skipped_gate_evals;
  }
  return sum;
}

BackendWarmState HwEstimatorBase::export_warm_state() const {
  BackendWarmState state;
  for (const cfsm::CfsmId task : components_) {
    const auto& u = units_[static_cast<std::size_t>(task)];
    if (!u || !u->rcache) continue;
    BackendWarmState::UnitReactions ur;
    ur.task = task;
    ur.entries = u->rcache->export_entries();
    state.reactions.push_back(std::move(ur));
  }
  return state;
}

void HwEstimatorBase::import_warm_state(const BackendWarmState& state) {
  for (const BackendWarmState::UnitReactions& ur : state.reactions) {
    const auto idx = static_cast<std::size_t>(ur.task);
    if (idx >= units_.size() || !units_[idx] || !units_[idx]->rcache) continue;
    units_[idx]->rcache->import_entries(ur.entries);
  }
}

ComponentEstimator::WarmCacheCounters HwEstimatorBase::warm_cache_counters()
    const {
  const hw::ReactionCacheStats s = reaction_cache_stats();
  return WarmCacheCounters{s.hits, s.misses};
}

}  // namespace socpower::core
