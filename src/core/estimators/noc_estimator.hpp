// Routed-mesh interconnect estimator ("bus.noc"): the NoC counterpart of
// BusEstimator. The master selects it through CoEstimatorConfig::
// interconnect = kNoc and schedules it exactly like the arbitrated bus —
// submit transfers, advance to boundaries, collect completions — while the
// underlying NocModel routes packets XY across the mesh and bills per-link
// switching energy. Per-link flit/toggle/energy telemetry is published
// under "estimator.bus.noc.link.<from>-><to>.*" at end of run.
#pragma once

#include <memory>

#include "bus/noc_model.hpp"
#include "core/estimators/component_estimator.hpp"

namespace socpower::core {

class NocEstimator final : public BusBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "bus.noc"; }

  void prepare(const EstimatorContext& ctx) override;
  void begin_run() override;
  TransitionCost cost(const TransitionRequest&) override;
  void flush(std::vector<FlushJob>&) override {}  // nothing deferred
  void stats(RunResults& res) const override;
  [[nodiscard]] std::vector<cfsm::CfsmId> component_ids() const override {
    return {};  // resource backend: prices transfers, not processes
  }

  bus::BusScheduler::JobId submit(sim::SimTime now,
                                  bus::BusRequest request) override;
  [[nodiscard]] bool has_work() const override;
  [[nodiscard]] sim::SimTime next_boundary() const override;
  std::vector<bus::BusScheduler::Completion> advance(sim::SimTime t) override;
  /// The arbitrated-bus scheduler does not exist behind the NoC backend.
  [[nodiscard]] const bus::BusScheduler& scheduler() const override;
  [[nodiscard]] const bus::Interconnect& interconnect() const override {
    return *noc_;
  }

  /// The mesh model of the current run (per-link stats, routing; for tests
  /// and the contention bench).
  [[nodiscard]] const bus::NocModel& noc() const { return *noc_; }

 private:
  const CoEstimatorConfig* config_ = nullptr;
  std::unique_ptr<bus::NocModel> noc_;
};

}  // namespace socpower::core
