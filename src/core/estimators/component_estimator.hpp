// The component-power-estimator interface of the paper's Figure 2(b).
//
// The simulation master (core::CoSimMaster) owns only discrete-event
// scheduling: the event queue, value latching, RTOS serialization, the
// pending-software and bus-wait bookkeeping, and the acceleration policy
// (energy cache / macro-model / sampling). Everything that actually *prices*
// a component — the ISS, the gate-level and RT-level hardware simulators,
// the instruction cache, the bus arbiter — lives behind ComponentEstimator,
// so backends can be swapped per accuracy/speed point (or replaced by an
// emulated/remote implementation) without touching the scheduler.
//
// Lifecycle, driven by the master:
//   create (EstimatorRegistry, by name from EstimatorSelection)
//   -> prepare(ctx)   build the lower-level simulators for the assigned
//                     processes (compile SW, synthesize netlists, ...)
//   -> per run:  begin_run()         reset per-run simulator state
//                cost()/role calls   price transitions as scheduled
//                flush(jobs)         contribute deferred batch work
//                stats(res)          report per-backend counters
//
// Determinism contract: a backend must be a pure function of the request
// stream — no wall clock, no global mutable state — so that co-estimation
// results stay bit-identical run to run and across thread counts. Flush
// jobs in particular are executed on a worker pool and must not touch
// shared state; their results are merged by the master in component order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "bus/bus_model.hpp"
#include "bus/interconnect.hpp"
#include "cache/cache_sim.hpp"
#include "cache/coherence.hpp"
#include "cfsm/cfsm.hpp"
#include "core/coestimator_config.hpp"
#include "hw/analytical.hpp"
#include "hw/reaction_cache.hpp"
#include "hwsyn/synth.hpp"
#include "swsyn/codegen.hpp"

namespace socpower::core {

/// Measured (or estimated) price of one CFSM transition.
struct TransitionCost {
  double cycles = 0.0;
  Joules energy = 0.0;
  bool simulated = true;  // false when served by an acceleration shortcut
};

/// Everything a backend may inspect while pricing one transition. Pointers
/// refer to master-owned state valid for the duration of the call.
struct TransitionRequest {
  cfsm::CfsmId task = cfsm::kNoCfsm;
  cfsm::PathId path = cfsm::kNoPath;
  sim::SimTime now = 0;
  const cfsm::ReactionInputs* inputs = nullptr;
  /// Process state before the transition (staging / verification).
  const cfsm::CfsmState* pre_state = nullptr;
  /// The behavioral (golden) reaction being priced.
  const cfsm::Reaction* reaction = nullptr;
  /// Process state after the behavioral reaction (verify_lowlevel).
  const cfsm::CfsmState* post_state = nullptr;
};

/// What the master hands a backend at prepare() time. The pointers outlive
/// the backend (they are owned by the facade/master).
struct EstimatorContext {
  const cfsm::Network* network = nullptr;
  const CoEstimatorConfig* config = nullptr;
  /// CFSM processes assigned to this backend (empty for resource backends
  /// such as the bus and the cache).
  std::vector<cfsm::CfsmId> components;
  /// Master-owned per-process path tables (stable storage; flush jobs read
  /// them concurrently, so they must not be mutated during a flush).
  const std::vector<cfsm::PathTable>* path_tables = nullptr;
};

/// Warm, run-independent state one backend can hand to the serve layer's
/// checkpoint writer and accept back after a restore: the caches that make
/// a backend's Nth run cheaper than its first, in a transport-neutral form
/// (plain structs — the wire/disk encoding lives in serve/, not here).
/// Importing never changes results, only hit rates: block entries re-decode
/// deterministically and reaction entries are content-keyed bit-exact
/// replays.
struct BackendWarmState {
  /// Entry PCs of pre-decoded ISS blocks (SW backends).
  std::vector<std::uint32_t> block_entries;
  /// Memoized gate-level reaction tables, one per owned hardware unit.
  struct UnitReactions {
    cfsm::CfsmId task = cfsm::kNoCfsm;
    std::vector<hw::ExportedReaction> entries;
  };
  std::vector<UnitReactions> reactions;
  /// Calibrated analytical coefficients (hw.analytical backends; empty for
  /// everyone else). Importing marks the covered units fitted, so a warm
  /// session never replays the gate-level calibration prefix.
  hw::AnalyticalModel analytical;
};

class ComponentEstimator {
 public:
  /// One deferred-batch replay result row (timestamp attribution happens in
  /// the master, in component order, so flushes parallelize bit-identically).
  struct FlushEntry {
    sim::SimTime time = 0;
    cfsm::PathId path = cfsm::kNoPath;
    Joules energy = 0.0;
  };
  struct FlushResult {
    std::vector<FlushEntry> entries;
    std::uint64_t gate_cycles = 0;
  };
  /// A unit of deferred work: `work` runs on a pool worker (thread-safe by
  /// construction: it may only touch the one unit it closes over), keyed by
  /// the component it prices so the master can merge in component order.
  struct FlushJob {
    cfsm::CfsmId component = cfsm::kNoCfsm;
    std::function<FlushResult()> work;
  };

  virtual ~ComponentEstimator() = default;

  /// Registry name this backend was created under (telemetry namespace:
  /// counters live under "estimator.<name>.*").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Build the lower-level simulators for ctx.components.
  virtual void prepare(const EstimatorContext& ctx) = 0;

  /// Reset per-run simulator state (called by the master at the start of
  /// every run; per-run config knobs are re-read here).
  virtual void begin_run() = 0;

  /// Invoke the lower-level estimator for one transition. The acceleration
  /// policy is the master's: when a transition is served from the energy
  /// cache or the macro-model this is simply never called.
  virtual TransitionCost cost(const TransitionRequest& req) = 0;

  /// Append this backend's deferred batch work (one job per component with
  /// pending vectors). Backends with no deferred work append nothing.
  virtual void flush(std::vector<FlushJob>& jobs) = 0;

  /// Contribute per-backend counters to the run results.
  virtual void stats(RunResults& res) const = 0;

  /// CFSM processes this backend prices (resource backends return {}).
  [[nodiscard]] virtual std::vector<cfsm::CfsmId> component_ids() const = 0;

  // -- checkpoint/restore ----------------------------------------------------
  /// Warm cache state worth carrying across processes; backends with none
  /// (bus, cache) return the empty default.
  [[nodiscard]] virtual BackendWarmState export_warm_state() const {
    return {};
  }
  /// Install previously exported warm state into a freshly prepared backend
  /// of the same structural config. Unknown tasks/entries are ignored.
  virtual void import_warm_state(const BackendWarmState& /*state*/) {}

  /// Cumulative hit/fill counters of this backend's internal warm caches
  /// (ISS block cache, per-unit reaction caches) since prepare(). The serve
  /// layer reports the per-request delta, which is what makes warm-vs-cold
  /// hit rates observable per estimation request.
  struct WarmCacheCounters {
    std::uint64_t hits = 0;
    std::uint64_t fills = 0;  ///< decodes / misses (cache-populating work)
  };
  [[nodiscard]] virtual WarmCacheCounters warm_cache_counters() const {
    return {};
  }
};

// ---- role refinements ------------------------------------------------------
//
// The master needs a handful of role-specific entry points beyond the common
// interface (the software backend stages register state, the bus backend is
// part of the scheduler's timebase, ...). A backend registered for a role
// must derive from that role's refinement; the master downcasts once at
// prepare() and rejects a backend that does not implement its role.

class SwBackend : public ComponentEstimator {
 public:
  /// Compiled image of an owned software process (nullptr when not owned).
  [[nodiscard]] virtual const swsyn::SwImage* image(cfsm::CfsmId task) const = 0;
  /// Trace-replay measurement for the Section 2 separate baseline: one
  /// lower-level invocation, no sync overhead, no cross-verification.
  virtual Joules replay(cfsm::CfsmId task, const cfsm::ReactionInputs& inputs,
                        const cfsm::CfsmState& pre_state) = 0;
};

class HwBackend : public ComponentEstimator {
 public:
  [[nodiscard]] virtual const hwsyn::HwImage* image(cfsm::CfsmId task) const = 0;
  /// Resynchronize the netlist registers with the behavioral state if the
  /// unit skipped simulations (served from the cache) since the last sync.
  virtual void resync_if_dirty(cfsm::CfsmId task,
                               const cfsm::CfsmState& state) = 0;
  /// Record whether the last transition of `task` was served without the
  /// simulator (its register state is then stale).
  virtual void mark_skipped(cfsm::CfsmId task, bool skipped) = 0;
  /// Reset transition observed while online: re-initialize the netlist.
  virtual void reset_unit(cfsm::CfsmId task) = 0;
  /// Batch mode: buffer the input vector for the offline flush. `pre_state`
  /// is the behavioral process state before the reaction — the bit-parallel
  /// flush seeds each packed lane's register state from it (and verifies the
  /// seeds against the netlist's own next-state chain before trusting them).
  virtual void enqueue(cfsm::CfsmId task, sim::SimTime time,
                       const cfsm::ReactionInputs& inputs, cfsm::PathId path,
                       const cfsm::CfsmState& pre_state) = 0;
  /// Separate-estimation baseline: reset / step the unit's own simulator on
  /// a captured trace (always gate-level, as the Section 2 flow replays the
  /// netlist directly).
  virtual void separate_reset(cfsm::CfsmId task) = 0;
  virtual Joules separate_step(cfsm::CfsmId task,
                               const cfsm::ReactionInputs& inputs) = 0;
};

class CacheBackend : public ComponentEstimator {
 public:
  /// Run one reference stream through the cache model.
  virtual cache::AccessStats access(
      std::span<const std::uint32_t> addresses) = 0;
  /// Per-core instruction-cache access (multicore masters); the default
  /// forwards to the single shared cache, which is the core-0 path.
  virtual cache::AccessStats access_core(
      unsigned /*core*/, std::span<const std::uint32_t> addresses) {
    return access(addresses);
  }
  /// Coherent shared-data access (multicore): run one access of `bytes`
  /// bytes through the private-L1 MSI model. `core` < 0 is an uncached
  /// agent (hardware DMA master). Backends without a coherence model return
  /// the empty result — no penalty, no energy, no traffic.
  virtual cache::CoherentAccessResult data_access(int /*core*/,
                                                  bool /*write*/,
                                                  std::uint32_t /*addr*/,
                                                  std::uint32_t /*bytes*/) {
    return {};
  }
};

class BusBackend : public ComponentEstimator {
 public:
  virtual bus::BusScheduler::JobId submit(sim::SimTime now,
                                          bus::BusRequest request) = 0;
  [[nodiscard]] virtual bool has_work() const = 0;
  [[nodiscard]] virtual sim::SimTime next_boundary() const = 0;
  virtual std::vector<bus::BusScheduler::Completion> advance(
      sim::SimTime t) = 0;
  /// Underlying scheduler (read-only introspection: grant times, params).
  /// Only meaningful for the arbitrated-bus backend; a routed-interconnect
  /// backend aborts here — use interconnect() for implementation-neutral
  /// introspection.
  [[nodiscard]] virtual const bus::BusScheduler& scheduler() const = 0;
  /// The interconnect behind this backend (bus or NoC).
  [[nodiscard]] virtual const bus::Interconnect& interconnect() const {
    return scheduler();
  }
};

/// Deterministic busy-work standing in for the IPC round-trip the paper's
/// multi-process setup pays per lower-level simulator invocation.
void sync_overhead(unsigned spins);

}  // namespace socpower::core
