#include "core/estimators/hw_analytical_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/registry.hpp"

namespace socpower::core {

void HwAnalyticalEstimator::prepare(const EstimatorContext& ctx) {
  HwEstimatorBase::prepare(ctx);
  calib_.clear();
  calib_.resize(units_.size());
  const std::string prefix = "estimator." + std::string(name()) + ".";
  reactions_telem_ = &telemetry::registry().counter(prefix + "reactions");
  calib_telem_ = &telemetry::registry().counter(prefix + "calib_vectors");
  leakage_telem_ = &telemetry::registry().counter(prefix + "leakage_nj");
}

void HwAnalyticalEstimator::begin_run() {
  HwEstimatorBase::begin_run();
  calib_target_ = std::max(1u, config_->hw_analytical_calibration_vectors);
  const hw::AnalyticalLeakageParams lp{config_->hw_leakage_nw_per_gate,
                                       config_->hw_temperature_k,
                                       config_->hw_channel_length_nm};
  for (const cfsm::CfsmId task : components_) {
    UnitCalib& c = calib_[static_cast<std::size_t>(task)];
    c.tracker.reset();
    c.leakage_watts = hw::analytical_leakage_watts(
        unit(task).image.netlist->gate_count(), lp);
    c.leak_per_reaction =
        c.leakage_watts * config_->electrical.seconds(
                              static_cast<double>(config_->hw_reaction_cycles));
    c.run_leakage = 0.0;
    // Keep the exported model's static power current with this run's knobs.
    if (c.fitted) c.model.leakage_watts = c.leakage_watts;
  }
}

Joules HwAnalyticalEstimator::price(Unit& unit, cfsm::CfsmId task,
                                    const cfsm::ReactionInputs& inputs,
                                    const cfsm::CfsmState& pre,
                                    std::uint64_t* gate_cycles) {
  UnitCalib& c = calib_[static_cast<std::size_t>(task)];
  const hw::ReactionActivity act =
      c.tracker.observe(unit.image.local_inputs, inputs, pre);
  Joules e;
  if (c.fitted) {
    e = c.model.predict(act);
    reactions_telem_->add();
  } else {
    // Calibration phase: the gate simulator is the ground truth, and its
    // exact energy is also what this reaction reports — the analytical
    // approximation only ever replaces reactions *after* the fit.
    hwsyn::stage_hw_reaction(*unit.sim, unit.image, inputs);
    e = step_unit(unit).energy;
    ++*gate_cycles;
    c.acc.add(act, e);
    calib_telem_->add();
    if (c.acc.count() >= calib_target_) {
      c.model = c.acc.fit(task);
      c.model.leakage_watts = c.leakage_watts;
      c.fitted = true;
    }
  }
  c.run_leakage += c.leak_per_reaction;
  return e + c.leak_per_reaction;
}

Joules HwAnalyticalEstimator::measure(Unit& unit, const TransitionRequest& req) {
  return price(unit, req.task, *req.inputs, *req.pre_state, &gate_cycles_);
}

Joules HwAnalyticalEstimator::measure_flush(Unit& unit, cfsm::CfsmId task,
                                            const BatchEntry& entry,
                                            std::uint64_t* gate_cycles) {
  return price(unit, task, entry.inputs, entry.pre, gate_cycles);
}

void HwAnalyticalEstimator::stats(RunResults& res) const {
  HwEstimatorBase::stats(res);
  if (res.process_leakage.size() < units_.size())
    res.process_leakage.resize(units_.size(), 0.0);
  Joules total = 0.0;
  for (const cfsm::CfsmId task : components_) {
    const UnitCalib& c = calib_[static_cast<std::size_t>(task)];
    res.process_leakage[static_cast<std::size_t>(task)] += c.run_leakage;
    total += c.run_leakage;
  }
  res.leakage_energy += total;
  if (total > 0.0) leakage_telem_->add(std::llround(total * 1e9));
}

hw::AnalyticalModel HwAnalyticalEstimator::model() const {
  hw::AnalyticalModel m;
  for (const cfsm::CfsmId task : components_) {
    const UnitCalib& c = calib_[static_cast<std::size_t>(task)];
    if (c.fitted)
      m.units.push_back(c.model);
    else if (c.acc.count() > 0)
      m.pending.push_back({task, c.acc.raw()});
  }
  std::sort(m.units.begin(), m.units.end(),
            [](const hw::AnalyticalUnitModel& a,
               const hw::AnalyticalUnitModel& b) { return a.task < b.task; });
  std::sort(m.pending.begin(), m.pending.end(),
            [](const hw::AnalyticalCalibrationState& a,
               const hw::AnalyticalCalibrationState& b) {
              return a.task < b.task;
            });
  return m;
}

void HwAnalyticalEstimator::set_model(const hw::AnalyticalModel& model) {
  auto owned = [&](cfsm::CfsmId task) {
    const auto idx = static_cast<std::size_t>(task);
    return task >= 0 && idx < units_.size() && units_[idx] != nullptr;
  };
  for (const hw::AnalyticalUnitModel& um : model.units) {
    if (!owned(um.task)) continue;
    UnitCalib& c = calib_[static_cast<std::size_t>(um.task)];
    c.model = um;
    c.fitted = true;
  }
  // Mid-calibration units resume their sample stream where the donor
  // stopped — a restored session stays bit-identical to the uninterrupted
  // one even when no unit has fitted yet.
  for (const hw::AnalyticalCalibrationState& cs : model.pending) {
    if (!owned(cs.task)) continue;
    UnitCalib& c = calib_[static_cast<std::size_t>(cs.task)];
    if (c.fitted) continue;
    c.acc = hw::CalibrationAccumulator::from_raw(cs.moments);
  }
}

BackendWarmState HwAnalyticalEstimator::export_warm_state() const {
  BackendWarmState state = HwEstimatorBase::export_warm_state();
  state.analytical = model();
  return state;
}

void HwAnalyticalEstimator::import_warm_state(const BackendWarmState& state) {
  HwEstimatorBase::import_warm_state(state);
  set_model(state.analytical);
}

}  // namespace socpower::core
