#include "core/estimators/registry.hpp"

#include "core/estimators/bus_estimator.hpp"
#include "core/estimators/cache_estimator.hpp"
#include "core/estimators/hw_analytical_estimator.hpp"
#include "core/estimators/hw_gate_estimator.hpp"
#include "core/estimators/hw_rtl_estimator.hpp"
#include "core/estimators/noc_estimator.hpp"
#include "core/estimators/sw_iss_estimator.hpp"
#include "dist/remote_hw_estimator.hpp"

namespace socpower::core {

void EstimatorRegistry::register_backend(std::string name, Factory factory) {
  std::lock_guard<std::mutex> lk(mu_);
  factories_[std::move(name)] = std::move(factory);
}

bool EstimatorRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return factories_.count(name) != 0;
}

std::unique_ptr<ComponentEstimator> EstimatorRegistry::create(
    const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) return nullptr;
    factory = it->second;
  }
  return factory();
}

std::vector<std::string> EstimatorRegistry::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

std::string EstimatorRegistry::joined_names() const {
  std::string out;
  for (const auto& name : names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

EstimatorRegistry& estimator_registry() {
  // Leaked singleton: backends may be created during static destruction of
  // client code, and the registry must outlive every estimator instance.
  static EstimatorRegistry* reg = [] {
    auto* r = new EstimatorRegistry();
    r->register_backend("sw.iss",
                        [] { return std::make_unique<SwIssEstimator>(); });
    r->register_backend("hw.gate",
                        [] { return std::make_unique<HwGateEstimator>(); });
    r->register_backend("hw.rtl",
                        [] { return std::make_unique<HwRtlEstimator>(); });
    // Calibrated activity/leakage model — the fast tier for huge design-
    // space sweeps. Selected per role (estimators.hw_gate/hw_rtl =
    // "hw.analytical"); no ".remote" variant is registered, because the
    // whole backend is cheaper than the IPC round-trip would be.
    r->register_backend("hw.analytical", [] {
      return std::make_unique<HwAnalyticalEstimator>();
    });
    r->register_backend("cache.icache",
                        [] { return std::make_unique<CacheEstimator>(); });
    r->register_backend("bus.arbiter",
                        [] { return std::make_unique<BusEstimator>(); });
    r->register_backend("bus.noc",
                        [] { return std::make_unique<NocEstimator>(); });
    // Out-of-process deployments of the hardware backends (config knob
    // hw_remote selects them via the ".remote" suffix).
    r->register_backend("hw.gate.remote", [] {
      return std::make_unique<dist::RemoteHwEstimator>("hw.gate");
    });
    r->register_backend("hw.rtl.remote", [] {
      return std::make_unique<dist::RemoteHwEstimator>("hw.rtl");
    });
    return r;
  }();
  return *reg;
}

}  // namespace socpower::core
