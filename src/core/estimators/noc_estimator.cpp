#include "core/estimators/noc_estimator.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "telemetry/registry.hpp"

namespace socpower::core {

void NocEstimator::prepare(const EstimatorContext& ctx) {
  config_ = ctx.config;
}

void NocEstimator::begin_run() {
  noc_ = std::make_unique<bus::NocModel>(config_->noc);
}

TransitionCost NocEstimator::cost(const TransitionRequest&) {
  assert(false && "the NoC backend prices transfers, not transitions — use "
                  "submit()/advance()");
  return {};
}

bus::BusScheduler::JobId NocEstimator::submit(sim::SimTime now,
                                              bus::BusRequest request) {
  static telemetry::Counter& packets =
      telemetry::registry().counter("estimator.bus.noc.packets");
  packets.add();
  return noc_->submit(now, std::move(request));
}

bool NocEstimator::has_work() const { return noc_->has_work(); }

sim::SimTime NocEstimator::next_boundary() const {
  return noc_->next_boundary();
}

std::vector<bus::BusScheduler::Completion> NocEstimator::advance(
    sim::SimTime t) {
  return noc_->advance(t);
}

const bus::BusScheduler& NocEstimator::scheduler() const {
  std::fprintf(stderr,
               "NocEstimator: scheduler() requested, but the selected "
               "interconnect is the routed mesh — use interconnect() or "
               "noc() for introspection\n");
  std::abort();
}

void NocEstimator::stats(RunResults& res) const {
  res.bus_totals = noc_->totals();
  // Per-link telemetry: cumulative across runs, one counter per directed
  // link that carried traffic this run.
  for (const bus::NocModel::LinkStats& l : noc_->links()) {
    if (l.packets == 0) continue;
    const std::string base =
        "estimator.bus.noc.link." + bus::NocModel::link_name(l);
    telemetry::registry().counter(base + ".flits").add(l.flits);
    telemetry::registry().counter(base + ".toggles").add(l.toggles);
  }
}

}  // namespace socpower::core
