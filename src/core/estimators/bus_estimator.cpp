#include "core/estimators/bus_estimator.hpp"

#include <cassert>

#include "telemetry/registry.hpp"

namespace socpower::core {

void BusEstimator::prepare(const EstimatorContext& ctx) {
  config_ = ctx.config;
}

void BusEstimator::begin_run() {
  sched_ = std::make_unique<bus::BusScheduler>(config_->bus);
  sched_->set_keep_grant_times(config_->keep_power_samples);
}

TransitionCost BusEstimator::cost(const TransitionRequest&) {
  assert(false && "the bus backend prices transfers, not transitions — use "
                  "submit()/advance()");
  return {};
}

bus::BusScheduler::JobId BusEstimator::submit(sim::SimTime now,
                                              bus::BusRequest request) {
  static telemetry::Counter& transfers =
      telemetry::registry().counter("estimator.bus.arbiter.transfers");
  transfers.add();
  return sched_->submit(now, std::move(request));
}

bool BusEstimator::has_work() const { return sched_->has_work(); }

sim::SimTime BusEstimator::next_boundary() const {
  return sched_->next_boundary();
}

std::vector<bus::BusScheduler::Completion> BusEstimator::advance(
    sim::SimTime t) {
  return sched_->advance(t);
}

void BusEstimator::stats(RunResults& res) const {
  res.bus_totals = sched_->totals();
}

}  // namespace socpower::core
