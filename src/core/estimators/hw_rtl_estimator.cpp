#include "core/estimators/hw_rtl_estimator.hpp"

#include "telemetry/registry.hpp"

namespace socpower::core {

void HwRtlEstimator::prepare(const EstimatorContext& ctx) {
  HwEstimatorBase::prepare(ctx);
  // The netlist + gate simulator built by the base still back the reset /
  // register-resync / separate-baseline paths; only transition pricing is
  // RT-level.
  hwsyn::RtlPowerConfig rp;
  rp.electrical = config_->electrical;
  rtl_power_ = std::make_unique<hwsyn::RtlPowerEstimator>(rp);
}

Joules HwRtlEstimator::measure(Unit&, const TransitionRequest& req) {
  static telemetry::Counter& reactions =
      telemetry::registry().counter("estimator.hw.rtl.reactions");
  reactions.add();
  return rtl_power_->estimate_reaction(net_->cfsm(req.task),
                                       req.reaction->trace, *req.inputs);
}

Joules HwRtlEstimator::measure_flush(Unit&, cfsm::CfsmId task,
                                     const BatchEntry& entry,
                                     std::uint64_t*) {
  const cfsm::PathTable& paths =
      (*path_tables_)[static_cast<std::size_t>(task)];
  return rtl_power_->estimate_reaction(net_->cfsm(task), paths.path(entry.path),
                                       entry.inputs);
}

}  // namespace socpower::core
