// System inventory: what the co-estimator actually built for a network —
// per-process implementation artifacts (compiled code size and path counts
// for software; gate/flip-flop/net counts for hardware) and the estimator
// configuration. The "refined description of the various system components"
// the paper's compilation flow (Figure 2(a)) produces, summarized.
#pragma once

#include <string>

#include "core/coestimator.hpp"

namespace socpower::core {

struct ProcessInventory {
  std::string name;
  bool is_sw = false;
  // Software.
  std::uint32_t code_bytes = 0;
  std::size_t static_paths = 0;  // enumerable s-graph paths (capped)
  // Hardware.
  std::size_t gates = 0;
  std::size_t flops = 0;
  std::size_t nets = 0;
  // Common.
  std::size_t sgraph_nodes = 0;
  std::size_t variables = 0;
};

struct SystemInventory {
  std::vector<ProcessInventory> processes;
  std::size_t events = 0;
  [[nodiscard]] std::string render() const;
};

/// Collects the inventory; requires est.prepare() to have run.
[[nodiscard]] SystemInventory take_inventory(const cfsm::Network& network,
                                             const CoEstimator& estimator);

}  // namespace socpower::core
