// Energy and delay caching (paper Section 4.2, Figure 4(c)).
//
// During co-simulation a few computation paths execute a large number of
// times, and the energy/delay a lower-level simulator reports for a given
// path usually has low variance. The cache keys on (task, path), stores the
// running mean and variance of the reported cycles and energy, and serves
// the mean once a path has been simulated at least `thresh_iss_calls` times
// with observed variance below `thresh_variance`:
//
//   if (energy(task_id, path_id) in table && variance < thresh_variance
//       && num_iss_calls >= thresh_iss_calls)  use cached energy;
//   else                                       call the ISS; update stats;
//
// The same mechanism serves the hardware power simulator. For power models
// that do not depend on data values (the SPARClite instruction-level model)
// the cached values are exact; for data-dependent estimators (gate-level HW,
// DSP-style models) `thresh_variance` bounds the acceptable spread.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "cfsm/sgraph.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace socpower::core {

struct EnergyCacheConfig {
  /// Relative variance threshold: a path is served from the cache only when
  /// (stddev/mean)^2 of its observed energy falls below this. 0 admits only
  /// exactly-repeating paths (safe default; still a full win for
  /// data-independent models).
  double thresh_variance = 0.0;
  /// Minimum number of lower-level simulations before the cache may serve.
  std::size_t thresh_iss_calls = 3;
};

struct CachedCost {
  double cycles = 0.0;
  Joules energy = 0.0;
};

class EnergyCache {
 public:
  explicit EnergyCache(EnergyCacheConfig config = {});

  /// Cached cost if the (task, path) entry is eligible, else nullopt.
  [[nodiscard]] std::optional<CachedCost> lookup(cfsm::CfsmId task,
                                                 cfsm::PathId path) const;

  /// Running mean regardless of eligibility thresholds (does not count as a
  /// hit). Sampling mode extrapolates skipped transitions from this.
  [[nodiscard]] std::optional<CachedCost> mean(cfsm::CfsmId task,
                                               cfsm::PathId path) const;

  /// Record one lower-level simulation result for (task, path).
  void record(cfsm::CfsmId task, cfsm::PathId path, Cycles cycles,
              Joules energy);

  // -- statistics ------------------------------------------------------------
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t simulations() const { return simulations_; }
  [[nodiscard]] std::size_t entries() const { return table_.size(); }
  /// Observed energy statistics of one path (Figure 4(b) histogram support).
  [[nodiscard]] const RunningStats* energy_stats(cfsm::CfsmId task,
                                                 cfsm::PathId path) const;

  void clear();

  // -- checkpoint/restore ----------------------------------------------------
  /// One serialized (task, path) entry. The RunningStats travel raw so a
  /// restored cache reproduces eligibility decisions and served means bit
  /// for bit.
  struct ExportedEntry {
    cfsm::CfsmId task = cfsm::kNoCfsm;
    cfsm::PathId path = cfsm::kNoPath;
    RunningStats::Raw cycles;
    RunningStats::Raw energy;
  };
  /// All entries, sorted by (task, path) so checkpoint bytes are
  /// deterministic for a given cache state.
  [[nodiscard]] std::vector<ExportedEntry> export_entries() const;
  /// Replaces the table and the hit/simulation counters with the exported
  /// state (the exact inverse of export_entries + hits()/simulations()).
  void import_entries(const std::vector<ExportedEntry>& entries,
                      std::uint64_t hits, std::uint64_t simulations);

 private:
  struct Entry {
    RunningStats cycles;
    RunningStats energy;
  };
  struct Key {
    cfsm::CfsmId task;
    cfsm::PathId path;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.task))
           << 32) |
          static_cast<std::uint32_t>(k.path));
    }
  };

  [[nodiscard]] bool eligible(const Entry& e) const;

  EnergyCacheConfig config_;
  std::unordered_map<Key, Entry, KeyHash> table_;
  mutable std::uint64_t hits_ = 0;
  std::uint64_t simulations_ = 0;
};

}  // namespace socpower::core
