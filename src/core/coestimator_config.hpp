// Shared vocabulary of the co-estimation framework: the configuration,
// result, and hook types that the simulation master, the component-estimator
// backends, and the public CoEstimator facade all speak.
//
// These types used to live inside coestimator.hpp; they are split out so the
// backends under estimators/ can be compiled without pulling in the facade
// (and so a future out-of-process backend can share the wire vocabulary
// without linking the master at all).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bus/bus_model.hpp"
#include "bus/noc_model.hpp"
#include "cache/cache_sim.hpp"
#include "cache/coherence.hpp"
#include "cfsm/cfsm.hpp"
#include "core/compactor.hpp"
#include "core/energy_cache.hpp"
#include "iss/iss.hpp"
#include "sim/event_queue.hpp"
#include "swsyn/rtos.hpp"

namespace socpower::core {

enum class Acceleration { kNone, kCaching, kMacroModel, kSampling };

[[nodiscard]] const char* acceleration_name(Acceleration a);

/// Effective per-event final values of an emission list: same-instant
/// duplicates collapse at the receiver with the later emission winning, and
/// the result is sorted by event id. Used by the verify_lowlevel
/// cross-checks; exposed for unit testing.
[[nodiscard]] std::vector<cfsm::EmittedEvent> effective_emissions(
    std::vector<cfsm::EmittedEvent> ems);

/// Hardware power estimator choice per ASIC (paper Section 3: "the hardware
/// netlist may be represented at the RT-level or the gate-level, depending
/// on the accuracy/efficiency requirements").
enum class HwEstimatorKind { kGateLevel, kRtl };

/// Which interconnect implementation carries the shared-memory traffic:
/// the arbitrated shared bus of the paper's Section 3 (default), or the
/// XY-routed mesh NoC that generalizes its line model per hop.
enum class InterconnectKind { kBus, kNoc };

[[nodiscard]] const char* interconnect_name(InterconnectKind k);

/// Which registered ComponentEstimator backend fills each role of the
/// paper's Figure 2(b). The defaults are the built-in in-process backends;
/// alternate implementations (an emulated HW estimator, a remote ISS over
/// IPC) register under their own names in the EstimatorRegistry and are
/// selected here without touching the master.
struct EstimatorSelection {
  std::string sw = "sw.iss";
  std::string hw_gate = "hw.gate";
  std::string hw_rtl = "hw.rtl";
  std::string cache = "cache.icache";
  std::string bus = "bus.arbiter";
  /// Interconnect backend used when interconnect == InterconnectKind::kNoc.
  std::string noc = "bus.noc";
};

// Configuration of one co-estimation setup.
//
// Mutability contract: the fields marked [structural] below are consumed
// when the simulators are built — by the CoEstimator constructor or by
// prepare() — and are frozen from prepare() on; mutating one through the
// config() accessor afterwards aborts at the next run() with the offending
// field named (see structural_mismatch()). Every other field is a per-run
// knob, (re)read by each run()/run_separate(), and may be changed freely
// between runs — that is what the acceleration-mode sweeps in the benches
// and examples do.
struct CoEstimatorConfig {
  ElectricalParams electrical;    // [structural]
  iss::IssConfig iss;             // [structural]
  /// Data-dependent (DSP-style) term of the instruction power model; the
  /// default 0 models the SPARClite (data-independent, caching is exact).
  double data_nj_per_toggle = 0.0;  // [structural]

  /// Number of embedded CPU cores. Software tasks are mapped to a core via
  /// map_sw(task, core, priority); each core gets its own RTOS ready queue,
  /// its own SW estimator instance (ISS + block cache + macro library) and
  /// its own instruction cache. 1 reproduces the paper's single-CPU setup
  /// exactly.
  unsigned cores = 1;             // [structural]

  bool enable_icache = true;
  cache::CacheConfig icache;

  /// Which interconnect carries shared-memory traffic (frozen at prepare():
  /// it selects the bus backend instance).
  InterconnectKind interconnect = InterconnectKind::kBus;  // [structural]
  bus::BusParams bus;
  /// Mesh geometry/energy knobs, consumed when interconnect == kNoc.
  /// Per-run like `bus`: the NoC model is rebuilt at every begin_run().
  bus::NocParams noc;
  /// MSI-coherent private-L1/shared-L2 model for the cores' shared-data
  /// traffic. Off by default (single-CPU configs don't pay for it); per-run.
  cache::CoherenceConfig coherence;
  swsyn::RtosConfig rtos;         // [structural]
  unsigned hw_reaction_cycles = 1;  // latency of a HW transition, pre-bus
  /// Supply current (mA) the CPU draws while blocked on its shared-memory
  /// transfers (low-power wait state; lower than a pipeline stall).
  double bus_wait_current_ma = 70.0;

  Acceleration accel = Acceleration::kNone;
  EnergyCacheConfig energy_cache;
  CompactionParams sampling;
  /// Apply caching/sampling to hardware transitions too. Off by default:
  /// the paper's Table 1 experiment accelerates the ISS side only, which is
  /// why it reports zero accuracy loss (the gate-level estimator is
  /// data-dependent). Enabling this is the HW-caching ablation.
  bool accelerate_hw = false;
  /// Synthetic synchronization overhead, in spin iterations, charged per
  /// lower-level simulator invocation (ISS run / gate-sim step). The paper's
  /// component estimators are separate processes driven over IPC, and it
  /// identifies that communication/synchronization cost as a dominant part
  /// of co-estimation time; in-process calls have none, so benchmarks can
  /// model it explicitly. 0 disables.
  unsigned sync_spin = 0;
  /// Bookkeeping cost (spin iterations) per transition served from the
  /// energy cache. In the paper's tool the ISS session stays attached under
  /// caching and the master still performs per-transition table management
  /// and delay annotation across the co-simulation backplane — cheaper than
  /// a full ISS round-trip but not free (visible in Table 1 vs Table 2 CPU
  /// times). Macro-modeling pre-annotates the behavioral model and has no
  /// such per-transition cost. 0 disables.
  unsigned cache_hit_spin = 0;
  /// Run the hardware power simulator in batch mode: input vectors are
  /// collected during co-simulation and evaluated in one pass at the end
  /// (possible because a HW transition's latency is constant, so timing
  /// feedback never needs the gate simulator). This is the paper's "run
  /// hardware power analysis in batch-mode on long traces" (Section 5.1).
  /// Forced off when verify_lowlevel or accelerate_hw is set.
  bool hw_batch = true;
  /// Memoize gate-level reactions per hardware unit: key = (register state,
  /// applied + staged input vectors), value = the exact CycleResult plus the
  /// next-state delta, so a repeated reaction replays with one hash lookup
  /// and a state restore instead of a levelized sweep. Bit-identical to the
  /// uncached path — the cached energy is the double the first evaluation
  /// computed and the restored simulator state is exact (see
  /// hw/reaction_cache.hpp for the keying and invalidation rules). Per-run
  /// knob.
  bool hw_reaction_cache = true;
  /// Entry bound per hardware unit; reaching it drops that unit's table
  /// wholesale (generation clear), like the ISS block cache's bound.
  std::size_t hw_reaction_cache_max_entries = 4096;
  /// Worker threads for the offline hardware batch flush. Each HW backend
  /// unit owns its gate simulator and batch vector, so units evaluate
  /// concurrently; per-unit energies/trace records/hook calls are
  /// accumulated by the worker and merged in component order, so reported
  /// results are bit-identical for any value. 1 = serial, 0 = one per
  /// hardware thread.
  unsigned hw_flush_threads = 1;
  /// Bit-parallel gate evaluation for the offline flush: groups of up to
  /// hw_packed_lanes consecutive buffered vectors evaluate in ONE pass over
  /// the netlist (uint64_t per net, one bit per stimulus lane), with
  /// per-lane energies billed in the exact scalar commit order so results
  /// stay bit-identical. Register lanes are seeded from the recorded
  /// behavioral pre-states and verified against the netlist's own
  /// next-state chain; any disagreement (or a reaction-cache-enabled unit,
  /// whose replayed hits are faster still) falls back to the scalar path.
  /// Per-run knob; requires hw_batch (validated).
  bool hw_bit_parallel = false;
  /// Stimulus patterns per packed pass, 1..64. Fewer lanes only make sense
  /// for experiments on packed-evaluation overhead.
  unsigned hw_packed_lanes = 64;
  /// Gate-level calibration samples per hardware unit for the analytical
  /// backend (estimators.hw_gate/hw_rtl = "hw.analytical"): the first N
  /// reactions of each unit replay through GateSim while (activity, energy)
  /// samples accumulate; the unit's coefficients are least-squares-fitted
  /// when the target is reached and every later reaction is pure arithmetic.
  /// An imported AnalyticalModel (warm checkpoint, prefilter sweep) skips
  /// the phase entirely. Per-run knob.
  unsigned hw_analytical_calibration_vectors = 256;
  /// Static-power knobs of the analytical backend (per McPAT: per-gate
  /// leakage at the 300 K / 250 nm reference, scaled by channel length and
  /// exponentially by temperature — see hw::analytical_leakage_watts).
  /// Leakage integrates over each reaction's latency and is billed into the
  /// unit's energy, with the static share reported separately
  /// (RunResults::process_leakage). Per-run knobs.
  double hw_leakage_nw_per_gate = 2.0;
  double hw_temperature_k = 300.0;
  double hw_channel_length_nm = 250.0;
  /// Three-tier exploration: 0 = off; K > 0 makes explore()/explore_sharded
  /// run the whole sweep through the analytical tier first and keep only
  /// the best K candidates for the usual coarse/verify phases. Consumed by
  /// the examples/benches when building ExploreOptions — requires an HW
  /// role to select "hw.analytical" (validated).
  std::size_t analytical_prefilter = 0;
  /// Host the hardware power estimators out-of-process: the master selects
  /// the "<hw backend>.remote" proxy, which forks a worker process per
  /// backend and ships batched vectors over the dist wire protocol while
  /// the DE loop keeps running (the paper's multi-process backplane, for
  /// real this time). Results are bit-identical to the in-process backends;
  /// on fork failure or worker death the proxy degrades to an in-process
  /// fallback (telemetry "dist.fallbacks"). No-op for platforms without
  /// fork/socketpair.
  bool hw_remote = false;  // [structural]
  /// Worker processes for explore_sharded(). 1 = serial explore, 0 = one
  /// per hardware thread.
  unsigned dist_workers = 0;
  /// Per-request timeout (ms) before a remote estimator worker is declared
  /// dead and recovery (standby promotion, then in-process fallback) kicks
  /// in. Generous by default: a false positive costs a full log replay.
  unsigned dist_rpc_timeout_ms = 60'000;
  /// Batch entries shipped per kEnqueueChunk slice to a remote hardware
  /// worker. Smaller = more overlap between the master's DE loop and the
  /// worker's gate evaluation, at more framing overhead. Slicing never
  /// changes results (slices drain into the same per-unit sequence).
  unsigned dist_flush_chunk = 256;

  /// Which registered backend serves each estimator role.
  EstimatorSelection estimators;  // [structural]

  /// Retain per-sample power waveforms (needed for waveform()/peak reports;
  /// disable for long batch sweeps).
  bool keep_power_samples = false;
  /// Cross-check ISS / gate-sim functional results against the behavioral
  /// model every transition (slow; on in tests).
  bool verify_lowlevel = false;
  /// Runaway guard for misbehaving systems.
  std::uint64_t max_reactions = 20'000'000;

  /// Checks the configuration for values that would make the simulators
  /// misbehave silently — zero bus widths, negative energies/currents,
  /// a parallel hw_flush_threads request with hw_batch off, unknown
  /// estimator-backend names, out-of-range sampling parameters. Returns one
  /// actionable message per problem; empty means the config is usable.
  /// prepare() calls this and aborts (in every build type) on any error.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Compares only the [structural] fields of two configs; returns the name
/// of the first field that differs, or nullptr when they match. The master
/// snapshots the config at prepare() and runs this check at every run() to
/// catch post-prepare mutation of baked-in options.
[[nodiscard]] const char* structural_mismatch(const CoEstimatorConfig& a,
                                              const CoEstimatorConfig& b);

/// Hook supplying the shared-memory/bus traffic a reaction performs.
/// Systems attach one to model e.g. "create_pack writes the packet into
/// shared memory" or "checksum reads one DMA block through the arbiter".
/// `pre_state` is the process state before the transition.
using TrafficHook = std::function<std::vector<bus::BusRequest>(
    cfsm::CfsmId, const cfsm::Reaction&, const cfsm::CfsmState& pre_state)>;

/// Observation hook: called once per transition with the measured (or
/// estimated) cost. Drives the Figure 4 histograms and custom reports.
struct TransitionRecord {
  cfsm::CfsmId task = cfsm::kNoCfsm;
  cfsm::PathId path = cfsm::kNoPath;
  sim::SimTime time = 0;
  double cycles = 0.0;
  Joules energy = 0.0;
  bool simulated = true;  // false when served by cache/macromodel/sampling
};
using TransitionHook = std::function<void(const TransitionRecord&)>;

/// Environment/IP-model hook: called for every event occurrence the master
/// pops. Pre-designed IP blocks outside the CFSM network (e.g. the shared
/// memory of the TCP/IP system) observe requests here and may post reply
/// events into the queue. Must be a deterministic function of the observed
/// occurrences.
using EnvironmentHook = std::function<void(const sim::EventOccurrence&,
                                           sim::EventQueue&)>;

struct RunResults {
  Joules total_energy = 0.0;
  /// Energy attributed to each process (indexed by CfsmId).
  std::vector<Joules> process_energy;
  Joules cpu_energy = 0.0;    // all software + RTOS
  Joules hw_energy = 0.0;     // all ASICs
  Joules bus_energy = 0.0;
  Joules cache_energy = 0.0;
  sim::SimTime end_time = 0;

  /// Static (leakage) energy of the analytical HW backend, per process and
  /// in total. Informational split: the amounts are already included in
  /// process_energy / total_energy. Empty / 0 when no analytical backend is
  /// active — that is how render_report decides to show the static column.
  std::vector<Joules> process_leakage;
  Joules leakage_energy = 0.0;

  std::uint64_t reactions = 0;
  std::uint64_t sw_reactions = 0;
  std::uint64_t hw_reactions = 0;
  std::uint64_t iss_invocations = 0;
  std::uint64_t iss_instructions = 0;
  std::uint64_t gate_sim_cycles = 0;
  std::uint64_t cache_hits_served = 0;  // energy-cache hits
  cache::AccessStats icache;
  bus::BusTotals bus_totals;
  /// MSI protocol activity of the coherent L1/L2 model (all-zero when
  /// coherence is off).
  cache::CoherenceTotals coherence;
  double wall_seconds = 0.0;
  bool truncated = false;  // max_reactions guard fired

  [[nodiscard]] std::string summary() const;
};

}  // namespace socpower::core
