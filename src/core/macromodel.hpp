// Software power macro-modeling (paper Section 4.1, Figure 3).
//
// Characterization flow: each macro-operation's template program is compiled
// for the target and measured on the ISS; delay, code size and energy land
// in a parameter file:
//
//   .unit_time cycle
//   .unit_size byte
//   .unit_energy nJ
//   .time AVV 5
//   .time TIVART 11
//   ...
//
// During co-simulation the behavioral model is annotated with these costs:
// executing a path charges the sum of its macro-ops' pre-characterized
// costs, and the ISS is never invoked. The additive model cannot see
// pipeline overlap or cross-operation compiler optimization, so it
// systematically over-estimates — with high relative accuracy (Figure 6).
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>

#include "iss/iss.hpp"
#include "swsyn/codegen.hpp"
#include "swsyn/macro_op.hpp"
#include "util/units.hpp"

namespace socpower::core {

struct MacroCost {
  double cycles = 0.0;
  Joules energy = 0.0;
  std::uint32_t size_bytes = 0;
};

struct PathEstimate {
  double cycles = 0.0;
  Joules energy = 0.0;
};

class MacroModelLibrary {
 public:
  MacroModelLibrary() = default;

  /// Runs the characterization flow: every macro-op template is executed on
  /// a scratch ISS built from `model`/`config`, and the empty-template
  /// baseline is subtracted.
  static MacroModelLibrary characterize(const iss::InstructionPowerModel& model,
                                        const iss::IssConfig& config = {});

  [[nodiscard]] const MacroCost& cost(swsyn::MacroOp op) const;
  void set_cost(swsyn::MacroOp op, MacroCost cost);

  /// Additive estimate for a macro-op stream (one executed path).
  [[nodiscard]] PathEstimate estimate(
      std::span<const swsyn::MacroOp> stream) const;

  /// Serialize to the parameter-file format of Figure 3.
  [[nodiscard]] std::string to_parameter_file() const;
  /// Parse a parameter file; nullopt with `error` set on malformed input.
  static std::optional<MacroModelLibrary> from_parameter_file(
      const std::string& text, std::string* error = nullptr);

 private:
  std::array<MacroCost, swsyn::kNumMacroOps> costs_{};
};

}  // namespace socpower::core
