#include "core/coestimator_config.hpp"

#include <algorithm>
#include <cstdio>

#include "core/estimators/registry.hpp"
#include "hw/analytical.hpp"

namespace socpower::core {

std::vector<cfsm::EmittedEvent> effective_emissions(
    std::vector<cfsm::EmittedEvent> ems) {
  // Stable sort groups duplicates while preserving emission order within
  // each event, so the last element of a group is the latest emission — the
  // one the receiver observes.
  std::stable_sort(ems.begin(), ems.end(),
                   [](const auto& a, const auto& b) { return a.event < b.event; });
  std::size_t w = 0;
  for (std::size_t i = 0; i < ems.size();) {
    std::size_t last = i;
    while (last + 1 < ems.size() && ems[last + 1].event == ems[i].event)
      ++last;
    ems[w++] = ems[last];
    i = last + 1;
  }
  ems.resize(w);
  return ems;
}

const char* interconnect_name(InterconnectKind k) {
  switch (k) {
    case InterconnectKind::kBus: return "bus";
    case InterconnectKind::kNoc: return "noc";
  }
  return "?";
}

const char* acceleration_name(Acceleration a) {
  switch (a) {
    case Acceleration::kNone: return "none";
    case Acceleration::kCaching: return "caching";
    case Acceleration::kMacroModel: return "macromodel";
    case Acceleration::kSampling: return "sampling";
  }
  return "?";
}

std::string RunResults::summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "total=%s cpu=%s hw=%s bus=%s cache=%s  end=%llu cycles  "
      "reactions=%llu (sw=%llu hw=%llu) iss_calls=%llu wall=%.3fs%s",
      format_energy(total_energy).c_str(), format_energy(cpu_energy).c_str(),
      format_energy(hw_energy).c_str(), format_energy(bus_energy).c_str(),
      format_energy(cache_energy).c_str(),
      static_cast<unsigned long long>(end_time),
      static_cast<unsigned long long>(reactions),
      static_cast<unsigned long long>(sw_reactions),
      static_cast<unsigned long long>(hw_reactions),
      static_cast<unsigned long long>(iss_invocations), wall_seconds,
      truncated ? " [TRUNCATED]" : "");
  return buf;
}

std::vector<std::string> CoEstimatorConfig::validate() const {
  std::vector<std::string> errs;
  auto err = [&errs](const char* fmt, auto... args) {
    char buf[256];
    std::snprintf(buf, sizeof buf, fmt, args...);
    errs.emplace_back(buf);
  };

  if (electrical.vdd_volts <= 0.0)
    err("electrical.vdd_volts must be > 0 (got %g)", electrical.vdd_volts);
  if (electrical.clock_hz <= 0.0)
    err("electrical.clock_hz must be > 0 (got %g)", electrical.clock_hz);
  if (data_nj_per_toggle < 0.0)
    err("data_nj_per_toggle must be >= 0 (got %g)", data_nj_per_toggle);
  if (bus_wait_current_ma < 0.0)
    err("bus_wait_current_ma must be >= 0 (got %g)", bus_wait_current_ma);
  if (rtos.dispatch_current_ma < 0.0)
    err("rtos.dispatch_current_ma must be >= 0 (got %g)",
        rtos.dispatch_current_ma);

  if (iss.memory_bytes == 0)
    err("iss.memory_bytes must be > 0 — the ISS needs code and data room");

  if (cores == 0)
    err("cores must be > 0 — the software tasks need at least one CPU");
  if (cores > 64)
    err("cores must be <= 64 (got %u) — each core instantiates its own ISS "
        "and L1",
        cores);

  if (interconnect == InterconnectKind::kNoc) {
    if (noc.link_cap_f <= 0.0)
      err("noc.link_cap_f must be > 0 (got %g) — a zero-capacitance link "
          "makes every NoC transfer free and the energy model vacuous",
          noc.link_cap_f);
    if (noc.mesh_cols == 0 || noc.mesh_rows == 0)
      err("noc mesh geometry invalid (cols=%u rows=%u): both must be > 0",
          noc.mesh_cols, noc.mesh_rows);
    if (noc.flit_bits == 0 || noc.flit_bits > 64)
      err("noc.flit_bits must be in [1, 64] (got %u) — flits pack into one "
          "uint64_t link word",
          noc.flit_bits);
    if (noc.mesh_cols > 0 && noc.mesh_rows > 0 &&
        noc.memory_node >= static_cast<int>(noc.nodes()))
      err("noc.memory_node=%d is outside the %ux%u mesh", noc.memory_node,
          noc.mesh_cols, noc.mesh_rows);
  }

  if (coherence.enabled) {
    if (coherence.l1.line_bytes == 0 || coherence.l1.size_bytes == 0 ||
        coherence.l1.associativity == 0 || coherence.l1.num_sets() == 0)
      err("coherence.l1 geometry invalid (size=%u line=%u assoc=%u): all "
          "must be > 0 with size >= line * associativity",
          coherence.l1.size_bytes, coherence.l1.line_bytes,
          coherence.l1.associativity);
    if (coherence.l2_access_energy < 0.0 || coherence.invalidate_energy < 0.0)
      err("coherence energies must be >= 0 (l2=%g invalidate=%g)",
          coherence.l2_access_energy, coherence.invalidate_energy);
  }

  if (bus.addr_bits == 0)
    err("bus.addr_bits must be > 0 — a zero-width address bus cannot "
        "address the shared memory");
  if (bus.data_bits == 0)
    err("bus.data_bits must be > 0 — a zero-width data bus moves no bytes");
  if (bus.dma_block_size == 0)
    err("bus.dma_block_size must be > 0 — each grant must move at least "
        "one byte");
  if (bus.line_cap_f < 0.0)
    err("bus.line_cap_f must be >= 0 (got %g)", bus.line_cap_f);
  if (bus.handshake_toggles < 0.0)
    err("bus.handshake_toggles must be >= 0 (got %g)", bus.handshake_toggles);

  if (enable_icache) {
    if (icache.line_bytes == 0 || icache.size_bytes == 0 ||
        icache.associativity == 0 || icache.num_sets() == 0)
      err("icache geometry invalid (size=%u line=%u assoc=%u): all must be "
          "> 0 with size >= line * associativity",
          icache.size_bytes, icache.line_bytes, icache.associativity);
    if (icache.hit_energy < 0.0 || icache.miss_energy < 0.0)
      err("icache energies must be >= 0 (hit=%g miss=%g)", icache.hit_energy,
          icache.miss_energy);
  }

  if (energy_cache.thresh_variance < 0.0)
    err("energy_cache.thresh_variance must be >= 0 (got %g)",
        energy_cache.thresh_variance);
  if (sampling.keep_ratio <= 0.0 || sampling.keep_ratio > 1.0)
    err("sampling.keep_ratio must be in (0, 1] (got %g)",
        sampling.keep_ratio);
  if (sampling.k_memory == 0)
    err("sampling.k_memory must be > 0 — the compactor buffers K symbols "
        "per selection round");

  if (hw_reaction_cache && hw_reaction_cache_max_entries == 0)
    err("hw_reaction_cache_max_entries must be > 0 with hw_reaction_cache "
        "on — a zero-entry table can never hit; disable the cache instead");

  if (hw_flush_threads != 1 && !hw_batch)
    err("hw_flush_threads=%u requested with hw_batch off: the offline flush "
        "never runs, so the parallelism is silently dead — set "
        "hw_batch=true or hw_flush_threads=1",
        hw_flush_threads);

  if (hw_bit_parallel && !hw_batch)
    err("hw_bit_parallel requested with hw_batch off: packed evaluation "
        "only runs in the offline flush, so the knob is silently dead — "
        "set hw_batch=true or hw_bit_parallel=false");
  if (hw_packed_lanes == 0 || hw_packed_lanes > 64)
    err("hw_packed_lanes must be in [1, 64] (got %u) — lanes are bits of "
        "one uint64_t word per net",
        hw_packed_lanes);

  if (hw_analytical_calibration_vectors == 0)
    err("hw_analytical_calibration_vectors must be > 0 — the analytical "
        "backend least-squares-fits %zu coefficients per unit from these "
        "gate-level samples, and zero samples fit nothing",
        hw::kAnalyticalTerms);
  if (hw_analytical_calibration_vectors > (1u << 20))
    err("hw_analytical_calibration_vectors must be <= %u (got %u) — beyond "
        "that the calibration prefix costs more than the gate-level run it "
        "replaces",
        1u << 20, hw_analytical_calibration_vectors);
  if (hw_leakage_nw_per_gate < 0.0)
    err("hw_leakage_nw_per_gate must be >= 0 (got %g)",
        hw_leakage_nw_per_gate);
  if (hw_temperature_k <= 0.0)
    err("hw_temperature_k must be > 0 (got %g) — the leakage model scales "
        "exponentially from the 300 K reference",
        hw_temperature_k);
  if (hw_channel_length_nm <= 0.0)
    err("hw_channel_length_nm must be > 0 (got %g) — leakage scales as "
        "250 / channel length",
        hw_channel_length_nm);
  if (analytical_prefilter > 0 && estimators.hw_gate != "hw.analytical" &&
      estimators.hw_rtl != "hw.analytical")
    err("analytical_prefilter=%zu needs an HW estimator role set to "
        "\"hw.analytical\" (hw_gate=\"%s\" hw_rtl=\"%s\") — the prefilter "
        "tier has no analytical model to run otherwise",
        analytical_prefilter, estimators.hw_gate.c_str(),
        estimators.hw_rtl.c_str());

  if (dist_rpc_timeout_ms == 0)
    err("dist_rpc_timeout_ms must be > 0 — a zero timeout declares every "
        "remote worker dead before it can answer");
  if (dist_flush_chunk == 0)
    err("dist_flush_chunk must be > 0 — a zero slice can never ship a "
        "batch entry");
  if (dist_workers > 256)
    err("dist_workers must be <= 256 (got %u) — each worker is a forked "
        "process",
        dist_workers);

  if (max_reactions == 0)
    err("max_reactions must be > 0 — a zero guard truncates every run at "
        "the first transition");

  const EstimatorRegistry& reg = estimator_registry();
  for (const auto& [role, name] :
       {std::pair<const char*, const std::string*>{"sw", &estimators.sw},
        {"hw_gate", &estimators.hw_gate},
        {"hw_rtl", &estimators.hw_rtl},
        {"cache", &estimators.cache},
        {"bus", &estimators.bus}}) {
    if (!reg.contains(*name))
      err("estimators.%s backend \"%s\" is not registered (known: %s)", role,
          name->c_str(), reg.joined_names().c_str());
  }
  if (interconnect == InterconnectKind::kNoc &&
      !reg.contains(estimators.noc))
    err("estimators.noc backend \"%s\" is not registered (known: %s)",
        estimators.noc.c_str(), reg.joined_names().c_str());
  if (hw_remote) {
    for (const auto& [role, name] :
         {std::pair<const char*, const std::string*>{"hw_gate",
                                                     &estimators.hw_gate},
          {"hw_rtl", &estimators.hw_rtl}}) {
      const std::string remote = *name + ".remote";
      if (!reg.contains(remote))
        err("hw_remote selects estimators.%s backend \"%s\", which is not "
            "registered (known: %s)",
            role, remote.c_str(), reg.joined_names().c_str());
    }
  }
  return errs;
}

const char* structural_mismatch(const CoEstimatorConfig& a,
                                const CoEstimatorConfig& b) {
  if (a.electrical.vdd_volts != b.electrical.vdd_volts ||
      a.electrical.clock_hz != b.electrical.clock_hz)
    return "electrical";
  if (a.data_nj_per_toggle != b.data_nj_per_toggle)
    return "data_nj_per_toggle";
  if (a.iss.memory_bytes != b.iss.memory_bytes ||
      a.iss.pipeline_fill_cycles != b.iss.pipeline_fill_cycles ||
      a.iss.taken_branch_penalty != b.iss.taken_branch_penalty ||
      a.iss.default_max_instructions != b.iss.default_max_instructions ||
      a.iss.block_cache != b.iss.block_cache ||
      a.iss.block_cache_max_blocks != b.iss.block_cache_max_blocks ||
      a.iss.block_cache_max_ops != b.iss.block_cache_max_ops)
    return "iss";
  if (a.rtos.dispatch_cycles != b.rtos.dispatch_cycles ||
      a.rtos.dispatch_current_ma != b.rtos.dispatch_current_ma)
    return "rtos";
  if (a.hw_remote != b.hw_remote) return "hw_remote";
  if (a.cores != b.cores) return "cores";
  if (a.interconnect != b.interconnect) return "interconnect";
  if (a.estimators.sw != b.estimators.sw ||
      a.estimators.hw_gate != b.estimators.hw_gate ||
      a.estimators.hw_rtl != b.estimators.hw_rtl ||
      a.estimators.cache != b.estimators.cache ||
      a.estimators.bus != b.estimators.bus ||
      a.estimators.noc != b.estimators.noc)
    return "estimators";
  return nullptr;
}

}  // namespace socpower::core
