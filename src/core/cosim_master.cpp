#include "core/cosim_master.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "core/estimators/registry.hpp"
#include "core/estimators/sw_iss_estimator.hpp"
#include "swsyn/codegen.hpp"
#include "telemetry/trace.hpp"
#include "util/thread_pool.hpp"

namespace socpower::core {

namespace {

constexpr sim::SimTime kInfTime = std::numeric_limits<sim::SimTime>::max();

/// Create a backend by registry name and downcast it to its role interface.
/// Aborts (in every build type) when the name resolves to a backend that
/// does not implement the role — a config error no run can recover from.
template <typename Role>
std::unique_ptr<ComponentEstimator> create_role_backend(
    const std::string& name, const char* role, Role** out) {
  std::unique_ptr<ComponentEstimator> backend =
      estimator_registry().create(name);
  if (!backend) {
    std::fprintf(stderr,
                 "CoSimMaster: estimators.%s backend \"%s\" is not "
                 "registered (known: %s)\n",
                 role, name.c_str(),
                 estimator_registry().joined_names().c_str());
    std::abort();
  }
  *out = dynamic_cast<Role*>(backend.get());
  if (*out == nullptr) {
    std::fprintf(stderr,
                 "CoSimMaster: estimators.%s backend \"%s\" does not "
                 "implement the %s role interface\n",
                 role, name.c_str(), role);
    std::abort();
  }
  return backend;
}

}  // namespace

CoSimMaster::CoSimMaster(const cfsm::Network* network, CoEstimatorConfig config)
    : net_(network), config_(std::move(config)),
      rtos_(config_.rtos, config_.electrical),
      ecache_(config_.energy_cache) {
  impl_is_sw_.resize(net_->cfsm_count());
  core_of_.assign(net_->cfsm_count(), 0);
}

CoSimMaster::~CoSimMaster() = default;

void CoSimMaster::map_sw(cfsm::CfsmId task, int rtos_priority) {
  map_sw(task, 0, rtos_priority);
}

void CoSimMaster::map_sw(cfsm::CfsmId task, unsigned core, int rtos_priority) {
  assert(!prepared_);
  if (core >= config_.cores) {
    std::fprintf(stderr,
                 "CoSimMaster: map_sw: core %u is out of range for a %u-core "
                 "configuration (config.cores)\n",
                 core, config_.cores);
    std::abort();
  }
  impl_is_sw_.at(static_cast<std::size_t>(task)) = true;
  core_of_.at(static_cast<std::size_t>(task)) = core;
  rtos_.set_priority(task, rtos_priority);
}

void CoSimMaster::map_hw(cfsm::CfsmId task, HwEstimatorKind kind) {
  assert(!prepared_);
  impl_is_sw_.at(static_cast<std::size_t>(task)) = false;
  if (hw_kind_.size() < net_->cfsm_count())
    hw_kind_.assign(net_->cfsm_count(), HwEstimatorKind::kGateLevel);
  hw_kind_[static_cast<std::size_t>(task)] = kind;
}

bool CoSimMaster::is_sw(cfsm::CfsmId task) const {
  const auto& m = impl_is_sw_.at(static_cast<std::size_t>(task));
  assert(m.has_value() && "process not mapped to HW or SW");
  return *m;
}

void CoSimMaster::prepare() {
  assert(!prepared_);
  assert(net_->validate().empty() && "invalid CFSM network");

  const std::vector<std::string> errors = config_.validate();
  if (!errors.empty()) {
    for (const std::string& e : errors)
      std::fprintf(stderr, "CoSimMaster: invalid config: %s\n", e.c_str());
    std::abort();
  }

  // Partition the processes by implementation, in ascending id order (the
  // order everything downstream — image layout, flush merging — relies on).
  // Software additionally partitions per core: each core that runs software
  // gets its own SwBackend instance (its own ISS + images).
  std::vector<std::vector<cfsm::CfsmId>> sw_by_core(config_.cores);
  std::vector<cfsm::CfsmId> gate_ids, rtl_ids;
  for (std::size_t c = 0; c < net_->cfsm_count(); ++c) {
    const auto task = static_cast<cfsm::CfsmId>(c);
    if (is_sw(task)) {
      sw_by_core[core_of_[c]].push_back(task);
    } else {
      const HwEstimatorKind kind = c < hw_kind_.size()
                                       ? hw_kind_[c]
                                       : HwEstimatorKind::kGateLevel;
      (kind == HwEstimatorKind::kRtl ? rtl_ids : gate_ids).push_back(task);
    }
  }

  macromodel_ = MacroModelLibrary::characterize(instruction_power_model(config_),
                                                config_.iss);
  path_tables_.resize(net_->cfsm_count());

  // Instantiate the selected backends (only the roles with work) and let
  // them build their lower-level simulators.
  hw_backend_for_.assign(net_->cfsm_count(), nullptr);
  auto add_backend = [this](std::unique_ptr<ComponentEstimator> b,
                            std::vector<cfsm::CfsmId> components) {
    EstimatorContext ctx;
    ctx.network = net_;
    ctx.config = &config_;
    ctx.components = std::move(components);
    ctx.path_tables = &path_tables_;
    b->prepare(ctx);
    owned_backends_.push_back(std::move(b));
  };
  sw_for_core_.assign(config_.cores, nullptr);
  for (unsigned core = 0; core < config_.cores; ++core) {
    if (sw_by_core[core].empty()) continue;
    SwBackend* sw = nullptr;
    add_backend(create_role_backend(config_.estimators.sw, "sw", &sw),
                sw_by_core[core]);
    sw_for_core_[core] = sw;
    sw_backends_.push_back(sw);
  }
  // hw_remote swaps in the out-of-process proxies by name suffix, so any
  // registered hardware backend gains a remote deployment for free.
  const std::string hw_suffix = config_.hw_remote ? ".remote" : "";
  if (!gate_ids.empty()) {
    add_backend(create_role_backend(config_.estimators.hw_gate + hw_suffix,
                                    "hw_gate", &hw_gate_),
                gate_ids);
    for (const cfsm::CfsmId t : gate_ids)
      hw_backend_for_[static_cast<std::size_t>(t)] = hw_gate_;
  }
  if (!rtl_ids.empty()) {
    add_backend(create_role_backend(config_.estimators.hw_rtl + hw_suffix,
                                    "hw_rtl", &hw_rtl_),
                rtl_ids);
    for (const cfsm::CfsmId t : rtl_ids)
      hw_backend_for_[static_cast<std::size_t>(t)] = hw_rtl_;
  }
  add_backend(create_role_backend(config_.estimators.cache, "cache", &cache_),
              {});
  // The interconnect kind selects between the arbitrated-bus and routed-NoC
  // backend names; both satisfy the BusBackend role.
  const std::string& bus_name = config_.interconnect == InterconnectKind::kNoc
                                    ? config_.estimators.noc
                                    : config_.estimators.bus;
  add_backend(create_role_backend(bus_name, "bus", &bus_), {});

  // Power-trace components: one per process, plus bus and cache.
  trace_ = sim::PowerTrace(config_.electrical);
  process_component_.clear();
  for (std::size_t c = 0; c < net_->cfsm_count(); ++c)
    process_component_.push_back(trace_.add_component(net_->cfsm(
        static_cast<cfsm::CfsmId>(c)).name()));
  bus_component_ = trace_.add_component("bus");
  cache_component_ = trace_.add_component("icache");

  receivers_by_event_.clear();
  for (std::size_t e = 0; e < net_->event_count(); ++e)
    receivers_by_event_.push_back(
        net_->receivers(static_cast<cfsm::EventId>(e)));
  mm_memo_.assign(net_->cfsm_count(), {});

  structural_baseline_ = config_;
  prepared_ = true;
}

void CoSimMaster::check_structural_config() const {
  if (const char* field = structural_mismatch(config_, structural_baseline_)) {
    std::fprintf(stderr,
                 "CoSimMaster: config field \"%s\" is structural (baked into "
                 "the simulators at prepare()) and was mutated afterwards; "
                 "create a new estimator instead\n",
                 field);
    std::abort();
  }
}

void CoSimMaster::reset_runtime_state() {
  trace_.reset();
  trace_.set_keep_samples(config_.keep_power_samples);
  ecache_ = EnergyCache(config_.energy_cache);
  sampler_.assign(net_->cfsm_count(),
                  DynamicCompactionStream(config_.sampling));
  state_.clear();
  for (std::size_t c = 0; c < net_->cfsm_count(); ++c)
    state_.push_back(net_->cfsm(static_cast<cfsm::CfsmId>(c)).make_state());
  latched_.assign(net_->event_count(), std::nullopt);
  queue_.clear();
  cores_.assign(config_.cores, CoreState{});
  job_to_wait_.clear();
  bus_waits_.clear();
  flush_gate_cycles_ = 0;
  for (const auto& b : owned_backends_) b->begin_run();
}

cfsm::ReactionInputs CoSimMaster::merge_inputs(
    cfsm::CfsmId task, const cfsm::ReactionInputs& trigger) const {
  cfsm::ReactionInputs merged;
  // Sampled inputs first: the latest latched value of each sampled event
  // (POLIS valued events persist); trigger events override.
  for (const cfsm::EventId e : net_->cfsm(task).sampled_inputs()) {
    const auto& v = latched_[static_cast<std::size_t>(e)];
    if (v) merged.set(e, *v);
  }
  for (const auto& [e, v] : trigger.all()) merged.set(e, v);
  return merged;
}

void CoSimMaster::latch_occurrence(const sim::EventOccurrence& occ) {
  latched_[static_cast<std::size_t>(occ.event)] = occ.value;
}

TransitionCost CoSimMaster::measured_or_accelerated(
    cfsm::CfsmId task, cfsm::PathId path,
    const std::function<TransitionCost()>& simulate,
    const std::vector<swsyn::MacroOp>* macro_stream) {
  switch (config_.accel) {
    case Acceleration::kNone:
      return simulate();
    case Acceleration::kCaching: {
      if (const auto c = ecache_.lookup(task, path)) {
        sync_overhead(config_.cache_hit_spin);
        return {c->cycles, c->energy, false};
      }
      TransitionCost cost = simulate();
      ecache_.record(task, path, static_cast<Cycles>(cost.cycles),
                     cost.energy);
      return cost;
    }
    case Acceleration::kMacroModel: {
      if (macro_stream != nullptr) {
        const PathEstimate est = macromodel_.estimate(*macro_stream);
        return {est.cycles, est.energy, false};
      }
      // Hardware parts have no software macro-model; simulate them.
      return simulate();
    }
    case Acceleration::kSampling: {
      const bool do_sim = sampler_[static_cast<std::size_t>(task)].feed(
          static_cast<std::uint32_t>(path));
      if (!do_sim) {
        if (const auto m = ecache_.mean(task, path))
          return {m->cycles, m->energy, false};
        // Unseen path: must simulate to bootstrap the extrapolation.
      }
      TransitionCost cost = simulate();
      ecache_.record(task, path, static_cast<Cycles>(cost.cycles),
                     cost.energy);
      return cost;
    }
  }
  return simulate();
}

TransitionCost CoSimMaster::sw_transition_cost(
    cfsm::CfsmId task, const cfsm::ReactionInputs& inputs,
    const cfsm::CfsmState& pre_state, const cfsm::Reaction& reaction,
    cfsm::PathId path) {
  if (config_.accel == Acceleration::kMacroModel) {
    // The macro-model annotates the behavioral model: the first execution of
    // a path prices its macro-op stream from the parameter library; later
    // executions are O(1) lookups. The ISS is never invoked.
    static telemetry::Counter& skipped =
        telemetry::registry().counter("macromodel.skipped_iss_calls");
    static telemetry::Counter& annotations =
        telemetry::registry().counter("macromodel.path_annotations");
    skipped.add();
    auto& memo = mm_memo_[static_cast<std::size_t>(task)];
    if (static_cast<std::size_t>(path) >= memo.size())
      memo.resize(static_cast<std::size_t>(path) + 1);
    auto& slot = memo[static_cast<std::size_t>(path)];
    if (!slot) {
      const auto stream =
          swsyn::macro_stream_for_trace(net_->cfsm(task), reaction.trace);
      slot = macromodel_.estimate(stream);
      annotations.add();
    }
    return {slot->cycles, slot->energy, false};
  }

  TransitionRequest req;
  req.task = task;
  req.path = path;
  req.inputs = &inputs;
  req.pre_state = &pre_state;
  req.reaction = &reaction;
  req.post_state = &state_[static_cast<std::size_t>(task)];
  SwBackend* sw = sw_backend_of(task);
  auto simulate = [&]() -> TransitionCost { return sw->cost(req); };
  return measured_or_accelerated(task, path, simulate, nullptr);
}

TransitionCost CoSimMaster::hw_transition_cost(
    cfsm::CfsmId task, const cfsm::ReactionInputs& inputs,
    const cfsm::Reaction& reaction, cfsm::PathId path) {
  HwBackend* hw = hw_backend_for_[static_cast<std::size_t>(task)];
  // The master resynchronized the register state (if dirty) before running
  // the behavioral reaction, so the netlist sees the correct pre-state.
  TransitionRequest req;
  req.task = task;
  req.path = path;
  req.inputs = &inputs;
  req.reaction = &reaction;
  req.post_state = &state_[static_cast<std::size_t>(task)];
  auto simulate = [&]() -> TransitionCost { return hw->cost(req); };
  // Table 1 accelerates the ISS side only (zero accuracy loss); HW-side
  // caching/sampling is the opt-in ablation.
  TransitionCost cost = config_.accelerate_hw
                            ? measured_or_accelerated(task, path, simulate,
                                                      nullptr)
                            : simulate();
  hw->mark_skipped(task, !cost.simulated);
  return cost;
}

RunResults CoSimMaster::run(const sim::Stimulus& stimulus) {
  assert(prepared_);
  check_structural_config();
  telemetry::registry().counter("coest.runs").add();
  SOCPOWER_TRACE_SPAN("coest.run");
  const auto wall0 = std::chrono::steady_clock::now();
  reset_runtime_state();
  stimulus.load_into(queue_);

  RunResults res;
  res.process_energy.assign(net_->cfsm_count(), 0.0);

  auto charge_process = [&](cfsm::CfsmId task, sim::SimTime t, Joules e) {
    trace_.record(process_component_[static_cast<std::size_t>(task)], t, e);
    res.process_energy[static_cast<std::size_t>(task)] += e;
    if (is_sw(task))
      res.cpu_energy += e;
    else
      res.hw_energy += e;
  };

  sim::SimTime now = 0;
  std::vector<sim::EventOccurrence> occs;  // instant buffer, reused per pop
  while (true) {
    if (res.reactions >= config_.max_reactions) {
      res.truncated = true;
      break;
    }
    const sim::SimTime t_queue = queue_.empty() ? kInfTime : queue_.next_time();
    const sim::SimTime t_sched =
        bus_->has_work() ? bus_->next_boundary() : kInfTime;
    // Per-core minima; ties resolve to the lowest core id (strict <), which
    // reduces to the original single-CPU schedule when cores == 1.
    sim::SimTime t_bus = kInfTime;
    unsigned bus_core = 0;
    sim::SimTime t_cpu = kInfTime;
    unsigned cpu_core = 0;
    for (unsigned c = 0; c < cores_.size(); ++c) {
      const CoreState& cs = cores_[c];
      if (cs.bus.active && cs.bus.issue_at < t_bus) {
        t_bus = cs.bus.issue_at;
        bus_core = c;
      }
      if (cs.pending.empty() || cs.bus.active || cs.blocked) continue;
      sim::SimTime earliest = kInfTime;
      for (const auto& p : cs.pending)
        earliest = std::min(earliest, p.ready_at);
      const sim::SimTime t = std::max(cs.free_at, earliest);
      if (t < t_cpu) {
        t_cpu = t;
        cpu_core = c;
      }
    }
    if (t_queue == kInfTime && t_cpu == kInfTime && t_bus == kInfTime &&
        t_sched == kInfTime)
      break;

    if (t_sched <= t_queue && t_sched <= t_bus && t_sched <= t_cpu) {
      // ---- advance the bus arbiter to its next grant boundary --------------
      now = std::max(now, t_sched);
      for (const auto& c : bus_->advance(t_sched)) {
        const auto it = job_to_wait_.find(c.id);
        assert(it != job_to_wait_.end());
        BusWait& w = bus_waits_[it->second];
        job_to_wait_.erase(it);
        trace_.record(bus_component_, c.result.end, c.result.energy);
        res.bus_energy += c.result.energy;
        w.last_end = std::max(w.last_end, c.result.end);
        if (--w.remaining != 0) continue;
        const sim::SimTime done = std::max(w.last_end, w.earliest_done);
        if (w.is_cpu) {
          // Programmed I/O: the CPU stalls until its transfer completes,
          // drawing a low-power wait current — this is how arbitration
          // priorities and DMA sizing feed back into software energy even
          // when the code is unchanged (the paper's Figure 7 effect).
          if (done > w.cpu_issue) {
            const Joules wait_e = config_.bus_wait_current_ma * 1e-3 *
                                  config_.electrical.vdd_volts *
                                  static_cast<double>(done - w.cpu_issue) /
                                  config_.electrical.clock_hz;
            charge_process(w.task, w.cpu_issue, wait_e);
          }
          CoreState& cs = cores_[w.core];
          cs.blocked = false;
          cs.free_at = done;
        }
        for (const auto& em : w.emissions)
          queue_.post(done, em.event, em.value, w.task);
      }
      continue;
    }

    if (t_bus < t_queue && t_bus <= t_cpu) {
      // ---- issue a blocked CPU's shared-memory traffic ----------------------
      CoreState& cs = cores_[bus_core];
      now = cs.bus.issue_at;
      BusWait w;
      w.task = cs.bus.task;
      w.is_cpu = true;
      w.core = bus_core;
      w.emissions = std::move(cs.bus.emissions);
      w.remaining = cs.bus.requests.size();
      w.earliest_done = now;
      w.cpu_issue = now;
      bus_waits_.push_back(std::move(w));
      for (auto& rq : cs.bus.requests)
        job_to_wait_[bus_->submit(now, std::move(rq))] =
            bus_waits_.size() - 1;
      cs.blocked = true;
      cs.bus = {};
      continue;
    }

    if (t_queue <= t_cpu) {
      // ---- process one event instant --------------------------------------
      queue_.pop_instant(occs);
      now = occs.front().time;
      for (const auto& o : occs) {
        latch_occurrence(o);
        for (const auto& hook : environment_hooks_) hook(o, queue_);
      }

      // Group occurrences by triggered process.
      std::vector<cfsm::CfsmId> triggered;
      std::vector<cfsm::ReactionInputs> trig_inputs(net_->cfsm_count());
      for (const auto& o : occs) {
        for (const cfsm::CfsmId r : receivers_by_event_
                 [static_cast<std::size_t>(o.event)]) {
          auto& in = trig_inputs[static_cast<std::size_t>(r)];
          if (in.empty()) triggered.push_back(r);
          in.set(o.event, o.value);
        }
      }
      std::sort(triggered.begin(), triggered.end());

      for (const cfsm::CfsmId task : triggered) {
        const auto& trig = trig_inputs[static_cast<std::size_t>(task)];
        if (is_sw(task)) {
          cores_[core_of_[static_cast<std::size_t>(task)]].pending.push_back(
              {now, task, trig});
          continue;
        }
        // Hardware reaction at this instant.
        ++res.reactions;
        ++res.hw_reactions;
        const cfsm::ReactionInputs inputs = merge_inputs(task, trig);
        auto& st = state_[static_cast<std::size_t>(task)];
        const cfsm::CfsmState pre_state = st;
        HwBackend* hw = hw_backend_for_[static_cast<std::size_t>(task)];
        if (hw_online()) hw->resync_if_dirty(task, pre_state);
        const cfsm::Reaction reaction =
            net_->cfsm(task).react(inputs, st);
        if (!hw_online()) {
          // Batch mode: buffer the vector; energy is computed in one pass
          // after the co-simulation (HW latency is constant, so nothing
          // downstream needs it now).
          cfsm::PathId path = cfsm::kNoPath;  // kNoPath == reset transition
          if (!reaction.trace.empty())
            path = path_tables_[static_cast<std::size_t>(task)].intern(
                reaction.trace);
          hw->enqueue(task, now, inputs, path, pre_state);
          if (reaction.trace.empty()) continue;
        } else {
          if (reaction.trace.empty()) {
            // Reset transition: re-initialize the netlist state.
            hw->reset_unit(task);
            continue;
          }
          const cfsm::PathId path =
              path_tables_[static_cast<std::size_t>(task)].intern(
                  reaction.trace);
          static telemetry::Counter& hw_transitions =
              telemetry::registry().counter("coest.transitions.hw");
          static telemetry::Counter& accel_served =
              telemetry::registry().counter("coest.accel_served");
          hw_transitions.add();
          TransitionCost cost;
          {
            SOCPOWER_TRACE_SPAN("coest.hw_transition", now,
                                static_cast<std::uint64_t>(task));
            cost = hw_transition_cost(task, inputs, reaction, path);
          }
          if (!cost.simulated) {
            ++res.cache_hits_served;
            accel_served.add();
          }
          charge_process(task, now, cost.energy);
          if (transition_hook_)
            transition_hook_({task, path, now, cost.cycles, cost.energy,
                              cost.simulated});
        }

        // Traffic goes to the interconnect; the reaction's emissions wait
        // for its last transfer when it has any.
        std::vector<bus::BusRequest> reqs;
        if (traffic_hook_) reqs = traffic_hook_(task, reaction, pre_state);
        sim::SimTime latency = now + config_.hw_reaction_cycles;
        if (config_.coherence.enabled && !reqs.empty()) {
          // Hardware masters are uncached agents: their accesses invalidate
          // (writes) or flush (reads) matching dirty lines in the cores'
          // private L1s, and the resulting control messages ride the
          // interconnect alongside the data transfer.
          latency += coherence_traffic(-1, now, reqs, res);
        }
        if (reqs.empty()) {
          for (const auto& em : reaction.emissions)
            queue_.post(latency, em.event, em.value, task);
        } else {
          BusWait w;
          w.task = task;
          w.emissions = reaction.emissions;
          w.remaining = reqs.size();
          w.earliest_done = latency;
          bus_waits_.push_back(std::move(w));
          for (auto& rq : reqs)
            job_to_wait_[bus_->submit(now, std::move(rq))] =
                bus_waits_.size() - 1;
        }
      }
      continue;
    }

    // ---- dispatch one software transition on the chosen core ----------------
    now = t_cpu;
    CoreState& cpu = cores_[cpu_core];
    std::vector<cfsm::CfsmId> ready_tasks;
    std::vector<std::size_t> ready_idx;
    for (std::size_t i = 0; i < cpu.pending.size(); ++i) {
      if (cpu.pending[i].ready_at <= now) {
        ready_tasks.push_back(cpu.pending[i].task);
        ready_idx.push_back(i);
      }
    }
    assert(!ready_tasks.empty());
    const std::size_t pick = rtos_.pick_next(ready_tasks);
    const PendingSw pending = cpu.pending[ready_idx[pick]];
    cpu.pending.erase(cpu.pending.begin() +
                      static_cast<std::ptrdiff_t>(ready_idx[pick]));

    ++res.reactions;
    ++res.sw_reactions;
    const cfsm::CfsmId task = pending.task;
    const cfsm::ReactionInputs inputs =
        merge_inputs(task, pending.trigger_inputs);
    auto& st = state_[static_cast<std::size_t>(task)];
    const cfsm::CfsmState pre_state = st;
    const cfsm::Reaction reaction = net_->cfsm(task).react(inputs, st);

    // RTOS dispatch overhead.
    double cycles = static_cast<double>(rtos_.dispatch_cycles());
    Joules energy = rtos_.dispatch_energy();

    if (!reaction.trace.empty()) {
      const cfsm::PathId path =
          path_tables_[static_cast<std::size_t>(task)].intern(reaction.trace);
      static telemetry::Counter& sw_transitions =
          telemetry::registry().counter("coest.transitions.sw");
      static telemetry::Counter& accel_served =
          telemetry::registry().counter("coest.accel_served");
      sw_transitions.add();
      TransitionCost cost;
      {
        SOCPOWER_TRACE_SPAN("coest.sw_transition", now,
                            static_cast<std::uint64_t>(task));
        cost = sw_transition_cost(task, inputs, pre_state, reaction, path);
      }
      if (!cost.simulated) {
        ++res.cache_hits_served;
        accel_served.add();
      }
      cycles += cost.cycles;
      energy += cost.energy;
      if (transition_hook_)
        transition_hook_({task, path, now, cost.cycles, cost.energy,
                          cost.simulated});

      // Instruction-cache references come from the behavioral model's path
      // (Section 3), so they are issued whether or not the ISS ran. Each
      // core references its own private instruction cache.
      if (config_.enable_icache) {
        const auto addrs = swsyn::address_trace(
            *sw_for_core_[cpu_core]->image(task), reaction.trace);
        const cache::AccessStats cs = cache_->access_core(cpu_core, addrs);
        cycles += static_cast<double>(cs.penalty_cycles);
        trace_.record(cache_component_, now, cs.energy);
        res.cache_energy += cs.energy;
      }
    }

    charge_process(task, now, energy);
    sim::SimTime end =
        now + static_cast<sim::SimTime>(std::llround(std::ceil(cycles)));
    if (end == now) end = now + 1;

    std::vector<bus::BusRequest> reqs;
    if (traffic_hook_ && !reaction.trace.empty())
      reqs = traffic_hook_(task, reaction, pre_state);
    if (config_.coherence.enabled && !reqs.empty()) {
      // Data side: the core's shared-memory traffic runs through its
      // MSI-coherent private L1; misses/upgrades stall the core and the
      // coherence control messages join the core's bus phase.
      end += coherence_traffic(static_cast<int>(cpu_core), now, reqs, res);
    }
    if (reqs.empty()) {
      cpu.free_at = end;
      for (const auto& em : reaction.emissions)
        queue_.post(end, em.event, em.value, task);
    } else {
      // Defer the bus phase so it arbitrates in simulated-time order with
      // the other masters' traffic; the core blocks until completion.
      cpu.bus.active = true;
      cpu.bus.issue_at = end;
      cpu.bus.task = task;
      cpu.bus.requests = std::move(reqs);
      cpu.bus.emissions = reaction.emissions;
      cpu.free_at = end;  // refined to the transfer end when it is served
    }
  }

  if (!hw_online()) flush_hw_batches(res);

  res.end_time = now;
  for (const CoreState& cs : cores_)
    res.end_time = std::max(res.end_time, cs.free_at);
  res.total_energy =
      res.cpu_energy + res.hw_energy + res.bus_energy + res.cache_energy;
  for (const auto& b : owned_backends_) b->stats(res);
  res.gate_sim_cycles += flush_gate_cycles_;
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return res;
}

void CoSimMaster::flush_hw_batches(RunResults& res) {
  // Each backend unit owns its gate simulator and batch vector, so the
  // per-unit replay is embarrassingly parallel. The shared pieces — gate
  // cycles, the PowerTrace, RunResults accumulation and the transition hook —
  // are accumulated per worker in the FlushResult and merged in component
  // order afterwards, so the reported energies (floating-point addition
  // order included) are identical for any thread count.
  std::vector<ComponentEstimator::FlushJob> jobs;
  for (const auto& b : owned_backends_) b->flush(jobs);
  if (jobs.empty()) return;
  // Merge order is ascending component id, exactly the order a single
  // monolithic estimator would flush in.
  std::sort(jobs.begin(), jobs.end(),
            [](const auto& a, const auto& b) {
              return a.component < b.component;
            });

  SOCPOWER_TRACE_SPAN("coest.hw_flush");
  std::vector<ComponentEstimator::FlushResult> flushed(jobs.size());
  const auto threads = static_cast<unsigned>(std::min<std::size_t>(
      resolve_thread_count(config_.hw_flush_threads), jobs.size()));
  if (threads > 1) {
    ThreadPool pool(threads);
    pool.parallel_for(jobs.size(),
                      [&](std::size_t i) { flushed[i] = jobs[i].work(); });
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) flushed[i] = jobs[i].work();
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const cfsm::CfsmId task = jobs[i].component;
    const auto c = static_cast<std::size_t>(task);
    for (const ComponentEstimator::FlushEntry& e : flushed[i].entries) {
      trace_.record(process_component_[c], e.time, e.energy);
      res.process_energy[c] += e.energy;
      res.hw_energy += e.energy;
      if (transition_hook_)
        transition_hook_({task, e.path, e.time,
                          static_cast<double>(config_.hw_reaction_cycles),
                          e.energy, true});
    }
    flush_gate_cycles_ += flushed[i].gate_cycles;
  }
}

sim::SimTime CoSimMaster::coherence_traffic(int core, sim::SimTime now,
                                            std::vector<bus::BusRequest>& reqs,
                                            RunResults& res) {
  Cycles penalty = 0;
  Joules energy = 0.0;
  std::vector<bus::BusRequest> control;
  for (const bus::BusRequest& rq : reqs) {
    const auto bytes =
        static_cast<std::uint32_t>(rq.data.empty() ? 4u : rq.data.size());
    const cache::CoherentAccessResult co =
        cache_->data_access(core, rq.write, rq.addr, bytes);
    penalty += co.penalty_cycles;
    energy += co.energy;
    control.insert(control.end(), co.traffic.begin(), co.traffic.end());
  }
  if (energy > 0.0) {
    trace_.record(cache_component_, now, energy);
    res.cache_energy += energy;
  }
  // Invalidation/writeback messages ride the interconnect with the data
  // transfer they were caused by.
  reqs.insert(reqs.end(), std::make_move_iterator(control.begin()),
              std::make_move_iterator(control.end()));
  return static_cast<sim::SimTime>(penalty);
}

RunResults CoSimMaster::run_separate(const sim::Stimulus& stimulus) {
  assert(prepared_);
  check_structural_config();
  const auto wall0 = std::chrono::steady_clock::now();

  // ---- phase 1: timing-independent behavioral simulation, trace capture ----
  reset_runtime_state();
  stimulus.load_into(queue_);
  std::vector<std::vector<cfsm::ReactionInputs>> traces(net_->cfsm_count());
  std::uint64_t reactions = 0;
  bool truncated = false;
  std::vector<sim::EventOccurrence> occs;  // instant buffer, reused per pop
  while (!queue_.empty()) {
    if (reactions >= config_.max_reactions) {
      truncated = true;
      break;
    }
    queue_.pop_instant(occs);
    const sim::SimTime t = occs.front().time;
    for (const auto& o : occs) {
      latch_occurrence(o);
      for (const auto& hook : environment_hooks_) hook(o, queue_);
    }
    std::vector<cfsm::CfsmId> triggered;
    std::vector<cfsm::ReactionInputs> trig_inputs(net_->cfsm_count());
    for (const auto& o : occs) {
      for (const cfsm::CfsmId r :
           receivers_by_event_[static_cast<std::size_t>(o.event)]) {
        auto& in = trig_inputs[static_cast<std::size_t>(r)];
        if (in.empty()) triggered.push_back(r);
        in.set(o.event, o.value);
      }
    }
    std::sort(triggered.begin(), triggered.end());
    for (const cfsm::CfsmId task : triggered) {
      ++reactions;
      const cfsm::ReactionInputs inputs =
          merge_inputs(task, trig_inputs[static_cast<std::size_t>(task)]);
      auto& st = state_[static_cast<std::size_t>(task)];
      const cfsm::Reaction reaction = net_->cfsm(task).react(inputs, st);
      traces[static_cast<std::size_t>(task)].push_back(inputs);
      // Nominal unit delay: every transition takes one cycle.
      for (const auto& em : reaction.emissions)
        queue_.post(t + 1, em.event, em.value, task);
    }
  }

  // ---- phase 2: independent per-component estimation on the traces ---------
  RunResults res;
  res.truncated = truncated;
  res.process_energy.assign(net_->cfsm_count(), 0.0);
  res.reactions = reactions;
  for (std::size_t c = 0; c < net_->cfsm_count(); ++c) {
    const auto task = static_cast<cfsm::CfsmId>(c);
    cfsm::CfsmState st = net_->cfsm(task).make_state();
    Joules e = 0.0;
    if (is_sw(task)) {
      for (const auto& inputs : traces[c]) {
        const cfsm::CfsmState pre = st;
        const cfsm::Reaction reaction = net_->cfsm(task).react(inputs, st);
        if (reaction.trace.empty()) continue;
        e += sw_backend_of(task)->replay(task, inputs, pre) +
             rtos_.dispatch_energy();
        ++res.sw_reactions;
      }
      res.cpu_energy += e;
    } else {
      HwBackend* hw = hw_backend_for_[c];
      hw->separate_reset(task);
      for (const auto& inputs : traces[c]) {
        const cfsm::Reaction reaction = net_->cfsm(task).react(inputs, st);
        if (reaction.trace.empty()) {
          hw->separate_reset(task);
          continue;
        }
        e += hw->separate_step(task, inputs);
        ++res.hw_reactions;
      }
      res.hw_energy += e;
    }
    res.process_energy[c] = e;
  }
  res.total_energy = res.cpu_energy + res.hw_energy;
  for (SwBackend* sw : sw_backends_) sw->stats(res);
  if (hw_gate_) hw_gate_->stats(res);
  if (hw_rtl_) hw_rtl_->stats(res);
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return res;
}

const MacroModelLibrary& CoSimMaster::macromodel() const {
  assert(prepared_);
  return macromodel_;
}

void CoSimMaster::set_macromodel(MacroModelLibrary library) {
  macromodel_ = std::move(library);
  mm_memo_.assign(net_->cfsm_count(), {});
}

cfsm::PathTable& CoSimMaster::path_table(cfsm::CfsmId task) {
  return path_tables_.at(static_cast<std::size_t>(task));
}

SwBackend* CoSimMaster::sw_backend_of(cfsm::CfsmId task) const {
  if (sw_for_core_.empty()) return nullptr;
  if (SwBackend* b = sw_for_core_[core_of_.at(static_cast<std::size_t>(task))])
    return b;
  // Hardware tasks sit on core 0 by default; fall back to any software
  // backend so image lookups keep their "nullptr when unmapped" semantics.
  return sw_backends_.empty() ? nullptr : sw_backends_.front();
}

const swsyn::SwImage* CoSimMaster::sw_image(cfsm::CfsmId task) const {
  SwBackend* sw = sw_backend_of(task);
  return sw ? sw->image(task) : nullptr;
}

const hwsyn::HwImage* CoSimMaster::hw_image(cfsm::CfsmId task) const {
  const HwBackend* hw = hw_backend_for_.at(static_cast<std::size_t>(task));
  return hw ? hw->image(task) : nullptr;
}

std::vector<const ComponentEstimator*> CoSimMaster::backends() const {
  std::vector<const ComponentEstimator*> out;
  out.reserve(owned_backends_.size());
  for (const auto& b : owned_backends_) out.push_back(b.get());
  return out;
}

CoSimMaster::WarmSnapshot CoSimMaster::export_warm_state() const {
  WarmSnapshot snap;
  snap.backends.reserve(owned_backends_.size());
  for (const auto& b : owned_backends_)
    snap.backends.push_back(b->export_warm_state());
  snap.ecache = ecache_.export_entries();
  snap.ecache_hits = ecache_.hits();
  snap.ecache_simulations = ecache_.simulations();
  return snap;
}

bool CoSimMaster::import_warm_state(const WarmSnapshot& snap) {
  if (!prepared_ || snap.backends.size() != owned_backends_.size())
    return false;
  for (std::size_t i = 0; i < owned_backends_.size(); ++i)
    owned_backends_[i]->import_warm_state(snap.backends[i]);
  ecache_.import_entries(snap.ecache, snap.ecache_hits,
                         snap.ecache_simulations);
  return true;
}

ComponentEstimator::WarmCacheCounters CoSimMaster::warm_cache_counters()
    const {
  ComponentEstimator::WarmCacheCounters sum;
  for (const auto& b : owned_backends_) {
    const ComponentEstimator::WarmCacheCounters c = b->warm_cache_counters();
    sum.hits += c.hits;
    sum.fills += c.fills;
  }
  return sum;
}

}  // namespace socpower::core
