#include "core/macromodel.hpp"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace socpower::core {

using swsyn::MacroOp;

MacroModelLibrary MacroModelLibrary::characterize(
    const iss::InstructionPowerModel& model, const iss::IssConfig& config) {
  iss::Iss scratch(model, config);
  constexpr std::uint32_t kCodeBase = 0x100;

  auto measure = [&scratch](const iss::Program& prog) {
    scratch.load_program(prog, kCodeBase);
    scratch.reset_cpu();
    scratch.set_pc(kCodeBase);
    const iss::RunResult r = scratch.run();
    assert(r.halted && "characterization template did not halt");
    return r;
  };

  const iss::Program empty = swsyn::empty_template();
  const iss::RunResult base = measure(empty);

  MacroModelLibrary lib;
  for (std::size_t i = 0; i < swsyn::kNumMacroOps; ++i) {
    const auto op = static_cast<MacroOp>(i);
    const iss::Program tpl = swsyn::characterization_template(op);
    const iss::RunResult r = measure(tpl);
    MacroCost c;
    c.cycles = static_cast<double>(r.cycles) - static_cast<double>(base.cycles);
    c.energy = r.energy - base.energy;
    c.size_bytes = static_cast<std::uint32_t>(
        (tpl.size() - empty.size()) * iss::kInstrBytes);
    if (c.cycles < 0) c.cycles = 0;
    if (c.energy < 0) c.energy = 0;
    lib.costs_[i] = c;
  }
  return lib;
}

const MacroCost& MacroModelLibrary::cost(MacroOp op) const {
  return costs_[static_cast<std::size_t>(op)];
}

void MacroModelLibrary::set_cost(MacroOp op, MacroCost cost) {
  costs_[static_cast<std::size_t>(op)] = cost;
}

PathEstimate MacroModelLibrary::estimate(
    std::span<const MacroOp> stream) const {
  PathEstimate e;
  for (const MacroOp op : stream) {
    const MacroCost& c = costs_[static_cast<std::size_t>(op)];
    e.cycles += c.cycles;
    e.energy += c.energy;
  }
  return e;
}

std::string MacroModelLibrary::to_parameter_file() const {
  std::string out;
  out += ".unit_time cycle\n.unit_size byte\n.unit_energy nJ\n";
  char line[96];
  for (std::size_t i = 0; i < swsyn::kNumMacroOps; ++i) {
    std::snprintf(line, sizeof line, ".time %s %.6g\n",
                  swsyn::macro_op_name(static_cast<MacroOp>(i)),
                  costs_[i].cycles);
    out += line;
  }
  for (std::size_t i = 0; i < swsyn::kNumMacroOps; ++i) {
    std::snprintf(line, sizeof line, ".size %s %u\n",
                  swsyn::macro_op_name(static_cast<MacroOp>(i)),
                  costs_[i].size_bytes);
    out += line;
  }
  for (std::size_t i = 0; i < swsyn::kNumMacroOps; ++i) {
    std::snprintf(line, sizeof line, ".energy %s %.6g\n",
                  swsyn::macro_op_name(static_cast<MacroOp>(i)),
                  to_nanojoules(costs_[i].energy));
    out += line;
  }
  return out;
}

std::optional<MacroModelLibrary> MacroModelLibrary::from_parameter_file(
    const std::string& text, std::string* error) {
  MacroModelLibrary lib;
  std::istringstream in(text);
  std::string directive;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& msg) {
    if (error) *error = "line " + std::to_string(line_no) + ": " + msg;
    return std::nullopt;
  };
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    if (!(ls >> directive)) continue;  // blank line
    if (directive == ".unit_time" || directive == ".unit_size" ||
        directive == ".unit_energy") {
      std::string unit;
      if (!(ls >> unit)) return fail("missing unit");
      if (directive == ".unit_time" && unit != "cycle")
        return fail("unsupported time unit " + unit);
      if (directive == ".unit_size" && unit != "byte")
        return fail("unsupported size unit " + unit);
      if (directive == ".unit_energy" && unit != "nJ")
        return fail("unsupported energy unit " + unit);
      continue;
    }
    if (directive != ".time" && directive != ".size" &&
        directive != ".energy")
      return fail("unknown directive " + directive);
    std::string name;
    double value = 0;
    if (!(ls >> name >> value)) return fail("malformed entry");
    const MacroOp op = swsyn::macro_op_from_name(name.c_str());
    if (op == MacroOp::kMacroOpCount)
      return fail("unknown macro-op " + name);
    MacroCost& c = lib.costs_[static_cast<std::size_t>(op)];
    if (directive == ".time")
      c.cycles = value;
    else if (directive == ".size")
      c.size_bytes = static_cast<std::uint32_t>(value);
    else
      c.energy = from_nanojoules(value);
  }
  if (error) error->clear();
  return lib;
}

}  // namespace socpower::core
