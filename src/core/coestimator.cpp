#include "core/coestimator.hpp"

namespace socpower::core {

CoEstimator::CoEstimator(const cfsm::Network* network, CoEstimatorConfig config)
    : master_(network, std::move(config)) {}

CoEstimator::~CoEstimator() = default;

void CoEstimator::map_sw(cfsm::CfsmId task, int rtos_priority) {
  master_.map_sw(task, rtos_priority);
}

void CoEstimator::map_sw(cfsm::CfsmId task, unsigned core, int rtos_priority) {
  master_.map_sw(task, core, rtos_priority);
}

void CoEstimator::map_hw(cfsm::CfsmId task, HwEstimatorKind kind) {
  master_.map_hw(task, kind);
}

bool CoEstimator::is_sw(cfsm::CfsmId task) const { return master_.is_sw(task); }

void CoEstimator::set_traffic_hook(TrafficHook hook) {
  master_.set_traffic_hook(std::move(hook));
}

void CoEstimator::set_transition_hook(TransitionHook hook) {
  master_.set_transition_hook(std::move(hook));
}

void CoEstimator::set_environment_hook(EnvironmentHook hook) {
  master_.add_environment_hook(std::move(hook));
}

void CoEstimator::prepare() { master_.prepare(); }

RunResults CoEstimator::run(const sim::Stimulus& stimulus) {
  return master_.run(stimulus);
}

RunResults CoEstimator::run_separate(const sim::Stimulus& stimulus) {
  return master_.run_separate(stimulus);
}

const MacroModelLibrary& CoEstimator::macromodel() const {
  return master_.macromodel();
}

void CoEstimator::set_macromodel(MacroModelLibrary library) {
  master_.set_macromodel(std::move(library));
}

const EnergyCache& CoEstimator::energy_cache() const {
  return master_.energy_cache();
}

cfsm::PathTable& CoEstimator::path_table(cfsm::CfsmId task) {
  return master_.path_table(task);
}

const swsyn::SwImage* CoEstimator::sw_image(cfsm::CfsmId task) const {
  return master_.sw_image(task);
}

const cfsm::CfsmState& CoEstimator::process_state(cfsm::CfsmId task) const {
  return master_.process_state(task);
}

const hwsyn::HwImage* CoEstimator::hw_image(cfsm::CfsmId task) const {
  return master_.hw_image(task);
}

const sim::PowerTrace& CoEstimator::power_trace() const {
  return master_.power_trace();
}

const bus::BusScheduler& CoEstimator::bus_model() const {
  return master_.bus_scheduler();
}

CoEstimatorConfig& CoEstimator::config() { return master_.config(); }

const CoEstimatorConfig& CoEstimator::config() const {
  return master_.config();
}

std::vector<const ComponentEstimator*> CoEstimator::backends() const {
  return master_.backends();
}

CoSimMaster::WarmSnapshot CoEstimator::export_warm_state() const {
  return master_.export_warm_state();
}

bool CoEstimator::import_warm_state(const CoSimMaster::WarmSnapshot& snap) {
  return master_.import_warm_state(snap);
}

ComponentEstimator::WarmCacheCounters CoEstimator::warm_cache_counters()
    const {
  return master_.warm_cache_counters();
}

}  // namespace socpower::core
