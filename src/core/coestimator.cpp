#include "core/coestimator.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "telemetry/trace.hpp"
#include "util/thread_pool.hpp"

namespace socpower::core {

namespace {

constexpr sim::SimTime kInfTime = std::numeric_limits<sim::SimTime>::max();

/// Deterministic busy-work standing in for the IPC round-trip the paper's
/// multi-process setup pays per lower-level simulator invocation.
void sync_overhead(unsigned spins) {
  volatile unsigned sink = 0;
  for (unsigned i = 0; i < spins; ++i) sink = sink + 1;
}

}  // namespace

std::vector<cfsm::EmittedEvent> effective_emissions(
    std::vector<cfsm::EmittedEvent> ems) {
  // Stable sort groups duplicates while preserving emission order within
  // each event, so the last element of a group is the latest emission — the
  // one the receiver observes.
  std::stable_sort(ems.begin(), ems.end(),
                   [](const auto& a, const auto& b) { return a.event < b.event; });
  std::size_t w = 0;
  for (std::size_t i = 0; i < ems.size();) {
    std::size_t last = i;
    while (last + 1 < ems.size() && ems[last + 1].event == ems[i].event)
      ++last;
    ems[w++] = ems[last];
    i = last + 1;
  }
  ems.resize(w);
  return ems;
}

const char* acceleration_name(Acceleration a) {
  switch (a) {
    case Acceleration::kNone: return "none";
    case Acceleration::kCaching: return "caching";
    case Acceleration::kMacroModel: return "macromodel";
    case Acceleration::kSampling: return "sampling";
  }
  return "?";
}

std::string RunResults::summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "total=%s cpu=%s hw=%s bus=%s cache=%s  end=%llu cycles  "
      "reactions=%llu (sw=%llu hw=%llu) iss_calls=%llu wall=%.3fs%s",
      format_energy(total_energy).c_str(), format_energy(cpu_energy).c_str(),
      format_energy(hw_energy).c_str(), format_energy(bus_energy).c_str(),
      format_energy(cache_energy).c_str(),
      static_cast<unsigned long long>(end_time),
      static_cast<unsigned long long>(reactions),
      static_cast<unsigned long long>(sw_reactions),
      static_cast<unsigned long long>(hw_reactions),
      static_cast<unsigned long long>(iss_invocations), wall_seconds,
      truncated ? " [TRUNCATED]" : "");
  return buf;
}

CoEstimator::CoEstimator(const cfsm::Network* network,
                         CoEstimatorConfig config)
    : net_(network), config_(config),
      rtos_(config.rtos, config.electrical),
      ecache_(config.energy_cache) {
  impl_is_sw_.resize(net_->cfsm_count());
}

CoEstimator::~CoEstimator() = default;

void CoEstimator::map_sw(cfsm::CfsmId task, int rtos_priority) {
  assert(!prepared_);
  impl_is_sw_.at(static_cast<std::size_t>(task)) = true;
  rtos_.set_priority(task, rtos_priority);
}

void CoEstimator::map_hw(cfsm::CfsmId task, HwEstimatorKind kind) {
  assert(!prepared_);
  impl_is_sw_.at(static_cast<std::size_t>(task)) = false;
  if (hw_kind_.size() < net_->cfsm_count())
    hw_kind_.assign(net_->cfsm_count(), HwEstimatorKind::kGateLevel);
  hw_kind_[static_cast<std::size_t>(task)] = kind;
}

bool CoEstimator::is_sw(cfsm::CfsmId task) const {
  const auto& m = impl_is_sw_.at(static_cast<std::size_t>(task));
  assert(m.has_value() && "process not mapped to HW or SW");
  return *m;
}

void CoEstimator::prepare() {
  assert(!prepared_);
  assert(net_->validate().empty() && "invalid CFSM network");

  const iss::InstructionPowerModel model =
      config_.data_nj_per_toggle > 0.0
          ? iss::InstructionPowerModel::dsp_like(config_.data_nj_per_toggle,
                                                 config_.electrical)
          : iss::InstructionPowerModel::sparclite(config_.electrical);
  iss_ = std::make_unique<iss::Iss>(model, config_.iss);
  macromodel_ = MacroModelLibrary::characterize(model, config_.iss);

  sw_images_.resize(net_->cfsm_count());
  hw_units_.resize(net_->cfsm_count());
  path_tables_.resize(net_->cfsm_count());
  std::uint32_t next_code_word = 16;
  std::uint32_t next_data_base = 0x4000;
  for (std::size_t c = 0; c < net_->cfsm_count(); ++c) {
    const auto task = static_cast<cfsm::CfsmId>(c);
    if (is_sw(task)) {
      auto img = std::make_unique<swsyn::SwImage>(
          swsyn::compile_cfsm(net_->cfsm(task), next_code_word,
                              next_data_base));
      next_code_word +=
          static_cast<std::uint32_t>(img->code.size()) + 16;
      next_data_base += (img->data_bytes + 15u) & ~15u;
      assert((next_code_word + 1) * iss::kInstrBytes <
             config_.iss.memory_bytes);
      assert(next_data_base < config_.iss.memory_bytes);
      iss_->load_program(img->code, img->code_base_word);
      sw_images_[c] = std::move(img);
    } else {
      auto unit = std::make_unique<HwUnit>();
      unit->image = hwsyn::synthesize_cfsm(net_->cfsm(task));
      unit->sim = std::make_unique<hw::GateSim>(
          unit->image.netlist.get(), hw::TechParams::generic_250nm(),
          config_.electrical);
      unit->kind = c < hw_kind_.size() ? hw_kind_[c]
                                       : HwEstimatorKind::kGateLevel;
      if (unit->kind == HwEstimatorKind::kRtl && !rtl_power_) {
        hwsyn::RtlPowerConfig rp;
        rp.electrical = config_.electrical;
        rtl_power_ = std::make_unique<hwsyn::RtlPowerEstimator>(rp);
      }
      hw_units_[c] = std::move(unit);
    }
  }

  // Power-trace components: one per process, plus bus and cache.
  trace_ = sim::PowerTrace(config_.electrical);
  process_component_.clear();
  for (std::size_t c = 0; c < net_->cfsm_count(); ++c)
    process_component_.push_back(trace_.add_component(net_->cfsm(
        static_cast<cfsm::CfsmId>(c)).name()));
  bus_component_ = trace_.add_component("bus");
  cache_component_ = trace_.add_component("icache");

  receivers_by_event_.clear();
  for (std::size_t e = 0; e < net_->event_count(); ++e)
    receivers_by_event_.push_back(
        net_->receivers(static_cast<cfsm::EventId>(e)));
  mm_memo_.assign(net_->cfsm_count(), {});

  prepared_ = true;
}

void CoEstimator::reset_runtime_state() {
  trace_.reset();
  trace_.set_keep_samples(config_.keep_power_samples);
  icache_ = std::make_unique<cache::CacheSim>(config_.icache);
  bus_ = std::make_unique<bus::BusScheduler>(config_.bus);
  bus_->set_keep_grant_times(config_.keep_power_samples);
  ecache_ = EnergyCache(config_.energy_cache);
  sampler_.assign(net_->cfsm_count(),
                  DynamicCompactionStream(config_.sampling));
  state_.clear();
  for (std::size_t c = 0; c < net_->cfsm_count(); ++c) {
    state_.push_back(net_->cfsm(static_cast<cfsm::CfsmId>(c)).make_state());
    if (hw_units_[c]) {
      hw_units_[c]->sim->reset();
      hw_units_[c]->registers_dirty = false;
      hw_units_[c]->batch.clear();
    }
  }
  latched_.assign(net_->event_count(), std::nullopt);
  queue_.clear();
  sw_pending_.clear();
  sw_bus_ = {};
  cpu_blocked_ = false;
  cpu_free_at_ = 0;
  job_to_wait_.clear();
  bus_waits_.clear();
  iss_->reset_cpu();
}

cfsm::ReactionInputs CoEstimator::merge_inputs(
    cfsm::CfsmId task, const cfsm::ReactionInputs& trigger) const {
  cfsm::ReactionInputs merged;
  // Sampled inputs first: the latest latched value of each sampled event
  // (POLIS valued events persist); trigger events override.
  for (const cfsm::EventId e : net_->cfsm(task).sampled_inputs()) {
    const auto& v = latched_[static_cast<std::size_t>(e)];
    if (v) merged.set(e, *v);
  }
  for (const auto& [e, v] : trigger.all()) merged.set(e, v);
  return merged;
}

void CoEstimator::latch_occurrence(const sim::EventOccurrence& occ) {
  latched_[static_cast<std::size_t>(occ.event)] = occ.value;
}

CoEstimator::TransitionCost CoEstimator::measured_or_accelerated(
    cfsm::CfsmId task, cfsm::PathId path,
    const std::function<TransitionCost()>& simulate,
    const std::vector<swsyn::MacroOp>* macro_stream) {
  switch (config_.accel) {
    case Acceleration::kNone:
      return simulate();
    case Acceleration::kCaching: {
      if (const auto c = ecache_.lookup(task, path)) {
        sync_overhead(config_.cache_hit_spin);
        return {c->cycles, c->energy, false};
      }
      TransitionCost cost = simulate();
      ecache_.record(task, path, static_cast<Cycles>(cost.cycles),
                     cost.energy);
      return cost;
    }
    case Acceleration::kMacroModel: {
      if (macro_stream != nullptr) {
        const PathEstimate est = macromodel_.estimate(*macro_stream);
        return {est.cycles, est.energy, false};
      }
      // Hardware parts have no software macro-model; simulate them.
      return simulate();
    }
    case Acceleration::kSampling: {
      const bool do_sim = sampler_[static_cast<std::size_t>(task)].feed(
          static_cast<std::uint32_t>(path));
      if (!do_sim) {
        if (const auto m = ecache_.mean(task, path))
          return {m->cycles, m->energy, false};
        // Unseen path: must simulate to bootstrap the extrapolation.
      }
      TransitionCost cost = simulate();
      ecache_.record(task, path, static_cast<Cycles>(cost.cycles),
                     cost.energy);
      return cost;
    }
  }
  return simulate();
}

CoEstimator::TransitionCost CoEstimator::sw_transition_cost(
    cfsm::CfsmId task, const cfsm::ReactionInputs& inputs,
    const cfsm::CfsmState& pre_state, const cfsm::Reaction& reaction,
    cfsm::PathId path) {
  const swsyn::SwImage& img = *sw_images_[static_cast<std::size_t>(task)];
  if (config_.accel == Acceleration::kMacroModel) {
    // The macro-model annotates the behavioral model: the first execution of
    // a path prices its macro-op stream from the parameter library; later
    // executions are O(1) lookups. The ISS is never invoked.
    static telemetry::Counter& skipped =
        telemetry::registry().counter("macromodel.skipped_iss_calls");
    static telemetry::Counter& annotations =
        telemetry::registry().counter("macromodel.path_annotations");
    skipped.add();
    auto& memo = mm_memo_[static_cast<std::size_t>(task)];
    if (static_cast<std::size_t>(path) >= memo.size())
      memo.resize(static_cast<std::size_t>(path) + 1);
    auto& slot = memo[static_cast<std::size_t>(path)];
    if (!slot) {
      const auto stream =
          swsyn::macro_stream_for_trace(net_->cfsm(task), reaction.trace);
      slot = macromodel_.estimate(stream);
      annotations.add();
    }
    return {slot->cycles, slot->energy, false};
  }

  auto simulate = [&]() -> TransitionCost {
    sync_overhead(config_.sync_spin);
    swsyn::stage_reaction(*iss_, img, inputs, pre_state);
    // Reset the CPU's inter-invocation circuit state so a path's cost is a
    // pure function of the path — the property that makes caching exact for
    // data-independent power models (paper Section 5.2).
    iss_->reset_cpu();
    iss_->set_pc(img.code_base_word);
    const iss::RunResult r = iss_->run();
    assert(r.halted && "software transition did not reach HALT");
    ++iss_invocations_;
    iss_instructions_ += r.instructions;
    if (config_.verify_lowlevel) {
      const auto iss_em = swsyn::read_emissions(*iss_, img);
      assert(iss_em.size() == reaction.emissions.size() &&
             "ISS/behavioral emission mismatch");
      for (std::size_t i = 0; i < iss_em.size(); ++i) {
        assert(iss_em[i].event == reaction.emissions[i].event);
        assert(iss_em[i].value == reaction.emissions[i].value);
      }
      cfsm::CfsmState iss_vars = pre_state;
      swsyn::read_vars(*iss_, img, iss_vars);
      assert(iss_vars.vars == state_[static_cast<std::size_t>(task)].vars &&
             "ISS/behavioral variable state mismatch");
    }
    return {static_cast<double>(r.cycles), r.energy, true};
  };
  return measured_or_accelerated(task, path, simulate, nullptr);
}

CoEstimator::TransitionCost CoEstimator::hw_transition_cost(
    cfsm::CfsmId task, const cfsm::ReactionInputs& inputs,
    const cfsm::Reaction& reaction, cfsm::PathId path) {
  HwUnit& unit = *hw_units_[static_cast<std::size_t>(task)];
  // The caller resynchronized the register state (if dirty) before running
  // the behavioral reaction, so the netlist sees the correct pre-state.
  auto simulate = [&]() -> TransitionCost {
    sync_overhead(config_.sync_spin);
    if (unit.kind == HwEstimatorKind::kRtl) {
      // RT-level estimation: price the executed path's operator activations;
      // no gate evaluation (and nothing to functionally verify against).
      const Joules e = rtl_power_->estimate_reaction(net_->cfsm(task),
                                                     reaction.trace, inputs);
      return {static_cast<double>(config_.hw_reaction_cycles), e, true};
    }
    hwsyn::stage_hw_reaction(*unit.sim, unit.image, inputs);
    const hw::CycleResult r = unit.sim->step();
    ++gate_cycles_;
    if (config_.verify_lowlevel) {
      const auto hw_em =
          effective_emissions(hwsyn::read_hw_emissions(*unit.sim, unit.image));
      auto beh_em = effective_emissions(reaction.emissions);
      assert(hw_em.size() == beh_em.size() &&
             "gate-sim/behavioral emission mismatch");
      for (std::size_t i = 0; i < hw_em.size(); ++i) {
        assert(hw_em[i].event == beh_em[i].event);
        assert(hw_em[i].value == beh_em[i].value);
      }
      const auto& st = state_[static_cast<std::size_t>(task)];
      for (std::size_t v = 0; v < st.vars.size(); ++v)
        assert(hwsyn::read_hw_var(*unit.sim, unit.image,
                                  static_cast<cfsm::VarId>(v)) ==
               st.vars[v]);
    }
    return {static_cast<double>(config_.hw_reaction_cycles), r.energy, true};
  };
  // Table 1 accelerates the ISS side only (zero accuracy loss); HW-side
  // caching/sampling is the opt-in ablation.
  TransitionCost cost = config_.accelerate_hw
                            ? measured_or_accelerated(task, path, simulate,
                                                      nullptr)
                            : simulate();
  unit.registers_dirty = !cost.simulated;
  return cost;
}

RunResults CoEstimator::run(const sim::Stimulus& stimulus) {
  assert(prepared_);
  telemetry::registry().counter("coest.runs").add();
  SOCPOWER_TRACE_SPAN("coest.run");
  const auto wall0 = std::chrono::steady_clock::now();
  reset_runtime_state();
  iss_invocations_ = 0;
  iss_instructions_ = 0;
  gate_cycles_ = 0;
  stimulus.load_into(queue_);

  RunResults res;
  res.process_energy.assign(net_->cfsm_count(), 0.0);

  auto charge_process = [&](cfsm::CfsmId task, sim::SimTime t, Joules e) {
    trace_.record(process_component_[static_cast<std::size_t>(task)], t, e);
    res.process_energy[static_cast<std::size_t>(task)] += e;
    if (is_sw(task))
      res.cpu_energy += e;
    else
      res.hw_energy += e;
  };

  sim::SimTime now = 0;
  std::vector<sim::EventOccurrence> occs;  // instant buffer, reused per pop
  while (true) {
    if (res.reactions >= config_.max_reactions) {
      res.truncated = true;
      break;
    }
    const sim::SimTime t_queue = queue_.empty() ? kInfTime : queue_.next_time();
    const sim::SimTime t_bus = sw_bus_.active ? sw_bus_.issue_at : kInfTime;
    const sim::SimTime t_sched =
        bus_->has_work() ? bus_->next_boundary() : kInfTime;
    sim::SimTime t_cpu = kInfTime;
    if (!sw_pending_.empty() && !sw_bus_.active && !cpu_blocked_) {
      sim::SimTime earliest = kInfTime;
      for (const auto& p : sw_pending_)
        earliest = std::min(earliest, p.ready_at);
      t_cpu = std::max(cpu_free_at_, earliest);
    }
    if (t_queue == kInfTime && t_cpu == kInfTime && t_bus == kInfTime &&
        t_sched == kInfTime)
      break;

    if (t_sched <= t_queue && t_sched <= t_bus && t_sched <= t_cpu) {
      // ---- advance the bus arbiter to its next grant boundary --------------
      now = std::max(now, t_sched);
      for (const auto& c : bus_->advance(t_sched)) {
        const auto it = job_to_wait_.find(c.id);
        assert(it != job_to_wait_.end());
        BusWait& w = bus_waits_[it->second];
        job_to_wait_.erase(it);
        trace_.record(bus_component_, c.result.end, c.result.energy);
        res.bus_energy += c.result.energy;
        w.last_end = std::max(w.last_end, c.result.end);
        if (--w.remaining != 0) continue;
        const sim::SimTime done = std::max(w.last_end, w.earliest_done);
        if (w.is_cpu) {
          // Programmed I/O: the CPU stalls until its transfer completes,
          // drawing a low-power wait current — this is how arbitration
          // priorities and DMA sizing feed back into software energy even
          // when the code is unchanged (the paper's Figure 7 effect).
          if (done > w.cpu_issue) {
            const Joules wait_e = config_.bus_wait_current_ma * 1e-3 *
                                  config_.electrical.vdd_volts *
                                  static_cast<double>(done - w.cpu_issue) /
                                  config_.electrical.clock_hz;
            charge_process(w.task, w.cpu_issue, wait_e);
          }
          cpu_blocked_ = false;
          cpu_free_at_ = done;
        }
        for (const auto& em : w.emissions)
          queue_.post(done, em.event, em.value, w.task);
      }
      continue;
    }

    if (t_bus < t_queue && t_bus <= t_cpu) {
      // ---- issue the blocked CPU's shared-memory traffic --------------------
      now = sw_bus_.issue_at;
      BusWait w;
      w.task = sw_bus_.task;
      w.is_cpu = true;
      w.emissions = std::move(sw_bus_.emissions);
      w.remaining = sw_bus_.requests.size();
      w.earliest_done = now;
      w.cpu_issue = now;
      bus_waits_.push_back(std::move(w));
      for (auto& rq : sw_bus_.requests)
        job_to_wait_[bus_->submit(now, std::move(rq))] =
            bus_waits_.size() - 1;
      cpu_blocked_ = true;
      sw_bus_ = {};
      continue;
    }

    if (t_queue <= t_cpu) {
      // ---- process one event instant --------------------------------------
      queue_.pop_instant(occs);
      now = occs.front().time;
      for (const auto& o : occs) {
        latch_occurrence(o);
        for (const auto& hook : environment_hooks_) hook(o, queue_);
      }

      // Group occurrences by triggered process.
      std::vector<cfsm::CfsmId> triggered;
      std::vector<cfsm::ReactionInputs> trig_inputs(net_->cfsm_count());
      for (const auto& o : occs) {
        for (const cfsm::CfsmId r : receivers_by_event_
                 [static_cast<std::size_t>(o.event)]) {
          auto& in = trig_inputs[static_cast<std::size_t>(r)];
          if (in.empty()) triggered.push_back(r);
          in.set(o.event, o.value);
        }
      }
      std::sort(triggered.begin(), triggered.end());

      for (const cfsm::CfsmId task : triggered) {
        const auto& trig = trig_inputs[static_cast<std::size_t>(task)];
        if (is_sw(task)) {
          sw_pending_.push_back({now, task, trig});
          continue;
        }
        // Hardware reaction at this instant.
        ++res.reactions;
        ++res.hw_reactions;
        const cfsm::ReactionInputs inputs = merge_inputs(task, trig);
        auto& st = state_[static_cast<std::size_t>(task)];
        const cfsm::CfsmState pre_state = st;
        HwUnit& unit = *hw_units_[static_cast<std::size_t>(task)];
        if (hw_online() && unit.registers_dirty) {
          hwsyn::sync_hw_vars(*unit.sim, unit.image, pre_state);
          unit.registers_dirty = false;
        }
        const cfsm::Reaction reaction =
            net_->cfsm(task).react(inputs, st);
        if (!hw_online()) {
          // Batch mode: buffer the vector; energy is computed in one pass
          // after the co-simulation (HW latency is constant, so nothing
          // downstream needs it now).
          HwBatchEntry entry;
          entry.time = now;
          entry.inputs = inputs;
          if (!reaction.trace.empty())
            entry.path = path_tables_[static_cast<std::size_t>(task)].intern(
                reaction.trace);
          unit.batch.push_back(std::move(entry));
          if (reaction.trace.empty()) continue;
        } else {
          if (reaction.trace.empty()) {
            // Reset transition: re-initialize the netlist state.
            unit.sim->reset();
            continue;
          }
          const cfsm::PathId path =
              path_tables_[static_cast<std::size_t>(task)].intern(
                  reaction.trace);
          static telemetry::Counter& hw_transitions =
              telemetry::registry().counter("coest.transitions.hw");
          static telemetry::Counter& accel_served =
              telemetry::registry().counter("coest.accel_served");
          hw_transitions.add();
          TransitionCost cost;
          {
            SOCPOWER_TRACE_SPAN("coest.hw_transition", now,
                                static_cast<std::uint64_t>(task));
            cost = hw_transition_cost(task, inputs, reaction, path);
          }
          if (!cost.simulated) {
            ++res.cache_hits_served;
            accel_served.add();
          }
          charge_process(task, now, cost.energy);
          if (transition_hook_)
            transition_hook_({task, path, now, cost.cycles, cost.energy,
                              cost.simulated});
        }

        // Traffic goes to the grant-level arbiter; the reaction's emissions
        // wait for its last transfer when it has any.
        std::vector<bus::BusRequest> reqs;
        if (traffic_hook_) reqs = traffic_hook_(task, reaction, pre_state);
        const sim::SimTime latency = now + config_.hw_reaction_cycles;
        if (reqs.empty()) {
          for (const auto& em : reaction.emissions)
            queue_.post(latency, em.event, em.value, task);
        } else {
          BusWait w;
          w.task = task;
          w.emissions = reaction.emissions;
          w.remaining = reqs.size();
          w.earliest_done = latency;
          bus_waits_.push_back(std::move(w));
          for (auto& rq : reqs)
            job_to_wait_[bus_->submit(now, std::move(rq))] =
                bus_waits_.size() - 1;
        }
      }
      continue;
    }

    // ---- dispatch one software transition on the CPU ------------------------
    now = t_cpu;
    std::vector<cfsm::CfsmId> ready_tasks;
    std::vector<std::size_t> ready_idx;
    for (std::size_t i = 0; i < sw_pending_.size(); ++i) {
      if (sw_pending_[i].ready_at <= now) {
        ready_tasks.push_back(sw_pending_[i].task);
        ready_idx.push_back(i);
      }
    }
    assert(!ready_tasks.empty());
    const std::size_t pick = rtos_.pick_next(ready_tasks);
    const PendingSw pending = sw_pending_[ready_idx[pick]];
    sw_pending_.erase(sw_pending_.begin() +
                      static_cast<std::ptrdiff_t>(ready_idx[pick]));

    ++res.reactions;
    ++res.sw_reactions;
    const cfsm::CfsmId task = pending.task;
    const cfsm::ReactionInputs inputs =
        merge_inputs(task, pending.trigger_inputs);
    auto& st = state_[static_cast<std::size_t>(task)];
    const cfsm::CfsmState pre_state = st;
    const cfsm::Reaction reaction = net_->cfsm(task).react(inputs, st);

    // RTOS dispatch overhead.
    double cycles = static_cast<double>(rtos_.dispatch_cycles());
    Joules energy = rtos_.dispatch_energy();

    if (!reaction.trace.empty()) {
      const cfsm::PathId path =
          path_tables_[static_cast<std::size_t>(task)].intern(reaction.trace);
      static telemetry::Counter& sw_transitions =
          telemetry::registry().counter("coest.transitions.sw");
      static telemetry::Counter& accel_served =
          telemetry::registry().counter("coest.accel_served");
      sw_transitions.add();
      TransitionCost cost;
      {
        SOCPOWER_TRACE_SPAN("coest.sw_transition", now,
                            static_cast<std::uint64_t>(task));
        cost = sw_transition_cost(task, inputs, pre_state, reaction, path);
      }
      if (!cost.simulated) {
        ++res.cache_hits_served;
        accel_served.add();
      }
      cycles += cost.cycles;
      energy += cost.energy;
      if (transition_hook_)
        transition_hook_({task, path, now, cost.cycles, cost.energy,
                          cost.simulated});

      // Instruction-cache references come from the behavioral model's path
      // (Section 3), so they are issued whether or not the ISS ran.
      if (config_.enable_icache) {
        const auto addrs = swsyn::address_trace(
            *sw_images_[static_cast<std::size_t>(task)], reaction.trace);
        const cache::AccessStats cs = icache_->access_stream(addrs);
        cycles += static_cast<double>(cs.penalty_cycles);
        trace_.record(cache_component_, now, cs.energy);
        res.cache_energy += cs.energy;
      }
    }

    charge_process(task, now, energy);
    sim::SimTime end =
        now + static_cast<sim::SimTime>(std::llround(std::ceil(cycles)));
    if (end == now) end = now + 1;

    std::vector<bus::BusRequest> reqs;
    if (traffic_hook_ && !reaction.trace.empty())
      reqs = traffic_hook_(task, reaction, pre_state);
    if (reqs.empty()) {
      cpu_free_at_ = end;
      for (const auto& em : reaction.emissions)
        queue_.post(end, em.event, em.value, task);
    } else {
      // Defer the bus phase so it arbitrates in simulated-time order with
      // the hardware masters' traffic; the CPU blocks until completion.
      sw_bus_.active = true;
      sw_bus_.issue_at = end;
      sw_bus_.task = task;
      sw_bus_.requests = std::move(reqs);
      sw_bus_.emissions = reaction.emissions;
      cpu_free_at_ = end;  // refined to the transfer end when it is served
    }
  }

  if (!hw_online()) flush_hw_batches(res);

  res.end_time = std::max(now, cpu_free_at_);
  res.total_energy =
      res.cpu_energy + res.hw_energy + res.bus_energy + res.cache_energy;
  res.iss_invocations = iss_invocations_;
  res.iss_instructions = iss_instructions_;
  res.gate_sim_cycles = gate_cycles_;
  res.icache = icache_->totals();
  res.bus_totals = bus_->totals();
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return res;
}

void CoEstimator::flush_hw_batches(RunResults& res) {
  // Each HwUnit owns its gate simulator and batch vector, so the per-unit
  // replay is embarrassingly parallel. The shared pieces — gate_cycles_, the
  // PowerTrace, RunResults accumulation and the transition hook — are
  // accumulated per worker below and merged in component order afterwards,
  // so the reported energies (floating-point addition order included) are
  // identical for any thread count.
  struct FlushedEntry {
    sim::SimTime time = 0;
    cfsm::PathId path = cfsm::kNoPath;
    Joules energy = 0.0;
  };
  struct UnitFlush {
    std::vector<FlushedEntry> entries;
    std::uint64_t gate_cycles = 0;
  };

  std::vector<std::size_t> active;
  for (std::size_t c = 0; c < hw_units_.size(); ++c)
    if (hw_units_[c] && !hw_units_[c]->batch.empty()) active.push_back(c);
  if (active.empty()) return;

  SOCPOWER_TRACE_SPAN("coest.hw_flush");
  std::vector<UnitFlush> flushed(active.size());
  auto flush_unit = [&](std::size_t ai) {
    static telemetry::HistogramStat& batch_size =
        telemetry::registry().histogram("coest.hw_batch_size", 0.0, 1e6, 32);
    static telemetry::HistogramStat& flush_ms =
        telemetry::registry().histogram("coest.hw_flush_ms", 0.0, 1e4, 32);
    const std::size_t c = active[ai];
    HwUnit& unit = *hw_units_[c];
    UnitFlush& out = flushed[ai];
    const bool telem = telemetry::enabled();
    const auto flush0 = telem ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
    SOCPOWER_TRACE_SPAN("coest.hw_flush_unit", 0,
                        static_cast<std::uint64_t>(c));
    batch_size.observe(static_cast<double>(unit.batch.size()));
    out.entries.reserve(unit.batch.size());
    sync_overhead(config_.sync_spin);  // one batch hand-off per component
    unit.sim->reset();
    const auto task = static_cast<cfsm::CfsmId>(c);
    for (const HwBatchEntry& entry : unit.batch) {
      if (entry.path == cfsm::kNoPath) {
        unit.sim->reset();
        continue;
      }
      Joules energy;
      if (unit.kind == HwEstimatorKind::kRtl) {
        energy = rtl_power_->estimate_reaction(
            net_->cfsm(task), path_tables_[c].path(entry.path),
            entry.inputs);
      } else {
        hwsyn::stage_hw_reaction(*unit.sim, unit.image, entry.inputs);
        energy = unit.sim->step().energy;
        ++out.gate_cycles;
      }
      out.entries.push_back({entry.time, entry.path, energy});
    }
    unit.batch.clear();
    if (telem)
      flush_ms.observe(std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - flush0)
                           .count());
  };

  const auto threads = static_cast<unsigned>(std::min<std::size_t>(
      resolve_thread_count(config_.hw_flush_threads), active.size()));
  if (threads > 1) {
    ThreadPool pool(threads);
    pool.parallel_for(active.size(), flush_unit);
  } else {
    for (std::size_t ai = 0; ai < active.size(); ++ai) flush_unit(ai);
  }

  for (std::size_t ai = 0; ai < active.size(); ++ai) {
    const std::size_t c = active[ai];
    const auto task = static_cast<cfsm::CfsmId>(c);
    for (const FlushedEntry& e : flushed[ai].entries) {
      trace_.record(process_component_[c], e.time, e.energy);
      res.process_energy[c] += e.energy;
      res.hw_energy += e.energy;
      if (transition_hook_)
        transition_hook_({task, e.path, e.time,
                          static_cast<double>(config_.hw_reaction_cycles),
                          e.energy, true});
    }
    gate_cycles_ += flushed[ai].gate_cycles;
  }
}

RunResults CoEstimator::run_separate(const sim::Stimulus& stimulus) {
  assert(prepared_);
  const auto wall0 = std::chrono::steady_clock::now();

  // ---- phase 1: timing-independent behavioral simulation, trace capture ----
  reset_runtime_state();
  stimulus.load_into(queue_);
  std::vector<std::vector<cfsm::ReactionInputs>> traces(net_->cfsm_count());
  std::uint64_t reactions = 0;
  bool truncated = false;
  std::vector<sim::EventOccurrence> occs;  // instant buffer, reused per pop
  while (!queue_.empty()) {
    if (reactions >= config_.max_reactions) {
      truncated = true;
      break;
    }
    queue_.pop_instant(occs);
    const sim::SimTime t = occs.front().time;
    for (const auto& o : occs) {
      latch_occurrence(o);
      for (const auto& hook : environment_hooks_) hook(o, queue_);
    }
    std::vector<cfsm::CfsmId> triggered;
    std::vector<cfsm::ReactionInputs> trig_inputs(net_->cfsm_count());
    for (const auto& o : occs) {
      for (const cfsm::CfsmId r :
           receivers_by_event_[static_cast<std::size_t>(o.event)]) {
        auto& in = trig_inputs[static_cast<std::size_t>(r)];
        if (in.empty()) triggered.push_back(r);
        in.set(o.event, o.value);
      }
    }
    std::sort(triggered.begin(), triggered.end());
    for (const cfsm::CfsmId task : triggered) {
      ++reactions;
      const cfsm::ReactionInputs inputs =
          merge_inputs(task, trig_inputs[static_cast<std::size_t>(task)]);
      auto& st = state_[static_cast<std::size_t>(task)];
      const cfsm::Reaction reaction = net_->cfsm(task).react(inputs, st);
      traces[static_cast<std::size_t>(task)].push_back(inputs);
      // Nominal unit delay: every transition takes one cycle.
      for (const auto& em : reaction.emissions)
        queue_.post(t + 1, em.event, em.value, task);
    }
  }

  // ---- phase 2: independent per-component estimation on the traces ---------
  RunResults res;
  res.truncated = truncated;
  res.process_energy.assign(net_->cfsm_count(), 0.0);
  res.reactions = reactions;
  for (std::size_t c = 0; c < net_->cfsm_count(); ++c) {
    const auto task = static_cast<cfsm::CfsmId>(c);
    cfsm::CfsmState st = net_->cfsm(task).make_state();
    Joules e = 0.0;
    if (is_sw(task)) {
      const swsyn::SwImage& img = *sw_images_[c];
      for (const auto& inputs : traces[c]) {
        const cfsm::CfsmState pre = st;
        const cfsm::Reaction reaction = net_->cfsm(task).react(inputs, st);
        if (reaction.trace.empty()) continue;
        swsyn::stage_reaction(*iss_, img, inputs, pre);
        iss_->reset_cpu();
        iss_->set_pc(img.code_base_word);
        const iss::RunResult r = iss_->run();
        assert(r.halted);
        ++res.iss_invocations;
        res.iss_instructions += r.instructions;
        e += r.energy + rtos_.dispatch_energy();
        ++res.sw_reactions;
      }
      res.cpu_energy += e;
    } else {
      HwUnit& unit = *hw_units_[c];
      unit.sim->reset();
      for (const auto& inputs : traces[c]) {
        const cfsm::Reaction reaction = net_->cfsm(task).react(inputs, st);
        if (reaction.trace.empty()) {
          unit.sim->reset();
          continue;
        }
        hwsyn::stage_hw_reaction(*unit.sim, unit.image, inputs);
        e += unit.sim->step().energy;
        ++res.gate_sim_cycles;
        ++res.hw_reactions;
      }
      res.hw_energy += e;
    }
    res.process_energy[c] = e;
  }
  res.total_energy = res.cpu_energy + res.hw_energy;
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return res;
}

const MacroModelLibrary& CoEstimator::macromodel() const {
  assert(prepared_);
  return macromodel_;
}

void CoEstimator::set_macromodel(MacroModelLibrary library) {
  macromodel_ = std::move(library);
  mm_memo_.assign(net_->cfsm_count(), {});
}

cfsm::PathTable& CoEstimator::path_table(cfsm::CfsmId task) {
  return path_tables_.at(static_cast<std::size_t>(task));
}

const swsyn::SwImage* CoEstimator::sw_image(cfsm::CfsmId task) const {
  return sw_images_.at(static_cast<std::size_t>(task)).get();
}

const hwsyn::HwImage* CoEstimator::hw_image(cfsm::CfsmId task) const {
  const auto& u = hw_units_.at(static_cast<std::size_t>(task));
  return u ? &u->image : nullptr;
}

}  // namespace socpower::core
