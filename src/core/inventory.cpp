#include "core/inventory.hpp"

#include "util/table.hpp"

namespace socpower::core {

SystemInventory take_inventory(const cfsm::Network& network,
                               const CoEstimator& estimator) {
  SystemInventory inv;
  inv.events = network.event_count();
  for (std::size_t c = 0; c < network.cfsm_count(); ++c) {
    const auto id = static_cast<cfsm::CfsmId>(c);
    const cfsm::Cfsm& proc = network.cfsm(id);
    ProcessInventory p;
    p.name = proc.name();
    p.is_sw = estimator.is_sw(id);
    p.sgraph_nodes = proc.graph().node_count();
    p.variables = proc.vars().size();
    if (p.is_sw) {
      const swsyn::SwImage* img = estimator.sw_image(id);
      p.code_bytes = img->code_bytes();
      p.static_paths = proc.graph().enumerate_paths(100'000).size();
    } else {
      const hwsyn::HwImage* img = estimator.hw_image(id);
      p.gates = img->netlist->gate_count();
      p.flops = img->netlist->dff_count();
      p.nets = img->netlist->net_count();
    }
    inv.processes.push_back(std::move(p));
  }
  return inv;
}

std::string SystemInventory::render() const {
  TextTable t({"process", "impl", "nodes", "vars", "code (B)", "paths",
               "gates", "flops", "nets"});
  for (const auto& p : processes) {
    t.add_row({p.name, p.is_sw ? "SW" : "HW", std::to_string(p.sgraph_nodes),
               std::to_string(p.variables),
               p.is_sw ? std::to_string(p.code_bytes) : "-",
               p.is_sw ? std::to_string(p.static_paths) : "-",
               p.is_sw ? "-" : std::to_string(p.gates),
               p.is_sw ? "-" : std::to_string(p.flops),
               p.is_sw ? "-" : std::to_string(p.nets)});
  }
  std::string out = "system inventory (" + std::to_string(processes.size()) +
                    " processes, " + std::to_string(events) + " events):\n";
  out += t.render();
  return out;
}

}  // namespace socpower::core
