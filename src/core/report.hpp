// Run reporting: renders a co-estimation run the way the paper's framework
// displays it (Figure 2(b): "SW energy / HW energy / Bus energy" plus energy
// and power waveforms for the various parts of the system), and exports
// waveforms as CSV for external plotting.
#pragma once

#include <string>

#include "cfsm/cfsm.hpp"
#include "core/coestimator.hpp"

namespace socpower::core {

struct ReportOptions {
  /// Width of one waveform window in cycles; 0 picks ~64 windows.
  sim::SimTime window_cycles = 0;
  /// Bars in the ASCII waveform rendering.
  std::size_t waveform_width = 48;
  /// How many peak windows to list.
  std::size_t peaks = 3;
  bool include_waveforms = true;
};

/// Human-readable run report: per-process energy table with SW/HW/bus/cache
/// rollups, average power, and (when samples were kept) per-component ASCII
/// power waveforms with peak annotations.
[[nodiscard]] std::string render_report(const cfsm::Network& network,
                                        const CoEstimator& estimator,
                                        const RunResults& results,
                                        const ReportOptions& options = {});

/// CSV export of all component waveforms: one row per window,
/// "start_cycle,<component>...," in watts. Requires keep_power_samples.
[[nodiscard]] std::string waveforms_csv(const CoEstimator& estimator,
                                        sim::SimTime window_cycles);

}  // namespace socpower::core
