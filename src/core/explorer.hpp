// Two-phase design-space exploration.
//
// The paper's argument for macro-modeling is its *relative* accuracy: it
// preserves the ranking of design variants (Figure 6), so coarse exploration
// can run with the cheap estimator and only the shortlisted winners need the
// exact one. This helper packages that workflow: evaluate every point with
// the accelerated estimator, rank, re-evaluate the top-k exactly, and report
// both the final ranking and the fidelity of the coarse pass.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/coestimator.hpp"

namespace socpower::core {

struct ExplorationPoint {
  std::string label;
  /// Cheap estimate (typically Acceleration::kMacroModel or kCaching).
  std::function<RunResults()> run_coarse;
  /// Exact estimate (typically Acceleration::kNone). May be empty when the
  /// caller only wants the coarse ranking.
  std::function<RunResults()> run_exact;
  /// Cheapest estimate (typically the "hw.analytical" backend with an
  /// imported calibrated model) for the three-tier funnel's prefilter
  /// phase. May be empty — the prefilter then falls back to run_coarse,
  /// which keeps the funnel correct but not faster.
  std::function<RunResults()> run_analytical;
};

struct ExplorationOutcome {
  struct Entry {
    std::string label;
    Joules coarse_energy = 0.0;
    std::optional<Joules> exact_energy;  // set for verified entries
    std::size_t coarse_rank = 0;
  };
  /// All points, sorted by final energy (exact where available, else coarse).
  std::vector<Entry> ranked;
  /// Did the exact verification keep the coarse winner on top?
  bool winner_confirmed = true;
  /// Pearson correlation between coarse and exact energies over the
  /// verified subset (1.0 when fewer than two points were verified).
  double verification_correlation = 1.0;
  double coarse_seconds = 0.0;
  double exact_seconds = 0.0;
  /// Wall time of the analytical prefilter sweep (0 when it did not run).
  double analytical_seconds = 0.0;
  /// Candidates the prefilter kept for the coarse/verify phases (0 = the
  /// funnel did not run; ranked then covers every point).
  std::size_t prefilter_kept = 0;

  [[nodiscard]] const Entry& best() const { return ranked.front(); }
  [[nodiscard]] std::string render() const;
};

struct ExploreOptions {
  /// Worker threads for both phases (coarse sweep and exact verification).
  /// 1 = serial, 0 = one per hardware thread. Every ExplorationPoint thunk
  /// constructs its own CoEstimator, so points are independent; results are
  /// stored by point index and reduced in index order, making the outcome
  /// bit-identical to the serial path for any thread count. Point thunks
  /// that use random workloads must follow the Rng seeding contract
  /// (util/rng.hpp): one Rng per point, seeded from stable identifiers.
  unsigned threads = 1;
  /// Three-tier funnel: 0 = off (classic two-phase exploration over every
  /// point). K > 0 first evaluates EVERY point with run_analytical (falling
  /// back to run_coarse where unset), keeps the best K candidates, and runs
  /// the usual coarse/verify phases on those survivors only — through the
  /// identical two-phase reduction, so whenever the kept K contains the
  /// true coarse top-verify_top, the winner and the verified ranking are
  /// bit-identical to the non-prefiltered run (the survivors' coarse/exact
  /// energies are the same thunk evaluations either way). Ties in the
  /// analytical ranking break by point index. K >= points.size() degrades
  /// to the classic two-phase run.
  std::size_t analytical_prefilter = 0;
};

/// Runs the two-phase exploration. `verify_top` exact evaluations are spent
/// on the best coarse candidates (0 = coarse-only).
[[nodiscard]] ExplorationOutcome explore(
    const std::vector<ExplorationPoint>& points, std::size_t verify_top);
/// Same, with explicit options (threaded evaluation of both phases).
[[nodiscard]] ExplorationOutcome explore(
    const std::vector<ExplorationPoint>& points, std::size_t verify_top,
    const ExploreOptions& options);

struct ShardedExploreOptions {
  /// Worker processes. Each forked worker evaluates the design points
  /// assigned to its shard (point index modulo worker count, for both the
  /// coarse sweep and the exact shortlist) in its own address space; the
  /// master reduces the results in point-index order through the same
  /// reduction as explore(), so the outcome — winner, ranking, every energy
  /// bit — is identical to the serial path. A worker that dies or times out
  /// is dropped and its unanswered points are evaluated in the master
  /// (telemetry "dist.fallbacks"), which preserves results too: point
  /// thunks are deterministic wherever they run. 1 = serial explore(),
  /// 0 = one per hardware thread; platforms without fork degrade to serial.
  unsigned workers = 0;
  /// Per-reply timeout (ms) before a worker is declared dead. Generous:
  /// one design point can legitimately co-simulate for minutes.
  unsigned reply_timeout_ms = 600'000;
  /// Fault injection for tests: the worker with this shard index exits
  /// abruptly on its first request. -1 = off.
  int debug_crash_worker = -1;
  /// Three-tier funnel, exactly as ExploreOptions::analytical_prefilter:
  /// the prefilter sweep shards over the same worker fleet as the coarse
  /// and verify phases (one phase-2 request per point), and the survivors'
  /// phases reduce through the identical code path.
  std::size_t analytical_prefilter = 0;
};

/// Two-phase exploration sharded over forked worker processes (implemented
/// in src/dist/; declared here because it is the process-level analogue of
/// ExploreOptions::threads).
[[nodiscard]] ExplorationOutcome explore_sharded(
    const std::vector<ExplorationPoint>& points, std::size_t verify_top,
    const ShardedExploreOptions& options);

namespace detail {

/// One evaluated design point, reduced to what the outcome depends on.
struct PointEval {
  Joules total_energy = 0.0;
  double wall_seconds = 0.0;
  bool has_result = false;  // false: skipped (no run_exact for this point)
};

/// The shared two-phase reduction behind explore() and explore_sharded().
/// `eval_phase(indices, phase)` evaluates the given point indices — phase 0
/// coarse, phase 1 exact — and returns one PointEval per index, in order.
/// Everything else (ranking, shortlist selection, correlation, final sort)
/// happens here, identically for every evaluation strategy; that shared
/// code path is what makes the sharded outcome bit-identical to the serial
/// one.
[[nodiscard]] ExplorationOutcome two_phase_outcome(
    const std::vector<ExplorationPoint>& points, std::size_t verify_top,
    const std::function<std::vector<PointEval>(
        const std::vector<std::size_t>&, int)>& eval_phase);

/// The three-tier funnel behind explore() and explore_sharded() when
/// analytical_prefilter > 0: phase 2 (analytical) over every point, keep
/// the `prefilter` best (ties break by point index), then run
/// two_phase_outcome over the surviving points with the phase-0/1 indices
/// remapped to the originals. Degrades to two_phase_outcome when
/// `prefilter` is 0 or covers all points. Sharing this reduction between
/// both entry points is what makes the sharded funnel bit-identical to the
/// serial one.
[[nodiscard]] ExplorationOutcome funnel_outcome(
    const std::vector<ExplorationPoint>& points, std::size_t verify_top,
    std::size_t prefilter,
    const std::function<std::vector<PointEval>(
        const std::vector<std::size_t>&, int)>& eval_phase);

}  // namespace detail

}  // namespace socpower::core
