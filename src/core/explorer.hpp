// Two-phase design-space exploration.
//
// The paper's argument for macro-modeling is its *relative* accuracy: it
// preserves the ranking of design variants (Figure 6), so coarse exploration
// can run with the cheap estimator and only the shortlisted winners need the
// exact one. This helper packages that workflow: evaluate every point with
// the accelerated estimator, rank, re-evaluate the top-k exactly, and report
// both the final ranking and the fidelity of the coarse pass.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/coestimator.hpp"

namespace socpower::core {

struct ExplorationPoint {
  std::string label;
  /// Cheap estimate (typically Acceleration::kMacroModel or kCaching).
  std::function<RunResults()> run_coarse;
  /// Exact estimate (typically Acceleration::kNone). May be empty when the
  /// caller only wants the coarse ranking.
  std::function<RunResults()> run_exact;
};

struct ExplorationOutcome {
  struct Entry {
    std::string label;
    Joules coarse_energy = 0.0;
    std::optional<Joules> exact_energy;  // set for verified entries
    std::size_t coarse_rank = 0;
  };
  /// All points, sorted by final energy (exact where available, else coarse).
  std::vector<Entry> ranked;
  /// Did the exact verification keep the coarse winner on top?
  bool winner_confirmed = true;
  /// Pearson correlation between coarse and exact energies over the
  /// verified subset (1.0 when fewer than two points were verified).
  double verification_correlation = 1.0;
  double coarse_seconds = 0.0;
  double exact_seconds = 0.0;

  [[nodiscard]] const Entry& best() const { return ranked.front(); }
  [[nodiscard]] std::string render() const;
};

struct ExploreOptions {
  /// Worker threads for both phases (coarse sweep and exact verification).
  /// 1 = serial, 0 = one per hardware thread. Every ExplorationPoint thunk
  /// constructs its own CoEstimator, so points are independent; results are
  /// stored by point index and reduced in index order, making the outcome
  /// bit-identical to the serial path for any thread count. Point thunks
  /// that use random workloads must follow the Rng seeding contract
  /// (util/rng.hpp): one Rng per point, seeded from stable identifiers.
  unsigned threads = 1;
};

/// Runs the two-phase exploration. `verify_top` exact evaluations are spent
/// on the best coarse candidates (0 = coarse-only).
[[nodiscard]] ExplorationOutcome explore(
    const std::vector<ExplorationPoint>& points, std::size_t verify_top);
/// Same, with explicit options (threaded evaluation of both phases).
[[nodiscard]] ExplorationOutcome explore(
    const std::vector<ExplorationPoint>& points, std::size_t verify_top,
    const ExploreOptions& options);

}  // namespace socpower::core
