// A small two-pass assembler for SLITE.
//
// Accepts the syntax produced by disassemble() plus labels, so hand-written
// test kernels and characterization templates stay readable:
//
//   ; ones-complement accumulate
//   loop:
//     lbu  r5, 0(r4)
//     add  r6, r6, r5
//     addi r4, r4, 1
//     bne  r4, r7, loop
//     nop              ; delay slot
//     halt
//
// Branch targets are labels (assembled to pc-relative word offsets); j/jal
// targets are labels or absolute word addresses (resolved against the base
// word address the program will be loaded at).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "iss/isa.hpp"

namespace socpower::iss {

struct AsmResult {
  Program program;
  std::unordered_map<std::string, std::uint32_t> labels;  // word offsets
  std::string error;  // empty on success; includes line number otherwise

  [[nodiscard]] bool ok() const { return error.empty(); }
};

[[nodiscard]] AsmResult assemble(std::string_view source,
                                 std::uint32_t base_word = 0);

}  // namespace socpower::iss
