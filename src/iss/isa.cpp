#include "iss/isa.hpp"

#include <cassert>
#include <cstdio>

namespace socpower::iss {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kMovI: return "movi";
    case Opcode::kMovHi: return "movhi";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kAddI: return "addi";
    case Opcode::kSubI: return "subi";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kAndI: return "andi";
    case Opcode::kOrI: return "ori";
    case Opcode::kXorI: return "xori";
    case Opcode::kSll: return "sll";
    case Opcode::kSrl: return "srl";
    case Opcode::kSra: return "sra";
    case Opcode::kSllI: return "slli";
    case Opcode::kSrlI: return "srli";
    case Opcode::kSraI: return "srai";
    case Opcode::kSlt: return "slt";
    case Opcode::kSltu: return "sltu";
    case Opcode::kSltI: return "slti";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kJ: return "j";
    case Opcode::kJal: return "jal";
    case Opcode::kJr: return "jr";
    case Opcode::kLw: return "lw";
    case Opcode::kLb: return "lb";
    case Opcode::kLbu: return "lbu";
    case Opcode::kSw: return "sw";
    case Opcode::kSb: return "sb";
    case Opcode::kOpcodeCount: break;
  }
  return "?";
}

EnergyClass energy_class(Opcode op) {
  switch (op) {
    case Opcode::kNop: return EnergyClass::kNop;
    case Opcode::kHalt: return EnergyClass::kHalt;
    case Opcode::kMovI:
    case Opcode::kMovHi: return EnergyClass::kMoveImm;
    case Opcode::kMul: return EnergyClass::kMul;
    case Opcode::kDiv: return EnergyClass::kDiv;
    case Opcode::kLw:
    case Opcode::kLb:
    case Opcode::kLbu: return EnergyClass::kLoad;
    case Opcode::kSw:
    case Opcode::kSb: return EnergyClass::kStore;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge: return EnergyClass::kBranch;
    case Opcode::kJ:
    case Opcode::kJal:
    case Opcode::kJr: return EnergyClass::kJump;
    default: return EnergyClass::kAlu;
  }
}

unsigned base_cycles(Opcode op) {
  switch (op) {
    case Opcode::kMul: return 3;
    case Opcode::kDiv: return 10;
    default: return 1;
  }
}

bool is_branch(Opcode op) {
  return op == Opcode::kBeq || op == Opcode::kBne || op == Opcode::kBlt ||
         op == Opcode::kBge;
}

bool is_jump(Opcode op) {
  return op == Opcode::kJ || op == Opcode::kJal || op == Opcode::kJr;
}

bool is_load(Opcode op) {
  return op == Opcode::kLw || op == Opcode::kLb || op == Opcode::kLbu;
}

bool is_store(Opcode op) { return op == Opcode::kSw || op == Opcode::kSb; }

bool writes_rd(Opcode op) {
  if (is_branch(op) || is_store(op)) return false;
  switch (op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kJ:
    case Opcode::kJr:
      return false;
    default:
      return true;
  }
}

std::uint32_t reg_read_mask(const Instruction& ins) {
  auto bit = [](std::uint8_t r) -> std::uint32_t {
    return r < kNumRegisters ? 1u << r : 0u;
  };
  switch (ins.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kMovI:
    case Opcode::kMovHi:
    case Opcode::kJ:
    case Opcode::kJal:
      return 0;
    case Opcode::kJr:
      return bit(ins.rs1) & ~1u;
    default:
      break;
  }
  std::uint32_t mask = bit(ins.rs1);
  // rs2 is read by R-type ALU, branches and stores.
  const bool has_rs2 = is_branch(ins.op) || is_store(ins.op) ||
                       (!is_load(ins.op) && ins.op != Opcode::kAddI &&
                        ins.op != Opcode::kSubI && ins.op != Opcode::kAndI &&
                        ins.op != Opcode::kOrI && ins.op != Opcode::kXorI &&
                        ins.op != Opcode::kSllI && ins.op != Opcode::kSrlI &&
                        ins.op != Opcode::kSraI && ins.op != Opcode::kSltI);
  if (has_rs2) mask |= bit(ins.rs2);
  return mask & ~1u;  // r0 never interlocks
}

namespace {

enum class Format { kR, kI, kBranch, kJ, kNone };

Format format_of(Opcode op) {
  if (is_branch(op)) return Format::kBranch;
  switch (op) {
    case Opcode::kNop:
    case Opcode::kHalt:
      return Format::kNone;
    case Opcode::kJ:
    case Opcode::kJal:
      return Format::kJ;
    case Opcode::kMovI:
    case Opcode::kMovHi:
    case Opcode::kAddI:
    case Opcode::kSubI:
    case Opcode::kAndI:
    case Opcode::kOrI:
    case Opcode::kXorI:
    case Opcode::kSllI:
    case Opcode::kSrlI:
    case Opcode::kSraI:
    case Opcode::kSltI:
    case Opcode::kLw:
    case Opcode::kLb:
    case Opcode::kLbu:
    case Opcode::kSw:
    case Opcode::kSb:
      return Format::kI;
    default:
      return Format::kR;
  }
}

}  // namespace

std::uint32_t encode(const Instruction& ins) {
  const auto op = static_cast<std::uint32_t>(ins.op) << 26;
  const auto rd = static_cast<std::uint32_t>(ins.rd & 31) << 21;
  const auto rs1 = static_cast<std::uint32_t>(ins.rs1 & 31) << 16;
  const auto rs2r = static_cast<std::uint32_t>(ins.rs2 & 31) << 11;
  const auto imm16 = static_cast<std::uint32_t>(ins.imm) & 0xffffu;
  switch (format_of(ins.op)) {
    case Format::kNone:
      return op;
    case Format::kR:
      return op | rd | rs1 | rs2r;
    case Format::kI:
      assert(ins.imm >= -32768 && ins.imm <= 65535 && "imm16 overflow");
      if (is_store(ins.op))  // stores carry rs2 in the rd field
        return op | (static_cast<std::uint32_t>(ins.rs2 & 31) << 21) | rs1 |
               imm16;
      return op | rd | rs1 | imm16;
    case Format::kBranch:
      // rd field carries rs2 so the 16-bit offset fits.
      return op | (static_cast<std::uint32_t>(ins.rs2 & 31) << 21) | rs1 |
             imm16;
    case Format::kJ:
      assert(ins.imm >= 0 && ins.imm < (1 << 26) && "jump target overflow");
      // kJal implicitly links in r30 at the encoding level.
      return op | (static_cast<std::uint32_t>(ins.imm) & 0x3ffffffu);
  }
  return op;
}

Instruction decode(std::uint32_t word) {
  Instruction ins;
  ins.op = static_cast<Opcode>(word >> 26);
  switch (format_of(ins.op)) {
    case Format::kNone:
      break;
    case Format::kR:
      ins.rd = (word >> 21) & 31;
      ins.rs1 = (word >> 16) & 31;
      ins.rs2 = (word >> 11) & 31;
      break;
    case Format::kI:
      if (is_store(ins.op))
        ins.rs2 = (word >> 21) & 31;
      else
        ins.rd = (word >> 21) & 31;
      ins.rs1 = (word >> 16) & 31;
      ins.imm = static_cast<std::int16_t>(word & 0xffffu);
      break;
    case Format::kBranch:
      ins.rs2 = (word >> 21) & 31;
      ins.rs1 = (word >> 16) & 31;
      ins.imm = static_cast<std::int16_t>(word & 0xffffu);
      break;
    case Format::kJ:
      ins.imm = static_cast<std::int32_t>(word & 0x3ffffffu);
      if (ins.op == Opcode::kJal) ins.rd = 30;
      break;
  }
  return ins;
}

std::string disassemble(const Instruction& ins) {
  char buf[80];
  const char* n = opcode_name(ins.op);
  // Operand shapes the assembler accepts, not raw field dumps.
  if (ins.op == Opcode::kJr) {
    std::snprintf(buf, sizeof buf, "%s r%u", n, ins.rs1);
    return buf;
  }
  if (ins.op == Opcode::kMovI || ins.op == Opcode::kMovHi) {
    std::snprintf(buf, sizeof buf, "%s r%u, %d", n, ins.rd, ins.imm);
    return buf;
  }
  switch (format_of(ins.op)) {
    case Format::kNone:
      std::snprintf(buf, sizeof buf, "%s", n);
      break;
    case Format::kR:
      std::snprintf(buf, sizeof buf, "%s r%u, r%u, r%u", n, ins.rd, ins.rs1,
                    ins.rs2);
      break;
    case Format::kI:
      if (is_load(ins.op))
        std::snprintf(buf, sizeof buf, "%s r%u, %d(r%u)", n, ins.rd, ins.imm,
                      ins.rs1);
      else if (is_store(ins.op))
        std::snprintf(buf, sizeof buf, "%s r%u, %d(r%u)", n, ins.rs2, ins.imm,
                      ins.rs1);
      else
        std::snprintf(buf, sizeof buf, "%s r%u, r%u, %d", n, ins.rd, ins.rs1,
                      ins.imm);
      break;
    case Format::kBranch:
      std::snprintf(buf, sizeof buf, "%s r%u, r%u, %d", n, ins.rs1, ins.rs2,
                    ins.imm);
      break;
    case Format::kJ:
      std::snprintf(buf, sizeof buf, "%s %d", n, ins.imm);
      break;
  }
  return buf;
}

}  // namespace socpower::iss
