// The SLITE instruction-set simulator.
//
// This plays the role of the enhanced SPARCsim in the paper's Figure 2(b):
// the simulation master loads code for one CFSM path, points the PC at it,
// and runs to the HALT breakpoint; the ISS returns cycle and energy
// statistics for exactly the instructions simulated. Timing models the
// SPARClite features the paper lists — register interlocks (load-use),
// delayed branches, multi-cycle multiply/divide — plus a per-invocation
// pipeline-fill charge. Caches are NOT modelled here (the ISS assumes 100 %
// hits, per Section 3); cache penalties are added by the master from the
// fast cache simulator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "iss/block_cache.hpp"
#include "iss/isa.hpp"
#include "iss/power_model.hpp"
#include "util/units.hpp"

namespace socpower::iss {

struct RunResult {
  Cycles cycles = 0;
  Joules energy = 0.0;
  std::uint64_t instructions = 0;
  std::uint64_t stall_cycles = 0;
  bool halted = false;  // false => instruction budget exhausted or fault
  /// True when execution trapped: an instruction fetch, load or store fell
  /// outside memory, or an undecodable opcode was fetched. The faulting
  /// instruction is not accounted (a fetch fault is not even an executed
  /// instruction); the PC is left pointing at it and `fault_addr` holds the
  /// offending byte address. Replaces the silent out-of-bounds access the
  /// former assert-only checks permitted in release builds.
  bool fault = false;
  std::uint32_t fault_addr = 0;
};

struct IssConfig {
  std::uint32_t memory_bytes = 1u << 16;
  /// Pipeline-fill cycles charged at every invocation (the master resumes
  /// the processor at a breakpoint; the pipeline refills).
  unsigned pipeline_fill_cycles = 3;
  /// Extra stall cycles on a taken branch beyond the delay slot (0 on
  /// SPARClite: the delay slot hides the redirect).
  unsigned taken_branch_penalty = 0;
  std::uint64_t default_max_instructions = 10'000'000;
  /// Pre-decoded basic-block cache (the ISS fast path). Results are
  /// bit-identical with the cache on or off; turn it off only to benchmark
  /// the reference interpreter or to bisect a suspected cache bug.
  bool block_cache = true;
  std::uint32_t block_cache_max_blocks = 2048;
  /// Straight-line runs longer than this decode into multiple blocks.
  std::uint32_t block_cache_max_ops = 64;
};

class Iss {
 public:
  explicit Iss(InstructionPowerModel model, IssConfig config = {});

  // -- program / state ------------------------------------------------------
  /// Copies `prog` into instruction memory at word address `base_word`.
  void load_program(std::span<const Instruction> prog,
                    std::uint32_t base_word);
  void set_pc(std::uint32_t word_addr) { pc_ = word_addr; }
  [[nodiscard]] std::uint32_t pc() const { return pc_; }

  /// Out-of-range registers assert in debug and read as 0 / ignore writes in
  /// release; out-of-range addresses assert and read as 0 / drop the store.
  /// (Execution-time accesses trap instead — see RunResult::fault.)
  [[nodiscard]] std::int32_t reg(unsigned r) const;
  void set_reg(unsigned r, std::int32_t v);

  [[nodiscard]] std::int32_t load_word(std::uint32_t addr) const;
  void store_word(std::uint32_t addr, std::int32_t v);
  [[nodiscard]] std::uint8_t load_byte(std::uint32_t addr) const;
  void store_byte(std::uint32_t addr, std::uint8_t v);

  /// Clears registers and the inter-instruction power state; memory and the
  /// loaded program are preserved (the master reloads data explicitly).
  void reset_cpu();

  // -- execution ------------------------------------------------------------
  /// Runs from the current PC until HALT or the instruction budget runs out.
  /// Accumulates nothing across calls: the result covers this call only.
  RunResult run(std::uint64_t max_instructions = 0);

  /// When non-null, every executed instruction's byte address is appended
  /// (test/diagnostic aid; the production cache stream comes from the
  /// master's static per-path traces, as in the paper).
  void set_pc_trace(std::vector<std::uint32_t>* sink) { pc_trace_ = sink; }

  [[nodiscard]] const InstructionPowerModel& power_model() const {
    return model_;
  }
  [[nodiscard]] const IssConfig& config() const { return config_; }
  /// Fast-path counters (hits/decodes/flushes); all zero when the block
  /// cache is disabled.
  [[nodiscard]] const BlockCacheStats& block_cache_stats() const {
    return blocks_.stats();
  }

  // -- checkpoint/restore ----------------------------------------------------
  /// Entry PCs of every cached decoded block, ascending.
  [[nodiscard]] std::vector<std::uint32_t> cached_block_entries() const {
    return blocks_.entry_pcs();
  }
  /// Pre-decode the block entered at `entry` into the cache: exactly the
  /// insert run() would perform on that PC's first execution, so a restored
  /// process replays warm without changing any replayed energy. Ignores
  /// out-of-range or already-cached entries; no-op with the cache disabled.
  void warm_block(std::uint32_t entry);

 private:
  /// Delay-slot bookkeeping. Deliberately local to each run() call, exactly
  /// as in the original interpreter: a budget that expires between a taken
  /// branch and its delay slot drops the pending redirect.
  struct Flow {
    bool in_delay_slot = false;
    std::uint32_t pending_target = 0;
  };
  enum class Step : std::uint8_t { kOk, kHalt, kFault };
  /// Architectural effect of one instruction (register/memory writes happen
  /// inside operate(); control and trap outcomes are returned).
  struct ExecOut {
    bool transfer = false;
    bool fault = false;
    std::uint32_t target = 0;
    std::uint32_t fault_addr = 0;
  };

  /// Executes `ins` given its operand values: the single definition of SLITE
  /// architectural semantics, shared by the stepping interpreter and block
  /// replay so the two paths cannot drift.
  ExecOut operate(const Instruction& ins, std::int32_t a, std::int32_t b,
                  std::uint32_t pc_word);
  /// Reference path: one instruction with full decode-and-lookup accounting.
  Step step_one(RunResult& r, Flow& flow);
  /// Fast path: replays a pre-decoded block (plus its fused delay slot when
  /// the terminator transfers), accounting with the decode-time metadata and
  /// consuming `budget` for the instructions actually executed.
  /// Bit-identical to step_one() over the same instructions.
  Step exec_block(const DecodedBlock& blk, RunResult& r, Flow& flow,
                  std::uint64_t& budget);

  InstructionPowerModel model_;
  IssConfig config_;
  std::vector<Instruction> imem_;      // decoded instruction memory
  std::vector<std::uint8_t> dmem_;     // byte-addressable data memory
  BlockCache blocks_;                  // invalidated by load_program()
  std::int32_t regs_[kNumRegisters] = {};
  std::uint32_t pc_ = 0;
  EnergyClass last_class_ = EnergyClass::kNop;  // circuit state across calls
  std::uint8_t last_load_dest_ = 0;    // 0 == none (r0 is never a load dest)
  std::uint32_t last_alu_operands_ = 0;  // data-dependent term state
  std::vector<std::uint32_t>* pc_trace_ = nullptr;
};

}  // namespace socpower::iss
