// The SLITE instruction-set simulator.
//
// This plays the role of the enhanced SPARCsim in the paper's Figure 2(b):
// the simulation master loads code for one CFSM path, points the PC at it,
// and runs to the HALT breakpoint; the ISS returns cycle and energy
// statistics for exactly the instructions simulated. Timing models the
// SPARClite features the paper lists — register interlocks (load-use),
// delayed branches, multi-cycle multiply/divide — plus a per-invocation
// pipeline-fill charge. Caches are NOT modelled here (the ISS assumes 100 %
// hits, per Section 3); cache penalties are added by the master from the
// fast cache simulator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "iss/isa.hpp"
#include "iss/power_model.hpp"
#include "util/units.hpp"

namespace socpower::iss {

struct RunResult {
  Cycles cycles = 0;
  Joules energy = 0.0;
  std::uint64_t instructions = 0;
  std::uint64_t stall_cycles = 0;
  bool halted = false;  // false => instruction budget exhausted
};

struct IssConfig {
  std::uint32_t memory_bytes = 1u << 16;
  /// Pipeline-fill cycles charged at every invocation (the master resumes
  /// the processor at a breakpoint; the pipeline refills).
  unsigned pipeline_fill_cycles = 3;
  /// Extra stall cycles on a taken branch beyond the delay slot (0 on
  /// SPARClite: the delay slot hides the redirect).
  unsigned taken_branch_penalty = 0;
  std::uint64_t default_max_instructions = 10'000'000;
};

class Iss {
 public:
  explicit Iss(InstructionPowerModel model, IssConfig config = {});

  // -- program / state ------------------------------------------------------
  /// Copies `prog` into instruction memory at word address `base_word`.
  void load_program(std::span<const Instruction> prog,
                    std::uint32_t base_word);
  void set_pc(std::uint32_t word_addr) { pc_ = word_addr; }
  [[nodiscard]] std::uint32_t pc() const { return pc_; }

  [[nodiscard]] std::int32_t reg(unsigned r) const;
  void set_reg(unsigned r, std::int32_t v);

  [[nodiscard]] std::int32_t load_word(std::uint32_t addr) const;
  void store_word(std::uint32_t addr, std::int32_t v);
  [[nodiscard]] std::uint8_t load_byte(std::uint32_t addr) const;
  void store_byte(std::uint32_t addr, std::uint8_t v);

  /// Clears registers and the inter-instruction power state; memory and the
  /// loaded program are preserved (the master reloads data explicitly).
  void reset_cpu();

  // -- execution ------------------------------------------------------------
  /// Runs from the current PC until HALT or the instruction budget runs out.
  /// Accumulates nothing across calls: the result covers this call only.
  RunResult run(std::uint64_t max_instructions = 0);

  /// When non-null, every executed instruction's byte address is appended
  /// (test/diagnostic aid; the production cache stream comes from the
  /// master's static per-path traces, as in the paper).
  void set_pc_trace(std::vector<std::uint32_t>* sink) { pc_trace_ = sink; }

  [[nodiscard]] const InstructionPowerModel& power_model() const {
    return model_;
  }
  [[nodiscard]] const IssConfig& config() const { return config_; }

 private:
  [[nodiscard]] const Instruction& fetch(std::uint32_t word_addr) const;

  InstructionPowerModel model_;
  IssConfig config_;
  std::vector<Instruction> imem_;      // decoded instruction memory
  std::vector<std::uint8_t> dmem_;     // byte-addressable data memory
  std::int32_t regs_[kNumRegisters] = {};
  std::uint32_t pc_ = 0;
  EnergyClass last_class_ = EnergyClass::kNop;  // circuit state across calls
  std::uint8_t last_load_dest_ = 0;    // 0 == none (r0 is never a load dest)
  std::uint32_t last_alu_operands_ = 0;  // data-dependent term state
  std::vector<std::uint32_t>* pc_trace_ = nullptr;
};

}  // namespace socpower::iss
