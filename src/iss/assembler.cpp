#include "iss/assembler.hpp"

#include <cctype>
#include <optional>
#include <vector>

namespace socpower::iss {

namespace {

struct Token {
  std::string text;
};

std::vector<std::string> tokenize_line(std::string_view line) {
  // Strip comments.
  for (const char c : {';', '#'}) {
    const auto pos = line.find(c);
    if (pos != std::string_view::npos) line = line.substr(0, pos);
  }
  std::vector<std::string> toks;
  std::string cur;
  for (char ch : line) {
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == ',') {
      if (!cur.empty()) {
        toks.push_back(cur);
        cur.clear();
      }
    } else if (ch == '(' || ch == ')') {
      // "imm(rN)" splits into imm and rN.
      if (!cur.empty()) {
        toks.push_back(cur);
        cur.clear();
      }
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) toks.push_back(cur);
  return toks;
}

std::optional<Opcode> opcode_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    if (name == opcode_name(op)) return op;
  }
  return std::nullopt;
}

std::optional<unsigned> parse_reg(const std::string& t) {
  if (t.size() < 2 || (t[0] != 'r' && t[0] != 'R')) return std::nullopt;
  unsigned v = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(t[i]))) return std::nullopt;
    v = v * 10 + static_cast<unsigned>(t[i] - '0');
  }
  if (v >= kNumRegisters) return std::nullopt;
  return v;
}

std::optional<std::int64_t> parse_int(const std::string& t) {
  if (t.empty()) return std::nullopt;
  std::size_t i = 0;
  bool neg = false;
  if (t[0] == '-' || t[0] == '+') {
    neg = t[0] == '-';
    i = 1;
  }
  if (i >= t.size()) return std::nullopt;
  int base = 10;
  if (t.size() > i + 2 && t[i] == '0' && (t[i + 1] == 'x' || t[i + 1] == 'X')) {
    base = 16;
    i += 2;
  }
  std::int64_t v = 0;
  for (; i < t.size(); ++i) {
    const char c = t[i];
    int d;
    if (std::isdigit(static_cast<unsigned char>(c))) d = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (base == 16 && c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return std::nullopt;
    v = v * base + d;
  }
  return neg ? -v : v;
}

bool is_label_def(const std::string& t) {
  return t.size() > 1 && t.back() == ':';
}

}  // namespace

AsmResult assemble(std::string_view source, std::uint32_t base_word) {
  AsmResult res;

  // Pass 1: label word offsets.
  {
    std::uint32_t word = 0;
    std::size_t line_no = 0;
    std::size_t start = 0;
    while (start <= source.size()) {
      const auto end = source.find('\n', start);
      const auto line = source.substr(
          start, end == std::string_view::npos ? std::string_view::npos
                                               : end - start);
      ++line_no;
      auto toks = tokenize_line(line);
      std::size_t ti = 0;
      while (ti < toks.size() && is_label_def(toks[ti])) {
        const std::string name = toks[ti].substr(0, toks[ti].size() - 1);
        if (res.labels.count(name)) {
          res.error =
              "line " + std::to_string(line_no) + ": duplicate label " + name;
          return res;
        }
        res.labels[name] = word;
        ++ti;
      }
      if (ti < toks.size()) ++word;  // one instruction per line
      if (end == std::string_view::npos) break;
      start = end + 1;
    }
  }

  // Pass 2: encode.
  std::uint32_t word = 0;
  std::size_t line_no = 0;
  std::size_t start = 0;
  auto fail = [&](const std::string& msg) {
    res.error = "line " + std::to_string(line_no) + ": " + msg;
    return res;
  };
  while (start <= source.size()) {
    const auto end = source.find('\n', start);
    const auto line = source.substr(
        start, end == std::string_view::npos ? std::string_view::npos
                                             : end - start);
    ++line_no;
    auto toks = tokenize_line(line);
    std::size_t ti = 0;
    while (ti < toks.size() && is_label_def(toks[ti])) ++ti;
    if (ti < toks.size()) {
      const auto op = opcode_from_name(toks[ti]);
      if (!op) return fail("unknown mnemonic '" + toks[ti] + "'");
      std::vector<std::string> args(toks.begin() + static_cast<long>(ti) + 1,
                                    toks.end());
      Instruction ins;
      ins.op = *op;

      auto need = [&](std::size_t n) { return args.size() == n; };
      auto reg_at = [&](std::size_t i) { return parse_reg(args[i]); };
      auto imm_or_label = [&](std::size_t i,
                              bool relative) -> std::optional<std::int64_t> {
        if (auto v = parse_int(args[i])) return v;
        const auto it = res.labels.find(args[i]);
        if (it == res.labels.end()) return std::nullopt;
        if (relative)
          return static_cast<std::int64_t>(it->second) -
                 static_cast<std::int64_t>(word);
        return static_cast<std::int64_t>(it->second + base_word);
      };

      switch (ins.op) {
        case Opcode::kNop:
        case Opcode::kHalt:
          if (!need(0)) return fail("expected no operands");
          break;
        case Opcode::kMovI:
        case Opcode::kMovHi: {
          if (!need(2)) return fail("expected rd, imm");
          const auto rd = reg_at(0);
          const auto imm = parse_int(args[1]);
          if (!rd || !imm) return fail("bad operands");
          ins.rd = static_cast<std::uint8_t>(*rd);
          ins.imm = static_cast<std::int32_t>(*imm);
          break;
        }
        case Opcode::kAddI:
        case Opcode::kSubI:
        case Opcode::kAndI:
        case Opcode::kOrI:
        case Opcode::kXorI:
        case Opcode::kSllI:
        case Opcode::kSrlI:
        case Opcode::kSraI:
        case Opcode::kSltI: {
          if (!need(3)) return fail("expected rd, rs1, imm");
          const auto rd = reg_at(0);
          const auto rs1 = reg_at(1);
          const auto imm = parse_int(args[2]);
          if (!rd || !rs1 || !imm) return fail("bad operands");
          ins.rd = static_cast<std::uint8_t>(*rd);
          ins.rs1 = static_cast<std::uint8_t>(*rs1);
          ins.imm = static_cast<std::int32_t>(*imm);
          break;
        }
        case Opcode::kBeq:
        case Opcode::kBne:
        case Opcode::kBlt:
        case Opcode::kBge: {
          if (!need(3)) return fail("expected rs1, rs2, target");
          const auto rs1 = reg_at(0);
          const auto rs2 = reg_at(1);
          const auto off = imm_or_label(2, /*relative=*/true);
          if (!rs1 || !rs2 || !off) return fail("bad operands");
          ins.rs1 = static_cast<std::uint8_t>(*rs1);
          ins.rs2 = static_cast<std::uint8_t>(*rs2);
          ins.imm = static_cast<std::int32_t>(*off);
          break;
        }
        case Opcode::kJ: {
          if (!need(1)) return fail("expected target");
          const auto t = imm_or_label(0, /*relative=*/false);
          if (!t) return fail("bad target");
          ins.imm = static_cast<std::int32_t>(*t);
          break;
        }
        case Opcode::kJal: {
          if (!need(2)) return fail("expected rd, target");
          const auto rd = reg_at(0);
          const auto t = imm_or_label(1, /*relative=*/false);
          if (!rd || !t) return fail("bad operands");
          ins.rd = static_cast<std::uint8_t>(*rd);
          ins.imm = static_cast<std::int32_t>(*t);
          break;
        }
        case Opcode::kJr: {
          if (!need(1)) return fail("expected rs1");
          const auto rs1 = reg_at(0);
          if (!rs1) return fail("bad register");
          ins.rs1 = static_cast<std::uint8_t>(*rs1);
          break;
        }
        case Opcode::kLw:
        case Opcode::kLb:
        case Opcode::kLbu: {
          if (!need(3)) return fail("expected rd, imm(rs1)");
          const auto rd = reg_at(0);
          const auto imm = parse_int(args[1]);
          const auto rs1 = reg_at(2);
          if (!rd || !imm || !rs1) return fail("bad operands");
          ins.rd = static_cast<std::uint8_t>(*rd);
          ins.imm = static_cast<std::int32_t>(*imm);
          ins.rs1 = static_cast<std::uint8_t>(*rs1);
          break;
        }
        case Opcode::kSw:
        case Opcode::kSb: {
          if (!need(3)) return fail("expected rs2, imm(rs1)");
          const auto rs2 = reg_at(0);
          const auto imm = parse_int(args[1]);
          const auto rs1 = reg_at(2);
          if (!rs2 || !imm || !rs1) return fail("bad operands");
          ins.rs2 = static_cast<std::uint8_t>(*rs2);
          ins.imm = static_cast<std::int32_t>(*imm);
          ins.rs1 = static_cast<std::uint8_t>(*rs1);
          break;
        }
        default: {  // three-register ALU forms
          if (!need(3)) return fail("expected rd, rs1, rs2");
          const auto rd = reg_at(0);
          const auto rs1 = reg_at(1);
          const auto rs2 = reg_at(2);
          if (!rd || !rs1 || !rs2) return fail("bad registers");
          ins.rd = static_cast<std::uint8_t>(*rd);
          ins.rs1 = static_cast<std::uint8_t>(*rs1);
          ins.rs2 = static_cast<std::uint8_t>(*rs2);
          break;
        }
      }
      res.program.push_back(ins);
      ++word;
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return res;
}

}  // namespace socpower::iss
