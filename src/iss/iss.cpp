#include "iss/iss.hpp"

#include <bit>
#include <cassert>
#include <cstring>

namespace socpower::iss {

namespace {

/// Does `ins` read general register `r`? Used for the load-use interlock.
bool reads_reg(const Instruction& ins, unsigned r) {
  if (r == 0) return false;  // r0 never interlocks
  switch (ins.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kMovI:
    case Opcode::kMovHi:
    case Opcode::kJ:
    case Opcode::kJal:
      return false;
    case Opcode::kJr:
      return ins.rs1 == r;
    default:
      break;
  }
  if (ins.rs1 == r) return true;
  // rs2 read by R-type ALU, branches and stores.
  const bool has_rs2 = is_branch(ins.op) || is_store(ins.op) ||
                       (!is_load(ins.op) && ins.op != Opcode::kAddI &&
                        ins.op != Opcode::kSubI && ins.op != Opcode::kAndI &&
                        ins.op != Opcode::kOrI && ins.op != Opcode::kXorI &&
                        ins.op != Opcode::kSllI && ins.op != Opcode::kSrlI &&
                        ins.op != Opcode::kSraI && ins.op != Opcode::kSltI);
  return has_rs2 && ins.rs2 == r;
}

}  // namespace

Iss::Iss(InstructionPowerModel model, IssConfig config)
    : model_(std::move(model)), config_(config),
      imem_(config.memory_bytes / kInstrBytes, Instruction{Opcode::kHalt}),
      dmem_(config.memory_bytes, 0) {}

void Iss::load_program(std::span<const Instruction> prog,
                       std::uint32_t base_word) {
  assert(base_word + prog.size() <= imem_.size());
  std::copy(prog.begin(), prog.end(), imem_.begin() + base_word);
}

std::int32_t Iss::reg(unsigned r) const {
  assert(r < kNumRegisters);
  return r == 0 ? 0 : regs_[r];
}

void Iss::set_reg(unsigned r, std::int32_t v) {
  assert(r < kNumRegisters);
  if (r != 0) regs_[r] = v;
}

std::int32_t Iss::load_word(std::uint32_t addr) const {
  assert(addr + 4 <= dmem_.size());
  std::int32_t v;
  std::memcpy(&v, dmem_.data() + addr, 4);
  return v;
}

void Iss::store_word(std::uint32_t addr, std::int32_t v) {
  assert(addr + 4 <= dmem_.size());
  std::memcpy(dmem_.data() + addr, &v, 4);
}

std::uint8_t Iss::load_byte(std::uint32_t addr) const {
  assert(addr < dmem_.size());
  return dmem_[addr];
}

void Iss::store_byte(std::uint32_t addr, std::uint8_t v) {
  assert(addr < dmem_.size());
  dmem_[addr] = v;
}

void Iss::reset_cpu() {
  std::memset(regs_, 0, sizeof regs_);
  pc_ = 0;
  last_class_ = EnergyClass::kNop;
  last_load_dest_ = 0;
  last_alu_operands_ = 0;
}

const Instruction& Iss::fetch(std::uint32_t word_addr) const {
  assert(word_addr < imem_.size());
  return imem_[word_addr];
}

RunResult Iss::run(std::uint64_t max_instructions) {
  RunResult r;
  // Per-invocation pipeline fill: the master resumes the CPU at a
  // breakpoint; refill cycles draw roughly the stall current.
  r.cycles += config_.pipeline_fill_cycles;
  r.stall_cycles += config_.pipeline_fill_cycles;
  r.energy += model_.stall_energy(config_.pipeline_fill_cycles);
  last_load_dest_ = 0;

  std::uint64_t budget =
      max_instructions ? max_instructions : config_.default_max_instructions;
  bool in_delay_slot = false;
  std::uint32_t pending_target = 0;

  while (budget-- > 0) {
    const Instruction& ins = fetch(pc_);
    if (pc_trace_) pc_trace_->push_back(pc_ * kInstrBytes);

    // Load-use interlock: one bubble when the previous instruction loaded a
    // register this instruction reads.
    unsigned stalls = 0;
    if (last_load_dest_ != 0 && reads_reg(ins, last_load_dest_)) stalls = 1;

    const std::int32_t a = reg(ins.rs1);
    const std::int32_t b = reg(ins.rs2);
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    std::uint32_t next_pc = pc_ + 1;
    bool transfer = false;
    std::uint32_t target = 0;
    unsigned extra_cycles = 0;

    switch (ins.op) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        break;
      case Opcode::kMovI:
        set_reg(ins.rd, ins.imm);
        break;
      case Opcode::kMovHi:
        set_reg(ins.rd,
                static_cast<std::int32_t>(
                    (static_cast<std::uint32_t>(ins.imm) & 0xffffu) << 16));
        break;
      case Opcode::kAdd: set_reg(ins.rd, static_cast<std::int32_t>(ua + ub)); break;
      case Opcode::kSub: set_reg(ins.rd, static_cast<std::int32_t>(ua - ub)); break;
      case Opcode::kMul: set_reg(ins.rd, static_cast<std::int32_t>(ua * ub)); break;
      case Opcode::kDiv: set_reg(ins.rd, b == 0 ? 0 : a / b); break;
      case Opcode::kAddI:
        set_reg(ins.rd, static_cast<std::int32_t>(
                            ua + static_cast<std::uint32_t>(ins.imm)));
        break;
      case Opcode::kSubI:
        set_reg(ins.rd, static_cast<std::int32_t>(
                            ua - static_cast<std::uint32_t>(ins.imm)));
        break;
      case Opcode::kAnd: set_reg(ins.rd, a & b); break;
      case Opcode::kOr: set_reg(ins.rd, a | b); break;
      case Opcode::kXor: set_reg(ins.rd, a ^ b); break;
      // Logical immediates zero-extend (MIPS convention), so building a wide
      // constant as movhi + ori is exact.
      case Opcode::kAndI: set_reg(ins.rd, a & (ins.imm & 0xffff)); break;
      case Opcode::kOrI: set_reg(ins.rd, a | (ins.imm & 0xffff)); break;
      case Opcode::kXorI: set_reg(ins.rd, a ^ (ins.imm & 0xffff)); break;
      case Opcode::kSll: set_reg(ins.rd, static_cast<std::int32_t>(ua << (ub & 31u))); break;
      case Opcode::kSrl: set_reg(ins.rd, static_cast<std::int32_t>(ua >> (ub & 31u))); break;
      case Opcode::kSra: set_reg(ins.rd, a >> (ub & 31u)); break;
      case Opcode::kSllI: set_reg(ins.rd, static_cast<std::int32_t>(ua << (ins.imm & 31))); break;
      case Opcode::kSrlI: set_reg(ins.rd, static_cast<std::int32_t>(ua >> (ins.imm & 31))); break;
      case Opcode::kSraI: set_reg(ins.rd, a >> (ins.imm & 31)); break;
      case Opcode::kSlt: set_reg(ins.rd, a < b ? 1 : 0); break;
      case Opcode::kSltu: set_reg(ins.rd, ua < ub ? 1 : 0); break;
      case Opcode::kSltI: set_reg(ins.rd, a < ins.imm ? 1 : 0); break;
      case Opcode::kBeq:
        if (a == b) { transfer = true; target = pc_ + static_cast<std::uint32_t>(ins.imm); }
        break;
      case Opcode::kBne:
        if (a != b) { transfer = true; target = pc_ + static_cast<std::uint32_t>(ins.imm); }
        break;
      case Opcode::kBlt:
        if (a < b) { transfer = true; target = pc_ + static_cast<std::uint32_t>(ins.imm); }
        break;
      case Opcode::kBge:
        if (a >= b) { transfer = true; target = pc_ + static_cast<std::uint32_t>(ins.imm); }
        break;
      case Opcode::kJ:
        transfer = true;
        target = static_cast<std::uint32_t>(ins.imm);
        break;
      case Opcode::kJal:
        set_reg(ins.rd, static_cast<std::int32_t>(pc_ + 2));  // past delay slot
        transfer = true;
        target = static_cast<std::uint32_t>(ins.imm);
        break;
      case Opcode::kJr:
        transfer = true;
        target = ua;
        break;
      case Opcode::kLw:
        set_reg(ins.rd, load_word(ua + static_cast<std::uint32_t>(ins.imm)));
        break;
      case Opcode::kLb:
        set_reg(ins.rd, static_cast<std::int8_t>(
                            load_byte(ua + static_cast<std::uint32_t>(ins.imm))));
        break;
      case Opcode::kLbu:
        set_reg(ins.rd, load_byte(ua + static_cast<std::uint32_t>(ins.imm)));
        break;
      case Opcode::kSw:
        store_word(ua + static_cast<std::uint32_t>(ins.imm), b);
        break;
      case Opcode::kSb:
        store_byte(ua + static_cast<std::uint32_t>(ins.imm),
                   static_cast<std::uint8_t>(ub & 0xffu));
        break;
      case Opcode::kOpcodeCount:
        assert(false);
        break;
    }

    if (transfer && is_branch(ins.op))
      extra_cycles = config_.taken_branch_penalty;

    // -- accounting ---------------------------------------------------------
    const EnergyClass cls = energy_class(ins.op);
    const unsigned cyc = base_cycles(ins.op) + extra_cycles;
    r.cycles += cyc + stalls;
    r.stall_cycles += stalls;
    r.instructions += 1;
    r.energy += model_.instruction_energy(last_class_, cls, cyc);
    if (stalls) r.energy += model_.stall_energy(stalls);
    if (model_.data_dependent() && cls == EnergyClass::kAlu) {
      // Mix the operands asymmetrically so identical operands still carry
      // their value into the signature (a ^ a would always be 0).
      const std::uint32_t sig = ua ^ ((ub << 16) | (ub >> 16));
      r.energy += model_.data_energy(
          static_cast<unsigned>(std::popcount(sig ^ last_alu_operands_)));
      last_alu_operands_ = sig;
    }
    last_class_ = cls;
    last_load_dest_ =
        is_load(ins.op) && ins.rd != 0 ? ins.rd : std::uint8_t{0};

    if (ins.op == Opcode::kHalt) {
      r.halted = true;
      break;
    }

    // -- control flow (one architectural delay slot) ------------------------
    if (in_delay_slot) {
      // A transfer in a delay slot is unpredictable on real hardware; the
      // code generator never emits one. The earlier transfer wins.
      assert(!transfer && "control transfer in a delay slot");
      pc_ = pending_target;
      in_delay_slot = false;
    } else if (transfer) {
      in_delay_slot = true;
      pending_target = target;
      pc_ = next_pc;  // execute the delay slot first
    } else {
      pc_ = next_pc;
    }
  }
  return r;
}

}  // namespace socpower::iss
