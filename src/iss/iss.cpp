#include "iss/iss.hpp"

#include <bit>
#include <cassert>
#include <cstring>
#include <limits>

#include "telemetry/registry.hpp"

namespace socpower::iss {

namespace {

/// Does `ins` read general register `r`? Used for the load-use interlock on
/// the reference path. Unlike reg_read_mask() this accepts any `r`, so it
/// stays well defined for malformed register fields the block decoder
/// refuses to lift.
bool reads_reg(const Instruction& ins, unsigned r) {
  if (r == 0) return false;  // r0 never interlocks
  switch (ins.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kMovI:
    case Opcode::kMovHi:
    case Opcode::kJ:
    case Opcode::kJal:
      return false;
    case Opcode::kJr:
      return ins.rs1 == r;
    default:
      break;
  }
  if (ins.rs1 == r) return true;
  // rs2 read by R-type ALU, branches and stores.
  const bool has_rs2 = is_branch(ins.op) || is_store(ins.op) ||
                       (!is_load(ins.op) && ins.op != Opcode::kAddI &&
                        ins.op != Opcode::kSubI && ins.op != Opcode::kAndI &&
                        ins.op != Opcode::kOrI && ins.op != Opcode::kXorI &&
                        ins.op != Opcode::kSllI && ins.op != Opcode::kSrlI &&
                        ins.op != Opcode::kSraI && ins.op != Opcode::kSltI);
  return has_rs2 && ins.rs2 == r;
}

}  // namespace

Iss::Iss(InstructionPowerModel model, IssConfig config)
    : model_(std::move(model)), config_(config),
      imem_(config.memory_bytes / kInstrBytes, Instruction{Opcode::kHalt}),
      dmem_(config.memory_bytes, 0),
      blocks_(config.block_cache_max_blocks ? config.block_cache_max_blocks
                                            : 1,
              config.memory_bytes / kInstrBytes) {}

void Iss::load_program(std::span<const Instruction> prog,
                       std::uint32_t base_word) {
  assert(base_word + prog.size() <= imem_.size());
  if (base_word >= imem_.size()) return;
  const std::size_t room = imem_.size() - base_word;
  const std::size_t n = prog.size() < room ? prog.size() : room;
  std::copy(prog.begin(), prog.begin() + n, imem_.begin() + base_word);
  // Decoded blocks alias the old instruction memory contents.
  blocks_.invalidate();
  telemetry::registry().counter("iss.block_cache.invalidations").add();
}

void Iss::warm_block(std::uint32_t entry) {
  if (!config_.block_cache || entry >= imem_.size()) return;
  if (blocks_.contains(entry)) return;
  blocks_.insert(decode_block(imem_, entry, model_, config_.block_cache_max_ops));
}

std::int32_t Iss::reg(unsigned r) const {
  assert(r < kNumRegisters);
  return r == 0 || r >= kNumRegisters ? 0 : regs_[r];
}

void Iss::set_reg(unsigned r, std::int32_t v) {
  assert(r < kNumRegisters);
  if (r != 0 && r < kNumRegisters) regs_[r] = v;
}

std::int32_t Iss::load_word(std::uint32_t addr) const {
  assert(std::uint64_t{addr} + 4 <= dmem_.size());
  if (std::uint64_t{addr} + 4 > dmem_.size()) return 0;
  std::int32_t v;
  std::memcpy(&v, dmem_.data() + addr, 4);
  return v;
}

void Iss::store_word(std::uint32_t addr, std::int32_t v) {
  assert(std::uint64_t{addr} + 4 <= dmem_.size());
  if (std::uint64_t{addr} + 4 > dmem_.size()) return;
  std::memcpy(dmem_.data() + addr, &v, 4);
}

std::uint8_t Iss::load_byte(std::uint32_t addr) const {
  assert(addr < dmem_.size());
  return addr < dmem_.size() ? dmem_[addr] : std::uint8_t{0};
}

void Iss::store_byte(std::uint32_t addr, std::uint8_t v) {
  assert(addr < dmem_.size());
  if (addr < dmem_.size()) dmem_[addr] = v;
}

void Iss::reset_cpu() {
  std::memset(regs_, 0, sizeof regs_);
  pc_ = 0;
  last_class_ = EnergyClass::kNop;
  last_load_dest_ = 0;
  last_alu_operands_ = 0;
  // The block cache survives on purpose: it depends only on instruction
  // memory and the power model, and the co-estimator resets the CPU before
  // every transition — flushing here would forfeit exactly the cross-
  // invocation reuse the cache exists for.
}

// Forced inlining matters here: operate() sits on the per-instruction hot
// path of both the stepping interpreter and block replay, and the call
// overhead alone is a measurable slice of the replay budget.
#if defined(__GNUC__)
__attribute__((always_inline)) inline
#endif
Iss::ExecOut Iss::operate(const Instruction& ins, std::int32_t a,
                          std::int32_t b, std::uint32_t pc_word) {
  const auto ua = static_cast<std::uint32_t>(a);
  const auto ub = static_cast<std::uint32_t>(b);
  ExecOut out;
  switch (ins.op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      break;
    case Opcode::kMovI:
      set_reg(ins.rd, ins.imm);
      break;
    case Opcode::kMovHi:
      set_reg(ins.rd,
              static_cast<std::int32_t>(
                  (static_cast<std::uint32_t>(ins.imm) & 0xffffu) << 16));
      break;
    case Opcode::kAdd: set_reg(ins.rd, static_cast<std::int32_t>(ua + ub)); break;
    case Opcode::kSub: set_reg(ins.rd, static_cast<std::int32_t>(ua - ub)); break;
    case Opcode::kMul: set_reg(ins.rd, static_cast<std::int32_t>(ua * ub)); break;
    case Opcode::kDiv:
      // INT_MIN / -1 overflows; define it to wrap (quotient == dividend).
      if (b == 0)
        set_reg(ins.rd, 0);
      else if (a == std::numeric_limits<std::int32_t>::min() && b == -1)
        set_reg(ins.rd, a);
      else
        set_reg(ins.rd, a / b);
      break;
    case Opcode::kAddI:
      set_reg(ins.rd, static_cast<std::int32_t>(
                          ua + static_cast<std::uint32_t>(ins.imm)));
      break;
    case Opcode::kSubI:
      set_reg(ins.rd, static_cast<std::int32_t>(
                          ua - static_cast<std::uint32_t>(ins.imm)));
      break;
    case Opcode::kAnd: set_reg(ins.rd, a & b); break;
    case Opcode::kOr: set_reg(ins.rd, a | b); break;
    case Opcode::kXor: set_reg(ins.rd, a ^ b); break;
    // Logical immediates zero-extend (MIPS convention), so building a wide
    // constant as movhi + ori is exact.
    case Opcode::kAndI: set_reg(ins.rd, a & (ins.imm & 0xffff)); break;
    case Opcode::kOrI: set_reg(ins.rd, a | (ins.imm & 0xffff)); break;
    case Opcode::kXorI: set_reg(ins.rd, a ^ (ins.imm & 0xffff)); break;
    case Opcode::kSll: set_reg(ins.rd, static_cast<std::int32_t>(ua << (ub & 31u))); break;
    case Opcode::kSrl: set_reg(ins.rd, static_cast<std::int32_t>(ua >> (ub & 31u))); break;
    case Opcode::kSra: set_reg(ins.rd, a >> (ub & 31u)); break;
    case Opcode::kSllI: set_reg(ins.rd, static_cast<std::int32_t>(ua << (ins.imm & 31))); break;
    case Opcode::kSrlI: set_reg(ins.rd, static_cast<std::int32_t>(ua >> (ins.imm & 31))); break;
    case Opcode::kSraI: set_reg(ins.rd, a >> (ins.imm & 31)); break;
    case Opcode::kSlt: set_reg(ins.rd, a < b ? 1 : 0); break;
    case Opcode::kSltu: set_reg(ins.rd, ua < ub ? 1 : 0); break;
    case Opcode::kSltI: set_reg(ins.rd, a < ins.imm ? 1 : 0); break;
    case Opcode::kBeq:
      if (a == b) { out.transfer = true; out.target = pc_word + static_cast<std::uint32_t>(ins.imm); }
      break;
    case Opcode::kBne:
      if (a != b) { out.transfer = true; out.target = pc_word + static_cast<std::uint32_t>(ins.imm); }
      break;
    case Opcode::kBlt:
      if (a < b) { out.transfer = true; out.target = pc_word + static_cast<std::uint32_t>(ins.imm); }
      break;
    case Opcode::kBge:
      if (a >= b) { out.transfer = true; out.target = pc_word + static_cast<std::uint32_t>(ins.imm); }
      break;
    case Opcode::kJ:
      out.transfer = true;
      out.target = static_cast<std::uint32_t>(ins.imm);
      break;
    case Opcode::kJal:
      set_reg(ins.rd, static_cast<std::int32_t>(pc_word + 2));  // past delay slot
      out.transfer = true;
      out.target = static_cast<std::uint32_t>(ins.imm);
      break;
    case Opcode::kJr:
      out.transfer = true;
      out.target = ua;
      break;
    case Opcode::kLw: {
      const std::uint32_t addr = ua + static_cast<std::uint32_t>(ins.imm);
      if (std::uint64_t{addr} + 4 > dmem_.size()) {
        out.fault = true;
        out.fault_addr = addr;
        break;
      }
      std::int32_t v;
      std::memcpy(&v, dmem_.data() + addr, 4);
      set_reg(ins.rd, v);
      break;
    }
    case Opcode::kLb: {
      const std::uint32_t addr = ua + static_cast<std::uint32_t>(ins.imm);
      if (addr >= dmem_.size()) {
        out.fault = true;
        out.fault_addr = addr;
        break;
      }
      set_reg(ins.rd, static_cast<std::int8_t>(dmem_[addr]));
      break;
    }
    case Opcode::kLbu: {
      const std::uint32_t addr = ua + static_cast<std::uint32_t>(ins.imm);
      if (addr >= dmem_.size()) {
        out.fault = true;
        out.fault_addr = addr;
        break;
      }
      set_reg(ins.rd, dmem_[addr]);
      break;
    }
    case Opcode::kSw: {
      const std::uint32_t addr = ua + static_cast<std::uint32_t>(ins.imm);
      if (std::uint64_t{addr} + 4 > dmem_.size()) {
        out.fault = true;
        out.fault_addr = addr;
        break;
      }
      std::memcpy(dmem_.data() + addr, &b, 4);
      break;
    }
    case Opcode::kSb: {
      const std::uint32_t addr = ua + static_cast<std::uint32_t>(ins.imm);
      if (addr >= dmem_.size()) {
        out.fault = true;
        out.fault_addr = addr;
        break;
      }
      dmem_[addr] = static_cast<std::uint8_t>(ub & 0xffu);
      break;
    }
    case Opcode::kOpcodeCount:
    default:
      // Undecodable opcode: trap rather than execute garbage.
      out.fault = true;
      out.fault_addr = pc_word * kInstrBytes;
      break;
  }
  return out;
}

Iss::Step Iss::step_one(RunResult& r, Flow& flow) {
  if (pc_ >= imem_.size()) {
    r.fault = true;
    r.fault_addr = pc_ * kInstrBytes;
    return Step::kFault;
  }
  const Instruction& ins = imem_[pc_];
  if (pc_trace_) pc_trace_->push_back(pc_ * kInstrBytes);

  // Load-use interlock: one bubble when the previous instruction loaded a
  // register this instruction reads.
  unsigned stalls = 0;
  if (last_load_dest_ != 0 && reads_reg(ins, last_load_dest_)) stalls = 1;

  const std::int32_t a = reg(ins.rs1);
  const std::int32_t b = reg(ins.rs2);
  const auto ua = static_cast<std::uint32_t>(a);
  const auto ub = static_cast<std::uint32_t>(b);

  const ExecOut out = operate(ins, a, b, pc_);
  if (out.fault) {
    // The faulting instruction is traced but not accounted; pc_ stays on it.
    r.fault = true;
    r.fault_addr = out.fault_addr;
    return Step::kFault;
  }

  unsigned extra_cycles = 0;
  if (out.transfer && is_branch(ins.op))
    extra_cycles = config_.taken_branch_penalty;

  // -- accounting -----------------------------------------------------------
  const EnergyClass cls = energy_class(ins.op);
  const unsigned cyc = base_cycles(ins.op) + extra_cycles;
  r.cycles += cyc + stalls;
  r.stall_cycles += stalls;
  r.instructions += 1;
  r.energy += model_.instruction_energy(last_class_, cls, cyc);
  if (stalls) r.energy += model_.stall_energy(stalls);
  if (model_.data_dependent() && cls == EnergyClass::kAlu) {
    // Mix the operands asymmetrically so identical operands still carry
    // their value into the signature (a ^ a would always be 0).
    const std::uint32_t sig = ua ^ ((ub << 16) | (ub >> 16));
    r.energy += model_.data_energy(
        static_cast<unsigned>(std::popcount(sig ^ last_alu_operands_)));
    last_alu_operands_ = sig;
  }
  last_class_ = cls;
  last_load_dest_ =
      is_load(ins.op) && ins.rd != 0 ? ins.rd : std::uint8_t{0};

  if (ins.op == Opcode::kHalt) {
    r.halted = true;
    return Step::kHalt;
  }

  // -- control flow (one architectural delay slot) --------------------------
  const std::uint32_t next_pc = pc_ + 1;
  if (flow.in_delay_slot) {
    // A transfer in a delay slot is unpredictable on real hardware; the
    // code generator never emits one. The earlier transfer wins.
    assert(!out.transfer && "control transfer in a delay slot");
    pc_ = flow.pending_target;
    flow.in_delay_slot = false;
  } else if (out.transfer) {
    flow.in_delay_slot = true;
    flow.pending_target = out.target;
    pc_ = next_pc;  // execute the delay slot first
  } else {
    pc_ = next_pc;
  }
  return Step::kOk;
}

Iss::Step Iss::exec_block(const DecodedBlock& blk, RunResult& r, Flow& flow,
                          std::uint64_t& budget) {
  const std::size_t n = blk.ops.size();
  // Accumulate into locals and flush once. The energy accumulator is a
  // running copy of r.energy, not a block subtotal: every add lands on the
  // same partial sum the reference path would have, so rounding — and hence
  // the final bits — matches exactly.
  Cycles cycles = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t done = 0;
  double energy = r.energy;
  EnergyClass last_class = last_class_;
  std::uint8_t last_load_dest = last_load_dest_;
  // Hoisted members: operate() writes memory, so the compiler would
  // otherwise reload these across every op.
  const bool data_dep = model_.data_dependent();
  const unsigned penalty = config_.taken_branch_penalty;
  std::vector<std::uint32_t>* const trace = pc_trace_;
  const MicroOp* const ops = blk.ops.data();

  Step step = Step::kOk;
  // Outer loop: a taken terminator whose fused delay slot lands back on this
  // block's own entry (the shape of every hot loop the code generator emits)
  // replays the next iteration directly, skipping the exit / cache lookup /
  // re-entry cost entirely.
  for (;;) {
  bool end_transfer = false;
  std::uint32_t end_target = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const MicroOp& m = ops[i];
    const Instruction& ins = m.ins;
    const std::uint32_t pcw = blk.entry + static_cast<std::uint32_t>(i);
    if (trace) trace->push_back(pcw * kInstrBytes);

    // Intra-block interlocks were resolved at decode time; only the entry
    // op can stall on a load from before the block (or the delay slot).
    unsigned stalls;
    if (i == 0) {
      stalls = (last_load_dest != 0 && last_load_dest < kNumRegisters &&
                ((blk.entry_read_mask >> last_load_dest) & 1u) != 0)
                   ? 1u
                   : 0u;
    } else {
      stalls = m.stall_before ? 1u : 0u;
    }

    // All register fields are < kNumRegisters (decode barrier), and regs_[0]
    // is never written, so the raw reads match reg().
    const std::int32_t a = regs_[ins.rs1];
    const std::int32_t b = regs_[ins.rs2];

    const ExecOut out = operate(ins, a, b, pcw);
    if (out.fault) {
      r.fault = true;
      r.fault_addr = out.fault_addr;
      pc_ = pcw;
      step = Step::kFault;
      break;
    }

    // Only a block-terminating branch can charge the taken penalty.
    unsigned extra_cycles = 0;
    const bool is_end = i + 1 == n;
    if (out.transfer && is_end && blk.end == BlockEnd::kBranch)
      extra_cycles = penalty;

    // -- accounting (decode-time metadata) ----------------------------------
    const auto cls = static_cast<EnergyClass>(m.cls);
    const unsigned cyc = m.cyc + extra_cycles;
    cycles += cyc + stalls;
    stall_cycles += stalls;
    done += 1;
    if (extra_cycles == 0)
      energy += i == 0 ? blk.entry_energy[static_cast<std::size_t>(last_class)]
                       : m.energy;
    else  // penalty changes the cycle count; price it live
      energy += model_.instruction_energy(last_class, cls, cyc);
    if (stalls) energy += model_.stall_energy(stalls);
    if (data_dep && cls == EnergyClass::kAlu) {
      const auto ua = static_cast<std::uint32_t>(a);
      const auto ub = static_cast<std::uint32_t>(b);
      const std::uint32_t sig = ua ^ ((ub << 16) | (ub >> 16));
      energy += model_.data_energy(
          static_cast<unsigned>(std::popcount(sig ^ last_alu_operands_)));
      last_alu_operands_ = sig;
    }
    last_class = cls;
    last_load_dest = m.sets_load_dest ? ins.rd : std::uint8_t{0};

    if (is_end) {
      if (blk.end == BlockEnd::kHalt) {
        r.halted = true;
        pc_ = pcw;  // stay on the HALT, as the reference path does
        step = Step::kHalt;
        break;
      }
      end_transfer = out.transfer;
      end_target = out.target;
    }
  }

  if (step != Step::kOk) break;
  {
    pc_ = blk.entry + static_cast<std::uint32_t>(n);
    if (end_transfer && blk.has_delay) {
      // Fused delay slot: same sequence the stepping path would run, with
      // the decode-time metadata (its predecessor is always the terminator,
      // so neither its boundary energy nor a stall is dynamic). By
      // construction the fused op cannot itself transfer.
      const MicroOp& m = blk.delay;
      const Instruction& ins = m.ins;
      const std::uint32_t pcw = pc_;
      if (trace) trace->push_back(pcw * kInstrBytes);
      const std::int32_t a = regs_[ins.rs1];
      const std::int32_t b = regs_[ins.rs2];
      const ExecOut out = operate(ins, a, b, pcw);
      if (out.fault) {
        r.fault = true;
        r.fault_addr = out.fault_addr;
        step = Step::kFault;
      } else {
        const auto cls = static_cast<EnergyClass>(m.cls);
        cycles += m.cyc;
        done += 1;
        energy += m.energy;
        if (data_dep && cls == EnergyClass::kAlu) {
          const auto ua = static_cast<std::uint32_t>(a);
          const auto ub = static_cast<std::uint32_t>(b);
          const std::uint32_t sig = ua ^ ((ub << 16) | (ub >> 16));
          energy += model_.data_energy(
              static_cast<unsigned>(std::popcount(sig ^ last_alu_operands_)));
          last_alu_operands_ = sig;
        }
        last_class = cls;
        last_load_dest = m.sets_load_dest ? ins.rd : std::uint8_t{0};
        pc_ = end_target;
        // Hot self-loop: back to our own entry with budget for a whole
        // further iteration — stay inside the replay.
        if (end_target == blk.entry && n + 1 <= budget - done) continue;
      }
    } else if (end_transfer) {
      flow.in_delay_slot = true;  // the delay slot runs on the stepping path
      flow.pending_target = end_target;
    }
  }
  break;
  }  // for (;;)

  budget -= done;
  r.cycles += cycles;
  r.stall_cycles += stall_cycles;
  r.instructions += done;
  r.energy = energy;
  last_class_ = last_class;
  last_load_dest_ = last_load_dest;
  return step;
}

RunResult Iss::run(std::uint64_t max_instructions) {
  // Telemetry is per-invocation deltas only — nothing per instruction. The
  // cumulative block-cache stats are diffed across the call so the global
  // counters aggregate correctly over many Iss instances.
  const bool telem = telemetry::enabled();
  const BlockCacheStats cache_before = telem ? blocks_.stats()
                                             : BlockCacheStats{};
  RunResult r;
  // Per-invocation pipeline fill: the master resumes the CPU at a
  // breakpoint; refill cycles draw roughly the stall current.
  r.cycles += config_.pipeline_fill_cycles;
  r.stall_cycles += config_.pipeline_fill_cycles;
  r.energy += model_.stall_energy(config_.pipeline_fill_cycles);
  last_load_dest_ = 0;

  std::uint64_t budget =
      max_instructions ? max_instructions : config_.default_max_instructions;
  Flow flow;
  const bool use_cache = config_.block_cache;
  const auto imem_words = static_cast<std::uint32_t>(imem_.size());

  while (budget > 0) {
    if (use_cache && !flow.in_delay_slot && pc_ < imem_words) {
      const DecodedBlock* blk = blocks_.find(pc_);
      if (!blk)
        blk = blocks_.insert(
            decode_block(imem_, pc_, model_, config_.block_cache_max_ops));
      // Replay only when the whole block (plus a possible fused delay slot)
      // fits the budget: a partial replay would have to re-derive mid-block
      // state, and the reference path is exact for the tail anyway. Empty
      // blocks (entry op is a decode barrier) also fall through to the
      // stepping path.
      if (!blk->ops.empty() &&
          blk->ops.size() + (blk->has_delay ? 1u : 0u) <= budget) {
        if (exec_block(*blk, r, flow, budget) != Step::kOk) break;
        continue;
      }
    }
    --budget;
    if (step_one(r, flow) != Step::kOk) break;
  }
  if (telem) {
    static telemetry::Counter& invocations =
        telemetry::registry().counter("iss.invocations");
    static telemetry::Counter& instructions =
        telemetry::registry().counter("iss.instructions");
    static telemetry::Counter& bc_hits =
        telemetry::registry().counter("iss.block_cache.hits");
    static telemetry::Counter& bc_decodes =
        telemetry::registry().counter("iss.block_cache.decodes");
    static telemetry::Counter& bc_flushes =
        telemetry::registry().counter("iss.block_cache.capacity_flushes");
    const BlockCacheStats& after = blocks_.stats();
    invocations.add();
    instructions.add(r.instructions);
    bc_hits.add(after.hits - cache_before.hits);
    bc_decodes.add(after.decodes - cache_before.decodes);
    bc_flushes.add(after.capacity_flushes - cache_before.capacity_flushes);
  }
  return r;
}

}  // namespace socpower::iss
