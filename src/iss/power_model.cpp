#include "iss/power_model.hpp"

#include <cassert>

namespace socpower::iss {

InstructionPowerModel::InstructionPowerModel(ElectricalParams params)
    : params_(params) {
  rebuild_energy_tables();
}

InstructionPowerModel InstructionPowerModel::sparclite(
    ElectricalParams params) {
  InstructionPowerModel m(params);
  // Base currents (mA). Magnitudes follow the published SPARC measurements:
  // memory instructions draw the most, ALU in the middle, NOP the least.
  auto set = [&m](EnergyClass c, double ma) { m.set_base_current_ma(c, ma); };
  set(EnergyClass::kNop, 198.0);
  set(EnergyClass::kAlu, 263.0);
  set(EnergyClass::kMul, 296.0);
  set(EnergyClass::kDiv, 281.0);
  set(EnergyClass::kLoad, 330.0);
  set(EnergyClass::kStore, 319.0);
  set(EnergyClass::kBranch, 244.0);
  set(EnergyClass::kJump, 251.0);
  set(EnergyClass::kMoveImm, 232.0);
  set(EnergyClass::kHalt, 198.0);
  // Circuit-state overheads (mA) — small relative to base currents, larger
  // between dissimilar classes (ALU<->memory) than within a class.
  for (std::size_t a = 0; a < kNumEnergyClasses; ++a)
    for (std::size_t b = 0; b < kNumEnergyClasses; ++b)
      m.overhead_ma_[a][b] = (a == b) ? 5.0 : 17.0;
  auto ovh = [&m](EnergyClass a, EnergyClass b, double ma) {
    m.set_overhead_current_ma(a, b, ma);
    m.set_overhead_current_ma(b, a, ma);
  };
  ovh(EnergyClass::kAlu, EnergyClass::kLoad, 24.0);
  ovh(EnergyClass::kAlu, EnergyClass::kStore, 22.0);
  ovh(EnergyClass::kLoad, EnergyClass::kStore, 12.0);
  ovh(EnergyClass::kAlu, EnergyClass::kMul, 28.0);
  ovh(EnergyClass::kBranch, EnergyClass::kLoad, 20.0);
  m.set_stall_current_ma(150.0);
  m.rebuild_energy_tables();  // the direct overhead_ma_ writes above bypass the setters
  return m;
}

InstructionPowerModel InstructionPowerModel::dsp_like(double nj_per_toggle,
                                                      ElectricalParams params) {
  InstructionPowerModel m = sparclite(params);
  m.set_data_toggle_nj(nj_per_toggle);
  return m;
}

void InstructionPowerModel::set_base_current_ma(EnergyClass c, double ma) {
  base_ma_[static_cast<std::size_t>(c)] = ma;
  rebuild_energy_tables();
}

void InstructionPowerModel::set_overhead_current_ma(EnergyClass prev,
                                                    EnergyClass cur,
                                                    double ma) {
  overhead_ma_[static_cast<std::size_t>(prev)][static_cast<std::size_t>(cur)] =
      ma;
  rebuild_energy_tables();
}

double InstructionPowerModel::base_current_ma(EnergyClass c) const {
  return base_ma_[static_cast<std::size_t>(c)];
}

double InstructionPowerModel::overhead_current_ma(EnergyClass prev,
                                                  EnergyClass cur) const {
  return overhead_ma_[static_cast<std::size_t>(prev)]
                     [static_cast<std::size_t>(cur)];
}

Joules InstructionPowerModel::current_to_energy(double ma,
                                                unsigned cycles) const {
  // E = I * Vdd * t, with t = cycles / f.
  return ma * 1e-3 * params_.vdd_volts * static_cast<double>(cycles) /
         params_.clock_hz;
}

void InstructionPowerModel::rebuild_energy_tables() {
  for (std::size_t p = 0; p < kNumEnergyClasses; ++p)
    for (std::size_t c = 0; c < kNumEnergyClasses; ++c)
      pair_energy_[p * kNumEnergyClasses + c] =
          current_to_energy(base_ma_[c] + overhead_ma_[p][c], 1);
  stall_energy_per_cycle_ = current_to_energy(stall_ma_, 1);
}

Joules InstructionPowerModel::data_energy(unsigned toggles) const {
  return nj_per_toggle_ * 1e-9 * static_cast<double>(toggles);
}

}  // namespace socpower::iss
