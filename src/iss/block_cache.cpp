#include "iss/block_cache.hpp"

#include <algorithm>
#include <utility>

namespace socpower::iss {

namespace {

/// Can this opcode redirect control (and therefore terminate a block)?
bool ends_block(Opcode op) {
  return is_branch(op) || is_jump(op) || op == Opcode::kHalt;
}

BlockEnd end_kind(Opcode op) {
  if (is_branch(op)) return BlockEnd::kBranch;
  if (op == Opcode::kJr) return BlockEnd::kJumpReg;
  if (op == Opcode::kHalt) return BlockEnd::kHalt;
  return BlockEnd::kJump;  // kJ / kJal
}

/// Instructions the decoder refuses to lift: an opcode outside the ISA or a
/// register field outside the file. The stepping interpreter defines their
/// (trap) behaviour; lifting them would duplicate that policy here.
bool decode_barrier(const Instruction& ins) {
  return static_cast<std::size_t>(ins.op) >= kNumOpcodes ||
         ins.rd >= kNumRegisters || ins.rs1 >= kNumRegisters ||
         ins.rs2 >= kNumRegisters;
}

}  // namespace

const DecodedBlock* BlockCache::insert(DecodedBlock block) {
  if (blocks_.size() >= max_blocks_) {
    // Generation clear: wholesale flush is simpler than LRU and the working
    // set of a CFSM program is far below any sane capacity anyway.
    blocks_.clear();
    std::fill(index_.begin(), index_.end(), nullptr);
    ++stats_.capacity_flushes;
  }
  ++stats_.decodes;
  auto owned = std::make_unique<DecodedBlock>(std::move(block));
  const DecodedBlock* out = owned.get();
  blocks_[out->entry] = std::move(owned);
  if (out->entry < index_.size()) index_[out->entry] = out;
  return out;
}

std::vector<std::uint32_t> BlockCache::entry_pcs() const {
  std::vector<std::uint32_t> pcs;
  pcs.reserve(blocks_.size());
  for (const auto& [entry, block] : blocks_) pcs.push_back(entry);
  std::sort(pcs.begin(), pcs.end());
  return pcs;
}

void BlockCache::invalidate() {
  if (!blocks_.empty()) {
    blocks_.clear();
    std::fill(index_.begin(), index_.end(), nullptr);
  }
  ++stats_.invalidations;
}

DecodedBlock decode_block(std::span<const Instruction> imem,
                          std::uint32_t entry,
                          const InstructionPowerModel& model,
                          std::uint32_t max_ops) {
  DecodedBlock blk;
  blk.entry = entry;
  if (max_ops == 0) max_ops = 1;

  EnergyClass prev_cls = EnergyClass::kNop;  // placeholder until op 1
  std::uint8_t prev_load_dest = 0;
  std::uint32_t pc = entry;
  while (pc < imem.size() && blk.ops.size() < max_ops) {
    const Instruction& ins = imem[pc];
    if (decode_barrier(ins)) break;  // executes on the reference path

    MicroOp m;
    m.ins = ins;
    const EnergyClass cls = energy_class(ins.op);
    m.cls = static_cast<std::uint8_t>(cls);
    m.cyc = static_cast<std::uint8_t>(base_cycles(ins.op));
    m.sets_load_dest = is_load(ins.op) && ins.rd != 0;

    if (blk.ops.empty()) {
      // The entry op's predecessor class and incoming load-use hazard are
      // only known at replay time: tabulate the boundary energy over every
      // possible incoming class and record which registers the op reads.
      blk.entry_read_mask = reg_read_mask(ins);
      for (std::size_t p = 0; p < kNumEnergyClasses; ++p)
        blk.entry_energy[p] = model.instruction_energy(
            static_cast<EnergyClass>(p), cls, m.cyc);
    } else {
      m.stall_before = prev_load_dest != 0 &&
                       ((reg_read_mask(ins) >> prev_load_dest) & 1u) != 0;
      m.energy = model.instruction_energy(prev_cls, cls, m.cyc);
    }

    prev_cls = cls;
    prev_load_dest = m.sets_load_dest ? ins.rd : std::uint8_t{0};
    const Opcode op = ins.op;
    blk.ops.push_back(m);
    if (ends_block(op)) {
      blk.end = end_kind(op);
      break;
    }
    ++pc;
  }

  // Delay-slot fusion: when the terminator can transfer, the instruction at
  // entry + n is the architectural delay slot and everything about its
  // accounting is static (its predecessor is always the terminator, which is
  // never a load, so it cannot stall either).
  if (blk.end == BlockEnd::kBranch || blk.end == BlockEnd::kJump ||
      blk.end == BlockEnd::kJumpReg) {
    const std::uint32_t slot = entry + static_cast<std::uint32_t>(blk.ops.size());
    if (slot < imem.size() && !decode_barrier(imem[slot]) &&
        !ends_block(imem[slot].op)) {
      const Instruction& ins = imem[slot];
      MicroOp& m = blk.delay;
      m.ins = ins;
      const EnergyClass cls = energy_class(ins.op);
      m.cls = static_cast<std::uint8_t>(cls);
      m.cyc = static_cast<std::uint8_t>(base_cycles(ins.op));
      m.sets_load_dest = is_load(ins.op) && ins.rd != 0;
      m.energy = model.instruction_energy(prev_cls, cls, m.cyc);
      blk.has_delay = true;
    }
  }
  return blk;
}

}  // namespace socpower::iss
