// Pre-decoded basic-block cache for the SLITE ISS — the "ISS fast path".
//
// The ISS dominates co-estimation runtime, and every instruction of the
// reference interpreter pays a decode switch plus two-to-three power-model
// lookups. Power emulation amortizes that bookkeeping over coarser execution
// units; we make the same move in software: the first execution from a PC
// decodes the straight-line run up to the next control transfer (or HALT)
// into a micro-op array whose per-instruction metadata — energy class, base
// cycles, the intra-block inter-instruction energies, the static load-use
// bubbles — is computed once. Re-executions replay the block in a tight
// loop; only the genuinely dynamic terms remain per-instruction work:
//   * the incoming circuit-state boundary (last class before the block),
//   * the entry load-use stall (a load in the previous block/delay slot),
//   * taken-branch penalties (IssConfig::taken_branch_penalty != 0),
//   * the data-dependent ALU term when the model is DSP-like.
// Replay is bit-identical to the reference interpreter by construction: the
// precomputed terms are the very values the interpreter would compute, and
// they are accumulated in the same order.
//
// The cache is bounded: when it reaches `max_blocks` entries the next insert
// clears it wholesale (generation clear). Blocks depend only on instruction
// memory and the power model, so the owner invalidates on load_program();
// reset_cpu() does NOT invalidate — it touches registers and circuit state
// only, and keeping blocks across invocations is precisely what makes the
// co-estimator's per-transition ISS calls cheap.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "iss/isa.hpp"
#include "iss/power_model.hpp"

namespace socpower::iss {

/// One pre-decoded instruction. Everything that is a pure function of the
/// program text and the power model lives here.
struct MicroOp {
  Instruction ins;
  /// instruction_energy(cls[i-1], cls[i], cyc) — fixed because the class
  /// sequence inside a block never changes. Unused for the entry op, whose
  /// predecessor class is dynamic (see DecodedBlock::entry_energy).
  double energy = 0.0;
  std::uint8_t cls = 0;           // EnergyClass, pre-resolved
  std::uint8_t cyc = 1;           // base_cycles, pre-resolved
  bool stall_before = false;      // static intra-block load-use bubble
  bool sets_load_dest = false;    // is_load && rd != 0
};

/// How a decoded block hands control back to the run loop.
enum class BlockEnd : std::uint8_t {
  kFallthrough,  // length-capped (or decode barrier): continue at entry + n
  kBranch,       // conditional PC-relative branch (delay slot follows)
  kJump,         // kJ / kJal: unconditional, static target
  kJumpReg,      // kJr: unconditional, dynamic target
  kHalt,
};

struct DecodedBlock {
  std::uint32_t entry = 0;  // entry word address
  BlockEnd end = BlockEnd::kFallthrough;
  /// Registers read by ops[0] under the interlock rules; combined with the
  /// live last-load destination to price the entry bubble.
  std::uint32_t entry_read_mask = 0;
  /// Entry boundary energy of ops[0], one slot per possible incoming class.
  std::array<double, kNumEnergyClasses> entry_energy{};
  std::vector<MicroOp> ops;  // ops.back() is the terminator unless kFallthrough
  /// Delay-slot fusion: when the block ends in a transfer, the architectural
  /// delay slot is the instruction at entry + ops.size() — also static, so
  /// its metadata decodes with the block (predecessor class is the
  /// terminator's; no entry table needed, and no stall is possible because
  /// branches and jumps never load). Valid only when `has_delay`; unset when
  /// the slot holds a control-capable or undecodable instruction, which the
  /// stepping path must execute to keep its diagnostics.
  MicroOp delay;
  bool has_delay = false;
};

struct BlockCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t decodes = 0;        // blocks decoded and inserted
  std::uint64_t capacity_flushes = 0;  // generation clears at max_blocks
  std::uint64_t invalidations = 0;  // explicit clears (load_program)
};

/// Bounded PC-keyed store of decoded blocks. Not thread-safe — each Iss owns
/// one, and Iss instances are never shared across threads (the parallel
/// explore paths give every exploration point its own CoEstimator/Iss).
class BlockCache {
 public:
  /// `index_words` is the instruction-memory size in words: lookups go
  /// through a direct-mapped pointer table (one load per block entry — a
  /// hash probe per four-instruction block would eat much of the win).
  BlockCache(std::size_t max_blocks, std::size_t index_words)
      : index_(index_words, nullptr), max_blocks_(max_blocks) {}

  /// Cached block entered at `entry`, or nullptr. Counts a hit when found.
  /// Precondition: entry < index_words.
  [[nodiscard]] const DecodedBlock* find(std::uint32_t entry) {
    const DecodedBlock* b = index_[entry];
    if (b) ++stats_.hits;
    return b;
  }
  /// Stores `block` (clearing the cache first when full) and returns the
  /// stored copy, valid until the next insert/invalidate.
  const DecodedBlock* insert(DecodedBlock block);
  void invalidate();

  [[nodiscard]] const BlockCacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return blocks_.size(); }

  /// True when a block entered at `entry` is cached; counts nothing.
  [[nodiscard]] bool contains(std::uint32_t entry) const {
    return entry < index_.size() && index_[entry] != nullptr;
  }
  /// Entry PCs of every cached block, ascending. Serve checkpoints export
  /// only these keys: decode_block() is a pure function of instruction
  /// memory and the power model, so re-decoding on restore reproduces
  /// identical blocks (and identical replay energies).
  [[nodiscard]] std::vector<std::uint32_t> entry_pcs() const;

 private:
  std::vector<const DecodedBlock*> index_;  // direct-mapped view of blocks_
  std::unordered_map<std::uint32_t, std::unique_ptr<DecodedBlock>> blocks_;
  std::size_t max_blocks_;
  BlockCacheStats stats_;
};

/// Decodes the basic block entered at `entry`: the straight-line run up to
/// and including the first control-capable instruction (branch, jump, HALT),
/// capped at `max_ops` micro-ops. Returns a block with empty `ops` when
/// `entry` lies outside instruction memory (the caller falls back to the
/// stepping interpreter, which reports the fetch fault). Instructions with
/// malformed register fields or an undecodable opcode act as decode
/// barriers: the block ends before them and they execute on the reference
/// path, preserving its diagnostics.
[[nodiscard]] DecodedBlock decode_block(std::span<const Instruction> imem,
                                        std::uint32_t entry,
                                        const InstructionPowerModel& model,
                                        std::uint32_t max_ops);

}  // namespace socpower::iss
