// Instruction-level power model in the style of Tiwari et al. [6], which the
// paper uses for the SPARClite: each instruction (class) has a base supply
// current measured while executing it in a loop; executing instruction B
// after instruction A additionally draws a "circuit-state overhead" current
// that depends on the (A, B) pair; stalls draw a separate stall current.
//
// Energy of an instruction occupying `cycles` clock cycles:
//   E = (I_base(class) + I_ovh(prev_class, class)) * Vdd * cycles / f
//
// Crucially — and this is what makes the paper's energy caching exact for
// the SPARClite (Section 5.2) — the model is independent of the data values
// the instructions operate on. An optional data-dependent term (DSP-style)
// can be enabled to study the caching error the paper predicts for such
// processors: it adds energy proportional to the Hamming distance of
// consecutive ALU operand pairs.
#pragma once

#include <array>
#include <cstdint>

#include "iss/isa.hpp"
#include "util/units.hpp"

namespace socpower::iss {

class InstructionPowerModel {
 public:
  /// Builds the default SPARClite-class table (currents in mA at 3.3 V).
  static InstructionPowerModel sparclite(ElectricalParams params = {});

  /// Same base tables with the data-dependent term enabled —
  /// `nj_per_toggle` nanojoules per toggled operand bit.
  static InstructionPowerModel dsp_like(double nj_per_toggle,
                                        ElectricalParams params = {});

  [[nodiscard]] const ElectricalParams& params() const { return params_; }
  [[nodiscard]] bool data_dependent() const { return nj_per_toggle_ > 0.0; }

  void set_base_current_ma(EnergyClass c, double ma);
  void set_overhead_current_ma(EnergyClass prev, EnergyClass cur, double ma);
  void set_stall_current_ma(double ma) {
    stall_ma_ = ma;
    rebuild_energy_tables();
  }
  void set_data_toggle_nj(double nj) { nj_per_toggle_ = nj; }

  [[nodiscard]] double base_current_ma(EnergyClass c) const;
  [[nodiscard]] double overhead_current_ma(EnergyClass prev,
                                           EnergyClass cur) const;

  /// Energy of one instruction of class `cur`, preceded by `prev`, occupying
  /// `cycles` cycles (base cycles; stalls are billed separately). One load
  /// from the flattened (prev, cur) pair-energy table and one multiply — the
  /// currents are folded into joules-per-cycle whenever the tables change,
  /// so neither the interpreter nor the block decoder recomputes them per
  /// instruction.
  [[nodiscard]] Joules instruction_energy(EnergyClass prev, EnergyClass cur,
                                          unsigned cycles) const {
    return pair_energy_[static_cast<std::size_t>(prev) * kNumEnergyClasses +
                        static_cast<std::size_t>(cur)] *
           static_cast<double>(cycles);
  }
  /// Energy of `cycles` pipeline-stall cycles.
  [[nodiscard]] Joules stall_energy(unsigned cycles) const {
    return stall_energy_per_cycle_ * static_cast<double>(cycles);
  }
  /// Data-dependent term: energy for `toggles` switched operand bits
  /// (zero unless the DSP-style term is enabled).
  [[nodiscard]] Joules data_energy(unsigned toggles) const;

 private:
  explicit InstructionPowerModel(ElectricalParams params);

  [[nodiscard]] Joules current_to_energy(double ma, unsigned cycles) const;
  /// Refolds base/overhead/stall currents into the flat per-cycle energy
  /// tables. Called by the constructor and every current setter.
  void rebuild_energy_tables();

  ElectricalParams params_;
  std::array<double, kNumEnergyClasses> base_ma_{};
  std::array<std::array<double, kNumEnergyClasses>, kNumEnergyClasses>
      overhead_ma_{};
  double stall_ma_ = 0.0;
  double nj_per_toggle_ = 0.0;
  /// pair_energy_[prev * kNumEnergyClasses + cur] = joules of ONE cycle of
  /// class `cur` executed after `prev` (base + circuit-state overhead).
  std::array<double, kNumEnergyClasses * kNumEnergyClasses> pair_energy_{};
  double stall_energy_per_cycle_ = 0.0;
};

}  // namespace socpower::iss
