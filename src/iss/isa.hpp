// SLITE: a small SPARClite-flavoured RISC ISA for the embedded-software side
// of the co-estimation framework.
//
// The paper's flow compiles each software process to SPARClite object code
// and simulates it on SPARCsim, an ISS enhanced with the measurement-based
// instruction-level power model of Tiwari et al. We reproduce the parts the
// co-estimation layer observes: a load/store RISC with delayed branches,
// load-use interlocks and multi-cycle multiply/divide, executed by an ISS
// that reports cycles and energy per invocation. Register windows are elided
// (they affect neither the synchronization protocol nor the acceleration
// techniques).
//
// 32 general registers; r0 reads as zero. Branches and jumps have a single
// architectural delay slot, as on SPARC.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace socpower::iss {

enum class Opcode : std::uint8_t {
  kNop,
  kHalt,  // returns control to the simulation master (breakpoint stand-in)
  kMovI,  // rd <- sext(imm16)
  kMovHi, // rd <- imm16 << 16
  kAdd, kSub, kMul, kDiv,          // rd <- rs1 op rs2
  kAddI, kSubI,                    // rd <- rs1 op sext(imm16)
  kAnd, kOr, kXor,                 // rd <- rs1 op rs2
  kAndI, kOrI, kXorI,
  kSll, kSrl, kSra,                // rd <- rs1 shift (rs2 & 31)
  kSllI, kSrlI, kSraI,
  kSlt, kSltu, kSltI,              // set-on-less-than (signed/unsigned/imm)
  kBeq, kBne, kBlt, kBge,          // branch rs1 ? rs2, pc-relative imm, 1 delay slot
  kJ,                              // absolute word target in imm
  kJal,                            // link in rd, then jump
  kJr,                             // jump to rs1
  kLw, kLb, kLbu,                  // rd <- mem[rs1 + sext(imm16)]
  kSw, kSb,                        // mem[rs1 + sext(imm16)] <- rs2
  kOpcodeCount,
};

inline constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::kOpcodeCount);
inline constexpr int kNumRegisters = 32;
inline constexpr std::uint32_t kInstrBytes = 4;

/// Energy classes for the instruction-level power model: instructions in one
/// class draw approximately the same supply current (Tiwari's observation).
enum class EnergyClass : std::uint8_t {
  kNop, kAlu, kMul, kDiv, kLoad, kStore, kBranch, kJump, kMoveImm, kHalt,
  kClassCount,
};

inline constexpr std::size_t kNumEnergyClasses =
    static_cast<std::size_t>(EnergyClass::kClassCount);

struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;  // 16-bit immediates; 26-bit word target for kJ/kJal

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

using Program = std::vector<Instruction>;

[[nodiscard]] const char* opcode_name(Opcode op);
[[nodiscard]] EnergyClass energy_class(Opcode op);
/// Base execution cycles of the opcode, excluding stalls (MUL/DIV are
/// multi-cycle; everything else is 1).
[[nodiscard]] unsigned base_cycles(Opcode op);
[[nodiscard]] bool is_branch(Opcode op);
[[nodiscard]] bool is_jump(Opcode op);
[[nodiscard]] bool is_load(Opcode op);
[[nodiscard]] bool is_store(Opcode op);
/// True when the opcode writes `rd`.
[[nodiscard]] bool writes_rd(Opcode op);

/// Bit i set => the instruction reads general register i under the load-use
/// interlock rules (r0 never interlocks; out-of-range register fields are
/// ignored). Shared by the interpreter's stall check and the basic-block
/// decoder, so both paths agree on when a bubble is inserted.
[[nodiscard]] std::uint32_t reg_read_mask(const Instruction& ins);

/// Binary encoding (4 bytes per instruction, fixed width). Three formats:
///   R-type: [31:26] op  [25:21] rd  [20:16] rs1  [15:11] rs2  [10:0] 0
///   I-type: [31:26] op  [25:21] rd  [20:16] rs1  [15:0]  imm16
///           (branches reuse rd as rs2: op | rs2 | rs1 | imm16)
///   J-type: [31:26] op  [25:0]  word target
/// Encoding is used for code-size accounting, the instruction-cache address
/// stream, and round-trip tests; the ISS executes the decoded form.
[[nodiscard]] std::uint32_t encode(const Instruction& ins);
[[nodiscard]] Instruction decode(std::uint32_t word);

/// One-line disassembly, e.g. "add r5, r4, r3".
[[nodiscard]] std::string disassemble(const Instruction& ins);

}  // namespace socpower::iss
