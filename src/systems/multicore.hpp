// N-core generalization of the producer/consumer system (Figure 1): the
// scenario family that exercises per-core software estimation, the
// MSI-coherent private L1s and the routed interconnect.
//
//   worker[i] (SW, SPARClite, mapped to CPU core i): upon START_i from the
//     environment, performs a checksum-like computation over NUM_BYTES
//     pseudo-bytes (one self-triggered STEP_i transition per byte), then
//     emits DONE with the checksum and writes its result block to a small
//     *shared* buffer — all workers hit the same few cache lines, so with
//     coherence enabled the lines ping-pong between the private L1s and the
//     invalidation/writeback messages load the interconnect.
//   timer (HW): counts TIMER_TICKs and broadcasts the current TIME.
//   collector (HW): upon each DONE, computes N_IT += (TIME - PREV_TIME) +
//     base and runs a loop of N_IT iterations, emitting BYTE_DONE each.
//
// The collector's workload depends on the *actual* spacing of the DONEs,
// which in turn depends on per-core execution times, interconnect
// contention and coherence stalls. A timing-independent behavioral trace
// (unit-delay transitions) collapses the spacing, and with N cores there
// are N interleaved DONE streams to get wrong — the separate-estimation
// error grows with the core count beyond any single-CPU scenario's.
#pragma once

#include <vector>

#include "cfsm/cfsm.hpp"
#include "core/coestimator.hpp"
#include "sim/event_queue.hpp"

namespace socpower::systems {

struct MulticoreParams {
  unsigned cores = 2;
  /// Packets per worker; each packet is one START_i -> DONE computation.
  int num_packets = 8;
  /// Pseudo-bytes per packet (STEP_i transitions).
  int bytes_per_packet = 24;
  /// Environment tick period (cycles) driving the HW timer.
  sim::SimTime tick_period = 64;
  /// Gap between consecutive START events per worker (cycles); workers are
  /// additionally staggered by one cycle each so instants never collide.
  sim::SimTime start_gap = 2;
  /// Fixed per-packet iterations the collector runs on top of the
  /// timing-dependent TIME - PREV_TIME term.
  int collector_base_iterations = 16;
  /// Interconnect the config_template() selects.
  core::InterconnectKind interconnect = core::InterconnectKind::kBus;
  /// Model the shared result buffer through the MSI-coherent L1s.
  bool coherent = true;
  /// Distinct shared-buffer cache lines the workers' writes spread over;
  /// small values maximize invalidation ping-pong.
  unsigned shared_lines = 4;
};

class MulticoreSystem {
 public:
  explicit MulticoreSystem(MulticoreParams params = {});

  [[nodiscard]] const cfsm::Network& network() const { return network_; }
  [[nodiscard]] cfsm::Network& network() { return network_; }

  [[nodiscard]] const std::vector<cfsm::CfsmId>& workers() const {
    return workers_;
  }
  [[nodiscard]] cfsm::CfsmId timer() const { return timer_; }
  [[nodiscard]] cfsm::CfsmId collector() const { return collector_; }
  [[nodiscard]] cfsm::EventId done_event() const { return ev_done_; }
  [[nodiscard]] cfsm::EventId byte_done_event() const { return ev_byte_done_; }

  /// A CoEstimatorConfig with the structural multicore knobs filled in:
  /// cores, interconnect kind (a mesh sized to fit cores + memory when
  /// kNoc) and the coherent data side.
  [[nodiscard]] core::CoEstimatorConfig config_template() const;

  /// Map worker i to SW on core i, timer and collector to HW, and install
  /// the shared-buffer traffic hook (worker i is interconnect master i).
  void configure(core::CoEstimator& est) const;

  /// Environment stimulus: per-worker START bursts plus periodic
  /// TIMER_TICKs covering `horizon` cycles.
  [[nodiscard]] sim::Stimulus stimulus(sim::SimTime horizon) const;

  [[nodiscard]] const MulticoreParams& params() const { return params_; }

 private:
  MulticoreParams params_;
  cfsm::Network network_;
  std::vector<cfsm::CfsmId> workers_;
  cfsm::CfsmId timer_ = cfsm::kNoCfsm;
  cfsm::CfsmId collector_ = cfsm::kNoCfsm;
  std::vector<cfsm::EventId> ev_start_;  // per worker
  std::vector<cfsm::EventId> ev_step_;   // per worker
  cfsm::EventId ev_done_ = -1;
  cfsm::EventId ev_tick_ = -1;
  cfsm::EventId ev_time_ = -1;
  cfsm::EventId ev_iter_ = -1;
  cfsm::EventId ev_byte_done_ = -1;
  cfsm::EventId ev_reset_ = -1;
};

}  // namespace socpower::systems
