// Terse construction sugar for CFSM behaviors, shared by the benchmark
// systems. Wraps one Cfsm's expression arena and s-graph.
#pragma once

#include "cfsm/cfsm.hpp"

namespace socpower::systems {

struct Behavior {
  cfsm::Cfsm& c;

  // -- expressions -----------------------------------------------------------
  using E = cfsm::ExprId;
  [[nodiscard]] E k(std::int32_t v) { return c.arena().constant(v); }
  [[nodiscard]] E v(cfsm::VarId var) { return c.arena().variable(var); }
  [[nodiscard]] E val(cfsm::EventId e) { return c.arena().event_value(e); }
  [[nodiscard]] E present(cfsm::EventId e) {
    return c.arena().event_present(e);
  }
  [[nodiscard]] E bin(cfsm::ExprOp op, E a, E b) {
    return c.arena().binary(op, a, b);
  }
  [[nodiscard]] E un(cfsm::ExprOp op, E a) { return c.arena().unary(op, a); }
  [[nodiscard]] E add(E a, E b) { return bin(cfsm::ExprOp::kAdd, a, b); }
  [[nodiscard]] E sub(E a, E b) { return bin(cfsm::ExprOp::kSub, a, b); }
  [[nodiscard]] E mul(E a, E b) { return bin(cfsm::ExprOp::kMul, a, b); }
  [[nodiscard]] E band(E a, E b) { return bin(cfsm::ExprOp::kBitAnd, a, b); }
  [[nodiscard]] E bxor(E a, E b) { return bin(cfsm::ExprOp::kBitXor, a, b); }
  [[nodiscard]] E bor(E a, E b) { return bin(cfsm::ExprOp::kBitOr, a, b); }
  [[nodiscard]] E shl(E a, int bits) {
    return bin(cfsm::ExprOp::kShl, a, k(bits));
  }
  [[nodiscard]] E shr(E a, int bits) {
    return bin(cfsm::ExprOp::kShr, a, k(bits));
  }
  [[nodiscard]] E eq(E a, E b) { return bin(cfsm::ExprOp::kEq, a, b); }
  [[nodiscard]] E gt(E a, E b) { return bin(cfsm::ExprOp::kGt, a, b); }
  [[nodiscard]] E ge(E a, E b) { return bin(cfsm::ExprOp::kGe, a, b); }
  [[nodiscard]] E lt(E a, E b) { return bin(cfsm::ExprOp::kLt, a, b); }
  [[nodiscard]] E le(E a, E b) { return bin(cfsm::ExprOp::kLe, a, b); }

  // -- s-graph nodes (built bottom-up: successors first) ----------------------
  using N = cfsm::NodeId;
  [[nodiscard]] N end() { return c.graph().add_end(); }
  [[nodiscard]] N assign(cfsm::VarId var, E rhs, N next) {
    return c.graph().add_assign(var, rhs, next);
  }
  [[nodiscard]] N emit(cfsm::EventId e, E value, N next) {
    return c.graph().add_emit(e, value, next);
  }
  [[nodiscard]] N emit0(cfsm::EventId e, N next) {
    return c.graph().add_emit(e, cfsm::kNoExpr, next);
  }
  [[nodiscard]] N test(E cond, N then_n, N else_n) {
    return c.graph().add_test(cond, then_n, else_n);
  }
  void root(N n) { c.graph().set_root(n); }
};

}  // namespace socpower::systems
