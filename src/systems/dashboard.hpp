// Automotive dashboard controller — the "automotive controller" the paper's
// abstract lists as a driver application. The paper gives no details, so the
// system is modeled on the classic POLIS dashboard example from the same
// research group: a control-dominated, reactive mix of software and
// hardware processes.
//
//   speedo (SW)      counts wheel pulses and computes the speed each
//                    TIMER_100MS window, publishing SPEED_EV.
//   odometer (SW)    accumulates wheel pulses into distance ticks.
//   cruise (SW)      proportional throttle controller tracking the sampled
//                    SPEED_EV while engaged (CRUISE_SET / CRUISE_OFF).
//   belt_alarm (HW)  if the key is on and the belt is off, sounds the alarm
//                    after five TIMER_1S ticks (the canonical POLIS belt
//                    controller).
//   fuel (HW)        exponential smoothing of FUEL_SAMPLE readings; warns
//                    when the filtered level crosses the low threshold.
#pragma once

#include "cfsm/cfsm.hpp"
#include "core/coestimator.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace socpower::systems {

struct DashboardParams {
  /// Length of the generated driving scenario, in 100 ms frames.
  int frames = 40;
  /// Cycles per 100 ms frame at the modeled clock (scaled down to keep runs
  /// quick; the relative event rates are what matters).
  sim::SimTime frame_cycles = 2000;
  int pulses_per_frame_max = 12;  // ~ top speed
  std::int32_t fuel_low_threshold = 40;
  std::uint64_t seed = 7;
};

class DashboardSystem {
 public:
  explicit DashboardSystem(DashboardParams params = {});

  [[nodiscard]] const cfsm::Network& network() const { return network_; }
  [[nodiscard]] cfsm::Network& network() { return network_; }

  [[nodiscard]] cfsm::CfsmId speedo() const { return speedo_; }
  [[nodiscard]] cfsm::CfsmId odometer() const { return odometer_; }
  [[nodiscard]] cfsm::CfsmId cruise() const { return cruise_; }
  [[nodiscard]] cfsm::CfsmId belt_alarm() const { return belt_; }
  [[nodiscard]] cfsm::CfsmId fuel() const { return fuel_; }
  [[nodiscard]] cfsm::EventId alarm_on_event() const { return ev_alarm_on_; }
  [[nodiscard]] cfsm::EventId fuel_low_event() const { return ev_fuel_low_; }

  /// Which processes go to hardware. belt_alarm and fuel are always HW
  /// (trivial reactive logic); the three computation tasks are the
  /// partitioning degrees of freedom.
  struct Partition {
    bool speedo_hw = false;
    bool odometer_hw = false;
    bool cruise_hw = false;
  };

  void configure(core::CoEstimator& est, Partition partition) const;
  void configure(core::CoEstimator& est) const {
    configure(est, Partition{});
  }

  /// A driving scenario: key on, belt fastened late (provoking the alarm),
  /// speed ramping up and down, fuel draining.
  [[nodiscard]] sim::Stimulus stimulus() const;

  [[nodiscard]] const DashboardParams& params() const { return params_; }

 private:
  DashboardParams params_;
  cfsm::Network network_;
  cfsm::CfsmId speedo_ = cfsm::kNoCfsm;
  cfsm::CfsmId odometer_ = cfsm::kNoCfsm;
  cfsm::CfsmId cruise_ = cfsm::kNoCfsm;
  cfsm::CfsmId belt_ = cfsm::kNoCfsm;
  cfsm::CfsmId fuel_ = cfsm::kNoCfsm;

  cfsm::EventId ev_wheel_ = -1;
  cfsm::EventId ev_t100_ = -1;
  cfsm::EventId ev_t1s_ = -1;
  cfsm::EventId ev_speed_ = -1;
  cfsm::EventId ev_odo_ = -1;
  cfsm::EventId ev_key_ = -1;      // value 1 = on, 0 = off
  cfsm::EventId ev_belt_ = -1;     // value 1 = fastened
  cfsm::EventId ev_alarm_on_ = -1;
  cfsm::EventId ev_alarm_off_ = -1;
  cfsm::EventId ev_fuel_sample_ = -1;
  cfsm::EventId ev_fuel_low_ = -1;
  cfsm::EventId ev_cruise_set_ = -1;
  cfsm::EventId ev_cruise_off_ = -1;
  cfsm::EventId ev_throttle_ = -1;
};

}  // namespace socpower::systems
