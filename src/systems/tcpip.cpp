#include "systems/tcpip.hpp"

#include <algorithm>
#include <cassert>

#include "systems/builder.hpp"

namespace socpower::systems {

using cfsm::ExprOp;

TcpIpSystem::TcpIpSystem(TcpIpParams params) : params_(params) {
  // The checksum operates on 16-bit words, so DMA blocks must not split a
  // word: block sizes are required to be even (as all the paper's swept
  // sizes, 2..128, are).
  assert(params_.dma_block_size % 2 == 0 && params_.dma_block_size > 0);
  // Workload: pseudo-random packet payloads, reproducible by seed.
  Rng rng(params_.seed);
  packets_.resize(static_cast<std::size_t>(params_.num_packets));
  for (auto& p : packets_) {
    p.resize(static_cast<std::size_t>(params_.packet_bytes));
    for (auto& byte : p) byte = static_cast<std::uint8_t>(rng.below(256));
  }
  build_network();
}

void TcpIpSystem::build_network() {
  ev_packet_in_ = network_.declare_event("PACKET_IN");
  ev_cp_step_ = network_.declare_event("CP_STEP");
  ev_pkt_enq_ = network_.declare_event("PKT_ENQ");
  ev_pkt_rdy_ = network_.declare_event("PKT_RDY");
  ev_pkt_deq_ = network_.declare_event("PKT_DEQ");
  ev_chk_start_ = network_.declare_event("CHK_START");
  ev_mem_req_ = network_.declare_event("MEM_REQ");
  ev_mem_data_ = network_.declare_event("MEM_DATA");
  ev_blk_done_ = network_.declare_event("BLK_DONE");
  ev_chk_sum_ = network_.declare_event("CHK_SUM");
  ev_chk_exp_ = network_.declare_event("CHK_EXP");
  ev_pkt_out_ = network_.declare_event("PKT_OUT");
  ev_desc_wr_ = network_.declare_event("DESC_WR");
  ev_dma_cfg_ = network_.declare_event("DMA_CFG");

  // ---- create_pack (software) ------------------------------------------------
  // Receives a packet from the IP layer and stores it into the shared
  // memory: a software copy/marshalling loop over the payload (one CP_STEP
  // transition per 4-byte group), then header finalization and the enqueue.
  {
    cfsm::Cfsm& c = network_.add_cfsm("create_pack");
    c.add_input(ev_packet_in_);
    c.add_input(ev_cp_step_);
    c.add_output(ev_cp_step_);
    c.add_output(ev_pkt_enq_);
    const auto SEQ = c.add_var("SEQ");
    const auto CNT = c.add_var("CNT");
    var_cp_cnt_ = CNT;
    const auto LEN = c.add_var("LEN");
    const auto PKTS = c.add_var("PKTS");  // packets queued by the IP layer
    const auto H1 = c.add_var("H1");
    const auto H2 = c.add_var("H2");
    const auto H3 = c.add_var("H3");
    const auto CRC = c.add_var("CRC");
    Behavior b{c};

    auto start_copy = [&](Behavior::N next) {
      return b.assign(
          SEQ, b.add(b.v(SEQ), b.k(1)),
          b.assign(CNT, b.v(LEN), b.emit0(ev_cp_step_, next)));
    };

    // PACKET_IN handling (the copy-loop tail chains into it so an arrival
    // in the same instant as a CP_STEP is never lost): queue the packet;
    // start copying if idle.
    const auto n_in_branch = b.assign(
        PKTS, b.add(b.v(PKTS), b.k(1)),
        b.assign(LEN, b.val(ev_packet_in_),
                 b.test(b.eq(b.v(CNT), b.k(0)), start_copy(b.end()),
                        b.end())));
    const auto n_in_test =
        b.test(b.present(ev_packet_in_), n_in_branch, b.end());

    // Header finalization + enqueue (end of the copy loop); start the next
    // queued packet if any.
    const auto n_next = b.test(b.gt(b.v(PKTS), b.k(0)),
                               start_copy(n_in_test), n_in_test);
    auto fin = b.assign(PKTS, b.sub(b.v(PKTS), b.k(1)),
                        b.emit(ev_pkt_enq_, b.v(LEN), n_next));
    fin = b.assign(CRC, b.bxor(b.v(CRC), b.shr(b.v(CRC), 8)), fin);
    fin = b.assign(CRC, b.bxor(b.mul(b.v(H3), b.k(7)), b.v(H1)), fin);
    fin = b.assign(H3, b.bor(b.v(H2), b.shl(b.v(SEQ), 8)), fin);
    fin = b.assign(H2, b.band(b.bxor(b.v(H1), b.shr(b.v(H1), 4)), b.k(255)),
                   fin);
    fin = b.assign(H1, b.add(b.mul(b.v(LEN), b.k(3)), b.v(SEQ)), fin);

    // Copy-loop body: per-4-byte-group marshalling with CRC-style reduction
    // arithmetic (multiply/divide/modulo dominated — long-latency operations
    // the additive macro-model prices comparatively well, unlike the leafy
    // control code of the per-block handler).
    const auto n_more = b.test(b.gt(b.v(CNT), b.k(0)),
                               b.emit0(ev_cp_step_, n_in_test), fin);
    using EO = cfsm::ExprOp;
    auto body = b.assign(CNT, b.sub(b.v(CNT), b.k(4)), n_more);
    body = b.assign(CRC, b.add(b.bxor(b.v(CRC), b.v(H1)), b.v(CNT)), body);
    body = b.assign(
        H3, b.bin(EO::kMod, b.add(b.v(H3), b.mul(b.v(H1), b.k(31))),
                  b.k(65521)),
        body);
    body = b.assign(
        H2, b.add(b.bin(EO::kDiv, b.v(CRC), b.k(13)),
                  b.bin(EO::kMod, b.v(H2), b.k(8191))),
        body);
    body = b.assign(
        H1, b.add(b.mul(b.v(CNT), b.k(13)),
                  b.bin(EO::kDiv, b.v(H1), b.k(7))),
        body);
    // Guard against stale CP_STEP events when idle.
    const auto n_step_guard =
        b.test(b.gt(b.v(CNT), b.k(0)), body, n_in_test);
    b.root(b.test(b.present(ev_cp_step_), n_step_guard, n_in_test));
    create_pack_ = c.id();
  }

  // ---- packet_queue (hardware) -------------------------------------------------
  {
    cfsm::Cfsm& c = network_.add_cfsm("packet_queue");
    c.add_input(ev_pkt_enq_);
    c.add_input(ev_pkt_deq_);
    c.add_output(ev_pkt_rdy_);
    const auto DEPTH = c.add_var("DEPTH");
    const auto LEN = c.add_var("LEN");
    Behavior b{c};
    // Dequeue part (runs after the enqueue part when both are present).
    const auto n_dq_rdy = b.emit(ev_pkt_rdy_, b.v(LEN), b.end());
    const auto n_dq_more = b.test(b.gt(b.v(DEPTH), b.k(0)), n_dq_rdy, b.end());
    const auto n_dq = b.assign(DEPTH, b.sub(b.v(DEPTH), b.k(1)), n_dq_more);
    const auto n_deq_test = b.test(b.present(ev_pkt_deq_), n_dq, b.end());
    // Enqueue part.
    const auto n_enq_inc =
        b.assign(DEPTH, b.add(b.v(DEPTH), b.k(1)), n_deq_test);
    const auto n_enq_rdy =
        b.emit(ev_pkt_rdy_, b.val(ev_pkt_enq_), n_enq_inc);
    const auto n_enq_empty =
        b.test(b.eq(b.v(DEPTH), b.k(0)), n_enq_rdy, n_enq_inc);
    const auto n_enq = b.assign(LEN, b.val(ev_pkt_enq_), n_enq_empty);
    b.root(b.test(b.present(ev_pkt_enq_), n_enq, n_deq_test));
    queue_ = c.id();
  }

  // ---- ip_check (software) ------------------------------------------------------
  {
    cfsm::Cfsm& c = network_.add_cfsm("ip_check");
    c.add_input(ev_pkt_rdy_);
    c.add_input(ev_blk_done_);
    c.add_input(ev_chk_sum_);
    c.add_sampled_input(ev_chk_exp_);
    c.add_output(ev_chk_start_);
    c.add_output(ev_pkt_deq_);
    c.add_output(ev_pkt_out_);
    c.add_output(ev_desc_wr_);
    const auto REM2 = c.add_var("REM2");
    const auto PROG = c.add_var("PROG");
    const auto OKS = c.add_var("OKS");
    const auto ERRS = c.add_var("ERRS");
    const auto H1 = c.add_var("H1");
    const auto H2 = c.add_var("H2");
    var_oks_ = OKS;
    var_errs_ = ERRS;
    Behavior b{c};

    // CHK_SUM branch: compare computed checksum to the expected one.
    const auto n_deq = b.emit0(ev_pkt_deq_, b.end());
    const auto n_ok = b.assign(OKS, b.add(b.v(OKS), b.k(1)),
                               b.emit(ev_pkt_out_, b.k(1), n_deq));
    const auto n_bad = b.assign(ERRS, b.add(b.v(ERRS), b.k(1)),
                                b.emit(ev_pkt_out_, b.k(0), n_deq));
    const auto n_cmp = b.test(b.eq(b.val(ev_chk_sum_), b.val(ev_chk_exp_)),
                              n_ok, n_bad);
    const auto n_sum_test = b.test(b.present(ev_chk_sum_), n_cmp, b.end());

    // BLK_DONE branch: per-DMA-block progress tracking (the software cost
    // that scales with the number of DMA grants): descriptor update, bounds
    // clamp, watchdog re-arm — short, branchy control code, which is
    // exactly the kind the additive macro-model prices worst (every leaf
    // and every test carries its full standalone-characterization harness).
    // Falls through to the CHK_SUM test because the final block's BLK_DONE
    // and the checksum result arrive in the same instant.
    auto n_blk = b.assign(PROG, b.add(b.v(PROG), b.k(1)), n_sum_test);
    // Publish the updated descriptor word (the traffic hook turns this into
    // a shared-memory write when ip_check is an ASIC).
    n_blk = b.emit(ev_desc_wr_, b.v(REM2), n_blk);
    n_blk = b.test(b.eq(b.band(b.v(PROG), b.k(3)), b.k(0)),
                   b.assign(H2, b.k(1), n_blk), n_blk);  // watchdog re-arm
    n_blk = b.test(b.lt(b.v(REM2), b.k(0)),
                   b.assign(REM2, b.k(0), n_blk), n_blk);  // bounds clamp
    n_blk = b.assign(REM2, b.sub(b.v(REM2), b.val(ev_blk_done_)), n_blk);
    const auto n_blk_test =
        b.test(b.present(ev_blk_done_), n_blk, n_sum_test);

    // PKT_RDY branch: header zeroing busywork, then start the ASIC. Falls
    // through to the BLK_DONE test — all three branches chain, so triggers
    // that land in the same instant are all served by the merged reaction.
    auto n = b.emit(ev_chk_start_, b.val(ev_pkt_rdy_), n_blk_test);
    n = b.assign(PROG, b.k(0), n);
    n = b.assign(REM2, b.val(ev_pkt_rdy_), n);
    n = b.assign(H1, b.bxor(b.v(H1), b.v(H2)), n);
    n = b.assign(H2, b.add(b.shl(b.v(H1), 1), b.k(3)), n);
    n = b.assign(H1, b.bxor(b.val(ev_pkt_rdy_), b.k(85)), n);
    b.root(b.test(b.present(ev_pkt_rdy_), n, n_blk_test));
    ip_check_ = c.id();
  }

  // ---- checksum (hardware ASIC) ---------------------------------------------------
  // Double-buffered DMA engine: one block streams through the accumulator
  // while the next block's bus read is already pending (prefetch), so the
  // ASIC keeps standing read pressure on the arbiter — which is what makes
  // the bus priority assignment a real design variable (Figure 7).
  {
    cfsm::Cfsm& c = network_.add_cfsm("checksum");
    c.add_input(ev_chk_start_);
    c.add_input(ev_mem_data_);
    c.add_sampled_input(ev_dma_cfg_);
    c.add_output(ev_mem_req_);
    c.add_output(ev_blk_done_);
    c.add_output(ev_chk_sum_);
    const auto REM = c.add_var("REM");      // bytes not yet requested
    const auto ACC = c.add_var("ACC");
    const auto WREM = c.add_var("WREM");    // words left in streaming block
    const auto BLKC = c.add_var("BLKC");    // bytes of the streaming block
    const auto WNEXT = c.add_var("WNEXT");  // words of the prefetched block
    const auto BLKN = c.add_var("BLKN");    // bytes of the prefetched block
    Behavior b{c};

    // "Prefetch one DMA block" subgraph builder (instantiated per use-site;
    // the s-graph is a DAG so a path may pass through each node once):
    //   if REM > 0: BLKN := min(REM, DMA); WNEXT := ceil(BLKN/4);
    //               REM -= BLKN; MEM_REQ(BLKN)
    auto prefetch = [&](Behavior::N next) {
      const auto emit_req = b.emit(ev_mem_req_, b.v(BLKN), next);
      const auto dec_rem =
          b.assign(REM, b.sub(b.v(REM), b.v(BLKN)), emit_req);
      const auto set_words =
          b.assign(WNEXT, b.shr(b.add(b.v(BLKN), b.k(3)), 2), dec_rem);
      const auto pick = b.test(b.le(b.v(REM), b.val(ev_dma_cfg_)),
                               b.assign(BLKN, b.v(REM), set_words),
                               b.assign(BLKN, b.val(ev_dma_cfg_), set_words));
      return b.test(b.gt(b.v(REM), b.k(0)), pick, next);
    };
    // "Promote the prefetched block to streaming" subgraph builder.
    auto promote = [&](Behavior::N next) {
      return b.assign(
          WREM, b.v(WNEXT),
          b.assign(BLKC, b.v(BLKN), b.assign(WNEXT, b.k(0), next)));
    };

    // CHK_START branch: prime the double buffer (request block 0, promote
    // it, prefetch block 1).
    auto n_start = prefetch(b.end());
    n_start = promote(n_start);
    n_start = prefetch(n_start);
    n_start = b.assign(ACC, b.k(0),
                       b.assign(REM, b.val(ev_chk_start_), n_start));

    // MEM_DATA branch: accumulate one pair of 16-bit words; on a block
    // boundary notify ip_check, promote the prefetched block and issue the
    // next prefetch — or fold & publish the final sum.
    const auto fold = [&]() {
      return b.add(b.band(b.v(ACC), b.k(0xFFFF)), b.shr(b.v(ACC), 16));
    };
    const auto n_publish =
        b.assign(ACC, fold(),
                 b.assign(ACC, fold(),
                          b.emit(ev_chk_sum_, b.v(ACC), b.end())));
    const auto n_rotate = promote(prefetch(b.end()));
    const auto n_next_or_done =
        b.test(b.gt(b.v(WNEXT), b.k(0)), n_rotate, n_publish);
    const auto n_blk_done =
        b.emit(ev_blk_done_, b.v(BLKC), n_next_or_done);
    const auto n_word_last =
        b.test(b.eq(b.v(WREM), b.k(0)), n_blk_done, b.end());
    const auto n_word = b.assign(
        ACC,
        b.add(b.v(ACC),
              b.add(b.band(b.val(ev_mem_data_), b.k(0xFFFF)),
                    // kShr is arithmetic; mask back to 16 bits so beats with
                    // the top byte >= 0x80 don't sign-extend into ACC.
                    b.band(b.shr(b.val(ev_mem_data_), 16), b.k(0xFFFF)))),
        b.assign(WREM, b.sub(b.v(WREM), b.k(1)), n_word_last));
    const auto n_data_test = b.test(b.present(ev_mem_data_), n_word, b.end());

    b.root(b.test(b.present(ev_chk_start_), n_start, n_data_test));
    checksum_ = c.id();
  }

  assert(network_.validate().empty());
}

void TcpIpSystem::configure(core::CoEstimator& est) {
  est.map_sw(create_pack_, params_.rtos_prio_create);
  est.map_hw(queue_);
  if (params_.ip_check_in_hw)
    est.map_hw(ip_check_);  // the Figure 5 SPARC + ASIC1 + ASIC2 mapping
  else
    est.map_sw(ip_check_, params_.rtos_prio_ipcheck);
  est.map_hw(checksum_, params_.checksum_rtl_estimator
                            ? core::HwEstimatorKind::kRtl
                            : core::HwEstimatorKind::kGateLevel);
  est.config().bus.dma_block_size = params_.dma_block_size;

  est.set_traffic_hook([this](cfsm::CfsmId task, const cfsm::Reaction& r,
                              const cfsm::CfsmState& pre_state) {
    std::vector<bus::BusRequest> reqs;
    // create_pack stores the packet into shared memory incrementally: every
    // copy-loop body execution writes the 4-byte group it just marshalled,
    // so its writes interleave with the checksum's reads of the previous
    // packet — the contention the arbitration priorities resolve.
    if (task == create_pack_ &&
        pre_state.vars[static_cast<std::size_t>(var_cp_cnt_)] > 0 &&
        mem_.write_pkt < packets_.size()) {
      const auto& pkt = packets_[mem_.write_pkt];
      const std::size_t n = std::min<std::size_t>(
          4, pkt.size() - mem_.write_off);
      bus::BusRequest w;
      w.master = 0;
      w.priority = params_.prio_create;
      w.write = true;
      w.addr = static_cast<std::uint32_t>(mem_.write_pkt * 256 +
                                          mem_.write_off);
      w.data.assign(pkt.begin() + static_cast<std::ptrdiff_t>(mem_.write_off),
                    pkt.begin() +
                        static_cast<std::ptrdiff_t>(mem_.write_off + n));
      mem_.write_off += n;
      if (mem_.write_off >= pkt.size()) {
        ++mem_.write_pkt;
        mem_.write_off = 0;
      }
      reqs.push_back(std::move(w));
    }
    for (const auto& em : r.emissions) {
      if (task == checksum_ && em.event == ev_mem_req_) {
        const auto want = static_cast<std::size_t>(em.value);  // block bytes
        if (mem_.bus_read_pkt < packets_.size()) {
          const auto& pkt = packets_[mem_.bus_read_pkt];
          const std::size_t n =
              std::min(want, pkt.size() - mem_.bus_read_off);
          bus::BusRequest rd;
          rd.master = 2;
          rd.priority = params_.prio_checksum;
          rd.write = false;
          rd.addr = static_cast<std::uint32_t>(mem_.bus_read_pkt * 256 +
                                               mem_.bus_read_off);
          rd.data.assign(pkt.begin() + static_cast<std::ptrdiff_t>(
                                           mem_.bus_read_off),
                         pkt.begin() + static_cast<std::ptrdiff_t>(
                                           mem_.bus_read_off + n));
          mem_.bus_read_off += n;
          if (mem_.bus_read_off >= pkt.size()) {
            ++mem_.bus_read_pkt;
            mem_.bus_read_off = 0;
          }
          reqs.push_back(std::move(rd));
        }
      } else if (params_.ip_check_in_hw && task == ip_check_ &&
                 em.event == ev_desc_wr_) {
        // ASIC1 updates the packet descriptor in shared memory per block.
        bus::BusRequest wr;
        wr.master = 1;
        wr.priority = params_.prio_ipcheck;
        wr.write = true;
        wr.addr = 0xE0;
        const auto v = static_cast<std::uint32_t>(em.value);
        wr.data = {static_cast<std::uint8_t>(v & 0xff),
                   static_cast<std::uint8_t>((v >> 8) & 0xff),
                   static_cast<std::uint8_t>((v >> 16) & 0xff),
                   static_cast<std::uint8_t>((v >> 24) & 0xff)};
        reqs.push_back(std::move(wr));
      } else if (task == ip_check_ && em.event == ev_chk_start_) {
        // Header fetch: the checksum header words ip_check zeroes.
        bus::BusRequest rd;
        rd.master = 1;
        rd.priority = params_.prio_ipcheck;
        rd.write = false;
        rd.addr = 0xF0;
        rd.data = {0x12, 0x34, 0x56, 0x78};
        reqs.push_back(std::move(rd));
      }
    }
    return reqs;
  });

  est.set_environment_hook([this](const sim::EventOccurrence& o,
                                  sim::EventQueue& q) {
    if (o.event == ev_dma_cfg_) {
      mem_ = MemoryState{};  // new run: rewind the shared memory model
      return;
    }
    if (o.event != ev_mem_req_) return;
    assert(mem_.read_pkt < packets_.size() &&
           "checksum read beyond the stored packets");
    if (mem_.read_off == 0)
      q.post(o.time + 1, ev_chk_exp_,
             static_cast<std::int32_t>(expected_checksum(mem_.read_pkt)));
    const auto& pkt = packets_[mem_.read_pkt];
    const auto block_bytes = static_cast<std::size_t>(o.value);
    const std::size_t beats = (block_bytes + 3) / 4;
    mem_.stream_cursor = std::max(mem_.stream_cursor, o.time + 2);
    for (std::size_t w = 0; w < beats; ++w) {
      // Pack up to 4 bytes, little-endian, zero-padded at the tail.
      std::uint32_t beat = 0;
      for (std::size_t k = 0; k < 4; ++k) {
        const std::size_t off = mem_.read_off + 4 * w + k;
        if (4 * w + k < block_bytes && off < pkt.size())
          beat |= static_cast<std::uint32_t>(pkt[off]) << (8 * k);
      }
      q.post(mem_.stream_cursor++, ev_mem_data_,
             static_cast<std::int32_t>(beat));
    }
    mem_.read_off += block_bytes;
    if (mem_.read_off >= pkt.size()) {
      ++mem_.read_pkt;
      mem_.read_off = 0;
    }
  });
}

sim::Stimulus TcpIpSystem::stimulus() const {
  sim::Stimulus s;
  s.add(0, ev_dma_cfg_,
        static_cast<std::int32_t>(params_.dma_block_size));
  for (int p = 0; p < params_.num_packets; ++p)
    s.add(4 + static_cast<sim::SimTime>(p) * params_.packet_gap,
          ev_packet_in_, params_.packet_bytes);
  return s;
}

std::uint32_t TcpIpSystem::expected_checksum(std::size_t i) const {
  const auto& pkt = packets_.at(i);
  std::uint32_t acc = 0;
  for (std::size_t off = 0; off < pkt.size(); off += 2) {
    const std::uint32_t lo = pkt[off];
    const std::uint32_t hi = off + 1 < pkt.size() ? pkt[off + 1] : 0;
    acc += lo | (hi << 8);
  }
  acc = (acc & 0xFFFFu) + (acc >> 16);
  acc = (acc & 0xFFFFu) + (acc >> 16);
  return acc;
}

std::int32_t TcpIpSystem::packets_ok(const core::CoEstimator& est) const {
  return est.process_state(ip_check_)
      .vars[static_cast<std::size_t>(var_oks_)];
}

std::int32_t TcpIpSystem::packets_bad(const core::CoEstimator& est) const {
  return est.process_state(ip_check_)
      .vars[static_cast<std::size_t>(var_errs_)];
}

}  // namespace socpower::systems
