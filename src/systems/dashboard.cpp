#include "systems/dashboard.hpp"

#include <algorithm>
#include <cassert>

#include "systems/builder.hpp"

namespace socpower::systems {

DashboardSystem::DashboardSystem(DashboardParams params) : params_(params) {
  ev_wheel_ = network_.declare_event("WHEEL_PULSE");
  ev_t100_ = network_.declare_event("TIMER_100MS");
  ev_t1s_ = network_.declare_event("TIMER_1S");
  ev_speed_ = network_.declare_event("SPEED_EV");
  ev_odo_ = network_.declare_event("ODO_EV");
  ev_key_ = network_.declare_event("KEY");
  ev_belt_ = network_.declare_event("BELT");
  ev_alarm_on_ = network_.declare_event("ALARM_ON");
  ev_alarm_off_ = network_.declare_event("ALARM_OFF");
  ev_fuel_sample_ = network_.declare_event("FUEL_SAMPLE");
  ev_fuel_low_ = network_.declare_event("FUEL_LOW");
  ev_cruise_set_ = network_.declare_event("CRUISE_SET");
  ev_cruise_off_ = network_.declare_event("CRUISE_OFF");
  ev_throttle_ = network_.declare_event("THROTTLE");

  // ---- speedo (software) ------------------------------------------------------
  {
    cfsm::Cfsm& c = network_.add_cfsm("speedo");
    c.add_input(ev_wheel_);
    c.add_input(ev_t100_);
    c.add_output(ev_speed_);
    const auto CNT = c.add_var("PULSE_CNT");
    const auto SPD = c.add_var("SPEED");
    Behavior b{c};
    // TIMER_100MS branch: speed = pulses * circumference factor.
    auto n100 = b.emit(ev_speed_, b.v(SPD), b.end());
    n100 = b.assign(CNT, b.k(0), n100);
    n100 = b.assign(SPD, b.mul(b.v(CNT), b.k(9)), n100);
    const auto n100t = b.test(b.present(ev_t100_), n100, b.end());
    // WHEEL_PULSE branch (may coincide with the timer: both run).
    const auto npulse =
        b.assign(CNT, b.add(b.v(CNT), b.k(1)), n100t);
    b.root(b.test(b.present(ev_wheel_), npulse, n100t));
    speedo_ = c.id();
  }

  // ---- odometer (software) -------------------------------------------------------
  {
    cfsm::Cfsm& c = network_.add_cfsm("odometer");
    c.add_input(ev_wheel_);
    c.add_output(ev_odo_);
    const auto FRAC = c.add_var("FRAC");
    const auto ODO = c.add_var("ODO");
    Behavior b{c};
    const auto n_tick = b.assign(
        FRAC, b.k(0),
        b.assign(ODO, b.add(b.v(ODO), b.k(1)),
                 b.emit(ev_odo_, b.v(ODO), b.end())));
    const auto n_test = b.test(b.ge(b.v(FRAC), b.k(16)), n_tick, b.end());
    b.root(b.assign(FRAC, b.add(b.v(FRAC), b.k(1)), n_test));
    odometer_ = c.id();
  }

  // ---- cruise control (software) ---------------------------------------------------
  {
    cfsm::Cfsm& c = network_.add_cfsm("cruise");
    c.add_input(ev_cruise_set_);
    c.add_input(ev_cruise_off_);
    c.add_input(ev_speed_);
    c.add_output(ev_throttle_);
    const auto ON = c.add_var("ENGAGED");
    const auto TGT = c.add_var("TARGET");
    const auto THR = c.add_var("THROTTLE");
    const auto ERR = c.add_var("ERR");
    Behavior b{c};
    // SPEED_EV branch, active only while engaged: proportional control.
    auto nctl = b.emit(ev_throttle_, b.v(THR), b.end());
    nctl = b.assign(THR, b.add(b.v(THR), b.shr(b.v(ERR), 2)), nctl);
    nctl = b.assign(ERR, b.sub(b.v(TGT), b.val(ev_speed_)), nctl);
    const auto n_engaged =
        b.test(b.gt(b.v(ON), b.k(0)), nctl, b.end());
    const auto n_speed_t =
        b.test(b.present(ev_speed_), n_engaged, b.end());
    // CRUISE_OFF branch.
    const auto n_off = b.assign(ON, b.k(0), n_speed_t);
    const auto n_off_t = b.test(b.present(ev_cruise_off_), n_off, n_speed_t);
    // CRUISE_SET branch: lock the current speed as target.
    const auto n_set = b.assign(
        ON, b.k(1), b.assign(TGT, b.val(ev_cruise_set_), n_off_t));
    b.root(b.test(b.present(ev_cruise_set_), n_set, n_off_t));
    cruise_ = c.id();
  }

  // ---- belt alarm (hardware) ---------------------------------------------------------
  {
    cfsm::Cfsm& c = network_.add_cfsm("belt_alarm");
    c.add_input(ev_key_);
    c.add_input(ev_belt_);
    c.add_input(ev_t1s_);
    c.add_output(ev_alarm_on_);
    c.add_output(ev_alarm_off_);
    const auto KEYON = c.add_var("KEYON");
    const auto BELTON = c.add_var("BELTON");
    const auto SECS = c.add_var("SECS");
    const auto ALARM = c.add_var("ALARM");
    Behavior b{c};
    // TIMER_1S branch: count up while key on and belt off; alarm at 5.
    const auto n_fire = b.assign(
        ALARM, b.k(1), b.emit0(ev_alarm_on_, b.end()));
    const auto n_thresh = b.test(
        b.band(b.ge(b.v(SECS), b.k(5)), b.eq(b.v(ALARM), b.k(0))), n_fire,
        b.end());
    const auto n_count =
        b.assign(SECS, b.add(b.v(SECS), b.k(1)), n_thresh);
    const auto n_danger = b.test(
        b.band(b.gt(b.v(KEYON), b.k(0)),
               b.eq(b.v(BELTON), b.k(0))),
        n_count, b.end());
    const auto n_tick_t = b.test(b.present(ev_t1s_), n_danger, b.end());
    // BELT / KEY updates clear the alarm state when the danger ends.
    const auto n_clear = b.assign(
        SECS, b.k(0),
        b.assign(ALARM, b.k(0), b.emit0(ev_alarm_off_, n_tick_t)));
    const auto n_safe = b.test(
        b.bor(b.eq(b.v(KEYON), b.k(0)), b.gt(b.v(BELTON), b.k(0))),
        n_clear, n_tick_t);
    const auto n_belt = b.assign(BELTON, b.val(ev_belt_), n_safe);
    const auto n_belt_t = b.test(b.present(ev_belt_), n_belt, n_safe);
    const auto n_key = b.assign(KEYON, b.val(ev_key_), n_belt_t);
    b.root(b.test(b.present(ev_key_), n_key, n_belt_t));
    belt_ = c.id();
  }

  // ---- fuel gauge (hardware) ------------------------------------------------------------
  {
    cfsm::Cfsm& c = network_.add_cfsm("fuel");
    c.add_input(ev_fuel_sample_);
    c.add_output(ev_fuel_low_);
    const auto FILT = c.add_var("FILTERED", 256 * 8);  // level<<3 fixed point
    const auto WARNED = c.add_var("WARNED");
    Behavior b{c};
    // filtered += (sample - filtered/8); warn once under the threshold.
    const auto n_warn = b.assign(
        WARNED, b.k(1),
        b.emit(ev_fuel_low_, b.shr(b.v(FILT), 3), b.end()));
    const auto n_low = b.test(
        b.band(b.lt(b.shr(b.v(FILT), 3), b.k(params_.fuel_low_threshold)),
               b.eq(b.v(WARNED), b.k(0))),
        n_warn, b.end());
    b.root(b.assign(
        FILT,
        b.add(b.v(FILT),
              b.sub(b.val(ev_fuel_sample_), b.shr(b.v(FILT), 3))),
        n_low));
    fuel_ = c.id();
  }

  assert(network_.validate().empty());
}

void DashboardSystem::configure(core::CoEstimator& est,
                                Partition partition) const {
  if (partition.speedo_hw)
    est.map_hw(speedo_);
  else
    est.map_sw(speedo_, /*rtos_priority=*/3);
  if (partition.odometer_hw)
    est.map_hw(odometer_);
  else
    est.map_sw(odometer_, /*rtos_priority=*/1);
  if (partition.cruise_hw)
    est.map_hw(cruise_);
  else
    est.map_sw(cruise_, /*rtos_priority=*/2);
  est.map_hw(belt_);
  est.map_hw(fuel_);
}

sim::Stimulus DashboardSystem::stimulus() const {
  sim::Stimulus s;
  Rng rng(params_.seed);
  const sim::SimTime fc = params_.frame_cycles;

  s.add(1, ev_key_, 1);  // key on immediately; belt fastened at frame 8
  for (int f = 0; f < params_.frames; ++f) {
    const sim::SimTime base = 2 + static_cast<sim::SimTime>(f) * fc;
    // Speed profile: ramp up, cruise, ramp down.
    const int third = params_.frames / 3;
    int pulses;
    if (f < third)
      pulses = 1 + f * params_.pulses_per_frame_max / std::max(third, 1);
    else if (f < 2 * third)
      pulses = params_.pulses_per_frame_max;
    else
      pulses = std::max(
          1, params_.pulses_per_frame_max -
                 (f - 2 * third) * params_.pulses_per_frame_max /
                     std::max(third, 1));
    for (int p = 0; p < pulses; ++p) {
      const auto jitter = static_cast<sim::SimTime>(rng.below(7));
      s.add(base + static_cast<sim::SimTime>(p) * (fc / static_cast<sim::SimTime>(pulses + 1)) +
                jitter,
            ev_wheel_);
    }
    s.add(base + fc - 3, ev_t100_);
    s.add(base + fc - 2, ev_t1s_);  // scaled so the belt scenario plays out
    // Fuel drains to empty over ~70% of the scenario, with sensor noise;
    // the low-pass filter lags ~8 samples behind.
    const std::int32_t drain = 350 * f / std::max(params_.frames, 1);
    s.add(base + fc / 2, ev_fuel_sample_,
          std::max<std::int32_t>(
              0, 250 - drain + static_cast<std::int32_t>(rng.below(5))));
    if (f == 8) s.add(base + 5, ev_belt_, 1);
    if (f == third) s.add(base + 7, ev_cruise_set_, 90);
    if (f == 2 * third) s.add(base + 7, ev_cruise_off_);
  }
  return s;
}

}  // namespace socpower::systems
