#include "systems/prodcons.hpp"

#include <cassert>

#include "systems/builder.hpp"

namespace socpower::systems {

using cfsm::ExprOp;

ProdConsSystem::ProdConsSystem(ProdConsParams params) : params_(params) {
  ev_start_ = network_.declare_event("START");
  ev_step_ = network_.declare_event("STEP");
  ev_end_comp_ = network_.declare_event("END_COMP");
  ev_tick_ = network_.declare_event("TIMER_TICK");
  ev_time_ = network_.declare_event("TIME");
  ev_iter_ = network_.declare_event("ITER");
  ev_byte_done_ = network_.declare_event("BYTE_DONE");
  ev_reset_ = network_.declare_event("RESET");

  // ---- producer (software) --------------------------------------------------
  {
    cfsm::Cfsm& c = network_.add_cfsm("producer");
    c.add_input(ev_start_);
    c.add_input(ev_step_);
    c.add_output(ev_step_);
    c.add_output(ev_end_comp_);
    c.set_reset_event(ev_reset_);
    const auto PKTS = c.add_var("PKTS");
    const auto I = c.add_var("I");
    const auto ACC = c.add_var("ACC");
    Behavior b{c};

    // START handling (built first; the STEP branch falls through into it so
    // a START coinciding with a STEP in one instant is not lost — which
    // matters in the unit-delay behavioral pass where everything piles up):
    // queue one packet; begin processing if idle.
    const auto n_begin = b.assign(
        I, b.k(params_.bytes_per_packet),
        b.assign(ACC, b.k(0), b.emit(ev_step_, b.k(0), b.end())));
    const auto n_idle_test = b.test(b.eq(b.v(I), b.k(0)), n_begin, b.end());
    const auto n_start =
        b.assign(PKTS, b.add(b.v(PKTS), b.k(1)), n_idle_test);
    const auto n_start_test =
        b.test(b.present(ev_start_), n_start, b.end());

    // STEP branch: one checksum-like mixing step per pseudo-byte.
    // ... packet finished: emit END_COMP; if more packets queued, restart.
    const auto n_restart = b.assign(
        I, b.k(params_.bytes_per_packet),
        b.assign(ACC, b.k(0), b.emit(ev_step_, b.k(0), n_start_test)));
    const auto n_more =
        b.test(b.gt(b.v(PKTS), b.k(0)), n_restart, n_start_test);
    const auto n_finish = b.emit(ev_end_comp_, b.v(ACC),
                                 b.assign(PKTS, b.sub(b.v(PKTS), b.k(1)),
                                          n_more));
    const auto n_continue = b.emit(ev_step_, b.v(I), n_start_test);
    const auto n_cont_test =
        b.test(b.gt(b.v(I), b.k(0)), n_continue, n_finish);
    // Mixing body: ACC := ((ACC + I*7) ^ (ACC >> 3)) + 1, then I := I - 1.
    const auto mix = b.add(
        b.bxor(b.add(b.v(ACC), b.mul(b.v(I), b.k(7))), b.shr(b.v(ACC), 3)),
        b.k(1));
    const auto n_step_body = b.assign(
        ACC, mix, b.assign(I, b.sub(b.v(I), b.k(1)), n_cont_test));
    // Guard: a stale STEP (e.g. one in flight across a RESET) must not run
    // the body from the idle state.
    const auto n_step_guard =
        b.test(b.gt(b.v(I), b.k(0)), n_step_body, n_start_test);

    b.root(b.test(b.present(ev_step_), n_step_guard, n_start_test));
    producer_ = c.id();
  }

  // ---- timer (hardware) -------------------------------------------------------
  {
    cfsm::Cfsm& c = network_.add_cfsm("timer");
    c.add_input(ev_tick_);
    c.add_output(ev_time_);
    c.set_reset_event(ev_reset_);
    const auto T = c.add_var("T");
    Behavior b{c};
    b.root(b.assign(T, b.add(b.v(T), b.k(1)),
                    b.emit(ev_time_, b.v(T), b.end())));
    timer_ = c.id();
  }

  // ---- consumer (hardware) ----------------------------------------------------
  {
    cfsm::Cfsm& c = network_.add_cfsm("consumer");
    c.add_input(ev_end_comp_);
    c.add_input(ev_iter_);
    c.add_sampled_input(ev_time_);
    c.add_output(ev_iter_);
    c.add_output(ev_byte_done_);
    c.set_reset_event(ev_reset_);
    const auto PREV = c.add_var("PREV_TIME");
    const auto CNT = c.add_var("N_IT");
    const auto DACC = c.add_var("DACC");
    Behavior b{c};

    // ITER branch: one loop iteration, then continue if work remains.
    const auto n_iter_more =
        b.test(b.gt(b.v(CNT), b.k(0)), b.emit0(ev_iter_, b.end()), b.end());
    const auto n_iter_body = b.assign(
        DACC, b.add(b.bxor(b.v(DACC), b.shl(b.v(CNT), 2)), b.k(3)),
        b.emit(ev_byte_done_, b.v(DACC),
               b.assign(CNT, b.sub(b.v(CNT), b.k(1)), n_iter_more)));
    const auto n_iter_guard =
        b.test(b.gt(b.v(CNT), b.k(0)), n_iter_body, b.end());
    const auto n_iter_test =
        b.test(b.present(ev_iter_), n_iter_guard, b.end());

    // END_COMP branch: N_IT += (TIME - PREV_TIME) + base; loop that many
    // times. The base term is the fixed per-packet processing (header
    // handling) the consumer performs regardless of the arrival spacing;
    // accumulation (rather than overwrite) keeps work queued when packets
    // arrive faster than the loop drains.
    const auto n_kick =
        b.test(b.gt(b.v(CNT), b.k(0)), b.emit0(ev_iter_, b.end()), b.end());
    const auto n_end_comp = b.assign(
        CNT,
        b.add(b.v(CNT),
              b.add(b.sub(b.val(ev_time_), b.v(PREV)),
                    b.k(params_.consumer_base_iterations))),
        b.assign(PREV, b.val(ev_time_), n_kick));

    b.root(b.test(b.present(ev_end_comp_), n_end_comp, n_iter_test));
    consumer_ = c.id();
  }

  assert(network_.validate().empty());
}

void ProdConsSystem::configure(core::CoEstimator& est) const {
  est.map_sw(producer_, /*rtos_priority=*/1);
  est.map_hw(timer_);
  est.map_hw(consumer_);
}

sim::Stimulus ProdConsSystem::stimulus(sim::SimTime horizon) const {
  sim::Stimulus s;
  for (int p = 0; p < params_.num_packets; ++p)
    s.add(1 + static_cast<sim::SimTime>(p) * params_.start_gap, ev_start_);
  for (sim::SimTime t = params_.tick_period; t <= horizon;
       t += params_.tick_period)
    s.add(t, ev_tick_);
  return s;
}

}  // namespace socpower::systems
