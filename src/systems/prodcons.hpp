// The producer / timer / consumer example of the paper's Figure 1 — the
// system that motivates co-estimation.
//
//   producer (SW, SPARClite): upon START from the environment, performs a
//     checksum-like computation over NUM_BYTES pseudo-bytes (one self-
//     triggered STEP transition per byte), then emits END_COMP.
//   timer (HW): counts TIMER_TICKs and broadcasts the current TIME.
//   consumer (HW): upon END_COMP, computes N_IT = TIME - PREV_TIME and runs
//     a loop of N_IT iterations (one self-triggered ITER transition each),
//     emitting BYTE_DONE per iteration.
//
// The time between consecutive END_COMPs — and hence the consumer's
// workload — depends on how long the producer's software actually takes.
// A timing-independent behavioral trace (unit-delay transitions) makes the
// intervals tiny and under-estimates the consumer's energy, reproducing the
// ~62 % error of Figure 1(b).
#pragma once

#include "cfsm/cfsm.hpp"
#include "core/coestimator.hpp"
#include "sim/event_queue.hpp"

namespace socpower::systems {

struct ProdConsParams {
  int num_packets = 20;
  /// Pseudo-bytes the producer processes per packet (STEP transitions).
  int bytes_per_packet = 32;
  /// Environment tick period (cycles) driving the HW timer.
  sim::SimTime tick_period = 64;
  /// Gap between START events from the environment (cycles). Small gaps
  /// queue the packets back-to-back, maximizing the timing sensitivity.
  sim::SimTime start_gap = 2;
  /// Fixed per-packet iterations the consumer runs on top of the
  /// timing-dependent TIME - PREV_TIME term.
  int consumer_base_iterations = 20;
};

class ProdConsSystem {
 public:
  explicit ProdConsSystem(ProdConsParams params = {});

  [[nodiscard]] const cfsm::Network& network() const { return network_; }
  [[nodiscard]] cfsm::Network& network() { return network_; }

  [[nodiscard]] cfsm::CfsmId producer() const { return producer_; }
  [[nodiscard]] cfsm::CfsmId timer() const { return timer_; }
  [[nodiscard]] cfsm::CfsmId consumer() const { return consumer_; }
  [[nodiscard]] cfsm::EventId byte_done_event() const { return ev_byte_done_; }

  /// Map producer to SW, timer and consumer to HW (the paper's partition).
  void configure(core::CoEstimator& est) const;

  /// Environment stimulus: a burst of STARTs plus periodic TIMER_TICKs
  /// covering `horizon` cycles.
  [[nodiscard]] sim::Stimulus stimulus(sim::SimTime horizon) const;

  [[nodiscard]] const ProdConsParams& params() const { return params_; }

 private:
  ProdConsParams params_;
  cfsm::Network network_;
  cfsm::CfsmId producer_ = cfsm::kNoCfsm;
  cfsm::CfsmId timer_ = cfsm::kNoCfsm;
  cfsm::CfsmId consumer_ = cfsm::kNoCfsm;
  cfsm::EventId ev_start_ = -1;
  cfsm::EventId ev_step_ = -1;
  cfsm::EventId ev_end_comp_ = -1;
  cfsm::EventId ev_tick_ = -1;
  cfsm::EventId ev_time_ = -1;
  cfsm::EventId ev_iter_ = -1;
  cfsm::EventId ev_byte_done_ = -1;
  cfsm::EventId ev_reset_ = -1;
};

}  // namespace socpower::systems
