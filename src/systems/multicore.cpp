#include "systems/multicore.hpp"

#include <cassert>
#include <string>

#include "systems/builder.hpp"

namespace socpower::systems {

namespace {

/// Base address of the shared result buffer all workers write to.
constexpr std::uint32_t kSharedBase = 0x2000;
/// Bytes each worker's per-packet result block occupies.
constexpr std::uint32_t kBlockBytes = 16;

}  // namespace

MulticoreSystem::MulticoreSystem(MulticoreParams params) : params_(params) {
  assert(params_.cores >= 1);
  ev_done_ = network_.declare_event("DONE");
  ev_tick_ = network_.declare_event("TIMER_TICK");
  ev_time_ = network_.declare_event("TIME");
  ev_iter_ = network_.declare_event("ITER");
  ev_byte_done_ = network_.declare_event("BYTE_DONE");
  ev_reset_ = network_.declare_event("RESET");
  for (unsigned w = 0; w < params_.cores; ++w) {
    ev_start_.push_back(
        network_.declare_event("START" + std::to_string(w)));
    ev_step_.push_back(network_.declare_event("STEP" + std::to_string(w)));
  }

  // ---- workers (software, one per core) -------------------------------------
  for (unsigned w = 0; w < params_.cores; ++w) {
    cfsm::Cfsm& c = network_.add_cfsm("worker" + std::to_string(w));
    c.add_input(ev_start_[w]);
    c.add_input(ev_step_[w]);
    c.add_output(ev_step_[w]);
    c.add_output(ev_done_);
    c.set_reset_event(ev_reset_);
    const auto PKTS = c.add_var("PKTS");
    const auto I = c.add_var("I");
    const auto ACC = c.add_var("ACC");
    Behavior b{c};

    // START branch (fallthrough target of STEP, as in prodcons): queue one
    // packet; begin processing if idle.
    const auto n_begin = b.assign(
        I, b.k(params_.bytes_per_packet),
        b.assign(ACC, b.k(static_cast<int>(w) * 17),
                 b.emit(ev_step_[w], b.k(0), b.end())));
    const auto n_idle_test = b.test(b.eq(b.v(I), b.k(0)), n_begin, b.end());
    const auto n_start = b.assign(PKTS, b.add(b.v(PKTS), b.k(1)), n_idle_test);
    const auto n_start_test =
        b.test(b.present(ev_start_[w]), n_start, b.end());

    // STEP branch: one checksum-like mixing step per pseudo-byte.
    const auto n_restart = b.assign(
        I, b.k(params_.bytes_per_packet),
        b.assign(ACC, b.k(static_cast<int>(w) * 17),
                 b.emit(ev_step_[w], b.k(0), n_start_test)));
    const auto n_more =
        b.test(b.gt(b.v(PKTS), b.k(0)), n_restart, n_start_test);
    const auto n_finish = b.emit(ev_done_, b.v(ACC),
                                 b.assign(PKTS, b.sub(b.v(PKTS), b.k(1)),
                                          n_more));
    const auto n_continue = b.emit(ev_step_[w], b.v(I), n_start_test);
    const auto n_cont_test =
        b.test(b.gt(b.v(I), b.k(0)), n_continue, n_finish);
    const auto mix = b.add(
        b.bxor(b.add(b.v(ACC), b.mul(b.v(I), b.k(7))), b.shr(b.v(ACC), 3)),
        b.k(1));
    const auto n_step_body = b.assign(
        ACC, mix, b.assign(I, b.sub(b.v(I), b.k(1)), n_cont_test));
    const auto n_step_guard =
        b.test(b.gt(b.v(I), b.k(0)), n_step_body, n_start_test);

    b.root(b.test(b.present(ev_step_[w]), n_step_guard, n_start_test));
    workers_.push_back(c.id());
  }

  // ---- timer (hardware) -----------------------------------------------------
  {
    cfsm::Cfsm& c = network_.add_cfsm("timer");
    c.add_input(ev_tick_);
    c.add_output(ev_time_);
    c.set_reset_event(ev_reset_);
    const auto T = c.add_var("T");
    Behavior b{c};
    b.root(b.assign(T, b.add(b.v(T), b.k(1)),
                    b.emit(ev_time_, b.v(T), b.end())));
    timer_ = c.id();
  }

  // ---- collector (hardware) -------------------------------------------------
  {
    cfsm::Cfsm& c = network_.add_cfsm("collector");
    c.add_input(ev_done_);
    c.add_input(ev_iter_);
    c.add_sampled_input(ev_time_);
    c.add_output(ev_iter_);
    c.add_output(ev_byte_done_);
    c.set_reset_event(ev_reset_);
    const auto PREV = c.add_var("PREV_TIME");
    const auto CNT = c.add_var("N_IT");
    const auto DACC = c.add_var("DACC");
    Behavior b{c};

    const auto n_iter_more =
        b.test(b.gt(b.v(CNT), b.k(0)), b.emit0(ev_iter_, b.end()), b.end());
    const auto n_iter_body = b.assign(
        DACC, b.add(b.bxor(b.v(DACC), b.shl(b.v(CNT), 2)), b.k(3)),
        b.emit(ev_byte_done_, b.v(DACC),
               b.assign(CNT, b.sub(b.v(CNT), b.k(1)), n_iter_more)));
    const auto n_iter_guard =
        b.test(b.gt(b.v(CNT), b.k(0)), n_iter_body, b.end());
    const auto n_iter_test =
        b.test(b.present(ev_iter_), n_iter_guard, b.end());

    // DONE branch: N_IT += (TIME - PREV_TIME) + base. With N workers the
    // DONE stream interleaves N timing-dependent spacings.
    const auto n_kick =
        b.test(b.gt(b.v(CNT), b.k(0)), b.emit0(ev_iter_, b.end()), b.end());
    const auto n_done = b.assign(
        CNT,
        b.add(b.v(CNT),
              b.add(b.sub(b.val(ev_time_), b.v(PREV)),
                    b.k(params_.collector_base_iterations))),
        b.assign(PREV, b.val(ev_time_), n_kick));

    b.root(b.test(b.present(ev_done_), n_done, n_iter_test));
    collector_ = c.id();
  }

  assert(network_.validate().empty());
}

core::CoEstimatorConfig MulticoreSystem::config_template() const {
  core::CoEstimatorConfig cfg;
  cfg.cores = params_.cores;
  cfg.interconnect = params_.interconnect;
  if (params_.interconnect == core::InterconnectKind::kNoc) {
    // Mesh sized to fit every worker plus the memory node in the far
    // corner: 2 columns, enough rows for cores + 1 nodes.
    cfg.noc.mesh_cols = 2;
    cfg.noc.mesh_rows = (params_.cores + 2) / 2;
    cfg.noc.memory_node = -1;
  }
  cfg.coherence.enabled = params_.coherent;
  return cfg;
}

void MulticoreSystem::configure(core::CoEstimator& est) const {
  for (unsigned w = 0; w < params_.cores; ++w)
    est.map_sw(workers_[w], /*core=*/w, /*rtos_priority=*/1);
  est.map_hw(timer_);
  est.map_hw(collector_);

  // Shared result buffer: every DONE writes the worker's result block into
  // one of a handful of shared lines (selected by the checksum), so blocks
  // from different cores collide and — with coherence on — invalidations
  // ping-pong between the private L1s. Worker i is interconnect master i,
  // which the NoC maps to mesh node i.
  const std::vector<cfsm::CfsmId> workers = workers_;
  const cfsm::EventId done = ev_done_;
  const unsigned lines = params_.shared_lines;
  est.set_traffic_hook(
      [workers, done, lines](cfsm::CfsmId task, const cfsm::Reaction& reaction,
                             const cfsm::CfsmState&)
          -> std::vector<bus::BusRequest> {
        int master = -1;
        for (std::size_t w = 0; w < workers.size(); ++w)
          if (workers[w] == task) master = static_cast<int>(w);
        if (master < 0) return {};
        std::vector<bus::BusRequest> reqs;
        for (const auto& em : reaction.emissions) {
          if (em.event != done) continue;
          bus::BusRequest rq;
          rq.master = master;
          rq.priority = 3;
          rq.write = true;
          const auto v = static_cast<std::uint32_t>(em.value);
          rq.addr = kSharedBase + (v % lines) * kBlockBytes;
          rq.data.resize(kBlockBytes);
          for (std::uint32_t k = 0; k < kBlockBytes; ++k)
            rq.data[k] =
                static_cast<std::uint8_t>((v >> (8 * (k % 4))) ^ k);
          reqs.push_back(std::move(rq));
        }
        return reqs;
      });
}

sim::Stimulus MulticoreSystem::stimulus(sim::SimTime horizon) const {
  sim::Stimulus s;
  for (unsigned w = 0; w < params_.cores; ++w)
    for (int p = 0; p < params_.num_packets; ++p)
      s.add(1 + static_cast<sim::SimTime>(w) +
                static_cast<sim::SimTime>(p) * params_.start_gap,
            ev_start_[w]);
  for (sim::SimTime t = params_.tick_period; t <= horizon;
       t += params_.tick_period)
    s.add(t, ev_tick_);
  return s;
}

}  // namespace socpower::systems
