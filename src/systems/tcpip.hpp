// TCP/IP Network Interface Card subsystem (paper Figure 5, Section 5).
//
// Behavior:
//   create_pack (SW)  receives a packet from the IP layer (PACKET_IN),
//                     builds the header, stores the payload into the shared
//                     memory over the bus, and enqueues a descriptor
//                     (PKT_ENQ) into the packet queue.
//   packet_queue (HW) descriptor FIFO; presents the head packet (PKT_RDY).
//   ip_check (SW)     prepares the packet (zeroes the checksum header
//                     words), kicks the checksum ASIC (CHK_START), tracks
//                     per-DMA-block progress (BLK_DONE), and finally
//                     compares the computed checksum against the expected
//                     one (CHK_SUM vs. the sampled CHK_EXP), dequeueing the
//                     packet (PKT_DEQ) and reporting PKT_OUT.
//   checksum (HW)     reads the packet body from shared memory through the
//                     arbiter in DMA-block-sized transfers (MEM_REQ /
//                     MEM_DATA), accumulating the 16-bit one's-complement
//                     Internet checksum one word per cycle.
//
// The shared memory + arbiter pair is a pre-designed IP block: memory
// content and replies are modeled by the environment hook, while all timing
// and energy of the transfers go through the behavioral bus model. The DMA
// block size is NOT compiled into the behavior — it arrives as the DMA_CFG
// event sampled by the checksum process, so the whole Figure 7 design-space
// sweep re-runs without recompiling the system description, exactly as the
// paper advertises.
#pragma once

#include <cstdint>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "core/coestimator.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace socpower::systems {

struct TcpIpParams {
  int num_packets = 3;
  int packet_bytes = 32;
  /// Gap between PACKET_IN arrivals (cycles).
  sim::SimTime packet_gap = 50;
  unsigned dma_block_size = 16;
  /// Bus priorities of the three masters (larger wins).
  int prio_create = 3;
  int prio_ipcheck = 2;
  int prio_checksum = 1;
  /// RTOS priorities of the two software tasks: ip_check services per-block
  /// completion events (interrupt-like, latency sensitive) and outranks the
  /// bulk copy loop — otherwise create_pack starves it and the pipeline
  /// serializes.
  int rtos_prio_create = 1;
  int rtos_prio_ipcheck = 2;
  /// Map ip_check to hardware (the Figure 5 architecture: SPARC + ASIC1 +
  /// ASIC2). ASIC1 then maintains its per-packet descriptor in shared
  /// memory, making it a third independent bus master — the configuration
  /// the paper's Figure 7 communication-architecture exploration uses.
  bool ip_check_in_hw = false;
  /// Estimate the checksum ASIC at RT-level instead of gate level (the
  /// accuracy/efficiency choice the paper's Section 3 offers per block).
  bool checksum_rtl_estimator = false;
  std::uint64_t seed = 1;
};

class TcpIpSystem {
 public:
  explicit TcpIpSystem(TcpIpParams params = {});

  [[nodiscard]] const cfsm::Network& network() const { return network_; }
  [[nodiscard]] cfsm::Network& network() { return network_; }

  [[nodiscard]] cfsm::CfsmId create_pack() const { return create_pack_; }
  [[nodiscard]] cfsm::CfsmId packet_queue() const { return queue_; }
  [[nodiscard]] cfsm::CfsmId ip_check() const { return ip_check_; }
  [[nodiscard]] cfsm::CfsmId checksum() const { return checksum_; }

  /// Maps processes (create_pack, ip_check -> SW; queue, checksum -> HW),
  /// installs the traffic and shared-memory hooks, and pushes the DMA block
  /// size into the bus parameters. Call before est.prepare().
  void configure(core::CoEstimator& est);

  /// DMA_CFG at cycle 0, then the packet arrivals.
  [[nodiscard]] sim::Stimulus stimulus() const;

  /// Reference (expected) checksum of packet `i` — for functional tests.
  [[nodiscard]] std::uint32_t expected_checksum(std::size_t i) const;
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& packets() const {
    return packets_;
  }

  /// ip_check counters after a run (functional verification).
  [[nodiscard]] std::int32_t packets_ok(const core::CoEstimator& est) const;
  [[nodiscard]] std::int32_t packets_bad(const core::CoEstimator& est) const;

  [[nodiscard]] const TcpIpParams& params() const { return params_; }

 private:
  void build_network();

  TcpIpParams params_;
  cfsm::Network network_;
  std::vector<std::vector<std::uint8_t>> packets_;

  cfsm::CfsmId create_pack_ = cfsm::kNoCfsm;
  cfsm::CfsmId queue_ = cfsm::kNoCfsm;
  cfsm::CfsmId ip_check_ = cfsm::kNoCfsm;
  cfsm::CfsmId checksum_ = cfsm::kNoCfsm;

  cfsm::EventId ev_packet_in_ = -1;
  cfsm::EventId ev_cp_step_ = -1;
  cfsm::EventId ev_pkt_enq_ = -1;
  cfsm::EventId ev_pkt_rdy_ = -1;
  cfsm::EventId ev_pkt_deq_ = -1;
  cfsm::EventId ev_chk_start_ = -1;
  cfsm::EventId ev_mem_req_ = -1;
  cfsm::EventId ev_mem_data_ = -1;
  cfsm::EventId ev_blk_done_ = -1;
  cfsm::EventId ev_chk_sum_ = -1;
  cfsm::EventId ev_chk_exp_ = -1;
  cfsm::EventId ev_pkt_out_ = -1;
  cfsm::EventId ev_desc_wr_ = -1;
  cfsm::EventId ev_dma_cfg_ = -1;

  cfsm::VarId var_oks_ = -1;   // ip_check counters
  cfsm::VarId var_errs_ = -1;
  cfsm::VarId var_cp_cnt_ = -1;  // create_pack copy counter (traffic hook)

  // Shared-memory model state (mutated by the hooks during a run; reset by
  // the DMA_CFG occurrence at cycle 0 of every stimulus).
  struct MemoryState {
    std::size_t write_pkt = 0;   // packet being stored by create_pack
    std::size_t write_off = 0;   // byte offset within write_pkt
    std::size_t read_pkt = 0;    // packet currently streamed to checksum
    std::size_t read_off = 0;    // byte offset within read_pkt
    std::size_t bus_read_pkt = 0;
    std::size_t bus_read_off = 0;
    /// Serializing cursor of the memory read port: data beats of back-to-
    /// back block requests stream one per cycle, never overlapping.
    std::uint64_t stream_cursor = 0;
  };
  MemoryState mem_;
};

}  // namespace socpower::systems
