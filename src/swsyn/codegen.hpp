// Software synthesis: s-graph -> SLITE machine code (the POLIS "SW synthesis"
// box of Figure 2(a)).
//
// Each software-mapped CFSM is compiled to one program image. The simulation
// master stages a reaction by writing the input event flags/values and the
// process variables into the ISS data memory, points the PC at the image
// entry, and runs to HALT; the code follows the same path through the
// s-graph as the behavioral model (the data steer the branches), and writes
// its emissions into a small ring the master reads back.
//
// Data block layout (byte offsets from the image's data_base, register r1):
//   +0                      emission count
//   +4  .. +4+8*max_emits   emission records {event_id, value} (8 bytes each)
//   in_flag_off             input presence flags, one word per local input
//   in_val_off              input values, one word per local input
//   var_off                 process variables, one word each
//   tmp_off                 expression spill temporaries
//
// Register conventions: r1 data base, r8 expression result, r9 second
// operand, r10/r11 emission scratch, r12 operator scratch.
//
// The same emission helpers also generate the standalone characterization
// templates for macro-modeling (Section 4.1). A template wraps one macro-op
// with the minimal harness (base-pointer load, operand staging); the
// characterizer subtracts an empty template. The harness instructions are
// precisely the per-macro-op overhead that makes the additive macro-model
// over-estimate in-situ cost — the paper's "pipeline / compiler effects are
// difficult to model at this level".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "iss/isa.hpp"
#include "iss/iss.hpp"
#include "swsyn/macro_op.hpp"

namespace socpower::swsyn {

struct SwImage {
  iss::Program code;
  std::uint32_t code_base_word = 0;
  std::uint32_t data_base = 0;

  std::uint32_t in_flag_off = 0;
  std::uint32_t in_val_off = 0;
  std::uint32_t var_off = 0;
  std::uint32_t tmp_off = 0;
  std::uint32_t data_bytes = 0;
  /// Emission-ring capacity; compile_cfsm sets it to the worst-case number
  /// of emissions on any s-graph path, so overflow is impossible.
  unsigned max_emits = 16;

  std::vector<cfsm::EventId> local_inputs;  // local slot -> global event id

  /// Per s-graph node: [begin, end) word offsets of its code block.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> node_block;
  std::uint32_t prologue_words = 0;

  [[nodiscard]] int local_input_index(cfsm::EventId e) const;
  [[nodiscard]] std::uint32_t code_bytes() const {
    return static_cast<std::uint32_t>(code.size()) * iss::kInstrBytes;
  }
};

/// Compiles a CFSM's s-graph. `code_base_word` is the word address the image
/// will be loaded at (jump targets are absolute); `data_base` the byte
/// address of its data block.
[[nodiscard]] SwImage compile_cfsm(const cfsm::Cfsm& cfsm,
                                   std::uint32_t code_base_word,
                                   std::uint32_t data_base);

// -- runtime protocol (used by the co-estimation master) ---------------------

/// Write input events and variables for one reaction into ISS memory.
void stage_reaction(iss::Iss& iss, const SwImage& img,
                    const cfsm::ReactionInputs& inputs,
                    const cfsm::CfsmState& state);

/// Read the emission ring back. Order matches program order.
[[nodiscard]] std::vector<cfsm::EmittedEvent> read_emissions(
    const iss::Iss& iss, const SwImage& img);

/// Read the (possibly updated) variable values back into `state`.
void read_vars(const iss::Iss& iss, const SwImage& img,
               cfsm::CfsmState& state);

/// Static instruction byte-address trace of one executed path — the stream
/// the master feeds to the fast instruction-cache simulator (the ISS itself
/// assumes 100 % hits, per Section 3 of the paper).
[[nodiscard]] std::vector<std::uint32_t> address_trace(
    const SwImage& img, const std::vector<cfsm::NodeId>& trace);

// -- characterization templates (macro-modeling support) ---------------------

/// Standalone template measuring one macro-op; run to HALT on a scratch ISS.
[[nodiscard]] iss::Program characterization_template(MacroOp op);
/// Baseline subtracted from every template measurement.
[[nodiscard]] iss::Program empty_template();

/// Annotated disassembly of a compiled image: prologue, then each s-graph
/// node's block with its kind. Debugging / documentation aid.
[[nodiscard]] std::string disassemble_image(const cfsm::Cfsm& cfsm,
                                            const SwImage& img);
/// Data base address the templates expect (safe scratch area).
[[nodiscard]] std::uint32_t template_data_base();

}  // namespace socpower::swsyn
