#include "swsyn/macro_op.hpp"

#include <cassert>
#include <cstring>

namespace socpower::swsyn {

const char* macro_op_name(MacroOp op) {
  switch (op) {
    case MacroOp::kConst: return "CONST";
    case MacroOp::kConstW: return "CONSTW";
    case MacroOp::kRVar: return "RVAR";
    case MacroOp::kEVal: return "EVAL";
    case MacroOp::kTein: return "TEIN";
    case MacroOp::kAdd: return "ADD";
    case MacroOp::kSub: return "SUB";
    case MacroOp::kMul: return "MUL";
    case MacroOp::kDiv: return "DIV";
    case MacroOp::kMod: return "MOD";
    case MacroOp::kNeg: return "NEG";
    case MacroOp::kBitAnd: return "AND";
    case MacroOp::kBitOr: return "OR";
    case MacroOp::kBitXor: return "XOR";
    case MacroOp::kBitNot: return "NOT";
    case MacroOp::kShl: return "SHL";
    case MacroOp::kShr: return "SHR";
    case MacroOp::kEq: return "EQ";
    case MacroOp::kNe: return "NE";
    case MacroOp::kLt: return "LT";
    case MacroOp::kLe: return "LE";
    case MacroOp::kGt: return "GT";
    case MacroOp::kGe: return "GE";
    case MacroOp::kLogicAnd: return "LAND";
    case MacroOp::kLogicOr: return "LOR";
    case MacroOp::kLogicNot: return "LNOT";
    case MacroOp::kAvv: return "AVV";
    case MacroOp::kAemit: return "AEMIT";
    case MacroOp::kTivarT: return "TIVART";
    case MacroOp::kTivarF: return "TIVARF";
    case MacroOp::kTend: return "TEND";
    case MacroOp::kMacroOpCount: break;
  }
  return "?";
}

MacroOp macro_op_from_name(const char* name) {
  for (std::size_t i = 0; i < kNumMacroOps; ++i) {
    const auto op = static_cast<MacroOp>(i);
    if (std::strcmp(name, macro_op_name(op)) == 0) return op;
  }
  return MacroOp::kMacroOpCount;
}

MacroOp macro_for_expr_op(cfsm::ExprOp op) {
  using E = cfsm::ExprOp;
  switch (op) {
    case E::kAdd: return MacroOp::kAdd;
    case E::kSub: return MacroOp::kSub;
    case E::kMul: return MacroOp::kMul;
    case E::kDiv: return MacroOp::kDiv;
    case E::kMod: return MacroOp::kMod;
    case E::kNeg: return MacroOp::kNeg;
    case E::kBitAnd: return MacroOp::kBitAnd;
    case E::kBitOr: return MacroOp::kBitOr;
    case E::kBitXor: return MacroOp::kBitXor;
    case E::kBitNot: return MacroOp::kBitNot;
    case E::kShl: return MacroOp::kShl;
    case E::kShr: return MacroOp::kShr;
    case E::kEq: return MacroOp::kEq;
    case E::kNe: return MacroOp::kNe;
    case E::kLt: return MacroOp::kLt;
    case E::kLe: return MacroOp::kLe;
    case E::kGt: return MacroOp::kGt;
    case E::kGe: return MacroOp::kGe;
    case E::kLogicAnd: return MacroOp::kLogicAnd;
    case E::kLogicOr: return MacroOp::kLogicOr;
    case E::kLogicNot: return MacroOp::kLogicNot;
    default:
      assert(false && "not an operator");
      return MacroOp::kMacroOpCount;
  }
}

bool needs_wide_constant(std::int32_t value) {
  return value < -32768 || value > 32767;
}

MacroOp macro_for_leaf(const cfsm::ExprNode& n) {
  using E = cfsm::ExprOp;
  switch (n.op) {
    case E::kConst:
      return needs_wide_constant(n.value) ? MacroOp::kConstW : MacroOp::kConst;
    case E::kVar: return MacroOp::kRVar;
    case E::kEventValue: return MacroOp::kEVal;
    case E::kEventPresent: return MacroOp::kTein;
    default:
      assert(false && "not a leaf");
      return MacroOp::kMacroOpCount;
  }
}

void append_expr_stream(const cfsm::ExprArena& arena, cfsm::ExprId id,
                        std::vector<MacroOp>& out) {
  const cfsm::ExprNode& n = arena.at(id);
  const int arity = cfsm::expr_arity(n.op);
  if (arity == 0) {
    out.push_back(macro_for_leaf(n));
    return;
  }
  append_expr_stream(arena, n.lhs, out);
  if (arity == 2) append_expr_stream(arena, n.rhs, out);
  out.push_back(macro_for_expr_op(n.op));
}

std::vector<MacroOp> macro_stream_for_trace(
    const cfsm::Cfsm& cfsm, const std::vector<cfsm::NodeId>& trace) {
  std::vector<MacroOp> out;
  const auto& g = cfsm.graph();
  const auto& arena = cfsm.arena();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const cfsm::SNode& n = g.node(trace[i]);
    switch (n.kind) {
      case cfsm::NodeKind::kEnd:
        out.push_back(MacroOp::kTend);
        break;
      case cfsm::NodeKind::kAssign:
        append_expr_stream(arena, n.expr, out);
        out.push_back(MacroOp::kAvv);
        break;
      case cfsm::NodeKind::kEmit:
        if (n.expr != cfsm::kNoExpr) append_expr_stream(arena, n.expr, out);
        out.push_back(MacroOp::kAemit);
        break;
      case cfsm::NodeKind::kTest: {
        append_expr_stream(arena, n.expr, out);
        assert(i + 1 < trace.size() && "test node cannot end a trace");
        const bool taken = trace[i + 1] == n.next;
        out.push_back(taken ? MacroOp::kTivarT : MacroOp::kTivarF);
        break;
      }
    }
  }
  return out;
}

}  // namespace socpower::swsyn
