// Macro-operations: the unit of software power macro-modeling (Section 4.1).
//
// POLIS characterizes a library of high-level macro-operations — assignments
// (AVV), tests on values (TIVART / TIVARF, one per branch direction because
// taken and fall-through branches cost differently), event emission (AEMIT),
// and ~30 arithmetic/relational/logical functions (ADD, EQ, NOT, ...) — by
// compiling each to target assembly and measuring delay/energy/code size on
// the ISS. The resulting parameter file annotates the behavioral model so
// co-simulation can skip the ISS.
//
// Our vocabulary mirrors that: one macro-op per expression operator (the
// "function library"), plus leaf accessors and the structural ops. The
// macro-op stream of an execution path is derived purely from the s-graph
// trace, so the annotator can price any path without running it.
#pragma once

#include <cstdint>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "cfsm/expr.hpp"
#include "cfsm/sgraph.hpp"

namespace socpower::swsyn {

enum class MacroOp : std::uint8_t {
  // Leaf accessors.
  kConst,   // load a small literal into the expression register
  kConstW,  // wide literal (movhi + ori)
  kRVar,    // read a process variable
  kEVal,    // read an input event's value
  kTein,    // read an input event's presence flag
  // Expression operator library (costs are the operator *glue* only; the
  // operand leaves are priced by the leaf macro-ops above).
  kAdd, kSub, kMul, kDiv, kMod, kNeg,
  kBitAnd, kBitOr, kBitXor, kBitNot,
  kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLogicAnd, kLogicOr, kLogicNot,
  // Structural ops.
  kAvv,     // assign expression result to a variable
  kAemit,   // emit an output event carrying the expression result
  kTivarT,  // test, true (fall-through) direction
  kTivarF,  // test, false (taken-branch) direction
  kTend,    // end of transition (return to master)
  kMacroOpCount,
};

inline constexpr std::size_t kNumMacroOps =
    static_cast<std::size_t>(MacroOp::kMacroOpCount);

/// Stable mnemonic used in the macro-model parameter file (Figure 3 of the
/// paper uses AVV, TIVART, TIVARF, AEMIT; operators use their library names).
[[nodiscard]] const char* macro_op_name(MacroOp op);
/// Inverse of macro_op_name; kMacroOpCount when unknown.
[[nodiscard]] MacroOp macro_op_from_name(const char* name);

/// Macro-op pricing the operator glue of an expression operator.
[[nodiscard]] MacroOp macro_for_expr_op(cfsm::ExprOp op);

/// Whether a literal needs the wide (two-instruction) constant form.
[[nodiscard]] bool needs_wide_constant(std::int32_t value);

/// The macro-op for one expression leaf node.
[[nodiscard]] MacroOp macro_for_leaf(const cfsm::ExprNode& n);

/// Macro-op stream of one expression tree, post-order (leaves then glue) —
/// exactly the order the code generator emits instructions in.
void append_expr_stream(const cfsm::ExprArena& arena, cfsm::ExprId id,
                        std::vector<MacroOp>& out);

/// Macro-op stream of one executed path (s-graph node trace). Branch
/// direction at each Test node is recovered from the trace itself.
[[nodiscard]] std::vector<MacroOp> macro_stream_for_trace(
    const cfsm::Cfsm& cfsm, const std::vector<cfsm::NodeId>& trace);

}  // namespace socpower::swsyn
