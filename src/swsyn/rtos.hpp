// RTOS model for the software partition.
//
// POLIS automatically generates a small RTOS that dispatches software CFSM
// transitions on the (single) embedded processor under a priority-based,
// non-preemptive policy. For co-estimation, what matters is (a) software
// transitions of different tasks serialize on the processor, (b) the
// dispatch order among simultaneously-ready tasks follows the configured
// priorities, and (c) every dispatch costs a characteristic number of
// cycles/energy (event-queue handling plus context switch). The scheduling
// itself is carried out by the co-estimation master using this model.
#pragma once

#include <cstdint>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "util/units.hpp"

namespace socpower::swsyn {

struct RtosConfig {
  /// Cycles charged per software transition dispatch (event de-queue, task
  /// switch, s-graph entry). The POLIS RTOS is a few dozen instructions.
  Cycles dispatch_cycles = 24;
  /// Average supply current drawn during dispatch code (mA) — RTOS code is
  /// ordinary integer code, close to the ALU class current.
  double dispatch_current_ma = 255.0;
};

class RtosModel {
 public:
  explicit RtosModel(RtosConfig config = {}, ElectricalParams params = {});

  /// Priority: larger value = more urgent. Default 0.
  void set_priority(cfsm::CfsmId task, int priority);
  [[nodiscard]] int priority(cfsm::CfsmId task) const;

  /// Among `ready` tasks, pick the one to dispatch: the highest priority,
  /// FIFO (by queue position) within a priority level.
  [[nodiscard]] std::size_t pick_next(
      const std::vector<cfsm::CfsmId>& ready) const;

  [[nodiscard]] Cycles dispatch_cycles() const {
    return config_.dispatch_cycles;
  }
  [[nodiscard]] Joules dispatch_energy() const;

 private:
  RtosConfig config_;
  ElectricalParams params_;
  std::vector<int> priorities_;
};

}  // namespace socpower::swsyn
