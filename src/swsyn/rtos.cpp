#include "swsyn/rtos.hpp"

#include <cassert>

namespace socpower::swsyn {

RtosModel::RtosModel(RtosConfig config, ElectricalParams params)
    : config_(config), params_(params) {}

void RtosModel::set_priority(cfsm::CfsmId task, int priority) {
  assert(task >= 0);
  if (static_cast<std::size_t>(task) >= priorities_.size())
    priorities_.resize(static_cast<std::size_t>(task) + 1, 0);
  priorities_[static_cast<std::size_t>(task)] = priority;
}

int RtosModel::priority(cfsm::CfsmId task) const {
  if (task < 0 || static_cast<std::size_t>(task) >= priorities_.size())
    return 0;
  return priorities_[static_cast<std::size_t>(task)];
}

std::size_t RtosModel::pick_next(
    const std::vector<cfsm::CfsmId>& ready) const {
  assert(!ready.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < ready.size(); ++i)
    if (priority(ready[i]) > priority(ready[best])) best = i;
  return best;
}

Joules RtosModel::dispatch_energy() const {
  return config_.dispatch_current_ma * 1e-3 * params_.vdd_volts *
         static_cast<double>(config_.dispatch_cycles) / params_.clock_hz;
}

}  // namespace socpower::swsyn
