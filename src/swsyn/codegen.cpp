#include "swsyn/codegen.hpp"

#include <algorithm>
#include <cassert>

namespace socpower::swsyn {

namespace {

using cfsm::ExprArena;
using cfsm::ExprId;
using cfsm::ExprNode;
using cfsm::ExprOp;
using cfsm::NodeId;
using cfsm::NodeKind;
using cfsm::SNode;
using iss::Instruction;
using iss::Opcode;
using iss::Program;

// Register conventions (see header).
constexpr std::uint8_t kBase = 1;
constexpr std::uint8_t kRes = 8;
constexpr std::uint8_t kOp2 = 9;
constexpr std::uint8_t kEmit1 = 10;
constexpr std::uint8_t kEmit2 = 11;
constexpr std::uint8_t kScratch = 12;

Instruction make_r(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                   std::uint8_t rs2) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rs1 = rs1;
  i.rs2 = rs2;
  return i;
}

Instruction make_i(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                   std::int32_t imm) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rs1 = rs1;
  i.imm = imm;
  return i;
}

Instruction make_mem(Opcode op, std::uint8_t data_reg, std::uint8_t addr_reg,
                     std::int32_t disp) {
  Instruction i;
  i.op = op;
  if (iss::is_store(op))
    i.rs2 = data_reg;
  else
    i.rd = data_reg;
  i.rs1 = addr_reg;
  i.imm = disp;
  return i;
}

Instruction make_branch(Opcode op, std::uint8_t rs1, std::uint8_t rs2,
                        std::int32_t off) {
  Instruction i;
  i.op = op;
  i.rs1 = rs1;
  i.rs2 = rs2;
  i.imm = off;
  return i;
}

/// Loads an arbitrary 32-bit constant into `rd` (1 or 2 instructions).
void emit_constant(Program& p, std::uint8_t rd, std::int32_t value) {
  if (!needs_wide_constant(value)) {
    p.push_back(make_i(Opcode::kMovI, rd, 0, value));
    return;
  }
  const auto uv = static_cast<std::uint32_t>(value);
  p.push_back(make_i(Opcode::kMovHi, rd, 0,
                     static_cast<std::int32_t>(uv >> 16)));
  p.push_back(make_i(Opcode::kOrI, rd, rd,
                     static_cast<std::int32_t>(uv & 0xffffu)));
}

/// Operator glue for a binary operator: consumes lhs in r8 and rhs in r9,
/// leaves the result in r8. Shared verbatim between in-situ code generation
/// and the characterization templates.
void emit_binary_op(Program& p, ExprOp op) {
  switch (op) {
    case ExprOp::kAdd: p.push_back(make_r(Opcode::kAdd, kRes, kRes, kOp2)); break;
    case ExprOp::kSub: p.push_back(make_r(Opcode::kSub, kRes, kRes, kOp2)); break;
    case ExprOp::kMul: p.push_back(make_r(Opcode::kMul, kRes, kRes, kOp2)); break;
    case ExprOp::kDiv: p.push_back(make_r(Opcode::kDiv, kRes, kRes, kOp2)); break;
    case ExprOp::kMod:
      // a - (a/b)*b; with a/0 == 0 this yields a for b == 0.
      p.push_back(make_r(Opcode::kDiv, kScratch, kRes, kOp2));
      p.push_back(make_r(Opcode::kMul, kScratch, kScratch, kOp2));
      p.push_back(make_r(Opcode::kSub, kRes, kRes, kScratch));
      break;
    case ExprOp::kBitAnd: p.push_back(make_r(Opcode::kAnd, kRes, kRes, kOp2)); break;
    case ExprOp::kBitOr: p.push_back(make_r(Opcode::kOr, kRes, kRes, kOp2)); break;
    case ExprOp::kBitXor: p.push_back(make_r(Opcode::kXor, kRes, kRes, kOp2)); break;
    case ExprOp::kShl: p.push_back(make_r(Opcode::kSll, kRes, kRes, kOp2)); break;
    case ExprOp::kShr: p.push_back(make_r(Opcode::kSra, kRes, kRes, kOp2)); break;
    case ExprOp::kEq:
      p.push_back(make_r(Opcode::kXor, kRes, kRes, kOp2));
      p.push_back(make_i(Opcode::kMovI, kOp2, 0, 1));
      p.push_back(make_r(Opcode::kSltu, kRes, kRes, kOp2));
      break;
    case ExprOp::kNe:
      p.push_back(make_r(Opcode::kXor, kRes, kRes, kOp2));
      p.push_back(make_r(Opcode::kSltu, kRes, 0, kRes));
      break;
    case ExprOp::kLt: p.push_back(make_r(Opcode::kSlt, kRes, kRes, kOp2)); break;
    case ExprOp::kLe:
      p.push_back(make_r(Opcode::kSlt, kRes, kOp2, kRes));
      p.push_back(make_i(Opcode::kXorI, kRes, kRes, 1));
      break;
    case ExprOp::kGt: p.push_back(make_r(Opcode::kSlt, kRes, kOp2, kRes)); break;
    case ExprOp::kGe:
      p.push_back(make_r(Opcode::kSlt, kRes, kRes, kOp2));
      p.push_back(make_i(Opcode::kXorI, kRes, kRes, 1));
      break;
    case ExprOp::kLogicAnd:
      p.push_back(make_r(Opcode::kSltu, kRes, 0, kRes));
      p.push_back(make_r(Opcode::kSltu, kOp2, 0, kOp2));
      p.push_back(make_r(Opcode::kAnd, kRes, kRes, kOp2));
      break;
    case ExprOp::kLogicOr:
      p.push_back(make_r(Opcode::kOr, kRes, kRes, kOp2));
      p.push_back(make_r(Opcode::kSltu, kRes, 0, kRes));
      break;
    default:
      assert(false && "not a binary operator");
  }
}

/// Operator glue for a unary operator: in-place on r8.
void emit_unary_op(Program& p, ExprOp op) {
  switch (op) {
    case ExprOp::kNeg:
      p.push_back(make_r(Opcode::kSub, kRes, 0, kRes));
      break;
    case ExprOp::kBitNot:
      p.push_back(make_i(Opcode::kMovI, kOp2, 0, -1));
      p.push_back(make_r(Opcode::kXor, kRes, kRes, kOp2));
      break;
    case ExprOp::kLogicNot:
      p.push_back(make_i(Opcode::kMovI, kOp2, 0, 1));
      p.push_back(make_r(Opcode::kSltu, kRes, kRes, kOp2));
      break;
    default:
      assert(false && "not a unary operator");
  }
}

/// The AEMIT sequence: appends {event_id, value-in-r8} to the emission ring.
void emit_aemit(Program& p, std::int32_t event_id) {
  p.push_back(make_mem(Opcode::kLw, kOp2, kBase, 0));        // count
  p.push_back(make_i(Opcode::kSllI, kEmit1, kOp2, 3));       // * 8 bytes
  p.push_back(make_r(Opcode::kAdd, kEmit1, kEmit1, kBase));
  p.push_back(make_mem(Opcode::kSw, kRes, kEmit1, 8));       // value slot
  p.push_back(make_i(Opcode::kMovI, kEmit2, 0, event_id));
  p.push_back(make_mem(Opcode::kSw, kEmit2, kEmit1, 4));     // event slot
  p.push_back(make_i(Opcode::kAddI, kOp2, kOp2, 1));
  p.push_back(make_mem(Opcode::kSw, kOp2, kBase, 0));
}

/// Maximum number of Emit nodes on any root-to-End path (longest-path DP
/// over the DAG) — sizes the emission ring so it can never overflow.
unsigned max_emits_on_any_path(const cfsm::SGraph& g) {
  std::vector<int> memo(g.node_count(), -1);
  auto dp = [&](auto&& self, NodeId id) -> int {
    auto& m = memo[static_cast<std::size_t>(id)];
    if (m >= 0) return m;
    const SNode& n = g.node(id);
    int best = 0;
    if (n.kind == NodeKind::kTest)
      best = std::max(self(self, n.next), self(self, n.next_else));
    else if (n.kind != NodeKind::kEnd)
      best = self(self, n.next);
    m = best + (n.kind == NodeKind::kEmit ? 1 : 0);
    return m;
  };
  return static_cast<unsigned>(dp(dp, g.root()));
}

/// Max spill-temporary depth of an expression under the evaluation scheme
/// "eval lhs at depth d, spill to tmp[d], eval rhs at depth d+1".
int temp_depth(const ExprArena& a, ExprId e) {
  const ExprNode& n = a.at(e);
  switch (cfsm::expr_arity(n.op)) {
    case 0: return 0;
    case 1: return temp_depth(a, n.lhs);
    default:
      return std::max(temp_depth(a, n.lhs), 1 + temp_depth(a, n.rhs));
  }
}

struct GenContext {
  const cfsm::Cfsm* cfsm = nullptr;
  const SwImage* layout = nullptr;
};

/// Evaluates an expression tree into r8 using spill slot `depth` upward.
void eval_expr(Program& p, const GenContext& gc, ExprId e, int depth) {
  const ExprArena& a = gc.cfsm->arena();
  const ExprNode& n = a.at(e);
  const SwImage& L = *gc.layout;
  switch (n.op) {
    case ExprOp::kConst:
      emit_constant(p, kRes, n.value);
      return;
    case ExprOp::kVar:
      p.push_back(make_mem(Opcode::kLw, kRes, kBase,
                           static_cast<std::int32_t>(L.var_off) + 4 * n.value));
      return;
    case ExprOp::kEventValue: {
      const int li = L.local_input_index(n.value);
      assert(li >= 0 && "event value read from a non-input event");
      p.push_back(make_mem(Opcode::kLw, kRes, kBase,
                           static_cast<std::int32_t>(L.in_val_off) + 4 * li));
      return;
    }
    case ExprOp::kEventPresent: {
      const int li = L.local_input_index(n.value);
      assert(li >= 0 && "presence test of a non-input event");
      p.push_back(make_mem(Opcode::kLw, kRes, kBase,
                           static_cast<std::int32_t>(L.in_flag_off) + 4 * li));
      return;
    }
    default:
      break;
  }
  if (cfsm::expr_arity(n.op) == 1) {
    eval_expr(p, gc, n.lhs, depth);
    emit_unary_op(p, n.op);
    return;
  }
  // Binary: lhs -> spill, rhs -> r8, restore lhs, apply.
  eval_expr(p, gc, n.lhs, depth);
  const auto tmp_disp =
      static_cast<std::int32_t>(gc.layout->tmp_off) + 4 * depth;
  p.push_back(make_mem(Opcode::kSw, kRes, kBase, tmp_disp));
  eval_expr(p, gc, n.rhs, depth + 1);
  p.push_back(make_r(Opcode::kOr, kOp2, kRes, 0));
  p.push_back(make_mem(Opcode::kLw, kRes, kBase, tmp_disp));
  emit_binary_op(p, n.op);
}

/// Reverse post-order over the s-graph from the root: good fall-through
/// layout (a Test's taken branch tends to directly follow it).
std::vector<NodeId> layout_order(const cfsm::SGraph& g) {
  std::vector<NodeId> post;
  std::vector<std::uint8_t> seen(g.node_count(), 0);
  struct Frame {
    NodeId id;
    int stage;
  };
  std::vector<Frame> stack{{g.root(), 0}};
  seen[static_cast<std::size_t>(g.root())] = 1;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const SNode& n = g.node(f.id);
    NodeId succ = cfsm::kNoNode;
    if (n.kind == NodeKind::kTest) {
      // Visit `else` first so `then` lands earlier in reverse post-order.
      if (f.stage == 0) succ = n.next_else;
      else if (f.stage == 1) succ = n.next;
    } else if (n.kind != NodeKind::kEnd && f.stage == 0) {
      succ = n.next;
    }
    ++f.stage;
    if (succ == cfsm::kNoNode) {  // all successors explored
      post.push_back(f.id);
      stack.pop_back();
      continue;
    }
    if (!seen[static_cast<std::size_t>(succ)]) {
      seen[static_cast<std::size_t>(succ)] = 1;
      stack.push_back({succ, 0});
    }
  }
  std::reverse(post.begin(), post.end());
  return post;
}

}  // namespace

int SwImage::local_input_index(cfsm::EventId e) const {
  for (std::size_t i = 0; i < local_inputs.size(); ++i)
    if (local_inputs[i] == e) return static_cast<int>(i);
  return -1;
}

SwImage compile_cfsm(const cfsm::Cfsm& cfsm, std::uint32_t code_base_word,
                     std::uint32_t data_base) {
  assert(cfsm.graph().validate().empty() && "invalid s-graph");
  SwImage img;
  img.code_base_word = code_base_word;
  img.data_base = data_base;

  // Local input slots: triggering inputs first, then sampled inputs.
  img.local_inputs = cfsm.inputs();
  for (cfsm::EventId e : cfsm.sampled_inputs()) img.local_inputs.push_back(e);

  // Data layout. The emission ring is sized for the worst-case path, so it
  // cannot overflow at run time (read_emissions still asserts as a belt).
  img.max_emits = std::max(1u, max_emits_on_any_path(cfsm.graph()));
  int max_depth = 0;
  const auto& g = cfsm.graph();
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const SNode& n = g.node(static_cast<NodeId>(i));
    if (n.expr != cfsm::kNoExpr)
      max_depth = std::max(max_depth, temp_depth(cfsm.arena(), n.expr));
  }
  img.in_flag_off = 4 + 8 * img.max_emits;
  img.in_val_off =
      img.in_flag_off + 4 * static_cast<std::uint32_t>(img.local_inputs.size());
  img.var_off =
      img.in_val_off + 4 * static_cast<std::uint32_t>(img.local_inputs.size());
  img.tmp_off =
      img.var_off + 4 * static_cast<std::uint32_t>(cfsm.vars().size());
  img.data_bytes = img.tmp_off + 4 * static_cast<std::uint32_t>(max_depth + 1);

  GenContext gc{&cfsm, &img};

  // Prologue: base pointer.
  emit_constant(img.code, kBase, static_cast<std::int32_t>(data_base));
  img.prologue_words = static_cast<std::uint32_t>(img.code.size());

  const std::vector<NodeId> order = layout_order(g);
  std::vector<std::uint32_t> block_start(g.node_count(), 0);
  img.node_block.assign(g.node_count(), {0, 0});

  struct Fixup {
    std::uint32_t word;      // instruction index in img.code
    NodeId target;           // node whose block start it needs
    bool absolute;           // J (absolute word addr) vs branch (relative)
  };
  std::vector<Fixup> fixups;

  for (std::size_t oi = 0; oi < order.size(); ++oi) {
    const NodeId id = order[oi];
    const SNode& n = g.node(id);
    const auto begin = static_cast<std::uint32_t>(img.code.size());
    block_start[static_cast<std::size_t>(id)] = begin;
    const NodeId fall_through =
        oi + 1 < order.size() ? order[oi + 1] : cfsm::kNoNode;

    switch (n.kind) {
      case NodeKind::kEnd:
        img.code.push_back(Instruction{Opcode::kHalt});
        break;
      case NodeKind::kAssign: {
        eval_expr(img.code, gc, n.expr, 0);
        img.code.push_back(make_mem(
            Opcode::kSw, kRes, kBase,
            static_cast<std::int32_t>(img.var_off) + 4 * n.var));
        if (n.next != fall_through) {
          fixups.push_back(
              {static_cast<std::uint32_t>(img.code.size()), n.next, true});
          img.code.push_back(make_i(Opcode::kJ, 0, 0, 0));
          img.code.push_back(Instruction{Opcode::kNop});  // delay slot
        }
        break;
      }
      case NodeKind::kEmit: {
        if (n.expr != cfsm::kNoExpr)
          eval_expr(img.code, gc, n.expr, 0);
        else
          img.code.push_back(make_i(Opcode::kMovI, kRes, 0, 0));
        emit_aemit(img.code, n.event);
        if (n.next != fall_through) {
          fixups.push_back(
              {static_cast<std::uint32_t>(img.code.size()), n.next, true});
          img.code.push_back(make_i(Opcode::kJ, 0, 0, 0));
          img.code.push_back(Instruction{Opcode::kNop});
        }
        break;
      }
      case NodeKind::kTest: {
        eval_expr(img.code, gc, n.expr, 0);
        // Condition false -> jump to the else block.
        fixups.push_back(
            {static_cast<std::uint32_t>(img.code.size()), n.next_else, false});
        img.code.push_back(make_branch(Opcode::kBeq, kRes, 0, 0));
        img.code.push_back(Instruction{Opcode::kNop});  // delay slot
        if (n.next != fall_through) {
          fixups.push_back(
              {static_cast<std::uint32_t>(img.code.size()), n.next, true});
          img.code.push_back(make_i(Opcode::kJ, 0, 0, 0));
          img.code.push_back(Instruction{Opcode::kNop});
        }
        break;
      }
    }
    img.node_block[static_cast<std::size_t>(id)] = {
        begin, static_cast<std::uint32_t>(img.code.size())};
  }

  for (const Fixup& f : fixups) {
    const std::uint32_t tgt = block_start[static_cast<std::size_t>(f.target)];
    if (f.absolute)
      img.code[f.word].imm = static_cast<std::int32_t>(code_base_word + tgt);
    else
      img.code[f.word].imm =
          static_cast<std::int32_t>(tgt) - static_cast<std::int32_t>(f.word);
  }
  return img;
}

void stage_reaction(iss::Iss& iss, const SwImage& img,
                    const cfsm::ReactionInputs& inputs,
                    const cfsm::CfsmState& state) {
  iss.store_word(img.data_base + 0, 0);  // clear the emission count
  for (std::size_t li = 0; li < img.local_inputs.size(); ++li) {
    const cfsm::EventId e = img.local_inputs[li];
    const bool present = inputs.present(e);
    const auto off = static_cast<std::uint32_t>(4 * li);
    iss.store_word(img.data_base + img.in_flag_off + off, present ? 1 : 0);
    iss.store_word(img.data_base + img.in_val_off + off,
                   present ? inputs.value(e) : 0);
  }
  for (std::size_t v = 0; v < state.vars.size(); ++v)
    iss.store_word(img.data_base + img.var_off +
                       static_cast<std::uint32_t>(4 * v),
                   state.vars[v]);
}

std::vector<cfsm::EmittedEvent> read_emissions(const iss::Iss& iss,
                                               const SwImage& img) {
  const std::int32_t count = iss.load_word(img.data_base + 0);
  assert(count >= 0 && static_cast<unsigned>(count) <= img.max_emits &&
         "emission ring overflow");
  std::vector<cfsm::EmittedEvent> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::int32_t i = 0; i < count; ++i) {
    const std::uint32_t rec = img.data_base + 4 + 8 * static_cast<std::uint32_t>(i);
    out.push_back({iss.load_word(rec), iss.load_word(rec + 4)});
  }
  return out;
}

void read_vars(const iss::Iss& iss, const SwImage& img,
               cfsm::CfsmState& state) {
  for (std::size_t v = 0; v < state.vars.size(); ++v)
    state.vars[v] = iss.load_word(img.data_base + img.var_off +
                                  static_cast<std::uint32_t>(4 * v));
}

std::vector<std::uint32_t> address_trace(
    const SwImage& img, const std::vector<cfsm::NodeId>& trace) {
  std::vector<std::uint32_t> out;
  auto push_range = [&](std::uint32_t b, std::uint32_t e) {
    for (std::uint32_t w = b; w < e; ++w)
      out.push_back((img.code_base_word + w) * iss::kInstrBytes);
  };
  push_range(0, img.prologue_words);
  for (cfsm::NodeId n : trace) {
    const auto& [b, e] = img.node_block[static_cast<std::size_t>(n)];
    push_range(b, e);
  }
  return out;
}

std::string disassemble_image(const cfsm::Cfsm& cfsm, const SwImage& img) {
  std::string out =
      "; " + cfsm.name() + ": " + std::to_string(img.code.size()) +
      " words @ 0x" + [&] {
        char b[16];
        std::snprintf(b, sizeof b, "%x", img.code_base_word);
        return std::string(b);
      }() + ", data @ 0x" + [&] {
        char b[16];
        std::snprintf(b, sizeof b, "%x", img.data_base);
        return std::string(b);
      }() + "\n";
  auto emit_range = [&](std::uint32_t b, std::uint32_t e) {
    for (std::uint32_t w = b; w < e; ++w) {
      char line[96];
      std::snprintf(line, sizeof line, "  %04x:  %s\n",
                    img.code_base_word + w,
                    iss::disassemble(img.code[w]).c_str());
      out += line;
    }
  };
  out += "; prologue\n";
  emit_range(0, img.prologue_words);
  // Blocks in layout order (sorted by start).
  std::vector<std::pair<std::uint32_t, NodeId>> order;
  for (std::size_t n = 0; n < img.node_block.size(); ++n)
    order.emplace_back(img.node_block[n].first, static_cast<NodeId>(n));
  std::sort(order.begin(), order.end());
  for (const auto& [start, node] : order) {
    const SNode& sn = cfsm.graph().node(node);
    const char* kind = sn.kind == NodeKind::kTest     ? "test"
                       : sn.kind == NodeKind::kAssign ? "assign"
                       : sn.kind == NodeKind::kEmit   ? "emit"
                                                      : "end";
    out += "; node " + std::to_string(node) + " (" + kind + ")\n";
    emit_range(start, img.node_block[static_cast<std::size_t>(node)].second);
  }
  return out;
}

// -- characterization templates ----------------------------------------------

std::uint32_t template_data_base() { return 0x1000; }

iss::Program empty_template() { return {Instruction{Opcode::kHalt}}; }

iss::Program characterization_template(MacroOp op) {
  Program p;
  const auto base = static_cast<std::int32_t>(template_data_base());
  // Offsets within the scratch block (any distinct word slots work).
  constexpr std::int32_t kTplVar = 0x80;
  constexpr std::int32_t kTplVal = 0xa0;
  constexpr std::int32_t kTplFlag = 0xc0;
  constexpr std::int32_t kTplTmp = 0x40;

  emit_constant(p, kBase, base);  // harness: base pointer per template
  switch (op) {
    case MacroOp::kConst:
      p.push_back(make_i(Opcode::kMovI, kRes, 0, 42));
      break;
    case MacroOp::kConstW:
      emit_constant(p, kRes, 0x12345678);
      break;
    case MacroOp::kRVar:
      p.push_back(make_mem(Opcode::kLw, kRes, kBase, kTplVar));
      break;
    case MacroOp::kEVal:
      p.push_back(make_mem(Opcode::kLw, kRes, kBase, kTplVal));
      break;
    case MacroOp::kTein:
      p.push_back(make_mem(Opcode::kLw, kRes, kBase, kTplFlag));
      break;
    case MacroOp::kAvv:
      p.push_back(make_i(Opcode::kMovI, kRes, 0, 7));  // staged operand
      p.push_back(make_mem(Opcode::kSw, kRes, kBase, kTplVar));
      break;
    case MacroOp::kAemit:
      p.push_back(make_i(Opcode::kMovI, kRes, 0, 7));
      emit_aemit(p, 0);
      break;
    case MacroOp::kTivarT:
    case MacroOp::kTivarF: {
      p.push_back(make_i(Opcode::kMovI, kRes, 0,
                         op == MacroOp::kTivarT ? 1 : 0));
      p.push_back(make_branch(Opcode::kBeq, kRes, 0, 2));  // to halt
      p.push_back(Instruction{Opcode::kNop});
      break;
    }
    case MacroOp::kTend:
      break;  // HALT below is the op itself
    case MacroOp::kNeg:
    case MacroOp::kBitNot:
    case MacroOp::kLogicNot: {
      p.push_back(make_i(Opcode::kMovI, kRes, 0, 7));  // staged operand
      const ExprOp eop = op == MacroOp::kNeg ? ExprOp::kNeg
                         : op == MacroOp::kBitNot ? ExprOp::kBitNot
                                                  : ExprOp::kLogicNot;
      emit_unary_op(p, eop);
      break;
    }
    default: {
      // Binary operator: stage lhs, spill, stage rhs, run the glue —
      // mirroring the in-situ sequence with the leaf evaluations replaced
      // by staging moves (which is exactly the characterization error the
      // paper discusses).
      ExprOp eop;
      switch (op) {
        case MacroOp::kAdd: eop = ExprOp::kAdd; break;
        case MacroOp::kSub: eop = ExprOp::kSub; break;
        case MacroOp::kMul: eop = ExprOp::kMul; break;
        case MacroOp::kDiv: eop = ExprOp::kDiv; break;
        case MacroOp::kMod: eop = ExprOp::kMod; break;
        case MacroOp::kBitAnd: eop = ExprOp::kBitAnd; break;
        case MacroOp::kBitOr: eop = ExprOp::kBitOr; break;
        case MacroOp::kBitXor: eop = ExprOp::kBitXor; break;
        case MacroOp::kShl: eop = ExprOp::kShl; break;
        case MacroOp::kShr: eop = ExprOp::kShr; break;
        case MacroOp::kEq: eop = ExprOp::kEq; break;
        case MacroOp::kNe: eop = ExprOp::kNe; break;
        case MacroOp::kLt: eop = ExprOp::kLt; break;
        case MacroOp::kLe: eop = ExprOp::kLe; break;
        case MacroOp::kGt: eop = ExprOp::kGt; break;
        case MacroOp::kGe: eop = ExprOp::kGe; break;
        case MacroOp::kLogicAnd: eop = ExprOp::kLogicAnd; break;
        case MacroOp::kLogicOr: eop = ExprOp::kLogicOr; break;
        default:
          assert(false && "unhandled macro op");
          eop = ExprOp::kAdd;
      }
      p.push_back(make_i(Opcode::kMovI, kRes, 0, 13));          // operand stage
      p.push_back(make_mem(Opcode::kSw, kRes, kBase, kTplTmp));  // spill
      p.push_back(make_r(Opcode::kOr, kOp2, kRes, 0));
      p.push_back(make_mem(Opcode::kLw, kRes, kBase, kTplTmp));
      emit_binary_op(p, eop);
      break;
    }
  }
  p.push_back(Instruction{Opcode::kHalt});
  return p;
}

}  // namespace socpower::swsyn
