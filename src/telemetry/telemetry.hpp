// Telemetry subsystem facade: configuration, global registry/collector
// access, and export.
//
// Typical use (examples/explore_tcpip.cpp):
//
//   telemetry::configure_from_env();          // SOCPOWER_TELEMETRY / _TRACE
//   ... run co-estimation ...
//   if (telemetry::enabled())
//     std::cout << telemetry::snapshot().render_table();
//   telemetry::write_chrome_trace("out.json");  // when tracing
//
// Telemetry is OFF by default; a build that never calls configure() pays
// only the disabled-path cost (one relaxed load + branch per site, gated
// ≤2% by bench_telemetry_overhead). Enabling telemetry never changes
// simulation results — instrumentation observes, it does not steer.
#pragma once

#include <string>

#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace socpower::telemetry {

struct TelemetryConfig {
  bool enabled = false;  ///< master switch: counters, gauges, histograms
  bool trace = false;    ///< span/instant collection (requires enabled)
  std::size_t ring_capacity = TraceCollector::kDefaultRingCapacity;
};

/// Applies `cfg` to the global switches and collector. `trace` without
/// `enabled` is normalized to off (trace_enabled() implies enabled()).
void configure(const TelemetryConfig& cfg);

/// Currently applied configuration.
[[nodiscard]] TelemetryConfig config();

/// Shorthand for configure() toggling both switches together.
void set_enabled(bool counters, bool trace);

/// Reads SOCPOWER_TELEMETRY (bool), SOCPOWER_TRACE (output path; presence
/// also enables counters + tracing) and SOCPOWER_TRACE_RING (event capacity
/// per thread) and applies them. Returns the trace output path ("" when
/// tracing is off).
std::string configure_from_env();

/// Snapshot of the global registry.
[[nodiscard]] Snapshot snapshot();

/// Writes the global collector's Chrome trace JSON (with the current counter
/// snapshot embedded under otherData) to `path`. Returns false on I/O error.
bool write_chrome_trace(const std::string& path);

/// Zeroes all counters and drops all trace events; registrations and cached
/// handles survive. For benches and tests that measure phases in-process.
void reset();

}  // namespace socpower::telemetry
