#include "telemetry/trace.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

namespace socpower::telemetry {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Collector instances get process-unique ids so the thread-local ring cache
/// can tell "my collector" from a destroyed one whose address was reused.
std::atomic<std::uint64_t> g_next_collector_id{1};

}  // namespace

struct TraceCollector::Ring {
  mutable std::mutex mu;
  std::uint32_t tid = 0;
  std::thread::id owner;
  std::size_t capacity = 0;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

struct TraceCollector::Impl {
  std::uint64_t id = 0;
  std::int64_t epoch_ns = 0;
  mutable std::mutex mu;  // guards rings (the vector, not each ring's events)
  std::size_t ring_capacity = kDefaultRingCapacity;
  std::vector<std::unique_ptr<Ring>> rings;
};

namespace {
struct RingCache {
  std::uint64_t collector_id = 0;
  TraceCollector::Ring* ring = nullptr;
};
thread_local RingCache t_ring_cache;
}  // namespace

TraceCollector::TraceCollector(std::size_t ring_capacity)
    : impl_(std::make_unique<Impl>()) {
  impl_->id = g_next_collector_id.fetch_add(1, std::memory_order_relaxed);
  impl_->epoch_ns = steady_now_ns();
  impl_->ring_capacity = ring_capacity ? ring_capacity : 1;
}

TraceCollector::~TraceCollector() = default;

std::int64_t TraceCollector::now_ns() const {
  return steady_now_ns() - impl_->epoch_ns;
}

TraceCollector::Ring& TraceCollector::local_ring() {
  RingCache& cache = t_ring_cache;
  if (cache.collector_id == impl_->id) return *cache.ring;
  // The thread-local cache remembers one collector only; when a thread
  // alternates between collectors (tests own private instances), re-find the
  // thread's existing ring instead of registering a duplicate.
  std::lock_guard<std::mutex> lk(impl_->mu);
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& r : impl_->rings) {
    if (r->owner == self) {
      cache = {impl_->id, r.get()};
      return *cache.ring;
    }
  }
  auto ring = std::make_unique<Ring>();
  ring->tid = static_cast<std::uint32_t>(impl_->rings.size());
  ring->owner = self;
  ring->capacity = impl_->ring_capacity;
  // Reserve the full bound up front: recording never reallocates, so the
  // parallel engine stays allocation-quiet while tracing.
  ring->events.reserve(ring->capacity);
  impl_->rings.push_back(std::move(ring));
  cache = {impl_->id, impl_->rings.back().get()};
  return *cache.ring;
}

void TraceCollector::record(const TraceEvent& ev) {
  Ring& r = local_ring();
  std::lock_guard<std::mutex> lk(r.mu);
  if (r.events.size() >= r.capacity) {
    ++r.dropped;
    return;
  }
  r.events.push_back(ev);
}

void TraceCollector::set_ring_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->ring_capacity = capacity ? capacity : 1;
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (const auto& ring : impl_->rings) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    ring->events.clear();
    ring->dropped = 0;
    ring->capacity = impl_->ring_capacity;
    ring->events.reserve(ring->capacity);
  }
  impl_->epoch_ns = steady_now_ns();
}

std::vector<TraceCollector::ThreadEvents> TraceCollector::events() const {
  std::vector<ThreadEvents> out;
  std::lock_guard<std::mutex> lk(impl_->mu);
  out.reserve(impl_->rings.size());
  for (const auto& ring : impl_->rings) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    out.push_back({ring->tid, ring->dropped, ring->events});
  }
  return out;
}

std::size_t TraceCollector::event_count() const {
  std::size_t n = 0;
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (const auto& ring : impl_->rings) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    n += ring->events.size();
  }
  return n;
}

std::uint64_t TraceCollector::dropped() const {
  std::uint64_t n = 0;
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (const auto& ring : impl_->rings) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    n += ring->dropped;
  }
  return n;
}

namespace {

std::string json_escape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void append_ts_us(std::string& out, std::int64_t ns) {
  char buf[48];
  // Chrome expects microseconds; keep nanosecond resolution as a fraction.
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::string TraceCollector::chrome_trace_json(const Snapshot* snapshot) const {
  const auto threads = events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  for (const ThreadEvents& t : threads) {
    char name[48];
    std::snprintf(name, sizeof name, "%s",
                  t.tid == 0 ? "main" : "worker");
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(t.tid) + ",\"args\":{\"name\":\"" + name + ' ' +
           std::to_string(t.tid) + "\"}}";
    for (const TraceEvent& ev : t.events) {
      comma();
      out += "{\"name\":\"" + json_escape(ev.name) +
             "\",\"cat\":\"socpower\",\"pid\":1,\"tid\":" +
             std::to_string(t.tid) + ",\"ts\":";
      append_ts_us(out, ev.start_ns);
      if (ev.dur_ns >= 0) {
        out += ",\"ph\":\"X\",\"dur\":";
        append_ts_us(out, ev.dur_ns);
      } else {
        out += ",\"ph\":\"i\",\"s\":\"t\"";
      }
      if (ev.flags & (TraceEvent::kHasSimTime | TraceEvent::kHasArg)) {
        out += ",\"args\":{";
        bool afirst = true;
        if (ev.flags & TraceEvent::kHasSimTime) {
          out += "\"sim_time\":" + std::to_string(ev.sim_time);
          afirst = false;
        }
        if (ev.flags & TraceEvent::kHasArg) {
          if (!afirst) out += ',';
          out += "\"arg\":" + std::to_string(ev.arg);
        }
        out += '}';
      }
      out += '}';
    }
  }
  out += "],\"otherData\":{\"tool\":\"socpower\",\"dropped_events\":" +
         std::to_string(dropped());
  if (snapshot) out += ",\"snapshot\":" + snapshot->to_json();
  out += "}}";
  return out;
}

TraceCollector& collector() {
  static TraceCollector c;
  return c;
}

void ScopedSpan::begin(const char* name, std::uint64_t sim_time,
                       std::uint64_t arg, std::uint8_t flags) {
  name_ = name;
  sim_time_ = sim_time;
  arg_ = arg;
  flags_ = flags;
  t0_ = collector().now_ns();
  active_ = true;
}

void ScopedSpan::end() {
  // Tracing may have been switched off mid-span; still record, so every
  // begin has its end and the JSON stays self-consistent.
  TraceCollector& c = collector();
  TraceEvent ev;
  ev.name = name_;
  ev.start_ns = t0_;
  ev.dur_ns = c.now_ns() - t0_;
  if (ev.dur_ns < 0) ev.dur_ns = 0;
  ev.sim_time = sim_time_;
  ev.arg = arg_;
  ev.flags = flags_;
  c.record(ev);
}

void instant(const char* name) {
  if (!trace_enabled()) return;
  TraceCollector& c = collector();
  TraceEvent ev;
  ev.name = name;
  ev.start_ns = c.now_ns();
  c.record(ev);
}

void instant(const char* name, std::uint64_t sim_time) {
  if (!trace_enabled()) return;
  TraceCollector& c = collector();
  TraceEvent ev;
  ev.name = name;
  ev.start_ns = c.now_ns();
  ev.sim_time = sim_time;
  ev.flags = TraceEvent::kHasSimTime;
  c.record(ev);
}

}  // namespace socpower::telemetry
