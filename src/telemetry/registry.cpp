#include "telemetry/registry.hpp"

#include <cstdio>

#include "util/table.hpp"

namespace socpower::telemetry {

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return *it->second;
  Counter& c = counters_.emplace_back();
  counter_index_.emplace(std::string(name), &c);
  return c;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return *it->second;
  Gauge& g = gauges_.emplace_back();
  gauge_index_.emplace(std::string(name), &g);
  return g;
}

HistogramStat& Registry::histogram(std::string_view name, double lo, double hi,
                                   std::size_t bins) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return *it->second;
  HistogramStat& h = histograms_.emplace_back(lo, hi, bins);
  histogram_index_.emplace(std::string(name), &h);
  return h;
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  std::lock_guard<std::mutex> lk(mu_);
  s.counters.reserve(counter_index_.size());
  for (const auto& [name, c] : counter_index_)
    s.counters.push_back({name, c->value()});
  s.gauges.reserve(gauge_index_.size());
  for (const auto& [name, g] : gauge_index_)
    s.gauges.push_back({name, g->value(), g->peak()});
  s.histograms.reserve(histogram_index_.size());
  for (const auto& [name, h] : histogram_index_) {
    const RunningStats st = h->stats();
    s.histograms.push_back(
        {name, st.count(), st.mean(), st.min(), st.max(), st.sum()});
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (Counter& c : counters_) c.value_.store(0, std::memory_order_relaxed);
  for (Gauge& g : gauges_) {
    g.value_.store(0, std::memory_order_relaxed);
    g.peak_.store(0, std::memory_order_relaxed);
  }
  for (HistogramStat& h : histograms_) {
    std::lock_guard<std::mutex> hlk(h.mu_);
    h.reset_locked();
  }
}

Registry& registry() {
  static Registry r;
  return r;
}

std::uint64_t Snapshot::counter_or(std::string_view name,
                                   std::uint64_t fallback) const {
  for (const CounterValue& c : counters)
    if (c.name == name) return c.value;
  return fallback;
}

namespace {

/// Minimal JSON string escaping; metric names are identifiers by convention
/// but the exporter must not be able to emit malformed output.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

std::string Snapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterValue& c : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(c.name) + "\":" + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeValue& g : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(g.name) + "\":{\"value\":" +
           std::to_string(g.value) + ",\"peak\":" + std::to_string(g.peak) +
           '}';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramValue& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(h.name) +
           "\":{\"count\":" + std::to_string(h.count) +
           ",\"mean\":" + json_double(h.mean) +
           ",\"min\":" + json_double(h.min) +
           ",\"max\":" + json_double(h.max) +
           ",\"sum\":" + json_double(h.sum) + '}';
  }
  out += "}}";
  return out;
}

std::string Snapshot::render_table() const {
  std::string out;
  if (!counters.empty()) {
    TextTable t({"counter", "value"});
    for (const CounterValue& c : counters)
      t.add_row({c.name, std::to_string(c.value)});
    out += t.render();
  }
  if (!gauges.empty()) {
    TextTable t({"gauge", "value", "peak"});
    for (const GaugeValue& g : gauges)
      t.add_row({g.name, std::to_string(g.value), std::to_string(g.peak)});
    out += t.render();
  }
  if (!histograms.empty()) {
    TextTable t({"histogram", "count", "mean", "min", "max"});
    for (const HistogramValue& h : histograms)
      t.add_row({h.name, std::to_string(h.count), TextTable::num(h.mean),
                 TextTable::num(h.min), TextTable::num(h.max)});
    out += t.render();
  }
  return out;
}

}  // namespace socpower::telemetry
