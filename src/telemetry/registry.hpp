// Counter/gauge/histogram registry of the telemetry subsystem.
//
// The paper's simulation master "collects the cycles and energy statistics
// for each invocation of the lower-level simulators [and] performs the
// necessary book-keeping" (Section 3); PowerTrace keeps the *energy* books.
// This registry keeps the *observability* books: how often each lower-level
// estimator ran, how often an acceleration technique served a transition
// instead, how the hardware batches and bus grants distribute — the numbers
// that explain where co-estimation time goes and let the Table 1/Table 2
// hit-rate stories be validated outside ad-hoc benches.
//
// Cost contract: every mutation is gated on telemetry::enabled(). With
// telemetry off (the default) an instrumentation site costs one relaxed
// atomic load and a predictable branch — nothing else — which is what keeps
// the disabled path inside the <=2% budget enforced by
// bench_telemetry_overhead. Enabled counters are relaxed atomic adds;
// histograms take a per-histogram mutex and are reserved for low-frequency
// call sites (batch flushes, pool tasks), never the per-instruction path.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime (entries live in deques and are never erased), so hot
// layers resolve a handle once — typically into a function-local static —
// and pay no name lookup afterwards.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace socpower::telemetry {

namespace detail {
/// Master switch (counters + spans) and the tracing sub-switch. Defined in
/// telemetry.cpp; mutated only through telemetry::configure()/set_enabled().
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_trace;
}  // namespace detail

/// True when telemetry collection is on. One relaxed load; safe to call from
/// any thread at any time.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// True when trace-event collection (spans/instants) is on. Implies
/// enabled(): configure() never sets the trace flag without the master one.
[[nodiscard]] inline bool trace_enabled() {
  return detail::g_trace.load(std::memory_order_relaxed);
}

/// Monotonic event counter. add() from any thread; relaxed adds commute, so
/// for a deterministic workload the merged total is independent of thread
/// count and interleaving.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge with a high-watermark (e.g. thread-pool queue depth:
/// the instantaneous value decays to zero by the time anyone snapshots, the
/// peak is the interesting number).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
    std::int64_t p = peak_.load(std::memory_order_relaxed);
    while (v > p &&
           !peak_.compare_exchange_weak(p, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t peak() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Value distribution: util::Histogram bins plus running moments. Mutex
/// protected — use at batch granularity, not per instruction.
class HistogramStat {
 public:
  /// Construct through Registry::histogram(); direct construction is only
  /// for the registry's storage (the type is pinned by its mutex anyway).
  HistogramStat(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), bins_(bins), hist_(lo, hi, bins) {}

  void observe(double x) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lk(mu_);
    stats_.add(x);
    hist_.add(x);
  }
  [[nodiscard]] RunningStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

 private:
  friend class Registry;
  void reset_locked() {
    stats_.reset();
    hist_ = Histogram(lo_, hi_, bins_);
  }

  mutable std::mutex mu_;
  double lo_;
  double hi_;
  std::size_t bins_;
  RunningStats stats_;
  Histogram hist_;
};

/// Point-in-time copy of every registered metric, sorted by name. The JSON
/// form feeds scripts/check_trace.py and external tooling; the table form is
/// what core::render_report and the examples print.
struct Snapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
    std::int64_t peak = 0;
  };
  struct HistogramValue {
    std::string name;
    std::size_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Counter value by exact name; 0 when absent (counters register lazily,
  /// so a layer that never ran simply has no entry).
  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback = 0) const;
  [[nodiscard]] std::string to_json() const;
  /// Fixed-width rendering via util::table (one section per metric kind).
  [[nodiscard]] std::string render_table() const;
};

/// Named metric store. Thread-safe; registration is idempotent (same name =>
/// same handle). Entries are never removed, so handles stay valid and hot
/// paths may cache them indefinitely.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// Range/bin shape is fixed by the first registration of `name`;
  /// subsequent calls return the existing histogram regardless of shape.
  [[nodiscard]] HistogramStat& histogram(std::string_view name, double lo,
                                         double hi, std::size_t bins);

  [[nodiscard]] Snapshot snapshot() const;
  /// Zeroes every value but keeps registrations (cached handles survive).
  void reset();

 private:
  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<HistogramStat> histograms_;
  std::map<std::string, Counter*, std::less<>> counter_index_;
  std::map<std::string, Gauge*, std::less<>> gauge_index_;
  std::map<std::string, HistogramStat*, std::less<>> histogram_index_;
};

/// The process-wide registry all instrumentation records into.
[[nodiscard]] Registry& registry();

}  // namespace socpower::telemetry
