// Low-overhead duration/instant tracing with Chrome trace-event export.
//
// Spans mark where co-estimation wall time goes (ISS invocations, gate-sim
// batch flushes, bus arbitration, exploration points); each event carries a
// wall-clock timestamp AND, where the call site has one, the simulated time
// — the dual stamps are what let a power peak in the PowerTrace waveform be
// lined up with the co-estimator phase that produced it. The exported JSON
// loads directly into chrome://tracing or Perfetto.
//
// Collection model: one bounded ring per recording thread, registered with
// the collector on that thread's first event. A full ring drops new events
// and counts the drops (never blocks, never reallocates past its bound), so
// the parallel engine stays allocation-quiet under tracing. Event names must
// be static-lifetime strings (string literals at every call site) — events
// store the pointer, not a copy.
//
// Cost contract: a SOCPOWER_TRACE_SPAN behind disabled telemetry is one
// relaxed atomic load, one branch and a handful of dead stores the optimizer
// removes; nothing is resolved or allocated.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"  // enabled()/trace_enabled()

namespace socpower::telemetry {

struct TraceEvent {
  static constexpr std::uint8_t kHasSimTime = 1;
  static constexpr std::uint8_t kHasArg = 2;

  const char* name = nullptr;   // static-lifetime string
  std::int64_t start_ns = 0;    // wall clock, relative to the collector epoch
  std::int64_t dur_ns = -1;     // duration; < 0 encodes an instant event
  std::uint64_t sim_time = 0;   // simulated-time stamp (kHasSimTime)
  std::uint64_t arg = 0;        // free-form id, e.g. design-point index
  std::uint8_t flags = 0;
};

/// Bounded per-thread event store. One global instance (telemetry.cpp) backs
/// the macros; tests construct their own to exercise capacity policy.
class TraceCollector {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1u << 16;

  explicit TraceCollector(std::size_t ring_capacity = kDefaultRingCapacity);
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Appends to the calling thread's ring (registering it on first use);
  /// drop-counts when the ring is at capacity.
  void record(const TraceEvent& ev);
  /// Nanoseconds since the collector epoch (steady clock).
  [[nodiscard]] std::int64_t now_ns() const;

  /// Capacity for rings registered after this call; clear() re-applies it to
  /// existing rings too.
  void set_ring_capacity(std::size_t capacity);
  /// Drops all recorded events and drop counts; keeps thread registrations.
  void clear();

  struct ThreadEvents {
    std::uint32_t tid = 0;              // dense per-collector thread index
    std::uint64_t dropped = 0;
    std::vector<TraceEvent> events;    // in recording order
  };
  /// Copy of every thread's events (ordered by tid). Safe while recording.
  [[nodiscard]] std::vector<ThreadEvents> events() const;
  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Chrome trace-event JSON ("X" duration + "i" instant events, thread-name
  /// metadata, drop counts and the counter `snapshot` under otherData).
  [[nodiscard]] std::string chrome_trace_json(const Snapshot* snapshot =
                                                  nullptr) const;

  struct Ring;  // opaque; public only so the thread-local cache can name it

 private:
  Ring& local_ring();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide collector the macros record into.
[[nodiscard]] TraceCollector& collector();

/// RAII duration span against the global collector. Constructors gate on
/// trace_enabled(); a disabled span never touches the collector.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (trace_enabled()) begin(name, 0, 0, 0);
  }
  ScopedSpan(const char* name, std::uint64_t sim_time) {
    if (trace_enabled()) begin(name, sim_time, 0, TraceEvent::kHasSimTime);
  }
  ScopedSpan(const char* name, std::uint64_t sim_time, std::uint64_t arg) {
    if (trace_enabled())
      begin(name, sim_time, arg,
            TraceEvent::kHasSimTime | TraceEvent::kHasArg);
  }
  ~ScopedSpan() {
    if (active_) end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(const char* name, std::uint64_t sim_time, std::uint64_t arg,
             std::uint8_t flags);
  void end();

  const char* name_ = nullptr;
  std::int64_t t0_ = 0;
  std::uint64_t sim_time_ = 0;
  std::uint64_t arg_ = 0;
  std::uint8_t flags_ = 0;
  bool active_ = false;
};

/// Instant event (a point marker, e.g. "cache generation flushed").
void instant(const char* name);
void instant(const char* name, std::uint64_t sim_time);

}  // namespace socpower::telemetry

// Span macros: `SOCPOWER_TRACE_SPAN("iss.run")` or
// `SOCPOWER_TRACE_SPAN("coest.sw_transition", sim_now[, arg])`. The span
// closes at end of scope. Name must be a string literal (or otherwise
// static-lifetime).
#define SOCPOWER_TELEMETRY_CAT_(a, b) a##b
#define SOCPOWER_TELEMETRY_CAT(a, b) SOCPOWER_TELEMETRY_CAT_(a, b)
#define SOCPOWER_TRACE_SPAN(...)                         \
  ::socpower::telemetry::ScopedSpan SOCPOWER_TELEMETRY_CAT( \
      socpower_trace_span_, __LINE__) {                  \
    __VA_ARGS__                                          \
  }
#define SOCPOWER_TRACE_INSTANT(...) ::socpower::telemetry::instant(__VA_ARGS__)
