#include "telemetry/telemetry.hpp"

#include <cstdio>
#include <mutex>

#include "util/env.hpp"

namespace socpower::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_trace{false};
}  // namespace detail

namespace {
std::mutex g_config_mu;
TelemetryConfig g_config;
}  // namespace

void configure(const TelemetryConfig& cfg) {
  std::lock_guard<std::mutex> lk(g_config_mu);
  g_config = cfg;
  if (!g_config.enabled) g_config.trace = false;
  if (g_config.ring_capacity == 0)
    g_config.ring_capacity = TraceCollector::kDefaultRingCapacity;
  collector().set_ring_capacity(g_config.ring_capacity);
  detail::g_enabled.store(g_config.enabled, std::memory_order_relaxed);
  detail::g_trace.store(g_config.trace, std::memory_order_relaxed);
}

TelemetryConfig config() {
  std::lock_guard<std::mutex> lk(g_config_mu);
  return g_config;
}

void set_enabled(bool counters, bool trace) {
  TelemetryConfig cfg = config();
  cfg.enabled = counters;
  cfg.trace = trace;
  configure(cfg);
}

std::string configure_from_env() {
  TelemetryConfig cfg = config();
  const std::string trace_path = util::env_str("SOCPOWER_TRACE", "");
  cfg.enabled = util::env_bool("SOCPOWER_TELEMETRY", !trace_path.empty());
  cfg.trace = !trace_path.empty();
  const long ring = util::env_int(
      "SOCPOWER_TRACE_RING", static_cast<long>(cfg.ring_capacity));
  if (ring > 0) cfg.ring_capacity = static_cast<std::size_t>(ring);
  configure(cfg);
  return trace_enabled() ? trace_path : std::string();
}

Snapshot snapshot() { return registry().snapshot(); }

bool write_chrome_trace(const std::string& path) {
  const Snapshot snap = snapshot();
  const std::string json = collector().chrome_trace_json(&snap);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "socpower: cannot open trace output %s\n",
                 path.c_str());
    return false;
  }
  const std::size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = (std::fclose(f) == 0) && wrote == json.size();
  if (!ok)
    std::fprintf(stderr, "socpower: short write on trace output %s\n",
                 path.c_str());
  return ok;
}

void reset() {
  registry().reset();
  collector().clear();
}

}  // namespace socpower::telemetry
