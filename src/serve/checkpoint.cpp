#include "serve/checkpoint.hpp"

#include <cstdio>

namespace socpower::serve {

using dist::WireReader;
using dist::WireWriter;

namespace {

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

void put_raw_stats(WireWriter& w, const RunningStats::Raw& s) {
  w.put_u64(s.n);
  w.put_f64(s.mean);
  w.put_f64(s.m2);
  w.put_f64(s.min);
  w.put_f64(s.max);
  w.put_f64(s.sum);
}

bool get_raw_stats(WireReader& r, RunningStats::Raw* out) {
  out->n = r.get_u64();
  out->mean = r.get_f64();
  out->m2 = r.get_f64();
  out->min = r.get_f64();
  out->max = r.get_f64();
  out->sum = r.get_f64();
  return r.ok();
}

/// Bounded length read, mirroring dist::wire's defensive decoding.
std::uint32_t get_len(WireReader& r) {
  const std::uint32_t n = r.get_u32();
  if (n > dist::kMaxWireElems) {
    r.mark_bad();
    return 0;
  }
  return n;
}

void put_backend(WireWriter& w, const core::BackendWarmState& b) {
  w.put_u32(static_cast<std::uint32_t>(b.block_entries.size()));
  for (const std::uint32_t e : b.block_entries) w.put_u32(e);
  w.put_u32(static_cast<std::uint32_t>(b.reactions.size()));
  for (const auto& ur : b.reactions) {
    w.put_i32(ur.task);
    w.put_u32(static_cast<std::uint32_t>(ur.entries.size()));
    for (const hw::ExportedReaction& e : ur.entries) {
      w.put_u32(static_cast<std::uint32_t>(e.key.size()));
      for (const std::uint64_t word : e.key) w.put_u64(word);
      w.put_f64(e.energy);
      w.put_u32(static_cast<std::uint32_t>(e.toggles.size()));
      for (const hw::NetId t : e.toggles) w.put_i32(t);
      w.put_u32(e.latch_begin);
      w.put_u64(e.gate_evals);
    }
  }
  dist::put_analytical_model(w, b.analytical);
}

bool get_backend(WireReader& r, core::BackendWarmState* out) {
  *out = {};
  const std::uint32_t nb = get_len(r);
  out->block_entries.reserve(nb);
  for (std::uint32_t i = 0; i < nb && r.ok(); ++i)
    out->block_entries.push_back(r.get_u32());
  const std::uint32_t nu = get_len(r);
  out->reactions.resize(nu);
  for (std::uint32_t u = 0; u < nu && r.ok(); ++u) {
    auto& ur = out->reactions[u];
    ur.task = r.get_i32();
    const std::uint32_t ne = get_len(r);
    ur.entries.resize(ne);
    for (std::uint32_t i = 0; i < ne && r.ok(); ++i) {
      hw::ExportedReaction& e = ur.entries[i];
      const std::uint32_t nk = get_len(r);
      e.key.reserve(nk);
      for (std::uint32_t k = 0; k < nk && r.ok(); ++k)
        e.key.push_back(r.get_u64());
      e.energy = r.get_f64();
      const std::uint32_t nt = get_len(r);
      e.toggles.reserve(nt);
      for (std::uint32_t t = 0; t < nt && r.ok(); ++t)
        e.toggles.push_back(r.get_i32());
      e.latch_begin = r.get_u32();
      e.gate_evals = r.get_u64();
    }
  }
  if (!dist::get_analytical_model(r, &out->analytical)) return false;
  return r.ok();
}

}  // namespace

void put_warm_snapshot(WireWriter& w,
                       const core::CoSimMaster::WarmSnapshot& snap) {
  w.put_u32(static_cast<std::uint32_t>(snap.backends.size()));
  for (const core::BackendWarmState& b : snap.backends) put_backend(w, b);
  w.put_u32(static_cast<std::uint32_t>(snap.ecache.size()));
  for (const core::EnergyCache::ExportedEntry& e : snap.ecache) {
    w.put_i32(e.task);
    w.put_i32(e.path);
    put_raw_stats(w, e.cycles);
    put_raw_stats(w, e.energy);
  }
  w.put_u64(snap.ecache_hits);
  w.put_u64(snap.ecache_simulations);
}

bool get_warm_snapshot(WireReader& r, core::CoSimMaster::WarmSnapshot* out) {
  *out = {};
  const std::uint32_t nb = get_len(r);
  out->backends.resize(nb);
  for (std::uint32_t i = 0; i < nb && r.ok(); ++i)
    if (!get_backend(r, &out->backends[i])) return false;
  const std::uint32_t ne = get_len(r);
  out->ecache.resize(ne);
  for (std::uint32_t i = 0; i < ne && r.ok(); ++i) {
    core::EnergyCache::ExportedEntry& e = out->ecache[i];
    e.task = r.get_i32();
    e.path = r.get_i32();
    if (!get_raw_stats(r, &e.cycles)) return false;
    if (!get_raw_stats(r, &e.energy)) return false;
  }
  out->ecache_hits = r.get_u64();
  out->ecache_simulations = r.get_u64();
  return r.ok();
}

std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& c) {
  WireWriter payload;
  put_system(payload, c.system);
  put_structural(payload, c.structural);
  put_warm_snapshot(payload, c.warm);
  const std::vector<std::uint8_t>& body = payload.bytes();

  WireWriter w;
  w.put_u32(kCheckpointMagic);
  w.put_u32(kCheckpointVersion);
  w.put_u64(static_cast<std::uint64_t>(body.size()));
  w.put_u64(fnv1a64(body.data(), body.size()));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

bool decode_checkpoint(const std::uint8_t* data, std::size_t size,
                       Checkpoint* out, std::string* error) {
  auto fail = [&](const char* msg) {
    if (error) *error = msg;
    return false;
  };
  constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;
  if (size < kHeaderBytes) return fail("checkpoint truncated: no header");
  WireReader hdr(data, kHeaderBytes);
  if (hdr.get_u32() != kCheckpointMagic)
    return fail("not a checkpoint (bad magic)");
  const std::uint32_t version = hdr.get_u32();
  if (version != kCheckpointVersion)
    return fail("unsupported checkpoint version");
  const std::uint64_t payload_len = hdr.get_u64();
  const std::uint64_t want_hash = hdr.get_u64();
  if (payload_len != size - kHeaderBytes)
    return fail("checkpoint truncated: payload length mismatch");
  const std::uint8_t* body = data + kHeaderBytes;
  if (fnv1a64(body, static_cast<std::size_t>(payload_len)) != want_hash)
    return fail("checkpoint corrupt: payload hash mismatch");

  WireReader r(body, static_cast<std::size_t>(payload_len));
  Checkpoint c;
  if (!get_system(r, &c.system) || !get_structural(r, &c.structural) ||
      !get_warm_snapshot(r, &c.warm) || !r.at_end())
    return fail("checkpoint corrupt: payload decode failed");
  *out = std::move(c);
  return true;
}

bool decode_checkpoint(const std::vector<std::uint8_t>& blob, Checkpoint* out,
                       std::string* error) {
  return decode_checkpoint(blob.data(), blob.size(), out, error);
}

bool write_checkpoint_file(const std::string& path, const Checkpoint& c) {
  const std::vector<std::uint8_t> blob = encode_checkpoint(c);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  return std::fclose(f) == 0 && ok;
}

bool read_checkpoint_file(const std::string& path, Checkpoint* out,
                          std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (error) *error = "cannot open checkpoint file '" + path + "'";
    return false;
  }
  std::vector<std::uint8_t> blob;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    blob.insert(blob.end(), buf, buf + n);
  std::fclose(f);
  return decode_checkpoint(blob, out, error);
}

}  // namespace socpower::serve
