#include "serve/protocol.hpp"

#include <cstdio>

namespace socpower::serve {

using dist::WireReader;
using dist::WireWriter;

// ---- SystemParams ----------------------------------------------------------

std::int64_t SystemParams::get(const std::string& key,
                               std::int64_t fallback) const {
  for (const auto& [k, v] : kv)
    if (k == key) return v;
  return fallback;
}

void SystemParams::set(const std::string& key, std::int64_t value) {
  for (auto& [k, v] : kv) {
    if (k == key) {
      v = value;
      return;
    }
  }
  kv.emplace_back(key, value);
}

void put_system(WireWriter& w, const SystemParams& s) {
  dist::put_string(w, s.name);
  w.put_u32(static_cast<std::uint32_t>(s.kv.size()));
  for (const auto& [k, v] : s.kv) {
    dist::put_string(w, k);
    w.put_u64(static_cast<std::uint64_t>(v));
  }
}

bool get_system(WireReader& r, SystemParams* out) {
  *out = {};
  if (!dist::get_string(r, &out->name)) return false;
  const std::uint32_t n = r.get_u32();
  if (n > dist::kMaxWireElems) {
    r.mark_bad();
    return false;
  }
  out->kv.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string k;
    if (!dist::get_string(r, &k)) return false;
    const auto v = static_cast<std::int64_t>(r.get_u64());
    out->kv.emplace_back(std::move(k), v);
  }
  return r.ok();
}

// ---- StructuralConfig ------------------------------------------------------

StructuralConfig StructuralConfig::from(const core::CoEstimatorConfig& cfg) {
  StructuralConfig s;
  s.electrical = cfg.electrical;
  s.iss = cfg.iss;
  s.rtos = cfg.rtos;
  s.data_nj_per_toggle = cfg.data_nj_per_toggle;
  s.estimators = cfg.estimators;
  s.hw_remote = cfg.hw_remote;
  s.cores = cfg.cores;
  s.interconnect = static_cast<std::uint8_t>(cfg.interconnect);
  s.coherence_enabled = cfg.coherence.enabled;
  return s;
}

void StructuralConfig::apply(core::CoEstimatorConfig* cfg) const {
  cfg->electrical = electrical;
  cfg->iss = iss;
  cfg->rtos = rtos;
  cfg->data_nj_per_toggle = data_nj_per_toggle;
  cfg->estimators = estimators;
  cfg->hw_remote = hw_remote;
  cfg->cores = cores;
  cfg->interconnect = static_cast<core::InterconnectKind>(interconnect);
  cfg->coherence.enabled = coherence_enabled;
}

void put_structural(WireWriter& w, const StructuralConfig& s) {
  w.put_f64(s.electrical.vdd_volts);
  w.put_f64(s.electrical.clock_hz);
  w.put_u32(s.iss.memory_bytes);
  w.put_u32(s.iss.pipeline_fill_cycles);
  w.put_u32(s.iss.taken_branch_penalty);
  w.put_u64(s.iss.default_max_instructions);
  w.put_u8(s.iss.block_cache ? 1 : 0);
  w.put_u32(s.iss.block_cache_max_blocks);
  w.put_u32(s.iss.block_cache_max_ops);
  w.put_u64(s.rtos.dispatch_cycles);
  w.put_f64(s.rtos.dispatch_current_ma);
  w.put_f64(s.data_nj_per_toggle);
  dist::put_string(w, s.estimators.sw);
  dist::put_string(w, s.estimators.hw_gate);
  dist::put_string(w, s.estimators.hw_rtl);
  dist::put_string(w, s.estimators.cache);
  dist::put_string(w, s.estimators.bus);
  dist::put_string(w, s.estimators.noc);
  w.put_u8(s.hw_remote ? 1 : 0);
  w.put_u32(s.cores);
  w.put_u8(s.interconnect);
  w.put_u8(s.coherence_enabled ? 1 : 0);
}

bool get_structural(WireReader& r, StructuralConfig* out) {
  *out = {};
  out->electrical.vdd_volts = r.get_f64();
  out->electrical.clock_hz = r.get_f64();
  out->iss.memory_bytes = r.get_u32();
  out->iss.pipeline_fill_cycles = r.get_u32();
  out->iss.taken_branch_penalty = r.get_u32();
  out->iss.default_max_instructions = r.get_u64();
  out->iss.block_cache = r.get_u8() != 0;
  out->iss.block_cache_max_blocks = r.get_u32();
  out->iss.block_cache_max_ops = r.get_u32();
  out->rtos.dispatch_cycles = r.get_u64();
  out->rtos.dispatch_current_ma = r.get_f64();
  out->data_nj_per_toggle = r.get_f64();
  if (!dist::get_string(r, &out->estimators.sw)) return false;
  if (!dist::get_string(r, &out->estimators.hw_gate)) return false;
  if (!dist::get_string(r, &out->estimators.hw_rtl)) return false;
  if (!dist::get_string(r, &out->estimators.cache)) return false;
  if (!dist::get_string(r, &out->estimators.bus)) return false;
  if (!dist::get_string(r, &out->estimators.noc)) return false;
  out->hw_remote = r.get_u8() != 0;
  out->cores = r.get_u32();
  out->interconnect = r.get_u8();
  if (out->interconnect >
      static_cast<std::uint8_t>(core::InterconnectKind::kNoc)) {
    r.mark_bad();
    return false;
  }
  out->coherence_enabled = r.get_u8() != 0;
  return r.ok();
}

std::string session_key(const SystemParams& system,
                        const StructuralConfig& structural) {
  WireWriter w;
  put_system(w, system);
  put_structural(w, structural);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (const std::uint8_t b : w.bytes()) {
    h ^= b;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

// ---- RunRequest ------------------------------------------------------------

RunRequest RunRequest::from(const core::CoEstimatorConfig& cfg) {
  RunRequest rr;
  rr.accel = static_cast<std::uint8_t>(cfg.accel);
  rr.verify_lowlevel = cfg.verify_lowlevel;
  rr.accelerate_hw = cfg.accelerate_hw;
  rr.hw_batch = cfg.hw_batch;
  rr.hw_flush_threads = cfg.hw_flush_threads;
  rr.hw_reaction_cache = cfg.hw_reaction_cache;
  rr.hw_reaction_cache_max_entries = cfg.hw_reaction_cache_max_entries;
  rr.hw_bit_parallel = cfg.hw_bit_parallel;
  rr.hw_packed_lanes = cfg.hw_packed_lanes;
  rr.sync_spin = cfg.sync_spin;
  rr.cache_hit_spin = cfg.cache_hit_spin;
  rr.ecache_thresh_variance = cfg.energy_cache.thresh_variance;
  rr.ecache_thresh_iss_calls = cfg.energy_cache.thresh_iss_calls;
  rr.max_reactions = cfg.max_reactions;
  rr.hw_analytical_calibration_vectors = cfg.hw_analytical_calibration_vectors;
  rr.hw_leakage_nw_per_gate = cfg.hw_leakage_nw_per_gate;
  rr.hw_temperature_k = cfg.hw_temperature_k;
  rr.hw_channel_length_nm = cfg.hw_channel_length_nm;
  return rr;
}

void RunRequest::apply(core::CoEstimatorConfig* cfg) const {
  cfg->accel = static_cast<core::Acceleration>(accel);
  cfg->verify_lowlevel = verify_lowlevel;
  cfg->accelerate_hw = accelerate_hw;
  cfg->hw_batch = hw_batch;
  cfg->hw_flush_threads = hw_flush_threads;
  cfg->hw_reaction_cache = hw_reaction_cache;
  cfg->hw_reaction_cache_max_entries =
      static_cast<std::size_t>(hw_reaction_cache_max_entries);
  cfg->hw_bit_parallel = hw_bit_parallel;
  cfg->hw_packed_lanes = hw_packed_lanes;
  cfg->sync_spin = sync_spin;
  cfg->cache_hit_spin = cache_hit_spin;
  cfg->energy_cache.thresh_variance = ecache_thresh_variance;
  cfg->energy_cache.thresh_iss_calls =
      static_cast<std::size_t>(ecache_thresh_iss_calls);
  cfg->max_reactions = max_reactions;
  cfg->hw_analytical_calibration_vectors = hw_analytical_calibration_vectors;
  cfg->hw_leakage_nw_per_gate = hw_leakage_nw_per_gate;
  cfg->hw_temperature_k = hw_temperature_k;
  cfg->hw_channel_length_nm = hw_channel_length_nm;
}

void put_run_request(WireWriter& w, const RunRequest& rr) {
  w.put_u8(rr.accel);
  w.put_u8(rr.separate ? 1 : 0);
  w.put_u8(rr.verify_lowlevel ? 1 : 0);
  w.put_u8(rr.accelerate_hw ? 1 : 0);
  w.put_u8(rr.hw_batch ? 1 : 0);
  w.put_u32(rr.hw_flush_threads);
  w.put_u8(rr.hw_reaction_cache ? 1 : 0);
  w.put_u64(rr.hw_reaction_cache_max_entries);
  w.put_u8(rr.hw_bit_parallel ? 1 : 0);
  w.put_u32(rr.hw_packed_lanes);
  w.put_u32(rr.sync_spin);
  w.put_u32(rr.cache_hit_spin);
  w.put_f64(rr.ecache_thresh_variance);
  w.put_u64(rr.ecache_thresh_iss_calls);
  w.put_u64(rr.max_reactions);
  w.put_u32(rr.hw_analytical_calibration_vectors);
  w.put_f64(rr.hw_leakage_nw_per_gate);
  w.put_f64(rr.hw_temperature_k);
  w.put_f64(rr.hw_channel_length_nm);
}

bool get_run_request(WireReader& r, RunRequest* out) {
  *out = {};
  out->accel = r.get_u8();
  if (out->accel > static_cast<std::uint8_t>(core::Acceleration::kSampling)) {
    r.mark_bad();
    return false;
  }
  out->separate = r.get_u8() != 0;
  out->verify_lowlevel = r.get_u8() != 0;
  out->accelerate_hw = r.get_u8() != 0;
  out->hw_batch = r.get_u8() != 0;
  out->hw_flush_threads = r.get_u32();
  out->hw_reaction_cache = r.get_u8() != 0;
  out->hw_reaction_cache_max_entries = r.get_u64();
  out->hw_bit_parallel = r.get_u8() != 0;
  out->hw_packed_lanes = r.get_u32();
  out->sync_spin = r.get_u32();
  out->cache_hit_spin = r.get_u32();
  out->ecache_thresh_variance = r.get_f64();
  out->ecache_thresh_iss_calls = r.get_u64();
  out->max_reactions = r.get_u64();
  out->hw_analytical_calibration_vectors = r.get_u32();
  out->hw_leakage_nw_per_gate = r.get_f64();
  out->hw_temperature_k = r.get_f64();
  out->hw_channel_length_nm = r.get_f64();
  return r.ok();
}

// ---- RequestStats ----------------------------------------------------------

void put_request_stats(WireWriter& w, const RequestStats& s) {
  w.put_f64(s.wall_ms);
  w.put_u64(s.run_index);
  w.put_u8(s.restored_session ? 1 : 0);
  w.put_u64(s.ecache_hits);
  w.put_u64(s.warm_hits);
  w.put_u64(s.warm_fills);
}

bool get_request_stats(WireReader& r, RequestStats* out) {
  *out = {};
  out->wall_ms = r.get_f64();
  out->run_index = r.get_u64();
  out->restored_session = r.get_u8() != 0;
  out->ecache_hits = r.get_u64();
  out->warm_hits = r.get_u64();
  out->warm_fills = r.get_u64();
  return r.ok();
}

// ---- ServeStatsReply -------------------------------------------------------

void put_stats_reply(WireWriter& w, const ServeStatsReply& s) {
  w.put_u64(s.sessions);
  w.put_u64(s.requests);
  w.put_u64(s.checkpoint_bytes);
  w.put_u64(s.restore_hits);
  w.put_u64(s.evictions);
  w.put_u64(s.latency_count);
  w.put_f64(s.latency_mean_ms);
  w.put_f64(s.latency_min_ms);
  w.put_f64(s.latency_max_ms);
  dist::put_string(w, s.rendered);
}

bool get_stats_reply(WireReader& r, ServeStatsReply* out) {
  *out = {};
  out->sessions = r.get_u64();
  out->requests = r.get_u64();
  out->checkpoint_bytes = r.get_u64();
  out->restore_hits = r.get_u64();
  out->evictions = r.get_u64();
  out->latency_count = r.get_u64();
  out->latency_mean_ms = r.get_f64();
  out->latency_min_ms = r.get_f64();
  out->latency_max_ms = r.get_f64();
  return dist::get_string(r, &out->rendered) && r.ok();
}

}  // namespace socpower::serve
