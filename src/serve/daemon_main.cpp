// socpower_serve: the co-estimation session-server daemon.
//
//   socpower_serve [--socket PATH] [--threads N] [--max-sessions N]
//
// Knobs (flags win over environment):
//   --socket PATH / SOCPOWER_SERVE_SOCKET   AF_UNIX listening socket path
//                                           (default /tmp/socpower_serve.sock)
//   --threads N  / SOCPOWER_SERVE_THREADS   estimation worker threads
//                                           (default 0 = one per hw thread)
//   --max-sessions N / SOCPOWER_SERVE_MAX_SESSIONS
//                                           LRU-evict warm sessions beyond N
//                                           (default 0 = unbounded)
//
// The daemon runs until SIGINT/SIGTERM or a kServeShutdown request, then
// prints the serve.* stats table and exits 0. Exit 1 = bad usage or the
// socket could not be bound (a live server already owns the path, or the
// platform has no AF_UNIX support).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "util/env.hpp"

namespace {

std::atomic<bool> g_signalled{false};

void on_signal(int) { g_signalled.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using socpower::serve::Server;
  using socpower::serve::ServerConfig;

  ServerConfig config;
  config.socket_path = socpower::util::env_str("SOCPOWER_SERVE_SOCKET",
                                               "/tmp/socpower_serve.sock");
  config.threads = static_cast<unsigned>(
      socpower::util::env_int("SOCPOWER_SERVE_THREADS", 0));
  config.max_sessions = static_cast<std::size_t>(
      socpower::util::env_int("SOCPOWER_SERVE_MAX_SESSIONS", 0));

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      config.socket_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      config.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--max-sessions" && i + 1 < argc) {
      config.max_sessions = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--socket PATH] [--threads N] "
                   "[--max-sessions N]\n",
                   argv[0]);
      return 1;
    }
  }

  Server server(config);
  if (!server.start()) {
    std::fprintf(stderr, "socpower_serve: cannot listen on '%s'\n",
                 config.socket_path.c_str());
    return 1;
  }
  std::printf("socpower_serve: listening on %s\n",
              config.socket_path.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (server.running() && !g_signalled.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.stop();

  std::printf("%s", server.stats_snapshot().rendered.c_str());
  return 0;
}
