// Request/reply vocabulary of the co-estimation session server (src/serve).
//
// The server keeps one *session* per structural configuration: a prepared
// CoEstimator (compiled SW images, synthesized netlists, characterized
// macro-op library) plus its warm caches. Everything a request may vary
// without rebuilding — acceleration mode, batch/thread knobs, verification —
// travels as a RunRequest of per-run knobs, mirroring the repo-wide
// structural-freeze contract (core::structural_mismatch): the session key
// hashes exactly the fields that are frozen at prepare(), so two requests
// that could legally share a prepared estimator always land in the same
// session.
//
// All payloads ride the dist wire codec (length-prefixed LE integers,
// doubles as IEEE-754 bit patterns), so estimation results round-trip
// bit-exactly through the server.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/coestimator_config.hpp"
#include "dist/wire.hpp"

namespace socpower::serve {

/// Bumped on any wire-visible change; kServeHello rejects mismatches so an
/// old client fails with a message instead of a garbled decode.
/// v2: multicore — StructuralConfig gained cores / interconnect /
/// coherence_enabled, RunResults gained coherence totals.
/// v3: analytical tier — RunRequest gained the calibration-vector and
/// leakage knobs, RunResults gained the static-power split.
inline constexpr std::uint32_t kServeProtocolVersion = 3;

// ---- system selection ------------------------------------------------------

/// Self-describing benchmark-system selector: a factory name plus integer
/// key/value parameters. Unknown names and keys are rejected server-side
/// (see system_factory.hpp), so a typo'd parameter cannot silently fall back
/// to a default and key a different session than intended.
struct SystemParams {
  std::string name;  // "tcpip" | "prodcons"
  std::vector<std::pair<std::string, std::int64_t>> kv;

  [[nodiscard]] std::int64_t get(const std::string& key,
                                 std::int64_t fallback) const;
  void set(const std::string& key, std::int64_t value);
};
void put_system(dist::WireWriter& w, const SystemParams& s);
[[nodiscard]] bool get_system(dist::WireReader& r, SystemParams* out);

// ---- structural configuration ----------------------------------------------

/// The [structural] subset of CoEstimatorConfig — the fields consumed when
/// the simulators are built and frozen from prepare() on. This is the
/// session identity (together with SystemParams); see coestimator_config.hpp
/// for the field semantics.
struct StructuralConfig {
  ElectricalParams electrical;
  iss::IssConfig iss;
  swsyn::RtosConfig rtos;
  double data_nj_per_toggle = 0.0;
  core::EstimatorSelection estimators;
  bool hw_remote = false;
  std::uint32_t cores = 1;
  std::uint8_t interconnect = 0;  // core::InterconnectKind
  /// Not frozen at prepare(), but part of the session identity: warm state
  /// accumulated with coherence on is not comparable to coherence-off runs.
  bool coherence_enabled = false;

  [[nodiscard]] static StructuralConfig from(
      const core::CoEstimatorConfig& cfg);
  void apply(core::CoEstimatorConfig* cfg) const;
};
void put_structural(dist::WireWriter& w, const StructuralConfig& s);
[[nodiscard]] bool get_structural(dist::WireReader& r, StructuralConfig* out);

/// Session identity: FNV-1a-64 over the wire encoding of (system,
/// structural), rendered as 16 hex digits. Stable across processes — a
/// checkpoint restored elsewhere lands under the same key.
[[nodiscard]] std::string session_key(const SystemParams& system,
                                      const StructuralConfig& structural);

// ---- per-run request -------------------------------------------------------

/// The per-run knobs one estimation request may set. Defaults match
/// CoEstimatorConfig's; apply() writes only these fields, so a session's
/// structural config is untouchable through a request by construction.
struct RunRequest {
  std::uint8_t accel = 0;  // core::Acceleration
  bool separate = false;   // run_separate() instead of run()
  bool verify_lowlevel = false;
  bool accelerate_hw = false;
  bool hw_batch = true;
  std::uint32_t hw_flush_threads = 1;
  bool hw_reaction_cache = true;
  std::uint64_t hw_reaction_cache_max_entries = 4096;
  bool hw_bit_parallel = false;
  std::uint32_t hw_packed_lanes = 64;
  std::uint32_t sync_spin = 0;
  std::uint32_t cache_hit_spin = 0;
  double ecache_thresh_variance = 0.0;
  std::uint64_t ecache_thresh_iss_calls = 3;
  std::uint64_t max_reactions = 20'000'000;
  std::uint32_t hw_analytical_calibration_vectors = 256;
  double hw_leakage_nw_per_gate = 2.0;
  double hw_temperature_k = 300.0;
  double hw_channel_length_nm = 250.0;

  [[nodiscard]] static RunRequest from(const core::CoEstimatorConfig& cfg);
  void apply(core::CoEstimatorConfig* cfg) const;
};
void put_run_request(dist::WireWriter& w, const RunRequest& rr);
[[nodiscard]] bool get_run_request(dist::WireReader& r, RunRequest* out);

// ---- per-request telemetry -------------------------------------------------

/// Shipped with every kServeEstimate reply so clients can report cold/warm
/// behavior without a second stats round-trip.
struct RequestStats {
  double wall_ms = 0.0;
  std::uint64_t run_index = 0;    // runs completed in this session before ours
  bool restored_session = false;  // session came from a checkpoint
  std::uint64_t ecache_hits = 0;  // energy-cache hits of this run
  std::uint64_t warm_hits = 0;    // ISS block + HW reaction cache hits
  std::uint64_t warm_fills = 0;   // ... and fills (misses), this run
};
void put_request_stats(dist::WireWriter& w, const RequestStats& s);
[[nodiscard]] bool get_request_stats(dist::WireReader& r, RequestStats* out);

// ---- server-wide stats -----------------------------------------------------

/// kServeStats reply: the serve.* counters plus the request-latency
/// distribution, and a pre-rendered fixed-width table (render_report-style)
/// for clients that just want to print something.
struct ServeStatsReply {
  std::uint64_t sessions = 0;
  std::uint64_t requests = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t restore_hits = 0;
  std::uint64_t evictions = 0;  // LRU session evictions (max_sessions cap)
  std::uint64_t latency_count = 0;
  double latency_mean_ms = 0.0;
  double latency_min_ms = 0.0;
  double latency_max_ms = 0.0;
  std::string rendered;
};
void put_stats_reply(dist::WireWriter& w, const ServeStatsReply& s);
[[nodiscard]] bool get_stats_reply(dist::WireReader& r, ServeStatsReply* out);

}  // namespace socpower::serve
