#include "serve/client.hpp"

#include <utility>

namespace socpower::serve {

using dist::Frame;
using dist::MsgType;
using dist::WireReader;
using dist::WireWriter;

Client Client::connect(const std::string& socket_path, std::string* error) {
  Client c;
  c.ch_ = dist::Channel::connect_unix(socket_path);
  if (!c.ch_.valid()) {
    if (error) *error = "cannot connect to '" + socket_path + "'";
    return c;
  }
  WireWriter w;
  w.put_u32(kServeProtocolVersion);
  Frame reply;
  if (!c.rpc(MsgType::kServeHello, w.bytes(), &reply, error)) c.ch_.close();
  return c;
}

bool Client::rpc(MsgType type, const std::vector<std::uint8_t>& payload,
                 Frame* reply, std::string* error) {
  if (!ch_.valid()) {
    if (error) *error = "not connected";
    return false;
  }
  if (!ch_.send_frame(type, payload, timeout_ms_)) {
    if (error) *error = "send failed (server gone?)";
    return false;
  }
  const dist::Channel::RecvStatus st = ch_.recv_frame(reply, timeout_ms_);
  if (st != dist::Channel::RecvStatus::kOk) {
    if (error)
      *error = st == dist::Channel::RecvStatus::kTimeout ? "request timed out"
                                                         : "connection lost";
    return false;
  }
  if (reply->type == MsgType::kServeError) {
    WireReader r(reply->payload);
    std::string message;
    if (!dist::get_string(r, &message)) message = "malformed error reply";
    if (error) *error = std::move(message);
    return false;
  }
  if (reply->type != MsgType::kReply) {
    if (error) *error = "unexpected reply type";
    return false;
  }
  return true;
}

bool Client::open_session(const SystemParams& system,
                          const StructuralConfig& structural,
                          std::string* key, bool* created,
                          std::string* error) {
  WireWriter w;
  put_system(w, system);
  put_structural(w, structural);
  Frame reply;
  if (!rpc(MsgType::kServeOpen, w.bytes(), &reply, error)) return false;
  WireReader r(reply.payload);
  std::string k;
  if (!dist::get_string(r, &k)) {
    if (error) *error = "malformed open reply";
    return false;
  }
  const bool fresh = r.get_u8() != 0;
  if (!r.ok() || !r.at_end()) {
    if (error) *error = "malformed open reply";
    return false;
  }
  if (key) *key = std::move(k);
  if (created) *created = fresh;
  return true;
}

bool Client::estimate(const std::string& key, const RunRequest& req,
                      core::RunResults* res, RequestStats* stats,
                      std::string* error) {
  WireWriter w;
  dist::put_string(w, key);
  put_run_request(w, req);
  Frame reply;
  if (!rpc(MsgType::kServeEstimate, w.bytes(), &reply, error)) return false;
  WireReader r(reply.payload);
  core::RunResults decoded;
  RequestStats st;
  if (!dist::get_run_results(r, &decoded) || !get_request_stats(r, &st) ||
      !r.at_end()) {
    if (error) *error = "malformed estimate reply";
    return false;
  }
  if (res) *res = std::move(decoded);
  if (stats) *stats = st;
  return true;
}

bool Client::checkpoint(const std::string& key,
                        std::vector<std::uint8_t>* blob, std::string* error) {
  WireWriter w;
  dist::put_string(w, key);
  Frame reply;
  if (!rpc(MsgType::kServeCheckpoint, w.bytes(), &reply, error)) return false;
  if (blob) *blob = std::move(reply.payload);
  return true;
}

bool Client::restore(const std::vector<std::uint8_t>& blob, std::string* key,
                     bool* restored, std::string* error) {
  Frame reply;
  if (!rpc(MsgType::kServeRestore, blob, &reply, error)) return false;
  WireReader r(reply.payload);
  std::string k;
  if (!dist::get_string(r, &k)) {
    if (error) *error = "malformed restore reply";
    return false;
  }
  const bool fresh = r.get_u8() != 0;
  if (!r.ok() || !r.at_end()) {
    if (error) *error = "malformed restore reply";
    return false;
  }
  if (key) *key = std::move(k);
  if (restored) *restored = fresh;
  return true;
}

bool Client::stats(ServeStatsReply* out, std::string* error) {
  Frame reply;
  if (!rpc(MsgType::kServeStats, {}, &reply, error)) return false;
  WireReader r(reply.payload);
  ServeStatsReply s;
  if (!get_stats_reply(r, &s) || !r.at_end()) {
    if (error) *error = "malformed stats reply";
    return false;
  }
  if (out) *out = std::move(s);
  return true;
}

bool Client::shutdown(std::string* error) {
  Frame reply;
  return rpc(MsgType::kServeShutdown, {}, &reply, error);
}

}  // namespace socpower::serve
