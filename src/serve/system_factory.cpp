#include "serve/system_factory.hpp"

#include <set>
#include <utility>

#include "systems/multicore.hpp"
#include "systems/prodcons.hpp"
#include "systems/tcpip.hpp"

namespace socpower::serve {

namespace {

/// Rejects any kv key outside `known`; the factory's strictness contract.
bool check_keys(const SystemParams& params, const std::set<std::string>& known,
                std::string* error) {
  for (const auto& [k, v] : params.kv) {
    (void)v;
    if (known.count(k) == 0) {
      if (error)
        *error = "unknown parameter '" + k + "' for system '" + params.name +
                 "'";
      return false;
    }
  }
  return true;
}

class TcpIpInstance final : public SystemInstance {
 public:
  explicit TcpIpInstance(systems::TcpIpParams p) : sys_(p) {}

  [[nodiscard]] const cfsm::Network& network() const override {
    return sys_.network();
  }
  void configure(core::CoEstimator& est) override { sys_.configure(est); }
  [[nodiscard]] sim::Stimulus stimulus() const override {
    return sys_.stimulus();
  }

 private:
  systems::TcpIpSystem sys_;
};

class ProdConsInstance final : public SystemInstance {
 public:
  ProdConsInstance(systems::ProdConsParams p, sim::SimTime horizon)
      : sys_(p), horizon_(horizon) {}

  [[nodiscard]] const cfsm::Network& network() const override {
    return sys_.network();
  }
  void configure(core::CoEstimator& est) override { sys_.configure(est); }
  [[nodiscard]] sim::Stimulus stimulus() const override {
    return sys_.stimulus(horizon_);
  }

 private:
  systems::ProdConsSystem sys_;
  sim::SimTime horizon_;
};

class MulticoreInstance final : public SystemInstance {
 public:
  MulticoreInstance(systems::MulticoreParams p, sim::SimTime horizon)
      : sys_(p), horizon_(horizon) {}

  [[nodiscard]] const cfsm::Network& network() const override {
    return sys_.network();
  }
  void configure(core::CoEstimator& est) override { sys_.configure(est); }
  [[nodiscard]] sim::Stimulus stimulus() const override {
    return sys_.stimulus(horizon_);
  }
  [[nodiscard]] unsigned min_cores() const override {
    return sys_.params().cores;
  }

 private:
  systems::MulticoreSystem sys_;
  sim::SimTime horizon_;
};

}  // namespace

std::unique_ptr<SystemInstance> make_system(const SystemParams& params,
                                            std::string* error) {
  if (params.name == "tcpip") {
    static const std::set<std::string> known = {
        "num_packets",    "packet_bytes",
        "packet_gap",     "dma_block_size",
        "ip_check_in_hw", "checksum_rtl_estimator",
        "seed",           "rtos_prio_create",
        "rtos_prio_ipcheck"};
    if (!check_keys(params, known, error)) return nullptr;
    systems::TcpIpParams p;
    p.num_packets = static_cast<int>(params.get("num_packets", p.num_packets));
    p.packet_bytes =
        static_cast<int>(params.get("packet_bytes", p.packet_bytes));
    p.packet_gap = static_cast<sim::SimTime>(
        params.get("packet_gap", static_cast<std::int64_t>(p.packet_gap)));
    p.dma_block_size = static_cast<unsigned>(
        params.get("dma_block_size", p.dma_block_size));
    p.ip_check_in_hw = params.get("ip_check_in_hw", 0) != 0;
    p.checksum_rtl_estimator = params.get("checksum_rtl_estimator", 0) != 0;
    p.seed = static_cast<std::uint64_t>(
        params.get("seed", static_cast<std::int64_t>(p.seed)));
    p.rtos_prio_create = static_cast<int>(
        params.get("rtos_prio_create", p.rtos_prio_create));
    p.rtos_prio_ipcheck = static_cast<int>(
        params.get("rtos_prio_ipcheck", p.rtos_prio_ipcheck));
    return std::make_unique<TcpIpInstance>(p);
  }
  if (params.name == "prodcons") {
    static const std::set<std::string> known = {
        "num_packets", "bytes_per_packet",         "tick_period",
        "start_gap",   "consumer_base_iterations", "horizon"};
    if (!check_keys(params, known, error)) return nullptr;
    systems::ProdConsParams p;
    p.num_packets = static_cast<int>(params.get("num_packets", p.num_packets));
    p.bytes_per_packet =
        static_cast<int>(params.get("bytes_per_packet", p.bytes_per_packet));
    p.tick_period = static_cast<sim::SimTime>(
        params.get("tick_period", static_cast<std::int64_t>(p.tick_period)));
    p.start_gap = static_cast<sim::SimTime>(
        params.get("start_gap", static_cast<std::int64_t>(p.start_gap)));
    p.consumer_base_iterations = static_cast<int>(params.get(
        "consumer_base_iterations", p.consumer_base_iterations));
    const auto horizon =
        static_cast<sim::SimTime>(params.get("horizon", 4096));
    return std::make_unique<ProdConsInstance>(p, horizon);
  }
  if (params.name == "multicore") {
    static const std::set<std::string> known = {
        "cores",     "num_packets",  "bytes_per_packet",
        "tick_period", "start_gap",  "collector_base_iterations",
        "shared_lines", "horizon"};
    if (!check_keys(params, known, error)) return nullptr;
    systems::MulticoreParams p;
    const auto cores = params.get("cores", p.cores);
    if (cores < 1 || cores > 64) {
      if (error) *error = "multicore: cores must be in [1, 64]";
      return nullptr;
    }
    p.cores = static_cast<unsigned>(cores);
    p.num_packets = static_cast<int>(params.get("num_packets", p.num_packets));
    p.bytes_per_packet =
        static_cast<int>(params.get("bytes_per_packet", p.bytes_per_packet));
    p.tick_period = static_cast<sim::SimTime>(
        params.get("tick_period", static_cast<std::int64_t>(p.tick_period)));
    p.start_gap = static_cast<sim::SimTime>(
        params.get("start_gap", static_cast<std::int64_t>(p.start_gap)));
    p.collector_base_iterations = static_cast<int>(params.get(
        "collector_base_iterations", p.collector_base_iterations));
    p.shared_lines = static_cast<unsigned>(
        params.get("shared_lines", p.shared_lines));
    const auto horizon =
        static_cast<sim::SimTime>(params.get("horizon", 4096));
    return std::make_unique<MulticoreInstance>(p, horizon);
  }
  if (error) *error = "unknown system '" + params.name + "'";
  return nullptr;
}

}  // namespace socpower::serve
