// Server-side construction of the benchmark systems from wire-shipped
// SystemParams.
//
// A SystemInstance owns the behavioral system (CFSM network, hooks, packet
// contents) for the lifetime of its session: the network must outlive the
// CoEstimator that simulates it, and the environment hooks capture the
// system object. The factory is strict — an unknown system name or
// parameter key is an error, not a default — because SystemParams is half
// of the session identity and a silently-dropped key would alias two
// different workloads onto one session.
#pragma once

#include <memory>
#include <string>

#include "core/coestimator.hpp"
#include "serve/protocol.hpp"
#include "sim/event_queue.hpp"

namespace socpower::serve {

class SystemInstance {
 public:
  virtual ~SystemInstance() = default;

  [[nodiscard]] virtual const cfsm::Network& network() const = 0;
  /// Maps processes and installs hooks; call before est.prepare().
  virtual void configure(core::CoEstimator& est) = 0;
  /// The canonical stimulus of this system configuration. Deterministic:
  /// every estimate request of a session replays the same occurrences.
  [[nodiscard]] virtual sim::Stimulus stimulus() const = 0;
  /// Smallest config.cores this system maps onto. Session::create rejects a
  /// structural config below this BEFORE configure() runs — map_sw aborts
  /// the process on an out-of-range core, which a server must never let a
  /// request reach.
  [[nodiscard]] virtual unsigned min_cores() const { return 1; }
};

/// Builds the named system. Returns nullptr with `*error` set on an unknown
/// name or parameter key.
///
/// Recognized parameters (all integers; booleans as 0/1):
///   tcpip:    num_packets, packet_bytes, packet_gap, dma_block_size,
///             ip_check_in_hw, checksum_rtl_estimator, seed,
///             rtos_prio_create, rtos_prio_ipcheck
///   prodcons: num_packets, bytes_per_packet, tick_period, start_gap,
///             consumer_base_iterations, horizon
///   multicore: cores, num_packets, bytes_per_packet, tick_period,
///             start_gap, collector_base_iterations, shared_lines, horizon
///             (the structural config must request >= `cores` cores; its
///             interconnect/coherence fields select bus vs NoC and MSI)
[[nodiscard]] std::unique_ptr<SystemInstance> make_system(
    const SystemParams& params, std::string* error);

}  // namespace socpower::serve
