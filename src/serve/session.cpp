#include "serve/session.hpp"

#include <chrono>
#include <utility>

#include "telemetry/registry.hpp"

namespace socpower::serve {

std::unique_ptr<Session> Session::create(const SystemParams& system,
                                         const StructuralConfig& structural,
                                         std::string* error) {
  std::unique_ptr<SystemInstance> sys = make_system(system, error);
  if (!sys) return nullptr;

  core::CoEstimatorConfig cfg;
  structural.apply(&cfg);
  // configure() maps tasks onto cores and map_sw aborts the process on an
  // out-of-range core — reject the request before it can get there.
  if (cfg.cores < sys->min_cores()) {
    if (error)
      *error = "system '" + system.name + "' needs at least " +
               std::to_string(sys->min_cores()) +
               " cores; structural config has " + std::to_string(cfg.cores);
    return nullptr;
  }
  auto est = std::make_unique<core::CoEstimator>(&sys->network(), cfg);
  sys->configure(*est);
  // prepare() aborts the whole process on an invalid config — a server must
  // turn that into an error reply instead.
  const std::vector<std::string> problems = est->config().validate();
  if (!problems.empty()) {
    if (error) *error = "invalid configuration: " + problems.front();
    return nullptr;
  }
  est->prepare();

  auto session = std::unique_ptr<Session>(new Session());
  session->key_ = session_key(system, structural);
  session->system_ = system;
  session->structural_ = structural;
  session->sys_ = std::move(sys);
  session->est_ = std::move(est);
  return session;
}

std::unique_ptr<Session> Session::restore(const Checkpoint& ckpt,
                                          std::string* error) {
  std::unique_ptr<Session> session =
      create(ckpt.system, ckpt.structural, error);
  if (!session) return nullptr;
  if (!session->est_->import_warm_state(ckpt.warm)) {
    if (error)
      *error = "checkpoint warm state does not match the prepared session";
    return nullptr;
  }
  session->restored_ = true;
  return session;
}

bool Session::estimate(const RunRequest& req, core::RunResults* res,
                       RequestStats* stats, std::string* error) {
  std::lock_guard<std::mutex> lk(mu_);
  req.apply(&est_->config());
  const std::vector<std::string> problems = est_->config().validate();
  if (!problems.empty()) {
    if (error) *error = "invalid run request: " + problems.front();
    return false;
  }

  const core::ComponentEstimator::WarmCacheCounters before =
      est_->warm_cache_counters();
  const auto t0 = std::chrono::steady_clock::now();
  const sim::Stimulus stim = sys_->stimulus();
  *res = req.separate ? est_->run_separate(stim) : est_->run(stim);
  const auto t1 = std::chrono::steady_clock::now();
  const core::ComponentEstimator::WarmCacheCounters after =
      est_->warm_cache_counters();

  if (stats) {
    stats->wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    stats->run_index = runs_;
    stats->restored_session = restored_;
    stats->ecache_hits = res->cache_hits_served;
    stats->warm_hits = after.hits - before.hits;
    stats->warm_fills = after.fills - before.fills;
  }
  ++runs_;
  return true;
}

Checkpoint Session::checkpoint() {
  std::lock_guard<std::mutex> lk(mu_);
  Checkpoint c;
  c.system = system_;
  c.structural = structural_;
  c.warm = est_->export_warm_state();
  return c;
}

std::shared_ptr<Session> SessionTable::find(const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  it->second.last_used = ++tick_;
  return it->second.session;
}

std::shared_ptr<Session> SessionTable::adopt(
    std::shared_ptr<Session> session) {
  static telemetry::Counter& c_evictions =
      telemetry::registry().counter("serve.evictions");
  std::lock_guard<std::mutex> lk(mu_);
  // Copy the key out before the move: argument evaluation order would
  // otherwise be free to move `session` away first.
  const std::string key = session->key();
  auto [it, inserted] = map_.emplace(key, Entry{std::move(session), 0});
  it->second.last_used = ++tick_;
  if (inserted && max_sessions_ > 0) {
    while (map_.size() > max_sessions_) {
      // Evict the least-recently-used entry; the just-adopted session holds
      // the newest stamp, so it is never the victim.
      auto victim = map_.begin();
      for (auto e = map_.begin(); e != map_.end(); ++e)
        if (e->second.last_used < victim->second.last_used) victim = e;
      map_.erase(victim);
      ++evictions_;
      c_evictions.add();
    }
  }
  return it->second.session;
}

void SessionTable::set_max_sessions(std::size_t max) {
  std::lock_guard<std::mutex> lk(mu_);
  max_sessions_ = max;
}

std::uint64_t SessionTable::evictions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evictions_;
}

std::size_t SessionTable::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

}  // namespace socpower::serve
