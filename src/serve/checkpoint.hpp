// Versioned, bit-exact serialization of a session's prepared-system identity
// plus its warm-cache state — the server's checkpoint/restore format.
//
// A checkpoint does NOT carry the compiled SW images or synthesized
// netlists: those are deterministic functions of (SystemParams,
// StructuralConfig), so restore re-derives them by preparing a fresh
// CoEstimator and then imports only the state that took simulation work to
// earn — ISS block-cache entry points (re-decoded locally, which is exact),
// the gate-level reaction tables, and the (task, path) energy cache with
// its Welford moments as raw IEEE-754 bit patterns. Restored sessions
// therefore reproduce the uninterrupted session's results bit-identically
// (test_checkpoint.cpp fuzzes exactly this).
//
// Container format:
//   [u32 magic "SPCK"][u32 version][u64 payload_len][u64 fnv1a64(payload)]
//   [payload]
// The payload is the dist-wire encoding of (system, structural, warm).
// decode_checkpoint rejects bad magic, unknown versions, truncation, length
// mismatches, and hash mismatches with a distinct message each, so fault-
// injection tests can tell the failure modes apart.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cosim_master.hpp"
#include "serve/protocol.hpp"

namespace socpower::serve {

inline constexpr std::uint32_t kCheckpointMagic = 0x4b435053u;  // "SPCK" LE
// v2: BackendWarmState gained the calibrated AnalyticalModel coefficients.
inline constexpr std::uint32_t kCheckpointVersion = 2;

struct Checkpoint {
  SystemParams system;
  StructuralConfig structural;
  core::CoSimMaster::WarmSnapshot warm;
};

/// Warm-state payload codec (shared with tests that corrupt checkpoints at
/// specific offsets).
void put_warm_snapshot(dist::WireWriter& w,
                       const core::CoSimMaster::WarmSnapshot& snap);
[[nodiscard]] bool get_warm_snapshot(dist::WireReader& r,
                                     core::CoSimMaster::WarmSnapshot* out);

[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& c);
[[nodiscard]] bool decode_checkpoint(const std::uint8_t* data,
                                     std::size_t size, Checkpoint* out,
                                     std::string* error);
[[nodiscard]] bool decode_checkpoint(const std::vector<std::uint8_t>& blob,
                                     Checkpoint* out, std::string* error);

/// Whole-file convenience wrappers for the daemon and the examples.
[[nodiscard]] bool write_checkpoint_file(const std::string& path,
                                         const Checkpoint& c);
[[nodiscard]] bool read_checkpoint_file(const std::string& path,
                                        Checkpoint* out, std::string* error);

}  // namespace socpower::serve
