// One server session: a prepared CoEstimator plus the system it simulates,
// keyed by the structural-freeze snapshot (serve::session_key).
//
// Concurrency: the server may run many sessions at once, but requests
// against ONE session serialize on its mutex — the CoEstimator is stateful
// (its caches are the whole point) and a run mutates them. Two concurrent
// requests for the same (system, structural) pair therefore queue, and the
// second one enjoys the caches the first just warmed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/coestimator.hpp"
#include "serve/checkpoint.hpp"
#include "serve/protocol.hpp"
#include "serve/system_factory.hpp"

namespace socpower::serve {

class Session {
 public:
  /// Builds the system, applies the structural config, validates it
  /// (config().validate() — prepare() aborts the process on an invalid
  /// config, so the server must reject first), and prepares. nullptr with
  /// `*error` set on any failure.
  [[nodiscard]] static std::unique_ptr<Session> create(
      const SystemParams& system, const StructuralConfig& structural,
      std::string* error);

  /// create() from the checkpoint's identity, then import its warm state.
  [[nodiscard]] static std::unique_ptr<Session> restore(const Checkpoint& ckpt,
                                                        std::string* error);

  [[nodiscard]] const std::string& key() const { return key_; }
  [[nodiscard]] bool restored() const { return restored_; }

  /// Applies the per-run knobs and runs the session's canonical stimulus
  /// (run_separate when req.separate). Serializes on the session mutex.
  /// False with `*error` set when the knobs fail config validation.
  [[nodiscard]] bool estimate(const RunRequest& req, core::RunResults* res,
                              RequestStats* stats, std::string* error);

  /// Snapshot of the session identity + warm caches, taken under the mutex
  /// (never mid-run).
  [[nodiscard]] Checkpoint checkpoint();

 private:
  Session() = default;

  std::mutex mu_;
  std::string key_;
  SystemParams system_;
  StructuralConfig structural_;
  std::unique_ptr<SystemInstance> sys_;
  std::unique_ptr<core::CoEstimator> est_;
  std::uint64_t runs_ = 0;
  bool restored_ = false;
};

/// Key -> session map shared by all server connections. find-or-insert is
/// atomic so two clients opening the same structural config race to one
/// session, never two.
///
/// Optionally bounded: with a max-session cap set, adopting a new session
/// beyond the cap evicts the least-recently-used one (both find() and
/// adopt() refresh recency). Eviction only drops the table's reference —
/// in-flight requests hold their own shared_ptr and finish normally; the
/// warm state is simply gone for later requests (re-openable, and
/// checkpointable beforehand). Counted in "serve.evictions".
class SessionTable {
 public:
  [[nodiscard]] std::shared_ptr<Session> find(const std::string& key) const;
  /// Inserts `session` under its key unless one exists; returns the winner.
  std::shared_ptr<Session> adopt(std::shared_ptr<Session> session);
  [[nodiscard]] std::size_t size() const;

  /// Bound the table to `max` sessions (0 = unbounded, the default).
  void set_max_sessions(std::size_t max);
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  struct Entry {
    std::shared_ptr<Session> session;
    std::uint64_t last_used = 0;  // recency stamp (monotonic per table)
  };

  mutable std::mutex mu_;
  mutable std::map<std::string, Entry> map_;
  mutable std::uint64_t tick_ = 0;
  std::size_t max_sessions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace socpower::serve
