// Client side of the session-server protocol: one blocking RPC per public
// method, over an AF_UNIX connection. Used by the examples, benches, tests,
// and scripts/run_experiments.sh (through examples/client_sweep).
//
// Error handling: every method returns false and fills `*error` on a
// transport failure or a kServeError reply; the connection stays usable
// after a server-side (kServeError) rejection but not after a transport
// error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/coestimator_config.hpp"
#include "dist/channel.hpp"
#include "serve/protocol.hpp"

namespace socpower::serve {

class Client {
 public:
  Client() = default;

  /// Connects and performs the kServeHello version handshake.
  [[nodiscard]] static Client connect(const std::string& socket_path,
                                      std::string* error);

  [[nodiscard]] bool valid() const { return ch_.valid(); }

  /// Find-or-create the session for (system, structural). `*created` tells
  /// whether this call prepared a fresh estimator (cold) or joined a warm
  /// one.
  [[nodiscard]] bool open_session(const SystemParams& system,
                                  const StructuralConfig& structural,
                                  std::string* key, bool* created,
                                  std::string* error);

  [[nodiscard]] bool estimate(const std::string& key, const RunRequest& req,
                              core::RunResults* res, RequestStats* stats,
                              std::string* error);

  /// Fetches the session's serialized checkpoint blob.
  [[nodiscard]] bool checkpoint(const std::string& key,
                                std::vector<std::uint8_t>* blob,
                                std::string* error);

  /// Rebuilds a session from a checkpoint blob. `*restored` is false when a
  /// session with that identity already lived on the server (its warm state
  /// wins; the checkpoint is ignored).
  [[nodiscard]] bool restore(const std::vector<std::uint8_t>& blob,
                             std::string* key, bool* restored,
                             std::string* error);

  [[nodiscard]] bool stats(ServeStatsReply* out, std::string* error);

  /// Asks the server to stop (it replies first, then winds down).
  [[nodiscard]] bool shutdown(std::string* error);

  /// Per-RPC timeout; estimation requests can legitimately take a while
  /// (a cold prepare synthesizes netlists and characterizes macro-ops).
  void set_timeout_ms(int ms) { timeout_ms_ = ms; }

 private:
  [[nodiscard]] bool rpc(dist::MsgType type,
                         const std::vector<std::uint8_t>& payload,
                         dist::Frame* reply, std::string* error);

  dist::Channel ch_;
  int timeout_ms_ = 120'000;
};

}  // namespace socpower::serve
