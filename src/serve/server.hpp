// Co-estimation session server: a long-lived process that accepts
// estimation requests over an AF_UNIX stream socket (the dist frame codec)
// and serves them from persistent, warm sessions.
//
// Threading model: one acceptor thread polls the listening socket; each
// accepted connection gets a connection thread that decodes frames and
// writes replies; the estimation work itself is submitted to a shared
// util::ThreadPool, so concurrent sessions multiplex onto a bounded worker
// set no matter how many clients connect. Requests against the same session
// additionally serialize on the session mutex (see session.hpp).
//
// Counters: the serve.{sessions,requests,checkpoint_bytes,restore_hits}
// counters and the request-latency stats are always-on process-local
// atomics (telemetry::Counter mutations are gated on telemetry::enabled(),
// which is off by default, and a server must be able to answer kServeStats
// regardless); they are additionally mirrored into the registry, so with
// telemetry on the usual report renderers see them too.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/channel.hpp"
#include "serve/session.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace socpower::serve {

struct ServerConfig {
  /// Filesystem path of the AF_UNIX listening socket (unlinked on start so
  /// a stale socket from a crashed server never blocks a restart, and on
  /// stop). Also settable via SOCPOWER_SERVE_SOCKET for the daemon.
  std::string socket_path;
  /// Estimation worker threads (0 = one per hardware thread); the
  /// SOCPOWER_SERVE_THREADS knob of the daemon.
  unsigned threads = 0;
  /// Acceptor poll period — bounds shutdown latency.
  int accept_poll_ms = 200;
  /// Per-frame I/O timeout toward clients.
  int io_timeout_ms = 30'000;
  /// Upper bound on live sessions (0 = unbounded): beyond it, opening a new
  /// session evicts the least-recently-used one (see SessionTable). The
  /// SOCPOWER_SERVE_MAX_SESSIONS knob of the daemon.
  std::size_t max_sessions = 0;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor. False when the platform has
  /// no AF_UNIX support or the bind fails (path taken by a live server).
  [[nodiscard]] bool start();
  /// Stops accepting, joins all threads, unlinks the socket. Idempotent;
  /// also triggered remotely by kServeShutdown.
  void stop();
  [[nodiscard]] bool running() const;

  [[nodiscard]] const std::string& socket_path() const {
    return config_.socket_path;
  }

  /// The kServeStats payload, also available in-process (the daemon prints
  /// it on exit).
  [[nodiscard]] ServeStatsReply stats_snapshot() const;

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// Decodes and executes one request; fills the reply frame. Returns false
  /// when the request asked for shutdown (reply is still sent first).
  bool handle(const dist::Frame& req, dist::Frame* reply);

  void reply_error(dist::Frame* reply, std::string message);

  ServerConfig config_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{true};
  std::thread acceptor_;
  std::mutex conns_mu_;
  std::vector<std::thread> conns_;

  std::unique_ptr<ThreadPool> pool_;
  SessionTable sessions_;

  std::atomic<std::uint64_t> n_sessions_{0};
  std::atomic<std::uint64_t> n_requests_{0};
  std::atomic<std::uint64_t> n_checkpoint_bytes_{0};
  std::atomic<std::uint64_t> n_restore_hits_{0};
  mutable std::mutex latency_mu_;
  RunningStats latency_ms_;
};

}  // namespace socpower::serve
