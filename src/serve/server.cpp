#include "serve/server.hpp"

#include <chrono>
#include <future>
#include <utility>

#if !defined(_WIN32)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <cstring>

#include "telemetry/registry.hpp"
#include "util/table.hpp"

namespace socpower::serve {

using dist::Frame;
using dist::MsgType;
using dist::WireReader;
using dist::WireWriter;

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Server::~Server() { stop(); }

bool Server::start() {
#if defined(_WIN32)
  return false;
#else
  if (!stop_.load()) return false;  // already running
  if (config_.socket_path.empty()) return false;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof addr.sun_path) return false;
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  // A stale socket file from a crashed server would fail the bind forever;
  // a *live* server holds the listening socket, so its bind still fails
  // after the unlink (it re-binds nothing — we only ever unlink, then bind
  // our own fresh socket).
  ::unlink(config_.socket_path.c_str());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  sessions_.set_max_sessions(config_.max_sessions);
  pool_ = std::make_unique<ThreadPool>(config_.threads);
  stop_.store(false);
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
#endif
}

void Server::stop() {
#if !defined(_WIN32)
  stop_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns.swap(conns_);
  }
  for (std::thread& t : conns)
    if (t.joinable()) t.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  pool_.reset();
#endif
}

bool Server::running() const { return !stop_.load(); }

void Server::accept_loop() {
#if !defined(_WIN32)
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, config_.accept_poll_ms);
    if (rc <= 0) continue;  // timeout / EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.emplace_back([this, fd] { serve_connection(fd); });
  }
#endif
}

void Server::serve_connection(int fd) {
  dist::Channel ch = dist::Channel::adopt(fd);
  while (!stop_.load()) {
    Frame req;
    const dist::Channel::RecvStatus st =
        ch.recv_frame(&req, config_.accept_poll_ms);
    if (st == dist::Channel::RecvStatus::kTimeout) continue;
    if (st != dist::Channel::RecvStatus::kOk) return;  // closed / error

    Frame reply;
    const bool keep_running = handle(req, &reply);
    (void)ch.send_frame(reply.type, reply.payload, config_.io_timeout_ms);
    if (!keep_running) {
      // kServeShutdown: the reply is out; flag every loop down. stop()'s
      // thread joins happen on the owner's thread (daemon main / test),
      // which watches running().
      stop_.store(true);
      return;
    }
  }
}

void Server::reply_error(Frame* reply, std::string message) {
  WireWriter w;
  dist::put_string(w, message);
  reply->type = MsgType::kServeError;
  reply->payload = w.take();
}

bool Server::handle(const Frame& req, Frame* reply) {
  static telemetry::Counter& c_requests =
      telemetry::registry().counter("serve.requests");
  static telemetry::Counter& c_sessions =
      telemetry::registry().counter("serve.sessions");
  static telemetry::Counter& c_ckpt_bytes =
      telemetry::registry().counter("serve.checkpoint_bytes");
  static telemetry::Counter& c_restores =
      telemetry::registry().counter("serve.restore_hits");
  static telemetry::HistogramStat& h_latency =
      telemetry::registry().histogram("serve.request_ms", 0.0, 60'000.0, 32);

  WireReader r(req.payload);
  switch (req.type) {
    case MsgType::kServeHello: {
      const std::uint32_t version = r.get_u32();
      if (!r.ok() || !r.at_end()) {
        reply_error(reply, "malformed hello");
        return true;
      }
      if (version != kServeProtocolVersion) {
        reply_error(reply, "protocol version mismatch");
        return true;
      }
      WireWriter w;
      w.put_u32(kServeProtocolVersion);
      reply->type = MsgType::kReply;
      reply->payload = w.take();
      return true;
    }

    case MsgType::kServeOpen: {
      SystemParams system;
      StructuralConfig structural;
      if (!get_system(r, &system) || !get_structural(r, &structural) ||
          !r.at_end()) {
        reply_error(reply, "malformed open request");
        return true;
      }
      const std::string key = session_key(system, structural);
      std::shared_ptr<Session> session = sessions_.find(key);
      bool created = false;
      if (!session) {
        // prepare() is the expensive part (SW compile, HW synthesis, macro
        // characterization): run it on the shared pool like any other
        // estimation work.
        std::string error;
        std::unique_ptr<Session> fresh;
        std::promise<void> done;
        auto fut = done.get_future();
        pool_->submit([&] {
          fresh = Session::create(system, structural, &error);
          done.set_value();
        });
        fut.wait();
        if (!fresh) {
          reply_error(reply, std::move(error));
          return true;
        }
        const Session* ours = fresh.get();
        session = sessions_.adopt(std::move(fresh));
        created = session.get() == ours;  // lost races reuse the winner
        if (created) {
          n_sessions_.fetch_add(1);
          c_sessions.add();
        }
      }
      WireWriter w;
      dist::put_string(w, session->key());
      w.put_u8(created ? 1 : 0);
      reply->type = MsgType::kReply;
      reply->payload = w.take();
      return true;
    }

    case MsgType::kServeEstimate: {
      std::string key;
      RunRequest rr;
      if (!dist::get_string(r, &key) || !get_run_request(r, &rr) ||
          !r.at_end()) {
        reply_error(reply, "malformed estimate request");
        return true;
      }
      const std::shared_ptr<Session> session = sessions_.find(key);
      if (!session) {
        reply_error(reply, "unknown session '" + key + "'");
        return true;
      }
      core::RunResults res;
      RequestStats stats;
      std::string error;
      bool ok = false;
      const auto t0 = std::chrono::steady_clock::now();
      std::promise<void> done;
      auto fut = done.get_future();
      pool_->submit([&] {
        ok = session->estimate(rr, &res, &stats, &error);
        done.set_value();
      });
      fut.wait();
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      n_requests_.fetch_add(1);
      c_requests.add();
      h_latency.observe(ms);
      {
        std::lock_guard<std::mutex> lk(latency_mu_);
        latency_ms_.add(ms);
      }
      if (!ok) {
        reply_error(reply, std::move(error));
        return true;
      }
      WireWriter w;
      dist::put_run_results(w, res);
      put_request_stats(w, stats);
      reply->type = MsgType::kReply;
      reply->payload = w.take();
      return true;
    }

    case MsgType::kServeCheckpoint: {
      std::string key;
      if (!dist::get_string(r, &key) || !r.at_end()) {
        reply_error(reply, "malformed checkpoint request");
        return true;
      }
      const std::shared_ptr<Session> session = sessions_.find(key);
      if (!session) {
        reply_error(reply, "unknown session '" + key + "'");
        return true;
      }
      std::vector<std::uint8_t> blob = encode_checkpoint(session->checkpoint());
      n_checkpoint_bytes_.fetch_add(blob.size());
      c_ckpt_bytes.add(blob.size());
      reply->type = MsgType::kReply;
      reply->payload = std::move(blob);
      return true;
    }

    case MsgType::kServeRestore: {
      Checkpoint ckpt;
      std::string error;
      if (!decode_checkpoint(req.payload, &ckpt, &error)) {
        reply_error(reply, std::move(error));
        return true;
      }
      const std::string key = session_key(ckpt.system, ckpt.structural);
      std::shared_ptr<Session> session = sessions_.find(key);
      bool restored = false;
      if (!session) {
        std::unique_ptr<Session> fresh;
        std::promise<void> done;
        auto fut = done.get_future();
        pool_->submit([&] {
          fresh = Session::restore(ckpt, &error);
          done.set_value();
        });
        fut.wait();
        if (!fresh) {
          reply_error(reply, std::move(error));
          return true;
        }
        const Session* ours = fresh.get();
        session = sessions_.adopt(std::move(fresh));
        restored = session.get() == ours;  // lost races reuse the winner
        if (restored) {
          n_sessions_.fetch_add(1);
          n_restore_hits_.fetch_add(1);
          c_sessions.add();
          c_restores.add();
        }
      }
      WireWriter w;
      dist::put_string(w, session->key());
      w.put_u8(restored ? 1 : 0);
      reply->type = MsgType::kReply;
      reply->payload = w.take();
      return true;
    }

    case MsgType::kServeStats: {
      if (!r.at_end()) {
        reply_error(reply, "malformed stats request");
        return true;
      }
      WireWriter w;
      put_stats_reply(w, stats_snapshot());
      reply->type = MsgType::kReply;
      reply->payload = w.take();
      return true;
    }

    case MsgType::kServeShutdown: {
      reply->type = MsgType::kReply;
      reply->payload.clear();
      return false;
    }

    default:
      reply_error(reply, "unexpected message type");
      return true;
  }
}

ServeStatsReply Server::stats_snapshot() const {
  ServeStatsReply s;
  s.sessions = n_sessions_.load();
  s.requests = n_requests_.load();
  s.checkpoint_bytes = n_checkpoint_bytes_.load();
  s.restore_hits = n_restore_hits_.load();
  s.evictions = sessions_.evictions();
  RunningStats lat;
  {
    std::lock_guard<std::mutex> lk(latency_mu_);
    lat = latency_ms_;
  }
  s.latency_count = lat.count();
  if (lat.count() > 0) {
    s.latency_mean_ms = lat.mean();
    s.latency_min_ms = lat.min();
    s.latency_max_ms = lat.max();
  }

  TextTable t({"serve metric", "value"});
  t.add_row({"serve.sessions", std::to_string(s.sessions)});
  t.add_row({"serve.requests", std::to_string(s.requests)});
  t.add_row({"serve.checkpoint_bytes", std::to_string(s.checkpoint_bytes)});
  t.add_row({"serve.restore_hits", std::to_string(s.restore_hits)});
  t.add_row({"serve.evictions", std::to_string(s.evictions)});
  t.add_row({"request_ms.count", std::to_string(s.latency_count)});
  t.add_row({"request_ms.mean", TextTable::num(s.latency_mean_ms)});
  t.add_row({"request_ms.min", TextTable::num(s.latency_min_ms)});
  t.add_row({"request_ms.max", TextTable::num(s.latency_max_ms)});
  s.rendered = t.render();
  return s;
}

}  // namespace socpower::serve
