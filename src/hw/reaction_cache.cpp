#include "hw/reaction_cache.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/registry.hpp"

namespace socpower::hw {

namespace {

/// FNV-1a over the key words; distributes fine for the table sizes involved.
std::size_t hash_words(const std::vector<std::uint64_t>& k) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t w : k) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

void pack_bit(std::vector<std::uint64_t>* out, std::uint64_t* word,
              std::size_t* n, bool bit) {
  *word |= static_cast<std::uint64_t>(bit) << (*n & 63u);
  if ((*n & 63u) == 63u) {
    out->push_back(*word);
    *word = 0;
  }
  ++*n;
}

void pack_flush(std::vector<std::uint64_t>* out, std::uint64_t* word,
                std::size_t n) {
  if (n % 64 != 0) out->push_back(*word);
  *word = 0;
}

}  // namespace

std::size_t ReactionCache::KeyHash::operator()(
    const std::vector<std::uint64_t>& k) const {
  return hash_words(k);
}

ReactionCache::ReactionCache(GateSim* sim, ReactionCacheConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)) {
  if (cfg_.max_entries == 0) cfg_.max_entries = 1;
  // Adopt the simulator as-is: anchored only if no force_net() has touched
  // it since its last reset() (freshly constructed simulators qualify, and
  // their state is the canonical post-reset one: the constructor settles
  // from all-zero nets exactly like reset() does).
  seen_resets_ = sim_->reset_count();
  anchored_ = !sim_->consume_forced();
  after_reset_ = true;
}

void ReactionCache::configure(const ReactionCacheConfig& cfg) {
  const bool drop = cfg.enabled != cfg_.enabled ||
                    cfg.telemetry_prefix != cfg_.telemetry_prefix ||
                    cfg.max_entries < table_.size();
  if (cfg.telemetry_prefix != cfg_.telemetry_prefix) counters_ = nullptr;
  cfg_ = cfg;
  if (cfg_.max_entries == 0) cfg_.max_entries = 1;
  if (drop) clear();
}

void ReactionCache::clear() { table_.clear(); }

std::vector<ExportedReaction> ReactionCache::export_entries() const {
  std::vector<ExportedReaction> out;
  out.reserve(table_.size());
  for (const auto& [key, e] : table_)
    out.push_back(
        ExportedReaction{key, e.energy, e.toggles, e.latch_begin, e.gate_evals});
  std::sort(out.begin(), out.end(),
            [](const ExportedReaction& a, const ExportedReaction& b) {
              return a.key < b.key;
            });
  return out;
}

void ReactionCache::import_entries(std::vector<ExportedReaction> entries) {
  table_.clear();
  for (ExportedReaction& x : entries) {
    if (table_.size() >= cfg_.max_entries) {
      stats_.evicted_entries += entries.size() - table_.size();
      break;
    }
    Entry e;
    e.energy = x.energy;
    e.toggles = std::move(x.toggles);
    e.latch_begin = x.latch_begin;
    e.gate_evals = x.gate_evals;
    table_.emplace(std::move(x.key), std::move(e));
  }
}

ReactionCache::TelemetryCounters* ReactionCache::counters() {
  // Handles resolved once per prefix and cached (registry entries are
  // deque-stable); the steady state pays relaxed atomic adds only, per the
  // telemetry cost contract.
  if (!counters_ && !cfg_.telemetry_prefix.empty()) {
    auto c = std::make_unique<TelemetryCounters>();
    telemetry::Registry& reg = telemetry::registry();
    c->hits = &reg.counter(cfg_.telemetry_prefix + ".hits");
    c->misses = &reg.counter(cfg_.telemetry_prefix + ".misses");
    c->evictions = &reg.counter(cfg_.telemetry_prefix + ".evictions");
    c->invalidations = &reg.counter(cfg_.telemetry_prefix + ".invalidations");
    c->skipped_gate_evals =
        &reg.counter(cfg_.telemetry_prefix + ".skipped_gate_evals");
    counters_ = std::move(c);
  }
  return counters_.get();
}

void ReactionCache::observe_sim_state() {
  // Order matters: reset() clears the simulator's forced flag, so a pending
  // forced flag always postdates the newest reset and must win.
  if (sim_->reset_count() != seen_resets_) {
    seen_resets_ = sim_->reset_count();
    // The post-reset state is canonical (nets zeroed, registers at init,
    // no pending marks) — deterministic across resets and across runs, so
    // re-anchoring here is what makes warm-start hits sound.
    after_reset_ = true;
    anchored_ = true;
  }
  if (sim_->consume_forced()) {
    // The simulator now holds a state the key tuple does not describe:
    // forced writes leave dirty marks whose set and order depend on the
    // force sequence, not on net values. Run uncached until the next
    // reset().
    anchored_ = false;
    ++stats_.invalidations;
    if (TelemetryCounters* c = counters()) c->invalidations->add();
  }
}

void ReactionCache::capture_regs(std::vector<std::uint64_t>* out) const {
  out->clear();
  std::uint64_t word = 0;
  std::size_t n = 0;
  for (const Dff& d : sim_->netlist().dffs())
    pack_bit(out, &word, &n, sim_->net_value(d.q));
  pack_flush(out, &word, n);
}

void ReactionCache::build_key() {
  key_scratch_.clear();
  // Word 0 distinguishes the post-reset state: it is the one state whose
  // (empty) pending-mark set is not implied by the value words that follow.
  key_scratch_.push_back(after_reset_ ? 1u : 0u);
  std::uint64_t word = 0;
  std::size_t n = 0;
  // PI vector the previous step applied (the input nets hold it).
  for (const NetId pi : sim_->netlist().primary_inputs())
    pack_bit(&key_scratch_, &word, &n, sim_->net_value(pi));
  pack_flush(&key_scratch_, &word, n);
  // Register values at the previous step's entry (tracked, not readable).
  key_scratch_.insert(key_scratch_.end(), q_prev_.begin(), q_prev_.end());
  // Staged PI vector the upcoming step will apply.
  const std::vector<std::uint8_t>& staged = sim_->staged_inputs();
  n = 0;
  for (const std::uint8_t b : staged)
    pack_bit(&key_scratch_, &word, &n, b != 0);
  pack_flush(&key_scratch_, &word, n);
}

CycleResult ReactionCache::step() {
  if (!cfg_.enabled) {
    // De-anchor so a mid-stream re-enable (configure without an intervening
    // reset) cannot key against stale tracking state.
    anchored_ = false;
    ++stats_.bypassed;
    return sim_->step();
  }
  observe_sim_state();
  if (!anchored_) {
    ++stats_.bypassed;
    return sim_->step();
  }

  // Register values at this step's entry become q_prev_ for the next lookup.
  capture_regs(&q_cur_scratch_);
  if (after_reset_) q_prev_ = q_cur_scratch_;  // canonical init values
  build_key();

  const auto it = table_.find(key_scratch_);
  if (it != table_.end()) {
    const Entry& e = it->second;
    ++stats_.hits;
    stats_.skipped_gate_evals += e.gate_evals;
    std::swap(q_prev_, q_cur_scratch_);
    after_reset_ = false;
    if (TelemetryCounters* c = counters()) {
      c->hits->add();
      c->skipped_gate_evals->add(e.gate_evals);
    }
    return sim_->apply_cached_reaction(e.toggles, e.latch_begin, e.energy);
  }

  ++stats_.misses;
  const std::uint64_t evals_before = sim_->gates_evaluated();
  const CycleResult r = sim_->step();
  Entry e;
  e.energy = r.energy;
  e.toggles.assign(sim_->last_toggles().begin(), sim_->last_toggles().end());
  e.latch_begin = static_cast<std::uint32_t>(sim_->last_latch_begin());
  e.gate_evals = sim_->gates_evaluated() - evals_before;
  if (table_.size() >= cfg_.max_entries) {
    // Generation clear, like the ISS block cache: drop everything rather
    // than track per-entry age. Keys are pure content, so dropped entries
    // simply repopulate on their next miss.
    ++stats_.capacity_clears;
    stats_.evicted_entries += table_.size();
    if (TelemetryCounters* c = counters()) c->evictions->add(table_.size());
    table_.clear();
  }
  ++stats_.insertions;
  table_.emplace(key_scratch_, std::move(e));
  std::swap(q_prev_, q_cur_scratch_);
  after_reset_ = false;
  if (TelemetryCounters* c = counters()) c->misses->add();
  return r;
}

}  // namespace socpower::hw
