#include "hw/analytical.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace socpower::hw {

namespace {

/// Appends `width` (<= 63) bits of `value` (LSB first) to a packed bit
/// vector in two word-level writes. The vector must be pre-sized with one
/// slack word past the last bit — observe() sizes it up front, which is
/// what makes the tracker O(words) instead of O(bits) per reaction (the
/// tracker runs once per hardware reaction, so on wide datapaths this
/// packing *is* the analytical tier's inner loop).
inline void append_bits(std::vector<std::uint64_t>& words,
                        std::size_t* bit_pos, std::uint64_t value,
                        unsigned width) {
  const std::size_t w = *bit_pos / 64;
  const unsigned off = static_cast<unsigned>(*bit_pos % 64);
  words[w] |= value << off;
  if (off != 0) words[w + 1] |= value >> (64 - off);
  *bit_pos += width;
}

double hamming(const std::vector<std::uint64_t>& a,
               const std::vector<std::uint64_t>& b) {
  std::uint64_t bits = 0;
  const std::size_t n = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t wa = i < a.size() ? a[i] : 0;
    const std::uint64_t wb = i < b.size() ? b[i] : 0;
    bits += static_cast<std::uint64_t>(std::popcount(wa ^ wb));
  }
  return static_cast<double>(bits);
}

double ones(const std::vector<std::uint64_t>& a) {
  std::uint64_t bits = 0;
  for (const std::uint64_t w : a)
    bits += static_cast<std::uint64_t>(std::popcount(w));
  return static_cast<double>(bits);
}

}  // namespace

void ActivityTracker::reset() {
  prev_in_.clear();
  cur_in_.clear();
  prev_st_.clear();
  cur_st_.clear();
}

ReactionActivity ActivityTracker::observe(
    const std::vector<cfsm::EventId>& local_inputs,
    const cfsm::ReactionInputs& inputs, const cfsm::CfsmState& pre) {
  // Mirror the synthesized primary-input layout: presence flag and 32-bit
  // value word per input event in local_inputs slot order (flag at bit 0,
  // value LSB-first above it — 33 bits per event, appended in one write).
  // Absent events contribute zero bits, exactly like their un-driven pins.
  cur_in_.assign(local_inputs.size() * 33 / 64 + 2, 0);
  std::size_t bit = 0;
  for (const cfsm::EventId e : local_inputs) {
    const bool present = inputs.present(e);
    const std::uint64_t value =
        present ? static_cast<std::uint32_t>(inputs.value(e)) : 0u;
    append_bits(cur_in_, &bit, (value << 1) | (present ? 1u : 0u), 33);
  }
  cur_st_.assign(pre.vars.size() * 32 / 64 + 2, 0);
  bit = 0;
  for (const std::int32_t v : pre.vars)
    append_bits(cur_st_, &bit, static_cast<std::uint32_t>(v), 32);

  ReactionActivity a;
  a.input_toggles = hamming(prev_in_, cur_in_);
  a.input_ones = ones(cur_in_);
  a.state_toggles = hamming(prev_st_, cur_st_);
  std::swap(prev_in_, cur_in_);
  std::swap(prev_st_, cur_st_);
  return a;
}

double analytical_leakage_watts(std::size_t gate_count,
                                const AnalyticalLeakageParams& p) {
  const double length_scale = 250.0 / p.channel_length_nm;
  const double temp_scale = std::exp2((p.temperature_k - 300.0) / 30.0);
  return static_cast<double>(gate_count) * p.nw_per_gate * 1e-9 *
         length_scale * temp_scale;
}

Joules AnalyticalUnitModel::predict(const ReactionActivity& a) const {
  const double e = coeff[0] + coeff[1] * a.input_toggles +
                   coeff[2] * a.input_ones + coeff[3] * a.state_toggles;
  return e > 0.0 ? e : 0.0;
}

const AnalyticalUnitModel* AnalyticalModel::find(cfsm::CfsmId task) const {
  for (const AnalyticalUnitModel& u : units)
    if (u.task == task) return &u;
  return nullptr;
}

void CalibrationAccumulator::add(const ReactionActivity& a, Joules energy) {
  const double x[kAnalyticalTerms] = {1.0, a.input_toggles, a.input_ones,
                                      a.state_toggles};
  for (std::size_t i = 0; i < kAnalyticalTerms; ++i) {
    for (std::size_t j = 0; j < kAnalyticalTerms; ++j)
      xtx_[i][j] += x[i] * x[j];
    xty_[i] += x[i] * energy;
  }
  yty_ += energy * energy;
  ++n_;
}

AnalyticalUnitModel CalibrationAccumulator::fit(cfsm::CfsmId task) const {
  AnalyticalUnitModel m;
  m.task = task;
  m.calibration_vectors = static_cast<std::uint32_t>(n_);
  if (n_ == 0) return m;

  // Ridge-damped normal equations. The damping is a fixed fraction of the
  // largest diagonal entry, so constant features (a unit whose inputs never
  // vary makes the toggle columns collinear with the intercept) keep the
  // system solvable without perturbing well-conditioned fits measurably.
  double a[kAnalyticalTerms][kAnalyticalTerms];
  double b[kAnalyticalTerms];
  double max_diag = 0.0;
  for (std::size_t i = 0; i < kAnalyticalTerms; ++i)
    max_diag = std::max(max_diag, xtx_[i][i]);
  const double ridge = max_diag > 0.0 ? 1e-9 * max_diag : 1e-30;
  for (std::size_t i = 0; i < kAnalyticalTerms; ++i) {
    for (std::size_t j = 0; j < kAnalyticalTerms; ++j) a[i][j] = xtx_[i][j];
    a[i][i] += ridge;
    b[i] = xty_[i];
  }

  // Gaussian elimination with partial pivoting — fixed-size, branch order
  // deterministic.
  std::size_t perm[kAnalyticalTerms] = {0, 1, 2, 3};
  for (std::size_t col = 0; col < kAnalyticalTerms; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < kAnalyticalTerms; ++r)
      if (std::fabs(a[perm[r]][col]) > std::fabs(a[perm[piv]][col])) piv = r;
    std::swap(perm[col], perm[piv]);
    const double d = a[perm[col]][col];
    if (d == 0.0) continue;  // ridge makes this unreachable; stay safe
    for (std::size_t r = col + 1; r < kAnalyticalTerms; ++r) {
      const double f = a[perm[r]][col] / d;
      if (f == 0.0) continue;
      for (std::size_t j = col; j < kAnalyticalTerms; ++j)
        a[perm[r]][j] -= f * a[perm[col]][j];
      b[perm[r]] -= f * b[perm[col]];
    }
  }
  for (std::size_t col = kAnalyticalTerms; col-- > 0;) {
    double s = b[perm[col]];
    for (std::size_t j = col + 1; j < kAnalyticalTerms; ++j)
      s -= a[perm[col]][j] * m.coeff[j];
    const double d = a[perm[col]][col];
    m.coeff[col] = d != 0.0 ? s / d : 0.0;
  }

  // RMS residual from the accumulated moments:
  //   ||y − Xc||² = yᵗy − 2cᵗXᵗy + cᵗ(XᵗX)c.
  double quad = 0.0, cross = 0.0;
  for (std::size_t i = 0; i < kAnalyticalTerms; ++i) {
    cross += m.coeff[i] * xty_[i];
    for (std::size_t j = 0; j < kAnalyticalTerms; ++j)
      quad += m.coeff[i] * xtx_[i][j] * m.coeff[j];
  }
  const double sse = yty_ - 2.0 * cross + quad;
  m.residual_rms_j = sse > 0.0 ? std::sqrt(sse / static_cast<double>(n_)) : 0.0;
  return m;
}

CalibrationAccumulator::Raw CalibrationAccumulator::raw() const {
  Raw r;
  for (std::size_t i = 0; i < kAnalyticalTerms; ++i)
    for (std::size_t j = 0; j < kAnalyticalTerms; ++j)
      r.xtx[i * kAnalyticalTerms + j] = xtx_[i][j];
  for (std::size_t i = 0; i < kAnalyticalTerms; ++i) r.xty[i] = xty_[i];
  r.yty = yty_;
  r.n = n_;
  return r;
}

CalibrationAccumulator CalibrationAccumulator::from_raw(const Raw& r) {
  CalibrationAccumulator acc;
  for (std::size_t i = 0; i < kAnalyticalTerms; ++i)
    for (std::size_t j = 0; j < kAnalyticalTerms; ++j)
      acc.xtx_[i][j] = r.xtx[i * kAnalyticalTerms + j];
  for (std::size_t i = 0; i < kAnalyticalTerms; ++i) acc.xty_[i] = r.xty[i];
  acc.yty_ = r.yty;
  acc.n_ = static_cast<std::size_t>(r.n);
  return acc;
}

AnalyticalUnitModel calibrate_analytical(
    cfsm::CfsmId task, const std::vector<CalibrationSample>& samples) {
  CalibrationAccumulator acc;
  for (const CalibrationSample& s : samples) acc.add(s.activity, s.energy);
  return acc.fit(task);
}

}  // namespace socpower::hw
