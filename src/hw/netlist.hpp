// Gate-level netlist for the hardware partition.
//
// The paper's hardware power estimator is a modified SIS power simulator:
// simulate the gate-level netlist for a sequence of input vectors and report
// energy cycle by cycle, computed from weighted switching activity. This
// module provides the netlist representation; gatesim.hpp the simulator.
//
// Primitive cells: INV/BUF, 2-input AND/OR/NAND/NOR/XOR/XNOR, MUX2 and DFF.
// Each net carries an effective capacitance (cell output + wire per fanout);
// a toggle on a net costs 1/2 * Ceff * Vdd^2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace socpower::hw {

using NetId = std::int32_t;
inline constexpr NetId kNoNet = -1;

enum class GateType : std::uint8_t {
  kInv, kBuf,
  kAnd2, kOr2, kNand2, kNor2, kXor2, kXnor2,
  kMux2,  // in0 = a (sel == 0), in1 = b (sel == 1), in2 = sel
  kGateTypeCount,
};

inline constexpr std::size_t kNumGateTypes =
    static_cast<std::size_t>(GateType::kGateTypeCount);

[[nodiscard]] const char* gate_type_name(GateType t);
[[nodiscard]] int gate_arity(GateType t);

// -- shared gate-semantics kernel --------------------------------------------
// One truth-function definition drives every evaluation path: the scalar
// event-driven step(), the reset-time settle, and the 64-lane bit-parallel
// sweep. `GateWord` maps the boolean connectives onto the word type — `bool`
// evaluates one pattern, `std::uint64_t` evaluates 64 independent stimulus
// lanes per call (bit l of every operand belongs to pattern lane l). Keeping
// the switch in one template guarantees the packed path cannot drift from
// scalar semantics: there is no second copy to get out of sync.
template <typename W>
struct GateWord;

template <>
struct GateWord<bool> {
  static constexpr bool zero() { return false; }
  static constexpr bool not_(bool a) { return !a; }
  static constexpr bool and_(bool a, bool b) { return a && b; }
  static constexpr bool or_(bool a, bool b) { return a || b; }
  static constexpr bool xor_(bool a, bool b) { return a != b; }
};

template <>
struct GateWord<std::uint64_t> {
  static constexpr std::uint64_t zero() { return 0; }
  static constexpr std::uint64_t not_(std::uint64_t a) { return ~a; }
  static constexpr std::uint64_t and_(std::uint64_t a, std::uint64_t b) {
    return a & b;
  }
  static constexpr std::uint64_t or_(std::uint64_t a, std::uint64_t b) {
    return a | b;
  }
  static constexpr std::uint64_t xor_(std::uint64_t a, std::uint64_t b) {
    return a ^ b;
  }
};

/// Combinational function of the cell over word type W (bool: one pattern,
/// uint64_t: 64 lanes at once). MUX2 lowers to (sel & b) | (~sel & a), which
/// for bool is exactly `c ? b : a`.
template <typename W>
[[nodiscard]] constexpr W eval_gate_w(GateType t, W a, W b, W c) {
  using G = GateWord<W>;
  switch (t) {
    case GateType::kInv: return G::not_(a);
    case GateType::kBuf: return a;
    case GateType::kAnd2: return G::and_(a, b);
    case GateType::kOr2: return G::or_(a, b);
    case GateType::kNand2: return G::not_(G::and_(a, b));
    case GateType::kNor2: return G::not_(G::or_(a, b));
    case GateType::kXor2: return G::xor_(a, b);
    case GateType::kXnor2: return G::not_(G::xor_(a, b));
    case GateType::kMux2: return G::or_(G::and_(c, b), G::and_(G::not_(c), a));
    case GateType::kGateTypeCount: break;
  }
  return G::zero();
}

/// Combinational function of the cell (scalar convenience wrapper).
[[nodiscard]] constexpr bool eval_gate(GateType t, bool a, bool b, bool c) {
  return eval_gate_w<bool>(t, a, b, c);
}

struct Gate {
  GateType type = GateType::kBuf;
  NetId out = kNoNet;
  NetId in[3] = {kNoNet, kNoNet, kNoNet};
};

struct Dff {
  NetId d = kNoNet;
  NetId q = kNoNet;
  bool init = false;
};

/// Technology parameters (0.25um-class defaults). Capacitances in farads.
struct TechParams {
  double cell_output_cap_f[kNumGateTypes] = {};
  double dff_output_cap_f = 28e-15;
  double wire_cap_per_fanout_f = 6e-15;
  double input_net_cap_f = 12e-15;
  /// Clock network charge per DFF per cycle (clock buffers + local wire).
  double clock_cap_per_dff_f = 14e-15;

  static TechParams generic_250nm();
};

class Netlist {
 public:
  Netlist();

  // -- construction ---------------------------------------------------------
  NetId add_net();
  /// Constant nets (never toggle, cost nothing).
  [[nodiscard]] NetId const0() const { return const0_; }
  [[nodiscard]] NetId const1() const { return const1_; }

  NetId add_primary_input(std::string name);
  void mark_output(NetId n, std::string name);

  /// Adds a gate; returns its (new) output net.
  NetId add_gate(GateType t, NetId a, NetId b = kNoNet, NetId c = kNoNet);
  /// Adds a gate driving an existing undriven net (created with add_net()).
  /// This is how forward references are built: create the net, consume it,
  /// then attach its driver. Combinational feedback loops become expressible
  /// here, which is exactly why GateSim refuses to simulate a netlist whose
  /// levelization fails.
  void add_gate_driving(NetId out, GateType t, NetId a, NetId b = kNoNet,
                        NetId c = kNoNet);
  /// Adds a flip-flop whose output is a fresh net; the D input may be
  /// connected later with connect_dff_d (registers feeding back on logic
  /// computed from their own outputs).
  NetId add_dff(bool init = false);
  void connect_dff_d(NetId q, NetId d);

  // -- introspection --------------------------------------------------------
  [[nodiscard]] std::size_t net_count() const { return n_nets_; }
  [[nodiscard]] std::size_t gate_count() const { return gates_.size(); }
  [[nodiscard]] std::size_t dff_count() const { return dffs_.size(); }
  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  [[nodiscard]] const std::vector<Dff>& dffs() const { return dffs_; }
  [[nodiscard]] const std::vector<NetId>& primary_inputs() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<std::pair<NetId, std::string>>& outputs()
      const {
    return outputs_;
  }
  [[nodiscard]] std::size_t fanout(NetId n) const;
  /// Index into dffs() of the flip-flop driving net `q`, or -1 if `q` is not
  /// a DFF output. Linear scan — meant for construction-time mapping (e.g.
  /// building a register-lane seeding table), not for hot paths.
  [[nodiscard]] int dff_index_of(NetId q) const;

  /// Gates in topological (level) order; empty + error message if the
  /// combinational part has a cycle.
  [[nodiscard]] std::vector<std::size_t> levelize(std::string* error) const;

  /// Effective capacitance of a net under `tech`.
  [[nodiscard]] double net_capacitance(NetId n, const TechParams& tech) const;

  /// Sanity checks (every gate input driven, every DFF D connected, no
  /// combinational cycles). Empty string on success.
  [[nodiscard]] std::string validate() const;

 private:
  std::size_t n_nets_ = 0;
  NetId const0_ = kNoNet;
  NetId const1_ = kNoNet;
  std::vector<Gate> gates_;
  std::vector<Dff> dffs_;
  std::vector<NetId> inputs_;
  std::vector<std::pair<NetId, std::string>> outputs_;
  std::vector<std::int32_t> driver_gate_;  // net -> gate index, -2 dff, -3 PI/const, -1 none
  std::vector<std::uint32_t> fanout_;
};

}  // namespace socpower::hw
