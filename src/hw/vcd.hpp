// VCD (Value Change Dump) writer for gate-level traces.
//
// Lets the synthesized netlists be inspected in standard waveform viewers
// (GTKWave etc.): attach a VcdRecorder to a GateSim, step the simulation,
// and serialize. Only marked output nets and DFF outputs are recorded by
// default; arbitrary nets can be added with watch().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/gatesim.hpp"
#include "hw/netlist.hpp"

namespace socpower::hw {

class VcdRecorder {
 public:
  /// Watches all marked outputs and all DFF Q nets of `sim`'s netlist.
  explicit VcdRecorder(const GateSim* sim);

  /// Additionally record `net` under `name`. Call before the first sample().
  void watch(NetId net, std::string name);

  /// Capture the current values as the state at time `t` (typically called
  /// once after every step()). Times must not decrease.
  void sample(std::uint64_t t);

  /// Serialize the recording as a VCD document.
  [[nodiscard]] std::string render(const std::string& module_name = "soc",
                                   const std::string& timescale = "1ns") const;

  [[nodiscard]] std::size_t signal_count() const { return signals_.size(); }
  [[nodiscard]] std::size_t sample_count() const { return times_.size(); }

 private:
  struct Signal {
    NetId net = kNoNet;
    std::string name;
  };

  /// Compact VCD identifier for signal index `i` (printable ASCII 33..126).
  [[nodiscard]] static std::string id_for(std::size_t i);

  const GateSim* sim_;
  std::vector<Signal> signals_;
  std::vector<std::uint64_t> times_;
  std::vector<std::vector<std::uint8_t>> values_;  // per sample, per signal
};

}  // namespace socpower::hw
