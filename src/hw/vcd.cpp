#include "hw/vcd.hpp"

#include <cassert>

namespace socpower::hw {

VcdRecorder::VcdRecorder(const GateSim* sim) : sim_(sim) {
  const Netlist& nl = sim_->netlist();
  for (const auto& [net, name] : nl.outputs()) signals_.push_back({net, name});
  std::size_t ff = 0;
  for (const Dff& d : nl.dffs())
    signals_.push_back({d.q, "ff" + std::to_string(ff++)});
}

void VcdRecorder::watch(NetId net, std::string name) {
  assert(times_.empty() && "watch() must precede the first sample()");
  signals_.push_back({net, std::move(name)});
}

void VcdRecorder::sample(std::uint64_t t) {
  assert(times_.empty() || t >= times_.back());
  times_.push_back(t);
  std::vector<std::uint8_t> row(signals_.size());
  for (std::size_t i = 0; i < signals_.size(); ++i)
    row[i] = sim_->net_value(signals_[i].net) ? 1 : 0;
  values_.push_back(std::move(row));
}

std::string VcdRecorder::id_for(std::size_t i) {
  // Base-94 over the printable identifier alphabet.
  std::string id;
  do {
    id += static_cast<char>(33 + i % 94);
    i /= 94;
  } while (i > 0);
  return id;
}

std::string VcdRecorder::render(const std::string& module_name,
                                const std::string& timescale) const {
  std::string out;
  out += "$date socpower $end\n";
  out += "$version socpower gate-level trace $end\n";
  out += "$timescale " + timescale + " $end\n";
  out += "$scope module " + module_name + " $end\n";
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    // Sanitize: VCD identifiers-in-names with spaces confuse viewers.
    std::string name = signals_[i].name;
    for (char& c : name)
      if (c == ' ') c = '_';
    out += "$var wire 1 " + id_for(i) + " " + name + " $end\n";
  }
  out += "$upscope $end\n$enddefinitions $end\n";

  std::vector<std::uint8_t> last(signals_.size(), 2);  // 2 = undefined
  for (std::size_t s = 0; s < times_.size(); ++s) {
    std::string changes;
    for (std::size_t i = 0; i < signals_.size(); ++i) {
      if (values_[s][i] != last[i]) {
        changes += values_[s][i] ? '1' : '0';
        changes += id_for(i);
        changes += '\n';
        last[i] = values_[s][i];
      }
    }
    if (!changes.empty() || s == 0) {
      out += "#" + std::to_string(times_[s]) + "\n";
      out += changes;
    }
  }
  return out;
}

}  // namespace socpower::hw
