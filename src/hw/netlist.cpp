#include "hw/netlist.hpp"

#include <cassert>

namespace socpower::hw {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::kInv: return "INV";
    case GateType::kBuf: return "BUF";
    case GateType::kAnd2: return "AND2";
    case GateType::kOr2: return "OR2";
    case GateType::kNand2: return "NAND2";
    case GateType::kNor2: return "NOR2";
    case GateType::kXor2: return "XOR2";
    case GateType::kXnor2: return "XNOR2";
    case GateType::kMux2: return "MUX2";
    case GateType::kGateTypeCount: break;
  }
  return "?";
}

int gate_arity(GateType t) {
  switch (t) {
    case GateType::kInv:
    case GateType::kBuf:
      return 1;
    case GateType::kMux2:
      return 3;
    default:
      return 2;
  }
}

TechParams TechParams::generic_250nm() {
  TechParams t;
  auto set = [&t](GateType g, double ff) {
    t.cell_output_cap_f[static_cast<std::size_t>(g)] = ff * 1e-15;
  };
  set(GateType::kInv, 8.0);
  set(GateType::kBuf, 10.0);
  set(GateType::kAnd2, 14.0);
  set(GateType::kOr2, 14.0);
  set(GateType::kNand2, 11.0);
  set(GateType::kNor2, 11.0);
  set(GateType::kXor2, 19.0);
  set(GateType::kXnor2, 19.0);
  set(GateType::kMux2, 17.0);
  return t;
}

Netlist::Netlist() {
  const0_ = add_net();
  driver_gate_[static_cast<std::size_t>(const0_)] = -3;
  const1_ = add_net();
  driver_gate_[static_cast<std::size_t>(const1_)] = -3;
}

NetId Netlist::add_net() {
  driver_gate_.push_back(-1);
  fanout_.push_back(0);
  return static_cast<NetId>(n_nets_++);
}

NetId Netlist::add_primary_input(std::string name) {
  (void)name;  // names retained only for outputs; PIs are positional
  const NetId n = add_net();
  driver_gate_[static_cast<std::size_t>(n)] = -3;
  inputs_.push_back(n);
  return n;
}

void Netlist::mark_output(NetId n, std::string name) {
  assert(n >= 0 && static_cast<std::size_t>(n) < n_nets_);
  outputs_.emplace_back(n, std::move(name));
}

NetId Netlist::add_gate(GateType t, NetId a, NetId b, NetId c) {
  const NetId out = add_net();
  add_gate_driving(out, t, a, b, c);
  return out;
}

void Netlist::add_gate_driving(NetId out, GateType t, NetId a, NetId b,
                               NetId c) {
  const int arity = gate_arity(t);
  assert(out >= 0 && static_cast<std::size_t>(out) < n_nets_);
  assert(driver_gate_[static_cast<std::size_t>(out)] == -1 &&
         "net already has a driver");
  assert(a != kNoNet);
  assert((arity < 2) == (b == kNoNet));
  assert((arity < 3) == (c == kNoNet));
  Gate g;
  g.type = t;
  g.out = out;
  g.in[0] = a;
  g.in[1] = b;
  g.in[2] = c;
  gates_.push_back(g);
  driver_gate_[static_cast<std::size_t>(out)] =
      static_cast<std::int32_t>(gates_.size() - 1);
  for (int i = 0; i < arity; ++i) ++fanout_[static_cast<std::size_t>(g.in[i])];
}

NetId Netlist::add_dff(bool init) {
  const NetId q = add_net();
  driver_gate_[static_cast<std::size_t>(q)] = -2;
  dffs_.push_back({kNoNet, q, init});
  return q;
}

void Netlist::connect_dff_d(NetId q, NetId d) {
  for (auto& ff : dffs_) {
    if (ff.q == q) {
      assert(ff.d == kNoNet && "DFF D already connected");
      ff.d = d;
      ++fanout_[static_cast<std::size_t>(d)];
      return;
    }
  }
  assert(false && "no DFF with this Q net");
}

std::size_t Netlist::fanout(NetId n) const {
  assert(n >= 0 && static_cast<std::size_t>(n) < n_nets_);
  return fanout_[static_cast<std::size_t>(n)];
}

int Netlist::dff_index_of(NetId q) const {
  if (q < 0 || static_cast<std::size_t>(q) >= n_nets_ ||
      driver_gate_[static_cast<std::size_t>(q)] != -2)
    return -1;
  for (std::size_t fi = 0; fi < dffs_.size(); ++fi)
    if (dffs_[fi].q == q) return static_cast<int>(fi);
  return -1;
}

std::vector<std::size_t> Netlist::levelize(std::string* error) const {
  // Kahn's algorithm over gate->gate dependencies. PI, constant and DFF Q
  // nets are sources.
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  std::vector<std::vector<std::size_t>> consumers(n_nets_);
  for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
    const Gate& g = gates_[gi];
    for (int i = 0; i < gate_arity(g.type); ++i) {
      const auto drv = driver_gate_[static_cast<std::size_t>(g.in[i])];
      if (drv >= 0) {
        ++pending[gi];
        consumers[static_cast<std::size_t>(g.in[i])].push_back(gi);
      }
    }
  }
  std::vector<std::size_t> order;
  order.reserve(gates_.size());
  for (std::size_t gi = 0; gi < gates_.size(); ++gi)
    if (pending[gi] == 0) order.push_back(gi);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const Gate& g = gates_[order[head]];
    for (const std::size_t ci : consumers[static_cast<std::size_t>(g.out)])
      if (--pending[ci] == 0) order.push_back(ci);
  }
  if (order.size() != gates_.size()) {
    if (error) {
      // Name one gate stuck on the cycle so the failing netlist is
      // identifiable from the abort message alone.
      *error = "combinational cycle in netlist";
      for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
        if (pending[gi] != 0) {
          *error += " (through gate " + std::to_string(gi) + " " +
                    gate_type_name(gates_[gi].type) + " -> net " +
                    std::to_string(gates_[gi].out) + ")";
          break;
        }
      }
    }
    return {};
  }
  if (error) error->clear();
  return order;
}

double Netlist::net_capacitance(NetId n, const TechParams& tech) const {
  assert(n >= 0 && static_cast<std::size_t>(n) < n_nets_);
  if (n == const0_ || n == const1_) return 0.0;
  const auto drv = driver_gate_[static_cast<std::size_t>(n)];
  double cap = tech.wire_cap_per_fanout_f *
               static_cast<double>(fanout_[static_cast<std::size_t>(n)]);
  if (drv >= 0)
    cap += tech.cell_output_cap_f[static_cast<std::size_t>(
        gates_[static_cast<std::size_t>(drv)].type)];
  else if (drv == -2)
    cap += tech.dff_output_cap_f;
  else
    cap += tech.input_net_cap_f;
  return cap;
}

std::string Netlist::validate() const {
  for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
    const Gate& g = gates_[gi];
    for (int i = 0; i < gate_arity(g.type); ++i) {
      const NetId in = g.in[i];
      if (in < 0 || static_cast<std::size_t>(in) >= n_nets_)
        return "gate " + std::to_string(gi) + " input " + std::to_string(i) +
               " is not a valid net";
      if (driver_gate_[static_cast<std::size_t>(in)] == -1)
        return "gate " + std::to_string(gi) + " input net " +
               std::to_string(in) + " has no driver";
    }
  }
  for (std::size_t fi = 0; fi < dffs_.size(); ++fi)
    if (dffs_[fi].d == kNoNet)
      return "DFF " + std::to_string(fi) + " has unconnected D";
  std::string err;
  (void)levelize(&err);
  return err;
}

}  // namespace socpower::hw
