#include "hw/gatesim.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "telemetry/registry.hpp"

namespace socpower::hw {

GateSim::GateSim(const Netlist* netlist, TechParams tech,
                 ElectricalParams params)
    : netlist_(netlist), tech_(tech), params_(params) {
  std::string err;
  topo_ = netlist_->levelize(&err);
  if (!err.empty()) {
    // Checked in every build type: under NDEBUG a cyclic netlist would pass
    // the old assert and then silently simulate garbage (the level sweep
    // never converges to the fixpoint the energy accounting assumes).
    std::fprintf(stderr, "GateSim: %s — refusing to simulate\n", err.c_str());
    std::abort();
  }

  // Topological levels and per-net consumer lists for event-driven
  // evaluation (a la SIS: only gates whose inputs changed are re-evaluated).
  // Consumers are stored CSR-flattened (offsets + one flat gate-index
  // array): the step() hot loop walks one contiguous slice per toggled net
  // instead of chasing per-net vector headers.
  const auto& gates = netlist_->gates();
  gate_level_.assign(gates.size(), 0);
  std::vector<int> driver(netlist_->net_count(), -1);
  for (std::size_t gi = 0; gi < gates.size(); ++gi)
    driver[static_cast<std::size_t>(gates[gi].out)] = static_cast<int>(gi);
  consumer_offsets_.assign(netlist_->net_count() + 1, 0);
  for (const Gate& g : gates)
    for (int i = 0; i < gate_arity(g.type); ++i)
      ++consumer_offsets_[static_cast<std::size_t>(g.in[i]) + 1];
  for (std::size_t n = 1; n < consumer_offsets_.size(); ++n)
    consumer_offsets_[n] += consumer_offsets_[n - 1];
  consumer_gates_.resize(consumer_offsets_.back());
  {
    std::vector<std::uint32_t> fill(consumer_offsets_.begin(),
                                    consumer_offsets_.end() - 1);
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
      const Gate& g = gates[gi];
      for (int i = 0; i < gate_arity(g.type); ++i)
        consumer_gates_[fill[static_cast<std::size_t>(g.in[i])]++] =
            static_cast<std::uint32_t>(gi);
    }
  }
  for (const std::size_t gi : topo_) {
    const Gate& g = gates[gi];
    unsigned lvl = 0;
    for (int i = 0; i < gate_arity(g.type); ++i) {
      const int drv = driver[static_cast<std::size_t>(g.in[i])];
      if (drv >= 0)
        lvl = std::max(lvl, gate_level_[static_cast<std::size_t>(drv)] + 1);
    }
    gate_level_[gi] = lvl;
    num_levels_ = std::max(num_levels_, lvl + 1);
  }
  level_dirty_.assign(num_levels_, {});
  gate_dirty_.assign(gates.size(), 0);

  net_cap_.resize(netlist_->net_count());
  net_energy_.resize(netlist_->net_count());
  for (std::size_t n = 0; n < netlist_->net_count(); ++n) {
    net_cap_[n] = netlist_->net_capacitance(static_cast<NetId>(n), tech_);
    net_energy_[n] = params_.switch_energy(net_cap_[n]);
  }
  value_.assign(netlist_->net_count(), 0);
  input_next_.assign(netlist_->primary_inputs().size(), 0);
  toggled_.reserve(netlist_->net_count());
  latch_next_.assign(netlist_->dffs().size(), 0);
  clock_energy_per_cycle_ =
      params_.switch_energy(tech_.clock_cap_per_dff_f) *
      static_cast<double>(netlist_->dff_count());
  reset();
}

void GateSim::set_input(std::size_t input_index, bool value) {
  // Checked in every build type (the PowerTrace::record convention): a bad
  // staging index must become a counted drop, not an out-of-bounds write.
  if (input_index >= input_next_.size()) {
    ++dropped_input_writes_;
    return;
  }
  input_next_[input_index] = value ? 1 : 0;
}

void GateSim::set_input_word(std::size_t first_input_index,
                             std::uint32_t value, unsigned width) {
  for (unsigned b = 0; b < width; ++b)
    set_input(first_input_index + b, (value >> b) & 1u);
}

void GateSim::mark_consumers_dirty(NetId net) {
  const std::uint32_t begin = consumer_offsets_[static_cast<std::size_t>(net)];
  const std::uint32_t end = consumer_offsets_[static_cast<std::size_t>(net) + 1];
  for (std::uint32_t ci = begin; ci < end; ++ci) {
    const std::uint32_t gi = consumer_gates_[ci];
    if (!gate_dirty_[gi]) {
      gate_dirty_[gi] = 1;
      level_dirty_[gate_level_[gi]].push_back(gi);
    }
  }
}

CycleResult GateSim::step() {
  // Commits only record toggled nets; the switching energy is accumulated in
  // one pass at the end of the step from the cached per-net switch energies
  // (same nets, same order, so the reported energy is bit-identical to the
  // old multiply-per-commit form).
  toggled_.clear();
  auto commit = [&](NetId net, bool v) {
    auto& cur = value_[static_cast<std::size_t>(net)];
    const std::uint8_t nv = v ? 1 : 0;
    if (cur != nv) {
      cur = nv;
      toggled_.push_back(net);
      mark_consumers_dirty(net);
    }
  };

  // Apply primary inputs.
  const auto& pis = netlist_->primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i)
    commit(pis[i], input_next_[i] != 0);

  // Event-driven combinational propagation, level by level. Gates marked
  // dirty by a commit always sit at a strictly higher level, so a single
  // sweep suffices.
  const auto& gates = netlist_->gates();
  for (unsigned lvl = 0; lvl < num_levels_; ++lvl) {
    auto& work = level_dirty_[lvl];
    for (std::size_t wi = 0; wi < work.size(); ++wi) {
      const std::size_t gi = work[wi];
      gate_dirty_[gi] = 0;
      const Gate& g = gates[gi];
      const bool a = value_[static_cast<std::size_t>(g.in[0])] != 0;
      const bool b = g.in[1] == kNoNet
                         ? false
                         : value_[static_cast<std::size_t>(g.in[1])] != 0;
      const bool c = g.in[2] == kNoNet
                         ? false
                         : value_[static_cast<std::size_t>(g.in[2])] != 0;
      ++gates_evaluated_;
      commit(g.out, eval_gate(g.type, a, b, c));
    }
    work.clear();
  }

  // Clock edge: latch DFFs. Q toggles are billed this cycle; the dirty marks
  // they leave are consumed by the next step's sweep. D values are snapshot
  // into a member buffer first (commits must not observe each other within
  // the same edge).
  const auto& dffs = netlist_->dffs();
  latch_begin_ = toggled_.size();
  for (std::size_t i = 0; i < dffs.size(); ++i)
    latch_next_[i] = value_[static_cast<std::size_t>(dffs[i].d)];
  for (std::size_t i = 0; i < dffs.size(); ++i)
    commit(dffs[i].q, latch_next_[i] != 0);

  CycleResult r;
  r.toggles = toggled_.size();
  for (const NetId net : toggled_)
    r.energy += net_energy_[static_cast<std::size_t>(net)];
  r.energy += clock_energy_per_cycle_;
  ++cycles_;
  total_energy_ += r.energy;
  static telemetry::Counter& steps =
      telemetry::registry().counter("gatesim.steps");
  static telemetry::Counter& toggles =
      telemetry::registry().counter("gatesim.toggles");
  steps.add();
  toggles.add(r.toggles);
  return r;
}

CycleResult GateSim::apply_cached_reaction(std::span<const NetId> toggles,
                                           std::size_t latch_begin,
                                           Joules energy) {
  // Restore the exact state a real step() from here would have produced:
  //  1. Drain every pending dirty mark. A real step() consumes them all in
  //     its level sweep, and the only marks it leaves behind are those of
  //     its own clock-edge Q toggles.
  //  2. Flip the memoized toggled nets (a toggle is its own inverse, so a
  //     flip lands on exactly the values the replayed step committed).
  //  3. Re-mark the consumers of the memoized latch-phase toggles, in stored
  //     commit order — the per-level work lists end up element-for-element
  //     identical to the post-step() lists, so a subsequent miss evaluates
  //     gates (and therefore commits toggles, and therefore sums energies)
  //     in exactly the same order as the uncached run.
  // Energy is the double the miss computed; counters advance as a real
  // step() would (gates_evaluated_ intentionally does not — the skipped
  // evaluations are the win, and the cache reports them separately).
  for (auto& work : level_dirty_) {
    for (const std::size_t gi : work) gate_dirty_[gi] = 0;
    work.clear();
  }
  for (const NetId net : toggles) value_[static_cast<std::size_t>(net)] ^= 1;
  for (std::size_t i = latch_begin; i < toggles.size(); ++i)
    mark_consumers_dirty(toggles[i]);
  CycleResult r;
  r.toggles = toggles.size();
  r.energy = energy;
  ++cycles_;
  total_energy_ += r.energy;
  static telemetry::Counter& steps =
      telemetry::registry().counter("gatesim.steps");
  static telemetry::Counter& tgl =
      telemetry::registry().counter("gatesim.toggles");
  steps.add();
  tgl.add(r.toggles);
  return r;
}

bool GateSim::net_value(NetId n) const {
  assert(n >= 0 && static_cast<std::size_t>(n) < value_.size());
  return value_[static_cast<std::size_t>(n)] != 0;
}

std::uint32_t GateSim::read_word(std::size_t first_output_index,
                                 unsigned width) const {
  // Clamped in every build type: out-of-range output bits read as 0 instead
  // of indexing past the output table under NDEBUG.
  const auto& outs = netlist_->outputs();
  std::uint32_t v = 0;
  for (unsigned b = 0; b < width; ++b) {
    if (first_output_index + b >= outs.size()) break;
    if (net_value(outs[first_output_index + b].first)) v |= 1u << b;
  }
  return v;
}

void GateSim::force_net(NetId n, bool value) {
  assert(n >= 0 && static_cast<std::size_t>(n) < value_.size());
  auto& cur = value_[static_cast<std::size_t>(n)];
  const std::uint8_t nv = value ? 1 : 0;
  if (cur != nv) {
    cur = nv;
    forced_ = true;
    mark_consumers_dirty(n);
  }
}

void GateSim::full_settle() {
  const auto& gates = netlist_->gates();
  for (const std::size_t gi : topo_) {
    const Gate& g = gates[gi];
    const bool a = value_[static_cast<std::size_t>(g.in[0])] != 0;
    const bool b = g.in[1] == kNoNet
                       ? false
                       : value_[static_cast<std::size_t>(g.in[1])] != 0;
    const bool c = g.in[2] == kNoNet
                       ? false
                       : value_[static_cast<std::size_t>(g.in[2])] != 0;
    value_[static_cast<std::size_t>(g.out)] =
        eval_gate(g.type, a, b, c) ? 1 : 0;
  }
}

void GateSim::reset() {
  ++resets_;
  forced_ = false;  // reset rebuilds a canonical state; prior forces are moot
  value_.assign(netlist_->net_count(), 0);
  value_[static_cast<std::size_t>(netlist_->const1())] = 1;
  for (const Dff& ff : netlist_->dffs())
    value_[static_cast<std::size_t>(ff.q)] = ff.init ? 1 : 0;
  // Settle combinational logic so the first step() doesn't bill the
  // power-on transient as switching activity.
  full_settle();
  for (auto& w : level_dirty_) w.clear();
  gate_dirty_.assign(gate_dirty_.size(), 0);
  // const1 consumers must still be (re)evaluated once after a reset if any
  // input changes; the settle above already fixed their values.
}

}  // namespace socpower::hw
