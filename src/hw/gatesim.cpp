#include "hw/gatesim.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "telemetry/registry.hpp"

namespace socpower::hw {

GateSim::GateSim(const Netlist* netlist, TechParams tech,
                 ElectricalParams params)
    : netlist_(netlist), tech_(tech), params_(params) {
  std::string err;
  topo_ = netlist_->levelize(&err);
  if (!err.empty()) {
    // Checked in every build type: under NDEBUG a cyclic netlist would pass
    // the old assert and then silently simulate garbage (the level sweep
    // never converges to the fixpoint the energy accounting assumes).
    std::fprintf(stderr, "GateSim: %s — refusing to simulate\n", err.c_str());
    std::abort();
  }

  // Topological levels and per-net consumer lists for event-driven
  // evaluation (a la SIS: only gates whose inputs changed are re-evaluated).
  // Consumers are stored CSR-flattened (offsets + one flat gate-index
  // array): the step() hot loop walks one contiguous slice per toggled net
  // instead of chasing per-net vector headers.
  const auto& gates = netlist_->gates();
  gate_level_.assign(gates.size(), 0);
  std::vector<int> driver(netlist_->net_count(), -1);
  for (std::size_t gi = 0; gi < gates.size(); ++gi)
    driver[static_cast<std::size_t>(gates[gi].out)] = static_cast<int>(gi);
  consumer_offsets_.assign(netlist_->net_count() + 1, 0);
  for (const Gate& g : gates)
    for (int i = 0; i < gate_arity(g.type); ++i)
      ++consumer_offsets_[static_cast<std::size_t>(g.in[i]) + 1];
  for (std::size_t n = 1; n < consumer_offsets_.size(); ++n)
    consumer_offsets_[n] += consumer_offsets_[n - 1];
  consumer_gates_.resize(consumer_offsets_.back());
  {
    std::vector<std::uint32_t> fill(consumer_offsets_.begin(),
                                    consumer_offsets_.end() - 1);
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
      const Gate& g = gates[gi];
      for (int i = 0; i < gate_arity(g.type); ++i)
        consumer_gates_[fill[static_cast<std::size_t>(g.in[i])]++] =
            static_cast<std::uint32_t>(gi);
    }
  }
  for (const std::size_t gi : topo_) {
    const Gate& g = gates[gi];
    unsigned lvl = 0;
    for (int i = 0; i < gate_arity(g.type); ++i) {
      const int drv = driver[static_cast<std::size_t>(g.in[i])];
      if (drv >= 0)
        lvl = std::max(lvl, gate_level_[static_cast<std::size_t>(drv)] + 1);
    }
    gate_level_[gi] = lvl;
    num_levels_ = std::max(num_levels_, lvl + 1);
  }
  level_dirty_.assign(num_levels_, {});
  gate_dirty_.assign(gates.size(), 0);

  net_cap_.resize(netlist_->net_count());
  net_energy_.resize(netlist_->net_count());
  for (std::size_t n = 0; n < netlist_->net_count(); ++n) {
    net_cap_[n] = netlist_->net_capacitance(static_cast<NetId>(n), tech_);
    net_energy_[n] = params_.switch_energy(net_cap_[n]);
  }
  value_.assign(netlist_->net_count(), 0);
  input_next_.assign(netlist_->primary_inputs().size(), 0);
  toggled_.reserve(netlist_->net_count());
  latch_next_.assign(netlist_->dffs().size(), 0);
  clock_energy_per_cycle_ =
      params_.switch_energy(tech_.clock_cap_per_dff_f) *
      static_cast<double>(netlist_->dff_count());
  reset();
}

void GateSim::set_input(std::size_t input_index, bool value) {
  // Checked in every build type (the PowerTrace::record convention): a bad
  // staging index must become a counted drop, not an out-of-bounds write.
  if (input_index >= input_next_.size()) {
    ++dropped_input_writes_;
    return;
  }
  input_next_[input_index] = value ? 1 : 0;
}

void GateSim::set_input_word(std::size_t first_input_index,
                             std::uint64_t value, unsigned width) {
  for (unsigned b = 0; b < width; ++b)
    set_input(first_input_index + b, (value >> b) & 1u);
}

void GateSim::mark_consumers_walk(NetId net, std::vector<std::uint8_t>& dirty,
                                  std::vector<std::vector<std::size_t>>& work) {
  const std::uint32_t begin = consumer_offsets_[static_cast<std::size_t>(net)];
  const std::uint32_t end = consumer_offsets_[static_cast<std::size_t>(net) + 1];
  for (std::uint32_t ci = begin; ci < end; ++ci) {
    const std::uint32_t gi = consumer_gates_[ci];
    if (!dirty[gi]) {
      dirty[gi] = 1;
      work[gate_level_[gi]].push_back(gi);
    }
  }
}

void GateSim::mark_consumers_dirty(NetId net) {
  mark_consumers_walk(net, gate_dirty_, level_dirty_);
}

CycleResult GateSim::step() {
  // Commits only record toggled nets; the switching energy is accumulated in
  // one pass at the end of the step from the cached per-net switch energies
  // (same nets, same order, so the reported energy is bit-identical to the
  // old multiply-per-commit form).
  toggled_.clear();
  auto commit = [&](NetId net, bool v) {
    auto& cur = value_[static_cast<std::size_t>(net)];
    const std::uint8_t nv = v ? 1 : 0;
    if (cur != nv) {
      cur = nv;
      toggled_.push_back(net);
      mark_consumers_dirty(net);
    }
  };

  // Apply primary inputs.
  const auto& pis = netlist_->primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i)
    commit(pis[i], input_next_[i] != 0);

  // Event-driven combinational propagation, level by level. Gates marked
  // dirty by a commit always sit at a strictly higher level, so a single
  // sweep suffices.
  const auto& gates = netlist_->gates();
  for (unsigned lvl = 0; lvl < num_levels_; ++lvl) {
    auto& work = level_dirty_[lvl];
    for (std::size_t wi = 0; wi < work.size(); ++wi) {
      const std::size_t gi = work[wi];
      gate_dirty_[gi] = 0;
      const Gate& g = gates[gi];
      const bool a = value_[static_cast<std::size_t>(g.in[0])] != 0;
      const bool b = g.in[1] == kNoNet
                         ? false
                         : value_[static_cast<std::size_t>(g.in[1])] != 0;
      const bool c = g.in[2] == kNoNet
                         ? false
                         : value_[static_cast<std::size_t>(g.in[2])] != 0;
      ++gates_evaluated_;
      commit(g.out, eval_gate(g.type, a, b, c));
    }
    work.clear();
  }

  // Clock edge: latch DFFs. Q toggles are billed this cycle; the dirty marks
  // they leave are consumed by the next step's sweep. D values are snapshot
  // into a member buffer first (commits must not observe each other within
  // the same edge).
  const auto& dffs = netlist_->dffs();
  latch_begin_ = toggled_.size();
  for (std::size_t i = 0; i < dffs.size(); ++i)
    latch_next_[i] = value_[static_cast<std::size_t>(dffs[i].d)];
  for (std::size_t i = 0; i < dffs.size(); ++i)
    commit(dffs[i].q, latch_next_[i] != 0);

  CycleResult r;
  r.toggles = toggled_.size();
  for (const NetId net : toggled_)
    r.energy += net_energy_[static_cast<std::size_t>(net)];
  r.energy += clock_energy_per_cycle_;
  ++cycles_;
  total_energy_ += r.energy;
  static telemetry::Counter& steps =
      telemetry::registry().counter("gatesim.steps");
  static telemetry::Counter& toggles =
      telemetry::registry().counter("gatesim.toggles");
  steps.add();
  toggles.add(r.toggles);
  return r;
}

CycleResult GateSim::apply_cached_reaction(std::span<const NetId> toggles,
                                           std::size_t latch_begin,
                                           Joules energy) {
  // Restore the exact state a real step() from here would have produced:
  //  1. Drain every pending dirty mark. A real step() consumes them all in
  //     its level sweep, and the only marks it leaves behind are those of
  //     its own clock-edge Q toggles.
  //  2. Flip the memoized toggled nets (a toggle is its own inverse, so a
  //     flip lands on exactly the values the replayed step committed).
  //  3. Re-mark the consumers of the memoized latch-phase toggles, in stored
  //     commit order — the per-level work lists end up element-for-element
  //     identical to the post-step() lists, so a subsequent miss evaluates
  //     gates (and therefore commits toggles, and therefore sums energies)
  //     in exactly the same order as the uncached run.
  // Energy is the double the miss computed; counters advance as a real
  // step() would (gates_evaluated_ intentionally does not — the skipped
  // evaluations are the win, and the cache reports them separately).
  for (auto& work : level_dirty_) {
    for (const std::size_t gi : work) gate_dirty_[gi] = 0;
    work.clear();
  }
  for (const NetId net : toggles) value_[static_cast<std::size_t>(net)] ^= 1;
  for (std::size_t i = latch_begin; i < toggles.size(); ++i)
    mark_consumers_dirty(toggles[i]);
  CycleResult r;
  r.toggles = toggles.size();
  r.energy = energy;
  ++cycles_;
  total_energy_ += r.energy;
  static telemetry::Counter& steps =
      telemetry::registry().counter("gatesim.steps");
  static telemetry::Counter& tgl =
      telemetry::registry().counter("gatesim.toggles");
  steps.add();
  tgl.add(r.toggles);
  return r;
}

bool GateSim::net_value(NetId n) const {
  assert(n >= 0 && static_cast<std::size_t>(n) < value_.size());
  return value_[static_cast<std::size_t>(n)] != 0;
}

std::uint64_t GateSim::read_word(std::size_t first_output_index,
                                 unsigned width) const {
  // Clamped in every build type: out-of-range output bits read as 0 instead
  // of indexing past the output table under NDEBUG.
  const auto& outs = netlist_->outputs();
  std::uint64_t v = 0;
  for (unsigned b = 0; b < width; ++b) {
    if (first_output_index + b >= outs.size()) break;
    if (net_value(outs[first_output_index + b].first)) v |= 1ull << b;
  }
  return v;
}

void GateSim::force_net(NetId n, bool value) {
  assert(n >= 0 && static_cast<std::size_t>(n) < value_.size());
  auto& cur = value_[static_cast<std::size_t>(n)];
  const std::uint8_t nv = value ? 1 : 0;
  if (cur != nv) {
    cur = nv;
    forced_ = true;
    mark_consumers_dirty(n);
  }
}

void GateSim::settle() {
  const auto& gates = netlist_->gates();
  for (const std::size_t gi : topo_) {
    const Gate& g = gates[gi];
    const bool a = value_[static_cast<std::size_t>(g.in[0])] != 0;
    const bool b = g.in[1] == kNoNet
                       ? false
                       : value_[static_cast<std::size_t>(g.in[1])] != 0;
    const bool c = g.in[2] == kNoNet
                       ? false
                       : value_[static_cast<std::size_t>(g.in[2])] != 0;
    value_[static_cast<std::size_t>(g.out)] =
        eval_gate(g.type, a, b, c) ? 1 : 0;
  }
}

void GateSim::reset() {
  ++resets_;
  forced_ = false;  // reset rebuilds a canonical state; prior forces are moot
  value_.assign(netlist_->net_count(), 0);
  value_[static_cast<std::size_t>(netlist_->const1())] = 1;
  for (const Dff& ff : netlist_->dffs())
    value_[static_cast<std::size_t>(ff.q)] = ff.init ? 1 : 0;
  // Settle combinational logic so the first step() doesn't bill the
  // power-on transient as switching activity.
  settle();
  for (auto& w : level_dirty_) w.clear();
  gate_dirty_.assign(gate_dirty_.size(), 0);
  // const1 consumers must still be (re)evaluated once after a reset if any
  // input changes; the settle above already fixed their values.
}

// -- bit-parallel evaluation -------------------------------------------------

namespace {
constexpr std::uint64_t lane_mask_of(unsigned n_lanes) {
  return n_lanes >= 64 ? ~0ull : (1ull << n_lanes) - 1;
}
constexpr std::uint64_t broadcast(std::uint8_t v) { return v ? ~0ull : 0ull; }
}  // namespace

void GateSim::ensure_packed_buffers() {
  if (!packed_value_.empty()) return;
  packed_value_.assign(netlist_->net_count(), 0);
  packed_toggle_.assign(netlist_->net_count(), 0);
  packed_input_.assign(netlist_->primary_inputs().size(), 0);
  packed_dff_seed_.assign(netlist_->dffs().size(), 0);
  probe_dirty_.assign(netlist_->gates().size(), 0);
  probe_work_.assign(num_levels_, {});
}

void GateSim::begin_packed_stage() {
  ensure_packed_buffers();
  const auto& pis = netlist_->primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i)
    packed_input_[i] = broadcast(input_next_[i]);
  const auto& dffs = netlist_->dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i)
    packed_dff_seed_[i] =
        broadcast(value_[static_cast<std::size_t>(dffs[i].q)]);
}

void GateSim::stage_packed_input(std::size_t input_index, unsigned lane,
                                 bool value) {
  // Same drop-and-count convention as set_input(): bad indices must never
  // become out-of-bounds writes, in any build type.
  if (input_index >= packed_input_.size() || lane >= kMaxLanes) {
    ++dropped_input_writes_;
    return;
  }
  const std::uint64_t bit = 1ull << lane;
  if (value)
    packed_input_[input_index] |= bit;
  else
    packed_input_[input_index] &= ~bit;
}

void GateSim::stage_packed_input_word(std::size_t first_input_index,
                                      std::uint64_t value, unsigned width,
                                      unsigned lane) {
  for (unsigned b = 0; b < width; ++b)
    stage_packed_input(first_input_index + b, lane, (value >> b) & 1u);
}

void GateSim::seed_packed_dff(std::size_t dff_index, unsigned lane,
                              bool value) {
  if (dff_index >= packed_dff_seed_.size() || lane >= kMaxLanes) {
    ++dropped_input_writes_;
    return;
  }
  const std::uint64_t bit = 1ull << lane;
  if (value)
    packed_dff_seed_[dff_index] |= bit;
  else
    packed_dff_seed_[dff_index] &= ~bit;
}

void GateSim::packed_seed_and_sweep(bool use_dff_seeds) {
  // Seed every lane from the scalar state, overlay the staged PI lanes (and,
  // in chain mode, the seeded register lanes), then evaluate every gate once
  // in level order with the shared word kernel — 64 pattern lanes per gate
  // evaluation.
  for (std::size_t n = 0; n < packed_value_.size(); ++n)
    packed_value_[n] = broadcast(value_[n]);
  const auto& pis = netlist_->primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i)
    packed_value_[static_cast<std::size_t>(pis[i])] = packed_input_[i];
  if (use_dff_seeds) {
    const auto& dffs = netlist_->dffs();
    for (std::size_t i = 0; i < dffs.size(); ++i)
      packed_value_[static_cast<std::size_t>(dffs[i].q)] = packed_dff_seed_[i];
  }
  const auto& gates = netlist_->gates();
  for (const std::size_t gi : topo_) {
    const Gate& g = gates[gi];
    const std::uint64_t a = packed_value_[static_cast<std::size_t>(g.in[0])];
    const std::uint64_t b =
        g.in[1] == kNoNet ? 0 : packed_value_[static_cast<std::size_t>(g.in[1])];
    const std::uint64_t c =
        g.in[2] == kNoNet ? 0 : packed_value_[static_cast<std::size_t>(g.in[2])];
    packed_value_[static_cast<std::size_t>(g.out)] =
        eval_gate_w<std::uint64_t>(g.type, a, b, c);
  }
}

void GateSim::evaluate_packed(unsigned n_lanes) {
  if (n_lanes == 0 || n_lanes > kMaxLanes) return;
  ensure_packed_buffers();
  packed_seed_and_sweep(/*use_dff_seeds=*/true);
}

CycleResult GateSim::bill_lane(unsigned lane, std::vector<std::uint8_t>& dirty,
                               std::vector<std::vector<std::size_t>>& work) {
  // Replay the scalar event-driven commit sequence for one lane, with the
  // toggle-mask bit test standing in for gate evaluation: primary inputs in
  // index order, then marked gates in work-list insertion order level by
  // level (marks propagate from toggles exactly as scalar commits mark
  // consumers), then DFF Qs in declaration order. Energy terms therefore
  // accumulate in precisely the scalar order — the property that makes
  // per-lane doubles bit-identical despite FP non-associativity.
  const std::uint64_t bit = 1ull << lane;
  CycleResult r;
  for (const NetId net : netlist_->primary_inputs()) {
    if (packed_toggle_[static_cast<std::size_t>(net)] & bit) {
      r.energy += net_energy_[static_cast<std::size_t>(net)];
      ++r.toggles;
      mark_consumers_walk(net, dirty, work);
    }
  }
  const auto& gates = netlist_->gates();
  for (unsigned lvl = 0; lvl < num_levels_; ++lvl) {
    auto& w = work[lvl];
    for (std::size_t wi = 0; wi < w.size(); ++wi) {
      const std::size_t gi = w[wi];
      dirty[gi] = 0;
      const NetId out = gates[gi].out;
      if (packed_toggle_[static_cast<std::size_t>(out)] & bit) {
        r.energy += net_energy_[static_cast<std::size_t>(out)];
        ++r.toggles;
        mark_consumers_walk(out, dirty, work);
      }
    }
    w.clear();
  }
  // Clock edge: Q toggles bill this cycle; their consumer marks outlive the
  // lane (consumed by the next lane, or left pending after the last one).
  for (const Dff& ff : netlist_->dffs()) {
    if (packed_toggle_[static_cast<std::size_t>(ff.q)] & bit) {
      r.energy += net_energy_[static_cast<std::size_t>(ff.q)];
      ++r.toggles;
      mark_consumers_walk(ff.q, dirty, work);
    }
  }
  r.energy += clock_energy_per_cycle_;
  return r;
}

bool GateSim::step_packed(unsigned n_lanes, CycleResult* per_lane) {
  if (n_lanes == 0 || n_lanes > kMaxLanes || per_lane == nullptr) return false;
  ensure_packed_buffers();
  const std::uint64_t mask = lane_mask_of(n_lanes);
  packed_seed_and_sweep(/*use_dff_seeds=*/true);

  // Verify the register seeds against the netlist's own next-state chain:
  // lane 0 must hold the current Q and lane l+1 the D lane l just computed.
  // A mismatch means the caller's (behavioral) seed source disagrees with
  // gate-level next-state — refuse, with no observable state touched, so the
  // caller's scalar fallback recomputes the truth.
  const auto& dffs = netlist_->dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const std::uint64_t d = packed_value_[static_cast<std::size_t>(dffs[i].d)];
    const std::uint64_t q = packed_value_[static_cast<std::size_t>(dffs[i].q)];
    const std::uint64_t want =
        (d << 1) | (value_[static_cast<std::size_t>(dffs[i].q)] & 1u);
    if ((q ^ want) & mask) {
      ++packed_seed_rejects_;
      return false;
    }
  }

  // Toggle masks. Combinational and PI nets compare lane l against lane l-1
  // (lane 0 against the pre-pass scalar value); Q nets toggle where the
  // newly latched D differs from the pre-edge Q of the same lane. popcount
  // gives the aggregate toggle count across lanes, later cross-checked
  // against the per-lane billing walk.
  std::uint64_t mask_toggles = 0;
  const auto& pis = netlist_->primary_inputs();
  auto chain_toggle = [&](NetId net) {
    const std::size_t n = static_cast<std::size_t>(net);
    const std::uint64_t v = packed_value_[n];
    const std::uint64_t t = (v ^ ((v << 1) | (value_[n] & 1u))) & mask;
    packed_toggle_[n] = t;
    mask_toggles += static_cast<std::uint64_t>(std::popcount(t));
  };
  for (const NetId net : pis) chain_toggle(net);
  const auto& gates = netlist_->gates();
  for (const std::size_t gi : topo_) chain_toggle(gates[gi].out);
  for (const Dff& ff : dffs) {
    const std::size_t qn = static_cast<std::size_t>(ff.q);
    const std::uint64_t t =
        (packed_value_[static_cast<std::size_t>(ff.d)] ^ packed_value_[qn]) &
        mask;
    packed_toggle_[qn] = t;
    mask_toggles += static_cast<std::uint64_t>(std::popcount(t));
  }

  // Bill each lane in the scalar commit order, against the REAL dirty
  // structures: lane 0 consumes the marks pending from before the pass, each
  // clock edge's marks feed the next lane, and the last edge's marks stay
  // pending exactly as after a scalar step.
  std::uint64_t walk_toggles = 0;
  for (unsigned l = 0; l < n_lanes; ++l) {
    per_lane[l] = bill_lane(l, gate_dirty_, level_dirty_);
    walk_toggles += per_lane[l].toggles;
    ++cycles_;
    total_energy_ += per_lane[l].energy;
  }
  assert(walk_toggles == mask_toggles &&
         "billing walk diverged from packed toggle masks");
  (void)walk_toggles;

  // Commit the final lane's state. Registers latch their last-lane D (and
  // packed_value_ mirrors it so per-lane Q reads are post-edge); staged
  // scalar inputs become the last lane's inputs, mirroring how scalar
  // stagings persist across steps.
  const unsigned last = n_lanes - 1;
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const std::uint8_t v =
        static_cast<std::uint8_t>((packed_input_[i] >> last) & 1u);
    value_[static_cast<std::size_t>(pis[i])] = v;
    input_next_[i] = v;
  }
  for (const std::size_t gi : topo_) {
    const std::size_t out = static_cast<std::size_t>(gates[gi].out);
    value_[out] =
        static_cast<std::uint8_t>((packed_value_[out] >> last) & 1u);
  }
  for (const Dff& ff : dffs) {
    const std::uint64_t d = packed_value_[static_cast<std::size_t>(ff.d)];
    packed_value_[static_cast<std::size_t>(ff.q)] = d;
    value_[static_cast<std::size_t>(ff.q)] =
        static_cast<std::uint8_t>((d >> last) & 1u);
  }
  // The last scalar step's toggle capture no longer describes the state; the
  // forced flag de-anchors any reaction cache (a packed pass cannot be
  // content-addressed), reusing the force_net() invalidation path.
  toggled_.clear();
  latch_begin_ = 0;
  forced_ = true;

  ++packed_steps_;
  packed_lane_steps_ += n_lanes;
  static telemetry::Counter& steps =
      telemetry::registry().counter("gatesim.steps");
  static telemetry::Counter& toggles =
      telemetry::registry().counter("gatesim.toggles");
  static telemetry::Counter& passes =
      telemetry::registry().counter("gatesim.packed_passes");
  steps.add(n_lanes);
  toggles.add(mask_toggles);
  passes.add();
  return true;
}

void GateSim::probe_packed(unsigned n_lanes, CycleResult* per_lane) {
  if (n_lanes == 0 || n_lanes > kMaxLanes || per_lane == nullptr) return;
  ensure_packed_buffers();
  const std::uint64_t mask = lane_mask_of(n_lanes);
  // Independent lanes: every lane starts from the current state (registers
  // broadcast), so toggles compare each lane against the broadcast scalar
  // value — and Q nets against the current Q.
  packed_seed_and_sweep(/*use_dff_seeds=*/false);

  std::uint64_t mask_toggles = 0;
  auto probe_toggle = [&](std::size_t n, std::uint64_t next) {
    const std::uint64_t t = (next ^ broadcast(value_[n])) & mask;
    packed_toggle_[n] = t;
    mask_toggles += static_cast<std::uint64_t>(std::popcount(t));
  };
  const auto& pis = netlist_->primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const std::size_t n = static_cast<std::size_t>(pis[i]);
    probe_toggle(n, packed_value_[n]);
  }
  const auto& gates = netlist_->gates();
  for (const std::size_t gi : topo_) {
    const std::size_t n = static_cast<std::size_t>(gates[gi].out);
    probe_toggle(n, packed_value_[n]);
  }
  const auto& dffs = netlist_->dffs();
  for (const Dff& ff : dffs)
    probe_toggle(static_cast<std::size_t>(ff.q),
                 packed_value_[static_cast<std::size_t>(ff.d)]);

  // Bill each lane against SCRATCH dirty structures seeded from a snapshot
  // of the real pending marks — each hypothetical step must consume the same
  // pending work a real step() would, and the real structures must survive
  // the probe untouched.
  probe_pending_.clear();
  for (const auto& w : level_dirty_)
    probe_pending_.insert(probe_pending_.end(), w.begin(), w.end());
  std::uint64_t walk_toggles = 0;
  for (unsigned l = 0; l < n_lanes; ++l) {
    for (const std::size_t gi : probe_pending_) {
      if (!probe_dirty_[gi]) {
        probe_dirty_[gi] = 1;
        probe_work_[gate_level_[gi]].push_back(gi);
      }
    }
    per_lane[l] = bill_lane(l, probe_dirty_, probe_work_);
    walk_toggles += per_lane[l].toggles;
    // Drop the lane's residual clock-edge marks; the next lane re-seeds from
    // the snapshot.
    for (auto& w : probe_work_) {
      for (const std::size_t gi : w) probe_dirty_[gi] = 0;
      w.clear();
    }
  }
  assert(walk_toggles == mask_toggles &&
         "probe billing walk diverged from packed toggle masks");
  (void)walk_toggles;
  (void)mask_toggles;
}

bool GateSim::packed_net_value(NetId n, unsigned lane) const {
  assert(n >= 0 && static_cast<std::size_t>(n) < packed_value_.size());
  assert(lane < kMaxLanes);
  return (packed_value_[static_cast<std::size_t>(n)] >> lane) & 1u;
}

std::uint64_t GateSim::read_word_lane(std::size_t first_output_index,
                                      unsigned width, unsigned lane) const {
  const auto& outs = netlist_->outputs();
  std::uint64_t v = 0;
  for (unsigned b = 0; b < width; ++b) {
    if (first_output_index + b >= outs.size()) break;
    if (packed_net_value(outs[first_output_index + b].first, lane))
      v |= 1ull << b;
  }
  return v;
}

}  // namespace socpower::hw
