// Gate-level reaction cache: memoize (state, staged inputs) -> (energy,
// next-state delta).
//
// The paper's acceleration idea — cache the expensive low-level estimate the
// first time a situation is seen, replay it after — applied one layer below
// the (task, path) energy cache: CFSMs revisit a small set of
// (register-state, input-vector) pairs, yet every GateSim::step() re-sweeps
// the levelized netlist. A hit here replays a whole reaction with one hash
// lookup plus an exact state restore, bit-identical to the uncached path
// (the cached energy is the double computed on the miss; the restored net
// values, pending dirty marks and counters are exact).
//
// Keying. A reaction's outcome is a pure function of the simulator's
// complete state at entry (net values + pending dirty marks) and the staged
// primary-input vector. Register values alone do NOT determine that state —
// at a reaction boundary the combinational nets still reflect the previous
// inputs, and the clock edge left dirty marks behind — but the tuple
//
//   (PI vector applied by the previous step, register state at the previous
//    step's entry)
//
// does: the combinational nets settled from exactly those two, the current
// register values latched from that settle, and the pending marks are the
// consumers of the Q bits that toggled, laid down in DFF order. So the
// cache keys on (post-reset flag, current PI net values, tracked
// previous-entry register values, staged inputs) — all cheap to read — and
// equal keys imply bit-identical complete states. The post-reset state
// carries its own flag: it is the one state whose empty mark set is not
// implied by net values alone.
//
// Invalidation. reset() re-anchors tracking (detected via
// GateSim::reset_count(), so estimator-side resets — begin_run, kNoPath
// batch entries, separate_reset — need no cache-aware call sites). A
// force_net() that actually changes a net (sync_hw_vars resynchronizing
// registers after accelerated reactions) de-anchors: forced writes leave
// dirty marks the key tuple does not capture, so the cache bypasses to real
// step()s until the next reset(). Entries stay valid across both, and the
// table persists across runs for warm-start hits. Per-run config changes
// that matter clear the table; reaching max_entries clears it wholesale
// (generation clear), like the ISS block cache.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/gatesim.hpp"

namespace socpower::telemetry {
class Counter;
}  // namespace socpower::telemetry

namespace socpower::hw {

struct ReactionCacheConfig {
  bool enabled = true;
  /// Entry bound; reaching it drops the whole table (generation clear).
  std::size_t max_entries = 4096;
  /// Telemetry namespace for hit/miss/eviction counters ("<prefix>.hits"
  /// etc.); empty publishes nothing.
  std::string telemetry_prefix;
};

/// One serialized reaction-table entry (serve checkpoints): the key words
/// plus the memoized replay. Keys are pure content — (post-reset flag,
/// applied PIs, previous-entry registers, staged inputs) — so an exported
/// entry is valid to import into any cache wrapping a simulator of the same
/// netlist, in any process.
struct ExportedReaction {
  std::vector<std::uint64_t> key;
  Joules energy = 0.0;
  std::vector<NetId> toggles;
  std::uint32_t latch_begin = 0;
  std::uint64_t gate_evals = 0;
};

struct ReactionCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;    ///< anchored steps simulated and memoized
  std::uint64_t bypassed = 0;  ///< steps run uncached (disabled or de-anchored)
  std::uint64_t insertions = 0;
  std::uint64_t capacity_clears = 0;  ///< generation clears at max_entries
  std::uint64_t evicted_entries = 0;  ///< entries dropped by those clears
  std::uint64_t invalidations = 0;    ///< forced-write de-anchors
  std::uint64_t skipped_gate_evals = 0;  ///< gate evaluations hits avoided
};

/// Wraps one GateSim; step() is a drop-in replacement for GateSim::step().
/// Not thread-safe — the estimators keep one cache per hardware unit, and a
/// unit is only ever stepped by one thread at a time (the parallel batch
/// flush dispatches whole units).
class ReactionCache {
 public:
  ReactionCache(GateSim* sim, ReactionCacheConfig cfg);

  /// Evaluate one staged reaction through the cache. Bit-identical to
  /// sim->step() whether it hits, misses, or bypasses.
  CycleResult step();

  /// Re-read per-run knobs (begin_run). Toggling enabled, changing the
  /// telemetry prefix, or shrinking the bound below the current size clears
  /// the table.
  void configure(const ReactionCacheConfig& cfg);
  /// Drop all entries (tracking state is unaffected).
  void clear();

  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] const ReactionCacheStats& stats() const { return stats_; }

  /// All memoized entries, sorted by key words so checkpoint bytes are
  /// deterministic for a given table state.
  [[nodiscard]] std::vector<ExportedReaction> export_entries() const;
  /// Replaces the table with `entries` (capped at max_entries; excess
  /// entries are dropped, counted as evictions). Tracking state is left
  /// alone: the cache re-anchors at the owner's next reset(), which is when
  /// the imported entries become servable — exactly the warm-across-runs
  /// lifecycle a live table already has.
  void import_entries(std::vector<ExportedReaction> entries);

 private:
  struct KeyHash {
    std::size_t operator()(const std::vector<std::uint64_t>& k) const;
  };
  struct Entry {
    Joules energy = 0.0;
    std::vector<NetId> toggles;   // commit-ordered; latch suffix at latch_begin
    std::uint32_t latch_begin = 0;
    std::uint64_t gate_evals = 0;  // evaluations the original miss performed
  };

  /// Telemetry handles, resolved once per prefix (registry entries are
  /// stable) so the hot path never builds counter names.
  struct TelemetryCounters {
    telemetry::Counter* hits = nullptr;
    telemetry::Counter* misses = nullptr;
    telemetry::Counter* evictions = nullptr;
    telemetry::Counter* invalidations = nullptr;
    telemetry::Counter* skipped_gate_evals = nullptr;
  };
  TelemetryCounters* counters();

  void observe_sim_state();  // detect resets / forced writes since last step
  void build_key();          // into key_scratch_
  void capture_regs(std::vector<std::uint64_t>* out) const;

  GateSim* sim_;
  ReactionCacheConfig cfg_;
  ReactionCacheStats stats_;
  // Key layout: [post-reset flag, applied-PI words, previous-entry register
  // words, staged-input words]; the scratch buffer is reused for lookups so
  // steady-state hits allocate only on insertion.
  std::unordered_map<std::vector<std::uint64_t>, Entry, KeyHash> table_;
  std::vector<std::uint64_t> key_scratch_;
  std::vector<std::uint64_t> q_prev_;  // register values at last step's entry
  std::vector<std::uint64_t> q_cur_scratch_;
  bool after_reset_ = true;   // no step since the last reset()
  bool anchored_ = false;     // false after a forced write until reset()
  std::uint64_t seen_resets_ = 0;
  std::unique_ptr<TelemetryCounters> counters_;
};

}  // namespace socpower::hw
