// Gate-level power simulator (the "modified SIS power estimator" role).
//
// Per clock cycle: primary inputs are applied, the combinational network is
// evaluated in level order, every net whose value changed contributes
// 1/2 * Ceff * Vdd^2, and the flip-flops latch. Energy is reported cycle by
// cycle, which is what the co-estimation master consumes ("a cycle-by-cycle
// report of the energy dissipated", Section 3). Because energy depends on
// the applied data, hardware per-path energies have real variance — the
// source of the histograms in Figure 4(b).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hw/netlist.hpp"
#include "util/units.hpp"

namespace socpower::hw {

struct CycleResult {
  std::uint64_t toggles = 0;
  Joules energy = 0.0;
};

class GateSim {
 public:
  GateSim(const Netlist* netlist, TechParams tech = TechParams::generic_250nm(),
          ElectricalParams params = {});

  /// Set a primary input for the upcoming cycle (index into primary_inputs()).
  /// Out-of-range indices are checked in every build type: the write is
  /// dropped and counted (dropped_input_writes()) instead of corrupting
  /// adjacent state under NDEBUG.
  void set_input(std::size_t input_index, bool value);
  /// Convenience: drive a whole input word, LSB first.
  void set_input_word(std::size_t first_input_index, std::uint32_t value,
                      unsigned width);
  /// Count of set_input()/set_input_word() bit writes rejected for an
  /// out-of-range input index.
  [[nodiscard]] std::uint64_t dropped_input_writes() const {
    return dropped_input_writes_;
  }

  /// Evaluate one clock cycle; returns toggles and switched energy
  /// (combinational + register + clock tree).
  CycleResult step();

  [[nodiscard]] bool net_value(NetId n) const;
  /// Read an output word (as marked by mark_output order), LSB first.
  /// Out-of-range output indices are clamped in every build type: the
  /// missing bits read as 0 rather than indexing past the output table.
  [[nodiscard]] std::uint32_t read_word(std::size_t first_output_index,
                                        unsigned width) const;

  /// Reset registers to their init values and all nets to 0.
  void reset();

  /// Overwrite a net's value WITHOUT billing switching energy. Used by the
  /// co-estimation master to resynchronize register state after acceleration
  /// techniques skipped gate-level evaluation of some reactions (the skipped
  /// activity is what the cache/sampling estimate stands in for).
  void force_net(NetId n, bool value);

  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }
  [[nodiscard]] std::uint64_t cycles_simulated() const { return cycles_; }
  [[nodiscard]] Joules total_energy() const { return total_energy_; }

  [[nodiscard]] std::uint64_t gates_evaluated() const {
    return gates_evaluated_;
  }

  // -- reaction-cache protocol (hw/reaction_cache.hpp) -----------------------
  // The cache memoizes full reactions; these accessors expose exactly what it
  // needs to key a lookup (the staged input vector), to detect state breaks
  // (resets, forced writes), and to capture/replay a step's complete effect.

  /// Pending primary-input values the next step() will apply (key material).
  [[nodiscard]] const std::vector<std::uint8_t>& staged_inputs() const {
    return input_next_;
  }
  /// Incremented by every reset(); the cache re-anchors its state tracking
  /// on a change.
  [[nodiscard]] std::uint64_t reset_count() const { return resets_; }
  /// True once if any force_net() since the last call (or reset) actually
  /// changed a net value; the cache de-anchors on it because forced states
  /// cannot be content-addressed soundly (the forced writes leave pending
  /// dirty marks that net values alone do not imply).
  [[nodiscard]] bool consume_forced() {
    const bool f = forced_;
    forced_ = false;
    return f;
  }
  /// Nets toggled by the most recent step(), in commit order. The suffix
  /// starting at last_latch_begin() holds the DFF Q toggles of the clock
  /// edge (the only toggles whose dirty marks outlive the step).
  [[nodiscard]] const std::vector<NetId>& last_toggles() const {
    return toggled_;
  }
  [[nodiscard]] std::size_t last_latch_begin() const { return latch_begin_; }
  /// Replay a memoized reaction: restore the exact post-step() state (net
  /// values, pending dirty marks, counters) and bill the stored energy,
  /// without evaluating any gate. `toggles`/`latch_begin` must be the
  /// last_toggles()/last_latch_begin() capture and `energy` the CycleResult
  /// energy of the step() being replayed, taken from an identical simulator
  /// state — then the outcome is bit-identical to re-running that step().
  CycleResult apply_cached_reaction(std::span<const NetId> toggles,
                                    std::size_t latch_begin, Joules energy);

 private:
  void full_settle();  // evaluate everything in level order (reset path)
  void mark_consumers_dirty(NetId net);

  const Netlist* netlist_;
  TechParams tech_;
  ElectricalParams params_;
  std::vector<std::size_t> topo_;        // gate evaluation order
  std::vector<unsigned> gate_level_;     // topological level per gate
  // net -> consuming gate indices, CSR-flattened: the gates consuming net n
  // are consumer_gates_[consumer_offsets_[n] .. consumer_offsets_[n+1]).
  std::vector<std::uint32_t> consumer_offsets_;
  std::vector<std::uint32_t> consumer_gates_;
  std::vector<std::vector<std::size_t>> level_dirty_;  // work lists per level
  std::vector<std::uint8_t> gate_dirty_;
  unsigned num_levels_ = 0;
  std::vector<double> net_cap_;          // cached Ceff per net
  std::vector<double> net_energy_;       // cached switch energy per net
  std::vector<std::uint8_t> value_;      // current net values
  std::vector<std::uint8_t> input_next_; // pending PI values
  std::vector<NetId> toggled_;           // nets toggled this step, in order
  std::size_t latch_begin_ = 0;          // toggled_ index where Q toggles start
  std::vector<std::uint8_t> latch_next_; // DFF D values at the clock edge
  Joules clock_energy_per_cycle_ = 0.0;
  std::uint64_t cycles_ = 0;
  Joules total_energy_ = 0.0;
  std::uint64_t gates_evaluated_ = 0;
  std::uint64_t dropped_input_writes_ = 0;
  std::uint64_t resets_ = 0;
  bool forced_ = false;
};

}  // namespace socpower::hw
