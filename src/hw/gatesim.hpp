// Gate-level power simulator (the "modified SIS power estimator" role).
//
// Per clock cycle: primary inputs are applied, the combinational network is
// evaluated in level order, every net whose value changed contributes
// 1/2 * Ceff * Vdd^2, and the flip-flops latch. Energy is reported cycle by
// cycle, which is what the co-estimation master consumes ("a cycle-by-cycle
// report of the energy dissipated", Section 3). Because energy depends on
// the applied data, hardware per-path energies have real variance — the
// source of the histograms in Figure 4(b).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hw/netlist.hpp"
#include "util/units.hpp"

namespace socpower::hw {

struct CycleResult {
  std::uint64_t toggles = 0;
  Joules energy = 0.0;
};

class GateSim {
 public:
  GateSim(const Netlist* netlist, TechParams tech = TechParams::generic_250nm(),
          ElectricalParams params = {});

  /// Set a primary input for the upcoming cycle (index into primary_inputs()).
  /// Out-of-range indices are checked in every build type: the write is
  /// dropped and counted (dropped_input_writes()) instead of corrupting
  /// adjacent state under NDEBUG.
  void set_input(std::size_t input_index, bool value);
  /// Convenience: drive a whole input word, LSB first. Takes a uint64_t so
  /// ports wider than 32 bits stage without silent truncation.
  void set_input_word(std::size_t first_input_index, std::uint64_t value,
                      unsigned width);
  /// Count of set_input()/set_input_word() bit writes rejected for an
  /// out-of-range input index.
  [[nodiscard]] std::uint64_t dropped_input_writes() const {
    return dropped_input_writes_;
  }

  /// Evaluate one clock cycle; returns toggles and switched energy
  /// (combinational + register + clock tree).
  CycleResult step();

  [[nodiscard]] bool net_value(NetId n) const;
  /// Read an output word (as marked by mark_output order), LSB first.
  /// Out-of-range output indices are clamped in every build type: the
  /// missing bits read as 0 rather than indexing past the output table.
  /// Returns a uint64_t so ports up to 64 bits read back without truncation.
  [[nodiscard]] std::uint64_t read_word(std::size_t first_output_index,
                                        unsigned width) const;

  /// Reset registers to their init values and all nets to 0.
  void reset();

  /// Overwrite a net's value WITHOUT billing switching energy. Used by the
  /// co-estimation master to resynchronize register state after acceleration
  /// techniques skipped gate-level evaluation of some reactions (the skipped
  /// activity is what the cache/sampling estimate stands in for).
  void force_net(NetId n, bool value);

  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }
  [[nodiscard]] std::uint64_t cycles_simulated() const { return cycles_; }
  [[nodiscard]] Joules total_energy() const { return total_energy_; }

  [[nodiscard]] std::uint64_t gates_evaluated() const {
    return gates_evaluated_;
  }

  // -- bit-parallel evaluation (64 stimulus patterns per word) ---------------
  // Packed mode evaluates up to kMaxLanes patterns per pass: every net holds
  // a uint64_t whose bit l is its value in pattern lane l, and each gate is
  // evaluated once per pass with the shared word kernel (eval_gate_w). Two
  // entry points share the machinery:
  //
  //  * step_packed(n): n CONSECUTIVE clock cycles — lane l+1 is the cycle
  //    after lane l. The caller seeds each lane's register state (from the
  //    behavioral model it is co-simulating); step_packed verifies the seeds
  //    against the netlist's own next-state chain (lane l+1's Q must equal
  //    lane l's D) and refuses — without touching any observable state — if
  //    they disagree, so results are bit-identical to n scalar step()s or
  //    nothing.
  //  * probe_packed(n): n INDEPENDENT hypothetical next cycles, all from the
  //    current state (candidate-pattern pricing). Observable state, staged
  //    scalar inputs and pending dirty marks are left untouched.
  //
  // Per-lane energies are billed in exactly the scalar commit order (PIs in
  // index order, then marked gates in work-list insertion order level by
  // level, then DFF Qs in declaration order) by replaying the event-driven
  // marking walk against the packed toggle masks — FP summation order is
  // what makes per-lane results bit-identical to scalar, and aggregate
  // toggle telemetry uses std::popcount over the same masks.

  static constexpr unsigned kMaxLanes = 64;

  /// Begin staging a packed pass: every input lane defaults to the currently
  /// staged scalar value (input_next_) and every register lane to the current
  /// Q value, i.e. an unstaged packed pass replays the scalar broadcast.
  void begin_packed_stage();
  /// Stage one input bit for one lane. Out-of-range input indices are dropped
  /// and counted like set_input(); out-of-range lanes likewise.
  void stage_packed_input(std::size_t input_index, unsigned lane, bool value);
  /// Stage a whole input word for one lane, LSB first.
  void stage_packed_input_word(std::size_t first_input_index,
                               std::uint64_t value, unsigned width,
                               unsigned lane);
  /// Seed flip-flop dffs()[dff_index]'s Q for one lane (chain mode only; the
  /// lane-0 seed must match the current Q, and lane l+1 must equal the D that
  /// lane l computes — step_packed checks both). Out-of-range drops count.
  void seed_packed_dff(std::size_t dff_index, unsigned lane, bool value);

  /// Evaluate n_lanes consecutive cycles in one packed pass. On success fills
  /// per_lane[0..n_lanes) with each cycle's CycleResult (bit-identical to the
  /// scalar step() sequence), commits the final lane's state (registers hold
  /// the last lane's D, pending dirty marks are the last clock edge's, staged
  /// scalar inputs become the last lane's inputs), advances cycle/energy
  /// counters, and de-anchors any reaction cache via the forced-state flag
  /// (the cache cannot content-address a 64-cycle jump). Returns false — with
  /// NO observable state change — when the seeded register lanes contradict
  /// the netlist's next-state chain; the caller then falls back to scalar.
  [[nodiscard]] bool step_packed(unsigned n_lanes, CycleResult* per_lane);

  /// Evaluate n_lanes independent hypothetical next cycles, all from the
  /// current state, in one packed pass. Fills per_lane[l] with exactly what
  /// step() would return if lane l's staged inputs were applied now. Purely
  /// speculative: no observable simulator state changes.
  void probe_packed(unsigned n_lanes, CycleResult* per_lane);

  /// Evaluate the staged packed lanes (seed + bitwise sweep) without billing
  /// or committing — the raw evaluation loop, exposed for functional what-if
  /// reads and eval-throughput benchmarking. Lane values are then readable
  /// via packed_net_value()/read_word_lane().
  void evaluate_packed(unsigned n_lanes);

  /// Re-evaluate every gate once in level order from current net values (the
  /// scalar evaluation loop; reset path and eval-throughput benchmarking).
  /// Does not apply staged inputs and bills nothing.
  void settle();

  /// Value of net n in lane `lane` of the most recent packed pass. After
  /// step_packed, DFF Q nets read post-edge (lane l's newly latched D).
  [[nodiscard]] bool packed_net_value(NetId n, unsigned lane) const;
  /// Read an output word for one lane of the most recent packed pass.
  [[nodiscard]] std::uint64_t read_word_lane(std::size_t first_output_index,
                                             unsigned width,
                                             unsigned lane) const;

  [[nodiscard]] std::uint64_t packed_steps() const { return packed_steps_; }
  [[nodiscard]] std::uint64_t packed_lane_steps() const {
    return packed_lane_steps_;
  }
  /// step_packed() calls rejected for inconsistent register seeds.
  [[nodiscard]] std::uint64_t packed_seed_rejects() const {
    return packed_seed_rejects_;
  }

  // -- reaction-cache protocol (hw/reaction_cache.hpp) -----------------------
  // The cache memoizes full reactions; these accessors expose exactly what it
  // needs to key a lookup (the staged input vector), to detect state breaks
  // (resets, forced writes), and to capture/replay a step's complete effect.

  /// Pending primary-input values the next step() will apply (key material).
  [[nodiscard]] const std::vector<std::uint8_t>& staged_inputs() const {
    return input_next_;
  }
  /// Incremented by every reset(); the cache re-anchors its state tracking
  /// on a change.
  [[nodiscard]] std::uint64_t reset_count() const { return resets_; }
  /// True once if any force_net() since the last call (or reset) actually
  /// changed a net value; the cache de-anchors on it because forced states
  /// cannot be content-addressed soundly (the forced writes leave pending
  /// dirty marks that net values alone do not imply).
  [[nodiscard]] bool consume_forced() {
    const bool f = forced_;
    forced_ = false;
    return f;
  }
  /// Nets toggled by the most recent step(), in commit order. The suffix
  /// starting at last_latch_begin() holds the DFF Q toggles of the clock
  /// edge (the only toggles whose dirty marks outlive the step).
  [[nodiscard]] const std::vector<NetId>& last_toggles() const {
    return toggled_;
  }
  [[nodiscard]] std::size_t last_latch_begin() const { return latch_begin_; }
  /// Replay a memoized reaction: restore the exact post-step() state (net
  /// values, pending dirty marks, counters) and bill the stored energy,
  /// without evaluating any gate. `toggles`/`latch_begin` must be the
  /// last_toggles()/last_latch_begin() capture and `energy` the CycleResult
  /// energy of the step() being replayed, taken from an identical simulator
  /// state — then the outcome is bit-identical to re-running that step().
  CycleResult apply_cached_reaction(std::span<const NetId> toggles,
                                    std::size_t latch_begin, Joules energy);

 private:
  void mark_consumers_dirty(NetId net);
  // Packed internals: lazy buffer allocation, lane seeding + bitwise sweep,
  // toggle-mask derivation, and the per-lane commit-order billing walk (the
  // event-driven marking discipline replayed against toggle masks instead of
  // gate evaluations — `dirty`/`work` select the real structures in chain
  // mode or the probe scratch copies).
  void ensure_packed_buffers();
  void packed_seed_and_sweep(bool use_dff_seeds);
  CycleResult bill_lane(unsigned lane, std::vector<std::uint8_t>& dirty,
                        std::vector<std::vector<std::size_t>>& work);
  void mark_consumers_walk(NetId net, std::vector<std::uint8_t>& dirty,
                           std::vector<std::vector<std::size_t>>& work);

  const Netlist* netlist_;
  TechParams tech_;
  ElectricalParams params_;
  std::vector<std::size_t> topo_;        // gate evaluation order
  std::vector<unsigned> gate_level_;     // topological level per gate
  // net -> consuming gate indices, CSR-flattened: the gates consuming net n
  // are consumer_gates_[consumer_offsets_[n] .. consumer_offsets_[n+1]).
  std::vector<std::uint32_t> consumer_offsets_;
  std::vector<std::uint32_t> consumer_gates_;
  std::vector<std::vector<std::size_t>> level_dirty_;  // work lists per level
  std::vector<std::uint8_t> gate_dirty_;
  unsigned num_levels_ = 0;
  std::vector<double> net_cap_;          // cached Ceff per net
  std::vector<double> net_energy_;       // cached switch energy per net
  std::vector<std::uint8_t> value_;      // current net values
  std::vector<std::uint8_t> input_next_; // pending PI values
  std::vector<NetId> toggled_;           // nets toggled this step, in order
  std::size_t latch_begin_ = 0;          // toggled_ index where Q toggles start
  std::vector<std::uint8_t> latch_next_; // DFF D values at the clock edge
  Joules clock_energy_per_cycle_ = 0.0;
  std::uint64_t cycles_ = 0;
  Joules total_energy_ = 0.0;
  std::uint64_t gates_evaluated_ = 0;
  std::uint64_t dropped_input_writes_ = 0;
  std::uint64_t resets_ = 0;
  bool forced_ = false;

  // -- packed-mode state (allocated lazily on first begin_packed_stage) ------
  std::vector<std::uint64_t> packed_value_;   // per-net lane values
  std::vector<std::uint64_t> packed_toggle_;  // per-net lane toggle masks
  std::vector<std::uint64_t> packed_input_;   // staged per-PI lane values
  std::vector<std::uint64_t> packed_dff_seed_;  // staged per-DFF Q lane seeds
  // Probe-mode scratch (the real dirty structures must survive a probe).
  std::vector<std::uint8_t> probe_dirty_;
  std::vector<std::vector<std::size_t>> probe_work_;
  std::vector<std::size_t> probe_pending_;  // snapshot of pending marks
  std::uint64_t packed_steps_ = 0;
  std::uint64_t packed_lane_steps_ = 0;
  std::uint64_t packed_seed_rejects_ = 0;
};

}  // namespace socpower::hw
