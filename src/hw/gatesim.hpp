// Gate-level power simulator (the "modified SIS power estimator" role).
//
// Per clock cycle: primary inputs are applied, the combinational network is
// evaluated in level order, every net whose value changed contributes
// 1/2 * Ceff * Vdd^2, and the flip-flops latch. Energy is reported cycle by
// cycle, which is what the co-estimation master consumes ("a cycle-by-cycle
// report of the energy dissipated", Section 3). Because energy depends on
// the applied data, hardware per-path energies have real variance — the
// source of the histograms in Figure 4(b).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/netlist.hpp"
#include "util/units.hpp"

namespace socpower::hw {

struct CycleResult {
  std::uint64_t toggles = 0;
  Joules energy = 0.0;
};

class GateSim {
 public:
  GateSim(const Netlist* netlist, TechParams tech = TechParams::generic_250nm(),
          ElectricalParams params = {});

  /// Set a primary input for the upcoming cycle (index into primary_inputs()).
  void set_input(std::size_t input_index, bool value);
  /// Convenience: drive a whole input word, LSB first.
  void set_input_word(std::size_t first_input_index, std::uint32_t value,
                      unsigned width);

  /// Evaluate one clock cycle; returns toggles and switched energy
  /// (combinational + register + clock tree).
  CycleResult step();

  [[nodiscard]] bool net_value(NetId n) const;
  /// Read an output word (as marked by mark_output order), LSB first.
  [[nodiscard]] std::uint32_t read_word(std::size_t first_output_index,
                                        unsigned width) const;

  /// Reset registers to their init values and all nets to 0.
  void reset();

  /// Overwrite a net's value WITHOUT billing switching energy. Used by the
  /// co-estimation master to resynchronize register state after acceleration
  /// techniques skipped gate-level evaluation of some reactions (the skipped
  /// activity is what the cache/sampling estimate stands in for).
  void force_net(NetId n, bool value);

  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }
  [[nodiscard]] std::uint64_t cycles_simulated() const { return cycles_; }
  [[nodiscard]] Joules total_energy() const { return total_energy_; }

  [[nodiscard]] std::uint64_t gates_evaluated() const {
    return gates_evaluated_;
  }

 private:
  void full_settle();  // evaluate everything in level order (reset path)
  void mark_consumers_dirty(NetId net);

  const Netlist* netlist_;
  TechParams tech_;
  ElectricalParams params_;
  std::vector<std::size_t> topo_;        // gate evaluation order
  std::vector<unsigned> gate_level_;     // topological level per gate
  // net -> consuming gate indices, CSR-flattened: the gates consuming net n
  // are consumer_gates_[consumer_offsets_[n] .. consumer_offsets_[n+1]).
  std::vector<std::uint32_t> consumer_offsets_;
  std::vector<std::uint32_t> consumer_gates_;
  std::vector<std::vector<std::size_t>> level_dirty_;  // work lists per level
  std::vector<std::uint8_t> gate_dirty_;
  unsigned num_levels_ = 0;
  std::vector<double> net_cap_;          // cached Ceff per net
  std::vector<double> net_energy_;       // cached switch energy per net
  std::vector<std::uint8_t> value_;      // current net values
  std::vector<std::uint8_t> input_next_; // pending PI values
  std::vector<NetId> toggled_;           // nets toggled this step, in order
  std::vector<std::uint8_t> latch_next_; // DFF D values at the clock edge
  Joules clock_energy_per_cycle_ = 0.0;
  std::uint64_t cycles_ = 0;
  Joules total_energy_ = 0.0;
  std::uint64_t gates_evaluated_ = 0;
};

}  // namespace socpower::hw
