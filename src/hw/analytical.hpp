// McPAT-style analytical hardware power model.
//
// Instead of stepping the gate simulator, a calibrated unit prices a
// reaction from its *activity*: per-unit effective-capacitance coefficients
// multiply Hamming-distance and population-count terms derived from the
// behavioral inputs and state (the same ½·Vdd²·Ceff·A form the NoC link
// model uses), plus a static (leakage) term integrated over simulated time
// with McPAT's temperature and channel-length dependence. The coefficients
// are least-squares-fitted against the gate-level backend, exactly the way
// the SW macromodel is characterized against the ISS: replay a short
// stimulus prefix through GateSim, record (activity features, exact energy)
// pairs, solve the normal equations. Everything here is deterministic plain
// arithmetic, so a fitted AnalyticalModel is bit-identical across runs and
// survives the dist wire / serve checkpoint round-trips bit-exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "util/units.hpp"

namespace socpower::hw {

/// Activity of one reaction relative to the previously observed one,
/// derived purely from the behavioral inputs/state (no simulator involved).
struct ReactionActivity {
  double input_toggles = 0.0;  ///< Hamming distance of the staged input bits
  double input_ones = 0.0;     ///< population count of the staged input bits
  double state_toggles = 0.0;  ///< Hamming distance of the pre-state bits
};

/// Packs a unit's (inputs, pre-state) into bit vectors and differences them
/// against the previous reaction's. The packing follows the synthesized
/// primary-input layout (local_inputs slot order: one presence flag plus a
/// 32-bit value word per input event; 32 bits per state variable), so the
/// features track what the netlist's input pins would actually toggle.
/// Reset at the start of every run — the first observed reaction toggles
/// against all-zero, matching the netlist's reset state.
class ActivityTracker {
 public:
  void reset();
  [[nodiscard]] ReactionActivity observe(
      const std::vector<cfsm::EventId>& local_inputs,
      const cfsm::ReactionInputs& inputs, const cfsm::CfsmState& pre);

 private:
  std::vector<std::uint64_t> prev_in_, cur_in_, prev_st_, cur_st_;
};

/// Leakage knobs, per McPAT: per-gate static power at the reference point
/// (300 K, 250 nm), scaled by channel length (shorter channel leaks more)
/// and exponentially by temperature.
struct AnalyticalLeakageParams {
  double nw_per_gate = 2.0;
  double temperature_k = 300.0;
  double channel_length_nm = 250.0;
};

/// Static power of one synthesized unit:
///   P = gates · nw_per_gate·1e-9 · (250 / channel_length_nm)
///       · 2^((T − 300) / 30)
/// (leakage roughly doubles every 30 K, a standard subthreshold rule).
[[nodiscard]] double analytical_leakage_watts(std::size_t gate_count,
                                              const AnalyticalLeakageParams& p);

/// Dynamic-energy terms: {1, input_toggles, input_ones, state_toggles}.
inline constexpr std::size_t kAnalyticalTerms = 4;

/// Fitted coefficients of one hardware unit. coeff[0] is the per-reaction
/// base energy (clock tree, control); the rest are effective-capacitance
/// energies per activity unit. predict() clamps at zero — activity patterns
/// outside the calibration cloud must not go negative.
struct AnalyticalUnitModel {
  cfsm::CfsmId task = cfsm::kNoCfsm;
  double coeff[kAnalyticalTerms] = {0.0, 0.0, 0.0, 0.0};
  double leakage_watts = 0.0;
  std::uint32_t calibration_vectors = 0;
  /// RMS residual of the fit over the calibration set (model quality).
  double residual_rms_j = 0.0;

  [[nodiscard]] Joules predict(const ReactionActivity& a) const;
};

/// Accumulates (activity, exact energy) samples and solves the 4×4 normal
/// equations. The accumulation is plain double sums in insertion order and
/// the solve is Gaussian elimination with partial pivoting plus a tiny
/// deterministic Tikhonov ridge for degenerate feature sets (e.g. a unit
/// whose inputs never vary), so the same sample stream always yields
/// bit-identical coefficients.
class CalibrationAccumulator {
 public:
  /// The accumulated moments as raw doubles (xtx row-major) — what a warm
  /// snapshot carries for a unit still mid-calibration, so a restored
  /// session continues accumulating exactly where the donor stopped.
  struct Raw {
    double xtx[kAnalyticalTerms * kAnalyticalTerms] = {};
    double xty[kAnalyticalTerms] = {};
    double yty = 0.0;
    std::uint64_t n = 0;
  };

  void add(const ReactionActivity& a, Joules energy);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] AnalyticalUnitModel fit(cfsm::CfsmId task) const;
  [[nodiscard]] Raw raw() const;
  [[nodiscard]] static CalibrationAccumulator from_raw(const Raw& r);

 private:
  double xtx_[kAnalyticalTerms][kAnalyticalTerms] = {};
  double xty_[kAnalyticalTerms] = {};
  double yty_ = 0.0;
  std::size_t n_ = 0;
};

/// In-progress calibration of one unit that had not yet collected its
/// target number of gate-level samples when the state was exported.
struct AnalyticalCalibrationState {
  cfsm::CfsmId task = cfsm::kNoCfsm;
  CalibrationAccumulator::Raw moments;
};

/// The serializable calibrated model: one entry per fitted hardware unit,
/// ascending by task id (canonical order — what makes encode/decode
/// round-trips and cross-process comparisons bit-stable), plus the raw
/// moments of units still calibrating so warm restores resume the sample
/// stream bit-identically instead of starting over.
struct AnalyticalModel {
  std::vector<AnalyticalUnitModel> units;
  std::vector<AnalyticalCalibrationState> pending;  ///< ascending by task

  [[nodiscard]] bool empty() const { return units.empty() && pending.empty(); }
  [[nodiscard]] const AnalyticalUnitModel* find(cfsm::CfsmId task) const;
};

/// One gate-level calibration sample: the activity features of a staged
/// reaction and the exact energy GateSim measured for it.
struct CalibrationSample {
  ReactionActivity activity;
  Joules energy = 0.0;
};

/// Fits one unit's model from samples recorded by replaying a stimulus
/// prefix through the gate simulator — the batch counterpart of the
/// HwAnalyticalEstimator's incremental calibration phase (both feed the
/// same accumulator, so the coefficients are bit-identical for the same
/// sample stream). Exposed for tests and offline characterization.
[[nodiscard]] AnalyticalUnitModel calibrate_analytical(
    cfsm::CfsmId task, const std::vector<CalibrationSample>& samples);

}  // namespace socpower::hw
