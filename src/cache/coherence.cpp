#include "cache/coherence.hpp"

#include <cassert>

namespace socpower::cache {

CoherentMemoryModel::CoherentMemoryModel(CoherenceConfig config,
                                         unsigned cores)
    : config_(config), cores_(cores) {
  assert(cores_ > 0);
  assert(config_.l1.num_sets() > 0 && "L1 geometry invalid");
  const std::size_t lines = static_cast<std::size_t>(config_.l1.num_sets()) *
                            config_.l1.associativity;
  l1_.assign(cores_, std::vector<Line>(lines));
}

CoherentMemoryModel::Line* CoherentMemoryModel::find(
    unsigned core, std::uint32_t line_addr) {
  const std::uint32_t set =
      (line_addr / config_.l1.line_bytes) % config_.l1.num_sets();
  const std::uint32_t tag = line_addr / config_.l1.line_bytes;
  Line* base = &l1_[core][static_cast<std::size_t>(set) *
                          config_.l1.associativity];
  for (std::uint32_t w = 0; w < config_.l1.associativity; ++w) {
    if (base[w].state != LineState::kInvalid && base[w].tag == tag)
      return &base[w];
  }
  return nullptr;
}

const CoherentMemoryModel::Line* CoherentMemoryModel::find(
    unsigned core, std::uint32_t line_addr) const {
  return const_cast<CoherentMemoryModel*>(this)->find(core, line_addr);
}

CoherentMemoryModel::Line& CoherentMemoryModel::victim(
    unsigned core, std::uint32_t line_addr) {
  const std::uint32_t set =
      (line_addr / config_.l1.line_bytes) % config_.l1.num_sets();
  Line* base = &l1_[core][static_cast<std::size_t>(set) *
                          config_.l1.associativity];
  Line* v = &base[0];
  for (std::uint32_t w = 1; w < config_.l1.associativity; ++w) {
    if (base[w].state == LineState::kInvalid) return base[w];
    if (base[w].lru < v->lru) v = &base[w];
  }
  return *v;
}

CoherentMemoryModel::LineState CoherentMemoryModel::state(
    unsigned core, std::uint32_t line_addr) const {
  const Line* l = find(core, line_addr);
  return l ? l->state : LineState::kInvalid;
}

void CoherentMemoryModel::emit_writeback(std::uint32_t line_addr,
                                         CoherentAccessResult* out) {
  bus::BusRequest wb;
  wb.master = config_.traffic_master;
  wb.priority = config_.traffic_priority;
  wb.write = true;
  wb.addr = line_addr;
  // Deterministic payload standing in for the dirty line's contents: the
  // model tracks states, not values, but the interconnect's switching
  // activity needs bytes — derive them from the line address.
  wb.data.resize(config_.l1.line_bytes);
  for (std::uint32_t k = 0; k < config_.l1.line_bytes; ++k)
    wb.data[k] = static_cast<std::uint8_t>(line_addr >> (8 * (k % 4)));
  out->traffic.push_back(std::move(wb));
  ++out->writebacks;
  ++totals_.writebacks;
}

void CoherentMemoryModel::emit_invalidate(std::uint32_t line_addr,
                                          CoherentAccessResult* out) {
  bus::BusRequest inv;
  inv.master = config_.traffic_master;
  inv.priority = config_.traffic_priority;
  inv.write = true;
  inv.addr = line_addr;
  inv.data = {0};  // single control beat
  out->traffic.push_back(std::move(inv));
}

void CoherentMemoryModel::invalidate_remote(int core,
                                            std::uint32_t line_addr,
                                            CoherentAccessResult* out) {
  for (unsigned c = 0; c < cores_; ++c) {
    if (static_cast<int>(c) == core) continue;
    Line* l = find(c, line_addr);
    if (!l) continue;
    if (l->state == LineState::kModified) emit_writeback(line_addr, out);
    l->state = LineState::kInvalid;
    ++out->invalidations;
    ++totals_.invalidations;
    out->energy += config_.invalidate_energy;
    emit_invalidate(line_addr, out);
  }
}

bool CoherentMemoryModel::flush_remote_dirty(int core,
                                             std::uint32_t line_addr,
                                             CoherentAccessResult* out) {
  for (unsigned c = 0; c < cores_; ++c) {
    if (static_cast<int>(c) == core) continue;
    Line* l = find(c, line_addr);
    if (l && l->state == LineState::kModified) {
      emit_writeback(line_addr, out);
      l->state = LineState::kShared;
      return true;
    }
  }
  return false;
}

void CoherentMemoryModel::line_access(int core, bool write,
                                      std::uint32_t line_addr,
                                      CoherentAccessResult* out) {
  ++totals_.accesses;
  ++tick_;

  if (core < 0) {
    // Uncached agent (hardware DMA): no L1, but the directory still acts.
    if (write) {
      invalidate_remote(core, line_addr, out);
    } else if (flush_remote_dirty(core, line_addr, out)) {
      out->penalty_cycles += config_.dirty_fetch_cycles;
    }
    return;
  }

  const auto c = static_cast<unsigned>(core);
  out->energy += config_.l1.hit_energy;  // L1 probe
  Line* l = find(c, line_addr);

  if (l && (l->state == LineState::kModified ||
            (!write && l->state == LineState::kShared))) {
    // Plain hit: M serves both, S serves reads.
    l->lru = tick_;
    ++totals_.l1_hits;
    return;
  }

  if (l && write && l->state == LineState::kShared) {
    // Upgrade: invalidate the other sharers, then own the line.
    ++totals_.l1_hits;
    ++totals_.upgrades;
    invalidate_remote(core, line_addr, out);
    out->energy += config_.l2_access_energy;  // directory/L2 transaction
    out->penalty_cycles += config_.l1.miss_penalty_cycles;
    l->state = LineState::kModified;
    l->lru = tick_;
    return;
  }

  // Miss: fetch through the shared L2.
  ++totals_.l1_misses;
  out->energy += config_.l2_access_energy + config_.l1.miss_energy;
  out->penalty_cycles += config_.l1.miss_penalty_cycles;
  if (write) {
    invalidate_remote(core, line_addr, out);
  } else if (flush_remote_dirty(core, line_addr, out)) {
    out->penalty_cycles += config_.dirty_fetch_cycles;
  }

  Line& v = victim(c, line_addr);
  if (v.state == LineState::kModified)  // evicted dirty line goes down first
    emit_writeback(v.tag * config_.l1.line_bytes, out);
  v.tag = line_addr / config_.l1.line_bytes;
  v.state = write ? LineState::kModified : LineState::kShared;
  v.lru = tick_;
}

CoherentAccessResult CoherentMemoryModel::access(int core, bool write,
                                                 std::uint32_t addr,
                                                 std::uint32_t bytes) {
  CoherentAccessResult out;
  if (bytes == 0) bytes = 1;
  const std::uint32_t lb = config_.l1.line_bytes;
  const std::uint32_t first = addr / lb;
  const std::uint32_t last = (addr + bytes - 1) / lb;
  for (std::uint32_t line = first; line <= last; ++line)
    line_access(core, write, line * lb, &out);
  totals_.energy += out.energy;
  return out;
}

}  // namespace socpower::cache
