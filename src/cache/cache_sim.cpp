#include "cache/cache_sim.hpp"

#include <cassert>

#include "telemetry/registry.hpp"

namespace socpower::cache {

AccessStats& AccessStats::operator+=(const AccessStats& o) {
  accesses += o.accesses;
  misses += o.misses;
  penalty_cycles += o.penalty_cycles;
  energy += o.energy;
  return *this;
}

CacheSim::CacheSim(CacheConfig config) : config_(config) {
  assert(config_.line_bytes > 0 && config_.associativity > 0);
  assert(config_.size_bytes % (config_.line_bytes * config_.associativity) ==
         0);
  lines_.assign(config_.num_sets() * config_.associativity, Line{});
}

bool CacheSim::access(std::uint32_t address) {
  const std::uint32_t line_addr = address / config_.line_bytes;
  const std::uint32_t set = line_addr % config_.num_sets();
  const std::uint32_t tag = line_addr / config_.num_sets();
  Line* base = &lines_[set * config_.associativity];
  ++tick_;
  ++totals_.accesses;
  totals_.energy += config_.hit_energy;

  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      l.lru = tick_;
      return true;
    }
  }
  // Miss: refill into the first invalid way, else the least-recently-used.
  Line* victim = base;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  ++totals_.misses;
  totals_.penalty_cycles += config_.miss_penalty_cycles;
  totals_.energy += config_.miss_energy;
  return false;
}

AccessStats CacheSim::access_stream(
    std::span<const std::uint32_t> addresses) {
  const AccessStats before = totals_;
  for (const std::uint32_t a : addresses) access(a);
  AccessStats delta;
  delta.accesses = totals_.accesses - before.accesses;
  delta.misses = totals_.misses - before.misses;
  delta.penalty_cycles = totals_.penalty_cycles - before.penalty_cycles;
  delta.energy = totals_.energy - before.energy;
  static telemetry::Counter& accesses =
      telemetry::registry().counter("icache.accesses");
  static telemetry::Counter& misses =
      telemetry::registry().counter("icache.misses");
  accesses.add(delta.accesses);
  misses.add(delta.misses);
  return delta;
}

void CacheSim::flush() {
  for (auto& l : lines_) l = Line{};
}

}  // namespace socpower::cache
