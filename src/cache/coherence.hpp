// Directory-style MSI coherence over private per-core L1 data caches backed
// by a shared L2.
//
// The multicore generalization of the paper's memory-hierarchy story: each
// core's shared-data accesses first probe a private L1 (set-associative,
// true LRU, same geometry vocabulary as the instruction cache in
// cache_sim.hpp); misses and upgrades run an MSI transaction against the
// other cores' copies. Every transition that moves a line — an upgrade
// invalidating remote sharers, a dirty fetch forcing the owner's writeback,
// an LRU eviction of a Modified line — bills its control/writeback message
// as a BusRequest the caller submits to the interconnect, so coherence
// traffic pays real switching energy and real arbitration/routing delay
// (and, through the master's wait-state feedback, shifts software energy —
// the paper's co-estimation argument, sharpened by sharing).
//
// Non-core agents (hardware DMA masters) access with core < 0: they have no
// L1 but still interact with the directory — a device write invalidates
// cached copies, a device read forces a dirty owner's writeback.
#pragma once

#include <cstdint>
#include <vector>

#include "bus/interconnect.hpp"
#include "cache/cache_sim.hpp"
#include "util/units.hpp"

namespace socpower::cache {

struct CoherenceConfig {
  bool enabled = false;
  /// Private per-core L1 data-cache geometry and array energies
  /// (hit_energy per probe, miss_energy per line fill,
  /// miss_penalty_cycles per L2-served miss).
  CacheConfig l1;
  /// Extra stall when the line is Modified in another L1 (writeback before
  /// the fetch can be served).
  unsigned dirty_fetch_cycles = 10;
  /// Shared-L2 array access energy per miss/upgrade transaction.
  Joules l2_access_energy = 0.6e-9;
  /// Tag-array energy per remote L1 line invalidated.
  Joules invalidate_energy = 0.05e-9;
  /// Master id / priority the coherence control and writeback messages bill
  /// under on the interconnect.
  int traffic_master = 30;
  int traffic_priority = 7;
};

/// Outcome of one coherent access: what the core stalls for, what the cache
/// arrays burned, and the messages the caller must put on the interconnect.
struct CoherentAccessResult {
  Cycles penalty_cycles = 0;
  Joules energy = 0.0;
  std::uint64_t invalidations = 0;
  std::uint64_t writebacks = 0;
  std::vector<bus::BusRequest> traffic;
};

struct CoherenceTotals {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t upgrades = 0;      // S -> M on a write hit to a shared line
  std::uint64_t invalidations = 0;  // remote lines dropped
  std::uint64_t writebacks = 0;     // dirty lines pushed down
  Joules energy = 0.0;

  [[nodiscard]] double hit_rate() const {
    return accesses ? static_cast<double>(l1_hits) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
};

class CoherentMemoryModel {
 public:
  CoherentMemoryModel(CoherenceConfig config, unsigned cores);

  /// One access of `bytes` bytes at `addr` by `core` (line-crossing
  /// accesses run the protocol per touched line). core < 0 = uncached
  /// agent.
  CoherentAccessResult access(int core, bool write, std::uint32_t addr,
                              std::uint32_t bytes);

  [[nodiscard]] const CoherenceTotals& totals() const { return totals_; }
  [[nodiscard]] unsigned cores() const { return cores_; }
  [[nodiscard]] const CoherenceConfig& config() const { return config_; }

  enum class LineState : std::uint8_t { kInvalid, kShared, kModified };
  /// State of `line_addr` (line-aligned) in `core`'s L1; for tests.
  [[nodiscard]] LineState state(unsigned core, std::uint32_t line_addr) const;

 private:
  struct Line {
    std::uint32_t tag = 0;
    LineState state = LineState::kInvalid;
    std::uint64_t lru = 0;
  };

  [[nodiscard]] Line* find(unsigned core, std::uint32_t line_addr);
  [[nodiscard]] const Line* find(unsigned core, std::uint32_t line_addr) const;
  Line& victim(unsigned core, std::uint32_t line_addr);
  void line_access(int core, bool write, std::uint32_t line_addr,
                   CoherentAccessResult* out);
  /// Drop every remote copy of the line; Modified owners write back first.
  void invalidate_remote(int core, std::uint32_t line_addr,
                         CoherentAccessResult* out);
  /// If a remote core owns the line Modified, write it back and downgrade
  /// the owner to Shared. Returns true when a writeback happened.
  bool flush_remote_dirty(int core, std::uint32_t line_addr,
                          CoherentAccessResult* out);
  void emit_writeback(std::uint32_t line_addr, CoherentAccessResult* out);
  void emit_invalidate(std::uint32_t line_addr, CoherentAccessResult* out);

  CoherenceConfig config_;
  unsigned cores_ = 1;
  std::vector<std::vector<Line>> l1_;  // [core][set * assoc + way]
  std::uint64_t tick_ = 0;
  CoherenceTotals totals_;
};

}  // namespace socpower::cache
