// Fast cache simulator attached to the simulation master.
//
// Following the paper (Section 3, and reference [19]): the ISS assumes 100 %
// cache hits; instead, the master feeds the (statically known) per-path
// instruction reference stream of every software transition to this
// simulator, which returns hit/miss statistics. Misses add a fixed refill
// penalty to the transition's cycle count and charge cache + main-memory
// access energy. Because the references are derived from the discrete-event
// model — not from the ISS — acceleration techniques that skip the ISS
// (energy caching, macro-modeling) leave the cache reference stream intact,
// which is exactly why the paper's caching technique is exact for the
// SPARClite (Section 5.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace socpower::cache {

struct CacheConfig {
  std::uint32_t size_bytes = 4096;
  std::uint32_t line_bytes = 16;
  std::uint32_t associativity = 1;  // 1 == direct-mapped
  unsigned miss_penalty_cycles = 8;

  /// Energy per cache array access (tag + data read) and per line refill
  /// from main memory.
  Joules hit_energy = 0.12e-9;
  Joules miss_energy = 2.4e-9;

  [[nodiscard]] std::uint32_t num_sets() const {
    return size_bytes / (line_bytes * associativity);
  }
};

struct AccessStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  Cycles penalty_cycles = 0;
  Joules energy = 0.0;

  [[nodiscard]] double miss_rate() const {
    return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  AccessStats& operator+=(const AccessStats& o);
};

/// Set-associative cache with true-LRU replacement.
class CacheSim {
 public:
  explicit CacheSim(CacheConfig config = {});

  /// Simulate one reference; returns true on hit and updates totals.
  bool access(std::uint32_t address);
  /// Simulate a reference stream; returns the stats of this stream only.
  AccessStats access_stream(std::span<const std::uint32_t> addresses);

  [[nodiscard]] const AccessStats& totals() const { return totals_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  void flush();

 private:
  struct Line {
    std::uint32_t tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;  // last-use stamp
  };

  CacheConfig config_;
  std::vector<Line> lines_;  // sets * associativity, set-major
  std::uint64_t tick_ = 0;
  AccessStats totals_;
};

}  // namespace socpower::cache
