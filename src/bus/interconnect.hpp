// The interconnect abstraction the co-estimation master schedules against,
// and the transfer vocabulary (request/result/totals) every implementation
// shares.
//
// The master's discrete-event loop only ever needs four operations from the
// integration architecture: enqueue a transfer, ask whether anything is in
// flight, ask for the next cycle at which interconnect state changes, and
// advance simulated time collecting completions. The arbitrated shared bus
// (BusScheduler, bus_model.hpp) and the XY-routed mesh NoC (NocModel,
// noc_model.hpp) both implement this interface, so "one bus" generalizes to
// "one routed interconnect" without the scheduler caring which. Energy
// accounting stays per-implementation: both apply the paper's
// P = 1/2 * Vdd^2 * f * sum Ceff * A line model, the bus over its shared
// address/data lines, the NoC per traversed link.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace socpower::bus {

struct BusRequest {
  int master = 0;
  int priority = 0;  // larger wins simultaneous arbitration
  bool write = false;
  std::uint32_t addr = 0;
  std::vector<std::uint8_t> data;  // payload bytes (values drive activity)
};

struct BusResult {
  std::uint64_t start = 0;  // cycle the first grant is issued
  std::uint64_t end = 0;    // cycle the last beat completes
  Cycles wait_cycles = 0;   // arbitration queueing delay
  Cycles busy_cycles = 0;   // handshakes + beats
  unsigned grants = 0;
  Joules energy = 0.0;      // interconnect + arbiter energy of this transfer
};

struct BusTotals {
  std::uint64_t transfers = 0;
  std::uint64_t grants = 0;
  std::uint64_t bytes = 0;
  std::uint64_t addr_toggles = 0;
  std::uint64_t data_toggles = 0;
  /// Arbitration queueing delay summed over transfers (contention measure).
  std::uint64_t wait_cycles = 0;
  Joules energy = 0.0;
};

class Interconnect {
 public:
  using JobId = std::uint64_t;

  struct Completion {
    JobId id = 0;
    int master = 0;
    BusResult result;
  };

  virtual ~Interconnect() = default;

  /// Enqueue a transfer at cycle `now` (must be >= the last advance time).
  virtual JobId submit(std::uint64_t now, BusRequest request) = 0;

  /// Whether any transfer is pending or in flight.
  [[nodiscard]] virtual bool has_work() const = 0;
  /// Next cycle at which interconnect state changes (a grant/packet
  /// completes or a pending transfer could start); meaningful only while
  /// has_work().
  [[nodiscard]] virtual std::uint64_t next_boundary() const = 0;

  /// Advance simulated time to `t`, processing every boundary up to and
  /// including it; returns the transfers that completed.
  virtual std::vector<Completion> advance(std::uint64_t t) = 0;

  [[nodiscard]] virtual const BusTotals& totals() const = 0;
  virtual void reset() = 0;
};

}  // namespace socpower::bus
