// XY-routed mesh network-on-chip interconnect model.
//
// Generalizes the paper's shared-bus power model to a routed mesh: the same
// P = 1/2 * Vdd^2 * f * sum Ceff * A switching model is applied *per link*,
// with activity computed from the Hamming distance between consecutive flit
// words on each link's wires. A transfer becomes a packet (one header flit
// carrying the address plus payload flits), routed dimension-ordered (X
// first, then Y) from the requesting master's node to the memory node;
// reads additionally bill the reply packet on the return path. Hops are
// store-and-forward: each traversed link serializes the packet's flits and
// adds the router's per-hop latency, and links are FIFO resources — a
// packet queues behind earlier traffic on each link, which is how mesh
// contention shows up in both timing and (through wait-state feedback in
// the master) software energy.
//
// Per-link telemetry (flits, toggles, energy) is kept per run and exposed
// for the NoC estimator's counters and the contention benchmarks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bus/interconnect.hpp"
#include "util/units.hpp"

namespace socpower::bus {

struct NocParams {
  unsigned mesh_cols = 2;
  unsigned mesh_rows = 2;
  /// Link width in bits; one flit moves flit_bits of payload per
  /// cycles_per_flit cycles.
  unsigned flit_bits = 32;
  /// Effective capacitance per link wire (shorter than the global bus the
  /// mesh replaces, hence the smaller default).
  double link_cap_f = 2e-9;
  unsigned router_cycles = 1;      // per-hop routing/arbitration latency
  unsigned cycles_per_flit = 1;    // link serialization per flit
  double handshake_toggles = 2.0;  // control-wire toggles per packet per link
  /// Node index the shared memory / L2 attaches to; -1 means the last node
  /// (mesh corner opposite node 0). Masters map to node (master % nodes()).
  int memory_node = -1;
  ElectricalParams electrical;

  [[nodiscard]] unsigned nodes() const { return mesh_cols * mesh_rows; }
  [[nodiscard]] unsigned flit_bytes() const {
    return flit_bits <= 8 ? 1u : flit_bits / 8u;
  }
  [[nodiscard]] unsigned resolved_memory_node() const {
    return memory_node < 0 ? nodes() - 1
                           : static_cast<unsigned>(memory_node);
  }
};

class NocModel final : public Interconnect {
 public:
  explicit NocModel(NocParams params = {});

  JobId submit(std::uint64_t now, BusRequest request) override;
  [[nodiscard]] bool has_work() const override;
  [[nodiscard]] std::uint64_t next_boundary() const override;
  std::vector<Completion> advance(std::uint64_t t) override;
  [[nodiscard]] const BusTotals& totals() const override { return totals_; }
  void reset() override;

  [[nodiscard]] const NocParams& params() const { return params_; }
  [[nodiscard]] unsigned master_node(int master) const;

  /// Per-directed-link counters of this run (only links with traffic have
  /// non-zero packets). Indexed densely; from/to identify the link.
  struct LinkStats {
    int from = -1;
    int to = -1;
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;
    std::uint64_t toggles = 0;
    Joules energy = 0.0;
  };
  [[nodiscard]] const std::vector<LinkStats>& links() const { return links_; }
  /// "3->7" — stable key for telemetry counter names.
  [[nodiscard]] static std::string link_name(const LinkStats& l);

  /// Dimension-ordered route (sequence of traversed directed links as
  /// (from, to) node pairs); exposed for tests.
  [[nodiscard]] std::vector<std::pair<unsigned, unsigned>> route(
      unsigned from, unsigned to) const;

 private:
  struct Link {
    std::uint64_t free_at = 0;
    std::uint64_t prev_word = 0;  // last flit word on the wires
    std::size_t stats_index = SIZE_MAX;
  };
  struct InFlight {
    JobId id = 0;
    int master = 0;
    BusResult result;
  };

  [[nodiscard]] std::size_t link_index(unsigned from, unsigned to) const;
  Link& link_state(unsigned from, unsigned to);
  /// Send one packet (header word + payload) along `path` starting at
  /// `depart`; returns arrival time at the destination and accumulates
  /// energy/waits into `result`.
  std::uint64_t send_packet(
      const std::vector<std::pair<unsigned, unsigned>>& path,
      std::uint64_t depart, std::uint64_t header,
      const std::vector<std::uint8_t>& payload, BusResult* result);

  NocParams params_;
  std::vector<Link> link_state_;    // nodes * 4, direction-major
  std::vector<LinkStats> links_;    // dense, discovery order
  std::vector<InFlight> in_flight_;
  JobId next_id_ = 1;
  BusTotals totals_;
};

}  // namespace socpower::bus
