#include "bus/noc_model.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace socpower::bus {

namespace {

enum Dir : unsigned { kEast = 0, kWest = 1, kSouth = 2, kNorth = 3 };

}  // namespace

NocModel::NocModel(NocParams params) : params_(params) {
  assert(params_.mesh_cols > 0 && params_.mesh_rows > 0);
  assert(params_.flit_bits >= 1 && params_.flit_bits <= 64);
  assert(params_.resolved_memory_node() < params_.nodes());
  link_state_.resize(static_cast<std::size_t>(params_.nodes()) * 4);
}

unsigned NocModel::master_node(int master) const {
  const unsigned n = params_.nodes();
  const unsigned m = static_cast<unsigned>(master < 0 ? -master : master);
  return m % n;
}

std::vector<std::pair<unsigned, unsigned>> NocModel::route(unsigned from,
                                                           unsigned to) const {
  std::vector<std::pair<unsigned, unsigned>> path;
  const unsigned cols = params_.mesh_cols;
  unsigned x = from % cols, y = from / cols;
  const unsigned tx = to % cols, ty = to / cols;
  unsigned cur = from;
  while (x != tx) {
    x = x < tx ? x + 1 : x - 1;
    const unsigned next = y * cols + x;
    path.emplace_back(cur, next);
    cur = next;
  }
  while (y != ty) {
    y = y < ty ? y + 1 : y - 1;
    const unsigned next = y * cols + x;
    path.emplace_back(cur, next);
    cur = next;
  }
  return path;
}

std::size_t NocModel::link_index(unsigned from, unsigned to) const {
  const unsigned cols = params_.mesh_cols;
  unsigned dir;
  if (to == from + 1) {
    dir = kEast;
  } else if (from > 0 && to == from - 1) {
    dir = kWest;
  } else if (to == from + cols) {
    dir = kSouth;
  } else {
    assert(from >= cols && to == from - cols && "non-adjacent NoC hop");
    dir = kNorth;
  }
  return static_cast<std::size_t>(from) * 4 + dir;
}

NocModel::Link& NocModel::link_state(unsigned from, unsigned to) {
  Link& l = link_state_[link_index(from, to)];
  if (l.stats_index == SIZE_MAX) {
    l.stats_index = links_.size();
    LinkStats s;
    s.from = static_cast<int>(from);
    s.to = static_cast<int>(to);
    links_.push_back(s);
  }
  return l;
}

std::string NocModel::link_name(const LinkStats& l) {
  return std::to_string(l.from) + "->" + std::to_string(l.to);
}

std::uint64_t NocModel::send_packet(
    const std::vector<std::pair<unsigned, unsigned>>& path,
    std::uint64_t depart, std::uint64_t header,
    const std::vector<std::uint8_t>& payload, BusResult* result) {
  const unsigned flit_bytes = params_.flit_bytes();
  const std::uint64_t mask = params_.flit_bits >= 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << params_.flit_bits) - 1;

  // Flit words: header first, then the payload packed little-endian.
  std::vector<std::uint64_t> words;
  words.push_back(header & mask);
  for (std::size_t off = 0; off < payload.size(); off += flit_bytes) {
    std::uint64_t w = 0;
    const std::size_t n = std::min<std::size_t>(flit_bytes,
                                                payload.size() - off);
    for (std::size_t k = 0; k < n; ++k)
      w |= static_cast<std::uint64_t>(payload[off + k]) << (8 * k);
    words.push_back(w & mask);
  }

  const Joules e_toggle = params_.electrical.switch_energy(params_.link_cap_f);
  const std::uint64_t serialize =
      static_cast<std::uint64_t>(words.size()) * params_.cycles_per_flit;

  std::uint64_t arrive = depart;
  if (path.empty()) {
    // Master co-located with the memory node: local delivery, one router
    // traversal, no link switching.
    return arrive + params_.router_cycles;
  }
  bool first_hop = true;
  for (const auto& [from, to] : path) {
    Link& l = link_state(from, to);
    LinkStats& s = links_[l.stats_index];
    const std::uint64_t start = std::max(arrive, l.free_at);
    result->wait_cycles += start - arrive;
    if (first_hop) {
      result->start = start;
      first_hop = false;
    }
    l.free_at = start + serialize;
    arrive = start + params_.router_cycles + serialize;
    result->busy_cycles += params_.router_cycles + serialize;
    ++result->grants;  // one router grant per hop

    std::uint64_t addr_toggles = 0, data_toggles = 0;
    for (std::size_t i = 0; i < words.size(); ++i) {
      const std::uint64_t t = static_cast<std::uint64_t>(
          std::popcount((l.prev_word ^ words[i]) & mask));
      (i == 0 ? addr_toggles : data_toggles) += t;
      l.prev_word = words[i];
    }
    const double hop_toggles = static_cast<double>(addr_toggles) +
                               static_cast<double>(data_toggles) +
                               params_.handshake_toggles;
    const Joules e = e_toggle * hop_toggles;
    ++s.packets;
    s.flits += words.size();
    s.toggles += addr_toggles + data_toggles;
    s.energy += e;
    result->energy += e;
    totals_.addr_toggles += addr_toggles;
    totals_.data_toggles += data_toggles;
    totals_.energy += e;
  }
  return arrive;
}

Interconnect::JobId NocModel::submit(std::uint64_t now, BusRequest request) {
  const unsigned src = master_node(request.master);
  const unsigned mem = params_.resolved_memory_node();

  InFlight f;
  f.id = next_id_++;
  f.master = request.master;
  f.result.start = now;

  // Request packet: header flit (address + R/W marker) plus, for writes,
  // the payload being stored.
  const std::uint64_t header =
      static_cast<std::uint64_t>(request.addr) |
      (request.write ? (std::uint64_t{1} << 31) : 0);
  static const std::vector<std::uint8_t> kEmpty;
  std::uint64_t end = send_packet(route(src, mem), now, header,
                                  request.write ? request.data : kEmpty,
                                  &f.result);
  if (!request.write) {
    // Read reply: the fetched data returns on the mem -> src path.
    end = send_packet(route(mem, src), end, header, request.data, &f.result);
  }
  f.result.end = end;

  ++totals_.transfers;
  totals_.grants += f.result.grants;
  totals_.bytes += request.data.size();
  totals_.wait_cycles += f.result.wait_cycles;

  in_flight_.push_back(std::move(f));
  return in_flight_.back().id;
}

bool NocModel::has_work() const { return !in_flight_.empty(); }

std::uint64_t NocModel::next_boundary() const {
  std::uint64_t t = ~std::uint64_t{0};
  for (const InFlight& f : in_flight_) t = std::min(t, f.result.end);
  return t;
}

std::vector<Interconnect::Completion> NocModel::advance(std::uint64_t t) {
  std::vector<Completion> done;
  std::size_t w = 0;
  for (std::size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i].result.end <= t) {
      done.push_back({in_flight_[i].id, in_flight_[i].master,
                      in_flight_[i].result});
    } else {
      in_flight_[w++] = std::move(in_flight_[i]);
    }
  }
  in_flight_.resize(w);
  return done;
}

void NocModel::reset() {
  link_state_.assign(static_cast<std::size_t>(params_.nodes()) * 4, {});
  links_.clear();
  in_flight_.clear();
  next_id_ = 1;
  totals_ = {};
}

}  // namespace socpower::bus
