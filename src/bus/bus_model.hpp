// Behavioral, parameterizable model of the SOC integration architecture
// (shared bus + arbiter), after the paper's Section 3 and reference [21].
//
// The user supplies budgeted physical parameters (address/data widths and
// per-line effective capacitance from a system-level floorplan); switching
// activity is computed during co-simulation from the actual transaction
// trace, and bus power follows
//     P_bus = 1/2 * Vdd^2 * f * sum_lines Ceff(line_i) * A(line_i).
// The arbiter grants the bus per DMA block: a transfer of N bytes with DMA
// block size D needs ceil(N/D) grants, each paying an arbitration handshake
// (cycles + control-line toggles). Fixed priorities order simultaneous
// requests; between instants the bus is first-come-first-served. All
// parameters can be changed between runs without recompiling the system
// description — the knobs swept in the paper's Figure 7 exploration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bus/interconnect.hpp"
#include "util/units.hpp"

namespace socpower::bus {

struct BusParams {
  unsigned addr_bits = 8;
  /// Data-lane width. 1..8 bits move one (masked) byte per beat; 16/24/32
  /// bits move multiple bytes per beat — fewer beats and less address-line
  /// switching at the cost of more data lines.
  unsigned data_bits = 8;

  [[nodiscard]] unsigned bytes_per_beat() const {
    return data_bits <= 8 ? 1u : data_bits / 8u;
  }
  /// Effective capacitance per bus line (wire + drivers/repeaters). The
  /// paper's exploration uses Cbit = 10 nF.
  double line_cap_f = 10e-9;
  unsigned handshake_cycles = 2;   // request/grant arbitration per DMA block
  double handshake_toggles = 4.0;  // control-line toggles per grant
  unsigned cycles_per_beat = 1;
  unsigned dma_block_size = 16;    // max bytes moved per grant
  ElectricalParams electrical;
};

// BusRequest / BusResult / BusTotals — the transfer vocabulary shared by
// every interconnect implementation — live in bus/interconnect.hpp.

class BusModel {
 public:
  explicit BusModel(BusParams params = {});

  /// Serve requests issued at cycle `now`. All requests in the batch are
  /// considered simultaneous: the arbiter orders them by descending
  /// priority (ties by master id, then submission order). Results are
  /// returned in the input order. `now` must not decrease across calls.
  std::vector<BusResult> arbitrate(std::uint64_t now,
                                   std::vector<BusRequest> requests);

  /// Convenience for a single requester.
  BusResult transfer(std::uint64_t now, BusRequest request);

  [[nodiscard]] std::uint64_t free_at() const { return free_at_; }
  [[nodiscard]] const BusTotals& totals() const { return totals_; }
  [[nodiscard]] const BusParams& params() const { return params_; }

  /// When enabled, the start cycle of every grant is recorded — used to
  /// correlate power peaks with arbiter handshakes (paper Section 5.3).
  void set_keep_grant_times(bool keep) { keep_grant_times_ = keep; }
  [[nodiscard]] const std::vector<std::uint64_t>& grant_times() const {
    return grant_times_;
  }

  void reset();

 private:
  [[nodiscard]] Joules toggle_energy(std::uint64_t toggles) const;
  BusResult serve(std::uint64_t start, const BusRequest& req);

  BusParams params_;
  std::uint64_t free_at_ = 0;
  std::uint32_t prev_addr_ = 0;
  std::uint32_t prev_data_ = 0;  // last beat word on the data lanes
  BusTotals totals_;
  bool keep_grant_times_ = false;
  std::vector<std::uint64_t> grant_times_;
};

/// Grant-level bus scheduler: the arbiter re-arbitrates at every DMA-block
/// boundary among all masters with pending traffic, so a high-priority
/// master preempts (at block granularity) a long transfer of a lower-
/// priority one — the mechanism that makes the priority assignment a real
/// knob in the paper's Figure 7 exploration. Used by the co-estimation
/// master, which advances it in simulated-time order; BusModel above stays
/// as the simple atomic-transfer model.
class BusScheduler : public Interconnect {
 public:
  explicit BusScheduler(BusParams params = {});

  /// Enqueue a transfer at cycle `now` (must be >= the last advance time).
  JobId submit(std::uint64_t now, BusRequest request) override;

  /// Next cycle at which scheduler state changes (a grant completes or a
  /// pending job could start); 0 when fully idle with nothing pending.
  [[nodiscard]] bool has_work() const override;
  [[nodiscard]] std::uint64_t next_boundary() const override;

  /// Advance simulated time to `t`, processing every grant boundary up to
  /// and including it; returns the transfers that completed.
  std::vector<Completion> advance(std::uint64_t t) override;

  [[nodiscard]] const BusTotals& totals() const override { return totals_; }
  [[nodiscard]] const BusParams& params() const { return params_; }
  void set_keep_grant_times(bool keep) { keep_grant_times_ = keep; }
  [[nodiscard]] const std::vector<std::uint64_t>& grant_times() const {
    return grant_times_;
  }
  void reset() override;

 private:
  struct Job {
    JobId id = 0;
    BusRequest request;
    std::size_t next_byte = 0;
    std::uint64_t submit_time = 0;
    std::uint64_t first_start = 0;
    bool started = false;
    unsigned grants = 0;
    Joules energy = 0.0;
  };

  [[nodiscard]] Joules toggle_energy(std::uint64_t toggles) const;
  /// Picks the pending job to grant next (highest priority; ties by master
  /// id then submission order). Returns pending_.size() when none eligible.
  [[nodiscard]] std::size_t pick(std::uint64_t now) const;
  void start_grant(std::size_t job_index, std::uint64_t start);

  BusParams params_;
  std::vector<Job> pending_;
  bool busy_ = false;
  std::size_t active_index_ = 0;   // into pending_ while busy_
  std::uint64_t grant_end_ = 0;
  std::uint64_t last_advance_ = 0;
  std::uint32_t prev_addr_ = 0;
  std::uint32_t prev_data_ = 0;  // last beat word on the data lanes
  JobId next_id_ = 1;
  BusTotals totals_;
  bool keep_grant_times_ = false;
  std::vector<std::uint64_t> grant_times_;
};

}  // namespace socpower::bus
