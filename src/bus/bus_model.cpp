#include "bus/bus_model.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdio>
#include <numeric>

#include "telemetry/registry.hpp"

namespace socpower::bus {

namespace {

/// Per-master grant counter; masters above the table size share the last
/// slot (real designs here have a handful of masters).
telemetry::Counter& master_grant_counter(int master) {
  static const std::array<telemetry::Counter*, 8> counters = [] {
    std::array<telemetry::Counter*, 8> a{};
    for (std::size_t i = 0; i < a.size(); ++i) {
      char name[32];
      std::snprintf(name, sizeof name, "bus.master%zu.grants", i);
      a[i] = &telemetry::registry().counter(name);
    }
    return a;
  }();
  const auto idx = master >= 0 && static_cast<std::size_t>(master) <
                                      counters.size()
                       ? static_cast<std::size_t>(master)
                       : counters.size() - 1;
  return *counters[idx];
}

}  // namespace

BusModel::BusModel(BusParams params) : params_(params) {
  assert(params_.dma_block_size > 0);
  assert(params_.addr_bits >= 1 && params_.addr_bits <= 32);
  assert(params_.data_bits >= 1 && params_.data_bits <= 32);
  assert(params_.data_bits <= 8 || params_.data_bits % 8 == 0);
}

Joules BusModel::toggle_energy(std::uint64_t toggles) const {
  return params_.electrical.switch_energy(params_.line_cap_f) *
         static_cast<double>(toggles);
}

BusResult BusModel::serve(std::uint64_t start, const BusRequest& req) {
  BusResult res;
  res.start = start;
  const std::uint32_t addr_mask =
      params_.addr_bits >= 32 ? 0xffffffffu : ((1u << params_.addr_bits) - 1);
  const unsigned bpb = params_.bytes_per_beat();
  const std::uint32_t data_mask =
      params_.data_bits >= 32 ? 0xffffffffu
                              : ((1u << params_.data_bits) - 1);

  const std::size_t n = req.data.size();
  res.grants = n == 0 ? 1u
                      : static_cast<unsigned>((n + params_.dma_block_size - 1) /
                                              params_.dma_block_size);
  std::uint64_t cycle = start;
  std::size_t i = 0;
  for (unsigned g = 0; g < res.grants; ++g) {
    if (keep_grant_times_) grant_times_.push_back(cycle);
    cycle += params_.handshake_cycles;
    const auto hs_toggles =
        static_cast<std::uint64_t>(params_.handshake_toggles);
    res.energy += toggle_energy(hs_toggles);
    const std::size_t block_end =
        std::min(n, i + params_.dma_block_size);
    while (i < block_end) {
      const std::uint32_t a =
          (req.addr + static_cast<std::uint32_t>(i)) & addr_mask;
      std::uint32_t word = 0;
      for (unsigned b = 0; b < bpb && i < block_end; ++b, ++i)
        word |= static_cast<std::uint32_t>(req.data[i]) << (8 * b);
      word &= data_mask;
      const auto at = static_cast<std::uint64_t>(
          std::popcount(a ^ (prev_addr_ & addr_mask)));
      const auto dt =
          static_cast<std::uint64_t>(std::popcount(word ^ prev_data_));
      totals_.addr_toggles += at;
      totals_.data_toggles += dt;
      res.energy += toggle_energy(at + dt);
      prev_addr_ = a;
      prev_data_ = word;
      cycle += params_.cycles_per_beat;
    }
  }
  res.end = cycle;
  res.busy_cycles = cycle - start;
  totals_.transfers += 1;
  totals_.grants += res.grants;
  totals_.bytes += n;
  totals_.energy += res.energy;
  return res;
}

std::vector<BusResult> BusModel::arbitrate(std::uint64_t now,
                                           std::vector<BusRequest> requests) {
  assert(now + 1 > 0);
  // Order by priority (descending), then master id, then submission order.
  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&requests](std::size_t a, std::size_t b) {
                     if (requests[a].priority != requests[b].priority)
                       return requests[a].priority > requests[b].priority;
                     return requests[a].master < requests[b].master;
                   });
  std::vector<BusResult> results(requests.size());
  for (const std::size_t ri : order) {
    const std::uint64_t start = std::max(now, free_at_);
    BusResult r = serve(start, requests[ri]);
    r.wait_cycles = start - now;
    free_at_ = r.end;
    results[ri] = r;
  }
  return results;
}

BusResult BusModel::transfer(std::uint64_t now, BusRequest request) {
  std::vector<BusRequest> reqs;
  reqs.push_back(std::move(request));
  return arbitrate(now, std::move(reqs))[0];
}

void BusModel::reset() {
  free_at_ = 0;
  prev_addr_ = 0;
  prev_data_ = 0;
  totals_ = {};
  grant_times_.clear();
}

// ---------------------------------------------------------------------------
// BusScheduler

BusScheduler::BusScheduler(BusParams params) : params_(params) {
  assert(params_.dma_block_size > 0);
}

Joules BusScheduler::toggle_energy(std::uint64_t toggles) const {
  return params_.electrical.switch_energy(params_.line_cap_f) *
         static_cast<double>(toggles);
}

BusScheduler::JobId BusScheduler::submit(std::uint64_t now,
                                         BusRequest request) {
  Job j;
  j.id = next_id_++;
  j.request = std::move(request);
  j.submit_time = now;
  pending_.push_back(std::move(j));
  return pending_.back().id;
}

bool BusScheduler::has_work() const { return busy_ || !pending_.empty(); }

std::uint64_t BusScheduler::next_boundary() const {
  if (busy_) return grant_end_;
  std::uint64_t earliest = 0;
  bool any = false;
  for (const Job& j : pending_) {
    if (!any || j.submit_time < earliest) {
      earliest = j.submit_time;
      any = true;
    }
  }
  return any ? earliest : 0;
}

std::size_t BusScheduler::pick(std::uint64_t now) const {
  std::size_t best = pending_.size();
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const Job& j = pending_[i];
    if (j.submit_time > now) continue;
    if (best == pending_.size()) {
      best = i;
      continue;
    }
    const Job& b = pending_[best];
    if (j.request.priority != b.request.priority) {
      if (j.request.priority > b.request.priority) best = i;
    } else if (j.request.master != b.request.master) {
      if (j.request.master < b.request.master) best = i;
    } else if (j.id < b.id) {
      best = i;
    }
  }
  return best;
}

void BusScheduler::start_grant(std::size_t job_index, std::uint64_t start) {
  Job& j = pending_[job_index];
  if (!j.started) {
    j.started = true;
    j.first_start = start;
  }
  if (keep_grant_times_) grant_times_.push_back(start);
  ++j.grants;
  ++totals_.grants;
  telemetry::registry().counter("bus.grants").add();
  master_grant_counter(j.request.master).add();
  const std::size_t grant_byte0 = j.next_byte;

  const std::uint32_t addr_mask =
      params_.addr_bits >= 32 ? 0xffffffffu : ((1u << params_.addr_bits) - 1);
  const unsigned bpb = params_.bytes_per_beat();
  const std::uint32_t data_mask =
      params_.data_bits >= 32 ? 0xffffffffu
                              : ((1u << params_.data_bits) - 1);

  Joules e = toggle_energy(
      static_cast<std::uint64_t>(params_.handshake_toggles));
  const std::size_t block_end = std::min(
      j.request.data.size(), j.next_byte + params_.dma_block_size);
  std::uint64_t cycles = params_.handshake_cycles;
  while (j.next_byte < block_end) {
    const std::uint32_t a =
        (j.request.addr + static_cast<std::uint32_t>(j.next_byte)) &
        addr_mask;
    std::uint32_t word = 0;
    for (unsigned b = 0; b < bpb && j.next_byte < block_end;
         ++b, ++j.next_byte) {
      word |= static_cast<std::uint32_t>(j.request.data[j.next_byte])
              << (8 * b);
      ++totals_.bytes;
    }
    word &= data_mask;
    const auto at = static_cast<std::uint64_t>(
        std::popcount(a ^ (prev_addr_ & addr_mask)));
    const auto dt =
        static_cast<std::uint64_t>(std::popcount(word ^ prev_data_));
    totals_.addr_toggles += at;
    totals_.data_toggles += dt;
    e += toggle_energy(at + dt);
    prev_addr_ = a;
    prev_data_ = word;
    cycles += params_.cycles_per_beat;
  }
  j.energy += e;
  totals_.energy += e;
  telemetry::registry().counter("bus.bytes").add(j.next_byte - grant_byte0);
  busy_ = true;
  active_index_ = job_index;
  grant_end_ = start + cycles;
}

std::vector<BusScheduler::Completion> BusScheduler::advance(std::uint64_t t) {
  assert(t >= last_advance_);
  std::vector<Completion> done;
  while (true) {
    if (busy_) {
      if (grant_end_ > t) break;
      const std::uint64_t now = grant_end_;
      busy_ = false;
      Job& j = pending_[active_index_];
      if (j.next_byte >= j.request.data.size()) {
        Completion c;
        c.id = j.id;
        c.master = j.request.master;
        c.result.start = j.first_start;
        c.result.end = now;
        c.result.wait_cycles = j.first_start - j.submit_time;
        c.result.busy_cycles = now - j.first_start;
        c.result.grants = j.grants;
        c.result.energy = j.energy;
        done.push_back(c);
        totals_.wait_cycles += c.result.wait_cycles;
        ++totals_.transfers;
        static telemetry::Counter& transfers =
            telemetry::registry().counter("bus.transfers");
        static telemetry::Counter& wait_cycles =
            telemetry::registry().counter("bus.wait_cycles");
        transfers.add();
        wait_cycles.add(c.result.wait_cycles);
        pending_.erase(pending_.begin() +
                       static_cast<std::ptrdiff_t>(active_index_));
      }
      const std::size_t nxt = pick(now);
      if (nxt != pending_.size()) start_grant(nxt, now);
      continue;
    }
    // Idle: the earliest-submitted pending job (if it arrives by t) starts
    // the bus; arbitration happens among everything pending at that time.
    if (pending_.empty()) break;
    std::uint64_t earliest = pending_[0].submit_time;
    for (const Job& j : pending_) earliest = std::min(earliest, j.submit_time);
    if (earliest > t) break;
    const std::uint64_t start = std::max(earliest, last_advance_);
    const std::size_t nxt = pick(start);
    assert(nxt != pending_.size());
    start_grant(nxt, start);
  }
  last_advance_ = t;
  return done;
}

void BusScheduler::reset() {
  pending_.clear();
  busy_ = false;
  grant_end_ = 0;
  last_advance_ = 0;
  prev_addr_ = 0;
  prev_data_ = 0;
  next_id_ = 1;
  totals_ = {};
  grant_times_.clear();
}

}  // namespace socpower::bus
