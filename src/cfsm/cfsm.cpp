#include "cfsm/cfsm.hpp"

#include <algorithm>
#include <cassert>

namespace socpower::cfsm {

void ReactionInputs::clear() { events_.clear(); }

void ReactionInputs::set(EventId e, std::int32_t value) {
  for (auto& [ev, val] : events_) {
    if (ev == e) {
      val = value;  // latest emission in the same instant wins
      return;
    }
  }
  events_.emplace_back(e, value);
}

bool ReactionInputs::present(EventId e) const {
  return std::any_of(events_.begin(), events_.end(),
                     [e](const auto& p) { return p.first == e; });
}

std::int32_t ReactionInputs::value(EventId e) const {
  for (const auto& [ev, val] : events_)
    if (ev == e) return val;
  return 0;
}

namespace {

/// Adapts (state, inputs) to the expression evaluator and receives
/// assignments; writes are immediately visible to later reads, giving the
/// sequential semantics of an s-graph path.
class ReactionEnv final : public EvalContext, public VarStore {
 public:
  ReactionEnv(CfsmState& st, const ReactionInputs& in) : st_(st), in_(in) {}

  [[nodiscard]] std::int32_t var(VarId v) const override {
    assert(v >= 0 && static_cast<std::size_t>(v) < st_.vars.size());
    return st_.vars[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] bool event_present(EventId e) const override {
    return in_.present(e);
  }
  [[nodiscard]] std::int32_t event_value(EventId e) const override {
    return in_.value(e);
  }
  void set_var(VarId v, std::int32_t value) override {
    assert(v >= 0 && static_cast<std::size_t>(v) < st_.vars.size());
    st_.vars[static_cast<std::size_t>(v)] = value;
  }

 private:
  CfsmState& st_;
  const ReactionInputs& in_;
};

}  // namespace

Cfsm::Cfsm(CfsmId id, std::string name)
    : id_(id), name_(std::move(name)),
      graph_(std::make_unique<SGraph>(&arena_)) {}

void Cfsm::add_input(EventId e) { inputs_.push_back(e); }
void Cfsm::add_output(EventId e) { outputs_.push_back(e); }
void Cfsm::add_sampled_input(EventId e) { sampled_inputs_.push_back(e); }

VarId Cfsm::add_var(std::string name, std::int32_t init) {
  vars_.push_back({std::move(name), init});
  return static_cast<VarId>(vars_.size() - 1);
}

bool Cfsm::listens_to(EventId e) const {
  return triggers_on(e) ||
         std::find(sampled_inputs_.begin(), sampled_inputs_.end(), e) !=
             sampled_inputs_.end() ||
         (reset_event_ && *reset_event_ == e);
}

bool Cfsm::triggers_on(EventId e) const {
  return std::find(inputs_.begin(), inputs_.end(), e) != inputs_.end();
}

CfsmState Cfsm::make_state() const {
  CfsmState st;
  st.vars.reserve(vars_.size());
  for (const auto& v : vars_) st.vars.push_back(v.init);
  return st;
}

void Cfsm::reset_state(CfsmState& st) const {
  st.vars.clear();
  for (const auto& v : vars_) st.vars.push_back(v.init);
}

Reaction Cfsm::react(const ReactionInputs& inputs, CfsmState& st,
                     ExecutionObserver* observer) const {
  if (reset_event_ && inputs.present(*reset_event_)) {
    reset_state(st);
    return {};  // empty trace: reset consumes the instant
  }
  ReactionEnv env(st, inputs);
  return graph_->run(env, env, observer);
}

EventId Network::declare_event(std::string name) {
  assert(event_id(name) < 0 && "duplicate event name");
  events_.push_back({std::move(name)});
  return static_cast<EventId>(events_.size() - 1);
}

EventId Network::event_id(const std::string& name) const {
  for (std::size_t i = 0; i < events_.size(); ++i)
    if (events_[i].name == name) return static_cast<EventId>(i);
  return -1;
}

const std::string& Network::event_name(EventId e) const {
  assert(e >= 0 && static_cast<std::size_t>(e) < events_.size());
  return events_[static_cast<std::size_t>(e)].name;
}

Cfsm& Network::add_cfsm(std::string name) {
  cfsms_.push_back(std::make_unique<Cfsm>(
      static_cast<CfsmId>(cfsms_.size()), std::move(name)));
  return *cfsms_.back();
}

Cfsm& Network::cfsm(CfsmId id) {
  assert(id >= 0 && static_cast<std::size_t>(id) < cfsms_.size());
  return *cfsms_[static_cast<std::size_t>(id)];
}

const Cfsm& Network::cfsm(CfsmId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < cfsms_.size());
  return *cfsms_[static_cast<std::size_t>(id)];
}

CfsmId Network::cfsm_id(const std::string& name) const {
  for (const auto& c : cfsms_)
    if (c->name() == name) return c->id();
  return kNoCfsm;
}

std::vector<CfsmId> Network::receivers(EventId e) const {
  std::vector<CfsmId> out;
  for (const auto& c : cfsms_)
    if (c->triggers_on(e) || (c->reset_event() && *c->reset_event() == e))
      out.push_back(c->id());
  return out;
}

std::vector<CfsmId> Network::samplers(EventId e) const {
  std::vector<CfsmId> out;
  for (const auto& c : cfsms_) {
    const auto& s = c->sampled_inputs();
    if (std::find(s.begin(), s.end(), e) != s.end()) out.push_back(c->id());
  }
  return out;
}

std::string Network::validate() const {
  for (const auto& c : cfsms_) {
    std::string err = c->graph().validate();
    if (!err.empty()) return "cfsm '" + c->name() + "': " + err;
  }
  return {};
}

}  // namespace socpower::cfsm
