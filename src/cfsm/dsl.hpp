// A small textual front end for CFSM networks.
//
// POLIS systems were captured in Esterel; this DSL plays that role for the
// framework so systems can be described the way the paper's Figure 1 shows
// them, without hand-building s-graphs. Structured control flow only —
// loops are expressed by a process re-triggering itself through an event,
// which is exactly the CFSM model's rule (and what keeps per-transition
// paths finite for the energy cache).
//
// Grammar (informal):
//
//   network   := { "event" ident { "," ident } ";" | process }*
//   process   := "process" ident "{" decl* stmt* "}"
//   decl      := "input" idents ";" | "sampled" idents ";"
//              | "output" idents ";" | "reset" ident ";"
//              | "var" ident [ "=" int ] { "," ident [ "=" int ] } ";"
//   stmt      := ident "=" expr ";"
//              | "emit" ident [ "(" expr ")" ] ";"
//              | "if" "(" expr ")" block [ "else" (block | if-stmt) ]
//   block     := "{" stmt* "}"
//   expr      := C-like precedence over || && | ^ & == != < <= > >=
//                << >> + - * / % with unary ! ~ -, parentheses,
//                integer literals (decimal or 0x...), variables,
//                "val" "(" event ")", "present" "(" event ")"
//
// Line comments start with "//" or "#".
#pragma once

#include <string>
#include <string_view>

#include "cfsm/cfsm.hpp"

namespace socpower::cfsm {

struct DslResult {
  /// Empty on success; "line N: message" otherwise.
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parses `source` and populates `network` (events + processes with built,
/// validated s-graphs). The network should be empty; on error it may be
/// partially populated and must be discarded.
[[nodiscard]] DslResult parse_network(std::string_view source,
                                      Network& network);

}  // namespace socpower::cfsm
