#include "cfsm/sgraph.hpp"

#include <cassert>

namespace socpower::cfsm {

PathId PathTable::intern(const std::vector<NodeId>& trace) {
  std::string key;
  key.reserve(trace.size() * sizeof(NodeId));
  for (NodeId n : trace)
    key.append(reinterpret_cast<const char*>(&n), sizeof n);
  const auto [it, inserted] =
      index_.try_emplace(key, static_cast<PathId>(paths_.size()));
  if (inserted) paths_.push_back(trace);
  return it->second;
}

const std::vector<NodeId>& PathTable::path(PathId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < paths_.size());
  return paths_[static_cast<std::size_t>(id)];
}

NodeId SGraph::reserve() {
  nodes_.emplace_back();
  defined_.push_back(false);
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId SGraph::add_end() {
  const NodeId id = reserve();
  define_end(id);
  return id;
}

NodeId SGraph::add_assign(VarId var, ExprId rhs, NodeId next) {
  const NodeId id = reserve();
  define_assign(id, var, rhs, next);
  return id;
}

NodeId SGraph::add_emit(EventId event, ExprId value, NodeId next) {
  const NodeId id = reserve();
  define_emit(id, event, value, next);
  return id;
}

NodeId SGraph::add_test(ExprId cond, NodeId then_node, NodeId else_node) {
  const NodeId id = reserve();
  define_test(id, cond, then_node, else_node);
  return id;
}

void SGraph::define_end(NodeId id) {
  auto& n = nodes_.at(static_cast<std::size_t>(id));
  n = SNode{};
  n.kind = NodeKind::kEnd;
  defined_[static_cast<std::size_t>(id)] = true;
}

void SGraph::define_assign(NodeId id, VarId var, ExprId rhs, NodeId next) {
  auto& n = nodes_.at(static_cast<std::size_t>(id));
  n.kind = NodeKind::kAssign;
  n.var = var;
  n.expr = rhs;
  n.next = next;
  defined_[static_cast<std::size_t>(id)] = true;
}

void SGraph::define_emit(NodeId id, EventId event, ExprId value, NodeId next) {
  auto& n = nodes_.at(static_cast<std::size_t>(id));
  n.kind = NodeKind::kEmit;
  n.event = event;
  n.expr = value;
  n.next = next;
  defined_[static_cast<std::size_t>(id)] = true;
}

void SGraph::define_test(NodeId id, ExprId cond, NodeId then_node,
                         NodeId else_node) {
  auto& n = nodes_.at(static_cast<std::size_t>(id));
  n.kind = NodeKind::kTest;
  n.expr = cond;
  n.next = then_node;
  n.next_else = else_node;
  defined_[static_cast<std::size_t>(id)] = true;
}

const SNode& SGraph::node(NodeId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)];
}

std::string SGraph::validate() const {
  if (root_ == kNoNode) return "s-graph has no root";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!defined_[i])
      return "node " + std::to_string(i) + " reserved but never defined";
    const SNode& n = nodes_[i];
    auto check_succ = [&](NodeId s) {
      return s >= 0 && static_cast<std::size_t>(s) < nodes_.size();
    };
    if (n.kind != NodeKind::kEnd && !check_succ(n.next))
      return "node " + std::to_string(i) + " has invalid successor";
    if (n.kind == NodeKind::kTest && !check_succ(n.next_else))
      return "node " + std::to_string(i) + " has invalid else-successor";
  }
  // Acyclicity: iterative DFS with colors.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(nodes_.size(), kWhite);
  std::vector<std::pair<NodeId, int>> stack;  // (node, next-successor-index)
  stack.emplace_back(root_, 0);
  color[static_cast<std::size_t>(root_)] = kGray;
  while (!stack.empty()) {
    auto& [id, si] = stack.back();
    const SNode& n = nodes_[static_cast<std::size_t>(id)];
    NodeId succ = kNoNode;
    if (n.kind == NodeKind::kTest) {
      if (si == 0) succ = n.next;
      else if (si == 1) succ = n.next_else;
    } else if (n.kind != NodeKind::kEnd && si == 0) {
      succ = n.next;
    }
    ++si;
    if (succ == kNoNode) {
      color[static_cast<std::size_t>(id)] = kBlack;
      stack.pop_back();
      continue;
    }
    auto& c = color[static_cast<std::size_t>(succ)];
    if (c == kGray) return "s-graph contains a cycle through node " +
                           std::to_string(succ);
    if (c == kWhite) {
      c = kGray;
      stack.emplace_back(succ, 0);
    }
  }
  return {};
}

std::vector<std::vector<NodeId>> SGraph::enumerate_paths(
    std::size_t cap) const {
  std::vector<std::vector<NodeId>> out;
  std::vector<NodeId> cur;
  // Explicit stack of (node, branch-choice) keeps this iterative.
  struct Frame {
    NodeId id;
    int choice;  // for Test: 0 = then pending, 1 = else pending, 2 = done
  };
  std::vector<Frame> stack{{root_, 0}};
  cur.push_back(root_);
  while (!stack.empty() && out.size() < cap) {
    Frame& f = stack.back();
    const SNode& n = nodes_[static_cast<std::size_t>(f.id)];
    NodeId succ = kNoNode;
    if (n.kind == NodeKind::kEnd) {
      out.push_back(cur);
      stack.pop_back();
      cur.pop_back();
      continue;
    }
    if (n.kind == NodeKind::kTest) {
      if (f.choice == 0) succ = n.next;
      else if (f.choice == 1) succ = n.next_else;
    } else {
      if (f.choice == 0) succ = n.next;
    }
    ++f.choice;
    if (succ == kNoNode) {
      stack.pop_back();
      cur.pop_back();
      continue;
    }
    stack.push_back({succ, 0});
    cur.push_back(succ);
  }
  return out;
}

Reaction SGraph::run(const EvalContext& ctx, VarStore& store,
                     ExecutionObserver* observer) const {
  assert(root_ != kNoNode);
  Reaction r;
  NodeId id = root_;
  // Node count bounds path length in a DAG; guards against accidental cycles
  // in unvalidated graphs.
  const std::size_t limit = nodes_.size() + 1;
  while (true) {
    assert(r.trace.size() < limit && "cycle in s-graph (run validate())");
    (void)limit;
    r.trace.push_back(id);
    const SNode& n = nodes_[static_cast<std::size_t>(id)];
    switch (n.kind) {
      case NodeKind::kEnd:
        if (observer) observer->on_node(id, n, false);
        return r;
      case NodeKind::kAssign: {
        const std::int32_t v = arena_->eval(n.expr, ctx);
        store.set_var(n.var, v);
        if (observer) observer->on_node(id, n, false);
        id = n.next;
        break;
      }
      case NodeKind::kEmit: {
        const std::int32_t v =
            n.expr == kNoExpr ? 0 : arena_->eval(n.expr, ctx);
        r.emissions.push_back({n.event, v});
        if (observer) observer->on_node(id, n, false);
        id = n.next;
        break;
      }
      case NodeKind::kTest: {
        const bool taken = arena_->eval(n.expr, ctx) != 0;
        if (observer) observer->on_node(id, n, taken);
        id = taken ? n.next : n.next_else;
        break;
      }
    }
  }
}

}  // namespace socpower::cfsm
