#include "cfsm/expr.hpp"

#include <cassert>

namespace socpower::cfsm {

int expr_arity(ExprOp op) {
  switch (op) {
    case ExprOp::kConst:
    case ExprOp::kVar:
    case ExprOp::kEventValue:
    case ExprOp::kEventPresent:
      return 0;
    case ExprOp::kNeg:
    case ExprOp::kBitNot:
    case ExprOp::kLogicNot:
      return 1;
    default:
      return 2;
  }
}

const char* expr_op_name(ExprOp op) {
  switch (op) {
    case ExprOp::kConst: return "CONST";
    case ExprOp::kVar: return "RVAR";
    case ExprOp::kEventValue: return "EVAL";
    case ExprOp::kEventPresent: return "TEIN";
    case ExprOp::kAdd: return "ADD";
    case ExprOp::kSub: return "SUB";
    case ExprOp::kMul: return "MUL";
    case ExprOp::kDiv: return "DIV";
    case ExprOp::kMod: return "MOD";
    case ExprOp::kNeg: return "NEG";
    case ExprOp::kBitAnd: return "AND";
    case ExprOp::kBitOr: return "OR";
    case ExprOp::kBitXor: return "XOR";
    case ExprOp::kBitNot: return "NOT";
    case ExprOp::kShl: return "SHL";
    case ExprOp::kShr: return "SHR";
    case ExprOp::kEq: return "EQ";
    case ExprOp::kNe: return "NE";
    case ExprOp::kLt: return "LT";
    case ExprOp::kLe: return "LE";
    case ExprOp::kGt: return "GT";
    case ExprOp::kGe: return "GE";
    case ExprOp::kLogicAnd: return "LAND";
    case ExprOp::kLogicOr: return "LOR";
    case ExprOp::kLogicNot: return "LNOT";
  }
  return "?";
}

std::int32_t apply_expr_op(ExprOp op, std::int32_t a, std::int32_t b) {
  const auto ua = static_cast<std::uint32_t>(a);
  const auto ub = static_cast<std::uint32_t>(b);
  switch (op) {
    case ExprOp::kAdd: return static_cast<std::int32_t>(ua + ub);
    case ExprOp::kSub: return static_cast<std::int32_t>(ua - ub);
    case ExprOp::kMul: return static_cast<std::int32_t>(ua * ub);
    case ExprOp::kDiv: return b == 0 ? 0 : a / b;
    // x mod 0 == x, consistent with the a - (a/b)*b lowering used by both
    // the software code generator and the hardware datapath (a/0 == 0).
    case ExprOp::kMod: return b == 0 ? a : a % b;
    case ExprOp::kNeg: return static_cast<std::int32_t>(0u - ua);
    case ExprOp::kBitAnd: return a & b;
    case ExprOp::kBitOr: return a | b;
    case ExprOp::kBitXor: return a ^ b;
    case ExprOp::kBitNot: return ~a;
    case ExprOp::kShl:
      return static_cast<std::int32_t>(ua << (ub & 31u));
    case ExprOp::kShr: return a >> (ub & 31u);
    case ExprOp::kEq: return a == b ? 1 : 0;
    case ExprOp::kNe: return a != b ? 1 : 0;
    case ExprOp::kLt: return a < b ? 1 : 0;
    case ExprOp::kLe: return a <= b ? 1 : 0;
    case ExprOp::kGt: return a > b ? 1 : 0;
    case ExprOp::kGe: return a >= b ? 1 : 0;
    case ExprOp::kLogicAnd: return (a != 0 && b != 0) ? 1 : 0;
    case ExprOp::kLogicOr: return (a != 0 || b != 0) ? 1 : 0;
    case ExprOp::kLogicNot: return a == 0 ? 1 : 0;
    default:
      assert(false && "apply_expr_op called with a leaf operator");
      return 0;
  }
}

ExprId ExprArena::add(ExprNode n) {
  nodes_.push_back(n);
  return static_cast<ExprId>(nodes_.size() - 1);
}

const ExprNode& ExprArena::at(ExprId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)];
}

ExprId ExprArena::constant(std::int32_t v) {
  return add({ExprOp::kConst, v, kNoExpr, kNoExpr});
}

ExprId ExprArena::variable(VarId v) {
  return add({ExprOp::kVar, v, kNoExpr, kNoExpr});
}

ExprId ExprArena::event_value(EventId e) {
  return add({ExprOp::kEventValue, e, kNoExpr, kNoExpr});
}

ExprId ExprArena::event_present(EventId e) {
  return add({ExprOp::kEventPresent, e, kNoExpr, kNoExpr});
}

ExprId ExprArena::unary(ExprOp op, ExprId a) {
  assert(expr_arity(op) == 1);
  return add({op, 0, a, kNoExpr});
}

ExprId ExprArena::binary(ExprOp op, ExprId a, ExprId b) {
  assert(expr_arity(op) == 2);
  return add({op, 0, a, b});
}

std::int32_t ExprArena::eval(ExprId id, const EvalContext& ctx) const {
  const ExprNode& n = at(id);
  switch (n.op) {
    case ExprOp::kConst:
      return n.value;
    case ExprOp::kVar:
      return ctx.var(n.value);
    case ExprOp::kEventValue:
      return ctx.event_present(n.value) ? ctx.event_value(n.value) : 0;
    case ExprOp::kEventPresent:
      return ctx.event_present(n.value) ? 1 : 0;
    default: {
      const std::int32_t a = eval(n.lhs, ctx);
      const std::int32_t b =
          expr_arity(n.op) == 2 ? eval(n.rhs, ctx) : 0;
      return apply_expr_op(n.op, a, b);
    }
  }
}

void ExprArena::flatten(ExprId id, std::vector<ExprId>& out) const {
  const ExprNode& n = at(id);
  if (n.lhs != kNoExpr) flatten(n.lhs, out);
  if (n.rhs != kNoExpr) flatten(n.rhs, out);
  out.push_back(id);
}

std::size_t ExprArena::tree_size(ExprId id) const {
  const ExprNode& n = at(id);
  std::size_t s = 1;
  if (n.lhs != kNoExpr) s += tree_size(n.lhs);
  if (n.rhs != kNoExpr) s += tree_size(n.rhs);
  return s;
}

std::string ExprArena::to_string(ExprId id) const {
  const ExprNode& n = at(id);
  switch (n.op) {
    case ExprOp::kConst:
      return std::to_string(n.value);
    case ExprOp::kVar:
      return "v" + std::to_string(n.value);
    case ExprOp::kEventValue:
      return "val(e" + std::to_string(n.value) + ")";
    case ExprOp::kEventPresent:
      return "present(e" + std::to_string(n.value) + ")";
    default: {
      std::string s = expr_op_name(n.op);
      s += "(";
      s += to_string(n.lhs);
      if (expr_arity(n.op) == 2) {
        s += ",";
        s += to_string(n.rhs);
      }
      s += ")";
      return s;
    }
  }
}

}  // namespace socpower::cfsm
