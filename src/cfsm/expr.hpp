// Expression IR for CFSM transition functions.
//
// POLIS describes each process's reaction as an "s-graph" whose nodes test
// and assign integer-valued expressions over process variables and input
// event values. Expressions here live in a per-CFSM arena (index-based, no
// pointers) so s-graphs are cheap to copy and hash. The ~20 operator kinds
// mirror the pre-characterized function library the paper mentions in
// Section 4.1 (ADD(x1,x2), NOT(x1), EQ(x1,x2), ...).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace socpower::cfsm {

using ExprId = std::int32_t;
using VarId = std::int32_t;
using EventId = std::int32_t;

inline constexpr ExprId kNoExpr = -1;

enum class ExprOp : std::uint8_t {
  kConst,         // literal value
  kVar,           // CFSM variable
  kEventValue,    // value carried by an input event (0 if absent)
  kEventPresent,  // 1 if the input event is present in this reaction
  kAdd,
  kSub,
  kMul,
  kDiv,  // trapping-free: x/0 == 0 (matches HW datapath guard)
  kMod,  // x%0 == x (consistent with the a-(a/b)*b lowering)
  kNeg,
  kBitAnd,
  kBitOr,
  kBitXor,
  kBitNot,
  kShl,  // shift amounts masked to [0,31]
  kShr,  // arithmetic shift right
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLogicAnd,  // operands normalized to 0/1
  kLogicOr,
  kLogicNot,
};

/// Number of operands an operator consumes (0 for leaves).
[[nodiscard]] int expr_arity(ExprOp op);
/// Stable mnemonic ("ADD", "EQ", ...) used by macro-model parameter files.
[[nodiscard]] const char* expr_op_name(ExprOp op);

struct ExprNode {
  ExprOp op = ExprOp::kConst;
  std::int32_t value = 0;  // kConst: literal; kVar: VarId; kEvent*: EventId
  ExprId lhs = kNoExpr;
  ExprId rhs = kNoExpr;
};

/// Evaluation environment: variable store plus the set of input events
/// present in the current reaction.
class EvalContext {
 public:
  virtual ~EvalContext() = default;
  [[nodiscard]] virtual std::int32_t var(VarId v) const = 0;
  [[nodiscard]] virtual bool event_present(EventId e) const = 0;
  [[nodiscard]] virtual std::int32_t event_value(EventId e) const = 0;
};

/// Append-only expression arena owned by a CFSM.
class ExprArena {
 public:
  ExprId add(ExprNode n);
  [[nodiscard]] const ExprNode& at(ExprId id) const;
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  // Leaf constructors.
  ExprId constant(std::int32_t v);
  ExprId variable(VarId v);
  ExprId event_value(EventId e);
  ExprId event_present(EventId e);
  // Operator constructors (arity checked with assertions).
  ExprId unary(ExprOp op, ExprId a);
  ExprId binary(ExprOp op, ExprId a, ExprId b);

  /// Evaluate expression `id` in `ctx`.
  [[nodiscard]] std::int32_t eval(ExprId id, const EvalContext& ctx) const;

  /// Post-order operator sequence of the expression tree — the macro-op
  /// stream the software synthesizer consumes (leaves included).
  void flatten(ExprId id, std::vector<ExprId>& out) const;

  /// Number of nodes in the tree rooted at `id`.
  [[nodiscard]] std::size_t tree_size(ExprId id) const;

  /// Human-readable rendering for debug/report output.
  [[nodiscard]] std::string to_string(ExprId id) const;

 private:
  std::vector<ExprNode> nodes_;
};

/// Shared scalar semantics for one operator application — the single source
/// of truth used by the interpreter, the ISS code generator's expected
/// results, and the gate-level datapath synthesizer's reference model.
[[nodiscard]] std::int32_t apply_expr_op(ExprOp op, std::int32_t a,
                                         std::int32_t b);

}  // namespace socpower::cfsm
