// CFSM (Codesign Finite State Machine) processes and networks.
//
// A Cfsm owns its variable declarations, an expression arena and an s-graph
// transition function. A Network owns the global event namespace and the set
// of processes, and knows which processes are sensitive to which events.
// Structure (this file) is separated from runtime state (CfsmState) so one
// network description can be simulated many times with different
// implementation mappings and parameters — the paper's iterative
// design-space exploration loop re-runs power co-estimation without
// recompiling the system description (Section 3).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cfsm/expr.hpp"
#include "cfsm/sgraph.hpp"

namespace socpower::cfsm {

using CfsmId = std::int32_t;
inline constexpr CfsmId kNoCfsm = -1;

struct VarDecl {
  std::string name;
  std::int32_t init = 0;
};

struct EventDecl {
  std::string name;
};

/// Runtime variable store for one process instance.
struct CfsmState {
  std::vector<std::int32_t> vars;
};

/// The set of input events present for one reaction, with their values.
class ReactionInputs {
 public:
  void clear();
  void set(EventId e, std::int32_t value);
  [[nodiscard]] bool present(EventId e) const;
  [[nodiscard]] std::int32_t value(EventId e) const;
  [[nodiscard]] const std::vector<std::pair<EventId, std::int32_t>>& all()
      const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

 private:
  std::vector<std::pair<EventId, std::int32_t>> events_;
};

class Cfsm {
 public:
  Cfsm(CfsmId id, std::string name);

  [[nodiscard]] CfsmId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // -- interface declaration -----------------------------------------------
  void add_input(EventId e);
  void add_output(EventId e);
  /// Declares an input that does NOT trigger a reaction by itself (e.g. the
  /// TIME event sampled by the consumer of Figure 1: its value is read when
  /// another trigger fires). POLIS calls the value part of such an event its
  /// associated "valued event" storage.
  void add_sampled_input(EventId e);
  void set_reset_event(EventId e) { reset_event_ = e; }
  VarId add_var(std::string name, std::int32_t init = 0);

  [[nodiscard]] const std::vector<EventId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<EventId>& sampled_inputs() const {
    return sampled_inputs_;
  }
  [[nodiscard]] const std::vector<EventId>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] std::optional<EventId> reset_event() const {
    return reset_event_;
  }
  [[nodiscard]] const std::vector<VarDecl>& vars() const { return vars_; }
  [[nodiscard]] bool listens_to(EventId e) const;
  [[nodiscard]] bool triggers_on(EventId e) const;

  // -- behavior -------------------------------------------------------------
  [[nodiscard]] ExprArena& arena() { return arena_; }
  [[nodiscard]] const ExprArena& arena() const { return arena_; }
  [[nodiscard]] SGraph& graph() { return *graph_; }
  [[nodiscard]] const SGraph& graph() const { return *graph_; }

  /// Fresh runtime state with variables at their init values.
  [[nodiscard]] CfsmState make_state() const;
  void reset_state(CfsmState& st) const;

  /// Execute one reaction: reads `inputs`, updates `st`, returns emissions
  /// and the executed node trace. When the reset event is present the state
  /// is re-initialized and the s-graph is NOT run (POLIS "watching RESET"
  /// semantics).
  Reaction react(const ReactionInputs& inputs, CfsmState& st,
                 ExecutionObserver* observer = nullptr) const;

 private:
  CfsmId id_;
  std::string name_;
  std::vector<EventId> inputs_;          // triggering inputs
  std::vector<EventId> sampled_inputs_;  // value-only inputs
  std::vector<EventId> outputs_;
  std::optional<EventId> reset_event_;
  std::vector<VarDecl> vars_;
  ExprArena arena_;
  std::unique_ptr<SGraph> graph_;
};

class Network {
 public:
  EventId declare_event(std::string name);
  [[nodiscard]] EventId event_id(const std::string& name) const;  // -1 if absent
  [[nodiscard]] const std::string& event_name(EventId e) const;
  [[nodiscard]] std::size_t event_count() const { return events_.size(); }

  Cfsm& add_cfsm(std::string name);
  [[nodiscard]] std::size_t cfsm_count() const { return cfsms_.size(); }
  [[nodiscard]] Cfsm& cfsm(CfsmId id);
  [[nodiscard]] const Cfsm& cfsm(CfsmId id) const;
  [[nodiscard]] CfsmId cfsm_id(const std::string& name) const;  // -1 if absent

  /// Processes whose trigger set contains `e`.
  [[nodiscard]] std::vector<CfsmId> receivers(EventId e) const;
  /// Processes that merely sample `e`'s value.
  [[nodiscard]] std::vector<CfsmId> samplers(EventId e) const;

  /// Validates every process's s-graph; empty string on success.
  [[nodiscard]] std::string validate() const;

 private:
  std::vector<EventDecl> events_;
  std::vector<std::unique_ptr<Cfsm>> cfsms_;
};

}  // namespace socpower::cfsm
