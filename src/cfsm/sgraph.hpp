// S-graph: the POLIS transition-function representation.
//
// A CFSM reaction executes the s-graph from its root to an End node. Nodes
// are Test (two-way branch on an expression), Assign (variable := expression)
// and Emit (output event, with an optional value expression). The s-graph is
// a DAG; loops in the behavior are expressed by a process re-triggering
// itself through an event, which keeps the number of distinct execution
// paths finite — exactly the property the paper's energy cache keys on
// ("path_id" in Figure 4(c)).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cfsm/expr.hpp"

namespace socpower::cfsm {

using NodeId = std::int32_t;
using PathId = std::int32_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr PathId kNoPath = -1;

enum class NodeKind : std::uint8_t { kTest, kAssign, kEmit, kEnd };

struct SNode {
  NodeKind kind = NodeKind::kEnd;
  ExprId expr = kNoExpr;   // Test: condition; Assign: rhs; Emit: value (opt)
  VarId var = -1;          // Assign target
  EventId event = -1;      // Emit target
  NodeId next = kNoNode;   // Assign/Emit successor; Test: taken branch
  NodeId next_else = kNoNode;  // Test: not-taken branch
};

/// Write access to variables during a reaction.
class VarStore {
 public:
  virtual ~VarStore() = default;
  virtual void set_var(VarId v, std::int32_t value) = 0;
};

/// Observer invoked once per executed node, in execution order. Used by the
/// path recorder (energy cache keys), the software synthesizer (macro-op
/// stream) and debug tracing.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;
  virtual void on_node(NodeId node, const SNode& n, bool test_taken) = 0;
};

struct EmittedEvent {
  EventId event = -1;
  std::int32_t value = 0;
};

struct Reaction {
  std::vector<EmittedEvent> emissions;
  std::vector<NodeId> trace;  // executed node ids, root..End
};

/// Interns executed-node sequences into dense PathIds.
class PathTable {
 public:
  PathId intern(const std::vector<NodeId>& trace);
  [[nodiscard]] std::size_t size() const { return paths_.size(); }
  [[nodiscard]] const std::vector<NodeId>& path(PathId id) const;

 private:
  std::unordered_map<std::string, PathId> index_;
  std::vector<std::vector<NodeId>> paths_;
};

class SGraph {
 public:
  explicit SGraph(ExprArena* arena) : arena_(arena) {}

  // -- construction ---------------------------------------------------------
  /// Reserve a node id for forward references; must be defined before run().
  NodeId reserve();
  NodeId add_end();
  NodeId add_assign(VarId var, ExprId rhs, NodeId next);
  NodeId add_emit(EventId event, ExprId value, NodeId next);
  NodeId add_test(ExprId cond, NodeId then_node, NodeId else_node);
  void define_end(NodeId id);
  void define_assign(NodeId id, VarId var, ExprId rhs, NodeId next);
  void define_emit(NodeId id, EventId event, ExprId value, NodeId next);
  void define_test(NodeId id, ExprId cond, NodeId then_node, NodeId else_node);
  void set_root(NodeId id) { root_ = id; }

  /// Validates that all reserved nodes are defined, all successors exist and
  /// the graph is acyclic and reachable-to-End. Call once after building.
  /// Returns an empty string on success, else a diagnostic.
  [[nodiscard]] std::string validate() const;

  // -- introspection --------------------------------------------------------
  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const SNode& node(NodeId id) const;
  [[nodiscard]] const ExprArena& arena() const { return *arena_; }

  /// Enumerate all root-to-End node traces, up to `cap` paths (s-graphs are
  /// DAGs so the count is finite). Used by the macro-model annotator and by
  /// tests.
  [[nodiscard]] std::vector<std::vector<NodeId>> enumerate_paths(
      std::size_t cap = 4096) const;

  // -- execution ------------------------------------------------------------
  /// Run one reaction. `ctx` supplies variable/event reads, `store` receives
  /// assignments (reads see earlier writes via ctx, which the caller backs
  /// with the same storage). `observer` may be nullptr.
  Reaction run(const EvalContext& ctx, VarStore& store,
               ExecutionObserver* observer = nullptr) const;

 private:
  ExprArena* arena_;
  std::vector<SNode> nodes_;
  std::vector<bool> defined_;
  NodeId root_ = kNoNode;
};

}  // namespace socpower::cfsm
