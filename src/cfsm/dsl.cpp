#include "cfsm/dsl.hpp"

#include <cctype>
#include <memory>
#include <optional>
#include <vector>

namespace socpower::cfsm {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer

enum class Tok {
  kIdent, kInt,
  kLBrace, kRBrace, kLParen, kRParen, kSemi, kComma, kAssign,
  kOrOr, kAndAnd, kOr, kXor, kAnd, kEq, kNe, kLt, kLe, kGt, kGe,
  kShl, kShr, kPlus, kMinus, kStar, kSlash, kPercent, kBang, kTilde,
  kEnd, kError,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::int64_t value = 0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  [[nodiscard]] const Token& peek() const { return cur_; }
  Token take() {
    Token t = cur_;
    advance();
    return t;
  }
  [[nodiscard]] int line() const { return cur_.line; }

 private:
  void advance() {
    skip_ws();
    cur_ = Token{};
    cur_.line = line_;
    if (pos_ >= src_.size()) {
      cur_.kind = Tok::kEnd;
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_'))
        ++pos_;
      cur_.kind = Tok::kIdent;
      cur_.text = std::string(src_.substr(start, pos_ - start));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t v = 0;
      if (c == '0' && pos_ + 1 < src_.size() &&
          (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
        pos_ += 2;
        bool any = false;
        while (pos_ < src_.size() &&
               std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
          const char d = src_[pos_++];
          v = v * 16 +
              (std::isdigit(static_cast<unsigned char>(d))
                   ? d - '0'
                   : std::tolower(static_cast<unsigned char>(d)) - 'a' + 10);
          any = true;
        }
        if (!any) {
          cur_.kind = Tok::kError;
          cur_.text = "malformed hex literal";
          return;
        }
      } else {
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_])))
          v = v * 10 + (src_[pos_++] - '0');
      }
      cur_.kind = Tok::kInt;
      cur_.value = v;
      return;
    }
    auto two = [&](char a, char b, Tok t) {
      if (c == a && pos_ + 1 < src_.size() && src_[pos_ + 1] == b) {
        cur_.kind = t;
        pos_ += 2;
        return true;
      }
      return false;
    };
    if (two('|', '|', Tok::kOrOr) || two('&', '&', Tok::kAndAnd) ||
        two('=', '=', Tok::kEq) || two('!', '=', Tok::kNe) ||
        two('<', '=', Tok::kLe) || two('>', '=', Tok::kGe) ||
        two('<', '<', Tok::kShl) || two('>', '>', Tok::kShr))
      return;
    ++pos_;
    switch (c) {
      case '{': cur_.kind = Tok::kLBrace; return;
      case '}': cur_.kind = Tok::kRBrace; return;
      case '(': cur_.kind = Tok::kLParen; return;
      case ')': cur_.kind = Tok::kRParen; return;
      case ';': cur_.kind = Tok::kSemi; return;
      case ',': cur_.kind = Tok::kComma; return;
      case '=': cur_.kind = Tok::kAssign; return;
      case '|': cur_.kind = Tok::kOr; return;
      case '^': cur_.kind = Tok::kXor; return;
      case '&': cur_.kind = Tok::kAnd; return;
      case '<': cur_.kind = Tok::kLt; return;
      case '>': cur_.kind = Tok::kGt; return;
      case '+': cur_.kind = Tok::kPlus; return;
      case '-': cur_.kind = Tok::kMinus; return;
      case '*': cur_.kind = Tok::kStar; return;
      case '/': cur_.kind = Tok::kSlash; return;
      case '%': cur_.kind = Tok::kPercent; return;
      case '!': cur_.kind = Tok::kBang; return;
      case '~': cur_.kind = Tok::kTilde; return;
      default:
        cur_.kind = Tok::kError;
        cur_.text = std::string("unexpected character '") + c + "'";
        return;
    }
  }

  void skip_ws() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#' ||
                 (c == '/' && pos_ + 1 < src_.size() &&
                  src_[pos_ + 1] == '/')) {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token cur_;
};

// ---------------------------------------------------------------------------
// AST

struct StmtNode;
using StmtList = std::vector<std::unique_ptr<StmtNode>>;

struct StmtNode {
  enum class Kind { kAssign, kEmit, kIf } kind = Kind::kAssign;
  int line = 0;
  // kAssign
  VarId var = -1;
  ExprId expr = kNoExpr;  // also the emit value / if condition
  // kEmit
  EventId event = -1;
  bool has_value = false;
  // kIf
  StmtList then_body;
  StmtList else_body;
};

// ---------------------------------------------------------------------------
// Parser

class Parser {
 public:
  Parser(std::string_view src, Network& net) : lex_(src), net_(net) {}

  DslResult run() {
    while (lex_.peek().kind != Tok::kEnd && error_.empty()) {
      if (!at_keyword("event") && !at_keyword("process")) {
        fail("expected 'event' or 'process'");
        break;
      }
      if (at_keyword("event"))
        parse_event_decl();
      else
        parse_process();
    }
    return {error_};
  }

 private:
  // -- helpers ---------------------------------------------------------------
  void fail(const std::string& msg) {
    if (error_.empty())
      error_ = "line " + std::to_string(lex_.line()) + ": " + msg;
  }
  [[nodiscard]] bool at_keyword(const char* kw) const {
    return lex_.peek().kind == Tok::kIdent && lex_.peek().text == kw;
  }
  bool expect(Tok t, const char* what) {
    if (lex_.peek().kind != t) {
      fail(std::string("expected ") + what);
      return false;
    }
    lex_.take();
    return true;
  }
  std::string expect_ident(const char* what) {
    if (lex_.peek().kind != Tok::kIdent) {
      fail(std::string("expected ") + what);
      return {};
    }
    return lex_.take().text;
  }

  // -- declarations ------------------------------------------------------------
  void parse_event_decl() {
    lex_.take();  // 'event'
    do {
      const std::string name = expect_ident("event name");
      if (!error_.empty()) return;
      if (net_.event_id(name) >= 0) {
        fail("duplicate event '" + name + "'");
        return;
      }
      net_.declare_event(name);
      if (lex_.peek().kind != Tok::kComma) break;
      lex_.take();
    } while (true);
    expect(Tok::kSemi, "';'");
  }

  [[nodiscard]] EventId resolve_event(const std::string& name) {
    const EventId e = net_.event_id(name);
    if (e < 0) fail("unknown event '" + name + "'");
    return e;
  }

  void parse_process() {
    lex_.take();  // 'process'
    const std::string pname = expect_ident("process name");
    if (!error_.empty()) return;
    if (net_.cfsm_id(pname) != kNoCfsm) {
      fail("duplicate process '" + pname + "'");
      return;
    }
    if (!expect(Tok::kLBrace, "'{'")) return;
    Cfsm& proc = net_.add_cfsm(pname);
    vars_.clear();

    // Declarations first.
    while (error_.empty()) {
      if (at_keyword("input") || at_keyword("sampled") ||
          at_keyword("output") || at_keyword("reset")) {
        const std::string kw = lex_.take().text;
        do {
          const std::string name = expect_ident("event name");
          if (!error_.empty()) return;
          const EventId e = resolve_event(name);
          if (!error_.empty()) return;
          if (kw == "input") proc.add_input(e);
          else if (kw == "sampled") proc.add_sampled_input(e);
          else if (kw == "output") proc.add_output(e);
          else proc.set_reset_event(e);
          if (kw == "reset" || lex_.peek().kind != Tok::kComma) break;
          lex_.take();
        } while (true);
        if (!expect(Tok::kSemi, "';'")) return;
      } else if (at_keyword("var")) {
        lex_.take();
        do {
          const std::string name = expect_ident("variable name");
          if (!error_.empty()) return;
          if (vars_.count(name)) {
            fail("duplicate variable '" + name + "'");
            return;
          }
          std::int32_t init = 0;
          if (lex_.peek().kind == Tok::kAssign) {
            lex_.take();
            bool neg = false;
            if (lex_.peek().kind == Tok::kMinus) {
              neg = true;
              lex_.take();
            }
            if (lex_.peek().kind != Tok::kInt) {
              fail("expected integer initializer");
              return;
            }
            const std::int64_t raw = lex_.take().value;
            if (raw > 0x80000000LL || (!neg && raw > 0x7fffffffLL)) {
              fail("initializer out of 32-bit range");
              return;
            }
            init = static_cast<std::int32_t>(neg ? -raw : raw);
          }
          vars_[name] = proc.add_var(name, init);
          if (lex_.peek().kind != Tok::kComma) break;
          lex_.take();
        } while (true);
        if (!expect(Tok::kSemi, "';'")) return;
      } else {
        break;
      }
    }

    // Statements.
    StmtList body = parse_stmts(proc);
    if (!error_.empty()) return;
    if (!expect(Tok::kRBrace, "'}'")) return;

    // Lower to an s-graph: continuation-passing, last statement first.
    SGraph& g = proc.graph();
    const NodeId end = g.add_end();
    g.set_root(lower(g, body, end));
    const std::string verr = g.validate();
    if (!verr.empty()) fail("process '" + pname + "': " + verr);
  }

  // -- statements ---------------------------------------------------------------
  StmtList parse_stmts(Cfsm& proc) {
    StmtList out;
    while (error_.empty() && lex_.peek().kind != Tok::kRBrace &&
           lex_.peek().kind != Tok::kEnd) {
      auto s = parse_stmt(proc);
      if (!s) break;
      out.push_back(std::move(s));
    }
    return out;
  }

  std::unique_ptr<StmtNode> parse_stmt(Cfsm& proc) {
    auto node = std::make_unique<StmtNode>();
    node->line = lex_.line();
    if (at_keyword("if")) {
      lex_.take();
      node->kind = StmtNode::Kind::kIf;
      if (!expect(Tok::kLParen, "'('")) return nullptr;
      node->expr = parse_expr(proc);
      if (!error_.empty()) return nullptr;
      if (!expect(Tok::kRParen, "')'")) return nullptr;
      if (!expect(Tok::kLBrace, "'{'")) return nullptr;
      node->then_body = parse_stmts(proc);
      if (!expect(Tok::kRBrace, "'}'")) return nullptr;
      if (at_keyword("else")) {
        lex_.take();
        if (at_keyword("if")) {  // else-if chains nest
          auto nested = parse_stmt(proc);
          if (!nested) return nullptr;
          node->else_body.push_back(std::move(nested));
        } else {
          if (!expect(Tok::kLBrace, "'{'")) return nullptr;
          node->else_body = parse_stmts(proc);
          if (!expect(Tok::kRBrace, "'}'")) return nullptr;
        }
      }
      return node;
    }
    if (at_keyword("emit")) {
      lex_.take();
      node->kind = StmtNode::Kind::kEmit;
      const std::string name = expect_ident("event name");
      if (!error_.empty()) return nullptr;
      node->event = resolve_event(name);
      if (!error_.empty()) return nullptr;
      if (lex_.peek().kind == Tok::kLParen) {
        lex_.take();
        node->expr = parse_expr(proc);
        node->has_value = true;
        if (!error_.empty()) return nullptr;
        if (!expect(Tok::kRParen, "')'")) return nullptr;
      }
      if (!expect(Tok::kSemi, "';'")) return nullptr;
      return node;
    }
    // Assignment.
    const std::string name = expect_ident("statement");
    if (!error_.empty()) return nullptr;
    const auto it = vars_.find(name);
    if (it == vars_.end()) {
      fail("unknown variable '" + name + "'");
      return nullptr;
    }
    node->kind = StmtNode::Kind::kAssign;
    node->var = it->second;
    if (!expect(Tok::kAssign, "'='")) return nullptr;
    node->expr = parse_expr(proc);
    if (!error_.empty()) return nullptr;
    if (!expect(Tok::kSemi, "';'")) return nullptr;
    return node;
  }

  // -- expressions (precedence climbing) ----------------------------------------
  struct Level {
    Tok tok;
    ExprOp op;
  };

  ExprId parse_expr(Cfsm& proc) { return parse_binary(proc, 0); }

  ExprId parse_binary(Cfsm& proc, int level) {
    static const std::vector<std::vector<Level>> kLevels = {
        {{Tok::kOrOr, ExprOp::kLogicOr}},
        {{Tok::kAndAnd, ExprOp::kLogicAnd}},
        {{Tok::kOr, ExprOp::kBitOr}},
        {{Tok::kXor, ExprOp::kBitXor}},
        {{Tok::kAnd, ExprOp::kBitAnd}},
        {{Tok::kEq, ExprOp::kEq}, {Tok::kNe, ExprOp::kNe}},
        {{Tok::kLt, ExprOp::kLt},
         {Tok::kLe, ExprOp::kLe},
         {Tok::kGt, ExprOp::kGt},
         {Tok::kGe, ExprOp::kGe}},
        {{Tok::kShl, ExprOp::kShl}, {Tok::kShr, ExprOp::kShr}},
        {{Tok::kPlus, ExprOp::kAdd}, {Tok::kMinus, ExprOp::kSub}},
        {{Tok::kStar, ExprOp::kMul},
         {Tok::kSlash, ExprOp::kDiv},
         {Tok::kPercent, ExprOp::kMod}},
    };
    if (static_cast<std::size_t>(level) >= kLevels.size())
      return parse_unary(proc);
    ExprId lhs = parse_binary(proc, level + 1);
    if (!error_.empty()) return kNoExpr;
    while (true) {
      const Tok t = lex_.peek().kind;
      const Level* match = nullptr;
      for (const Level& l : kLevels[static_cast<std::size_t>(level)])
        if (l.tok == t) match = &l;
      if (!match) return lhs;
      lex_.take();
      const ExprId rhs = parse_binary(proc, level + 1);
      if (!error_.empty()) return kNoExpr;
      lhs = proc.arena().binary(match->op, lhs, rhs);
    }
  }

  ExprId parse_unary(Cfsm& proc) {
    const Tok t = lex_.peek().kind;
    if (t == Tok::kBang || t == Tok::kTilde || t == Tok::kMinus) {
      lex_.take();
      const ExprId operand = parse_unary(proc);
      if (!error_.empty()) return kNoExpr;
      const ExprOp op = t == Tok::kBang ? ExprOp::kLogicNot
                        : t == Tok::kTilde ? ExprOp::kBitNot
                                           : ExprOp::kNeg;
      return proc.arena().unary(op, operand);
    }
    return parse_primary(proc);
  }

  ExprId parse_primary(Cfsm& proc) {
    const Token& p = lex_.peek();
    if (p.kind == Tok::kInt) {
      const auto v = lex_.take().value;
      if (v > 0x7fffffffLL) {
        fail("integer literal out of 32-bit range");
        return kNoExpr;
      }
      return proc.arena().constant(static_cast<std::int32_t>(v));
    }
    if (p.kind == Tok::kLParen) {
      lex_.take();
      const ExprId e = parse_expr(proc);
      if (!error_.empty()) return kNoExpr;
      if (!expect(Tok::kRParen, "')'")) return kNoExpr;
      return e;
    }
    if (p.kind == Tok::kIdent) {
      const std::string name = lex_.take().text;
      if (name == "val" || name == "present") {
        if (!expect(Tok::kLParen, "'('")) return kNoExpr;
        const std::string ev = expect_ident("event name");
        if (!error_.empty()) return kNoExpr;
        const EventId e = resolve_event(ev);
        if (!error_.empty()) return kNoExpr;
        if (!expect(Tok::kRParen, "')'")) return kNoExpr;
        return name == "val" ? proc.arena().event_value(e)
                             : proc.arena().event_present(e);
      }
      const auto it = vars_.find(name);
      if (it == vars_.end()) {
        fail("unknown variable '" + name + "'");
        return kNoExpr;
      }
      return proc.arena().variable(it->second);
    }
    fail("expected expression");
    return kNoExpr;
  }

  // -- lowering -------------------------------------------------------------------
  NodeId lower(SGraph& g, const StmtList& stmts, NodeId next) {
    for (auto it = stmts.rbegin(); it != stmts.rend(); ++it) {
      const StmtNode& s = **it;
      switch (s.kind) {
        case StmtNode::Kind::kAssign:
          next = g.add_assign(s.var, s.expr, next);
          break;
        case StmtNode::Kind::kEmit:
          next = g.add_emit(s.event, s.has_value ? s.expr : kNoExpr, next);
          break;
        case StmtNode::Kind::kIf: {
          const NodeId then_entry = lower(g, s.then_body, next);
          const NodeId else_entry = lower(g, s.else_body, next);
          next = g.add_test(s.expr, then_entry, else_entry);
          break;
        }
      }
    }
    return next;
  }

  Lexer lex_;
  Network& net_;
  std::string error_;
  std::unordered_map<std::string, VarId> vars_;
};

}  // namespace

DslResult parse_network(std::string_view source, Network& network) {
  Parser p(source, network);
  return p.run();
}

}  // namespace socpower::cfsm
