#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace socpower::sim {

void EventQueue::post(SimTime t, cfsm::EventId e, std::int32_t value,
                      cfsm::CfsmId source) {
  heap_.push({t, e, value, source, next_seq_++});
}

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.top().time;
}

std::vector<EventOccurrence> EventQueue::pop_instant() {
  std::vector<EventOccurrence> out;
  pop_instant(out);
  return out;
}

void EventQueue::pop_instant(std::vector<EventOccurrence>& out) {
  out.clear();
  if (heap_.empty()) return;
  const SimTime t = heap_.top().time;
  while (!heap_.empty() && heap_.top().time == t) {
    out.push_back(heap_.top());
    heap_.pop();
  }
}

void EventQueue::clear() {
  heap_ = {};
  next_seq_ = 0;
}

void Stimulus::add(SimTime t, cfsm::EventId e, std::int32_t value) {
  occurrences.push_back({t, e, value, cfsm::kNoCfsm, 0});
}

void Stimulus::load_into(EventQueue& q) const {
  for (const auto& o : occurrences) q.post(o.time, o.event, o.value);
}

SimTime Stimulus::horizon() const {
  SimTime h = 0;
  for (const auto& o : occurrences) h = std::max(h, o.time);
  return h;
}

}  // namespace socpower::sim
