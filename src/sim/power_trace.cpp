#include "sim/power_trace.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace socpower::sim {

PowerTrace::PowerTrace(ElectricalParams params) : params_(params) {}

ComponentId PowerTrace::add_component(std::string name) {
  names_.push_back(std::move(name));
  totals_.push_back(0.0);
  samples_.emplace_back();
  return static_cast<ComponentId>(names_.size() - 1);
}

const std::string& PowerTrace::component_name(ComponentId c) const {
  assert(c >= 0 && static_cast<std::size_t>(c) < names_.size());
  static const std::string kUnknown = "(unknown)";
  if (c < 0 || static_cast<std::size_t>(c) >= names_.size()) return kUnknown;
  return names_[static_cast<std::size_t>(c)];
}

ComponentId PowerTrace::component_id(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<ComponentId>(i);
  return -1;
}

void PowerTrace::record(ComponentId c, SimTime t, Joules energy) {
  // Always checked, in release builds too: energy attribution errors must
  // not become out-of-bounds writes. Invalid ids are dropped and counted so
  // callers (and tests) can detect the book-keeping bug.
  if (c < 0 || static_cast<std::size_t>(c) >= names_.size()) {
    ++dropped_records_;
    return;
  }
  totals_[static_cast<std::size_t>(c)] += energy;
  if (keep_samples_) samples_[static_cast<std::size_t>(c)].push_back({t, energy});
  end_time_ = std::max(end_time_, t);
}

Joules PowerTrace::total(ComponentId c) const {
  assert(c >= 0 && static_cast<std::size_t>(c) < totals_.size());
  if (c < 0 || static_cast<std::size_t>(c) >= totals_.size()) return 0.0;
  return totals_[static_cast<std::size_t>(c)];
}

Joules PowerTrace::grand_total() const {
  return std::accumulate(totals_.begin(), totals_.end(), 0.0);
}

std::vector<PowerWindow> PowerTrace::waveform(ComponentId c,
                                              SimTime width) const {
  assert(width > 0);
  assert(c >= 0 && static_cast<std::size_t>(c) < samples_.size());
  if (width == 0 || c < 0 || static_cast<std::size_t>(c) >= samples_.size())
    return {};
  const auto& ss = samples_[static_cast<std::size_t>(c)];
  const std::size_t n_windows =
      static_cast<std::size_t>(end_time_ / width) + 1;
  std::vector<PowerWindow> wf(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w) {
    wf[w].start = static_cast<SimTime>(w) * width;
    wf[w].width = width;
  }
  for (const auto& s : ss) {
    const std::size_t w = static_cast<std::size_t>(s.time / width);
    wf[w].energy += s.energy;
  }
  const double window_seconds = params_.seconds(width);
  for (auto& w : wf) w.watts = window_seconds > 0 ? w.energy / window_seconds : 0;
  return wf;
}

std::vector<std::size_t> PowerTrace::peak_windows(
    const std::vector<PowerWindow>& wf, std::size_t k) {
  std::vector<std::size_t> idx(wf.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), [&wf](std::size_t a, std::size_t b) {
    if (wf[a].watts != wf[b].watts) return wf[a].watts > wf[b].watts;
    return a < b;
  });
  if (idx.size() > k) idx.resize(k);
  return idx;
}

void PowerTrace::reset() {
  for (auto& t : totals_) t = 0.0;
  for (auto& s : samples_) s.clear();
  end_time_ = 0;
  dropped_records_ = 0;
}

}  // namespace socpower::sim
