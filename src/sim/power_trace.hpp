// Per-component energy book-keeping and power waveforms.
//
// The master "collects the cycles and energy statistics for each invocation
// of the lower-level simulators, performs the necessary book-keeping, and
// can display energy and power waveforms for the various parts of the
// system" (Section 3). PowerTrace is that book-keeper: it accumulates energy
// per named component, can bucket energy into fixed-width time windows to
// form a power waveform, and locates peaks — used in Section 5.3 to show
// power peaks correlate with arbiter handshakes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/units.hpp"

namespace socpower::sim {

using ComponentId = std::int32_t;

struct PowerSample {
  SimTime time = 0;
  Joules energy = 0.0;
};

struct PowerWindow {
  SimTime start = 0;
  SimTime width = 0;
  double watts = 0.0;
  Joules energy = 0.0;
};

class PowerTrace {
 public:
  explicit PowerTrace(ElectricalParams params = {});

  ComponentId add_component(std::string name);
  [[nodiscard]] std::size_t component_count() const { return names_.size(); }
  [[nodiscard]] const std::string& component_name(ComponentId c) const;
  [[nodiscard]] ComponentId component_id(const std::string& name) const;

  /// Attribute `energy` consumed at time `t` to component `c`. Out-of-range
  /// ids are always checked (in every build type, like the ISS execution
  /// paths): the sample is discarded and counted in dropped_records() — never
  /// unchecked indexing.
  void record(ComponentId c, SimTime t, Joules energy);
  /// Samples discarded by record() because the component id was invalid.
  [[nodiscard]] std::uint64_t dropped_records() const {
    return dropped_records_;
  }
  /// Enable/disable retention of individual samples (totals are always
  /// kept). Waveforms need samples; long batch runs can turn them off.
  void set_keep_samples(bool keep) { keep_samples_ = keep; }

  [[nodiscard]] Joules total(ComponentId c) const;
  [[nodiscard]] Joules grand_total() const;
  [[nodiscard]] SimTime end_time() const { return end_time_; }

  /// Power waveform for one component: energy bucketed into `width`-cycle
  /// windows, converted to watts at the configured clock.
  [[nodiscard]] std::vector<PowerWindow> waveform(ComponentId c,
                                                  SimTime width) const;
  /// Indices of the `k` highest-power windows, descending.
  [[nodiscard]] static std::vector<std::size_t> peak_windows(
      const std::vector<PowerWindow>& wf, std::size_t k);

  void reset();

 private:
  ElectricalParams params_;
  bool keep_samples_ = true;
  std::vector<std::string> names_;
  std::vector<Joules> totals_;
  std::vector<std::vector<PowerSample>> samples_;
  SimTime end_time_ = 0;
  std::uint64_t dropped_records_ = 0;
};

}  // namespace socpower::sim
