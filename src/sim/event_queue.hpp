// Discrete-event machinery for the simulation master.
//
// The master (the PTOLEMY role in the paper's Figure 2(b)) advances a global
// time line measured in system clock cycles. Event occurrences are totally
// ordered by (time, sequence number) so simulation is deterministic; all
// occurrences sharing the earliest time are popped together as one *instant*,
// which is what a CFSM reaction consumes.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "cfsm/cfsm.hpp"

namespace socpower::sim {

using SimTime = std::uint64_t;

struct EventOccurrence {
  SimTime time = 0;
  cfsm::EventId event = -1;
  std::int32_t value = 0;
  cfsm::CfsmId source = cfsm::kNoCfsm;  // kNoCfsm == environment
  std::uint64_t seq = 0;                // tie-break for determinism
};

class EventQueue {
 public:
  void post(SimTime t, cfsm::EventId e, std::int32_t value,
            cfsm::CfsmId source = cfsm::kNoCfsm);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] SimTime next_time() const;

  /// Pops every occurrence stamped with the earliest time. Occurrences keep
  /// their posting order (seq) within the instant.
  std::vector<EventOccurrence> pop_instant();

  /// Caller-buffer overload: clears `out` and fills it with the earliest
  /// instant. The co-estimator main loop reuses one buffer across instants
  /// so steady-state simulation performs no per-instant allocation.
  void pop_instant(std::vector<EventOccurrence>& out);

  void clear();

 private:
  struct Later {
    bool operator()(const EventOccurrence& a,
                    const EventOccurrence& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<EventOccurrence, std::vector<EventOccurrence>, Later>
      heap_;
  std::uint64_t next_seq_ = 0;
};

/// A pre-built environment stimulus: event occurrences injected into the
/// queue at simulation start. Workload generators build these.
struct Stimulus {
  std::vector<EventOccurrence> occurrences;

  void add(SimTime t, cfsm::EventId e, std::int32_t value = 0);
  void load_into(EventQueue& q) const;
  [[nodiscard]] SimTime horizon() const;  // latest stimulus time
};

}  // namespace socpower::sim
