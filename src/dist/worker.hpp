// The estimator worker: hosts a real in-process hardware backend and
// services wire frames from the simulation master.
//
// The same class serves two deployments:
//   * out-of-process — the forked child constructs a Worker and loops in
//     serve() on its channel end until kShutdown/EOF;
//   * in-process fallback — when every worker process is gone the
//     RemoteHwEstimator constructs a local Worker and feeds it the replayed
//     request log through dispatch() directly. Same code path, so the
//     fallback's energies are bit-identical to what the worker would have
//     produced.
//
// The worker owns its own CoEstimatorConfig copy (kBeginRun knob blobs are
// applied to it, never to the master's config) and its own per-process
// PathTables, kept in sync by the explicit path deltas the master embeds in
// chunk/flush frames — path ids are dense interning order, so replaying the
// deltas reproduces the master's tables exactly.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/estimators/component_estimator.hpp"
#include "dist/channel.hpp"
#include "dist/wire.hpp"

namespace socpower::core {
class HwEstimatorBase;
}  // namespace socpower::core

namespace socpower::dist {

class Worker {
 public:
  /// Creates and prepares the inner backend `inner_name` (a registered
  /// HwBackend, e.g. "hw.gate" / "hw.rtl") for `components`. Aborts on an
  /// unknown or non-HwBackend name — the master validated the config, so
  /// this is an internal protocol error, not user input.
  Worker(const std::string& inner_name, const cfsm::Network* net,
         const core::CoEstimatorConfig& config,
         std::vector<cfsm::CfsmId> components);
  ~Worker();

  /// Handles one frame; returns the reply payload for RPC frames
  /// (expects_reply(type)), nullopt for one-way frames. Malformed payloads
  /// abort: the master encodes every frame, so corruption here means the
  /// transport lied about frame integrity.
  std::optional<std::vector<std::uint8_t>> dispatch(
      MsgType type, const std::vector<std::uint8_t>& payload);

  /// Serve loop for the forked child: recv / dispatch / reply until
  /// kShutdown, EOF, or a channel error. Returns the child's exit code.
  int serve(Channel& ch);

 private:
  void handle_chunk(const ChunkPayload& chunk);
  core::ComponentEstimator::FlushResult collect_flush(cfsm::CfsmId task);

  core::CoEstimatorConfig cfg_;
  const cfsm::Network* net_;
  std::vector<cfsm::PathTable> paths_;
  std::vector<cfsm::CfsmId> components_;
  std::unique_ptr<core::ComponentEstimator> inner_;
  core::HwBackend* hw_ = nullptr;
  /// Non-null when the inner backend supports incremental batch draining —
  /// then shipped chunks are evaluated eagerly on arrival (that is the
  /// overlap with the master's DE loop). Otherwise chunks only buffer and
  /// the whole batch evaluates at kFlushUnit.
  core::HwEstimatorBase* streaming_ = nullptr;
  /// Per-unit accumulation of eagerly drained slices (indexed by CfsmId).
  struct UnitAccum {
    core::ComponentEstimator::FlushResult acc;
    bool started = false;  // first slice of this run already drained?
  };
  std::vector<UnitAccum> accum_;
};

}  // namespace socpower::dist
