// explore_sharded(): the two-phase design-space exploration fanned out over
// forked worker processes. Each worker owns shard w of the point list
// (indices with idx % W == w) for both phases; the master pipelines
// kEvalPoint requests to every live worker, collects the replies per worker
// in request order, and feeds the per-index results into the same
// detail::two_phase_outcome reduction as the serial explore() — which is the
// whole bit-identity argument: only the evaluation transport differs.
//
// A worker that dies or misses its reply timeout is dropped; its unanswered
// points are evaluated in the master process (point thunks are deterministic
// wherever they run, so results are unchanged — "dist.fallbacks" telemetry
// records the degradation).

#include "core/explorer.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

#if !defined(_WIN32)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "dist/channel.hpp"
#include "dist/wire.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
#include "util/thread_pool.hpp"

namespace socpower::core {

namespace {

detail::PointEval eval_point_local(const std::vector<ExplorationPoint>& points,
                                   std::size_t idx, int phase) {
  SOCPOWER_TRACE_SPAN("explore.point", 0, idx);
  if (phase == 2) {
    const auto& run = points[idx].run_analytical ? points[idx].run_analytical
                                                 : points[idx].run_coarse;
    const RunResults r = run();
    return {r.total_energy, r.wall_seconds, true};
  }
  if (phase == 0) {
    const RunResults r = points[idx].run_coarse();
    return {r.total_energy, r.wall_seconds, true};
  }
  if (points[idx].run_exact) {
    const RunResults r = points[idx].run_exact();
    return {r.total_energy, r.wall_seconds, true};
  }
  return {};
}

#if !defined(_WIN32)

struct ShardProc {
  long pid = -1;
  dist::Channel ch;
  bool alive = false;
};

int serve_shard(dist::Channel& ch,
                const std::vector<ExplorationPoint>& points, bool crash) {
  for (;;) {
    dist::Frame f;
    const dist::Channel::RecvStatus st = ch.recv_frame(&f, /*timeout_ms=*/-1);
    if (st != dist::Channel::RecvStatus::kOk)
      return st == dist::Channel::RecvStatus::kClosed ? 0 : 1;
    if (f.type == dist::MsgType::kShutdown) return 0;
    if (f.type != dist::MsgType::kEvalPoint) return 1;
    if (crash) std::_Exit(3);  // fault injection: die on the first request
    dist::WireReader r(f.payload);
    const int phase = r.get_u8();
    const std::size_t idx = r.get_u32();
    if (!r.ok() || !r.at_end() || idx >= points.size()) return 1;
    const detail::PointEval ev = eval_point_local(points, idx, phase);
    dist::WireWriter w;
    w.put_u8(ev.has_result ? 1 : 0);
    w.put_f64(ev.total_energy);
    w.put_f64(ev.wall_seconds);
    if (!ch.send_frame(dist::MsgType::kReply, w.take())) return 1;
  }
}

#endif  // !_WIN32

}  // namespace

ExplorationOutcome explore_sharded(const std::vector<ExplorationPoint>& points,
                                   std::size_t verify_top,
                                   const ShardedExploreOptions& options) {
  ExploreOptions serial;
  serial.threads = 1;
  serial.analytical_prefilter = options.analytical_prefilter;
  const std::size_t want = resolve_thread_count(options.workers);
  const std::size_t W = std::min(want, points.size());
  if (!dist::supported() || W <= 1) return explore(points, verify_top, serial);
#if defined(_WIN32)
  return explore(points, verify_top, serial);
#else
  auto& reg = telemetry::registry();
  telemetry::Counter& fallback_points =
      reg.counter("explore.sharded.fallback_points");
  telemetry::Counter& dist_fallbacks = reg.counter("dist.fallbacks");
  reg.counter("explore.sharded.workers").add(W);

  std::vector<ShardProc> procs(W);
  for (std::size_t w = 0; w < W; ++w) {
    dist::Channel parent_end;
    dist::Channel child_end;
    if (!dist::Channel::make_pair(&parent_end, &child_end)) continue;
    parent_end.set_parent_side();
    const pid_t pid = ::fork();
    if (pid < 0) continue;
    if (pid == 0) {
      dist::close_parent_fds_in_child();
      const bool crash = options.debug_crash_worker == static_cast<int>(w);
      std::_Exit(serve_shard(child_end, points, crash));
    }
    child_end.close();
    procs[w].pid = static_cast<long>(pid);
    procs[w].ch = std::move(parent_end);
    procs[w].alive = true;
  }

  const int timeout = static_cast<int>(options.reply_timeout_ms);
  auto drop = [&](ShardProc& p) {
    p.alive = false;
    p.ch.close();
    dist_fallbacks.add();
  };

  const auto eval_phase = [&](const std::vector<std::size_t>& idxs,
                              int phase) {
    std::vector<detail::PointEval> evals(idxs.size());
    std::vector<char> answered(idxs.size(), 0);
    // Pipeline: queue every request up front so all shards work at once.
    std::vector<std::vector<std::size_t>> queued(W);
    for (std::size_t j = 0; j < idxs.size(); ++j) {
      ShardProc& p = procs[j % W];
      if (!p.alive) continue;
      dist::WireWriter w;
      w.put_u8(static_cast<std::uint8_t>(phase));
      w.put_u32(static_cast<std::uint32_t>(idxs[j]));
      if (!p.ch.send_frame(dist::MsgType::kEvalPoint, w.take(), timeout)) {
        drop(p);
        continue;
      }
      queued[j % W].push_back(j);
    }
    // Collect per worker, in its request order (SOCK_STREAM keeps replies
    // ordered). A failed or late reply drops the worker; everything it had
    // not answered is evaluated below.
    for (std::size_t w = 0; w < W; ++w) {
      for (const std::size_t j : queued[w]) {
        ShardProc& p = procs[w];
        if (!p.alive) break;
        dist::Frame f;
        if (p.ch.recv_frame(&f, timeout) != dist::Channel::RecvStatus::kOk ||
            f.type != dist::MsgType::kReply) {
          drop(p);
          break;
        }
        dist::WireReader r(f.payload);
        const bool has = r.get_u8() != 0;
        const Joules energy = r.get_f64();
        const double wall = r.get_f64();
        if (!r.ok() || !r.at_end()) {
          drop(p);
          break;
        }
        evals[j] = {energy, wall, has};
        answered[j] = 1;
      }
    }
    // Graceful degradation: unanswered points run in this process.
    for (std::size_t j = 0; j < idxs.size(); ++j) {
      if (answered[j]) continue;
      evals[j] = eval_point_local(points, idxs[j], phase);
      fallback_points.add();
    }
    return evals;
  };

  ExplorationOutcome out = detail::funnel_outcome(
      points, verify_top, options.analytical_prefilter, eval_phase);

  for (ShardProc& p : procs) {
    if (p.pid < 0) continue;
    if (p.alive && p.ch.valid())
      (void)p.ch.send_frame(dist::MsgType::kShutdown, {}, 1000);
    p.ch.close();
    // SIGKILL is a no-op for a worker that already exited; it guarantees the
    // blocking reap below cannot hang on a wedged one.
    ::kill(static_cast<pid_t>(p.pid), SIGKILL);
    int status = 0;
    (void)::waitpid(static_cast<pid_t>(p.pid), &status, 0);
  }
  return out;
#endif
}

}  // namespace socpower::core
