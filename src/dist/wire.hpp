// Length-prefixed binary wire protocol of the distributed co-estimation
// subsystem (the out-of-process analogue of the paper's IPC backplane: the
// simulation master drives component estimators living in other processes).
//
// Framing: every message is  [u32 payload_len][u8 type][payload bytes].
// Integers are little-endian fixed-width; doubles travel as their IEEE-754
// bit pattern (std::bit_cast through uint64_t), so energies round-trip
// bit-exactly — including NaN payloads, denormals and negative zero. That is
// what lets the remote backends honour the repo-wide bit-identity contract:
// a remote run must reproduce the in-process run's doubles to the last bit.
//
// Decoding is defensive: every get_* bounds-checks against the payload and
// latches an error instead of reading past the end, so a truncated or
// corrupted frame is rejected (decoder returns false), never crashes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimators/component_estimator.hpp"

namespace socpower::dist {

/// True when this platform can run out-of-process workers (POSIX fork +
/// socketpair). On anything else the remote backends degrade to their
/// in-process fallback at prepare() and sharded exploration runs serially.
[[nodiscard]] bool supported();

enum class MsgType : std::uint8_t {
  // master -> estimator worker
  kBeginRun = 1,       // per-run knob blob; resets worker batch state
  kResync = 2,         // task + behavioral state (resync_if_dirty)
  kMarkSkipped = 3,    // task + flag
  kResetUnit = 4,      // task
  kEnqueueChunk = 5,   // batched vectors + new path traces (one-way, eager)
  kCost = 6,           // online transition pricing (RPC)
  kFlushUnit = 7,      // final chunk + collect the unit's FlushResult (RPC)
  kSeparateReset = 8,  // Section 2 baseline reset
  kSeparateStep = 9,   // Section 2 baseline step (RPC)
  kStats = 10,         // per-run backend counters (RPC)
  kShutdown = 11,      // worker exits cleanly
  // master -> sharded-exploration worker
  kEvalPoint = 12,     // phase + point index (RPC)
  // client -> session server (src/serve). All are request/reply.
  kServeHello = 32,      // protocol-version handshake (RPC)
  kServeOpen = 33,       // system + structural config -> session key (RPC)
  kServeEstimate = 34,   // session key + per-run request -> results (RPC)
  kServeCheckpoint = 35, // session key -> serialized checkpoint (RPC)
  kServeRestore = 36,    // checkpoint blob -> rebuilt warm session (RPC)
  kServeStats = 37,      // server-wide serve.* counters + latency (RPC)
  kServeShutdown = 38,   // stop the server after replying (RPC)
  // worker -> master
  kReply = 64,         // RPC reply (payload shape depends on the request)
  kServeError = 65,    // serve-layer error reply (payload: message string)
};

/// Does a request of this type produce a kReply frame?
[[nodiscard]] bool expects_reply(MsgType t);

struct Frame {
  MsgType type = MsgType::kShutdown;
  std::vector<std::uint8_t> payload;
};

// ---- primitive encode/decode ----------------------------------------------

class WireWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i32(std::int32_t v);
  void put_f64(double v);  // bit-exact (IEEE-754 bit pattern)

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : p_(data), n_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int32_t get_i32();
  [[nodiscard]] double get_f64();

  /// False once any read ran past the payload end (the value returned by
  /// that and every later get_* is zero). Also false when a decoder found a
  /// structurally invalid value. Check after decoding, not per field.
  [[nodiscard]] bool ok() const { return ok_; }
  void mark_bad() { ok_ = false; }
  /// All payload bytes consumed? Full-frame decoders require this so a
  /// frame with trailing garbage is rejected too.
  [[nodiscard]] bool at_end() const { return pos_ == n_; }

 private:
  [[nodiscard]] bool take(std::size_t k) {
    if (!ok_ || n_ - pos_ < k) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- co-estimation vocabulary codecs --------------------------------------
//
// Sanity bound on decoded container lengths: a corrupted length field must
// not allocate unbounded memory before the bounds check trips.
inline constexpr std::uint32_t kMaxWireElems = 1u << 24;

/// Length-prefixed UTF-8-agnostic byte string (the serve layer's system
/// names and error messages).
void put_string(WireWriter& w, const std::string& s);
[[nodiscard]] bool get_string(WireReader& r, std::string* out);

void put_inputs(WireWriter& w, const cfsm::ReactionInputs& in);
[[nodiscard]] bool get_inputs(WireReader& r, cfsm::ReactionInputs* out);

void put_state(WireWriter& w, const cfsm::CfsmState& st);
[[nodiscard]] bool get_state(WireReader& r, cfsm::CfsmState* out);

void put_trace(WireWriter& w, const std::vector<cfsm::NodeId>& trace);
[[nodiscard]] bool get_trace(WireReader& r, std::vector<cfsm::NodeId>* out);

void put_emissions(WireWriter& w, const std::vector<cfsm::EmittedEvent>& ems);
[[nodiscard]] bool get_emissions(WireReader& r,
                                 std::vector<cfsm::EmittedEvent>* out);

/// The per-run config knobs the hardware backends read during a run. Shipped
/// in kBeginRun so the worker's config copy tracks the master's per-run
/// mutations (structural fields are frozen at prepare on both sides).
struct PerRunKnobs {
  unsigned sync_spin = 0;
  unsigned hw_reaction_cycles = 1;
  bool verify_lowlevel = false;
  bool hw_reaction_cache = true;
  std::uint64_t hw_reaction_cache_max_entries = 4096;
  bool hw_bit_parallel = false;
  unsigned hw_packed_lanes = 64;
};
[[nodiscard]] PerRunKnobs knobs_from(const core::CoEstimatorConfig& cfg);
void apply_knobs(const PerRunKnobs& k, core::CoEstimatorConfig* cfg);
void put_knobs(WireWriter& w, const PerRunKnobs& k);
[[nodiscard]] bool get_knobs(WireReader& r, PerRunKnobs* out);

/// One shipped batch slice for one hardware unit. `base_paths` is the size
/// the worker's path table for `task` must have before interning
/// `new_paths` (explicit sync: the master interns paths its estimator never
/// sees — e.g. under accelerate_hw — so the worker can never infer them
/// from the request stream). Entries reference path ids < base + new.
struct ChunkPayload {
  cfsm::CfsmId task = cfsm::kNoCfsm;
  std::uint32_t base_paths = 0;
  std::vector<std::vector<cfsm::NodeId>> new_paths;
  struct Entry {
    sim::SimTime time = 0;
    cfsm::ReactionInputs inputs;
    cfsm::PathId path = cfsm::kNoPath;
    cfsm::CfsmState pre;
  };
  std::vector<Entry> entries;
};
void put_chunk(WireWriter& w, const ChunkPayload& c);
[[nodiscard]] bool get_chunk(WireReader& r, ChunkPayload* out);

/// kCost request: everything HwGateEstimator / HwRtlEstimator read from a
/// TransitionRequest (the reaction travels by value; the worker rebuilds the
/// request with pointers into the decoded storage).
struct CostPayload {
  cfsm::CfsmId task = cfsm::kNoCfsm;
  cfsm::PathId path = cfsm::kNoPath;
  sim::SimTime now = 0;
  cfsm::ReactionInputs inputs;
  cfsm::Reaction reaction;
  cfsm::CfsmState post_state;
};
void put_cost(WireWriter& w, const CostPayload& c);
[[nodiscard]] bool get_cost(WireReader& r, CostPayload* out);

void put_transition_cost(WireWriter& w, const core::TransitionCost& c);
[[nodiscard]] bool get_transition_cost(WireReader& r,
                                       core::TransitionCost* out);

void put_flush_result(WireWriter& w,
                      const core::ComponentEstimator::FlushResult& fr);
[[nodiscard]] bool get_flush_result(
    WireReader& r, core::ComponentEstimator::FlushResult* out);

void put_run_results(WireWriter& w, const core::RunResults& res);
[[nodiscard]] bool get_run_results(WireReader& r, core::RunResults* out);

/// Calibrated analytical-model coefficients (hw/analytical.hpp). Doubles
/// travel bit-exactly, so a decoded model predicts bit-identically to the
/// one the calibration fitted — the sharded prefilter and the serve
/// checkpoint both rely on that.
void put_analytical_model(WireWriter& w, const hw::AnalyticalModel& m);
[[nodiscard]] bool get_analytical_model(WireReader& r,
                                        hw::AnalyticalModel* out);

}  // namespace socpower::dist
