#include "dist/channel.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <vector>

#if !defined(_WIN32)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace socpower::dist {

namespace {

/// Parent-side fds of every live channel in this process. Children forked
/// after registration close them all (see header).
std::mutex g_parent_fds_mu;
std::vector<int> g_parent_fds;

void register_parent_fd(int fd) {
  std::lock_guard<std::mutex> lk(g_parent_fds_mu);
  g_parent_fds.push_back(fd);
}

void unregister_parent_fd(int fd) {
  std::lock_guard<std::mutex> lk(g_parent_fds_mu);
  g_parent_fds.erase(
      std::remove(g_parent_fds.begin(), g_parent_fds.end(), fd),
      g_parent_fds.end());
}

#if !defined(_WIN32)
/// Wait until `fd` is ready for the given poll events. Returns false on
/// timeout or error (including POLLERR-only wakeups; POLLHUP still counts as
/// ready so a closed peer is observed by the following read/send).
bool wait_ready(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}
#endif

}  // namespace

Channel::~Channel() { close(); }

Channel::Channel(Channel&& other) noexcept
    : fd_(other.fd_), parent_side_(other.parent_side_),
      bytes_tx_(other.bytes_tx_), bytes_rx_(other.bytes_rx_) {
  other.fd_ = -1;
  other.parent_side_ = false;
}

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    parent_side_ = other.parent_side_;
    bytes_tx_ = other.bytes_tx_;
    bytes_rx_ = other.bytes_rx_;
    other.fd_ = -1;
    other.parent_side_ = false;
  }
  return *this;
}

bool Channel::make_pair(Channel* a, Channel* b) {
#if defined(_WIN32)
  (void)a;
  (void)b;
  return false;
#else
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
  *a = Channel(fds[0]);
  *b = Channel(fds[1]);
  return true;
#endif
}

Channel Channel::connect_unix(const std::string& path) {
#if defined(_WIN32)
  (void)path;
  return Channel();
#else
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) return Channel();
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Channel();
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return Channel();
  }
  return Channel(fd);
#endif
}

void Channel::close() {
#if !defined(_WIN32)
  if (fd_ >= 0) {
    if (parent_side_) unregister_parent_fd(fd_);
    ::close(fd_);
  }
#endif
  fd_ = -1;
  parent_side_ = false;
}

void Channel::set_parent_side() {
  if (fd_ >= 0 && !parent_side_) {
    parent_side_ = true;
    register_parent_fd(fd_);
  }
}

bool Channel::send_frame(MsgType type, const std::vector<std::uint8_t>& payload,
                         int timeout_ms) {
#if defined(_WIN32)
  (void)type;
  (void)payload;
  (void)timeout_ms;
  return false;
#else
  if (fd_ < 0) return false;
  std::vector<std::uint8_t> buf;
  buf.reserve(5 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    buf.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  buf.push_back(static_cast<std::uint8_t>(type));
  buf.insert(buf.end(), payload.begin(), payload.end());

  std::size_t off = 0;
  while (off < buf.size()) {
    if (!wait_ready(fd_, POLLOUT, timeout_ms)) return false;
    const ssize_t n =
        ::send(fd_, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
    bytes_tx_ += static_cast<std::uint64_t>(n);
  }
  return true;
#endif
}

Channel::RecvStatus Channel::recv_frame(Frame* out, int timeout_ms) {
#if defined(_WIN32)
  (void)out;
  (void)timeout_ms;
  return RecvStatus::kError;
#else
  if (fd_ < 0) return RecvStatus::kError;
  auto read_exact = [&](std::uint8_t* dst, std::size_t want) -> RecvStatus {
    std::size_t off = 0;
    while (off < want) {
      if (!wait_ready(fd_, POLLIN, timeout_ms)) return RecvStatus::kTimeout;
      const ssize_t n = ::recv(fd_, dst + off, want - off, 0);
      if (n == 0) return RecvStatus::kClosed;
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return errno == ECONNRESET ? RecvStatus::kClosed : RecvStatus::kError;
      }
      off += static_cast<std::size_t>(n);
      bytes_rx_ += static_cast<std::uint64_t>(n);
    }
    return RecvStatus::kOk;
  };

  std::uint8_t header[5];
  RecvStatus st = read_exact(header, sizeof header);
  if (st != RecvStatus::kOk) return st;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  // A frame carries at most a full run's batch for one unit; anything past
  // this bound is protocol corruption, not data.
  if (len > (1u << 30)) return RecvStatus::kError;
  out->type = static_cast<MsgType>(header[4]);
  out->payload.resize(len);
  if (len != 0) {
    st = read_exact(out->payload.data(), len);
    if (st != RecvStatus::kOk) return st;
  }
  return RecvStatus::kOk;
#endif
}

void close_parent_fds_in_child() {
#if !defined(_WIN32)
  // No lock: we are single-threaded right after fork() and the list is a
  // snapshot of the parent's registrations at fork time.
  for (const int fd : g_parent_fds) ::close(fd);
  g_parent_fds.clear();
#endif
}

}  // namespace socpower::dist
