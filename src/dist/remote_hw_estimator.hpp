// Out-of-process hardware estimator proxy.
//
// Registered as "hw.gate.remote" / "hw.rtl.remote": the master talks to this
// class through the ordinary HwBackend interface while the actual gate/RT
// simulation runs in a forked worker process. Enqueued batch vectors are
// shipped in dist_flush_chunk-sized kEnqueueChunk slices the worker prices
// eagerly — that is the overlap the ISSUE asks for: the master's DE loop
// keeps scheduling software transitions while the worker burns gate cycles,
// and the kFlushUnit barrier only collects what is left.
//
// Fault tolerance: a primary AND a standby worker are pre-forked at
// prepare() (forking later, from pool threads mid-flush, risks inheriting a
// mutex held by another thread). Every frame is appended to a request log
// that is compacted at begin_run() to [path preloads + kBeginRun], so it is
// bounded by one run. On a send/recv failure or timeout the standby is
// promoted and the log replayed into it ("estimator.<name>.dist.respawns");
// if that fails too, an in-process dist::Worker takes over
// ("…dist.fallbacks" and the global "dist.fallbacks"). Replay drives the
// exact same frame stream through the exact same Worker code, so recovered
// runs stay bit-identical — only the reaction cache's cross-run warmth (a
// wall-time effect) is lost.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/estimators/component_estimator.hpp"
#include "dist/channel.hpp"
#include "dist/wire.hpp"
#include "dist/worker.hpp"

namespace socpower::telemetry {
class Counter;
class HistogramStat;
}  // namespace socpower::telemetry

namespace socpower::dist {

class RemoteHwEstimator : public core::HwBackend {
 public:
  /// `inner_name` is the registered in-process HwBackend the workers host
  /// ("hw.gate" / "hw.rtl"); this proxy's own name is `inner_name + ".remote"`.
  explicit RemoteHwEstimator(std::string inner_name);
  ~RemoteHwEstimator() override;

  [[nodiscard]] std::string_view name() const override { return name_; }
  void prepare(const core::EstimatorContext& ctx) override;
  void begin_run() override;
  core::TransitionCost cost(const core::TransitionRequest& req) override;
  void flush(std::vector<FlushJob>& jobs) override;
  void stats(core::RunResults& res) const override;
  [[nodiscard]] std::vector<cfsm::CfsmId> component_ids() const override {
    return components_;
  }

  [[nodiscard]] const hwsyn::HwImage* image(cfsm::CfsmId task) const override;
  void resync_if_dirty(cfsm::CfsmId task,
                       const cfsm::CfsmState& state) override;
  void mark_skipped(cfsm::CfsmId task, bool skipped) override;
  void reset_unit(cfsm::CfsmId task) override;
  void enqueue(cfsm::CfsmId task, sim::SimTime time,
               const cfsm::ReactionInputs& inputs, cfsm::PathId path,
               const cfsm::CfsmState& pre_state) override;
  void separate_reset(cfsm::CfsmId task) override;
  Joules separate_step(cfsm::CfsmId task,
                       const cfsm::ReactionInputs& inputs) override;

  /// True while requests still go to a worker process (false once the
  /// in-process fallback took over, or when fork/socketpair is unavailable).
  [[nodiscard]] bool remote_active() const;
  /// Fault-injection hook for tests: SIGKILL the primary worker (and the
  /// standby too when `include_standby`). The next request then exercises
  /// standby promotion — or, with no standby left, the in-process fallback.
  void debug_kill_workers(bool include_standby = true);

 private:
  struct Proc {
    long pid = -1;
    Channel ch;
  };

  [[nodiscard]] int timeout_ms() const;
  bool spawn(Proc* p);
  void shutdown_proc(Proc* p, bool graceful);
  void note_bytes();

  /// Log the frame, then transact it with the current deployment. Returns
  /// the kReply payload for RPC frames, empty for one-way frames.
  std::vector<std::uint8_t> xfer(MsgType t, std::vector<std::uint8_t> payload);
  std::vector<std::uint8_t> transact(MsgType t,
                                     const std::vector<std::uint8_t>& payload);
  /// Primary is broken: promote the standby (replaying the log), or drop to
  /// the in-process fallback. Returns the replayed reply of the log's final
  /// frame — i.e. the answer to the request that just failed.
  std::vector<std::uint8_t> recover();

  /// Encode the pending entries of `task` plus the path-table delta the
  /// worker has not seen yet; advances the sync cursor.
  std::vector<std::uint8_t> take_chunk(cfsm::CfsmId task);

  std::string inner_;
  std::string name_;

  const cfsm::Network* net_ = nullptr;
  const core::CoEstimatorConfig* config_ = nullptr;
  const std::vector<cfsm::PathTable>* path_tables_ = nullptr;
  std::vector<cfsm::CfsmId> components_;
  /// Frozen copy handed to every spawned/fallback Worker, so all of them
  /// start from the same structural config regardless of later master-side
  /// knob writes (kBeginRun frames carry the per-run knobs).
  core::CoEstimatorConfig prep_cfg_;

  /// All channel/worker use is serialized: flush jobs run on pool threads.
  mutable std::mutex mu_;
  Proc primary_;
  Proc standby_;
  std::unique_ptr<Worker> local_;  // in-process fallback, once engaged
  std::vector<Frame> log_;         // request log since the last begin_run

  /// Locally buffered batch entries per unit, shipped in
  /// config_->dist_flush_chunk slices.
  std::vector<std::vector<ChunkPayload::Entry>> pending_;
  /// How many interned paths of each unit the worker already knows.
  std::vector<std::uint32_t> synced_paths_;
  std::vector<bool> unit_has_work_;
  /// Master-side mirror of each worker unit's registers_dirty flag, so
  /// mark_skipped/resync frames are only sent on actual state changes (a
  /// resync frame carries a full CfsmState).
  std::vector<bool> worker_dirty_;
  /// Lazily synthesized master-side images (image() introspection only; the
  /// simulating copy lives in the worker). Synthesis is deterministic, so
  /// this equals the worker's.
  mutable std::vector<std::unique_ptr<hwsyn::HwImage>> images_;

  std::uint64_t tx_seen_ = 0;
  std::uint64_t rx_seen_ = 0;

  telemetry::Counter* rpcs_telem_ = nullptr;
  telemetry::Counter* bytes_tx_telem_ = nullptr;
  telemetry::Counter* bytes_rx_telem_ = nullptr;
  telemetry::Counter* respawns_telem_ = nullptr;
  telemetry::Counter* fallbacks_telem_ = nullptr;
  telemetry::Counter* global_fallbacks_telem_ = nullptr;
  telemetry::HistogramStat* latency_telem_ = nullptr;
};

}  // namespace socpower::dist
