// One frame-oriented duplex channel between the simulation master and one
// worker process, over a SOCK_STREAM socketpair.
//
// All I/O is poll-guarded: sends and receives take a timeout so a wedged or
// dead worker is detected (kTimeout / kClosed) instead of hanging the
// master. Writes use MSG_NOSIGNAL — a worker killed mid-run surfaces as an
// error return, never as SIGPIPE. Byte counters feed the
// estimator.<name>.dist.bytes_{tx,rx} telemetry.
//
// fork() hygiene: every parent-side fd registers itself in a process-wide
// list; a freshly forked child calls close_parent_fds_in_child() so it does
// not hold other workers' parent endpoints open (a stray duplicate would
// defeat EOF-based crash detection for those workers).
#pragma once

#include <cstdint>
#include <string>

#include "dist/wire.hpp"

namespace socpower::dist {

class Channel {
 public:
  Channel() = default;
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  Channel(Channel&& other) noexcept;
  Channel& operator=(Channel&& other) noexcept;

  /// Creates a connected pair. Returns false (with both ends invalid) when
  /// the platform has no socketpair or the call fails.
  static bool make_pair(Channel* a, Channel* b);

  /// Wraps an already-connected stream-socket fd (the serve/ layer's
  /// accepted AF_UNIX connections). Takes ownership of the fd.
  [[nodiscard]] static Channel adopt(int fd) { return Channel(fd); }

  /// Connects to the listening AF_UNIX socket at `path`. Returns an invalid
  /// channel on failure (no such socket, path too long, unsupported
  /// platform).
  [[nodiscard]] static Channel connect_unix(const std::string& path);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

  /// Mark this end as living in the parent process (registers the fd for
  /// close_parent_fds_in_child()); undone automatically by close().
  void set_parent_side();

  /// Sends one frame. `timeout_ms` bounds the total blocking time (-1 =
  /// forever). False on timeout, peer death, or any error.
  [[nodiscard]] bool send_frame(MsgType type,
                                const std::vector<std::uint8_t>& payload,
                                int timeout_ms = -1);

  enum class RecvStatus { kOk, kTimeout, kClosed, kError };
  /// Receives one frame; kClosed on orderly EOF or a dead peer.
  [[nodiscard]] RecvStatus recv_frame(Frame* out, int timeout_ms = -1);

  [[nodiscard]] std::uint64_t bytes_tx() const { return bytes_tx_; }
  [[nodiscard]] std::uint64_t bytes_rx() const { return bytes_rx_; }

 private:
  explicit Channel(int fd) : fd_(fd) {}

  int fd_ = -1;
  bool parent_side_ = false;
  std::uint64_t bytes_tx_ = 0;
  std::uint64_t bytes_rx_ = 0;
};

/// Closes every registered parent-side fd. Call once in a freshly forked
/// child, before it starts serving its own channel.
void close_parent_fds_in_child();

}  // namespace socpower::dist
