#include "dist/remote_hw_estimator.hpp"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#if !defined(_WIN32)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace socpower::dist {

namespace {

[[noreturn]] void reply_abort(const char* what) {
  std::fprintf(stderr, "dist::RemoteHwEstimator: malformed %s reply\n", what);
  std::abort();
}

}  // namespace

RemoteHwEstimator::RemoteHwEstimator(std::string inner_name)
    : inner_(std::move(inner_name)), name_(inner_ + ".remote") {}

RemoteHwEstimator::~RemoteHwEstimator() {
  std::lock_guard<std::mutex> lk(mu_);
  shutdown_proc(&primary_, /*graceful=*/true);
  shutdown_proc(&standby_, /*graceful=*/true);
}

int RemoteHwEstimator::timeout_ms() const {
  return static_cast<int>(config_->dist_rpc_timeout_ms);
}

bool RemoteHwEstimator::spawn(Proc* p) {
#if defined(_WIN32)
  (void)p;
  return false;
#else
  Channel parent_end;
  Channel child_end;
  if (!Channel::make_pair(&parent_end, &child_end)) return false;
  parent_end.set_parent_side();
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    // Worker child. Drop every parent-side endpoint (ours included — the
    // parent keeps it) so a sibling's crash is observed as EOF, then serve
    // until shutdown. _Exit: no atexit/static destructors of the parent.
    close_parent_fds_in_child();
    int code = 1;
    {
      Worker w(inner_, net_, prep_cfg_, components_);
      code = w.serve(child_end);
    }
    std::_Exit(code);
  }
  child_end.close();
  p->pid = static_cast<long>(pid);
  p->ch = std::move(parent_end);
  return true;
#endif
}

void RemoteHwEstimator::shutdown_proc(Proc* p, bool graceful) {
#if !defined(_WIN32)
  if (p->pid < 0) return;
  if (graceful && p->ch.valid())
    (void)p->ch.send_frame(MsgType::kShutdown, {}, /*timeout_ms=*/1000);
  else
    ::kill(static_cast<pid_t>(p->pid), SIGKILL);
  p->ch.close();
  int status = 0;
  (void)::waitpid(static_cast<pid_t>(p->pid), &status, 0);
#endif
  p->pid = -1;
  p->ch.close();
}

void RemoteHwEstimator::prepare(const core::EstimatorContext& ctx) {
  net_ = ctx.network;
  config_ = ctx.config;
  path_tables_ = ctx.path_tables;
  components_ = ctx.components;
  prep_cfg_ = *ctx.config;
  const std::size_t n = net_->cfsm_count();
  pending_.assign(n, {});
  synced_paths_.assign(n, 0);
  unit_has_work_.assign(n, false);
  worker_dirty_.assign(n, false);
  images_.clear();
  images_.resize(n);

  const std::string prefix = "estimator." + name_ + ".dist.";
  auto& reg = telemetry::registry();
  rpcs_telem_ = &reg.counter(prefix + "rpcs");
  bytes_tx_telem_ = &reg.counter(prefix + "bytes_tx");
  bytes_rx_telem_ = &reg.counter(prefix + "bytes_rx");
  respawns_telem_ = &reg.counter(prefix + "respawns");
  fallbacks_telem_ = &reg.counter(prefix + "fallbacks");
  global_fallbacks_telem_ = &reg.counter("dist.fallbacks");
  latency_telem_ = &reg.histogram(prefix + "rpc_latency_ms", 0.0, 1e3, 32);

  std::lock_guard<std::mutex> lk(mu_);
  if (supported() && spawn(&primary_)) {
    // A dead standby is not fatal — one respawn credit is just unavailable.
    (void)spawn(&standby_);
  } else {
    fallbacks_telem_->add();
    global_fallbacks_telem_->add();
    local_ = std::make_unique<Worker>(inner_, net_, prep_cfg_, components_);
  }
}

bool RemoteHwEstimator::remote_active() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !local_ && primary_.pid >= 0;
}

void RemoteHwEstimator::debug_kill_workers(bool include_standby) {
#if !defined(_WIN32)
  std::lock_guard<std::mutex> lk(mu_);
  if (primary_.pid >= 0) ::kill(static_cast<pid_t>(primary_.pid), SIGKILL);
  if (include_standby && standby_.pid >= 0)
    ::kill(static_cast<pid_t>(standby_.pid), SIGKILL);
#else
  (void)include_standby;
#endif
}

void RemoteHwEstimator::note_bytes() {
  if (!primary_.ch.valid()) return;
  bytes_tx_telem_->add(primary_.ch.bytes_tx() - tx_seen_);
  bytes_rx_telem_->add(primary_.ch.bytes_rx() - rx_seen_);
  tx_seen_ = primary_.ch.bytes_tx();
  rx_seen_ = primary_.ch.bytes_rx();
}

std::vector<std::uint8_t> RemoteHwEstimator::recover() {
  shutdown_proc(&primary_, /*graceful=*/false);
  if (standby_.pid >= 0) {
    respawns_telem_->add();
    primary_ = std::move(standby_);
    standby_ = Proc{};
    tx_seen_ = rx_seen_ = 0;
    std::vector<std::uint8_t> last;
    bool ok = true;
    for (const Frame& f : log_) {
      if (!primary_.ch.send_frame(f.type, f.payload, timeout_ms())) {
        ok = false;
        break;
      }
      if (expects_reply(f.type)) {
        Frame rep;
        if (primary_.ch.recv_frame(&rep, timeout_ms()) !=
                Channel::RecvStatus::kOk ||
            rep.type != MsgType::kReply) {
          ok = false;
          break;
        }
        last = std::move(rep.payload);
      } else {
        last.clear();
      }
    }
    note_bytes();
    if (ok) return last;
    shutdown_proc(&primary_, /*graceful=*/false);
  }
  // Both processes are gone: replay into an in-process Worker. Same frame
  // stream through the same dispatch code, so the results (and every
  // subsequent request) stay bit-identical to the remote execution.
  fallbacks_telem_->add();
  global_fallbacks_telem_->add();
  local_ = std::make_unique<Worker>(inner_, net_, prep_cfg_, components_);
  std::vector<std::uint8_t> last;
  for (const Frame& f : log_) {
    auto rep = local_->dispatch(f.type, f.payload);
    last = rep ? std::move(*rep) : std::vector<std::uint8_t>{};
  }
  return last;
}

std::vector<std::uint8_t> RemoteHwEstimator::transact(
    MsgType t, const std::vector<std::uint8_t>& payload) {
  rpcs_telem_->add();
  const bool telem = telemetry::enabled();
  const auto t0 = telem ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  std::vector<std::uint8_t> reply;
  if (local_) {
    auto rep = local_->dispatch(t, payload);
    if (rep) reply = std::move(*rep);
  } else {
    bool ok = primary_.ch.send_frame(t, payload, timeout_ms());
    if (ok && expects_reply(t)) {
      Frame f;
      ok = primary_.ch.recv_frame(&f, timeout_ms()) ==
               Channel::RecvStatus::kOk &&
           f.type == MsgType::kReply;
      if (ok) reply = std::move(f.payload);
    }
    note_bytes();
    if (!ok) reply = recover();
  }
  if (telem)
    latency_telem_->observe(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
  return reply;
}

std::vector<std::uint8_t> RemoteHwEstimator::xfer(
    MsgType t, std::vector<std::uint8_t> payload) {
  log_.push_back(Frame{t, std::move(payload)});
  return transact(t, log_.back().payload);
}

std::vector<std::uint8_t> RemoteHwEstimator::take_chunk(cfsm::CfsmId task) {
  const auto c = static_cast<std::size_t>(task);
  const cfsm::PathTable& table = (*path_tables_)[c];
  ChunkPayload chunk;
  chunk.task = task;
  chunk.base_paths = synced_paths_[c];
  for (std::size_t i = synced_paths_[c]; i < table.size(); ++i)
    chunk.new_paths.push_back(table.path(static_cast<cfsm::PathId>(i)));
  synced_paths_[c] = static_cast<std::uint32_t>(table.size());
  chunk.entries = std::move(pending_[c]);
  pending_[c].clear();
  WireWriter w;
  put_chunk(w, chunk);
  return w.take();
}

void RemoteHwEstimator::begin_run() {
  std::lock_guard<std::mutex> lk(mu_);
  // Compact the request log: everything a fresh Worker needs to reach the
  // start of this run is the accumulated path tables plus the per-run knobs.
  // (The live worker keeps its tables across runs, so only the kBeginRun
  // frame is actually sent.)
  log_.clear();
  for (const cfsm::CfsmId task : components_) {
    const auto c = static_cast<std::size_t>(task);
    pending_[c].clear();
    unit_has_work_[c] = false;
    worker_dirty_[c] = false;
    if (synced_paths_[c] == 0) continue;
    ChunkPayload preload;
    preload.task = task;
    preload.base_paths = 0;
    for (std::uint32_t i = 0; i < synced_paths_[c]; ++i)
      preload.new_paths.push_back(
          (*path_tables_)[c].path(static_cast<cfsm::PathId>(i)));
    WireWriter w;
    put_chunk(w, preload);
    log_.push_back(Frame{MsgType::kEnqueueChunk, w.take()});
  }
  WireWriter w;
  put_knobs(w, knobs_from(*config_));
  log_.push_back(Frame{MsgType::kBeginRun, w.take()});
  (void)transact(MsgType::kBeginRun, log_.back().payload);
}

core::TransitionCost RemoteHwEstimator::cost(
    const core::TransitionRequest& req) {
  CostPayload c;
  c.task = req.task;
  c.path = req.path;
  c.now = req.now;
  c.inputs = *req.inputs;
  c.reaction = *req.reaction;
  c.post_state = *req.post_state;
  WireWriter w;
  put_cost(w, c);
  std::lock_guard<std::mutex> lk(mu_);
  const std::vector<std::uint8_t> reply = xfer(MsgType::kCost, w.take());
  WireReader r(reply);
  core::TransitionCost out;
  if (!get_transition_cost(r, &out) || !r.at_end()) reply_abort("cost");
  return out;
}

void RemoteHwEstimator::flush(std::vector<FlushJob>& jobs) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const cfsm::CfsmId task : components_) {
    const auto c = static_cast<std::size_t>(task);
    if (!unit_has_work_[c]) continue;
    unit_has_work_[c] = false;
    jobs.push_back({task, [this, task] {
      SOCPOWER_TRACE_SPAN("dist.remote_flush_unit", 0,
                          static_cast<std::uint64_t>(task));
      std::lock_guard<std::mutex> jlk(mu_);
      const std::vector<std::uint8_t> reply =
          xfer(MsgType::kFlushUnit, take_chunk(task));
      WireReader r(reply);
      FlushResult out;
      if (!get_flush_result(r, &out) || !r.at_end())
        reply_abort("flush_result");
      return out;
    }});
  }
}

void RemoteHwEstimator::stats(core::RunResults& res) const {
  auto* self = const_cast<RemoteHwEstimator*>(this);
  std::lock_guard<std::mutex> lk(mu_);
  const std::vector<std::uint8_t> reply = self->xfer(MsgType::kStats, {});
  WireReader r(reply);
  const std::uint64_t cycles = r.get_u64();
  if (!r.ok() || !r.at_end()) reply_abort("stats");
  res.gate_sim_cycles += cycles;
}

const hwsyn::HwImage* RemoteHwEstimator::image(cfsm::CfsmId task) const {
  bool owned = false;
  for (const cfsm::CfsmId c : components_) owned = owned || c == task;
  if (!owned) return nullptr;
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = images_[static_cast<std::size_t>(task)];
  if (!slot)
    slot = std::make_unique<hwsyn::HwImage>(
        hwsyn::synthesize_cfsm(net_->cfsm(task)));
  return slot.get();
}

void RemoteHwEstimator::resync_if_dirty(cfsm::CfsmId task,
                                        const cfsm::CfsmState& state) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!worker_dirty_[static_cast<std::size_t>(task)]) return;
  worker_dirty_[static_cast<std::size_t>(task)] = false;
  WireWriter w;
  w.put_i32(task);
  put_state(w, state);
  (void)xfer(MsgType::kResync, w.take());
}

void RemoteHwEstimator::mark_skipped(cfsm::CfsmId task, bool skipped) {
  std::lock_guard<std::mutex> lk(mu_);
  auto flag = worker_dirty_[static_cast<std::size_t>(task)];
  if (flag == skipped) return;  // no worker state change: save the frame
  worker_dirty_[static_cast<std::size_t>(task)] = skipped;
  WireWriter w;
  w.put_i32(task);
  w.put_u8(skipped ? 1 : 0);
  (void)xfer(MsgType::kMarkSkipped, w.take());
}

void RemoteHwEstimator::reset_unit(cfsm::CfsmId task) {
  WireWriter w;
  w.put_i32(task);
  std::lock_guard<std::mutex> lk(mu_);
  (void)xfer(MsgType::kResetUnit, w.take());
}

void RemoteHwEstimator::enqueue(cfsm::CfsmId task, sim::SimTime time,
                                const cfsm::ReactionInputs& inputs,
                                cfsm::PathId path,
                                const cfsm::CfsmState& pre_state) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto c = static_cast<std::size_t>(task);
  pending_[c].push_back({time, inputs, path, pre_state});
  unit_has_work_[c] = true;
  if (pending_[c].size() >= config_->dist_flush_chunk)
    (void)xfer(MsgType::kEnqueueChunk, take_chunk(task));
}

void RemoteHwEstimator::separate_reset(cfsm::CfsmId task) {
  WireWriter w;
  w.put_i32(task);
  std::lock_guard<std::mutex> lk(mu_);
  (void)xfer(MsgType::kSeparateReset, w.take());
}

Joules RemoteHwEstimator::separate_step(cfsm::CfsmId task,
                                        const cfsm::ReactionInputs& inputs) {
  WireWriter w;
  w.put_i32(task);
  put_inputs(w, inputs);
  std::lock_guard<std::mutex> lk(mu_);
  const std::vector<std::uint8_t> reply =
      xfer(MsgType::kSeparateStep, w.take());
  WireReader r(reply);
  const Joules e = r.get_f64();
  if (!r.ok() || !r.at_end()) reply_abort("separate_step");
  return e;
}

}  // namespace socpower::dist
