#include "dist/wire.hpp"

#include <bit>
#include <cstring>

namespace socpower::dist {

bool supported() {
#if defined(_WIN32)
  return false;
#else
  return true;
#endif
}

bool expects_reply(MsgType t) {
  switch (t) {
    case MsgType::kCost:
    case MsgType::kFlushUnit:
    case MsgType::kSeparateStep:
    case MsgType::kStats:
    case MsgType::kEvalPoint:
    case MsgType::kServeHello:
    case MsgType::kServeOpen:
    case MsgType::kServeEstimate:
    case MsgType::kServeCheckpoint:
    case MsgType::kServeRestore:
    case MsgType::kServeStats:
    case MsgType::kServeShutdown:
      return true;
    default:
      return false;
  }
}

// ---- primitives ------------------------------------------------------------

void WireWriter::put_u8(std::uint8_t v) { buf_.push_back(v); }

void WireWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::put_i32(std::int32_t v) {
  put_u32(static_cast<std::uint32_t>(v));
}

void WireWriter::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

std::uint8_t WireReader::get_u8() {
  if (!take(1)) return 0;
  return p_[pos_++];
}

std::uint32_t WireReader::get_u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::get_u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(p_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  pos_ += 8;
  return v;
}

std::int32_t WireReader::get_i32() {
  return static_cast<std::int32_t>(get_u32());
}

double WireReader::get_f64() { return std::bit_cast<double>(get_u64()); }

// ---- vocabulary ------------------------------------------------------------

namespace {

/// Reads a container length and rejects values that could not possibly fit
/// in the remaining payload (each element is >= min_elem_bytes), so a
/// corrupted length never triggers a giant allocation.
std::uint32_t get_len(WireReader& r, std::uint32_t min_elem_bytes = 1) {
  const std::uint32_t n = r.get_u32();
  if (n > kMaxWireElems / (min_elem_bytes ? min_elem_bytes : 1)) {
    r.mark_bad();
    return 0;
  }
  return n;
}

}  // namespace

void put_string(WireWriter& w, const std::string& s) {
  w.put_u32(static_cast<std::uint32_t>(s.size()));
  for (const char c : s) w.put_u8(static_cast<std::uint8_t>(c));
}

bool get_string(WireReader& r, std::string* out) {
  out->clear();
  const std::uint32_t n = get_len(r, 1);
  out->reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i)
    out->push_back(static_cast<char>(r.get_u8()));
  if (!r.ok()) out->clear();
  return r.ok();
}

void put_inputs(WireWriter& w, const cfsm::ReactionInputs& in) {
  const auto& all = in.all();
  w.put_u32(static_cast<std::uint32_t>(all.size()));
  for (const auto& [e, v] : all) {
    w.put_i32(e);
    w.put_i32(v);
  }
}

bool get_inputs(WireReader& r, cfsm::ReactionInputs* out) {
  *out = {};
  const std::uint32_t n = get_len(r, 8);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const cfsm::EventId e = r.get_i32();
    const std::int32_t v = r.get_i32();
    if (r.ok()) out->set(e, v);
  }
  return r.ok();
}

void put_state(WireWriter& w, const cfsm::CfsmState& st) {
  w.put_u32(static_cast<std::uint32_t>(st.vars.size()));
  for (const std::int32_t v : st.vars) w.put_i32(v);
}

bool get_state(WireReader& r, cfsm::CfsmState* out) {
  out->vars.clear();
  const std::uint32_t n = get_len(r, 4);
  out->vars.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i)
    out->vars.push_back(r.get_i32());
  return r.ok();
}

void put_trace(WireWriter& w, const std::vector<cfsm::NodeId>& trace) {
  w.put_u32(static_cast<std::uint32_t>(trace.size()));
  for (const cfsm::NodeId n : trace) w.put_i32(n);
}

bool get_trace(WireReader& r, std::vector<cfsm::NodeId>* out) {
  out->clear();
  const std::uint32_t n = get_len(r, 4);
  out->reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) out->push_back(r.get_i32());
  return r.ok();
}

void put_emissions(WireWriter& w, const std::vector<cfsm::EmittedEvent>& ems) {
  w.put_u32(static_cast<std::uint32_t>(ems.size()));
  for (const auto& em : ems) {
    w.put_i32(em.event);
    w.put_i32(em.value);
  }
}

bool get_emissions(WireReader& r, std::vector<cfsm::EmittedEvent>* out) {
  out->clear();
  const std::uint32_t n = get_len(r, 8);
  out->reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    cfsm::EmittedEvent em;
    em.event = r.get_i32();
    em.value = r.get_i32();
    out->push_back(em);
  }
  return r.ok();
}

PerRunKnobs knobs_from(const core::CoEstimatorConfig& cfg) {
  PerRunKnobs k;
  k.sync_spin = cfg.sync_spin;
  k.hw_reaction_cycles = cfg.hw_reaction_cycles;
  k.verify_lowlevel = cfg.verify_lowlevel;
  k.hw_reaction_cache = cfg.hw_reaction_cache;
  k.hw_reaction_cache_max_entries = cfg.hw_reaction_cache_max_entries;
  k.hw_bit_parallel = cfg.hw_bit_parallel;
  k.hw_packed_lanes = cfg.hw_packed_lanes;
  return k;
}

void apply_knobs(const PerRunKnobs& k, core::CoEstimatorConfig* cfg) {
  cfg->sync_spin = k.sync_spin;
  cfg->hw_reaction_cycles = k.hw_reaction_cycles;
  cfg->verify_lowlevel = k.verify_lowlevel;
  cfg->hw_reaction_cache = k.hw_reaction_cache;
  cfg->hw_reaction_cache_max_entries =
      static_cast<std::size_t>(k.hw_reaction_cache_max_entries);
  cfg->hw_bit_parallel = k.hw_bit_parallel;
  cfg->hw_packed_lanes = k.hw_packed_lanes;
}

void put_knobs(WireWriter& w, const PerRunKnobs& k) {
  w.put_u32(k.sync_spin);
  w.put_u32(k.hw_reaction_cycles);
  w.put_u8(k.verify_lowlevel ? 1 : 0);
  w.put_u8(k.hw_reaction_cache ? 1 : 0);
  w.put_u64(k.hw_reaction_cache_max_entries);
  w.put_u8(k.hw_bit_parallel ? 1 : 0);
  w.put_u32(k.hw_packed_lanes);
}

bool get_knobs(WireReader& r, PerRunKnobs* out) {
  out->sync_spin = r.get_u32();
  out->hw_reaction_cycles = r.get_u32();
  out->verify_lowlevel = r.get_u8() != 0;
  out->hw_reaction_cache = r.get_u8() != 0;
  out->hw_reaction_cache_max_entries = r.get_u64();
  out->hw_bit_parallel = r.get_u8() != 0;
  out->hw_packed_lanes = r.get_u32();
  return r.ok();
}

void put_chunk(WireWriter& w, const ChunkPayload& c) {
  w.put_i32(c.task);
  w.put_u32(c.base_paths);
  w.put_u32(static_cast<std::uint32_t>(c.new_paths.size()));
  for (const auto& trace : c.new_paths) put_trace(w, trace);
  w.put_u32(static_cast<std::uint32_t>(c.entries.size()));
  for (const auto& e : c.entries) {
    w.put_u64(e.time);
    put_inputs(w, e.inputs);
    w.put_i32(e.path);
    put_state(w, e.pre);
  }
}

bool get_chunk(WireReader& r, ChunkPayload* out) {
  *out = {};
  out->task = r.get_i32();
  out->base_paths = r.get_u32();
  const std::uint32_t np = get_len(r, 4);
  out->new_paths.resize(np);
  for (std::uint32_t i = 0; i < np && r.ok(); ++i)
    if (!get_trace(r, &out->new_paths[i])) return false;
  const std::uint32_t ne = get_len(r, 8);
  out->entries.resize(ne);
  for (std::uint32_t i = 0; i < ne && r.ok(); ++i) {
    ChunkPayload::Entry& e = out->entries[i];
    e.time = r.get_u64();
    if (!get_inputs(r, &e.inputs)) return false;
    e.path = r.get_i32();
    if (!get_state(r, &e.pre)) return false;
  }
  return r.ok();
}

void put_cost(WireWriter& w, const CostPayload& c) {
  w.put_i32(c.task);
  w.put_i32(c.path);
  w.put_u64(c.now);
  put_inputs(w, c.inputs);
  put_emissions(w, c.reaction.emissions);
  put_trace(w, c.reaction.trace);
  put_state(w, c.post_state);
}

bool get_cost(WireReader& r, CostPayload* out) {
  *out = {};
  out->task = r.get_i32();
  out->path = r.get_i32();
  out->now = r.get_u64();
  return get_inputs(r, &out->inputs) &&
         get_emissions(r, &out->reaction.emissions) &&
         get_trace(r, &out->reaction.trace) && get_state(r, &out->post_state);
}

void put_transition_cost(WireWriter& w, const core::TransitionCost& c) {
  w.put_f64(c.cycles);
  w.put_f64(c.energy);
  w.put_u8(c.simulated ? 1 : 0);
}

bool get_transition_cost(WireReader& r, core::TransitionCost* out) {
  out->cycles = r.get_f64();
  out->energy = r.get_f64();
  out->simulated = r.get_u8() != 0;
  return r.ok();
}

void put_flush_result(WireWriter& w,
                      const core::ComponentEstimator::FlushResult& fr) {
  w.put_u64(fr.gate_cycles);
  w.put_u32(static_cast<std::uint32_t>(fr.entries.size()));
  for (const auto& e : fr.entries) {
    w.put_u64(e.time);
    w.put_i32(e.path);
    w.put_f64(e.energy);
  }
}

bool get_flush_result(WireReader& r,
                      core::ComponentEstimator::FlushResult* out) {
  out->entries.clear();
  out->gate_cycles = r.get_u64();
  const std::uint32_t n = get_len(r, 20);
  out->entries.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    core::ComponentEstimator::FlushEntry e;
    e.time = r.get_u64();
    e.path = r.get_i32();
    e.energy = r.get_f64();
    out->entries.push_back(e);
  }
  return r.ok();
}

void put_run_results(WireWriter& w, const core::RunResults& res) {
  w.put_f64(res.total_energy);
  w.put_u32(static_cast<std::uint32_t>(res.process_energy.size()));
  for (const Joules e : res.process_energy) w.put_f64(e);
  w.put_f64(res.cpu_energy);
  w.put_f64(res.hw_energy);
  w.put_f64(res.bus_energy);
  w.put_f64(res.cache_energy);
  w.put_u64(res.end_time);
  w.put_u64(res.reactions);
  w.put_u64(res.sw_reactions);
  w.put_u64(res.hw_reactions);
  w.put_u64(res.iss_invocations);
  w.put_u64(res.iss_instructions);
  w.put_u64(res.gate_sim_cycles);
  w.put_u64(res.cache_hits_served);
  w.put_u64(res.icache.accesses);
  w.put_u64(res.icache.misses);
  w.put_u64(res.icache.penalty_cycles);
  w.put_f64(res.icache.energy);
  w.put_u64(res.bus_totals.transfers);
  w.put_u64(res.bus_totals.grants);
  w.put_u64(res.bus_totals.bytes);
  w.put_u64(res.bus_totals.addr_toggles);
  w.put_u64(res.bus_totals.data_toggles);
  w.put_u64(res.bus_totals.wait_cycles);
  w.put_f64(res.bus_totals.energy);
  w.put_u64(res.coherence.accesses);
  w.put_u64(res.coherence.l1_hits);
  w.put_u64(res.coherence.l1_misses);
  w.put_u64(res.coherence.upgrades);
  w.put_u64(res.coherence.invalidations);
  w.put_u64(res.coherence.writebacks);
  w.put_f64(res.coherence.energy);
  w.put_f64(res.wall_seconds);
  w.put_u8(res.truncated ? 1 : 0);
  w.put_u32(static_cast<std::uint32_t>(res.process_leakage.size()));
  for (const Joules e : res.process_leakage) w.put_f64(e);
  w.put_f64(res.leakage_energy);
}

bool get_run_results(WireReader& r, core::RunResults* out) {
  *out = {};
  out->total_energy = r.get_f64();
  const std::uint32_t n = get_len(r, 8);
  out->process_energy.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i)
    out->process_energy.push_back(r.get_f64());
  out->cpu_energy = r.get_f64();
  out->hw_energy = r.get_f64();
  out->bus_energy = r.get_f64();
  out->cache_energy = r.get_f64();
  out->end_time = r.get_u64();
  out->reactions = r.get_u64();
  out->sw_reactions = r.get_u64();
  out->hw_reactions = r.get_u64();
  out->iss_invocations = r.get_u64();
  out->iss_instructions = r.get_u64();
  out->gate_sim_cycles = r.get_u64();
  out->cache_hits_served = r.get_u64();
  out->icache.accesses = r.get_u64();
  out->icache.misses = r.get_u64();
  out->icache.penalty_cycles = r.get_u64();
  out->icache.energy = r.get_f64();
  out->bus_totals.transfers = r.get_u64();
  out->bus_totals.grants = r.get_u64();
  out->bus_totals.bytes = r.get_u64();
  out->bus_totals.addr_toggles = r.get_u64();
  out->bus_totals.data_toggles = r.get_u64();
  out->bus_totals.wait_cycles = r.get_u64();
  out->bus_totals.energy = r.get_f64();
  out->coherence.accesses = r.get_u64();
  out->coherence.l1_hits = r.get_u64();
  out->coherence.l1_misses = r.get_u64();
  out->coherence.upgrades = r.get_u64();
  out->coherence.invalidations = r.get_u64();
  out->coherence.writebacks = r.get_u64();
  out->coherence.energy = r.get_f64();
  out->wall_seconds = r.get_f64();
  out->truncated = r.get_u8() != 0;
  const std::uint32_t nl = get_len(r, 8);
  out->process_leakage.reserve(nl);
  for (std::uint32_t i = 0; i < nl && r.ok(); ++i)
    out->process_leakage.push_back(r.get_f64());
  out->leakage_energy = r.get_f64();
  return r.ok();
}

void put_analytical_model(WireWriter& w, const hw::AnalyticalModel& m) {
  w.put_u32(static_cast<std::uint32_t>(m.units.size()));
  for (const hw::AnalyticalUnitModel& u : m.units) {
    w.put_i32(u.task);
    for (const double c : u.coeff) w.put_f64(c);
    w.put_f64(u.leakage_watts);
    w.put_u32(u.calibration_vectors);
    w.put_f64(u.residual_rms_j);
  }
  w.put_u32(static_cast<std::uint32_t>(m.pending.size()));
  for (const hw::AnalyticalCalibrationState& c : m.pending) {
    w.put_i32(c.task);
    for (const double x : c.moments.xtx) w.put_f64(x);
    for (const double x : c.moments.xty) w.put_f64(x);
    w.put_f64(c.moments.yty);
    w.put_u64(c.moments.n);
  }
}

bool get_analytical_model(WireReader& r, hw::AnalyticalModel* out) {
  out->units.clear();
  out->pending.clear();
  const std::uint32_t n = get_len(r, 4);
  out->units.resize(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    hw::AnalyticalUnitModel& u = out->units[i];
    u.task = r.get_i32();
    for (double& c : u.coeff) c = r.get_f64();
    u.leakage_watts = r.get_f64();
    u.calibration_vectors = r.get_u32();
    u.residual_rms_j = r.get_f64();
  }
  const std::uint32_t np = get_len(r, 4);
  out->pending.resize(np);
  for (std::uint32_t i = 0; i < np && r.ok(); ++i) {
    hw::AnalyticalCalibrationState& c = out->pending[i];
    c.task = r.get_i32();
    for (double& x : c.moments.xtx) x = r.get_f64();
    for (double& x : c.moments.xty) x = r.get_f64();
    c.moments.yty = r.get_f64();
    c.moments.n = r.get_u64();
  }
  return r.ok();
}

}  // namespace socpower::dist
