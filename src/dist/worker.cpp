#include "dist/worker.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "core/estimators/hw_estimator.hpp"
#include "core/estimators/registry.hpp"

namespace socpower::dist {

namespace {

[[noreturn]] void protocol_abort(const char* what) {
  std::fprintf(stderr, "dist::Worker: malformed %s frame\n", what);
  std::abort();
}

}  // namespace

Worker::Worker(const std::string& inner_name, const cfsm::Network* net,
               const core::CoEstimatorConfig& config,
               std::vector<cfsm::CfsmId> components)
    : cfg_(config), net_(net), components_(std::move(components)) {
  paths_.resize(net_->cfsm_count());
  accum_.resize(net_->cfsm_count());
  inner_ = core::estimator_registry().create(inner_name);
  if (!inner_) {
    std::fprintf(stderr, "dist::Worker: inner backend \"%s\" not registered\n",
                 inner_name.c_str());
    std::abort();
  }
  hw_ = dynamic_cast<core::HwBackend*>(inner_.get());
  if (!hw_) {
    std::fprintf(stderr,
                 "dist::Worker: inner backend \"%s\" is not a HwBackend\n",
                 inner_name.c_str());
    std::abort();
  }
  streaming_ = dynamic_cast<core::HwEstimatorBase*>(inner_.get());
  core::EstimatorContext ctx;
  ctx.network = net_;
  ctx.config = &cfg_;
  ctx.components = components_;
  ctx.path_tables = &paths_;
  inner_->prepare(ctx);
}

Worker::~Worker() = default;

void Worker::handle_chunk(const ChunkPayload& chunk) {
  const auto c = static_cast<std::size_t>(chunk.task);
  cfsm::PathTable& table = paths_.at(c);
  // Path deltas are cumulative and complete (the request log starts with
  // kPathPreload-equivalent chunks on replay), so the base must line up.
  if (table.size() != chunk.base_paths) protocol_abort("path-delta");
  for (const auto& trace : chunk.new_paths) {
    const cfsm::PathId id = table.intern(trace);
    (void)id;
    assert(static_cast<std::size_t>(id) == table.size() - 1);
  }
  for (const auto& e : chunk.entries)
    hw_->enqueue(chunk.task, e.time, e.inputs, e.path, e.pre);
  if (streaming_ && !chunk.entries.empty()) {
    // Eager evaluation: price the shipped slice now, while the master's DE
    // loop keeps running. Slice results concatenate bit-identically to one
    // whole-batch flush (see HwEstimatorBase::drain_batch).
    UnitAccum& a = accum_[c];
    core::ComponentEstimator::FlushResult part =
        streaming_->drain_batch(chunk.task, !a.started);
    a.started = true;
    a.acc.gate_cycles += part.gate_cycles;
    a.acc.entries.insert(a.acc.entries.end(), part.entries.begin(),
                         part.entries.end());
  }
}

core::ComponentEstimator::FlushResult Worker::collect_flush(
    cfsm::CfsmId task) {
  const auto c = static_cast<std::size_t>(task);
  UnitAccum& a = accum_[c];
  core::ComponentEstimator::FlushResult out = std::move(a.acc);
  a.acc = {};
  if (streaming_) {
    core::ComponentEstimator::FlushResult tail =
        streaming_->drain_batch(task, !a.started);
    out.gate_cycles += tail.gate_cycles;
    out.entries.insert(out.entries.end(), tail.entries.begin(),
                       tail.entries.end());
  } else {
    // Non-streaming inner backend: everything is still buffered; run its
    // own flush job for this unit.
    std::vector<core::ComponentEstimator::FlushJob> jobs;
    inner_->flush(jobs);
    for (auto& job : jobs) {
      if (job.component != task) continue;
      core::ComponentEstimator::FlushResult fr = job.work();
      out.gate_cycles += fr.gate_cycles;
      out.entries.insert(out.entries.end(), fr.entries.begin(),
                         fr.entries.end());
    }
  }
  a.started = false;
  return out;
}

std::optional<std::vector<std::uint8_t>> Worker::dispatch(
    MsgType type, const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  switch (type) {
    case MsgType::kBeginRun: {
      PerRunKnobs k;
      if (!get_knobs(r, &k) || !r.at_end()) protocol_abort("begin_run");
      apply_knobs(k, &cfg_);
      inner_->begin_run();
      for (auto& a : accum_) a = {};
      return std::nullopt;
    }
    case MsgType::kResync: {
      const cfsm::CfsmId task = r.get_i32();
      cfsm::CfsmState st;
      if (!get_state(r, &st) || !r.at_end()) protocol_abort("resync");
      hw_->resync_if_dirty(task, st);
      return std::nullopt;
    }
    case MsgType::kMarkSkipped: {
      const cfsm::CfsmId task = r.get_i32();
      const bool skipped = r.get_u8() != 0;
      if (!r.ok() || !r.at_end()) protocol_abort("mark_skipped");
      hw_->mark_skipped(task, skipped);
      return std::nullopt;
    }
    case MsgType::kResetUnit: {
      const cfsm::CfsmId task = r.get_i32();
      if (!r.ok() || !r.at_end()) protocol_abort("reset_unit");
      hw_->reset_unit(task);
      return std::nullopt;
    }
    case MsgType::kEnqueueChunk: {
      ChunkPayload chunk;
      if (!get_chunk(r, &chunk) || !r.at_end()) protocol_abort("chunk");
      handle_chunk(chunk);
      return std::nullopt;
    }
    case MsgType::kCost: {
      CostPayload c;
      if (!get_cost(r, &c) || !r.at_end()) protocol_abort("cost");
      core::TransitionRequest req;
      req.task = c.task;
      req.path = c.path;
      req.now = c.now;
      req.inputs = &c.inputs;
      req.reaction = &c.reaction;
      req.post_state = &c.post_state;
      const core::TransitionCost cost = inner_->cost(req);
      WireWriter w;
      put_transition_cost(w, cost);
      return w.take();
    }
    case MsgType::kFlushUnit: {
      ChunkPayload chunk;
      if (!get_chunk(r, &chunk) || !r.at_end()) protocol_abort("flush_unit");
      handle_chunk(chunk);
      WireWriter w;
      put_flush_result(w, collect_flush(chunk.task));
      return w.take();
    }
    case MsgType::kSeparateReset: {
      const cfsm::CfsmId task = r.get_i32();
      if (!r.ok() || !r.at_end()) protocol_abort("separate_reset");
      hw_->separate_reset(task);
      return std::nullopt;
    }
    case MsgType::kSeparateStep: {
      const cfsm::CfsmId task = r.get_i32();
      cfsm::ReactionInputs inputs;
      if (!get_inputs(r, &inputs) || !r.at_end())
        protocol_abort("separate_step");
      const Joules e = hw_->separate_step(task, inputs);
      WireWriter w;
      w.put_f64(e);
      return w.take();
    }
    case MsgType::kStats: {
      if (!r.at_end()) protocol_abort("stats");
      core::RunResults tmp;
      inner_->stats(tmp);
      WireWriter w;
      w.put_u64(tmp.gate_sim_cycles);
      return w.take();
    }
    default:
      protocol_abort("unknown-type");
  }
}

int Worker::serve(Channel& ch) {
  for (;;) {
    Frame f;
    const Channel::RecvStatus st = ch.recv_frame(&f, /*timeout_ms=*/-1);
    if (st != Channel::RecvStatus::kOk) return st == Channel::RecvStatus::kClosed ? 0 : 1;
    if (f.type == MsgType::kShutdown) return 0;
    const auto reply = dispatch(f.type, f.payload);
    if (reply) {
      if (!ch.send_frame(MsgType::kReply, *reply)) return 1;
    }
  }
}

}  // namespace socpower::dist
