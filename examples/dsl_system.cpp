// Describe a system in the textual CFSM DSL — the paper's Figure 1
// producer/timer/consumer, written essentially as the paper presents it —
// and demonstrate why co-estimation matters by comparing it against
// separate per-component estimation.
//
// Usage: dsl_system [file.cfsm]   (runs the built-in Figure 1 model if no
//                                  file is given)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "cfsm/dsl.hpp"
#include "core/coestimator.hpp"
#include "core/report.hpp"

using namespace socpower;

namespace {

constexpr const char* kFigure1 = R"(
// The motivating example of the paper's Figure 1. The producer performs a
// checksum-like computation per pseudo-byte (one STEP transition each); the
// consumer's workload depends on how much TIME elapsed between END_COMPs.
event START, STEP, END_COMP, TIMER_TICK, TIME, ITER, BYTE_DONE, RESET;

process producer {              // -> software (SPARClite-class CPU)
  input START, STEP;
  output STEP, END_COMP;
  reset RESET;
  var pkts = 0, i = 0, acc = 0;
  if (present(STEP) && i > 0) {
    acc = ((acc + i * 7) ^ (acc >> 3)) + 1;
    i = i - 1;
    if (i > 0) {
      emit STEP;
    } else {
      emit END_COMP(acc);
      pkts = pkts - 1;
      if (pkts > 0) {
        i = 24;
        acc = 0;
        emit STEP;
      }
    }
  }
  if (present(START)) {
    pkts = pkts + 1;
    if (i == 0) {
      i = 24;
      acc = 0;
      emit STEP;
    }
  }
}

process timer {                 // -> hardware
  input TIMER_TICK;
  output TIME;
  reset RESET;
  var t = 0;
  t = t + 1;
  emit TIME(t);
}

process consumer {              // -> hardware
  input END_COMP, ITER;
  sampled TIME;
  output ITER, BYTE_DONE;
  reset RESET;
  var prev = 0, n = 0, d = 0;
  if (present(END_COMP)) {
    n = n + (val(TIME) - prev) + 20;
    prev = val(TIME);
    if (n > 0) { emit ITER; }
  } else if (present(ITER) && n > 0) {
    d = (d ^ (n << 2)) + 3;
    emit BYTE_DONE(d);
    n = n - 1;
    if (n > 0) { emit ITER; }
  }
}
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kFigure1;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  cfsm::Network net;
  const auto parsed = cfsm::parse_network(source, net);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 1;
  }
  std::printf("parsed %zu processes, %zu events\n", net.cfsm_count(),
              net.event_count());

  core::CoEstimator est(&net, {});
  est.map_sw(net.cfsm_id("producer"), 1);
  est.map_hw(net.cfsm_id("timer"));
  est.map_hw(net.cfsm_id("consumer"));
  est.prepare();

  sim::Stimulus stim;
  for (int p = 0; p < 6; ++p)
    stim.add(1 + 2 * static_cast<sim::SimTime>(p),
             net.event_id("START"));
  for (sim::SimTime t = 24; t <= 30000; t += 24)
    stim.add(t, net.event_id("TIMER_TICK"));

  const auto co = est.run(stim);
  const auto sep = est.run_separate(stim);
  std::printf("\n%s\n",
              core::render_report(net, est, co,
                                  {.include_waveforms = false})
                  .c_str());

  const auto cons = static_cast<std::size_t>(net.cfsm_id("consumer"));
  std::printf(
      "consumer energy: co-estimation %s vs separate %s "
      "(under-estimated by %.0f%%)\n",
      format_energy(co.process_energy[cons]).c_str(),
      format_energy(sep.process_energy[cons]).c_str(),
      100.0 * (co.process_energy[cons] - sep.process_energy[cons]) /
          co.process_energy[cons]);
  return 0;
}
