// Telemetry demo: run the TCP/IP co-estimation with tracing on, print the
// counter snapshot, and export a Chrome trace-event file.
//
// The trace shows the co-estimation pipeline's anatomy on a wall-clock
// timeline — every software transition (ISS invocation vs. energy-cache
// hit), every hardware batch flush, the exploration phases — with each span
// carrying the simulated time at which the transition fired, so a power peak
// in the PowerTrace waveform can be lined up with the phase that caused it.
//
// Usage: trace_cosim [out.json] [num_packets]
//   out.json     trace output path (default trace_cosim.json)
//   num_packets  workload size (default 6)
// Set SOCPOWER_HW_REMOTE=1 to run the hardware estimators in a forked
// worker process: the trace gains dist.remote_flush_unit spans and the
// counter dump reports the RPC/byte traffic the wire protocol carried.
// Open the result in chrome://tracing or https://ui.perfetto.dev.
#include <cstdio>
#include <cstdlib>

#include "core/coestimator.hpp"
#include "core/report.hpp"
#include "systems/tcpip.hpp"
#include "telemetry/telemetry.hpp"
#include "util/env.hpp"

using namespace socpower;

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "trace_cosim.json";
  const int packets = argc > 2 ? std::atoi(argv[2]) : 6;

  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = true;
  tcfg.trace = true;
  telemetry::configure(tcfg);

  systems::TcpIpParams p;
  p.num_packets = packets;
  p.packet_bytes = 128;
  p.dma_block_size = 16;
  p.ip_check_in_hw = true;
  systems::TcpIpSystem sys(p);

  core::CoEstimatorConfig cfg;
  cfg.accel = core::Acceleration::kCaching;
  cfg.hw_reaction_cache = util::env_bool("SOCPOWER_HW_REACTION_CACHE", true);
  cfg.hw_remote = util::env_bool("SOCPOWER_HW_REMOTE", false);
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();

  const core::RunResults exact = est.run(sys.stimulus());
  std::printf("run 1 (cold cache): %s\n", exact.summary().c_str());
  const core::RunResults warm = est.run(sys.stimulus());
  std::printf("run 2 (warm cache): %s\n\n", warm.summary().c_str());

  // The report appends the telemetry section when collection is enabled.
  std::printf("%s\n", core::render_report(sys.network(), est, warm, {})
                          .c_str());

  const telemetry::Snapshot snap = telemetry::snapshot();
  const std::uint64_t hits = snap.counter_or("ecache.hits");
  const std::uint64_t misses = snap.counter_or("ecache.misses");
  if (hits + misses > 0)
    std::printf("energy-cache hit rate across both runs: %.1f%%\n",
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses));
  // One layer down: how often the gate-level simulator replayed a memoized
  // reaction instead of sweeping the netlist (both HW backends publish
  // under their own telemetry namespace).
  for (const char* backend : {"hw.gate", "hw.rtl"}) {
    const std::string prefix = std::string("estimator.") + backend + ".rcache.";
    const std::uint64_t rhits = snap.counter_or(prefix + "hits");
    const std::uint64_t rmisses = snap.counter_or(prefix + "misses");
    if (rhits + rmisses == 0) continue;
    std::printf("%s reaction-cache hit rate across both runs: %.1f%% "
                "(%llu gate evaluations skipped)\n",
                backend,
                100.0 * static_cast<double>(rhits) /
                    static_cast<double>(rhits + rmisses),
                static_cast<unsigned long long>(
                    snap.counter_or(prefix + "skipped_gate_evals")));
  }

  if (cfg.hw_remote) {
    for (const char* backend : {"hw.gate.remote", "hw.rtl.remote"}) {
      const std::string prefix = std::string("estimator.") + backend + ".dist.";
      const std::uint64_t rpcs = snap.counter_or(prefix + "rpcs");
      if (rpcs == 0) continue;
      std::printf("%s: %llu RPCs, %llu bytes out, %llu bytes in, "
                  "%llu respawn(s), %llu fallback(s)\n",
                  backend, static_cast<unsigned long long>(rpcs),
                  static_cast<unsigned long long>(
                      snap.counter_or(prefix + "bytes_tx")),
                  static_cast<unsigned long long>(
                      snap.counter_or(prefix + "bytes_rx")),
                  static_cast<unsigned long long>(
                      snap.counter_or(prefix + "respawns")),
                  static_cast<unsigned long long>(
                      snap.counter_or(prefix + "fallbacks")));
    }
  }

  if (!telemetry::write_chrome_trace(out_path)) return 1;
  std::printf("wrote %s (%zu events, %llu dropped) — open in "
              "chrome://tracing or ui.perfetto.dev\n",
              out_path, telemetry::collector().event_count(),
              static_cast<unsigned long long>(
                  telemetry::collector().dropped()));
  return 0;
}
