// Runs the software macro-modeling characterization flow of Section 4.1 /
// Figure 3 and prints the resulting parameter file: every macro-operation's
// template program is compiled to SLITE, measured on the ISS, and recorded
// as .time/.size/.energy entries. Optionally writes the file to disk.
//
// Usage: characterize_macromodel [output.param]
#include <cstdio>
#include <fstream>

#include "core/macromodel.hpp"
#include "iss/power_model.hpp"
#include "swsyn/codegen.hpp"

using namespace socpower;

int main(int argc, char** argv) {
  std::printf("characterizing the SLITE macro-operation library "
              "(SPARClite-class power model, 3.3 V, 100 MHz)\n\n");

  const auto model = iss::InstructionPowerModel::sparclite();
  const auto lib = core::MacroModelLibrary::characterize(model);
  const std::string param_file = lib.to_parameter_file();
  std::printf("%s", param_file.c_str());

  // Show a template, so the flow of Figure 3 is visible end to end.
  std::printf("\nexample characterization template (AEMIT):\n");
  for (const auto& ins :
       swsyn::characterization_template(swsyn::MacroOp::kAemit))
    std::printf("    %s\n", iss::disassemble(ins).c_str());

  // Round-trip sanity: the parameter file reloads to identical costs.
  std::string err;
  const auto reloaded =
      core::MacroModelLibrary::from_parameter_file(param_file, &err);
  if (!reloaded) {
    std::fprintf(stderr, "round-trip failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("\nparameter file round-trip: OK\n");

  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << param_file;
    std::printf("written to %s\n", argv[1]);
  }
  return 0;
}
