// Multicore SoC sweep: co-estimated vs separate-estimated energy over the
// N-core scenario family (systems::MulticoreSystem), on both interconnects.
//
// The direct sweep shows the paper's claim sharpened by sharing: the
// separate-estimation error grows with the core count, because N interleaved
// DONE streams plus interconnect contention and coherence stalls are exactly
// what a timing-independent behavioral trace cannot see. The two-phase
// exploration at the end picks the minimum-energy (cores, interconnect)
// configuration the way explore_tcpip does for the NIC subsystem.
//
// Usage: multicore_sweep [num_packets] [threads]
// (threads defaults to $SOCPOWER_THREADS, then 1; 0 = one per hardware
// thread. Results are bit-identical for any thread count.)
// Set SOCPOWER_DIST_WORKERS=N (>= 2) to shard the exploration over forked
// worker processes instead — also bit-identical.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/coestimator.hpp"
#include "core/explorer.hpp"
#include "systems/multicore.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace socpower;

namespace {

core::RunResults run_point(const systems::MulticoreParams& params,
                           core::Acceleration accel, bool separate) {
  systems::MulticoreSystem sys(params);
  core::CoEstimatorConfig cfg = sys.config_template();
  cfg.accel = accel;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();
  const sim::Stimulus stim = sys.stimulus(8192);
  return separate ? est.run_separate(stim) : est.run(stim);
}

}  // namespace

int main(int argc, char** argv) {
  const int packets = argc > 1 ? std::atoi(argv[1]) : 6;
  const auto clamp_threads = [](long v) -> unsigned {
    return static_cast<unsigned>(std::clamp(v, 0l, 1024l));
  };
  unsigned threads =
      argc > 2 ? clamp_threads(std::strtol(argv[2], nullptr, 10))
               : clamp_threads(util::env_int("SOCPOWER_THREADS", 1));
  threads = resolve_thread_count(threads);
  const unsigned dist_workers =
      clamp_threads(util::env_int("SOCPOWER_DIST_WORKERS", 1));

  std::printf("multicore SoC sweep: %d packets/worker, %u worker thread(s)\n\n",
              packets, threads);

  const core::InterconnectKind kinds[] = {core::InterconnectKind::kBus,
                                          core::InterconnectKind::kNoc};
  const unsigned core_counts[] = {1u, 2u, 4u};

  TextTable t({"interconnect", "cores", "co energy (uJ)", "sep energy (uJ)",
               "sep error", "ic wait cyc", "invals", "writebacks"});
  for (const core::InterconnectKind ic : kinds) {
    for (const unsigned cores : core_counts) {
      systems::MulticoreParams mp;
      mp.cores = cores;
      mp.num_packets = packets;
      mp.interconnect = ic;
      const core::RunResults co =
          run_point(mp, core::Acceleration::kNone, false);
      const core::RunResults sep =
          run_point(mp, core::Acceleration::kNone, true);
      const double err = std::fabs(sep.total_energy - co.total_energy) /
                         co.total_energy;
      t.add_row({core::interconnect_name(ic), std::to_string(cores),
                 TextTable::fixed(co.total_energy * 1e6, 4),
                 TextTable::fixed(sep.total_energy * 1e6, 4),
                 TextTable::fixed(100.0 * err, 2) + "%",
                 std::to_string(co.bus_totals.wait_cycles),
                 std::to_string(co.coherence.invalidations),
                 std::to_string(co.coherence.writebacks)});
    }
  }
  std::printf("%s", t.render().c_str());

  // Two-phase exploration over the same space: coarse macro-model sweep,
  // exact verification of the shortlist. Sharded over forked workers when
  // SOCPOWER_DIST_WORKERS >= 2; identical outcome either way.
  std::printf("\n--- two-phase exploration over (cores, interconnect) ---\n");
  std::vector<core::ExplorationPoint> pts;
  for (const core::InterconnectKind ic : kinds) {
    for (const unsigned cores : core_counts) {
      auto make_run = [=](core::Acceleration accel) {
        return [=]() {
          systems::MulticoreParams mp;
          mp.cores = cores;
          mp.num_packets = packets;
          mp.interconnect = ic;
          return run_point(mp, accel, false);
        };
      };
      pts.push_back({std::string(core::interconnect_name(ic)) + " x" +
                         std::to_string(cores),
                     make_run(core::Acceleration::kMacroModel),
                     make_run(core::Acceleration::kNone)});
    }
  }
  const auto outcome =
      dist_workers >= 2
          ? core::explore_sharded(pts, /*verify_top=*/2,
                                  {.workers = dist_workers})
          : core::explore(pts, /*verify_top=*/2, {.threads = threads});
  std::printf("%s", outcome.render().c_str());
  return outcome.winner_confirmed ? 0 : 1;
}
