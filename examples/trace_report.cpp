// Full run report + CSV waveform export: runs the TCP/IP subsystem, prints
// the framework's standard report (per-process energy, shares, power
// waveforms with peaks — the "visual display" role of the paper's Figure 2)
// and optionally writes all component waveforms as CSV for plotting.
//
// Usage: trace_report [waveforms.csv]
#include <cstdio>
#include <fstream>

#include "core/report.hpp"
#include "systems/tcpip.hpp"

using namespace socpower;

int main(int argc, char** argv) {
  systems::TcpIpParams p;
  p.num_packets = 12;
  p.packet_bytes = 64;
  p.packet_gap = 300;
  systems::TcpIpSystem sys(p);

  core::CoEstimatorConfig cfg;
  cfg.keep_power_samples = true;  // waveforms need per-sample retention
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();

  const auto results = est.run(sys.stimulus());
  if (sys.packets_ok(est) != p.num_packets) {
    std::fprintf(stderr, "functional check failed\n");
    return 1;
  }

  core::ReportOptions opt;
  opt.waveform_width = 56;
  opt.peaks = 4;
  std::printf("%s", core::render_report(sys.network(), est, results, opt)
                        .c_str());

  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << core::waveforms_csv(est, /*window_cycles=*/64);
    std::printf("\nwaveforms written to %s\n", argv[1]);
  }
  return 0;
}
