// Client demo for the co-estimation session server: sweep the TCP/IP
// benchmark's acceleration modes through a server session, twice, and show
// what the warm caches buy.
//
// The first sweep is COLD: the server prepares the session (compiles SW,
// synthesizes HW, characterizes the macro-op library) and fills its caches.
// The second sweep is WARM: the same session replays out of the ISS block
// cache and the HW reaction tables, so the warm hit rate is strictly higher
// and the wall time drops — with every energy value bit-identical.
//
// By default the demo is self-contained (it hosts an in-process server on a
// private socket). Point SOCPOWER_SERVE_SOCKET at a running socpower_serve
// daemon to sweep against that instead — run it twice and the second
// process's "cold" sweep is already warm, which is the whole point of the
// service.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/client_sweep
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/env.hpp"
#include "util/units.hpp"

using namespace socpower;

namespace {

struct Sweep {
  double wall_ms = 0.0;
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_fills = 0;
  std::vector<double> energies;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = warm_hits + warm_fills;
    return total == 0 ? 0.0
                      : static_cast<double>(warm_hits) /
                            static_cast<double>(total);
  }
};

const char* kModes[] = {"none", "caching", "interleaving", "sampling"};

bool run_sweep(serve::Client& client, const std::string& key, Sweep* out,
               std::string* error) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint8_t accel = 0; accel < 4; ++accel) {
    serve::RunRequest rr;
    rr.accel = accel;
    if (accel == 1) rr.ecache_thresh_variance = 0.5;  // caching threshold
    core::RunResults res;
    serve::RequestStats stats;
    if (!client.estimate(key, rr, &res, &stats, error)) return false;
    out->warm_hits += stats.warm_hits;
    out->warm_fills += stats.warm_fills;
    out->energies.push_back(res.total_energy);
  }
  out->wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  return true;
}

}  // namespace

int main() {
  // ---- 1. Find (or host) a server -------------------------------------------
  const std::string env_socket = util::env_str("SOCPOWER_SERVE_SOCKET", "");
  std::unique_ptr<serve::Server> local;
  std::string socket_path = env_socket;
  if (socket_path.empty()) {
    serve::ServerConfig cfg;
    cfg.socket_path = "/tmp/socpower_client_sweep.sock";
    cfg.threads =
        static_cast<unsigned>(util::env_int("SOCPOWER_SERVE_THREADS", 0));
    local = std::make_unique<serve::Server>(cfg);
    if (!local->start()) {
      std::fprintf(stderr, "cannot start in-process server (no AF_UNIX?)\n");
      return 1;
    }
    socket_path = local->socket_path();
    std::printf("hosting in-process server at %s\n", socket_path.c_str());
  } else {
    std::printf("connecting to daemon at %s\n", socket_path.c_str());
  }

  std::string error;
  serve::Client client = serve::Client::connect(socket_path, &error);
  if (!client.valid()) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return 1;
  }

  // ---- 2. Open the session (the TCP/IP benchmark, all-gate HW) --------------
  serve::SystemParams system;
  system.name = "tcpip";
  system.set("num_packets", 4);
  system.set("packet_bytes", 64);
  system.set("ip_check_in_hw", 1);
  system.set("seed", 7);
  std::string key;
  bool created = false;
  if (!client.open_session(system, serve::StructuralConfig{}, &key, &created,
                           &error)) {
    std::fprintf(stderr, "open_session failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("session %s (%s)\n\n", key.c_str(),
              created ? "freshly prepared" : "already warm on the server");

  // ---- 3. Sweep twice: cold, then warm --------------------------------------
  Sweep cold, warm;
  if (!run_sweep(client, key, &cold, &error) ||
      !run_sweep(client, key, &warm, &error)) {
    std::fprintf(stderr, "estimate failed: %s\n", error.c_str());
    return 1;
  }

  std::printf("%-14s %14s %14s\n", "accel mode", "cold energy", "warm energy");
  bool identical = true;
  for (std::size_t i = 0; i < cold.energies.size(); ++i) {
    identical = identical && cold.energies[i] == warm.energies[i];
    std::printf("%-14s %14s %14s\n", kModes[i],
                format_energy(cold.energies[i]).c_str(),
                format_energy(warm.energies[i]).c_str());
  }
  std::printf("\nresults bit-identical across sweeps: %s\n",
              identical ? "yes" : "NO (bug!)");
  std::printf("cold sweep: %8.2f ms, warm-cache hit rate %5.1f%%\n",
              cold.wall_ms, 100.0 * cold.hit_rate());
  std::printf("warm sweep: %8.2f ms, warm-cache hit rate %5.1f%%\n",
              warm.wall_ms, 100.0 * warm.hit_rate());

  // ---- 4. Checkpoint the hot session ----------------------------------------
  std::vector<std::uint8_t> blob;
  if (client.checkpoint(key, &blob, &error)) {
    std::printf("\ncheckpoint of the hot session: %zu bytes ", blob.size());
    std::string restored_key;
    bool restored = false;
    if (client.restore(blob, &restored_key, &restored, &error))
      std::printf("(restore keyed to %s; %s)\n", restored_key.c_str(),
                  restored ? "adopted fresh"
                           : "server already had it warm, kept its copy");
    else
      std::printf("(restore failed: %s)\n", error.c_str());
  }

  // ---- 5. Server-side counters ----------------------------------------------
  serve::ServeStatsReply stats;
  if (client.stats(&stats, &error))
    std::printf("\n%s\n", stats.rendered.c_str());

  if (local) local->stop();
  return identical ? 0 : 1;
}
