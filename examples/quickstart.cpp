// Quickstart: build a small HW/SW system from scratch and co-estimate its
// power consumption.
//
// The system: a software "controller" task totals sensor readings and kicks
// a hardware "pulse" ASIC every time the total crosses a threshold; the ASIC
// stretches each kick into a programmable number of output pulses.
//
//   sensors --SAMPLE(v)--> [controller SW] --FIRE(n)--> [pulse ASIC HW] --PULSE-->
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/coestimator.hpp"

using namespace socpower;

int main() {
  // ---- 1. Describe the behavior as a network of CFSMs ----------------------
  cfsm::Network net;
  const auto SAMPLE = net.declare_event("SAMPLE");
  const auto FIRE = net.declare_event("FIRE");
  const auto TICK = net.declare_event("TICK");    // pulse ASIC self-trigger
  const auto PULSE = net.declare_event("PULSE");  // to the environment

  // Software controller: TOTAL += SAMPLE; if TOTAL >= 100 { TOTAL -= 100;
  // FIRE(TOTAL & 7 + 2); }
  {
    cfsm::Cfsm& c = net.add_cfsm("controller");
    c.add_input(SAMPLE);
    c.add_output(FIRE);
    const auto TOTAL = c.add_var("TOTAL");
    auto& g = c.graph();
    auto& a = c.arena();
    using Op = cfsm::ExprOp;
    const auto end = g.add_end();
    const auto fire = g.add_assign(
        TOTAL, a.binary(Op::kSub, a.variable(TOTAL), a.constant(100)),
        g.add_emit(FIRE,
                   a.binary(Op::kAdd,
                            a.binary(Op::kBitAnd, a.variable(TOTAL),
                                     a.constant(7)),
                            a.constant(2)),
                   end));
    const auto check = g.add_test(
        a.binary(Op::kGe, a.variable(TOTAL), a.constant(100)), fire, end);
    g.set_root(g.add_assign(
        TOTAL, a.binary(Op::kAdd, a.variable(TOTAL), a.event_value(SAMPLE)),
        check));
  }

  // Hardware pulse stretcher: on FIRE load the count; each TICK emits one
  // PULSE and re-arms itself until the count drains.
  {
    cfsm::Cfsm& c = net.add_cfsm("pulse_asic");
    c.add_input(FIRE);
    c.add_input(TICK);
    c.add_output(TICK);
    c.add_output(PULSE);
    const auto N = c.add_var("N");
    auto& g = c.graph();
    auto& a = c.arena();
    using Op = cfsm::ExprOp;
    const auto end = g.add_end();
    const auto again =
        g.add_test(a.binary(Op::kGt, a.variable(N), a.constant(0)),
                   g.add_emit(TICK, cfsm::kNoExpr, end), end);
    const auto tick_body = g.add_assign(
        N, a.binary(Op::kSub, a.variable(N), a.constant(1)),
        g.add_emit(PULSE, a.variable(N), again));
    const auto tick_branch =
        g.add_test(a.event_present(TICK), tick_body, end);
    const auto fire_body = g.add_assign(
        N, a.event_value(FIRE), g.add_emit(TICK, cfsm::kNoExpr, end));
    g.set_root(g.add_test(a.event_present(FIRE), fire_body, tick_branch));
  }

  // ---- 2. Map processes, prepare the co-estimator ---------------------------
  core::CoEstimatorConfig cfg;  // SPARClite-class CPU @ 3.3 V, 100 MHz
  core::CoEstimator est(&net, cfg);
  est.map_sw(net.cfsm_id("controller"), /*rtos_priority=*/1);
  est.map_hw(net.cfsm_id("pulse_asic"));
  est.prepare();  // compiles SLITE code, synthesizes gates, characterizes

  // ---- 3. Environment stimulus ----------------------------------------------
  sim::Stimulus stim;
  for (int i = 0; i < 200; ++i)
    stim.add(10 + static_cast<sim::SimTime>(i) * 50, SAMPLE, 7 + i % 23);

  // ---- 4. Run power co-estimation -------------------------------------------
  const core::RunResults r = est.run(stim);
  std::printf("co-estimation finished: %s\n\n", r.summary().c_str());
  std::printf("per-process energy:\n");
  for (std::size_t i = 0; i < net.cfsm_count(); ++i)
    std::printf("  %-12s %s  (%s)\n",
                net.cfsm(static_cast<cfsm::CfsmId>(i)).name().c_str(),
                format_energy(r.process_energy[i]).c_str(),
                est.is_sw(static_cast<cfsm::CfsmId>(i)) ? "SW" : "HW");

  // ---- 5. Re-run with an acceleration technique ------------------------------
  est.config().accel = core::Acceleration::kCaching;
  const core::RunResults fast = est.run(stim);
  std::printf(
      "\nwith energy caching: same total (%s vs %s), "
      "%llu of %llu transitions served from the cache\n",
      format_energy(fast.total_energy).c_str(),
      format_energy(r.total_energy).c_str(),
      static_cast<unsigned long long>(fast.cache_hits_served),
      static_cast<unsigned long long>(fast.reactions));
  return 0;
}
