// socpower_cosim — command-line power co-estimation driver.
//
// Takes a system described in the CFSM DSL, a HW/SW mapping, and an
// environment stimulus; runs power co-estimation and prints the report.
//
//   socpower_cosim MODEL.cfsm --sw NAME[:PRIO] ... --hw NAME ... --hw-rtl NAME ...
//                [--stim FILE] [--accel none|caching|macromodel|sampling]
//                [--dma BYTES] [--csv FILE] [--trace FILE] [--inventory]
//                [--separate]
//
// The stimulus file has one event per line: "TIME EVENT [VALUE]"; '#'
// starts a comment. Without --stim, every environment event (an event no
// process emits) is fired once at cycle 1 — enough to smoke-test a model.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cfsm/dsl.hpp"
#include "core/coestimator.hpp"
#include "core/inventory.hpp"
#include "core/report.hpp"
#include "core/transition_trace.hpp"

using namespace socpower;

namespace {

struct Options {
  std::string model_path;
  std::vector<std::pair<std::string, int>> sw;  // name, priority
  std::vector<std::pair<std::string, bool>> hw;  // name, rtl?
  std::string stim_path;
  std::string csv_path;
  core::Acceleration accel = core::Acceleration::kNone;
  unsigned dma = 0;
  bool separate = false;
  bool inventory = false;
  bool listing = false;
  std::string trace_path;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s MODEL.cfsm [--sw NAME[:PRIO]]... [--hw NAME]...\n"
               "       [--hw-rtl NAME]... [--stim FILE] [--accel MODE]\n"
               "       [--dma BYTES] [--csv FILE] [--trace FILE]\n"
               "       [--inventory] [--listing] [--separate]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--sw") {
      const char* v = next();
      if (!v) return false;
      std::string name = v;
      int prio = 0;
      const auto colon = name.find(':');
      if (colon != std::string::npos) {
        prio = std::atoi(name.c_str() + colon + 1);
        name.resize(colon);
      }
      opt.sw.emplace_back(name, prio);
    } else if (a == "--hw") {
      const char* v = next();
      if (!v) return false;
      opt.hw.emplace_back(v, false);
    } else if (a == "--hw-rtl") {
      const char* v = next();
      if (!v) return false;
      opt.hw.emplace_back(v, true);
    } else if (a == "--stim") {
      const char* v = next();
      if (!v) return false;
      opt.stim_path = v;
    } else if (a == "--csv") {
      const char* v = next();
      if (!v) return false;
      opt.csv_path = v;
    } else if (a == "--dma") {
      const char* v = next();
      if (!v) return false;
      opt.dma = static_cast<unsigned>(std::atoi(v));
    } else if (a == "--accel") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "none") == 0) opt.accel = core::Acceleration::kNone;
      else if (std::strcmp(v, "caching") == 0)
        opt.accel = core::Acceleration::kCaching;
      else if (std::strcmp(v, "macromodel") == 0)
        opt.accel = core::Acceleration::kMacroModel;
      else if (std::strcmp(v, "sampling") == 0)
        opt.accel = core::Acceleration::kSampling;
      else return false;
    } else if (a == "--separate") {
      opt.separate = true;
    } else if (a == "--inventory") {
      opt.inventory = true;
    } else if (a == "--listing") {
      opt.listing = true;
    } else if (a == "--trace") {
      const char* v = next();
      if (!v) return false;
      opt.trace_path = v;
    } else if (a[0] != '-' && opt.model_path.empty()) {
      opt.model_path = a;
    } else {
      return false;
    }
  }
  return !opt.model_path.empty();
}

bool load_stimulus(const std::string& path, const cfsm::Network& net,
                   sim::Stimulus& stim) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open stimulus file %s\n", path.c_str());
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint64_t t;
    std::string ev;
    if (!(ls >> t >> ev)) continue;  // blank line
    std::int64_t value = 0;
    ls >> value;
    const cfsm::EventId e = net.event_id(ev);
    if (e < 0) {
      std::fprintf(stderr, "stimulus line %d: unknown event %s\n", line_no,
                   ev.c_str());
      return false;
    }
    stim.add(t, e, static_cast<std::int32_t>(value));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);

  std::ifstream model_in(opt.model_path);
  if (!model_in) {
    std::fprintf(stderr, "cannot open %s\n", opt.model_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << model_in.rdbuf();

  cfsm::Network net;
  const auto parsed = cfsm::parse_network(buf.str(), net);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", opt.model_path.c_str(),
                 parsed.error.c_str());
    return 1;
  }

  core::CoEstimatorConfig cfg;
  cfg.accel = opt.accel;
  cfg.keep_power_samples = true;
  if (opt.dma) cfg.bus.dma_block_size = opt.dma;
  core::CoEstimator est(&net, cfg);

  std::vector<bool> mapped(net.cfsm_count(), false);
  auto find = [&](const std::string& name) {
    const cfsm::CfsmId id = net.cfsm_id(name);
    if (id == cfsm::kNoCfsm) {
      std::fprintf(stderr, "no process named '%s'\n", name.c_str());
      std::exit(1);
    }
    mapped[static_cast<std::size_t>(id)] = true;
    return id;
  };
  for (const auto& [name, prio] : opt.sw) est.map_sw(find(name), prio);
  for (const auto& [name, rtl] : opt.hw)
    est.map_hw(find(name), rtl ? core::HwEstimatorKind::kRtl
                               : core::HwEstimatorKind::kGateLevel);
  // Unmapped processes default to hardware (cheap, always valid... except
  // for division, which only software supports).
  for (std::size_t i = 0; i < net.cfsm_count(); ++i)
    if (!mapped[i]) {
      std::printf("note: process '%s' not mapped; defaulting to HW\n",
                  net.cfsm(static_cast<cfsm::CfsmId>(i)).name().c_str());
      est.map_hw(static_cast<cfsm::CfsmId>(i));
    }
  est.prepare();
  if (opt.inventory)
    std::printf("%s\n", core::take_inventory(net, est).render().c_str());
  if (opt.listing) {
    for (std::size_t i = 0; i < net.cfsm_count(); ++i) {
      const auto id = static_cast<cfsm::CfsmId>(i);
      if (est.is_sw(id))
        std::printf("%s\n",
                    swsyn::disassemble_image(net.cfsm(id), *est.sw_image(id))
                        .c_str());
    }
  }

  core::TransitionTrace trace;
  if (!opt.trace_path.empty()) est.set_transition_hook(trace.hook());

  sim::Stimulus stim;
  if (!opt.stim_path.empty()) {
    if (!load_stimulus(opt.stim_path, net, stim)) return 1;
  } else {
    // Fire every pure-environment event once.
    for (std::size_t e = 0; e < net.event_count(); ++e) {
      bool emitted_by_someone = false;
      for (std::size_t c = 0; c < net.cfsm_count(); ++c) {
        const auto& outs =
            net.cfsm(static_cast<cfsm::CfsmId>(c)).outputs();
        for (const auto o : outs)
          if (o == static_cast<cfsm::EventId>(e)) emitted_by_someone = true;
      }
      if (!emitted_by_someone)
        stim.add(1, static_cast<cfsm::EventId>(e), 1);
    }
    std::printf("note: no --stim; firing every environment event once\n");
  }

  const auto results =
      opt.separate ? est.run_separate(stim) : est.run(stim);
  std::printf("%s", core::render_report(net, est, results, {}).c_str());

  if (!opt.csv_path.empty() && !opt.separate) {
    std::ofstream out(opt.csv_path);
    out << core::waveforms_csv(est, 0);
    std::printf("\nwaveforms written to %s\n", opt.csv_path.c_str());
  }
  if (!opt.trace_path.empty()) {
    std::ofstream out(opt.trace_path);
    out << trace.to_csv(net);
    std::printf("transition trace written to %s (%zu records)\n",
                opt.trace_path.c_str(), trace.records().size());
  }
  return results.truncated ? 1 : 0;
}
