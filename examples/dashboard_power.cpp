// Power analysis of the automotive dashboard controller: per-process energy
// breakdown, a bus-free mixed HW/SW reactive system, an ASCII power
// waveform, and a comparison of the acceleration techniques on the same
// scenario.
#include <algorithm>
#include <cstdio>

#include "core/coestimator.hpp"
#include "systems/dashboard.hpp"
#include "util/table.hpp"

using namespace socpower;

int main() {
  systems::DashboardSystem sys({.frames = 60});
  core::CoEstimatorConfig cfg;
  cfg.keep_power_samples = true;
  core::CoEstimator est(&sys.network(), cfg);
  sys.configure(est);
  est.prepare();

  int alarms = 0, fuel_warnings = 0;
  est.set_environment_hook(
      [&](const sim::EventOccurrence& o, sim::EventQueue&) {
        if (o.event == sys.alarm_on_event()) ++alarms;
        if (o.event == sys.fuel_low_event()) ++fuel_warnings;
      });

  const auto r = est.run(sys.stimulus());
  std::printf("scenario complete: %s\n", r.summary().c_str());
  std::printf("belt alarms: %d   fuel warnings: %d\n\n", alarms,
              fuel_warnings);

  TextTable t({"process", "impl", "energy", "share %"});
  for (std::size_t i = 0; i < sys.network().cfsm_count(); ++i) {
    const auto id = static_cast<cfsm::CfsmId>(i);
    t.add_row({sys.network().cfsm(id).name(), est.is_sw(id) ? "SW" : "HW",
               format_energy(r.process_energy[i]),
               TextTable::fixed(100.0 * r.process_energy[i] / r.total_energy,
                                1)});
  }
  std::printf("%s\n", t.render().c_str());

  // ASCII power waveform of the CPU (all software tasks).
  const auto& trace = est.power_trace();
  const auto cpu_c = trace.component_id("speedo");
  const auto wf = trace.waveform(cpu_c, r.end_time / 64 + 1);
  double peak = 0;
  for (const auto& w : wf) peak = std::max(peak, w.watts);
  std::printf("speedo (SW) power waveform (%zu windows, peak %.1f mW):\n",
              wf.size(), peak * 1e3);
  for (const auto& w : wf) {
    const int bar =
        peak > 0 ? static_cast<int>(w.watts / peak * 48.0) : 0;
    std::printf("  %8llu |%.*s\n",
                static_cast<unsigned long long>(w.start), bar,
                "################################################");
  }

  // Acceleration-technique comparison on the identical scenario.
  std::printf("\nacceleration comparison (identical scenario):\n");
  TextTable cmp({"mode", "total energy", "error %", "ISS calls"});
  const double ref = r.total_energy;
  for (const auto mode :
       {core::Acceleration::kNone, core::Acceleration::kCaching,
        core::Acceleration::kMacroModel, core::Acceleration::kSampling}) {
    est.config().accel = mode;
    const auto m = est.run(sys.stimulus());
    cmp.add_row({core::acceleration_name(mode),
                 format_energy(m.total_energy),
                 TextTable::fixed(percent_error(m.total_energy, ref), 2),
                 std::to_string(m.iss_invocations)});
  }
  std::printf("%s", cmp.render().c_str());
  return 0;
}
