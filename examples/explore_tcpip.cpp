// Communication-architecture exploration for the TCP/IP NIC subsystem — the
// iterative use-case the paper's co-estimation framework targets (Section
// 5.3). Sweeps DMA block size and arbitration priority assignment, then
// recommends the minimum-energy configuration. The bus parameters change
// between runs without recompiling the system description.
//
// Usage: explore_tcpip [num_packets] [packet_bytes] [threads]
// (threads defaults to $SOCPOWER_THREADS, then 1; 0 = one per hardware
// thread. Results are bit-identical for any thread count.)
// Set SOCPOWER_BLOCK_CACHE=0 to run the reference ISS interpreter instead
// of the block-cache fast path — results are bit-identical either way; the
// knob exists to measure the speedup end to end.
// SOCPOWER_HW_REACTION_CACHE=0 likewise disables the gate-level reaction
// cache (also bit-identical).
// Set SOCPOWER_DIST_WORKERS=N (>= 2) to run the two-phase exploration
// sharded over N forked worker processes instead of pool threads, and
// SOCPOWER_HW_REMOTE=1 to put every hardware estimator behind an
// out-of-process worker — both bit-identical, both degrade gracefully
// where fork is unavailable.
// Set SOCPOWER_HW_ANALYTICAL=1 to give every exploration point a third,
// cheapest tier — the calibrated "hw.analytical" backend — and
// SOCPOWER_ANALYTICAL_PREFILTER=K to run the three-tier funnel: the
// analytical tier sweeps every point, the best K proceed to the coarse
// ranking and exact verification. Whenever the kept K covers the true
// coarse top candidates the outcome is bit-identical to the two-phase run.
// Set SOCPOWER_TRACE=out.json to collect telemetry and write a Chrome
// trace-event file (open in chrome://tracing or https://ui.perfetto.dev);
// SOCPOWER_TELEMETRY=1 enables the counters alone.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/coestimator.hpp"
#include "core/explorer.hpp"
#include "systems/tcpip.hpp"
#include "telemetry/telemetry.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace socpower;

int main(int argc, char** argv) {
  const int packets = argc > 1 ? std::atoi(argv[1]) : 4;
  const int bytes = argc > 2 ? std::atoi(argv[2]) : 256;
  const std::string trace_path = telemetry::configure_from_env();
  // Negative or absurd counts would otherwise wrap through unsigned and ask
  // the pool for billions of threads; clamp to a sane range (0 = auto).
  const auto clamp_threads = [](long v) -> unsigned {
    return static_cast<unsigned>(std::clamp(v, 0l, 1024l));
  };
  unsigned threads =
      argc > 3 ? clamp_threads(std::strtol(argv[3], nullptr, 10))
               : clamp_threads(util::env_int("SOCPOWER_THREADS", 1));
  threads = resolve_thread_count(threads);

  const bool block_cache = util::env_bool("SOCPOWER_BLOCK_CACHE", true);
  const bool hw_rcache = util::env_bool("SOCPOWER_HW_REACTION_CACHE", true);
  const bool hw_remote = util::env_bool("SOCPOWER_HW_REMOTE", false);
  const unsigned dist_workers = clamp_threads(
      util::env_int("SOCPOWER_DIST_WORKERS", 1));
  const bool hw_analytical = util::env_bool("SOCPOWER_HW_ANALYTICAL", false);
  const auto prefilter = static_cast<std::size_t>(
      std::clamp(util::env_int("SOCPOWER_ANALYTICAL_PREFILTER", 0), 0l,
                 1l << 20));

  std::printf("exploring the TCP/IP subsystem integration architecture\n");
  std::printf("workload: %d packets x %d bytes, %u worker thread(s)%s\n\n",
              packets, bytes, threads,
              hw_remote ? ", remote HW estimators" : "");

  struct Point {
    unsigned dma;
    int pc, pi, pk;
    double total_uj, cpu_uj, bus_uj;
    sim::SimTime cycles;
  };
  std::vector<Point> points;

  const int perms[6][3] = {{3, 2, 1}, {3, 1, 2}, {2, 3, 1},
                           {1, 3, 2}, {2, 1, 3}, {1, 2, 3}};
  const unsigned dmas[] = {4u, 16u, 64u, 128u};
  // Every (dma, priority) point is an independent co-estimation; run them on
  // the worker pool and collect results by index.
  struct Sweep {
    unsigned dma;
    const int* pr;
  };
  std::vector<Sweep> sweep;
  for (const unsigned dma : dmas)
    for (const auto& pr : perms) sweep.push_back({dma, pr});
  points.resize(sweep.size());
  std::vector<int> functional_ok(sweep.size(), 1);
  ThreadPool pool(threads);
  pool.parallel_for(sweep.size(), [&](std::size_t i) {
    const auto [dma, pr] = sweep[i];
    systems::TcpIpParams p;
    p.num_packets = packets;
    p.packet_bytes = bytes;
    p.packet_gap = 30;
    p.dma_block_size = dma;
    p.prio_create = pr[0];
    p.prio_ipcheck = pr[1];
    p.prio_checksum = pr[2];
    p.ip_check_in_hw = true;  // SPARC + ASIC1 + ASIC2 architecture
    systems::TcpIpSystem sys(p);
    core::CoEstimatorConfig cfg;
    cfg.bus.line_cap_f = 10e-9;
    cfg.accel = core::Acceleration::kCaching;  // exploration-speed mode
    cfg.iss.block_cache = block_cache;
    cfg.hw_reaction_cache = hw_rcache;
    cfg.hw_remote = hw_remote;
    core::CoEstimator est(&sys.network(), cfg);
    sys.configure(est);
    est.prepare();
    const auto r = est.run(sys.stimulus());
    functional_ok[i] = sys.packets_ok(est) == packets;
    points[i] = {dma, pr[0], pr[1], pr[2], to_microjoules(r.total_energy),
                 to_microjoules(r.cpu_energy), to_microjoules(r.bus_energy),
                 r.end_time};
  });
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (!functional_ok[i]) {
      std::fprintf(stderr, "functional check failed at dma=%u!\n",
                   sweep[i].dma);
      return 1;
    }
  }

  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) {
              return a.total_uj < b.total_uj;
            });

  TextTable t({"rank", "DMA", "prio CP/IP/CK", "total uJ", "cpu uJ",
               "bus uJ", "latency (cycles)"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (i < 8 || i + 3 >= points.size()) {
      char prio[16];
      std::snprintf(prio, sizeof prio, "%d/%d/%d", p.pc, p.pi, p.pk);
      t.add_row({std::to_string(i + 1), std::to_string(p.dma), prio,
                 TextTable::fixed(p.total_uj, 2),
                 TextTable::fixed(p.cpu_uj, 2), TextTable::fixed(p.bus_uj, 2),
                 std::to_string(p.cycles)});
    } else if (i == 8) {
      t.add_row({"...", "", "", "", "", "", ""});
    }
  }
  std::printf("%s", t.render().c_str());

  const Point& best = points.front();
  std::printf(
      "\nrecommendation: DMA block = %u bytes, priorities "
      "create_pack=%d ip_check=%d checksum=%d\n",
      best.dma, best.pc, best.pi, best.pk);
  std::printf(
      "energy span across the explored space: %.2f .. %.2f uJ (%.1f%%)\n",
      points.front().total_uj, points.back().total_uj,
      100.0 * (points.back().total_uj - points.front().total_uj) /
          points.front().total_uj);

  // Two-phase exploration (the workflow the paper's "relative accuracy"
  // result enables): sweep the DMA axis with the cheap macro-model, then
  // verify only the top candidates with the exact estimator.
  std::printf("\n--- two-phase exploration over the DMA axis ---\n");
  std::vector<core::ExplorationPoint> dma_points;
  for (const unsigned dma : {4u, 16u, 64u, 128u}) {
    auto make_run = [=](core::Acceleration accel, bool analytical) {
      return [=]() {
        systems::TcpIpParams p;
        p.num_packets = packets;
        p.packet_bytes = bytes;
        p.dma_block_size = dma;
        p.ip_check_in_hw = true;
        systems::TcpIpSystem sys(p);
        core::CoEstimatorConfig cfg;
        cfg.bus.line_cap_f = 10e-9;
        cfg.accel = accel;
        cfg.iss.block_cache = block_cache;
        cfg.hw_reaction_cache = hw_rcache;
        cfg.hw_remote = hw_remote;
        if (analytical) {
          cfg.estimators.hw_gate = "hw.analytical";
          cfg.hw_analytical_calibration_vectors = 16;
        }
        core::CoEstimator est(&sys.network(), cfg);
        sys.configure(est);
        est.prepare();
        return est.run(sys.stimulus());
      };
    };
    core::ExplorationPoint pt;
    pt.label = "dma=" + std::to_string(dma);
    pt.run_coarse = make_run(core::Acceleration::kMacroModel, false);
    pt.run_exact = make_run(core::Acceleration::kNone, false);
    if (hw_analytical)
      pt.run_analytical = make_run(core::Acceleration::kMacroModel, true);
    dma_points.push_back(std::move(pt));
  }
  if (hw_analytical)
    std::printf("analytical tier enabled%s\n",
                prefilter > 0 ? " (three-tier funnel)" : "");
  // Sharded over forked worker processes when asked; identical outcome.
  const auto outcome =
      dist_workers >= 2
          ? core::explore_sharded(dma_points, /*verify_top=*/2,
                                  {.workers = dist_workers,
                                   .analytical_prefilter = prefilter})
          : core::explore(dma_points, /*verify_top=*/2,
                          {.threads = threads,
                           .analytical_prefilter = prefilter});
  std::printf("%s", outcome.render().c_str());

  if (telemetry::enabled()) {
    std::printf("\n--- telemetry counters ---\n%s",
                telemetry::snapshot().render_table().c_str());
    if (!trace_path.empty()) {
      if (!telemetry::write_chrome_trace(trace_path)) return 1;
      std::printf("wrote Chrome trace to %s (%zu events, %llu dropped)\n",
                  trace_path.c_str(), telemetry::collector().event_count(),
                  static_cast<unsigned long long>(
                      telemetry::collector().dropped()));
    }
  }
  return 0;
}
