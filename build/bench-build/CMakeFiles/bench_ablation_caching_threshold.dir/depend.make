# Empty dependencies file for bench_ablation_caching_threshold.
# This may be replaced when dependencies are built.
