file(REMOVE_RECURSE
  "../bench/bench_table2_macromodel"
  "../bench/bench_table2_macromodel.pdb"
  "CMakeFiles/bench_table2_macromodel.dir/bench_table2_macromodel.cpp.o"
  "CMakeFiles/bench_table2_macromodel.dir/bench_table2_macromodel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_macromodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
