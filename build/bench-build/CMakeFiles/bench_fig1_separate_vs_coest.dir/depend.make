# Empty dependencies file for bench_fig1_separate_vs_coest.
# This may be replaced when dependencies are built.
