file(REMOVE_RECURSE
  "../bench/bench_fig1_separate_vs_coest"
  "../bench/bench_fig1_separate_vs_coest.pdb"
  "CMakeFiles/bench_fig1_separate_vs_coest.dir/bench_fig1_separate_vs_coest.cpp.o"
  "CMakeFiles/bench_fig1_separate_vs_coest.dir/bench_fig1_separate_vs_coest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_separate_vs_coest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
