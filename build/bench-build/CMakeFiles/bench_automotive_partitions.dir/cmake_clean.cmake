file(REMOVE_RECURSE
  "../bench/bench_automotive_partitions"
  "../bench/bench_automotive_partitions.pdb"
  "CMakeFiles/bench_automotive_partitions.dir/bench_automotive_partitions.cpp.o"
  "CMakeFiles/bench_automotive_partitions.dir/bench_automotive_partitions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_automotive_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
