# Empty dependencies file for bench_ablation_bus_width.
# This may be replaced when dependencies are built.
