file(REMOVE_RECURSE
  "../bench/bench_fig4_path_histograms"
  "../bench/bench_fig4_path_histograms.pdb"
  "CMakeFiles/bench_fig4_path_histograms.dir/bench_fig4_path_histograms.cpp.o"
  "CMakeFiles/bench_fig4_path_histograms.dir/bench_fig4_path_histograms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_path_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
