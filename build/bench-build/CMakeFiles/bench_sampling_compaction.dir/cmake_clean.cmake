file(REMOVE_RECURSE
  "../bench/bench_sampling_compaction"
  "../bench/bench_sampling_compaction.pdb"
  "CMakeFiles/bench_sampling_compaction.dir/bench_sampling_compaction.cpp.o"
  "CMakeFiles/bench_sampling_compaction.dir/bench_sampling_compaction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sampling_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
