# Empty dependencies file for bench_sampling_compaction.
# This may be replaced when dependencies are built.
