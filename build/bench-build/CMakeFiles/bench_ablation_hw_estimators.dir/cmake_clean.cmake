file(REMOVE_RECURSE
  "../bench/bench_ablation_hw_estimators"
  "../bench/bench_ablation_hw_estimators.pdb"
  "CMakeFiles/bench_ablation_hw_estimators.dir/bench_ablation_hw_estimators.cpp.o"
  "CMakeFiles/bench_ablation_hw_estimators.dir/bench_ablation_hw_estimators.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hw_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
