file(REMOVE_RECURSE
  "../bench/bench_table1_caching"
  "../bench/bench_table1_caching.pdb"
  "CMakeFiles/bench_table1_caching.dir/bench_table1_caching.cpp.o"
  "CMakeFiles/bench_table1_caching.dir/bench_table1_caching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
