# Empty dependencies file for bench_peak_power.
# This may be replaced when dependencies are built.
