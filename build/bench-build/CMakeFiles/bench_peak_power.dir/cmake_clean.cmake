file(REMOVE_RECURSE
  "../bench/bench_peak_power"
  "../bench/bench_peak_power.pdb"
  "CMakeFiles/bench_peak_power.dir/bench_peak_power.cpp.o"
  "CMakeFiles/bench_peak_power.dir/bench_peak_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_peak_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
