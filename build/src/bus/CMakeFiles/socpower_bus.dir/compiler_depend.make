# Empty compiler generated dependencies file for socpower_bus.
# This may be replaced when dependencies are built.
