file(REMOVE_RECURSE
  "libsocpower_bus.a"
)
