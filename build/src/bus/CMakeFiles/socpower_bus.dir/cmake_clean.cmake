file(REMOVE_RECURSE
  "CMakeFiles/socpower_bus.dir/bus_model.cpp.o"
  "CMakeFiles/socpower_bus.dir/bus_model.cpp.o.d"
  "libsocpower_bus.a"
  "libsocpower_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socpower_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
