# Empty compiler generated dependencies file for socpower_cache.
# This may be replaced when dependencies are built.
