file(REMOVE_RECURSE
  "CMakeFiles/socpower_cache.dir/cache_sim.cpp.o"
  "CMakeFiles/socpower_cache.dir/cache_sim.cpp.o.d"
  "libsocpower_cache.a"
  "libsocpower_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socpower_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
