file(REMOVE_RECURSE
  "libsocpower_cache.a"
)
