file(REMOVE_RECURSE
  "libsocpower_hwsyn.a"
)
