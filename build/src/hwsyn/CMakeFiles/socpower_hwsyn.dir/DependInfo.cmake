
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwsyn/rtl.cpp" "src/hwsyn/CMakeFiles/socpower_hwsyn.dir/rtl.cpp.o" "gcc" "src/hwsyn/CMakeFiles/socpower_hwsyn.dir/rtl.cpp.o.d"
  "/root/repo/src/hwsyn/rtl_power.cpp" "src/hwsyn/CMakeFiles/socpower_hwsyn.dir/rtl_power.cpp.o" "gcc" "src/hwsyn/CMakeFiles/socpower_hwsyn.dir/rtl_power.cpp.o.d"
  "/root/repo/src/hwsyn/synth.cpp" "src/hwsyn/CMakeFiles/socpower_hwsyn.dir/synth.cpp.o" "gcc" "src/hwsyn/CMakeFiles/socpower_hwsyn.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfsm/CMakeFiles/socpower_cfsm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/socpower_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/socpower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
