file(REMOVE_RECURSE
  "CMakeFiles/socpower_hwsyn.dir/rtl.cpp.o"
  "CMakeFiles/socpower_hwsyn.dir/rtl.cpp.o.d"
  "CMakeFiles/socpower_hwsyn.dir/rtl_power.cpp.o"
  "CMakeFiles/socpower_hwsyn.dir/rtl_power.cpp.o.d"
  "CMakeFiles/socpower_hwsyn.dir/synth.cpp.o"
  "CMakeFiles/socpower_hwsyn.dir/synth.cpp.o.d"
  "libsocpower_hwsyn.a"
  "libsocpower_hwsyn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socpower_hwsyn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
