# Empty compiler generated dependencies file for socpower_hwsyn.
# This may be replaced when dependencies are built.
