file(REMOVE_RECURSE
  "libsocpower_iss.a"
)
