
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iss/assembler.cpp" "src/iss/CMakeFiles/socpower_iss.dir/assembler.cpp.o" "gcc" "src/iss/CMakeFiles/socpower_iss.dir/assembler.cpp.o.d"
  "/root/repo/src/iss/isa.cpp" "src/iss/CMakeFiles/socpower_iss.dir/isa.cpp.o" "gcc" "src/iss/CMakeFiles/socpower_iss.dir/isa.cpp.o.d"
  "/root/repo/src/iss/iss.cpp" "src/iss/CMakeFiles/socpower_iss.dir/iss.cpp.o" "gcc" "src/iss/CMakeFiles/socpower_iss.dir/iss.cpp.o.d"
  "/root/repo/src/iss/power_model.cpp" "src/iss/CMakeFiles/socpower_iss.dir/power_model.cpp.o" "gcc" "src/iss/CMakeFiles/socpower_iss.dir/power_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/socpower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
