# Empty compiler generated dependencies file for socpower_iss.
# This may be replaced when dependencies are built.
