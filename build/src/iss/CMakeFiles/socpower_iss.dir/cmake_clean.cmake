file(REMOVE_RECURSE
  "CMakeFiles/socpower_iss.dir/assembler.cpp.o"
  "CMakeFiles/socpower_iss.dir/assembler.cpp.o.d"
  "CMakeFiles/socpower_iss.dir/isa.cpp.o"
  "CMakeFiles/socpower_iss.dir/isa.cpp.o.d"
  "CMakeFiles/socpower_iss.dir/iss.cpp.o"
  "CMakeFiles/socpower_iss.dir/iss.cpp.o.d"
  "CMakeFiles/socpower_iss.dir/power_model.cpp.o"
  "CMakeFiles/socpower_iss.dir/power_model.cpp.o.d"
  "libsocpower_iss.a"
  "libsocpower_iss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socpower_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
