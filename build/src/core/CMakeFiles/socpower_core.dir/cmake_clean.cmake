file(REMOVE_RECURSE
  "CMakeFiles/socpower_core.dir/coestimator.cpp.o"
  "CMakeFiles/socpower_core.dir/coestimator.cpp.o.d"
  "CMakeFiles/socpower_core.dir/compactor.cpp.o"
  "CMakeFiles/socpower_core.dir/compactor.cpp.o.d"
  "CMakeFiles/socpower_core.dir/energy_cache.cpp.o"
  "CMakeFiles/socpower_core.dir/energy_cache.cpp.o.d"
  "CMakeFiles/socpower_core.dir/explorer.cpp.o"
  "CMakeFiles/socpower_core.dir/explorer.cpp.o.d"
  "CMakeFiles/socpower_core.dir/inventory.cpp.o"
  "CMakeFiles/socpower_core.dir/inventory.cpp.o.d"
  "CMakeFiles/socpower_core.dir/macromodel.cpp.o"
  "CMakeFiles/socpower_core.dir/macromodel.cpp.o.d"
  "CMakeFiles/socpower_core.dir/report.cpp.o"
  "CMakeFiles/socpower_core.dir/report.cpp.o.d"
  "CMakeFiles/socpower_core.dir/transition_trace.cpp.o"
  "CMakeFiles/socpower_core.dir/transition_trace.cpp.o.d"
  "libsocpower_core.a"
  "libsocpower_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socpower_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
