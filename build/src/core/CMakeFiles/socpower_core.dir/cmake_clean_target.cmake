file(REMOVE_RECURSE
  "libsocpower_core.a"
)
