# Empty compiler generated dependencies file for socpower_core.
# This may be replaced when dependencies are built.
