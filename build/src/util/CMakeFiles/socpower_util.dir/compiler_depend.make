# Empty compiler generated dependencies file for socpower_util.
# This may be replaced when dependencies are built.
