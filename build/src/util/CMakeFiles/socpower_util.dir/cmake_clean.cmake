file(REMOVE_RECURSE
  "CMakeFiles/socpower_util.dir/histogram.cpp.o"
  "CMakeFiles/socpower_util.dir/histogram.cpp.o.d"
  "CMakeFiles/socpower_util.dir/rng.cpp.o"
  "CMakeFiles/socpower_util.dir/rng.cpp.o.d"
  "CMakeFiles/socpower_util.dir/stats.cpp.o"
  "CMakeFiles/socpower_util.dir/stats.cpp.o.d"
  "CMakeFiles/socpower_util.dir/table.cpp.o"
  "CMakeFiles/socpower_util.dir/table.cpp.o.d"
  "CMakeFiles/socpower_util.dir/units.cpp.o"
  "CMakeFiles/socpower_util.dir/units.cpp.o.d"
  "libsocpower_util.a"
  "libsocpower_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socpower_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
