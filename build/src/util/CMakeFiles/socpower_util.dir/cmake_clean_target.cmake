file(REMOVE_RECURSE
  "libsocpower_util.a"
)
