file(REMOVE_RECURSE
  "libsocpower_swsyn.a"
)
