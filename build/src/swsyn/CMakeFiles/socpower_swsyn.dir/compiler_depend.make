# Empty compiler generated dependencies file for socpower_swsyn.
# This may be replaced when dependencies are built.
