file(REMOVE_RECURSE
  "CMakeFiles/socpower_swsyn.dir/codegen.cpp.o"
  "CMakeFiles/socpower_swsyn.dir/codegen.cpp.o.d"
  "CMakeFiles/socpower_swsyn.dir/macro_op.cpp.o"
  "CMakeFiles/socpower_swsyn.dir/macro_op.cpp.o.d"
  "CMakeFiles/socpower_swsyn.dir/rtos.cpp.o"
  "CMakeFiles/socpower_swsyn.dir/rtos.cpp.o.d"
  "libsocpower_swsyn.a"
  "libsocpower_swsyn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socpower_swsyn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
