
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swsyn/codegen.cpp" "src/swsyn/CMakeFiles/socpower_swsyn.dir/codegen.cpp.o" "gcc" "src/swsyn/CMakeFiles/socpower_swsyn.dir/codegen.cpp.o.d"
  "/root/repo/src/swsyn/macro_op.cpp" "src/swsyn/CMakeFiles/socpower_swsyn.dir/macro_op.cpp.o" "gcc" "src/swsyn/CMakeFiles/socpower_swsyn.dir/macro_op.cpp.o.d"
  "/root/repo/src/swsyn/rtos.cpp" "src/swsyn/CMakeFiles/socpower_swsyn.dir/rtos.cpp.o" "gcc" "src/swsyn/CMakeFiles/socpower_swsyn.dir/rtos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfsm/CMakeFiles/socpower_cfsm.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/socpower_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/socpower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
