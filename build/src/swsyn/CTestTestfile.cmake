# CMake generated Testfile for 
# Source directory: /root/repo/src/swsyn
# Build directory: /root/repo/build/src/swsyn
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
