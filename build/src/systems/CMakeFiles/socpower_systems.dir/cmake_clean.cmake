file(REMOVE_RECURSE
  "CMakeFiles/socpower_systems.dir/dashboard.cpp.o"
  "CMakeFiles/socpower_systems.dir/dashboard.cpp.o.d"
  "CMakeFiles/socpower_systems.dir/prodcons.cpp.o"
  "CMakeFiles/socpower_systems.dir/prodcons.cpp.o.d"
  "CMakeFiles/socpower_systems.dir/tcpip.cpp.o"
  "CMakeFiles/socpower_systems.dir/tcpip.cpp.o.d"
  "libsocpower_systems.a"
  "libsocpower_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socpower_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
