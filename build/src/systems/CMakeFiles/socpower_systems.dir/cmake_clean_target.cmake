file(REMOVE_RECURSE
  "libsocpower_systems.a"
)
