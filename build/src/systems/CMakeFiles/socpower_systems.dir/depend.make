# Empty dependencies file for socpower_systems.
# This may be replaced when dependencies are built.
