file(REMOVE_RECURSE
  "CMakeFiles/socpower_sim.dir/event_queue.cpp.o"
  "CMakeFiles/socpower_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/socpower_sim.dir/power_trace.cpp.o"
  "CMakeFiles/socpower_sim.dir/power_trace.cpp.o.d"
  "libsocpower_sim.a"
  "libsocpower_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socpower_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
