file(REMOVE_RECURSE
  "libsocpower_sim.a"
)
