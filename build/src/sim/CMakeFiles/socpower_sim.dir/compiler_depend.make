# Empty compiler generated dependencies file for socpower_sim.
# This may be replaced when dependencies are built.
