
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfsm/cfsm.cpp" "src/cfsm/CMakeFiles/socpower_cfsm.dir/cfsm.cpp.o" "gcc" "src/cfsm/CMakeFiles/socpower_cfsm.dir/cfsm.cpp.o.d"
  "/root/repo/src/cfsm/dsl.cpp" "src/cfsm/CMakeFiles/socpower_cfsm.dir/dsl.cpp.o" "gcc" "src/cfsm/CMakeFiles/socpower_cfsm.dir/dsl.cpp.o.d"
  "/root/repo/src/cfsm/expr.cpp" "src/cfsm/CMakeFiles/socpower_cfsm.dir/expr.cpp.o" "gcc" "src/cfsm/CMakeFiles/socpower_cfsm.dir/expr.cpp.o.d"
  "/root/repo/src/cfsm/sgraph.cpp" "src/cfsm/CMakeFiles/socpower_cfsm.dir/sgraph.cpp.o" "gcc" "src/cfsm/CMakeFiles/socpower_cfsm.dir/sgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/socpower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
