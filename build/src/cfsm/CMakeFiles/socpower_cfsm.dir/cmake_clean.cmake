file(REMOVE_RECURSE
  "CMakeFiles/socpower_cfsm.dir/cfsm.cpp.o"
  "CMakeFiles/socpower_cfsm.dir/cfsm.cpp.o.d"
  "CMakeFiles/socpower_cfsm.dir/dsl.cpp.o"
  "CMakeFiles/socpower_cfsm.dir/dsl.cpp.o.d"
  "CMakeFiles/socpower_cfsm.dir/expr.cpp.o"
  "CMakeFiles/socpower_cfsm.dir/expr.cpp.o.d"
  "CMakeFiles/socpower_cfsm.dir/sgraph.cpp.o"
  "CMakeFiles/socpower_cfsm.dir/sgraph.cpp.o.d"
  "libsocpower_cfsm.a"
  "libsocpower_cfsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socpower_cfsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
