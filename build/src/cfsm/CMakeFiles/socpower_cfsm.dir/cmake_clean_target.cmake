file(REMOVE_RECURSE
  "libsocpower_cfsm.a"
)
