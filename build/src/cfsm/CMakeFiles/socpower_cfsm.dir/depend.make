# Empty dependencies file for socpower_cfsm.
# This may be replaced when dependencies are built.
