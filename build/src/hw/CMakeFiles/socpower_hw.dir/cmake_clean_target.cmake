file(REMOVE_RECURSE
  "libsocpower_hw.a"
)
