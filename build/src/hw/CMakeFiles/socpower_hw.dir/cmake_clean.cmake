file(REMOVE_RECURSE
  "CMakeFiles/socpower_hw.dir/gatesim.cpp.o"
  "CMakeFiles/socpower_hw.dir/gatesim.cpp.o.d"
  "CMakeFiles/socpower_hw.dir/netlist.cpp.o"
  "CMakeFiles/socpower_hw.dir/netlist.cpp.o.d"
  "CMakeFiles/socpower_hw.dir/vcd.cpp.o"
  "CMakeFiles/socpower_hw.dir/vcd.cpp.o.d"
  "libsocpower_hw.a"
  "libsocpower_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socpower_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
