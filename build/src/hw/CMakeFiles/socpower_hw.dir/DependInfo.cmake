
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/gatesim.cpp" "src/hw/CMakeFiles/socpower_hw.dir/gatesim.cpp.o" "gcc" "src/hw/CMakeFiles/socpower_hw.dir/gatesim.cpp.o.d"
  "/root/repo/src/hw/netlist.cpp" "src/hw/CMakeFiles/socpower_hw.dir/netlist.cpp.o" "gcc" "src/hw/CMakeFiles/socpower_hw.dir/netlist.cpp.o.d"
  "/root/repo/src/hw/vcd.cpp" "src/hw/CMakeFiles/socpower_hw.dir/vcd.cpp.o" "gcc" "src/hw/CMakeFiles/socpower_hw.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/socpower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
